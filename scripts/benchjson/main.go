// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result line. Metrics beyond
// ns/op (pps, workers, MB/s, ...) are collected into a "metrics" map keyed
// by unit. scripts/check.sh uses it to emit BENCH_*.json artifacts.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the caller still sees the run
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				r.NsPerOp = v
			} else {
				r.Metrics[fields[i+1]] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out := os.Stdout
	if path := os.Getenv("BENCHJSON_OUT"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
