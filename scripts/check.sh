#!/usr/bin/env sh
# CI gate: static checks, full build, race-detected tests, and a benchmark
# smoke run whose results land in BENCH_6.json at the repo root.
#
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> telemetry registry suite (race-detected + zero-alloc pins)"
go test -race -count=1 -run 'TestRegistryConcurrency|TestSharedInstrument' ./internal/telemetry/
go test -count=1 -run 'ZeroAlloc' ./internal/telemetry/

echo "==> UDP GSO capability probe (informational; batch paths fall back when absent)"
go test -count=1 -run 'TestUDPGSOCapabilityProbe' -v ./internal/netsim/ | grep -i 'gso\|PASS\|FAIL' || true

echo "==> forced segmentation-offload fallback suite (INTEREDGE_NO_GSO=1)"
INTEREDGE_NO_GSO=1 go test -count=1 ./internal/netsim/ ./internal/pipe/ ./internal/chaos/

echo "==> chaos suite (race-detected, fixed seeds, bounded)"
go test -race -count=1 -timeout 180s ./internal/chaos/

echo "==> module-fault containment suite (race-detected, fixed seeds)"
go test -race -count=1 -timeout 120s -run 'TestModuleFaultContainmentChaos' ./internal/chaos/
go test -race -count=1 -timeout 120s \
	-run 'Breaker|PanicContainment|PanicIPC|DeadlineTimeout|Degraded|ChanInvokerCloseRace|IPCDecodeFailure|IPCRestarting' \
	./internal/sn/

echo "==> fuzz smoke runs (wire decode, PSP open)"
go test -run '^$' -fuzz 'FuzzILPHeaderDecode' -fuzztime 5s ./internal/wire/
go test -run '^$' -fuzz 'FuzzDatagramDecode' -fuzztime 5s ./internal/wire/
go test -run '^$' -fuzz 'FuzzPSPOpen' -fuzztime 5s ./internal/psp/

echo "==> benchmark smoke run (Figure 2 pipeline)"
go test -run '^$' -bench Figure2 -benchtime 20000x -benchmem . |
	BENCHJSON_OUT=BENCH_6.json go run ./scripts/benchjson

echo "==> wrote BENCH_6.json"

echo "==> benchmark gate (batch pipeline ratchet; fast path stays zero-alloc)"
go run ./scripts/benchgate BENCH_6.json
