#!/usr/bin/env sh
# CI gate: static checks, full build, race-detected tests, and a benchmark
# smoke run whose results land in BENCH_1.json at the repo root.
#
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> chaos suite (race-detected, fixed seeds, bounded)"
go test -race -count=1 -timeout 180s ./internal/chaos/

echo "==> module-fault containment suite (race-detected, fixed seeds)"
go test -race -count=1 -timeout 120s -run 'TestModuleFaultContainmentChaos' ./internal/chaos/
go test -race -count=1 -timeout 120s \
	-run 'Breaker|PanicContainment|PanicIPC|DeadlineTimeout|Degraded|ChanInvokerCloseRace|IPCDecodeFailure|IPCRestarting' \
	./internal/sn/

echo "==> fuzz smoke runs (wire decode, PSP open)"
go test -run '^$' -fuzz 'FuzzILPHeaderDecode' -fuzztime 5s ./internal/wire/
go test -run '^$' -fuzz 'FuzzDatagramDecode' -fuzztime 5s ./internal/wire/
go test -run '^$' -fuzz 'FuzzPSPOpen' -fuzztime 5s ./internal/psp/

echo "==> benchmark smoke run (Figure 2 pipeline)"
go test -run '^$' -bench Figure2 -benchtime 20000x . |
	BENCHJSON_OUT=BENCH_3.json go run ./scripts/benchjson

echo "==> wrote BENCH_3.json"

echo "==> benchmark gate (batched parallel egress must beat per-packet single)"
go run ./scripts/benchgate BENCH_3.json
