#!/usr/bin/env sh
# CI gate: static checks, full build, race-detected tests, compressed-time
# soak scenarios with SLO gates (capacity reports land in SOAK_*.json), and
# a benchmark smoke run whose results land in BENCH_6.json at the repo root.
#
# Every suite runs even after an earlier failure; the script's exit code is
# nonzero if ANY suite failed, so a later passing run can never mask an
# earlier one (notably a -race failure followed by green plain-build runs).
#
# Usage: scripts/check.sh
set -u

cd "$(dirname "$0")/.."

FAILURES=0
FAILED_SUITES=""

# run <label> <cmd...>: execute a suite, record its exit code.
run() {
	label="$1"
	shift
	echo "==> $label"
	if ! "$@"; then
		FAILURES=$((FAILURES + 1))
		FAILED_SUITES="$FAILED_SUITES
  FAIL: $label"
		echo "!!! suite failed: $label"
	fi
}

# Static checks and the build gate everything else; a broken tree makes
# the remaining suites meaningless, so these two still fail fast.
echo "==> go vet ./..."
go vet ./... || exit 1

echo "==> go build ./..."
go build ./... || exit 1

# Broad race-detected sweep. -short keeps the soak package to one seed per
# scenario here (the full three-seed matrix runs below without the race
# detector's ~10x slowdown).
run "go test -race -short ./..." \
	go test -race -short -timeout 900s ./...

run "compressed-time soak suite (full scenario x seed matrix, SLO gates, full-scale fleet)" \
	go test -count=1 -timeout 900s ./internal/soak/

run "soak capacity reports (fast subset; writes SOAK_*.json, fails on SLO breach)" \
	go run ./cmd/interedge-lab -soak -soak-scenarios steady-diurnal,gateway-flap-storm,sn-drain-rolling,sn-crash-failover -soak-seeds 1 -soak-out .

run "telemetry registry suite (race-detected + zero-alloc pins)" \
	go test -race -count=1 -run 'TestRegistryConcurrency|TestSharedInstrument' ./internal/telemetry/
run "telemetry zero-alloc pins" \
	go test -count=1 -run 'ZeroAlloc' ./internal/telemetry/

echo "==> UDP GSO capability probe (informational; batch paths fall back when absent)"
go test -count=1 -run 'TestUDPGSOCapabilityProbe' -v ./internal/netsim/ | grep -i 'gso\|PASS\|FAIL' || true

run "forced segmentation-offload fallback suite (INTEREDGE_NO_GSO=1)" \
	env INTEREDGE_NO_GSO=1 go test -count=1 ./internal/netsim/ ./internal/pipe/ ./internal/chaos/

run "chaos suite (race-detected, fixed seeds, bounded)" \
	go test -race -count=1 -timeout 180s ./internal/chaos/

run "module-fault containment suite (race-detected, fixed seeds)" \
	go test -race -count=1 -timeout 120s -run 'TestModuleFaultContainmentChaos' ./internal/chaos/
run "module-fault containment: sn unit suites" \
	go test -race -count=1 -timeout 120s \
	-run 'Breaker|PanicContainment|PanicIPC|DeadlineTimeout|Degraded|ChanInvokerCloseRace|IPCDecodeFailure|IPCRestarting' \
	./internal/sn/

run "fuzz smoke: wire ILP header decode" \
	go test -run '^$' -fuzz 'FuzzILPHeaderDecode' -fuzztime 5s ./internal/wire/
run "fuzz smoke: wire datagram decode" \
	go test -run '^$' -fuzz 'FuzzDatagramDecode' -fuzztime 5s ./internal/wire/
run "fuzz smoke: drain/handoff state decode" \
	go test -run '^$' -fuzz 'FuzzHandoffDecode' -fuzztime 5s ./internal/wire/
run "fuzz smoke: PSP open" \
	go test -run '^$' -fuzz 'FuzzPSPOpen' -fuzztime 5s ./internal/psp/
run "fuzz smoke: signed address-record registration" \
	go test -run '^$' -fuzz 'FuzzAddrRecordRegistration' -fuzztime 5s ./internal/lookup/

run "rescache interleaving property suite (race-detected, fixed seeds)" \
	go test -race -count=1 -timeout 180s ./internal/lookup/rescache/

# bench_suite <label> <out.json> <pkg> <bench-regex>: run one benchmark
# suite, convert to a JSON artifact, and gate it. Benchmark output goes
# through a temp file, not a pipeline: a pipeline's exit status is its
# last command's, which would swallow a bench failure.
bench_suite() {
	bs_label="$1"
	bs_out="$2"
	bs_pkg="$3"
	bs_regex="$4"
	echo "==> benchmark smoke run ($bs_label)"
	BENCH_TMP="$(mktemp)"
	if go test -run '^$' -bench "$bs_regex" -benchtime 20000x -benchmem "$bs_pkg" >"$BENCH_TMP"; then
		if BENCHJSON_OUT="$bs_out" go run ./scripts/benchjson <"$BENCH_TMP"; then
			echo "==> wrote $bs_out"
			run "benchmark gate ($bs_label)" \
				go run ./scripts/benchgate "$bs_out"
		else
			FAILURES=$((FAILURES + 1))
			FAILED_SUITES="$FAILED_SUITES
  FAIL: benchjson conversion ($bs_out)"
		fi
	else
		FAILURES=$((FAILURES + 1))
		FAILED_SUITES="$FAILED_SUITES
  FAIL: benchmark smoke run ($bs_label)"
		cat "$BENCH_TMP"
	fi
	rm -f "$BENCH_TMP"
}

bench_suite "Figure 2 pipeline" BENCH_6.json . Figure2
bench_suite "planet-scale lookup read path" BENCH_8.json ./internal/lookup/ \
	'BenchmarkLookupResolve|BenchmarkLookupChurn|BenchmarkWatchFanout'
bench_suite "fleet RX fan-out (shared engine)" BENCH_10.json ./internal/pipe/ \
	BenchmarkFleetRxFanout

if [ "$FAILURES" -ne 0 ]; then
	echo ""
	echo "check.sh: $FAILURES suite(s) failed:$FAILED_SUITES"
	exit 1
fi
echo ""
echo "check.sh: all suites passed"
