// Command benchgate enforces performance invariants on a BENCH_*.json
// artifact (as written by scripts/benchjson). It recognizes two suites by
// the benchmarks present in the artifact and applies the matching gates:
//
// Fast-path suite (Figure2_FullFastPath benchmarks, BENCH_6.json):
//
//   - the batched parallel fast path must not be slower than the
//     per-packet single-worker fast path. The seed repo shipped with that
//     inversion (parallel pps was ~12x below single pps); the batching
//     work exists to remove it, and this gate keeps it from coming back;
//   - ratchet: the batch pipeline (OpenBatch → LookupN → SealBatch →
//     vectored/GSO send) must keep the parallel bench at or below 0.85x
//     the single-worker per-packet ns/op — batching that amortizes nothing
//     is a regression even if it is not an outright inversion;
//   - absolute ceiling: FullFastPathParallel must stay under
//     parallelCeilingNs per op. Seeded from BENCH_6.json (1102 ns/op
//     measured) with headroom for machine noise; the pre-batch baseline
//     (BENCH_5.json) was 2252 ns/op, safely above the ceiling;
//   - the full-fast-path benchmarks must report 0 allocs/op (when the
//     artifact was produced with -benchmem). The hit path is engineered to
//     allocate nothing beyond the transport's datagram copy; a nonzero
//     count means someone put an allocation — telemetry included — back on
//     the per-packet path.
//
// Lookup suite (LookupResolve benchmarks, BENCH_8.json):
//
//   - LookupResolve and LookupResolveParallel must report 0 allocs/op:
//     resolution against the RCU snapshot is a pointer load plus map
//     probes and must stay allocation-free at 10^6 records;
//   - absolute ceiling: LookupResolve must stay under lookupCeilingNs per
//     op at 10^6 records (measured ~530 ns/op on the reference machine;
//     the ceiling leaves headroom for noise but catches an accidental
//     return to lock-guarded or copying reads);
//   - contention: LookupResolveParallel ns/op must stay within
//     lookupParallelSlack of the single-thread number. Snapshot reads
//     share no lock, so parallel throughput must meet single-thread
//     throughput (and exceed it on multicore machines); a mutex on the
//     read path shows up here first.
//
// Fleet suite (FleetRxFanout benchmark, BENCH_10.json):
//
//   - FleetRxFanout must report 0 allocs/op: the engine's shared receive
//     path (seal → (dst, src) demux → open → deliver, round-robined over
//     256 endpoints) is what every packet of a 10^6-host fleet crosses,
//     so one allocation here is one allocation per packet per host;
//   - absolute ceiling: FleetRxFanout must stay under fleetFanoutCeilingNs
//     per op (~710 ns/op measured on the reference machine; the ceiling
//     leaves headroom for noise but catches a lock or copy landing on the
//     sharded peer-table path).
//
// Usage: go run ./scripts/benchgate <BENCH_*.json>
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// parallelCeilingNs is the absolute per-op budget for
// Figure2_FullFastPathParallel, seeded from the BENCH_6.json measurement
// (1102 ns/op) with ~1.6x headroom for slower or noisier machines.
const parallelCeilingNs = 1800.0

// parallelRatchet is the required parallel/single ns-per-op ratio: the
// batched pipeline must be at least this much cheaper per packet than the
// per-packet single-worker path.
const parallelRatchet = 0.85

// lookupCeilingNs is the absolute per-op budget for LookupResolve at 10^6
// records (~530 ns/op measured, ~2.8x headroom).
const lookupCeilingNs = 1500.0

// lookupParallelSlack bounds LookupResolveParallel relative to
// LookupResolve. On a single-core runner the two are equal modulo noise;
// on multicore, lock-free reads come in well under 1.0x. A read path
// that reacquired a lock would blow through this on any parallel machine.
const lookupParallelSlack = 1.15

// fleetFanoutCeilingNs is the absolute per-op budget for FleetRxFanout
// (~710 ns/op measured, ~2.5x headroom).
const fleetFanoutCeilingNs = 1800.0

type result struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics"`
}

type artifact struct {
	path    string
	results []result
}

// find locates a benchmark by base name, tolerating the -GOMAXPROCS
// suffix go test appends depending on how the artifact was produced.
func (a *artifact) find(bench string) *result {
	for i := range a.results {
		name := a.results[i].Name
		if j := strings.LastIndex(name, "-"); j > 0 {
			if base := name[:j]; strings.HasSuffix(base, bench) {
				name = base
			}
		}
		if strings.HasSuffix(name, bench) {
			return &a.results[i]
		}
	}
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: FAIL — "+format+"\n", args...)
	os.Exit(1)
}

// gateAllocs enforces 0 allocs/op on the named benchmarks, skipping
// (with a note) artifacts produced without -benchmem.
func gateAllocs(a *artifact, what string, benches ...string) {
	for _, bench := range benches {
		r := a.find(bench)
		allocs, ok := r.Metrics["allocs/op"]
		if !ok {
			fmt.Printf("benchgate: %s has no allocs/op (artifact built without -benchmem); skipping alloc gate\n", bench)
			continue
		}
		fmt.Printf("benchgate: %s allocs/op=%g\n", bench, allocs)
		if allocs > 0 {
			fail("%s allocates %g/op; %s must stay allocation-free", bench, allocs, what)
		}
	}
}

func gateFastPath(a *artifact) {
	single := a.find("Figure2_FullFastPath")
	parallel := a.find("Figure2_FullFastPathParallel")
	if single.Metrics["pps"] == 0 || parallel.Metrics["pps"] == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: missing full-fast-path pps metrics in %s\n", a.path)
		os.Exit(2)
	}
	fmt.Printf("benchgate: single=%.0f pps (%.0f ns/op), parallel=%.0f pps (%.0f ns/op, %.2fx)\n",
		single.Metrics["pps"], single.NsPerOp, parallel.Metrics["pps"], parallel.NsPerOp,
		parallel.Metrics["pps"]/single.Metrics["pps"])
	if parallel.Metrics["pps"] < single.Metrics["pps"] {
		fail("parallel fast path (%.0f pps) is slower than single (%.0f pps); egress batching regressed",
			parallel.Metrics["pps"], single.Metrics["pps"])
	}
	if single.NsPerOp > 0 && parallel.NsPerOp > parallelRatchet*single.NsPerOp {
		fail("parallel %.0f ns/op exceeds %.2fx of single %.0f ns/op; the batch pipeline stopped amortizing",
			parallel.NsPerOp, parallelRatchet, single.NsPerOp)
	}
	if parallel.NsPerOp > parallelCeilingNs {
		fail("parallel %.0f ns/op exceeds the %.0f ns/op ceiling (BENCH_6 ratchet)",
			parallel.NsPerOp, parallelCeilingNs)
	}
	gateAllocs(a, "the fast path", "Figure2_FullFastPath", "Figure2_FullFastPathParallel")
}

func gateLookup(a *artifact) {
	single := a.find("LookupResolve")
	parallel := a.find("LookupResolveParallel")
	fmt.Printf("benchgate: resolve=%.0f ns/op, parallel=%.0f ns/op (%.2fx)\n",
		single.NsPerOp, parallel.NsPerOp, parallel.NsPerOp/single.NsPerOp)
	if churn := a.find("LookupChurn"); churn != nil {
		fmt.Printf("benchgate: churn resolve=%.0f ns/op (%.0f registrations/s in background)\n",
			churn.NsPerOp, churn.Metrics["churn/s"])
	}
	if single.NsPerOp > lookupCeilingNs {
		fail("LookupResolve %.0f ns/op exceeds the %.0f ns/op ceiling at 10^6 records; reads left the snapshot path",
			single.NsPerOp, lookupCeilingNs)
	}
	if parallel.NsPerOp > lookupParallelSlack*single.NsPerOp {
		fail("LookupResolveParallel %.0f ns/op exceeds %.2fx of single-thread %.0f ns/op; concurrent resolution is contending",
			parallel.NsPerOp, lookupParallelSlack, single.NsPerOp)
	}
	gateAllocs(a, "snapshot resolution", "LookupResolve", "LookupResolveParallel")
}

func gateFleet(a *artifact) {
	fanout := a.find("FleetRxFanout")
	fmt.Printf("benchgate: fleet fan-out=%.0f ns/op\n", fanout.NsPerOp)
	if fanout.NsPerOp > fleetFanoutCeilingNs {
		fail("FleetRxFanout %.0f ns/op exceeds the %.0f ns/op ceiling; the shared engine receive path regressed",
			fanout.NsPerOp, fleetFanoutCeilingNs)
	}
	gateAllocs(a, "the fleet receive path", "FleetRxFanout")
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate <bench.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	a := &artifact{path: os.Args[1]}
	if err := json.Unmarshal(data, &a.results); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	switch {
	case a.find("Figure2_FullFastPath") != nil && a.find("Figure2_FullFastPathParallel") != nil:
		gateFastPath(a)
	case a.find("LookupResolve") != nil && a.find("LookupResolveParallel") != nil:
		gateLookup(a)
	case a.find("FleetRxFanout") != nil:
		gateFleet(a)
	default:
		fmt.Fprintf(os.Stderr, "benchgate: %s contains no recognized benchmark suite\n", a.path)
		os.Exit(2)
	}
	fmt.Println("benchgate: OK")
}
