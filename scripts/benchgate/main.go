// Command benchgate enforces two fast-path invariants on a BENCH_*.json
// artifact (as written by scripts/benchjson):
//
//   - the batched parallel fast path must not be slower than the
//     per-packet single-worker fast path. The seed repo shipped with that
//     inversion (parallel pps was ~12x below single pps); the batching
//     work exists to remove it, and this gate keeps it from coming back;
//   - the full-fast-path benchmarks must report 0 allocs/op (when the
//     artifact was produced with -benchmem). The hit path is engineered to
//     allocate nothing beyond the transport's datagram copy; a nonzero
//     count means someone put an allocation — telemetry included — back on
//     the per-packet path.
//
// Usage: go run ./scripts/benchgate BENCH_5.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type result struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate <bench.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var results []result
	if err := json.Unmarshal(data, &results); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	find := func(bench string) map[string]float64 {
		for _, r := range results {
			// Bench names may carry a -GOMAXPROCS suffix depending on how
			// the artifact was produced; match on the base name.
			name := r.Name
			if i := strings.LastIndex(name, "-"); i > 0 {
				if base := name[:i]; strings.HasSuffix(base, bench) {
					name = base
				}
			}
			if strings.HasSuffix(name, bench) {
				return r.Metrics
			}
		}
		return nil
	}
	single := find("Figure2_FullFastPath")["pps"]
	parallel := find("Figure2_FullFastPathParallel")["pps"]
	if single == 0 || parallel == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: missing pps metrics (single=%v parallel=%v) in %s\n",
			single, parallel, os.Args[1])
		os.Exit(2)
	}
	fmt.Printf("benchgate: single=%.0f pps, parallel=%.0f pps (%.2fx)\n",
		single, parallel, parallel/single)
	if parallel < single {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — parallel fast path (%.0f pps) is slower than single (%.0f pps); egress batching regressed\n",
			parallel, single)
		os.Exit(1)
	}
	for _, bench := range []string{"Figure2_FullFastPath", "Figure2_FullFastPathParallel"} {
		m := find(bench)
		allocs, ok := m["allocs/op"]
		if !ok {
			fmt.Printf("benchgate: %s has no allocs/op (artifact built without -benchmem); skipping alloc gate\n", bench)
			continue
		}
		fmt.Printf("benchgate: %s allocs/op=%g\n", bench, allocs)
		if allocs > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s allocates %g/op; the fast path must stay allocation-free\n",
				bench, allocs)
			os.Exit(1)
		}
	}
	fmt.Println("benchgate: OK")
}
