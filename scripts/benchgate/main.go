// Command benchgate enforces the fast-path performance invariants on a
// BENCH_*.json artifact (as written by scripts/benchjson):
//
//   - the batched parallel fast path must not be slower than the
//     per-packet single-worker fast path. The seed repo shipped with that
//     inversion (parallel pps was ~12x below single pps); the batching
//     work exists to remove it, and this gate keeps it from coming back;
//   - ratchet: the batch pipeline (OpenBatch → LookupN → SealBatch →
//     vectored/GSO send) must keep the parallel bench at or below 0.85x
//     the single-worker per-packet ns/op — batching that amortizes nothing
//     is a regression even if it is not an outright inversion;
//   - absolute ceiling: FullFastPathParallel must stay under
//     parallelCeilingNs per op. Seeded from BENCH_6.json (1102 ns/op
//     measured) with headroom for machine noise; the pre-batch baseline
//     (BENCH_5.json) was 2252 ns/op, safely above the ceiling;
//   - the full-fast-path benchmarks must report 0 allocs/op (when the
//     artifact was produced with -benchmem). The hit path is engineered to
//     allocate nothing beyond the transport's datagram copy; a nonzero
//     count means someone put an allocation — telemetry included — back on
//     the per-packet path.
//
// Usage: go run ./scripts/benchgate BENCH_6.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// parallelCeilingNs is the absolute per-op budget for
// Figure2_FullFastPathParallel, seeded from the BENCH_6.json measurement
// (1102 ns/op) with ~1.6x headroom for slower or noisier machines.
const parallelCeilingNs = 1800.0

// parallelRatchet is the required parallel/single ns-per-op ratio: the
// batched pipeline must be at least this much cheaper per packet than the
// per-packet single-worker path.
const parallelRatchet = 0.85

type result struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate <bench.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var results []result
	if err := json.Unmarshal(data, &results); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	find := func(bench string) *result {
		for i := range results {
			// Bench names may carry a -GOMAXPROCS suffix depending on how
			// the artifact was produced; match on the base name.
			name := results[i].Name
			if j := strings.LastIndex(name, "-"); j > 0 {
				if base := name[:j]; strings.HasSuffix(base, bench) {
					name = base
				}
			}
			if strings.HasSuffix(name, bench) {
				return &results[i]
			}
		}
		return nil
	}
	single := find("Figure2_FullFastPath")
	parallel := find("Figure2_FullFastPathParallel")
	if single == nil || parallel == nil || single.Metrics["pps"] == 0 || parallel.Metrics["pps"] == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: missing full-fast-path results in %s\n", os.Args[1])
		os.Exit(2)
	}
	fmt.Printf("benchgate: single=%.0f pps (%.0f ns/op), parallel=%.0f pps (%.0f ns/op, %.2fx)\n",
		single.Metrics["pps"], single.NsPerOp, parallel.Metrics["pps"], parallel.NsPerOp,
		parallel.Metrics["pps"]/single.Metrics["pps"])
	if parallel.Metrics["pps"] < single.Metrics["pps"] {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — parallel fast path (%.0f pps) is slower than single (%.0f pps); egress batching regressed\n",
			parallel.Metrics["pps"], single.Metrics["pps"])
		os.Exit(1)
	}
	if single.NsPerOp > 0 && parallel.NsPerOp > parallelRatchet*single.NsPerOp {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — parallel %.0f ns/op exceeds %.2fx of single %.0f ns/op; the batch pipeline stopped amortizing\n",
			parallel.NsPerOp, parallelRatchet, single.NsPerOp)
		os.Exit(1)
	}
	if parallel.NsPerOp > parallelCeilingNs {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — parallel %.0f ns/op exceeds the %.0f ns/op ceiling (BENCH_6 ratchet)\n",
			parallel.NsPerOp, parallelCeilingNs)
		os.Exit(1)
	}
	for _, bench := range []string{"Figure2_FullFastPath", "Figure2_FullFastPathParallel"} {
		r := find(bench)
		allocs, ok := r.Metrics["allocs/op"]
		if !ok {
			fmt.Printf("benchgate: %s has no allocs/op (artifact built without -benchmem); skipping alloc gate\n", bench)
			continue
		}
		fmt.Printf("benchgate: %s allocs/op=%g\n", bench, allocs)
		if allocs > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s allocates %g/op; the fast path must stay allocation-free\n",
				bench, allocs)
			os.Exit(1)
		}
	}
	fmt.Println("benchgate: OK")
}
