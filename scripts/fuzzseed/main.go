// Command fuzzseed harvests fuzz corpus entries from live soak traffic.
//
// It runs a shortened soak scenario with a wire capture tap, then writes
// the captured packets as Go fuzz seed files:
//
//   - whole encoded datagrams      -> internal/wire/testdata/fuzz/FuzzDatagramDecode/
//   - ILP headers built from the
//     observed traffic shapes      -> internal/wire/testdata/fuzz/FuzzILPHeaderDecode/
//   - PSP packets inside ILP
//     frames (frame byte stripped) -> internal/psp/testdata/fuzz/FuzzPSPOpen/
//
// Seeds are deterministic (fixed scenario, fixed substrate seed), so
// re-running rewrites the same files. The checked-in corpus gives the CI
// fuzz smoke runs realistic sealed-traffic shapes instead of only the
// hand-written f.Add seeds.
//
//	go run ./scripts/fuzzseed            # write under the repo root
//	go run ./scripts/fuzzseed -root DIR  # write under DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"interedge/internal/services/ipfwd"
	"interedge/internal/soak"
	"interedge/internal/wire"
)

const perTarget = 8

func main() {
	root := flag.String("root", ".", "repository root to write testdata under")
	flag.Parse()

	cap := &soak.WireCapture{Max: 1024}
	sc := soak.Scenarios()["steady-diurnal"]
	sc.SimDuration = 2 * time.Minute
	res, err := soak.Run(sc, 1, soak.WithCapture(cap))
	if err != nil {
		fatal("capture soak: %v", err)
	}
	dgs := cap.Datagrams()
	fmt.Printf("capture soak: sim=%.0fs wall=%.2fs captured=%d datagrams\n",
		res.Stats.SimSeconds, res.Stats.WallSeconds, len(dgs))
	if len(dgs) == 0 {
		fatal("no datagrams captured")
	}

	var datagrams, pspPkts, ilpHdrs [][]byte
	seenDG := map[string]bool{}
	seenPSP := map[string]bool{}
	for _, dg := range dgs {
		enc, err := dg.Encode()
		if err != nil {
			continue
		}
		// Prefer variety: key whole datagrams by frame type + length so
		// the corpus spans handshakes, keepalives, and data of several
		// sizes rather than eight near-identical packets.
		if len(dg.Payload) > 0 {
			dgKey := fmt.Sprintf("%d/%d", dg.Payload[0], len(enc))
			if !seenDG[dgKey] && len(datagrams) < perTarget {
				seenDG[dgKey] = true
				datagrams = append(datagrams, enc)
			}
			if wire.FrameType(dg.Payload[0]) == wire.FrameILP {
				psp := dg.Payload[1:]
				pspKey := strconv.Itoa(len(psp))
				if !seenPSP[pspKey] && len(pspPkts) < perTarget {
					seenPSP[pspKey] = true
					pspPkts = append(pspPkts, append([]byte(nil), psp...))
				}
			}
		}
	}

	// ILP headers ride encrypted inside the PSP packets, so they cannot
	// be lifted from the wire; rebuild the header shapes the soak traffic
	// actually used — echo with empty service data, ipfwd destinations
	// drawn from captured addresses — plus the control service.
	addrs := map[wire.Addr]bool{}
	for _, dg := range dgs {
		addrs[dg.Dst] = true
	}
	conn := wire.ConnectionID(1)
	for addr := range addrs {
		if len(ilpHdrs) >= perTarget-2 {
			break
		}
		h := wire.ILPHeader{Service: wire.SvcIPFwd, Conn: conn, Data: ipfwd.DestData(addr)}
		conn++
		if enc, err := h.Encode(); err == nil {
			ilpHdrs = append(ilpHdrs, enc)
		}
	}
	for _, h := range []wire.ILPHeader{
		{Service: wire.SvcEcho, Conn: 7},
		{Service: wire.SvcControl, Conn: 1, Data: []byte("soak")},
	} {
		if enc, err := h.Encode(); err == nil {
			ilpHdrs = append(ilpHdrs, enc)
		}
	}

	// Handoff states ride sealed SvcHandoff frames between SNs, so like
	// the ILP headers they cannot be lifted from the wire; rebuild the
	// shapes a live drain produces — hosts and warmth sources drawn from
	// the captured addresses, key epochs and SPIs varied per seed.
	addrList := make([]wire.Addr, 0, len(addrs))
	for a := range addrs {
		addrList = append(addrList, a)
	}
	sort.Slice(addrList, func(i, j int) bool { return addrList[i].Less(addrList[j]) })
	var handoffs [][]byte
	for i := 0; i < perTarget && i < len(addrList); i++ {
		hs := wire.HandoffState{
			Host:      addrList[i],
			Initiator: i%2 == 0,
			BaseSPI:   uint32(i+1) << 8,
			TxEpoch:   uint32(i * 3),
			RxEpoch:   uint32(i),
		}
		for j := range hs.Identity {
			hs.Identity[j] = byte(i + j)
			hs.Master[j] = byte(i*7 + j + 1)
		}
		// Warmth counts span empty through several flows per host.
		for w := 0; w < i && w < wire.MaxHandoffWarmth; w++ {
			hs.Warmth = append(hs.Warmth, wire.FlowKey{
				Src:     addrList[(i+w+1)%len(addrList)],
				Service: wire.SvcEcho,
				Conn:    wire.ConnectionID(w + 1),
			})
		}
		if enc, err := hs.Encode(); err == nil {
			handoffs = append(handoffs, enc)
		}
	}

	write := func(dir string, seeds [][]byte) {
		full := filepath.Join(*root, dir)
		if err := os.MkdirAll(full, 0o755); err != nil {
			fatal("mkdir %s: %v", full, err)
		}
		for i, seed := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
			name := filepath.Join(full, fmt.Sprintf("soak-capture-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				fatal("write %s: %v", name, err)
			}
		}
		fmt.Printf("wrote %d seeds under %s\n", len(seeds), full)
	}
	write("internal/wire/testdata/fuzz/FuzzDatagramDecode", datagrams)
	write("internal/wire/testdata/fuzz/FuzzILPHeaderDecode", ilpHdrs)
	write("internal/wire/testdata/fuzz/FuzzHandoffDecode", handoffs)
	write("internal/psp/testdata/fuzz/FuzzPSPOpen", pspPkts)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
