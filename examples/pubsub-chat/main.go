// Pub/sub chat: three users served by two different IESPs (edomains) chat
// over an interconnected pub/sub topic — the paper's motivating picture of
// services that span providers (§5, §6.2). Alice publishes from ed-west;
// Bob (ed-west, different SN) and Carol (ed-east) both receive, because
// the member-SN and member-edomain machinery routes messages across the
// settlement-free gateway mesh.
//
//	go run ./examples/pubsub-chat
package main

import (
	"fmt"
	"log"
	"time"

	"interedge/internal/cryptutil"
	"interedge/internal/lab"
	"interedge/internal/lookup"
	"interedge/internal/services/pubsub"
	"interedge/internal/sn"
)

const topic = "chat/room-42"

func main() {
	topo := lab.New()
	defer topo.Close()

	setup := func(node *sn.SN, ed *lab.Edomain) error {
		return node.Register(pubsub.New(ed.Core, topo.Fabric, topo.Global))
	}
	west, err := topo.AddEdomain("ed-west", 2, setup)
	if err != nil {
		log.Fatal(err)
	}
	east, err := topo.AddEdomain("ed-east", 2, setup)
	if err != nil {
		log.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		log.Fatal(err)
	}

	// The room owner creates the topic and opens it to everyone.
	owner, err := cryptutil.NewSigningKeypair()
	if err != nil {
		log.Fatal(err)
	}
	if err := topo.Global.CreateGroup(topic, owner.Public); err != nil {
		log.Fatal(err)
	}
	if err := topo.Global.PostOpenStatement(topic, lookup.SignOpenStatement(owner, topic)); err != nil {
		log.Fatal(err)
	}

	type user struct {
		name   string
		client *pubsub.Client
	}
	mkUser := func(name string, ed *lab.Edomain, snIdx int, inbox chan string, listen bool) user {
		h, err := topo.NewHost(ed, snIdx)
		if err != nil {
			log.Fatal(err)
		}
		c, err := pubsub.NewClient(h)
		if err != nil {
			log.Fatal(err)
		}
		if listen {
			if err := c.Subscribe(topic, nil, false, func(_ string, msg []byte) {
				inbox <- fmt.Sprintf("[%s] received: %s", name, msg)
			}); err != nil {
				log.Fatal(err)
			}
		}
		if err := c.RegisterSender(topic); err != nil {
			log.Fatal(err)
		}
		return user{name: name, client: c}
	}

	inbox := make(chan string, 32)
	alice := mkUser("alice@ed-west", west, 0, inbox, false)
	_ = mkUser("bob@ed-west", west, 1, inbox, true)
	_ = mkUser("carol@ed-east", east, 1, inbox, true)

	// Membership propagates through the edomain cores' watches on the
	// global lookup service — eventually consistent, like any directory.
	// Give the mirrors a moment before the first publish.
	time.Sleep(200 * time.Millisecond)

	lines := []string{"hello from the west edge!", "anyone east of the mesh?"}
	for _, line := range lines {
		fmt.Printf("[%s] says: %s\n", alice.name, line)
		if err := alice.client.Publish(topic, []byte(line)); err != nil {
			log.Fatal(err)
		}
		// Each line reaches both listeners.
		deadline := time.After(5 * time.Second)
		for got := 0; got < 2; {
			select {
			case entry := <-inbox:
				fmt.Println("  " + entry)
				got++
			case <-deadline:
				log.Fatalf("message %q not fully delivered", line)
			}
		}
	}
	fmt.Println("chat delivered across two IESPs via interconnected pub/sub")
}
