// Last-hop QoS: the paper's household scenario (§6.2) — a receiver behind
// a congested access link tells its first-hop SN the link's bandwidth and
// gives gaming traffic strict priority over a bulk video stream. The
// example saturates the link with bulk packets, then injects gaming
// packets and shows they jump the queue.
//
//	go run ./examples/lasthop-qos
package main

import (
	"fmt"
	"log"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/services/qos"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

func main() {
	topo := lab.New()
	defer topo.Close()
	ed, err := topo.AddEdomain("home-isp", 1, func(node *sn.SN, ed *lab.Edomain) error {
		return node.Register(qos.New())
	})
	if err != nil {
		log.Fatal(err)
	}

	// The household receiver, plus a game server and a video CDN with
	// recognizable source prefixes.
	home, err := topo.NewHost(ed, 0)
	if err != nil {
		log.Fatal(err)
	}
	gameServer, err := topo.NewHostAt("fd00:9a8e::1")
	if err != nil {
		log.Fatal(err)
	}
	videoCDN, err := topo.NewHostAt("fd00:cd11::1")
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range []*host.Host{gameServer, videoCDN} {
		if err := h.Associate(ed.SNs[0].Addr()); err != nil {
			log.Fatal(err)
		}
	}

	// The receiver configures its last-hop QoS: a 100 KB/s access link,
	// gaming traffic at strict priority 0, everything else default.
	cfg := qos.ConfigArgs{
		BandwidthBps: 100_000,
		Mode:         "priority",
		Classes:      []qos.Class{{Prefix: "fd00:9a8e::/32", Level: 0}},
	}
	if _, err := home.InvokeFirstHop(wire.SvcQoS, "configure", cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Println("receiver configured last-hop QoS: 100 KB/s, gaming prefix at priority 0")

	type arrival struct {
		tag  byte
		when time.Time
	}
	arrivals := make(chan arrival, 256)
	home.OnService(wire.SvcQoS, func(msg host.Message) {
		arrivals <- arrival{tag: msg.Payload[0], when: time.Now()}
	})

	// The video CDN floods 40 KB of bulk data (~0.4s of link time).
	videoConn, err := videoCDN.NewConn(wire.SvcQoS)
	if err != nil {
		log.Fatal(err)
	}
	bulk := make([]byte, 1000)
	bulk[0] = 'V'
	for i := 0; i < 40; i++ {
		if err := videoConn.Send(qos.DestData(home.Addr()), bulk); err != nil {
			log.Fatal(err)
		}
	}
	// Let the queue build, then fire three game updates.
	time.Sleep(50 * time.Millisecond)
	gameConn, err := gameServer.NewConn(wire.SvcQoS)
	if err != nil {
		log.Fatal(err)
	}
	gameSent := time.Now()
	for i := 0; i < 3; i++ {
		if err := gameConn.Send(qos.DestData(home.Addr()), []byte{'G'}); err != nil {
			log.Fatal(err)
		}
	}

	games, videosBeforeLastGame, videos := 0, 0, 0
	var lastGameLatency time.Duration
	deadline := time.After(15 * time.Second)
	for games < 3 || videos < 40 {
		select {
		case a := <-arrivals:
			if a.tag == 'G' {
				games++
				lastGameLatency = a.when.Sub(gameSent)
				videosBeforeLastGame = videos
			} else {
				videos++
			}
		case <-deadline:
			log.Fatalf("stalled with %d game / %d video packets", games, videos)
		}
	}
	fmt.Printf("all 3 gaming packets delivered in %v with only %d/40 video packets ahead of them\n",
		lastGameLatency.Round(time.Millisecond), videosBeforeLastGame)
	fmt.Printf("the remaining %d video packets drained afterwards at link rate\n", 40-videosBeforeLastGame)
	if videosBeforeLastGame > 20 {
		log.Fatal("priority scheduling did not take effect")
	}
	fmt.Println("gaming latency protected while streaming kept its bandwidth")
}
