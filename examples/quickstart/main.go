// Quickstart: the smallest complete InterEdge deployment — one edomain,
// one service node running the echo service, and one host that associates,
// opens a service connection, and round-trips a message.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"interedge/internal/lab"
	"interedge/internal/services/echo"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

func main() {
	// 1. Build the deployment: substrate, lookup service, peering fabric.
	topo := lab.New()
	defer topo.Close()

	// 2. One edomain with one SN running the echo service module.
	ed, err := topo.AddEdomain("quickstart", 1, func(node *sn.SN, ed *lab.Edomain) error {
		return node.Register(echo.New())
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. An InterEdge host: it handshakes a pipe with its first-hop SN
	//    (keying ILP) and publishes its signed address record.
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host %s associated with SN %s\n", h.Addr(), ed.SNs[0].Addr())

	// 4. Open a service connection — the explicit invocation style of the
	//    paper's §3.2: the service is named in the ILP header.
	conn, err := h.NewConn(wire.SvcEcho)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// 5. Send and await the echo.
	for i := 1; i <= 3; i++ {
		msg := fmt.Sprintf("ping %d", i)
		start := time.Now()
		if err := conn.Send(nil, []byte(msg)); err != nil {
			log.Fatal(err)
		}
		select {
		case reply := <-conn.Receive():
			fmt.Printf("echoed %q in %v\n", reply.Payload, time.Since(start).Round(time.Microsecond))
		case <-time.After(3 * time.Second):
			log.Fatal("timed out")
		}
	}

	c := ed.SNs[0].Counters()
	fmt.Printf("SN counters: rx=%d slow-path=%d forwarded=%d\n", c.RxPackets, c.SlowPathSent, c.Forwarded)
}
