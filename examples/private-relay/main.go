// Private relay: the paper's two-hop privacy pattern (§1.2, §6.2). A
// client reaches a web service such that the ingress SN knows the client
// but not the destination (the envelope is sealed to the egress key), and
// the egress SN knows the destination but not the client. The example
// also runs an oblivious DNS query first — resolving the service name
// without the resolver learning who asked — and finishes by printing what
// each vantage point actually observed.
//
//	go run ./examples/private-relay
package main

import (
	"fmt"
	"log"
	"time"

	"interedge/internal/cryptutil"
	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/services/odns"
	"interedge/internal/services/relay"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

func main() {
	topo := lab.New()
	defer topo.Close()

	relayDir := relay.NewKeyDirectory()
	resolverKey, err := cryptutil.NewStaticKeypair()
	if err != nil {
		log.Fatal(err)
	}

	var relayMods []*relay.Module
	ed, err := topo.AddEdomain("privacy-net", 2, func(node *sn.SN, e *lab.Edomain) error {
		m, err := relay.New(relayDir, node.Addr())
		if err != nil {
			return err
		}
		relayMods = append(relayMods, m)
		// Privacy services belong in enclaves (§6.2).
		return node.Register(m, sn.WithEnclave())
	})
	if err != nil {
		log.Fatal(err)
	}
	ingressSN, egressSN := ed.SNs[0], ed.SNs[1]

	// The web service the client wants to reach.
	webService, err := topo.NewHost(ed, 1)
	if err != nil {
		log.Fatal(err)
	}
	requests := make(chan host.Message, 4)
	webService.OnService(wire.SvcRelay, func(msg host.Message) { requests <- msg })

	// An oDNS resolver on the egress SN knows the name.
	if err := ingressSN.Register(odns.NewRelay(egressSN.Addr())); err != nil {
		log.Fatal(err)
	}
	if err := egressSN.Register(odns.NewResolver(resolverKey, map[string]wire.Addr{
		"private.example": webService.Addr(),
	})); err != nil {
		log.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		log.Fatal(err)
	}

	client, err := topo.NewHost(ed, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Oblivious name resolution.
	dns := odns.NewClient(client, resolverKey.PublicKeyBytes())
	target, err := dns.Query("private.example")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oDNS: private.example -> %s (resolver never saw client %s)\n", target, client.Addr())

	// 2. Two-hop relayed request.
	conn, err := relay.Send(client, relayDir, egressSN.Addr(), target, []byte("GET /private"))
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	var req host.Message
	select {
	case req = <-requests:
	case <-time.After(5 * time.Second):
		log.Fatal("request never delivered")
	}
	fmt.Printf("service received %q from %s (the egress SN, not the client)\n", req.Payload, req.Src)

	// 3. The reply retraces the relay path.
	if err := relay.Reply(webService, req, []byte("200 OK: secret page")); err != nil {
		log.Fatal(err)
	}
	select {
	case resp := <-conn.Receive():
		fmt.Printf("client received %q from %s (its ingress SN, not the service)\n", resp.Payload, resp.Src)
	case <-time.After(5 * time.Second):
		log.Fatal("reply never arrived")
	}

	// 4. What did each vantage point observe?
	fmt.Println("\nvantage-point audit:")
	egressSawClient := false
	for _, src := range relayMods[1].SeenSources() {
		if src == client.Addr() {
			egressSawClient = true
		}
	}
	fmt.Printf("  egress SN observed the client address: %v\n", egressSawClient)
	fmt.Printf("  relay modules ran inside enclaves (crossings: ingress=%d egress=%d)\n",
		enclCrossings(ingressSN), enclCrossings(egressSN))
	if egressSawClient {
		log.Fatal("privacy violated")
	}
	fmt.Println("client identity and destination were never visible at the same hop")
}

func enclCrossings(node *sn.SN) uint64 {
	if e, ok := node.ModuleEnclave(wire.SvcRelay); ok {
		return e.Crossings()
	}
	return 0
}
