// CDN interconnect: the paper's §5 coordination example made concrete. An
// application provider publishes content; two IESPs (a premium global one
// and a cheap regional one) publish rate cards; a broker stitches coverage
// and the nondiscrimination audit verifies §5's neutrality requirement.
// Clients in each region then fetch through their local IESP's cache:
// first a miss (origin fetch), then hits served at the edge.
//
//	go run ./examples/cdn-interconnect
package main

import (
	"fmt"
	"log"

	"interedge/internal/broker"
	"interedge/internal/lab"
	"interedge/internal/services/cdncache"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

func main() {
	topo := lab.New()
	defer topo.Close()

	caches := map[string]*cdncache.Module{}
	mk := func(region string) func(node *sn.SN, ed *lab.Edomain) error {
		return func(node *sn.SN, ed *lab.Edomain) error {
			m := cdncache.New(1 << 20)
			caches[region] = m
			return node.Register(m)
		}
	}
	west, err := topo.AddEdomain("iesp-west", 1, mk("west"))
	if err != nil {
		log.Fatal(err)
	}
	east, err := topo.AddEdomain("iesp-east", 1, mk("east"))
	if err != nil {
		log.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		log.Fatal(err)
	}

	// --- The economic layer (§5) -----------------------------------------
	exchange := broker.NewExchange()
	coverage := broker.NewCoverageDirectory()
	must(exchange.Publish(broker.RateCard{Provider: "globalco", Entries: []broker.RateEntry{
		{Service: wire.SvcCDNCache, Region: "west", Tiers: []broker.Tier{{MinVolumeGB: 0, PricePerGB: 90}}},
		{Service: wire.SvcCDNCache, Region: "east", Tiers: []broker.Tier{{MinVolumeGB: 0, PricePerGB: 90}}},
	}}))
	coverage.Declare("globalco", "west", "east")
	must(exchange.Publish(broker.RateCard{Provider: "east-carrier", Entries: []broker.RateEntry{
		{Service: wire.SvcCDNCache, Region: "east", Tiers: []broker.Tier{{MinVolumeGB: 0, PricePerGB: 35}}},
	}}))
	coverage.Declare("east-carrier", "east")

	b := broker.NewBroker(exchange, coverage)
	plan, err := b.Stitch(wire.SvcCDNCache, 500, "west", "east")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("broker stitched coverage from published rate cards:")
	for region, provider := range plan.Assignments {
		price, _ := exchange.Quote(provider, wire.SvcCDNCache, broker.Region(region), 500)
		fmt.Printf("  %-5s -> %-12s at %d per GB\n", region, provider, price)
	}
	fmt.Printf("  total for 500 GB/region: %d (all-global would be %d)\n", plan.TotalCost, uint64(500*90*2))
	if _, err := b.Execute("app-provider", wire.SvcCDNCache, 500, plan); err != nil {
		log.Fatal(err)
	}
	must(exchange.AuditNondiscrimination())
	fmt.Println("  nondiscrimination audit passed")
	fmt.Println()

	// --- The data plane ---------------------------------------------------
	origin, err := topo.NewHost(west, 0)
	if err != nil {
		log.Fatal(err)
	}
	content := []byte("<html>the application provider's landing page</html>")
	cdncache.ServeOrigin(origin, map[string][]byte{"index.html": content})
	// Publish the origin at both IESPs' caches.
	for _, ed := range []*lab.Edomain{west, east} {
		h, err := topo.NewHost(ed, 0)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := h.InvokeFirstHop(wire.SvcCDNCache, "publish", map[string]string{
			"name": "index.html", "origin": origin.Addr().String(),
		}); err != nil {
			log.Fatal(err)
		}
	}

	for _, spot := range []struct {
		region string
		ed     *lab.Edomain
	}{{"west", west}, {"east", east}} {
		client, err := topo.NewHost(spot.ed, 0)
		if err != nil {
			log.Fatal(err)
		}
		c := cdncache.NewClient(client)
		for i := 0; i < 2; i++ {
			data, err := c.Get("index.html")
			if err != nil {
				log.Fatal(err)
			}
			_ = data
		}
		st := caches[spot.region].Stats()
		fmt.Printf("client in %-5s: 2 fetches -> %d origin fetch, %d cache hit\n",
			spot.region, st.OriginFetches, st.Hits)
	}
	fmt.Println("\ncontent served from each IESP's edge after one origin fetch per region")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
