package interedge_test

import (
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/peering"
	"interedge/internal/services/echo"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// BenchmarkEndToEndEchoRTT measures the full-stack request/response round
// trip: host stack → pipe (PSP seal) → SN pipe-terminus → slow path →
// module → seal → host. This is the user-visible latency floor of the
// architecture on this machine.
func BenchmarkEndToEndEchoRTT(b *testing.B) {
	topo := lab.New()
	defer topo.Close()
	ed, err := topo.AddEdomain("bench", 1, func(node *sn.SN, ed *lab.Edomain) error {
		return node.Register(echo.New())
	})
	if err != nil {
		b.Fatal(err)
	}
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		b.Fatal(err)
	}
	conn, err := h.NewConn(wire.SvcEcho)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 256)
	b.ReportMetric(float64(ed.SNs[0].Pipes().RxWorkers()), "workers")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(nil, payload); err != nil {
			b.Fatal(err)
		}
		select {
		case <-conn.Receive():
		case <-time.After(5 * time.Second):
			b.Fatal("echo timed out")
		}
	}
}

// BenchmarkAblationInterEdomainPath measures §3.2's routing choice with
// real transit traffic: an echo request encapsulated under SvcPeering
// travels host → first-hop SN → (gateway chain | direct pipe) → remote SN,
// whose echo module replies straight to the host. The gateway path
// traverses two more SN hops than direct connect.
func BenchmarkAblationInterEdomainPath(b *testing.B) {
	run := func(b *testing.B, direct bool) {
		topo := lab.New()
		defer topo.Close()
		setup := func(node *sn.SN, ed *lab.Edomain) error {
			return node.Register(echo.New())
		}
		edA, err := topo.AddEdomain("ed-a", 2, setup)
		if err != nil {
			b.Fatal(err)
		}
		edB, err := topo.AddEdomain("ed-b", 2, setup)
		if err != nil {
			b.Fatal(err)
		}
		if err := topo.Mesh(); err != nil {
			b.Fatal(err)
		}
		topo.Fabric.SetDirectConnect(direct)

		h, err := topo.NewHost(edA, 1)
		if err != nil {
			b.Fatal(err)
		}
		firstHop := edA.SNs[1].Addr()
		target := edB.SNs[1].Addr() // non-gateway SN in the remote edomain
		replies := make(chan struct{}, 16)
		h.OnService(wire.SvcEcho, func(host.Message) { replies <- struct{}{} })

		inner := wire.ILPHeader{Service: wire.SvcEcho, Conn: 7}
		svcData, payload, err := peering.EncodeTransit(target, h.Addr(), &inner, make([]byte, 256))
		if err != nil {
			b.Fatal(err)
		}
		outer := wire.ILPHeader{Service: wire.SvcPeering, Conn: 7, Data: svcData}

		// Warm the path (establish all pipes along the chain).
		if err := h.Pipes().Send(firstHop, &outer, payload); err != nil {
			b.Fatal(err)
		}
		select {
		case <-replies:
		case <-time.After(5 * time.Second):
			b.Fatal("warm-up reply timed out")
		}

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := h.Pipes().Send(firstHop, &outer, payload); err != nil {
				b.Fatal(err)
			}
			select {
			case <-replies:
			case <-time.After(5 * time.Second):
				b.Fatal("reply timed out")
			}
		}
	}
	b.Run("gateway-path", func(b *testing.B) { run(b, false) })
	b.Run("direct-connect", func(b *testing.B) { run(b, true) })
}
