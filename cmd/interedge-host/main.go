// Command interedge-host is a minimal InterEdge host agent over real UDP:
// it associates with a first-hop SN and sends echo requests — the
// cross-process counterpart of the quickstart example.
//
//	interedge-host -addr fd00::1 -listen 127.0.0.1:7001 \
//	    -directory nodes.txt -sn fd00::100 -send "hello" -count 3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"interedge/internal/handshake"
	"interedge/internal/host"
	"interedge/internal/netsim"
	"interedge/internal/wire"
)

func main() {
	addr := flag.String("addr", "fd00::1", "InterEdge address of this host")
	listen := flag.String("listen", "127.0.0.1:7001", "UDP listen endpoint")
	directory := flag.String("directory", "", "path to the address-to-UDP directory file")
	snAddr := flag.String("sn", "fd00::100", "first-hop SN address")
	message := flag.String("send", "hello, interedge", "payload for echo requests")
	count := flag.Int("count", 3, "number of echo requests")
	timeout := flag.Duration("timeout", 3*time.Second, "per-request timeout")
	flag.Parse()

	dir := netsim.NewUDPDirectory()
	if *directory != "" {
		if err := loadDirectory(dir, *directory); err != nil {
			fail("load directory: %v", err)
		}
	}
	tr, err := netsim.NewUDPTransport(wire.MustAddr(*addr), *listen, dir)
	if err != nil {
		fail("bind: %v", err)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		fail("identity: %v", err)
	}
	h, err := host.New(host.Config{Transport: tr, Identity: id})
	if err != nil {
		fail("host: %v", err)
	}
	defer h.Close()

	if err := h.Associate(wire.MustAddr(*snAddr)); err != nil {
		fail("associate with %s: %v", *snAddr, err)
	}
	fmt.Printf("associated with SN %s\n", *snAddr)

	conn, err := h.NewConn(wire.SvcEcho)
	if err != nil {
		fail("open connection: %v", err)
	}
	defer conn.Close()
	for i := 0; i < *count; i++ {
		payload := fmt.Sprintf("%s #%d", *message, i+1)
		start := time.Now()
		if err := conn.Send(nil, []byte(payload)); err != nil {
			fail("send: %v", err)
		}
		select {
		case msg := <-conn.Receive():
			fmt.Printf("echo %d: %q in %v\n", i+1, msg.Payload, time.Since(start).Round(time.Microsecond))
		case <-time.After(*timeout):
			fail("echo %d timed out", i+1)
		}
	}
}

func loadDirectory(dir *netsim.UDPDirectory, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("bad directory line: %q", line)
		}
		ep, err := net.ResolveUDPAddr("udp", fields[1])
		if err != nil {
			return fmt.Errorf("bad endpoint %q: %w", fields[1], err)
		}
		dir.Register(wire.MustAddr(fields[0]), ep)
	}
	return scanner.Err()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
