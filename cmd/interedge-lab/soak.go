package main

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"interedge/internal/soak"
)

// runSoak executes the selected soak scenarios at each seed, writes one
// SOAK_<scenario>.json report per scenario under outDir, and returns an
// error naming every breached scenario. On breach it prints the per-gate
// diff and the full registry dump so the failure is diagnosable from CI
// output alone.
func runSoak(scenarioCSV, seedCSV, outDir string) error {
	catalog := soak.Scenarios()
	var names []string
	if scenarioCSV == "all" {
		for name := range catalog {
			names = append(names, name)
		}
		sort.Strings(names)
	} else {
		for _, name := range strings.Split(scenarioCSV, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := catalog[name]; !ok {
				return fmt.Errorf("unknown soak scenario %q (have: %s)", name, knownScenarios(catalog))
			}
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no soak scenarios selected")
	}
	seeds, err := parseSeeds(seedCSV)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create soak output dir: %v", err)
	}

	var breached []string
	for _, name := range names {
		sc := catalog[name]
		rp := soak.NewReport(name)
		for _, seed := range seeds {
			res, err := soak.Run(sc, seed)
			if err != nil {
				return fmt.Errorf("soak %s seed=%d: %v", name, seed, err)
			}
			st := res.Stats
			fmt.Printf("soak %-20s seed=%-3d sim=%6.0fs wall=%6.2fs sent=%-7d delivered=%-7d pass=%v\n",
				name, seed, st.SimSeconds, st.WallSeconds, st.Sent, st.Delivered, res.Passed())
			if !res.Passed() {
				fmt.Printf("SLO breach in %s seed=%d:\n%s", name, seed, res.FailureDiff())
				fmt.Println(res.DumpRegistries())
				breached = append(breached, fmt.Sprintf("%s/seed%d", name, seed))
			}
			rp.AddRun(res)
		}
		path, err := rp.WriteFile(outDir)
		if err != nil {
			return fmt.Errorf("write soak report: %v", err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if len(breached) > 0 {
		return fmt.Errorf("SLO gates breached: %s", strings.Join(breached, ", "))
	}
	return nil
}

func parseSeeds(csv string) ([]int64, error) {
	var seeds []int64
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", s, err)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds given")
	}
	return seeds, nil
}

func knownScenarios(catalog map[string]soak.Scenario) string {
	names := make([]string, 0, len(catalog))
	for name := range catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
