// Command interedge-lab stands up a complete in-process InterEdge
// deployment — the executable Figure 1 — and runs a scenario tour through
// the architecture: inter-edomain forwarding, pub/sub across IESPs,
// oblivious DNS, DDoS protection, attestation, and the settlement-free
// peering ledger.
//
//	interedge-lab            # run the full tour
//	interedge-lab -scenario pubsub
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"interedge/internal/cryptutil"
	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/lookup"
	"interedge/internal/services/attest"
	"interedge/internal/services/ddos"
	"interedge/internal/services/ipfwd"
	"interedge/internal/services/odns"
	"interedge/internal/services/pubsub"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

func main() {
	scenario := flag.String("scenario", "all", "scenario: all, ipfwd, pubsub, odns, ddos, attest")
	metricsAddr := flag.String("metrics", "", "HTTP listen address for the /metrics exposition endpoint (empty disables)")
	soakMode := flag.Bool("soak", false, "run compressed-time soak scenarios with SLO gates instead of the tour")
	soakScenarios := flag.String("soak-scenarios", "all", "comma-separated soak scenario names, or all")
	soakSeeds := flag.String("soak-seeds", "1,7,42", "comma-separated substrate seeds for soak runs")
	soakOut := flag.String("soak-out", ".", "directory for SOAK_<scenario>.json capacity reports")
	fleetMode := flag.Bool("fleet", false, "build the weightless host fleet and run the million-host soak instead of the tour")
	fleetSNs := flag.Int("fleet-sns", 100, "fleet service-node count")
	fleetHosts := flag.Int("fleet-hosts", 1_000_000, "fleet lite-host count")
	fleetRounds := flag.Int("fleet-rounds", 5, "full-fleet send sweeps in the fleet run")
	fleetSeed := flag.Int64("fleet-seed", 1, "substrate seed for the fleet run")
	fleetOut := flag.String("fleet-out", ".", "directory for the SOAK_million-host.json report")
	flag.Parse()

	if *fleetMode {
		if err := runFleet(*fleetSNs, *fleetHosts, *fleetRounds, *fleetSeed, *fleetOut); err != nil {
			fail("fleet: %v", err)
		}
		return
	}

	if *soakMode {
		if err := runSoak(*soakScenarios, *soakSeeds, *soakOut); err != nil {
			fail("soak: %v", err)
		}
		return
	}

	topo, world, err := build()
	if err != nil {
		fail("build topology: %v", err)
	}
	defer topo.Close()
	fmt.Println("InterEdge lab: 2 edomains x 2 SNs, full-mesh peering, global lookup")
	if *metricsAddr != "" {
		if err := serveMetrics(*metricsAddr, world); err != nil {
			fail("metrics listen: %v", err)
		}
	}
	fmt.Println()

	scenarios := map[string]func(*lab.Topology, *worldState) error{
		"ipfwd":  scenarioIPFwd,
		"pubsub": scenarioPubSub,
		"odns":   scenarioODNS,
		"ddos":   scenarioDDoS,
		"attest": scenarioAttest,
	}
	order := []string{"ipfwd", "pubsub", "odns", "ddos", "attest"}
	if *scenario != "all" {
		fn, ok := scenarios[*scenario]
		if !ok {
			fail("unknown scenario %q", *scenario)
		}
		if err := fn(topo, world); err != nil {
			fail("%s: %v", *scenario, err)
		}
		return
	}
	for _, name := range order {
		if err := scenarios[name](topo, world); err != nil {
			fail("%s: %v", name, err)
		}
	}
	fmt.Println("settlement-free peering ledger:")
	for _, rec := range topo.Fabric.Ledger() {
		fmt.Printf("  %s -> %s: %d packets, %d bytes, fees owed: %d\n",
			rec.From, rec.To, rec.Packets, rec.Bytes, rec.FeesOwed)
	}
	fmt.Println("\nall scenarios passed")
}

// serveMetrics exposes every SN's registry on one /metrics endpoint, each
// node's series distinguished by an injected node="<addr>" label.
func serveMetrics(addr string, world *worldState) error {
	type namedSN struct {
		name string
		node *sn.SN
	}
	var nodes []namedSN
	for _, ed := range []*lab.Edomain{world.edA, world.edB} {
		for i, node := range ed.SNs {
			nodes = append(nodes, namedSN{fmt.Sprintf("%s/sn%d", ed.ID, i), node})
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, n := range nodes {
			_ = n.node.Telemetry().Snapshot().WriteProm(w, "node", n.name)
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()
	return nil
}

type worldState struct {
	edA, edB    *lab.Edomain
	resolverKey cryptutil.StaticKeypair
	owner       cryptutil.SigningKeypair
}

func build() (*lab.Topology, *worldState, error) {
	topo := lab.New()
	world := &worldState{}
	var err error
	if world.resolverKey, err = cryptutil.NewStaticKeypair(); err != nil {
		return nil, nil, err
	}
	if world.owner, err = cryptutil.NewSigningKeypair(); err != nil {
		return nil, nil, err
	}
	setup := func(node *sn.SN, ed *lab.Edomain) error {
		if err := node.Register(ipfwd.New(topo.Global, topo.Fabric)); err != nil {
			return err
		}
		if err := node.Register(pubsub.New(ed.Core, topo.Fabric, topo.Global)); err != nil {
			return err
		}
		if err := node.Register(ddos.New()); err != nil {
			return err
		}
		return node.Register(attest.New(node.TPM()))
	}
	if world.edA, err = topo.AddEdomain("ed-a", 2, setup); err != nil {
		return nil, nil, err
	}
	if world.edB, err = topo.AddEdomain("ed-b", 2, setup); err != nil {
		return nil, nil, err
	}
	// oDNS: relay on ed-a SN 1, resolver on ed-b SN 1.
	relaySN, resolverSN := world.edA.SNs[1], world.edB.SNs[1]
	if err := relaySN.Register(odns.NewRelay(resolverSN.Addr())); err != nil {
		return nil, nil, err
	}
	if err := resolverSN.Register(odns.NewResolver(world.resolverKey, map[string]wire.Addr{
		"service.example": wire.MustAddr("fd00::5e"),
	})); err != nil {
		return nil, nil, err
	}
	if err := topo.Mesh(); err != nil {
		return nil, nil, err
	}
	if err := topo.Global.CreateGroup("lab-topic", world.owner.Public); err != nil {
		return nil, nil, err
	}
	if err := topo.Global.PostOpenStatement("lab-topic",
		lookup.SignOpenStatement(world.owner, "lab-topic")); err != nil {
		return nil, nil, err
	}
	return topo, world, nil
}

func scenarioIPFwd(topo *lab.Topology, w *worldState) error {
	fmt.Println("[ipfwd] host in ed-a sends to host in ed-b through gateway pipes")
	a, err := topo.NewHost(w.edA, 1)
	if err != nil {
		return err
	}
	b, err := topo.NewHost(w.edB, 1)
	if err != nil {
		return err
	}
	inbox := make(chan host.Message, 1)
	b.OnService(wire.SvcIPFwd, func(msg host.Message) { inbox <- msg })
	conn, err := a.NewConn(wire.SvcIPFwd)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(ipfwd.DestData(b.Addr()), []byte("hello across edomains")); err != nil {
		return err
	}
	select {
	case msg := <-inbox:
		fmt.Printf("  delivered: %q via %s\n\n", msg.Payload, msg.Src)
		return nil
	case <-time.After(5 * time.Second):
		return fmt.Errorf("delivery timed out")
	}
}

func scenarioPubSub(topo *lab.Topology, w *worldState) error {
	fmt.Println("[pubsub] publisher in ed-a, subscribers in both edomains")
	pub, err := topo.NewHost(w.edA, 0)
	if err != nil {
		return err
	}
	pubClient, err := pubsub.NewClient(pub)
	if err != nil {
		return err
	}
	recv := make(chan string, 4)
	for i, spot := range []struct {
		ed  *lab.Edomain
		idx int
	}{{w.edA, 1}, {w.edB, 0}} {
		sub, err := topo.NewHost(spot.ed, spot.idx)
		if err != nil {
			return err
		}
		subClient, err := pubsub.NewClient(sub)
		if err != nil {
			return err
		}
		tag := fmt.Sprintf("subscriber-%d", i)
		if err := subClient.Subscribe("lab-topic", nil, false, func(topic string, msg []byte) {
			recv <- fmt.Sprintf("%s got %q", tag, msg)
		}); err != nil {
			return err
		}
	}
	if err := pubClient.RegisterSender("lab-topic"); err != nil {
		return err
	}
	if err := pubClient.Publish("lab-topic", []byte("breaking news")); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		select {
		case line := <-recv:
			fmt.Printf("  %s\n", line)
		case <-time.After(5 * time.Second):
			return fmt.Errorf("subscriber %d never received", i)
		}
	}
	fmt.Println()
	return nil
}

func scenarioODNS(topo *lab.Topology, w *worldState) error {
	fmt.Println("[odns] oblivious query: relay never sees the name, resolver never sees the client")
	client, err := topo.NewHost(w.edA, 1)
	if err != nil {
		return err
	}
	c := odns.NewClient(client, w.resolverKey.PublicKeyBytes())
	addr, err := c.Query("service.example")
	if err != nil {
		return err
	}
	fmt.Printf("  service.example resolved to %s\n\n", addr)
	return nil
}

func scenarioDDoS(topo *lab.Topology, w *worldState) error {
	fmt.Println("[ddos] attacker exceeds the target's rate; drop rule offloads to the fast path")
	target, err := topo.NewHost(w.edA, 0)
	if err != nil {
		return err
	}
	if _, err := target.InvokeFirstHop(wire.SvcDDoS, "protect", map[string]any{
		"target": target.Addr().String(), "rate": 100.0, "burst": 200.0,
	}); err != nil {
		return err
	}
	attacker, err := topo.NewHost(w.edA, 0)
	if err != nil {
		return err
	}
	conn, err := attacker.NewConn(wire.SvcDDoS)
	if err != nil {
		return err
	}
	defer conn.Close()
	payload := make([]byte, 100)
	for i := 0; i < 30; i++ {
		if err := conn.Send(ddos.TargetData(target.Addr()), payload); err != nil {
			return err
		}
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	node := w.edA.SNs[0]
	for node.Counters().RuleDrops == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("no fast-path drops recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c := node.Counters()
	fmt.Printf("  fast-path drops: %d (slow path saw only %d packets)\n\n", c.RuleDrops, c.SlowPathSent)
	return nil
}

func scenarioAttest(topo *lab.Topology, w *worldState) error {
	fmt.Println("[attest] client verifies a TPM quote from its first-hop SN")
	client, err := topo.NewHost(w.edA, 0)
	if err != nil {
		return err
	}
	nonce := cryptutil.RandomBytes(16)
	wq, err := attest.RequestQuote(client, w.edA.SNs[0].Addr(), nonce)
	if err != nil {
		return err
	}
	if _, err := attest.Verify(w.edA.SNs[0].TPM().EndorsementKey(), wq, nonce); err != nil {
		return err
	}
	fmt.Printf("  quote over %d PCRs verified against the SN's endorsement key\n\n", len(wq.PCRs))
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
