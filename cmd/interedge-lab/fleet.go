package main

import (
	"fmt"
	"os"

	"interedge/internal/soak"
)

// runFleet builds the weightless host fleet and drives the million-host
// scenario against its SLO gates, writing SOAK_million-host.json under
// outDir. The flag defaults are the paper-scale shape — 100 SNs, 10^6
// lite hosts — which takes tens of minutes of wall clock on one core
// (almost all of it the adoption wave's real handshakes); -fleet-hosts
// trims it for smaller machines. On breach the per-gate diff and the
// registry dump print so the failure is diagnosable from CI output alone.
func runFleet(sns, hosts, rounds int, seed int64, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create fleet output dir: %v", err)
	}
	cfg := soak.FleetConfig{
		SNs:    sns,
		Hosts:  hosts,
		Rounds: rounds,
		Seed:   seed,
		Logf: func(format string, args ...any) {
			fmt.Printf("fleet: "+format+"\n", args...)
		},
	}
	res, err := soak.RunFleet(cfg)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("fleet %-20s seed=%-3d wall=%6.1fs sent=%-8d delivered=%-8d pass=%v\n",
		"million-host", seed, st.WallSeconds, st.Sent, st.Delivered, res.Passed())
	if !res.Passed() {
		fmt.Printf("SLO breach in million-host fleet:\n%s", res.FailureDiff())
		fmt.Println(res.DumpRegistries())
	}
	rp := soak.NewReport("million-host")
	rp.AddRun(res)
	path, err := rp.WriteFile(outDir)
	if err != nil {
		return fmt.Errorf("write fleet report: %v", err)
	}
	fmt.Printf("wrote %s\n", path)
	if !res.Passed() {
		return fmt.Errorf("SLO gates breached: million-host/seed%d", seed)
	}
	return nil
}
