// Command interedge-sn runs one InterEdge service node over real UDP, for
// multi-process deployments. A directory file maps InterEdge addresses to
// UDP endpoints (the static-routing stand-in for production discovery):
//
//	fd00::100 127.0.0.1:7000
//	fd00::1   127.0.0.1:7001
//
// Usage:
//
//	interedge-sn -addr fd00::100 -listen 127.0.0.1:7000 \
//	    -directory nodes.txt -services echo,null
//
// The node prints its identity key, registers the requested service
// modules, and serves until interrupted, printing counters every 10s.
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/services/echo"
	"interedge/internal/services/null"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

func main() {
	addr := flag.String("addr", "fd00::100", "InterEdge address of this SN")
	listen := flag.String("listen", "127.0.0.1:7000", "UDP listen endpoint")
	directory := flag.String("directory", "", "path to the address-to-UDP directory file")
	services := flag.String("services", "echo,null", "comma-separated service modules to register")
	statsEvery := flag.Duration("stats", 10*time.Second, "counter print interval (0 disables)")
	metricsAddr := flag.String("metrics", "", "HTTP listen address for the /metrics exposition endpoint (empty disables)")
	flag.Parse()

	dir := netsim.NewUDPDirectory()
	if *directory != "" {
		if err := loadDirectory(dir, *directory); err != nil {
			fail("load directory: %v", err)
		}
	}
	tr, err := netsim.NewUDPTransport(wire.MustAddr(*addr), *listen, dir)
	if err != nil {
		fail("bind: %v", err)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		fail("identity: %v", err)
	}
	node, err := sn.New(sn.Config{
		Transport: tr,
		Identity:  id,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fail("start SN: %v", err)
	}
	defer node.Close()

	for _, svc := range strings.Split(*services, ",") {
		switch strings.TrimSpace(svc) {
		case "echo":
			err = node.Register(echo.New())
		case "null":
			err = node.Register(null.New())
		case "":
		default:
			fail("unknown service %q (this binary bundles: echo, null)", svc)
		}
		if err != nil {
			fail("register %s: %v", svc, err)
		}
	}

	fmt.Printf("interedge-sn %s listening on %s\n", *addr, *listen)
	fmt.Printf("identity: %s\n", hex.EncodeToString(id.PublicKey()))

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = node.Telemetry().Snapshot().WriteProm(w, "node", *addr)
		})
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fail("metrics listen: %v", err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
		go func() { _ = http.Serve(ln, mux) }()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsEvery > 0 {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-stop:
			fmt.Println("\nshutting down")
			return
		case <-tick:
			c := node.Counters()
			fmt.Printf("rx=%d fast=%d slow=%d fwd=%d drops(rule=%d queue=%d nomod=%d)\n",
				c.RxPackets, c.FastPathHits, c.SlowPathSent, c.Forwarded,
				c.RuleDrops, c.SlowPathDrops, c.NoModuleDrops)
		}
	}
}

func loadDirectory(dir *netsim.UDPDirectory, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("bad directory line: %q", line)
		}
		ep, err := net.ResolveUDPAddr("udp", fields[1])
		if err != nil {
			return fmt.Errorf("bad endpoint %q: %w", fields[1], err)
		}
		dir.Register(wire.MustAddr(fields[0]), ep)
	}
	return scanner.Err()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
