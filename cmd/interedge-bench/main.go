// Command interedge-bench regenerates the paper's evaluation (Appendix C):
//
//	interedge-bench -table1              # Table 1: enclave microbenchmarks
//	interedge-bench -peering             # direct-peering tunnel maintenance
//	interedge-bench -peering -tunnels 98000   # the paper's full scale
//	interedge-bench -all                 # everything
//
// Output includes the paper's reported numbers next to the measured ones.
// Absolute values differ (the paper ran on an AMD EPYC testbed; this runs
// the software SN on whatever machine you have) — the comparison to make
// is the *shape*: no-service vs null-service gap, enclave overhead
// percentages, and sub-core tunnel maintenance cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"interedge/internal/bench"
)

func main() {
	table1 := flag.Bool("table1", false, "run the Table 1 microbenchmarks")
	peering := flag.Bool("peering", false, "run the direct-peering benchmark")
	all := flag.Bool("all", false, "run everything")
	tunnels := flag.Int("tunnels", 10000, "tunnel count for -peering (paper: 98000)")
	packets := flag.Int("packets", 50000, "measured packets per Table 1 row")
	flag.Parse()

	if !*table1 && !*peering && !*all {
		flag.Usage()
		os.Exit(2)
	}
	if *table1 || *all {
		runTable1(*packets)
	}
	if *peering || *all {
		runPeering(*tunnels)
	}
}

func runTable1(packets int) {
	fmt.Println("Table 1: No-service and null-service performance comparison")
	fmt.Println("with and without enclaves (cf. AMD SEV on AMD EPYC 7B12 in the paper).")
	fmt.Println()
	fmt.Printf("%-14s %-9s %18s %15s %22s\n",
		"Microbenchmark", "Enclave?", "Throughput (PPS)", "Latency (us)", "Paper (PPS / us)")

	paper := map[string][2]float64{
		"no-service/false":   {377420.1, 12.4},
		"no-service/true":    {372882.9, 13.1},
		"null-service/false": {120018.5, 33.0},
		"null-service/true":  {110627.1, 35.5},
	}
	rows := []struct {
		mode    string
		enclave bool
	}{
		{"no-service", false},
		{"no-service", true},
		{"null-service", false},
		{"null-service", true},
	}
	type measured struct {
		pps float64
		lat float64
	}
	got := map[string]measured{}
	workers := 0
	for _, row := range rows {
		c := bench.DefaultTable1Case(row.mode, row.enclave)
		c.Packets = packets
		res, err := bench.RunTable1(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench %s/%v: %v\n", row.mode, row.enclave, err)
			os.Exit(1)
		}
		key := fmt.Sprintf("%s/%v", row.mode, row.enclave)
		got[key] = measured{res.ThroughputPPS, float64(res.MedianLatency.Microseconds())}
		p := paper[key]
		fmt.Printf("%-14s %-9v %18.1f %15.1f %15.1f / %.1f\n",
			row.mode, row.enclave, res.ThroughputPPS,
			float64(res.MedianLatency.Nanoseconds())/1000, p[0], p[1])
		workers = res.Workers
	}
	fmt.Println()
	fmt.Printf("SN receive-pipeline width: %d worker(s)\n", workers)
	noPlain, noEncl := got["no-service/false"], got["no-service/true"]
	nullPlain, nullEncl := got["null-service/false"], got["null-service/true"]
	fmt.Printf("Shape checks (paper's qualitative claims):\n")
	fmt.Printf("  no-service/null-service throughput ratio: %.2fx (paper: 3.14x)\n",
		noPlain.pps/nullPlain.pps)
	fmt.Printf("  enclave throughput cost:  no-service %.1f%%, null-service %.1f%% (paper: <=9%%)\n",
		100*(1-noEncl.pps/noPlain.pps), 100*(1-nullEncl.pps/nullPlain.pps))
	fmt.Printf("  enclave latency cost:     no-service %.1f%%, null-service %.1f%% (paper: <=8%%)\n",
		100*(noEncl.lat/noPlain.lat-1), 100*(nullEncl.lat/nullPlain.lat-1))
	fmt.Println()
}

func runPeering(tunnels int) {
	fmt.Printf("Direct peering: %d simultaneous tunnels, symmetric key rotation every 3 minutes\n", tunnels)
	fmt.Println("(paper: 98,000 tunnels on a 16-core server consumed <0.5 core and ~3.4 Mbps)")
	fmt.Println()
	res, err := bench.RunDirectPeering(bench.PeeringConfig{
		Tunnels:           tunnels,
		RotateEvery:       3 * time.Minute,
		SimulatedDuration: 3 * time.Minute,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "peering bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  tunnels:                 %d (setup %.2fs)\n", tunnels, res.SetupTime.Seconds())
	fmt.Printf("  rotations performed:     %d (%.1f/sec)\n", res.Rotations, res.RotationsPerSec)
	fmt.Printf("  key-maintenance CPU:     %.3f cores\n", res.CPUFraction)
	fmt.Printf("  handshake bandwidth:     %.2f Mbps\n", res.BandwidthBps/1e6)
	if tunnels != 98000 {
		scale := 98000.0 / float64(tunnels)
		fmt.Printf("  extrapolated to 98,000:  %.3f cores, %.2f Mbps\n",
			res.CPUFraction*scale, res.BandwidthBps*scale/1e6)
	}
	fmt.Println()
}
