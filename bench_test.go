// Benchmarks regenerating the paper's evaluation (Appendix C) and the
// ablations DESIGN.md calls out. One bench per table row / figure stage:
//
//	Table 1      → BenchmarkTable1_*
//	App C peering → BenchmarkDirectPeering*
//	Figure 2     → BenchmarkFigure2_* (per-stage pipeline costs)
//	Ablations    → BenchmarkAblation*
//
// Run: go test -bench=. -benchmem
package interedge_test

import (
	"fmt"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"interedge/internal/bench"
	"interedge/internal/cryptutil"
	"interedge/internal/enclave"
	"interedge/internal/netsim"
	"interedge/internal/psp"
	"interedge/internal/sn"
	"interedge/internal/sn/cache"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// reportTable1 converts a harness result into benchmark metrics.
func reportTable1(b *testing.B, c bench.Table1Case) {
	b.Helper()
	c.Packets = b.N
	if c.Packets < 2000 {
		c.Packets = 2000 // amortize pipe setup
	}
	res, err := bench.RunTable1(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.ThroughputPPS, "pps")
	b.ReportMetric(float64(res.MedianLatency.Nanoseconds())/1000, "median-us")
	b.ReportMetric(float64(res.P99Latency.Nanoseconds())/1000, "p99-us")
	b.ReportMetric(float64(res.Workers), "workers")
}

// --- Table 1 -----------------------------------------------------------------

func BenchmarkTable1_NoService_Plain(b *testing.B) {
	reportTable1(b, bench.DefaultTable1Case("no-service", false))
}

// BenchmarkTable1_NoService_Workers pins the SN receive-pipeline width.
// Table 1 drives a single ingress flow, which hashes to one worker, so
// workers-1 is the regression baseline for the sharded terminus and the
// wider runs measure sharding overhead on a single flow (it should be
// negligible).
func BenchmarkTable1_NoService_Workers(b *testing.B) {
	widths := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		widths = append(widths, n)
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			c := bench.DefaultTable1Case("no-service", false)
			c.RxWorkers = w
			reportTable1(b, c)
		})
	}
}

func BenchmarkTable1_NoService_Enclave(b *testing.B) {
	reportTable1(b, bench.DefaultTable1Case("no-service", true))
}

func BenchmarkTable1_NullService_Plain(b *testing.B) {
	reportTable1(b, bench.DefaultTable1Case("null-service", false))
}

func BenchmarkTable1_NullService_Enclave(b *testing.B) {
	reportTable1(b, bench.DefaultTable1Case("null-service", true))
}

// --- Appendix C direct peering ------------------------------------------------

// BenchmarkDirectPeering measures tunnel key-rotation maintenance at
// increasing tunnel counts (the paper's full scale, 98k tunnels at a
// 3-minute interval, runs via cmd/interedge-bench -peering -tunnels 98000).
func BenchmarkDirectPeering(b *testing.B) {
	for _, tunnels := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("tunnels-%d", tunnels), func(b *testing.B) {
			res, err := bench.RunDirectPeering(bench.PeeringConfig{
				Tunnels:           tunnels,
				RotateEvery:       3 * time.Minute,
				SimulatedDuration: 3 * time.Minute,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.CPUFraction, "core-fraction")
			b.ReportMetric(res.BandwidthBps/1e6, "Mbps")
			b.ReportMetric(res.RotationsPerSec, "rotations/s")
		})
	}
}

// BenchmarkDirectPeeringRotation is the per-rotation primitive cost
// (X25519 + HKDF chain + key derivation).
func BenchmarkDirectPeeringRotation(b *testing.B) {
	res, err := bench.RunDirectPeering(bench.PeeringConfig{
		Tunnels:           b.N,
		RotateEvery:       time.Minute,
		SimulatedDuration: time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.CPUFraction*60*1e6/float64(b.N), "us/rotation")
}

// --- Figure 2: per-stage pipeline costs ----------------------------------------

// The SN processing pipeline of Figure 2 decomposed: decrypt the ILP
// header, query the decision cache, re-encrypt for the next hop.

func figure2Pipe(b *testing.B) (*psp.TX, *psp.RX, []byte) {
	b.Helper()
	master := cryptutil.NewRandomKey()
	tx, err := psp.NewTX(master, psp.DirInitiatorToResponder, 0)
	if err != nil {
		b.Fatal(err)
	}
	rx, err := psp.NewRX(master, psp.DirInitiatorToResponder, 0)
	if err != nil {
		b.Fatal(err)
	}
	rx.SetReplayCheck(false)
	hdr := wire.ILPHeader{Service: wire.SvcNone, Conn: 1}
	enc, err := hdr.Encode()
	if err != nil {
		b.Fatal(err)
	}
	pkt, err := tx.Seal(nil, enc, make([]byte, 1024))
	if err != nil {
		b.Fatal(err)
	}
	return tx, rx, pkt
}

func BenchmarkFigure2_DecryptILPHeader(b *testing.B) {
	_, rx, pkt := figure2Pipe(b)
	var s psp.Scratch
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rx.OpenScratch(&s, pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2_DecryptILPHeaderBatch is the batch counterpart: one
// OpenBatch pass over 32 packets, amortizing the lock round-trips and
// cipher-state fetches that the per-packet bench pays every op.
func BenchmarkFigure2_DecryptILPHeaderBatch(b *testing.B) {
	const batch = 32
	_, rx, pkt := figure2Pipe(b)
	pkts := make([][]byte, batch)
	for i := range pkts {
		pkts[i] = pkt
	}
	out := make([]psp.OpenResult, batch)
	var s psp.Scratch
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		rx.OpenBatch(&s, pkts, out)
		if out[0].Err != nil {
			b.Fatal(out[0].Err)
		}
	}
}

func BenchmarkFigure2_DecisionCacheQuery(b *testing.B) {
	c := cache.New(65536)
	key := wire.FlowKey{Src: wire.MustAddr("fd00::1"), Service: wire.SvcNone, Conn: 1}
	c.Add(key, cache.Action{Forward: []wire.Addr{wire.MustAddr("fd00::2")}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup(key); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkFigure2_EncryptAndForward(b *testing.B) {
	tx, _, _ := figure2Pipe(b)
	hdr := wire.ILPHeader{Service: wire.SvcNone, Conn: 1}
	enc, _ := hdr.Encode()
	payload := make([]byte, 1024)
	buf := make([]byte, 0, psp.SealedSize(len(enc), len(payload)))
	var s psp.Scratch
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tx.SealScratch(&s, buf[:0], enc, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2_EncryptAndForwardBatch seals 32 packets per SealBatch
// call: one IV-run reservation and cipher-state fetch per batch.
func BenchmarkFigure2_EncryptAndForwardBatch(b *testing.B) {
	const batch = 32
	tx, _, _ := figure2Pipe(b)
	hdr := wire.ILPHeader{Service: wire.SvcNone, Conn: 1}
	enc, _ := hdr.Encode()
	payload := make([]byte, 1024)
	dsts := make([][]byte, batch)
	hdrs := make([][]byte, batch)
	payloads := make([][]byte, batch)
	bufs := make([][]byte, batch)
	for i := range bufs {
		bufs[i] = make([]byte, 0, psp.SealedSize(len(enc), len(payload)))
		hdrs[i] = enc
		payloads[i] = payload
	}
	var s psp.Scratch
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for j := range dsts {
			dsts[j] = bufs[j][:0]
		}
		if err := tx.SealBatch(&s, dsts, hdrs, payloads); err != nil {
			b.Fatal(err)
		}
	}
}

// benchUDPSender builds the egress substrate for the full-pipeline
// benchmarks: a real UDP sender socket and an unread loopback sink (a bare
// socket with no read loop, so the sink costs the sender nothing — the
// kernel discards at the receive buffer, exactly what a line-rate drop test
// wants). Skips when the sandbox forbids UDP sockets.
func benchUDPSender(b *testing.B) (*netsim.UDPTransport, wire.Addr) {
	b.Helper()
	dir := netsim.NewUDPDirectory()
	dst := wire.MustAddr("fd00::b2")
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Skipf("UDP unavailable: %v", err)
	}
	b.Cleanup(func() { sink.Close() })
	dir.Register(dst, sink.LocalAddr().(*net.UDPAddr))
	tr, err := netsim.NewUDPTransport(wire.MustAddr("fd00::b1"), "127.0.0.1:0", dir)
	if err != nil {
		b.Skipf("UDP unavailable: %v", err)
	}
	b.Cleanup(func() { tr.Close() })
	return tr, dst
}

// BenchmarkFigure2_FullFastPath measures the whole Figure 2 pipeline at
// once on one worker: decrypt → cache query → re-encrypt with the
// zero-allocation scratch API, then per-packet UDP egress (one WriteToUDP
// syscall per packet — the pre-batching transmit path). Per-op service
// times feed a telemetry histogram (delta timing: one time.Now per op,
// ~1% of the op) whose p50/p99 land in BENCH_*.json, so the artifact
// records the fast path's distribution tail, not just the mean.
func BenchmarkFigure2_FullFastPath(b *testing.B) {
	tx, rx, pkt := figure2Pipe(b)
	c := cache.New(65536)
	key := wire.FlowKey{Src: wire.MustAddr("fd00::1"), Service: wire.SvcNone, Conn: 1}
	c.Add(key, cache.Action{Forward: []wire.Addr{wire.MustAddr("fd00::2")}})
	tr, dst := benchUDPSender(b)
	buf := make([]byte, 0, len(pkt))
	var rxs, txs psp.Scratch
	h := telemetry.NewHistogram("bench_fastpath_service_ns", telemetry.LatencyBuckets)
	b.SetBytes(1024)
	b.ResetTimer()
	prev := time.Now()
	for i := 0; i < b.N; i++ {
		hdrBytes, payload, err := rx.OpenScratch(&rxs, pkt)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := c.Lookup(key); !ok {
			b.Fatal("miss")
		}
		sealed, err := tx.SealScratch(&txs, buf[:0], hdrBytes, payload)
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.Send(wire.Datagram{Dst: dst, Payload: sealed}); err != nil {
			b.Fatal(err)
		}
		now := time.Now()
		h.Observe(uint64(now.Sub(prev)))
		prev = now
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
	b.ReportMetric(1, "workers")
	if hv := h.Sample().Hist; hv != nil && hv.Count > 0 {
		b.ReportMetric(float64(hv.Quantile(0.50)), "p50-ns")
		b.ReportMetric(float64(hv.Quantile(0.99)), "p99-ns")
	}
}

// BenchmarkFigure2_FullFastPathParallel runs the whole pipeline from
// RunParallel goroutines against one shared source-affine cache — the
// sharded pipe-terminus workload: independent flows (distinct sources,
// keys, and crypto state) processed concurrently — at batch granularity,
// the way the terminus now works end to end: each worker drains its input
// in 32-packet receive batches, decrypts them with one OpenBatch crypto
// pass, charges the whole run to the decision cache with one LookupN,
// re-encrypts with one SealBatch IV-run reservation, and ships the sealed
// run with one vectored SendBatch (UDP_SEGMENT super-datagrams on capable
// kernels, sendmmsg otherwise). All per-flow setup is hoisted out of the
// timed region, and the workers metric records how many goroutines ran.
//
// Telemetry rides along at flush granularity so the instrumentation stays
// out of the gated per-op cost (two time.Now calls per 32-packet batch,
// ~1ns/op): a latency histogram of per-flush service time — reported as
// derived per-op p50-ns/p99-ns — and a batch-size histogram whose
// batch-p50/batch-p99 confirm the pipeline actually ran batched.
func BenchmarkFigure2_FullFastPathParallel(b *testing.B) {
	const txBatch = 32
	maxWorkers := runtime.GOMAXPROCS(0)
	c := cache.NewSourceAffine(65536, maxWorkers)
	tr, dst := benchUDPSender(b)

	type flowState struct {
		tx       *psp.TX
		rx       *psp.RX
		key      wire.FlowKey
		pkts     [][]byte
		results  []psp.OpenResult
		hdrs     [][]byte
		payloads [][]byte
		dsts     [][]byte
		sealed   [][]byte
		batch    []wire.Datagram
	}
	states := make([]*flowState, maxWorkers)
	for i := range states {
		master := cryptutil.NewRandomKey()
		ptx, err := psp.NewTX(master, psp.DirInitiatorToResponder, 0)
		if err != nil {
			b.Fatal(err)
		}
		prx, err := psp.NewRX(master, psp.DirInitiatorToResponder, 0)
		if err != nil {
			b.Fatal(err)
		}
		prx.SetReplayCheck(false)
		src := wire.MustAddr(fmt.Sprintf("fd00::%x", i+1))
		key := wire.FlowKey{Src: src, Service: wire.SvcNone, Conn: wire.ConnectionID(i + 1)}
		c.Add(key, cache.Action{Forward: []wire.Addr{dst}})
		hdr := wire.ILPHeader{Service: wire.SvcNone, Conn: key.Conn}
		enc, err := hdr.Encode()
		if err != nil {
			b.Fatal(err)
		}
		pkt, err := ptx.Seal(nil, enc, make([]byte, 1024))
		if err != nil {
			b.Fatal(err)
		}
		ws := &flowState{tx: ptx, rx: prx, key: key,
			pkts:     make([][]byte, txBatch),
			results:  make([]psp.OpenResult, txBatch),
			hdrs:     make([][]byte, txBatch),
			payloads: make([][]byte, txBatch),
			dsts:     make([][]byte, txBatch),
			sealed:   make([][]byte, txBatch),
			batch:    make([]wire.Datagram, txBatch)}
		for j := 0; j < txBatch; j++ {
			ws.pkts[j] = pkt
			ws.sealed[j] = make([]byte, 0, len(pkt))
		}
		states[i] = ws
	}
	var claimed atomic.Uint32
	// Shared across workers: Observe is atomic, and at one observation per
	// flush the contention is negligible.
	flushNs := telemetry.NewHistogram("bench_flush_service_ns", telemetry.LatencyBuckets)
	batchSize := telemetry.NewHistogram("bench_flush_batch_size", telemetry.BatchBuckets)
	b.SetBytes(1024)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ws := states[(claimed.Add(1)-1)%uint32(len(states))]
		var rxs, txs psp.Scratch
		prev := time.Now()
		for {
			n := 0
			for n < txBatch && pb.Next() {
				n++
			}
			if n == 0 {
				return
			}
			ws.rx.OpenBatch(&rxs, ws.pkts[:n], ws.results[:n])
			if _, ok := c.LookupN(ws.key, uint64(n)); !ok {
				b.Fatal("miss")
			}
			for j := 0; j < n; j++ {
				if ws.results[j].Err != nil {
					b.Fatal(ws.results[j].Err)
				}
				ws.hdrs[j] = ws.results[j].Hdr
				ws.payloads[j] = ws.results[j].Payload
				ws.dsts[j] = ws.sealed[j][:0]
			}
			if err := ws.tx.SealBatch(&txs, ws.dsts[:n], ws.hdrs[:n], ws.payloads[:n]); err != nil {
				b.Fatal(err)
			}
			for j := 0; j < n; j++ {
				ws.sealed[j] = ws.dsts[j]
				ws.batch[j] = wire.Datagram{Dst: dst, Payload: ws.dsts[j]}
			}
			if _, err := netsim.SendBatch(tr, ws.batch[:n]); err != nil {
				b.Fatal(err)
			}
			now := time.Now()
			flushNs.Observe(uint64(now.Sub(prev)))
			batchSize.Observe(uint64(n))
			prev = now
			if n < txBatch {
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
	b.ReportMetric(float64(claimed.Load()), "workers")
	if hv := flushNs.Sample().Hist; hv != nil && hv.Count > 0 {
		b.ReportMetric(float64(hv.Quantile(0.50))/txBatch, "p50-ns")
		b.ReportMetric(float64(hv.Quantile(0.99))/txBatch, "p99-ns")
	}
	if hv := batchSize.Sample().Hist; hv != nil && hv.Count > 0 {
		b.ReportMetric(float64(hv.Quantile(0.50)), "batch-p50")
		b.ReportMetric(float64(hv.Quantile(0.99)), "batch-p99")
	}
}

// --- Ablations ------------------------------------------------------------------

// Module transport: the paper prototype's IPC vs shared-memory rings vs
// direct invocation ("There are well-known solutions to address these …
// performance bottlenecks", §6.3).
func BenchmarkAblationTransport(b *testing.B) {
	for _, tr := range []sn.Transport{sn.TransportDirect, sn.TransportChan, sn.TransportIPC} {
		b.Run(tr.String(), func(b *testing.B) {
			c := bench.DefaultTable1Case("null-service", false)
			c.Transport = tr
			reportTable1(b, c)
		})
	}
}

// Decision cache on vs off: with the cache disabled, every no-service
// packet would be dropped (no module), so the ablation compares the
// fast-path lookup cost against the full slow path via the null module.
func BenchmarkAblationCachePath(b *testing.B) {
	b.Run("fast-path-cache-hit", func(b *testing.B) {
		reportTable1(b, bench.DefaultTable1Case("no-service", false))
	})
	b.Run("slow-path-module", func(b *testing.B) {
		c := bench.DefaultTable1Case("null-service", false)
		c.Transport = sn.TransportChan
		reportTable1(b, c)
	})
}

// Enclave boundary crossing cost in isolation.
func BenchmarkAblationEnclaveCrossing(b *testing.B) {
	encl, err := enclave.New("bench", "1", nil)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	identity := func(in []byte) ([]byte, error) { return in, nil }
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encl.Run(payload, identity); err != nil {
			b.Fatal(err)
		}
	}
}

// Header-only encryption (the PSP model) vs whole-packet encryption: the
// design choice in §4 that lets the SN avoid re-encrypting payloads.
func BenchmarkAblationEncryptionScope(b *testing.B) {
	master := cryptutil.NewRandomKey()
	hdr := make([]byte, 32)
	payload := make([]byte, 1024)
	b.Run("header-only", func(b *testing.B) {
		tx, _ := psp.NewTX(master, psp.DirInitiatorToResponder, 0)
		buf := make([]byte, 0, psp.SealedSize(len(hdr), len(payload)))
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			if _, err := tx.Seal(buf[:0], hdr, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("whole-packet", func(b *testing.B) {
		tx, _ := psp.NewTX(master, psp.DirInitiatorToResponder, 0)
		whole := make([]byte, len(hdr)+len(payload))
		buf := make([]byte, 0, psp.SealedSize(len(whole), 0))
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			if _, err := tx.Seal(buf[:0], whole, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
