module interedge

go 1.22
