package sched

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestWFQSingleFlowFIFO(t *testing.T) {
	w := NewWFQ(100)
	for i := 0; i < 5; i++ {
		if !w.Enqueue(Item{Flow: "a", Size: 100, Data: i}) {
			t.Fatal("enqueue failed")
		}
	}
	for i := 0; i < 5; i++ {
		it, ok := w.Dequeue()
		if !ok || it.Data.(int) != i {
			t.Fatalf("dequeue %d: %+v ok=%v", i, it, ok)
		}
	}
	if _, ok := w.Dequeue(); ok {
		t.Fatal("dequeue from empty queue")
	}
}

// Two equally weighted backlogged flows share service roughly equally.
func TestWFQEqualWeightsInterleave(t *testing.T) {
	w := NewWFQ(1000)
	for i := 0; i < 50; i++ {
		w.Enqueue(Item{Flow: "a", Size: 100})
		w.Enqueue(Item{Flow: "b", Size: 100})
	}
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		it, _ := w.Dequeue()
		counts[it.Flow]++
	}
	if counts["a"] != 10 || counts["b"] != 10 {
		t.Fatalf("first 20 dequeues: %v", counts)
	}
}

// Weight 3:1 gives a ~3x service share to the heavier flow.
func TestWFQWeightedShare(t *testing.T) {
	w := NewWFQ(10000)
	if err := w.SetWeight("heavy", 3); err != nil {
		t.Fatal(err)
	}
	if err := w.SetWeight("light", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		w.Enqueue(Item{Flow: "heavy", Size: 100})
		w.Enqueue(Item{Flow: "light", Size: 100})
	}
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		it, _ := w.Dequeue()
		counts[it.Flow]++
	}
	ratio := float64(counts["heavy"]) / float64(counts["light"])
	if math.Abs(ratio-3) > 0.25 {
		t.Fatalf("service ratio = %.2f (counts %v), want ~3", ratio, counts)
	}
}

// Packet size matters: a flow sending double-size packets gets half the
// packet rate at equal weight (equal byte rate).
func TestWFQByteFairness(t *testing.T) {
	w := NewWFQ(10000)
	for i := 0; i < 1000; i++ {
		w.Enqueue(Item{Flow: "big", Size: 200})
		w.Enqueue(Item{Flow: "small", Size: 100})
	}
	bytes := map[string]int{}
	for i := 0; i < 600; i++ {
		it, _ := w.Dequeue()
		bytes[it.Flow] += it.Size
	}
	ratio := float64(bytes["big"]) / float64(bytes["small"])
	if math.Abs(ratio-1) > 0.1 {
		t.Fatalf("byte ratio = %.2f (%v), want ~1", ratio, bytes)
	}
}

func TestWFQCapacityDrops(t *testing.T) {
	w := NewWFQ(3)
	for i := 0; i < 5; i++ {
		w.Enqueue(Item{Flow: "a", Size: 1})
	}
	if w.Len() != 3 {
		t.Fatalf("len = %d", w.Len())
	}
	if w.Dropped() != 2 {
		t.Fatalf("dropped = %d", w.Dropped())
	}
}

func TestWFQInvalidWeight(t *testing.T) {
	w := NewWFQ(10)
	if err := w.SetWeight("a", 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := w.SetWeight("a", -1); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// A newly active flow cannot claim bandwidth retroactively (its start tag
// is the current virtual time).
func TestWFQNoRetroactiveCredit(t *testing.T) {
	w := NewWFQ(1000)
	for i := 0; i < 100; i++ {
		w.Enqueue(Item{Flow: "old", Size: 100})
	}
	for i := 0; i < 50; i++ {
		w.Dequeue()
	}
	// "new" wakes up; it should NOT get 50 consecutive dequeues.
	for i := 0; i < 100; i++ {
		w.Enqueue(Item{Flow: "new", Size: 100})
	}
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		it, _ := w.Dequeue()
		counts[it.Flow]++
	}
	if counts["new"] > 12 {
		t.Fatalf("late-arriving flow monopolized service: %v", counts)
	}
}

// Property: WFQ never loses or duplicates packets, and per-flow order is
// preserved.
func TestWFQConservationProperty(t *testing.T) {
	f := func(flows []uint8) bool {
		w := NewWFQ(len(flows) + 1)
		type tagged struct {
			flow string
			seq  int
		}
		perFlowSeq := map[string]int{}
		for _, fb := range flows {
			flow := string(rune('a' + fb%4))
			w.Enqueue(Item{Flow: flow, Size: 1 + int(fb%7), Data: tagged{flow, perFlowSeq[flow]}})
			perFlowSeq[flow]++
		}
		seen := map[string]int{}
		total := 0
		for {
			it, ok := w.Dequeue()
			if !ok {
				break
			}
			tg := it.Data.(tagged)
			if tg.seq != seen[tg.flow] {
				return false // per-flow reordering
			}
			seen[tg.flow]++
			total++
		}
		return total == len(flows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityStrictOrdering(t *testing.T) {
	p := NewPriority(100)
	p.SetLevel("gaming", 0)
	p.SetLevel("video", 1)
	// Interleave enqueues.
	p.Enqueue(Item{Flow: "video", Data: "v1"})
	p.Enqueue(Item{Flow: "gaming", Data: "g1"})
	p.Enqueue(Item{Flow: "bulk", Data: "b1"}) // default level 100
	p.Enqueue(Item{Flow: "gaming", Data: "g2"})
	want := []string{"g1", "g2", "v1", "b1"}
	for i, w := range want {
		it, ok := p.Dequeue()
		if !ok || it.Data.(string) != w {
			t.Fatalf("dequeue %d = %v, want %s", i, it.Data, w)
		}
	}
}

func TestPriorityCapacityAndLen(t *testing.T) {
	p := NewPriority(2)
	p.Enqueue(Item{Flow: "a"})
	p.Enqueue(Item{Flow: "b"})
	if p.Enqueue(Item{Flow: "c"}) {
		t.Fatal("enqueue over capacity succeeded")
	}
	if p.Len() != 2 || p.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d", p.Len(), p.Dropped())
	}
}

func TestPriorityEmptyDequeue(t *testing.T) {
	p := NewPriority(10)
	if _, ok := p.Dequeue(); ok {
		t.Fatal("dequeue from empty")
	}
}

func TestTokenBucketBasic(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewTokenBucket(1000, 500, now) // 1000 B/s, 500 burst
	if !b.Allow(500, now) {
		t.Fatal("initial burst denied")
	}
	if b.Allow(1, now) {
		t.Fatal("over-burst allowed")
	}
	// After 100ms, 100 tokens refilled.
	now = now.Add(100 * time.Millisecond)
	if !b.Allow(100, now) {
		t.Fatal("refilled tokens denied")
	}
	if b.Allow(50, now) {
		t.Fatal("tokens double-spent")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewTokenBucket(1000, 200, now)
	now = now.Add(time.Hour)
	if got := b.Tokens(now); got != 200 {
		t.Fatalf("tokens = %v, want burst cap 200", got)
	}
}

func TestTokenBucketTimeMonotonic(t *testing.T) {
	now := time.Unix(100, 0)
	b := NewTokenBucket(1000, 100, now)
	b.Allow(100, now)
	// A stale timestamp must not refill.
	if b.Allow(10, now.Add(-time.Minute)) {
		t.Fatal("stale timestamp refilled bucket")
	}
}
