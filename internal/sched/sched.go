// Package sched provides the packet schedulers behind the last-hop QoS
// service (§6.2): weighted fair queueing (a virtual-time approximation of
// GPS), strict priority scheduling, and token-bucket rate limiting. The
// qos service module composes them: receivers specify their access-link
// bandwidth plus per-source weights or priorities, and their first-hop SN
// schedules incoming traffic accordingly.
package sched

import (
	"container/heap"
	"errors"
	"sync"
	"time"
)

// Item is one queued packet.
type Item struct {
	// Flow identifies the scheduling class (e.g. a source prefix).
	Flow string
	// Size is the packet length in bytes (drives WFQ finish times and
	// shaping).
	Size int
	// Data is the opaque packet payload carried through the scheduler.
	Data any
}

// Scheduler is the shared contract of WFQ and Priority queues.
type Scheduler interface {
	// Enqueue adds a packet. It returns false if the packet was dropped
	// (queue capacity exceeded).
	Enqueue(it Item) bool
	// Dequeue removes the next packet to send, or returns false if empty.
	Dequeue() (Item, bool)
	// Len returns the number of queued packets.
	Len() int
}

// --- Weighted fair queueing ------------------------------------------------

type wfqEntry struct {
	item   Item
	finish float64
	seq    uint64 // tie-break for stable ordering
	index  int
}

type wfqHeap []*wfqEntry

func (h wfqHeap) Len() int { return len(h) }
func (h wfqHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h wfqHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *wfqHeap) Push(x interface{}) {
	e := x.(*wfqEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *wfqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// WFQ is a virtual-time weighted fair queue. Each flow has a weight; over
// any backlogged interval, flow f receives bandwidth proportional to
// weight(f). Flows without an explicit weight use DefaultWeight.
type WFQ struct {
	mu            sync.Mutex
	weights       map[string]float64
	lastFinish    map[string]float64
	virtual       float64 // current virtual time = finish tag of last dequeue
	heap          wfqHeap
	seq           uint64
	capacity      int
	defaultWeight float64
	dropped       uint64
}

// NewWFQ creates a WFQ with the given total capacity (packets).
func NewWFQ(capacity int) *WFQ {
	return &WFQ{
		weights:       make(map[string]float64),
		lastFinish:    make(map[string]float64),
		capacity:      capacity,
		defaultWeight: 1,
	}
}

// SetWeight assigns a flow's weight (must be positive).
func (w *WFQ) SetWeight(flow string, weight float64) error {
	if weight <= 0 {
		return errors.New("sched: weight must be positive")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.weights[flow] = weight
	return nil
}

// Weight returns a flow's effective weight.
func (w *WFQ) Weight(flow string) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if wt, ok := w.weights[flow]; ok {
		return wt
	}
	return w.defaultWeight
}

// Enqueue implements Scheduler: the packet's virtual finish time is
// start + size/weight, where start = max(virtual now, flow's last finish).
func (w *WFQ) Enqueue(it Item) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.heap) >= w.capacity {
		w.dropped++
		return false
	}
	weight := w.defaultWeight
	if wt, ok := w.weights[it.Flow]; ok {
		weight = wt
	}
	start := w.virtual
	if lf, ok := w.lastFinish[it.Flow]; ok && lf > start {
		start = lf
	}
	finish := start + float64(it.Size)/weight
	w.lastFinish[it.Flow] = finish
	w.seq++
	heap.Push(&w.heap, &wfqEntry{item: it, finish: finish, seq: w.seq})
	return true
}

// Dequeue implements Scheduler.
func (w *WFQ) Dequeue() (Item, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.heap) == 0 {
		return Item{}, false
	}
	e := heap.Pop(&w.heap).(*wfqEntry)
	if e.finish > w.virtual {
		w.virtual = e.finish
	}
	return e.item, true
}

// Len implements Scheduler.
func (w *WFQ) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.heap)
}

// Dropped returns the count of capacity drops.
func (w *WFQ) Dropped() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// --- Strict priority ---------------------------------------------------------

// Priority schedules strictly by priority level (lower value = served
// first), FIFO within a level.
type Priority struct {
	mu       sync.Mutex
	levels   map[string]int
	queues   map[int][]Item
	order    []int // sorted distinct levels present
	count    int
	capacity int
	dropped  uint64
	def      int
}

// NewPriority creates a strict-priority scheduler with total capacity.
func NewPriority(capacity int) *Priority {
	return &Priority{
		levels:   make(map[string]int),
		queues:   make(map[int][]Item),
		capacity: capacity,
		def:      100,
	}
}

// SetLevel assigns a flow's priority level (lower = more urgent). Flows
// without a level use the default (100).
func (p *Priority) SetLevel(flow string, level int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.levels[flow] = level
}

// Enqueue implements Scheduler.
func (p *Priority) Enqueue(it Item) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.count >= p.capacity {
		p.dropped++
		return false
	}
	level, ok := p.levels[it.Flow]
	if !ok {
		level = p.def
	}
	if _, exists := p.queues[level]; !exists {
		p.order = insertSorted(p.order, level)
	}
	p.queues[level] = append(p.queues[level], it)
	p.count++
	return true
}

func insertSorted(s []int, v int) []int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = v
	return s
}

// Dequeue implements Scheduler.
func (p *Priority) Dequeue() (Item, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, level := range p.order {
		q := p.queues[level]
		if len(q) == 0 {
			continue
		}
		it := q[0]
		p.queues[level] = q[1:]
		p.count--
		return it, true
	}
	return Item{}, false
}

// Len implements Scheduler.
func (p *Priority) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// Dropped returns the count of capacity drops.
func (p *Priority) Dropped() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// --- Token bucket ------------------------------------------------------------

// TokenBucket enforces an average rate with bounded burst. It is driven by
// explicit timestamps so it works under both real and manual clocks.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket creates a bucket that refills at rate bytes/sec up to
// burst bytes, starting full.
func NewTokenBucket(rate, burst float64, now time.Time) *TokenBucket {
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// Allow consumes n tokens if available at time now, reporting success.
func (b *TokenBucket) Allow(n int, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	if b.tokens < float64(n) {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// Tokens reports the available tokens at time now.
func (b *TokenBucket) Tokens(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	return b.tokens
}

func (b *TokenBucket) refill(now time.Time) {
	if now.After(b.last) {
		b.tokens += b.rate * now.Sub(b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}
