package cryptutil

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBoxRoundTrip(t *testing.T) {
	kp, err := NewStaticKeypair()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("what is the address of example.org")
	box, err := SealTo(kp.PublicKeyBytes(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(box) != len(msg)+BoxOverhead {
		t.Fatalf("box size %d, want %d", len(box), len(msg)+BoxOverhead)
	}
	got, err := OpenFrom(kp.Private, box)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestBoxWrongKeyFails(t *testing.T) {
	kp1, _ := NewStaticKeypair()
	kp2, _ := NewStaticKeypair()
	box, err := SealTo(kp1.PublicKeyBytes(), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFrom(kp2.Private, box); err != ErrBoxOpen {
		t.Fatalf("err = %v, want ErrBoxOpen", err)
	}
}

func TestBoxTamperDetected(t *testing.T) {
	kp, _ := NewStaticKeypair()
	box, _ := SealTo(kp.PublicKeyBytes(), []byte("secret"))
	for _, i := range []int{0, 31, 32, len(box) - 1} {
		mut := append([]byte(nil), box...)
		mut[i] ^= 1
		if _, err := OpenFrom(kp.Private, mut); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
}

func TestBoxTruncated(t *testing.T) {
	kp, _ := NewStaticKeypair()
	if _, err := OpenFrom(kp.Private, make([]byte, BoxOverhead-1)); err != ErrBoxOpen {
		t.Fatalf("err = %v", err)
	}
}

func TestBoxNondeterministic(t *testing.T) {
	kp, _ := NewStaticKeypair()
	b1, _ := SealTo(kp.PublicKeyBytes(), []byte("m"))
	b2, _ := SealTo(kp.PublicKeyBytes(), []byte("m"))
	if bytes.Equal(b1, b2) {
		t.Fatal("two seals of the same message identical")
	}
}

// Onion layering: boxes nest, each hop peels one layer.
func TestBoxOnionLayers(t *testing.T) {
	var keys []StaticKeypair
	for i := 0; i < 3; i++ {
		kp, err := NewStaticKeypair()
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, kp)
	}
	inner := []byte("final plaintext")
	onion := inner
	for i := len(keys) - 1; i >= 0; i-- {
		var err error
		onion, err = SealTo(keys[i].PublicKeyBytes(), onion)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(keys); i++ {
		var err error
		onion, err = OpenFrom(keys[i].Private, onion)
		if err != nil {
			t.Fatalf("layer %d: %v", i, err)
		}
	}
	if !bytes.Equal(onion, inner) {
		t.Fatal("onion peel mismatch")
	}
}

func TestBoxProperty(t *testing.T) {
	kp, _ := NewStaticKeypair()
	f := func(msg []byte) bool {
		box, err := SealTo(kp.PublicKeyBytes(), msg)
		if err != nil {
			return false
		}
		got, err := OpenFrom(kp.Private, box)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
