package cryptutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
)

// Sealed-box encryption (HPKE-style): anyone holding a recipient's X25519
// public key can seal a message only the recipient can open. Used by the
// privacy services — oDNS queries sealed to the resolver, private-relay
// inner envelopes sealed to the egress SN, and mixnet onion layers sealed
// to each mix hop — so intermediate nodes never see plaintext (§6.2).

// ErrBoxOpen is returned when a sealed box fails to decrypt.
var ErrBoxOpen = errors.New("cryptutil: sealed box open failed")

// BoxOverhead is the size added by SealTo: the ephemeral public key plus
// the AEAD tag.
const BoxOverhead = 32 + 16

// SealTo encrypts msg to the holder of recipientPub (a 32-byte X25519
// public key). Output layout: ephemeralPub(32) ‖ ciphertext+tag.
func SealTo(recipientPub, msg []byte) ([]byte, error) {
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("cryptutil: ephemeral key: %w", err)
	}
	shared, err := X25519Shared(eph, recipientPub)
	if err != nil {
		return nil, err
	}
	ephPub := eph.PublicKey().Bytes()
	aead, err := boxAEAD(shared, ephPub, recipientPub)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 32+len(msg)+16)
	out = append(out, ephPub...)
	return aead.Seal(out, boxNonce(), msg, nil), nil
}

// OpenFrom decrypts a sealed box with the recipient's private key.
func OpenFrom(recipientPriv *ecdh.PrivateKey, box []byte) ([]byte, error) {
	if len(box) < BoxOverhead {
		return nil, ErrBoxOpen
	}
	ephPub := box[:32]
	shared, err := X25519Shared(recipientPriv, ephPub)
	if err != nil {
		return nil, ErrBoxOpen
	}
	aead, err := boxAEAD(shared, ephPub, recipientPriv.PublicKey().Bytes())
	if err != nil {
		return nil, err
	}
	msg, err := aead.Open(nil, boxNonce(), box[32:], nil)
	if err != nil {
		return nil, ErrBoxOpen
	}
	return msg, nil
}

// boxAEAD derives the box key from the DH share bound to both public keys.
func boxAEAD(shared, ephPub, recipientPub []byte) (cipher.AEAD, error) {
	info := append(append([]byte("interedge-box|"), ephPub...), recipientPub...)
	key, err := DeriveKey(shared, nil, string(info))
	if err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// boxNonce is constant: each box uses a fresh ephemeral key, so the
// (key, nonce) pair never repeats.
func boxNonce() []byte { return make([]byte, 12) }
