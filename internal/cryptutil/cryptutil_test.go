package cryptutil

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 5869 Appendix A, Test Case 1 (SHA-256).
func TestHKDFRFC5869Vector1(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt, _ := hex.DecodeString("000102030405060708090a0b0c")
	info, _ := hex.DecodeString("f0f1f2f3f4f5f6f7f8f9")
	wantPRK, _ := hex.DecodeString("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	wantOKM, _ := hex.DecodeString("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")

	prk := HKDFExtract(salt, ikm)
	if !bytes.Equal(prk, wantPRK) {
		t.Fatalf("PRK = %x, want %x", prk, wantPRK)
	}
	okm, err := HKDFExpand(prk, info, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x, want %x", okm, wantOKM)
	}
}

// RFC 5869 Appendix A, Test Case 3 (zero-length salt and info).
func TestHKDFRFC5869Vector3(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	wantOKM, _ := hex.DecodeString("8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
	okm, err := HKDF(ikm, nil, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x, want %x", okm, wantOKM)
	}
}

func TestHKDFExpandTooLong(t *testing.T) {
	if _, err := HKDFExpand(make([]byte, 32), nil, 255*32+1); err == nil {
		t.Fatal("expected error for oversized expand")
	}
}

func TestDeriveKeyDeterministicAndDomainSeparated(t *testing.T) {
	secret := []byte("master secret")
	k1, err := DeriveKey(secret, nil, "a")
	if err != nil {
		t.Fatal(err)
	}
	k1again, err := DeriveKey(secret, nil, "a")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := DeriveKey(secret, nil, "b")
	if err != nil {
		t.Fatal(err)
	}
	if !k1.Equal(k1again) {
		t.Fatal("same inputs produced different keys")
	}
	if k1.Equal(k2) {
		t.Fatal("different info produced identical keys")
	}
	if k1.Zero() {
		t.Fatal("derived key is zero")
	}
}

func TestDeriveKeysIndependent(t *testing.T) {
	keys, err := DeriveKeys([]byte("s"), nil, "multi", 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Key]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatal("duplicate key in DeriveKeys output")
		}
		seen[k] = true
	}
}

func TestKeyZero(t *testing.T) {
	var z Key
	if !z.Zero() {
		t.Fatal("zero key not detected")
	}
	if NewRandomKey().Zero() {
		t.Fatal("random key reported zero")
	}
}

func TestX25519SharedAgreement(t *testing.T) {
	a, err := NewStaticKeypair()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStaticKeypair()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := X25519Shared(a.Private, b.PublicKeyBytes())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := X25519Shared(b.Private, a.PublicKeyBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("X25519 shared secrets disagree")
	}
}

func TestX25519BadPublicKey(t *testing.T) {
	a, err := NewStaticKeypair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := X25519Shared(a.Private, []byte("short")); err == nil {
		t.Fatal("expected error for malformed public key")
	}
}

func TestSignVerify(t *testing.T) {
	kp, err := NewSigningKeypair()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("join group 42")
	sig := kp.Sign(msg)
	if !Verify(kp.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(kp.Public, []byte("other"), sig) {
		t.Fatal("signature over wrong message accepted")
	}
	sig[0] ^= 1
	if Verify(kp.Public, msg, sig) {
		t.Fatal("corrupted signature accepted")
	}
	if Verify(nil, msg, sig) {
		t.Fatal("nil public key accepted")
	}
}

func TestRandomBytesLengthAndVariety(t *testing.T) {
	a := RandomBytes(32)
	b := RandomBytes(32)
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	if bytes.Equal(a, b) {
		t.Fatal("two random draws identical")
	}
}

// Property: HKDF output depends on every input.
func TestHKDFSensitivityProperty(t *testing.T) {
	f := func(secret, salt, info []byte, flip uint8) bool {
		if len(secret) == 0 {
			secret = []byte{0}
		}
		out1, err := HKDF(secret, salt, info, 32)
		if err != nil {
			return false
		}
		mutated := append([]byte(nil), secret...)
		mutated[int(flip)%len(mutated)] ^= 0xFF
		out2, err := HKDF(mutated, salt, info, 32)
		if err != nil {
			return false
		}
		return !bytes.Equal(out1, out2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
