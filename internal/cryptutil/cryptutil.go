// Package cryptutil provides the cryptographic primitives shared by ILP,
// PSP, the handshake, tunnels, and enclaves: an RFC 5869 HKDF built on the
// standard library's HMAC, X25519 key agreement, Ed25519 signing helpers,
// and fixed-size symmetric key types.
//
// Everything here wraps the Go standard library; there are no external
// dependencies.
package cryptutil

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
)

// KeySize is the size in bytes of all symmetric keys in the system
// (AES-256-GCM).
const KeySize = 32

// Key is a 256-bit symmetric key.
type Key [KeySize]byte

// Zero reports whether the key is all zeros (i.e., unset).
func (k Key) Zero() bool {
	var z Key
	return subtle.ConstantTimeCompare(k[:], z[:]) == 1
}

// Equal reports whether two keys are equal in constant time.
func (k Key) Equal(other Key) bool {
	return subtle.ConstantTimeCompare(k[:], other[:]) == 1
}

// NewRandomKey returns a fresh random Key. It panics if the system entropy
// source fails, which is unrecoverable.
func NewRandomKey() Key {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		panic(fmt.Sprintf("cryptutil: entropy source failed: %v", err))
	}
	return k
}

// HKDFExtract implements the HKDF-Extract step of RFC 5869 with SHA-256.
func HKDFExtract(salt, ikm []byte) []byte {
	if len(salt) == 0 {
		salt = make([]byte, sha256.Size)
	}
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// HKDFExpand implements the HKDF-Expand step of RFC 5869 with SHA-256,
// producing length bytes of output keyed by prk and bound to info.
func HKDFExpand(prk, info []byte, length int) ([]byte, error) {
	if length > 255*sha256.Size {
		return nil, errors.New("cryptutil: HKDF expand length too large")
	}
	out := make([]byte, 0, length)
	var t []byte
	for counter := byte(1); len(out) < length; counter++ {
		mac := hmac.New(sha256.New, prk)
		mac.Write(t)
		mac.Write(info)
		mac.Write([]byte{counter})
		t = mac.Sum(nil)
		out = append(out, t...)
	}
	return out[:length], nil
}

// HKDF performs Extract-then-Expand per RFC 5869 with SHA-256.
func HKDF(secret, salt, info []byte, length int) ([]byte, error) {
	return HKDFExpand(HKDFExtract(salt, secret), info, length)
}

// DeriveKey derives a single symmetric Key from secret bound to info. Salt
// may be nil.
func DeriveKey(secret, salt []byte, info string) (Key, error) {
	var k Key
	out, err := HKDF(secret, salt, []byte(info), KeySize)
	if err != nil {
		return k, err
	}
	copy(k[:], out)
	return k, nil
}

// DeriveKeys derives n independent symmetric keys from secret, each bound to
// info and its index.
func DeriveKeys(secret, salt []byte, info string, n int) ([]Key, error) {
	keys := make([]Key, n)
	for i := range keys {
		k, err := DeriveKey(secret, salt, fmt.Sprintf("%s/%d", info, i))
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	return keys, nil
}

// StaticKeypair is a long-lived X25519 keypair identifying a node (host, SN,
// or tunnel endpoint).
type StaticKeypair struct {
	Private *ecdh.PrivateKey
	Public  *ecdh.PublicKey
}

// NewStaticKeypair generates a fresh X25519 keypair.
func NewStaticKeypair() (StaticKeypair, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return StaticKeypair{}, fmt.Errorf("cryptutil: generate X25519 key: %w", err)
	}
	return StaticKeypair{Private: priv, Public: priv.PublicKey()}, nil
}

// PublicKeyBytes returns the 32-byte encoding of the public key.
func (kp StaticKeypair) PublicKeyBytes() []byte {
	return kp.Public.Bytes()
}

// X25519Shared computes the shared secret between a private key and a peer's
// 32-byte public key encoding.
func X25519Shared(priv *ecdh.PrivateKey, peerPub []byte) ([]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return nil, fmt.Errorf("cryptutil: bad peer public key: %w", err)
	}
	shared, err := priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("cryptutil: X25519: %w", err)
	}
	return shared, nil
}

// SigningKeypair is an Ed25519 keypair used for ownership statements in the
// lookup service and join authorizations.
type SigningKeypair struct {
	Private ed25519.PrivateKey
	Public  ed25519.PublicKey
}

// NewSigningKeypair generates a fresh Ed25519 keypair.
func NewSigningKeypair() (SigningKeypair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return SigningKeypair{}, fmt.Errorf("cryptutil: generate Ed25519 key: %w", err)
	}
	return SigningKeypair{Private: priv, Public: pub}, nil
}

// Sign signs msg with the private key.
func (kp SigningKeypair) Sign(msg []byte) []byte {
	return ed25519.Sign(kp.Private, msg)
}

// Verify checks sig over msg against pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}

// RandomBytes returns n cryptographically random bytes.
func RandomBytes(n int) []byte {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		panic(fmt.Sprintf("cryptutil: entropy source failed: %v", err))
	}
	return b
}
