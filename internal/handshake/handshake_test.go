package handshake

import (
	"bytes"
	"testing"

	"interedge/internal/psp"
	"interedge/internal/wire"
)

func identities(t *testing.T) (Identity, Identity) {
	t.Helper()
	a, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

var (
	addrI = wire.MustAddr("fd00::1")
	addrR = wire.MustAddr("fd00::2")
)

func TestFullHandshakeAgreement(t *testing.T) {
	idI, idR := identities(t)
	pending, err := Initiate(idI, addrI, addrR)
	if err != nil {
		t.Fatal(err)
	}
	msg2, resR, err := Respond(idR, addrR, addrI, pending.Msg1())
	if err != nil {
		t.Fatal(err)
	}
	resI, err := pending.Complete(msg2)
	if err != nil {
		t.Fatal(err)
	}
	if !resI.Master.Equal(resR.Master) {
		t.Fatal("master secrets disagree")
	}
	if resI.BaseSPI != resR.BaseSPI {
		t.Fatalf("SPI disagree: %#x vs %#x", resI.BaseSPI, resR.BaseSPI)
	}
	if resI.BaseSPI&0xFF != 0 {
		t.Fatalf("SPI low byte not zero: %#x", resI.BaseSPI)
	}
	if !resI.Initiator || resR.Initiator {
		t.Fatal("initiator flags wrong")
	}
	if !bytes.Equal(resI.PeerIdentity, idR.PublicKey()) {
		t.Fatal("initiator learned wrong peer identity")
	}
	if !bytes.Equal(resR.PeerIdentity, idI.PublicKey()) {
		t.Fatal("responder learned wrong peer identity")
	}
}

func TestResultFeedsPSP(t *testing.T) {
	idI, idR := identities(t)
	pending, _ := Initiate(idI, addrI, addrR)
	msg2, resR, err := Respond(idR, addrR, addrI, pending.Msg1())
	if err != nil {
		t.Fatal(err)
	}
	resI, err := pending.Complete(msg2)
	if err != nil {
		t.Fatal(err)
	}
	cI, err := psp.NewPipeCrypto(resI.Master, resI.Initiator, resI.BaseSPI)
	if err != nil {
		t.Fatal(err)
	}
	cR, err := psp.NewPipeCrypto(resR.Master, resR.Initiator, resR.BaseSPI)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := cI.TX.Seal(nil, []byte("hdr"), []byte("pay"))
	if err != nil {
		t.Fatal(err)
	}
	h, p, err := cR.RX.Open(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if string(h) != "hdr" || string(p) != "pay" {
		t.Fatal("handshake-derived pipe failed roundtrip")
	}
}

func TestFreshKeysPerHandshake(t *testing.T) {
	idI, idR := identities(t)
	run := func() Result {
		pending, _ := Initiate(idI, addrI, addrR)
		msg2, _, err := Respond(idR, addrR, addrI, pending.Msg1())
		if err != nil {
			t.Fatal(err)
		}
		res, err := pending.Complete(msg2)
		if err != nil {
			t.Fatal(err)
		}
		return *res
	}
	r1, r2 := run(), run()
	if r1.Master.Equal(r2.Master) {
		t.Fatal("two handshakes derived the same master key (no forward secrecy)")
	}
}

func TestMsg1WrongAddressRejected(t *testing.T) {
	idI, idR := identities(t)
	pending, _ := Initiate(idI, addrI, addrR)
	// Responder at a different address: transcript binding must fail.
	if _, _, err := Respond(idR, wire.MustAddr("fd00::99"), addrI, pending.Msg1()); err != ErrBadSignature {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestTamperedMsg1Rejected(t *testing.T) {
	idI, idR := identities(t)
	pending, _ := Initiate(idI, addrI, addrR)
	for _, idx := range []int{0, 33, 70, MessageSize - 1} {
		bad := append([]byte(nil), pending.Msg1()...)
		bad[idx] ^= 1
		if _, _, err := Respond(idR, addrR, addrI, bad); err == nil {
			t.Fatalf("tampered msg1 byte %d accepted", idx)
		}
	}
}

func TestTamperedMsg2Rejected(t *testing.T) {
	idI, idR := identities(t)
	pending, _ := Initiate(idI, addrI, addrR)
	msg2, _, err := Respond(idR, addrR, addrI, pending.Msg1())
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 40, MessageSize - 1} {
		bad := append([]byte(nil), msg2...)
		bad[idx] ^= 1
		if _, err := pending.Complete(bad); err == nil {
			t.Fatalf("tampered msg2 byte %d accepted", idx)
		}
	}
}

func TestShortMessagesRejected(t *testing.T) {
	idI, idR := identities(t)
	if _, _, err := Respond(idR, addrR, addrI, make([]byte, 10)); err != ErrBadMessage {
		t.Fatalf("short msg1 err = %v", err)
	}
	pending, _ := Initiate(idI, addrI, addrR)
	if _, err := pending.Complete(make([]byte, MessageSize-1)); err != ErrBadMessage {
		t.Fatalf("short msg2 err = %v", err)
	}
}

func TestMsg2FromWrongHandshakeRejected(t *testing.T) {
	idI, idR := identities(t)
	pendingA, _ := Initiate(idI, addrI, addrR)
	pendingB, _ := Initiate(idI, addrI, addrR)
	msg2forA, _, err := Respond(idR, addrR, addrI, pendingA.Msg1())
	if err != nil {
		t.Fatal(err)
	}
	// msg2 is bound to pendingA's ephemeral and nonce; B must reject it.
	if _, err := pendingB.Complete(msg2forA); err == nil {
		t.Fatal("msg2 accepted by unrelated pending handshake")
	}
}

// §4: ILP must add no latency when establishing connections — once the pipe
// exists, opening a new service connection requires zero handshake
// messages. This test pins that structural property: the same pipe crypto
// serves arbitrarily many connection IDs with no per-connection setup.
func TestILPZeroSetupLatency(t *testing.T) {
	idI, idR := identities(t)
	pending, _ := Initiate(idI, addrI, addrR)
	msg2, resR, err := Respond(idR, addrR, addrI, pending.Msg1())
	if err != nil {
		t.Fatal(err)
	}
	resI, err := pending.Complete(msg2)
	if err != nil {
		t.Fatal(err)
	}
	cI, _ := psp.NewPipeCrypto(resI.Master, true, resI.BaseSPI)
	cR, _ := psp.NewPipeCrypto(resR.Master, false, resR.BaseSPI)

	// 100 distinct connections over the same pipe, zero additional
	// handshake messages.
	for conn := wire.ConnectionID(1); conn <= 100; conn++ {
		hdr := wire.ILPHeader{Service: wire.SvcNull, Conn: conn}
		enc, _ := hdr.Encode()
		pkt, err := cI.TX.Seal(nil, enc, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := cR.RX.Open(pkt)
		if err != nil {
			t.Fatal(err)
		}
		var dec wire.ILPHeader
		if _, err := dec.DecodeFromBytes(got); err != nil {
			t.Fatal(err)
		}
		if dec.Conn != conn {
			t.Fatalf("conn %d decoded as %d", conn, dec.Conn)
		}
	}
}

func BenchmarkHandshake(b *testing.B) {
	idI, _ := NewIdentity()
	idR, _ := NewIdentity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pending, err := Initiate(idI, addrI, addrR)
		if err != nil {
			b.Fatal(err)
		}
		msg2, _, err := Respond(idR, addrR, addrI, pending.Msg1())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pending.Complete(msg2); err != nil {
			b.Fatal(err)
		}
	}
}
