// Package handshake establishes the shared key of an ILP pipe (§4): "this
// shared key is created when the sender and the receiver first connect with
// each other: i.e., when a host first associates with an SN or when two SNs
// establish a pipe between each other."
//
// The protocol is a two-message signed Diffie-Hellman (SIGMA-style):
//
//	msg1  I→R:  eI ‖ idI ‖ nI ‖ Sign_I("ie-hs1" ‖ eI ‖ idI ‖ nI ‖ addrI ‖ addrR)
//	msg2  R→I:  eR ‖ idR ‖ nR ‖ Sign_R("ie-hs2" ‖ eR ‖ idR ‖ nR ‖ eI ‖ nI)
//
// where eX are ephemeral X25519 public keys, idX are Ed25519 identity keys,
// and nX are fresh nonces. Both sides derive
//
//	master  = HKDF(X25519(eI, eR), salt = nI ‖ nR, info = "interedge-pipe-master")
//	baseSPI = first 4 bytes of HKDF(master, "interedge-spi") with low byte cleared
//
// The handshake gives mutual authentication (callers check the peer
// identity against policy), forward secrecy (both DH shares are ephemeral),
// and binds the pipe to the addresses of both ends. After the two messages,
// ILP adds no further per-connection or per-packet establishment cost —
// the property Table 1's no-service numbers depend on.
package handshake

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"

	"interedge/internal/cryptutil"
	"interedge/internal/wire"
)

const (
	ephSize   = 32
	idSize    = ed25519.PublicKeySize
	nonceSize = 16
	sigSize   = ed25519.SignatureSize

	// MessageSize is the identical wire size of both handshake messages.
	MessageSize = ephSize + idSize + nonceSize + sigSize
)

// Errors returned by handshake processing.
var (
	ErrBadMessage   = errors.New("handshake: malformed message")
	ErrBadSignature = errors.New("handshake: signature verification failed")
)

// Identity is a node's long-lived signing identity.
type Identity struct {
	Signing cryptutil.SigningKeypair
}

// NewIdentity generates a fresh identity.
func NewIdentity() (Identity, error) {
	kp, err := cryptutil.NewSigningKeypair()
	if err != nil {
		return Identity{}, err
	}
	return Identity{Signing: kp}, nil
}

// PublicKey returns the node's Ed25519 identity key.
func (id Identity) PublicKey() ed25519.PublicKey { return id.Signing.Public }

// Result is the outcome of a completed handshake.
type Result struct {
	// Master is the pipe's shared master secret feeding the PSP key
	// schedule.
	Master cryptutil.Key
	// BaseSPI is the pipe's SPI base, identical on both ends.
	BaseSPI uint32
	// Initiator reports whether the local node initiated (selects PSP
	// directions).
	Initiator bool
	// PeerIdentity is the remote node's verified Ed25519 identity key.
	PeerIdentity ed25519.PublicKey
}

// Pending is the initiator's state between msg1 and msg2.
type Pending struct {
	id        Identity
	eph       *ecdh.PrivateKey
	nonce     [nonceSize]byte
	localAddr wire.Addr
	peerAddr  wire.Addr
	msg1      []byte
}

// Msg1 returns the encoded first message (for retransmission).
func (p *Pending) Msg1() []byte { return p.msg1 }

func transcript1(eph, id, nonce []byte, src, dst wire.Addr) []byte {
	buf := make([]byte, 0, 6+ephSize+idSize+nonceSize+32)
	buf = append(buf, "ie-hs1"...)
	buf = append(buf, eph...)
	buf = append(buf, id...)
	buf = append(buf, nonce...)
	s16, d16 := src.As16(), dst.As16()
	buf = append(buf, s16[:]...)
	buf = append(buf, d16[:]...)
	return buf
}

func transcript2(eph, id, nonce, peerEph, peerNonce []byte) []byte {
	buf := make([]byte, 0, 6+ephSize+idSize+nonceSize+ephSize+nonceSize)
	buf = append(buf, "ie-hs2"...)
	buf = append(buf, eph...)
	buf = append(buf, id...)
	buf = append(buf, nonce...)
	buf = append(buf, peerEph...)
	buf = append(buf, peerNonce...)
	return buf
}

// Initiate builds msg1 for a handshake from localAddr to peerAddr.
func Initiate(id Identity, localAddr, peerAddr wire.Addr) (*Pending, error) {
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("handshake: ephemeral key: %w", err)
	}
	p := &Pending{id: id, eph: eph, localAddr: localAddr, peerAddr: peerAddr}
	if _, err := rand.Read(p.nonce[:]); err != nil {
		return nil, fmt.Errorf("handshake: nonce: %w", err)
	}
	ephPub := eph.PublicKey().Bytes()
	idPub := id.Signing.Public
	sig := id.Signing.Sign(transcript1(ephPub, idPub, p.nonce[:], localAddr, peerAddr))

	msg := make([]byte, 0, MessageSize)
	msg = append(msg, ephPub...)
	msg = append(msg, idPub...)
	msg = append(msg, p.nonce[:]...)
	msg = append(msg, sig...)
	p.msg1 = msg
	return p, nil
}

func parse(msg []byte) (eph, id, nonce, sig []byte, err error) {
	if len(msg) != MessageSize {
		return nil, nil, nil, nil, ErrBadMessage
	}
	eph = msg[:ephSize]
	id = msg[ephSize : ephSize+idSize]
	nonce = msg[ephSize+idSize : ephSize+idSize+nonceSize]
	sig = msg[ephSize+idSize+nonceSize:]
	return eph, id, nonce, sig, nil
}

func derive(shared, nI, nR []byte) (cryptutil.Key, uint32, error) {
	salt := append(append([]byte(nil), nI...), nR...)
	master, err := cryptutil.DeriveKey(shared, salt, "interedge-pipe-master")
	if err != nil {
		return cryptutil.Key{}, 0, err
	}
	spiBytes, err := cryptutil.HKDF(master[:], nil, []byte("interedge-spi"), 4)
	if err != nil {
		return cryptutil.Key{}, 0, err
	}
	spi := binary.BigEndian.Uint32(spiBytes) &^ 0xFF
	return master, spi, nil
}

// Respond processes msg1 at the responder (listening at localAddr, from
// peerAddr) and returns the encoded msg2 plus the completed Result.
func Respond(id Identity, localAddr, peerAddr wire.Addr, msg1 []byte) ([]byte, *Result, error) {
	peerEph, peerID, peerNonce, sig, err := parse(msg1)
	if err != nil {
		return nil, nil, err
	}
	if !cryptutil.Verify(peerID, transcript1(peerEph, peerID, peerNonce, peerAddr, localAddr), sig) {
		return nil, nil, ErrBadSignature
	}
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("handshake: ephemeral key: %w", err)
	}
	var nonce [nonceSize]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, nil, fmt.Errorf("handshake: nonce: %w", err)
	}
	shared, err := cryptutil.X25519Shared(eph, peerEph)
	if err != nil {
		return nil, nil, fmt.Errorf("handshake: %w", err)
	}
	master, spi, err := derive(shared, peerNonce, nonce[:])
	if err != nil {
		return nil, nil, err
	}

	ephPub := eph.PublicKey().Bytes()
	idPub := id.Signing.Public
	sig2 := id.Signing.Sign(transcript2(ephPub, idPub, nonce[:], peerEph, peerNonce))
	msg2 := make([]byte, 0, MessageSize)
	msg2 = append(msg2, ephPub...)
	msg2 = append(msg2, idPub...)
	msg2 = append(msg2, nonce[:]...)
	msg2 = append(msg2, sig2...)

	return msg2, &Result{
		Master:       master,
		BaseSPI:      spi,
		Initiator:    false,
		PeerIdentity: append(ed25519.PublicKey(nil), peerID...),
	}, nil
}

// Complete processes msg2 at the initiator and returns the Result.
func (p *Pending) Complete(msg2 []byte) (*Result, error) {
	peerEph, peerID, peerNonce, sig, err := parse(msg2)
	if err != nil {
		return nil, err
	}
	myEph := p.eph.PublicKey().Bytes()
	if !cryptutil.Verify(peerID, transcript2(peerEph, peerID, peerNonce, myEph, p.nonce[:]), sig) {
		return nil, ErrBadSignature
	}
	shared, err := cryptutil.X25519Shared(p.eph, peerEph)
	if err != nil {
		return nil, fmt.Errorf("handshake: %w", err)
	}
	master, spi, err := derive(shared, p.nonce[:], peerNonce)
	if err != nil {
		return nil, err
	}
	return &Result{
		Master:       master,
		BaseSPI:      spi,
		Initiator:    true,
		PeerIdentity: append(ed25519.PublicKey(nil), peerID...),
	}, nil
}
