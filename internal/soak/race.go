//go:build race

package soak

import "time"

// The race detector slows every layer by an order of magnitude, so the
// tick loop yields far more real time per injected packet to keep the
// simulated clock from outrunning actual processing. Race-mode runs
// trade the wall-clock compression target for detection coverage.
const (
	raceEnabled     = true
	tickYieldBase   = 50 * time.Microsecond
	tickYieldPerPkt = 20 * time.Microsecond

	// fastpathP99Bound is loosened an order of magnitude under the race
	// detector: it slows genuine service time by roughly that factor,
	// and the plain-build 2ms SLO is enforced by the non-race suite.
	fastpathP99Bound = 20 * time.Millisecond
)
