package soak

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"interedge/internal/clock"
	"interedge/internal/edomain"
	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/lookup"
	"interedge/internal/netsim"
	"interedge/internal/services/echo"
	"interedge/internal/services/ipfwd"
	"interedge/internal/sn"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// Result is one finished soak run: the stats the gates judged, the
// per-gate verdicts, and the full per-node registry snapshots (taken
// just before teardown) for dump-on-breach diagnostics.
type Result struct {
	Stats      RunStats
	Gates      []GateResult
	Registries map[string]telemetry.Snapshot

	passed bool
}

// Passed reports whether every SLO gate held.
func (r *Result) Passed() bool { return r.passed }

// FailureDiff renders the breached gates, one line per SLO.
func (r *Result) FailureDiff() string { return DiffFailed(r.Gates) }

// GateSummary renders every gate verdict, passed and failed.
func (r *Result) GateSummary() string {
	var b strings.Builder
	for _, g := range r.Gates {
		b.WriteString(g.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// DumpRegistries renders every node's registry in the text exposition
// format, labeled by node, for attaching to a failure report.
func (r *Result) DumpRegistries() string {
	names := make([]string, 0, len(r.Registries))
	for n := range r.Registries {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "--- registry %s ---\n", n)
		_ = r.Registries[n].WriteProm(&b, "node", n)
	}
	return b.String()
}

// RunOption customizes one Run.
type RunOption func(*runOpts)

type runOpts struct {
	capture *WireCapture
	logf    func(format string, args ...any)
}

// WithCapture records sealed wire traffic into c during the run (fuzz
// corpus harvesting).
func WithCapture(c *WireCapture) RunOption {
	return func(o *runOpts) { o.capture = c }
}

// WithLogf receives per-run progress diagnostics (nil discards).
func WithLogf(f func(format string, args ...any)) RunOption {
	return func(o *runOpts) { o.logf = f }
}

// runOutcome is what survives a scenario's teardown: the tallies and
// snapshots the gates judge. Everything topology-scoped dies inside
// runScenario so the resource-leak gates measure a collectable world.
type runOutcome struct {
	regs   map[string]telemetry.Snapshot
	totals *Totals

	sent, delivered, bad      uint64
	flakySent, flakyDelivered uint64
	simSeconds                float64
}

// Run executes one scenario under the given substrate seed and evaluates
// its SLO gates. The run is deterministic in the fault schedule (seeded
// substrate draws on the injected clock); service timings are real and
// feed the latency SLOs.
func Run(sc Scenario, seed int64, opts ...RunOption) (*Result, error) {
	sc = sc.withDefaults()
	var ro runOpts
	for _, o := range opts {
		o(&ro)
	}
	if ro.logf == nil {
		ro.logf = func(string, ...any) {}
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapBase := ms.HeapAlloc
	goroBase := runtime.NumGoroutine()
	wallStart := time.Now()

	out, err := runScenario(sc, seed, &ro)
	if err != nil {
		return nil, err
	}

	// The topology is torn down and unreferenced; let the leak gates
	// measure a settled process. Two GC cycles release sync.Pool pages.
	goroEnd := runtime.NumGoroutine()
	for wait := 0; wait < 200 && goroEnd > goroBase; wait++ {
		time.Sleep(5 * time.Millisecond)
		goroEnd = runtime.NumGoroutine()
	}
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&ms)

	stats := RunStats{
		Scenario:       sc.Name,
		Seed:           seed,
		SimSeconds:     out.simSeconds,
		WallSeconds:    time.Since(wallStart).Seconds(),
		Sent:           out.sent,
		Delivered:      out.delivered,
		Bad:            out.bad,
		FlakySent:      out.flakySent,
		FlakyDelivered: out.flakyDelivered,
		GoroutineBase:  goroBase,
		GoroutineEnd:   goroEnd,
		HeapBase:       heapBase,
		HeapEnd:        ms.HeapAlloc,
		Totals:         out.totals,
	}
	gates := sc.Gates
	if len(gates) == 0 {
		gates = BaselineGates()
	}
	results, ok := EvalGates(gates, &stats)
	ro.logf("soak %s seed=%d: sim=%.0fs wall=%.2fs sent=%d delivered=%d gates=%d pass=%v",
		sc.Name, seed, stats.SimSeconds, stats.WallSeconds, stats.Sent, stats.Delivered, len(results), ok)
	return &Result{Stats: stats, Gates: results, Registries: out.regs, passed: ok}, nil
}

// runScenario assembles the world, drives the load and fault schedules
// under the injected clock, snapshots telemetry, and tears everything
// down before returning.
func runScenario(sc Scenario, seed int64, ro *runOpts) (*runOutcome, error) {
	clk := clock.NewManual(time.Unix(0, 0))
	fabricReg := telemetry.NewRegistry()
	net := netsim.NewNetwork(
		netsim.WithSeed(seed),
		netsim.WithClock(clk),
		netsim.WithTelemetry(fabricReg),
	)

	w := &World{Net: net, Clock: clk}
	topoOpts := []lab.Option{
		lab.WithNetwork(net),
		lab.WithClock(clk),
		lab.WithSNConfig(func(cfg *sn.Config) {
			cfg.KeepaliveInterval = sc.Keepalive
			cfg.DeadAfter = sc.DeadAfter
			cfg.HandshakeTimeout = time.Second
			cfg.HandshakeRetries = 8
		}),
	}
	if ro.capture != nil {
		topoOpts = append(topoOpts, lab.WithTransportWrap(ro.capture.Tap))
	}
	topo := lab.New(topoOpts...)
	w.Topo = topo
	defer topo.Close()
	// The global lookup service's instruments go into the fabric registry:
	// it is a singleton, and registering it per node would multiply its
	// counts in the summed Totals the gates read.
	topo.Global.RegisterTelemetry(fabricReg)

	setup := func(node *sn.SN, ed *lab.Edomain) error {
		if err := node.Register(echo.New(),
			sn.WithWorkers(2), sn.WithQueueDepth(1024)); err != nil {
			return err
		}
		// Each node forwards through its own SN-tier resolution cache:
		// cold resolutions become async fills with packet requeue, and
		// address-record churn invalidates both the cache entry and the
		// decision-cache rules toward the moved host.
		if err := node.Register(ipfwd.New(topo.NewNodeResolver(ed, node), topo.Fabric),
			sn.WithWorkers(2), sn.WithQueueDepth(1024)); err != nil {
			return err
		}
		if sc.Flaky != nil {
			fm := &flakyModule{}
			w.flaky = append(w.flaky, fm)
			if err := node.Register(fm,
				sn.WithBreaker(sc.Flaky.BreakerThreshold, sc.Flaky.BreakerCooldown)); err != nil {
				return err
			}
		}
		return nil
	}
	for e := 0; e < sc.Edomains; e++ {
		ed, err := topo.AddEdomain(edomain.ID(fmt.Sprintf("ed%d", e)), sc.SNsPerEdomain, setup)
		if err != nil {
			return nil, fmt.Errorf("soak: build edomain %d: %w", e, err)
		}
		w.Eds = append(w.Eds, ed)
	}
	if err := topo.Mesh(); err != nil {
		return nil, fmt.Errorf("soak: mesh: %w", err)
	}
	if sc.RingPlaced {
		for _, ed := range w.Eds {
			w.Places = append(w.Places, topo.NewPlacement(ed))
		}
	}
	type churnTarget struct {
		h        *host.Host
		firstHop wire.Addr
	}
	var churnTargets []churnTarget
	for e, ed := range w.Eds {
		var hosts []*host.Host
		for hIdx := 0; hIdx < sc.HostsPerEdomain; hIdx++ {
			var h *host.Host
			var fh wire.Addr
			var err error
			if sc.RingPlaced {
				h, err = topo.NewPlacedHost(w.Places[e])
				if err == nil {
					fh, _ = w.Places[e].PlacedOn(h.Addr())
				}
			} else {
				h, err = topo.NewHost(ed, hIdx%sc.SNsPerEdomain)
				fh = ed.SNs[hIdx%sc.SNsPerEdomain].Addr()
			}
			if err != nil {
				return nil, fmt.Errorf("soak: host %d/%d: %w", e, hIdx, err)
			}
			hosts = append(hosts, h)
			churnTargets = append(churnTargets, churnTarget{h, fh})
		}
		w.Hosts = append(w.Hosts, hosts)
	}

	flows, byTag, err := buildFlows(sc, w)
	if err != nil {
		return nil, err
	}
	var strayBad atomic.Uint64
	handler := onServiceHandler(byTag, &strayBad)
	for _, hosts := range w.Hosts {
		for _, h := range hosts {
			h.OnService(wire.SvcIPFwd, handler)
		}
	}
	var wg sync.WaitGroup
	for _, f := range flows {
		wg.Add(1)
		go func(f *flow) {
			defer wg.Done()
			f.drainConn(byTag, &strayBad)
		}(f)
	}

	// Topology and pipes are established on clean links; only now do
	// the scenario's baseline faults and scheduled events take effect.
	net.SetDefaultFaults(sc.DefaultFaults)
	var cancelEvents func()
	if sc.Events != nil {
		_, cancelEvents = net.Schedule(sc.Events(w))
		defer cancelEvents()
	}

	// Main loop: offer this tick's load, advance the injected clock one
	// quantum, and yield briefly so handshakes, timers, and delayed
	// deliveries run in real goroutine time between advances.
	ticks := int(sc.SimDuration / sc.Tick)
	tickSec := sc.Tick.Seconds()
	buf := make([]byte, payloadLen)
	churnIdx := 0
	nextChurn := time.Duration(-1)
	if sc.Churn != nil {
		nextChurn = sc.Churn.Start
	}
	for tick := 0; tick < ticks; tick++ {
		simT := time.Duration(tick) * sc.Tick
		// Registration churn: one host re-signs and re-registers its
		// address record per interval. The record is unchanged, but the
		// write still publishes a fresh snapshot, fans out to every
		// watching cache tier, and invalidates the decision-cache rules
		// steering at the host.
		for nextChurn >= 0 && simT >= nextChurn {
			if simT >= sc.Churn.Start+sc.Churn.Dur {
				nextChurn = -1
				break
			}
			ct := churnTargets[churnIdx%len(churnTargets)]
			churnIdx++
			sns := []wire.Addr{ct.firstHop}
			rec := lookup.AddrRecord{Addr: ct.h.Addr(), Owner: ct.h.Identity().PublicKey(), SNs: sns}
			sig := lookup.SignAddrRecord(ct.h.Identity().Signing, ct.h.Addr(), sns)
			if err := topo.Global.RegisterAddress(rec, sig); err != nil {
				return nil, fmt.Errorf("soak: churn re-registration: %w", err)
			}
			nextChurn += sc.Churn.Interval
		}
		rate := sc.rateAt(simT)
		offered := 0
		for _, f := range flows {
			var r float64
			switch f.class {
			case classCross:
				r = sc.CrossPPS
			case classFlaky:
				r = sc.Flaky.PPS
			default:
				r = rate
			}
			f.carry += r * tickSec
			if n := int(f.carry); n > 0 {
				f.carry -= float64(n)
				f.offer(n, buf)
				offered += n
			}
		}
		clk.Advance(sc.Tick)
		// Yield real time in proportion to the load just injected so
		// slow-path workers and delivery goroutines keep pace with the
		// injected clock instead of being starved by this loop.
		runtime.Gosched()
		pause := tickYieldBase + time.Duration(offered)*tickYieldPerPkt
		if pause > 0 {
			time.Sleep(pause)
		}
	}
	for i := 0; i < sc.DrainTicks; i++ {
		clk.Advance(sc.Tick)
		time.Sleep(20 * time.Microsecond)
	}
	time.Sleep(20 * time.Millisecond)

	// Snapshot every registry before teardown: gates read these, and
	// they are the dump attached to a breach.
	out := &runOutcome{
		regs:       map[string]telemetry.Snapshot{"fabric": fabricReg.Snapshot()},
		totals:     newTotals(),
		simSeconds: (time.Duration(ticks+sc.DrainTicks) * sc.Tick).Seconds(),
	}
	out.totals.Add(out.regs["fabric"])
	for _, ed := range w.Eds {
		for si, node := range ed.SNs {
			name := fmt.Sprintf("%s/sn%d", ed.ID, si)
			snap := node.Telemetry().Snapshot()
			out.regs[name] = snap
			out.totals.Add(snap)
		}
	}

	if cancelEvents != nil {
		cancelEvents()
	}
	topo.Close()
	wg.Wait()
	// Flush straggler delayed-delivery timers so their goroutines exit
	// before the leak gates measure.
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}

	for _, f := range flows {
		if f.class.reliable() {
			out.sent += f.sent.Load()
			out.delivered += f.delivered.Load()
			out.bad += f.bad.Load()
		} else {
			out.flakySent += f.sent.Load()
			out.flakyDelivered += f.delivered.Load()
		}
	}
	out.bad += strayBad.Load()
	return out, nil
}

// buildFlows opens every conn of the scenario's traffic mix and indexes
// every flow by payload tag: deliveries are credited by tag wherever
// they surface (own conn, colliding conn, or OnService handler).
func buildFlows(sc Scenario, w *World) ([]*flow, map[uint8]*flow, error) {
	var flows []*flow
	byTag := make(map[uint8]*flow)
	nextTag := uint8(0)
	alloc := func(class flowClass, c *host.Conn, svcData []byte) (*flow, error) {
		if int(nextTag) >= 255 {
			return nil, fmt.Errorf("soak: too many flows (max 255)")
		}
		f := &flow{class: class, tag: nextTag, conn: c, svcData: svcData}
		nextTag++
		flows = append(flows, f)
		byTag[f.tag] = f
		return f, nil
	}

	for e, hosts := range w.Hosts {
		for hIdx, h := range hosts {
			c, err := h.NewConn(wire.SvcEcho, host.WithBuffer(4096))
			if err != nil {
				return nil, nil, fmt.Errorf("soak: echo conn: %w", err)
			}
			if _, err := alloc(classEcho, c, nil); err != nil {
				return nil, nil, err
			}

			dst := hosts[(hIdx+1)%len(hosts)]
			c, err = h.NewConn(wire.SvcIPFwd, host.WithBuffer(4096))
			if err != nil {
				return nil, nil, fmt.Errorf("soak: ipfwd conn: %w", err)
			}
			if _, err := alloc(classIPFwd, c, ipfwd.DestData(dst.Addr())); err != nil {
				return nil, nil, err
			}

			if sc.Flaky != nil {
				c, err = h.NewConn(wire.SvcNull, host.WithBuffer(4096))
				if err != nil {
					return nil, nil, fmt.Errorf("soak: flaky conn: %w", err)
				}
				if _, err := alloc(classFlaky, c, nil); err != nil {
					return nil, nil, err
				}
			}
		}
		if sc.CrossPPS > 0 {
			src := hosts[0]
			dst := w.Hosts[(e+1)%len(w.Hosts)][0]
			c, err := src.NewConn(wire.SvcIPFwd, host.WithBuffer(4096))
			if err != nil {
				return nil, nil, fmt.Errorf("soak: cross conn: %w", err)
			}
			if _, err := alloc(classCross, c, ipfwd.DestData(dst.Addr())); err != nil {
				return nil, nil, err
			}
		}
	}
	return flows, byTag, nil
}
