package soak

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/netsim"
	"interedge/internal/services/ipfwd"
	"interedge/internal/sn"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// FleetConfig sizes the million-host fleet scenario: a weightless fleet
// of engine-backed lite hosts (lab.NewFleet) under placement-driven load
// with a rolling drain in the middle. Unlike the compressed-time
// scenarios this one runs on the real clock: the interesting dimension
// is scale (hosts, pipes, goroutine budget), not simulated hours.
type FleetConfig struct {
	// Name labels the report (default "million-host").
	Name string
	// SNs and Hosts size the fleet (defaults 100 and 100_000).
	SNs   int
	Hosts int
	// Rounds is the number of full-fleet send sweeps: every host sends one
	// packet to its ring partner per round (default 8).
	Rounds int
	// DrainSNs is how many (non-gateway) SNs the rolling drain takes out
	// and reactivates mid-run (default 3; must stay below SNs).
	DrainSNs int
	// RatePPS is the aggregate offered load target across the fleet
	// (default 25_000 * GOMAXPROCS). Senders pace per round; a slower
	// machine simply stretches the round.
	RatePPS float64
	// Senders is the sender-goroutine count (default min(4, GOMAXPROCS*2)).
	Senders int
	// EngineWorkers overrides the shared engine's RX fan-out width.
	EngineWorkers int
	// SNRxWorkers and SNCacheSize tune every SN (defaults 1 and
	// 4*hosts-per-SN, floor 1024).
	SNRxWorkers int
	SNCacheSize int
	// GoroutinesPerSN is the steady-state goroutine budget charged per SN
	// in the leak-bound gate (default 24). The whole point of the fleet:
	// the budget has no Hosts term.
	GoroutinesPerSN int
	// Gate bounds (defaults 0.95, 0.60, 0.40, 2200). The fast-path floor
	// accounts for structure, not health: sn_rx_packets counts handshake
	// datagrams and the two cold resolutions every flow pays, so at R
	// rounds the ceiling is roughly (2R-2)/(2R) minus the handshake share
	// — longer runs push it toward 1.
	DeliveryRatioMin float64
	FastpathRatioMin float64
	LookupRateMin    float64
	BalanceMaxX1000  float64
	// Seed feeds the substrate RNG (unused on clean links, kept for
	// report parity).
	Seed int64
	// Logf receives progress diagnostics (nil discards).
	Logf func(format string, args ...any)
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Name == "" {
		c.Name = "million-host"
	}
	if c.SNs == 0 {
		c.SNs = 100
	}
	if c.Hosts == 0 {
		c.Hosts = 100_000
	}
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	if c.DrainSNs == 0 {
		c.DrainSNs = 3
	}
	if c.DrainSNs >= c.SNs {
		c.DrainSNs = c.SNs - 1
	}
	if c.RatePPS == 0 {
		c.RatePPS = 25_000 * float64(runtime.GOMAXPROCS(0))
		// Keep each sweep >= 1s of wall clock: a tiny fleet at the full
		// default rate compresses the whole run into the rolling-drain
		// window and ends up measuring failover, not steady state.
		if c.RatePPS > float64(c.Hosts) {
			c.RatePPS = float64(c.Hosts)
		}
	}
	if c.Senders == 0 {
		c.Senders = 2 * runtime.GOMAXPROCS(0)
		if c.Senders > 4 {
			c.Senders = 4
		}
	}
	if c.SNRxWorkers == 0 {
		c.SNRxWorkers = 1
	}
	if c.SNCacheSize == 0 {
		c.SNCacheSize = 4 * (c.Hosts / c.SNs)
		if c.SNCacheSize < 1024 {
			c.SNCacheSize = 1024
		}
	}
	if c.GoroutinesPerSN == 0 {
		c.GoroutinesPerSN = 24
	}
	if c.DeliveryRatioMin == 0 {
		c.DeliveryRatioMin = 0.95
	}
	if c.FastpathRatioMin == 0 {
		c.FastpathRatioMin = 0.60
	}
	if c.LookupRateMin == 0 {
		c.LookupRateMin = 0.40
	}
	if c.BalanceMaxX1000 == 0 {
		c.BalanceMaxX1000 = 2200
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// fleetPayloadLen carries the sender's fleet index and the round number.
const fleetPayloadLen = 16

// RunFleet builds the weightless fleet, drives Rounds full-fleet sweeps
// of partner traffic through ipfwd (host i -> host (i+1) mod Hosts) with
// a rolling drain/reactivate of DrainSNs SNs mid-run, and evaluates the
// scale gates: delivery ratio, fast-path p99 and hit ratio, lookup-cache
// hit rate, placement balance after the drain cycle, ring-change
// accounting, and — the reason the fleet exists — a steady-state
// goroutine ceiling with no Hosts term.
func RunFleet(cfg FleetConfig) (*Result, error) {
	cfg = cfg.withDefaults()

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapBase := ms.HeapAlloc
	goroBase := runtime.NumGoroutine()
	wallStart := time.Now()

	fabricReg := telemetry.NewRegistry()
	net := netsim.NewNetwork(
		netsim.WithSeed(cfg.Seed),
		netsim.WithTelemetry(fabricReg),
		netsim.WithQueueDepth(16384),
	)
	topo := lab.New(
		lab.WithNetwork(net),
		lab.WithSNConfig(func(c *sn.Config) {
			c.RxWorkers = cfg.SNRxWorkers
			c.CacheSize = cfg.SNCacheSize
			c.HandshakeTimeout = 2 * time.Second
			c.HandshakeRetries = 8
		}),
	)
	defer topo.Close()
	topo.Global.RegisterTelemetry(fabricReg)

	var delivered, bad atomic.Uint64
	handler := func(i int) func(src wire.Addr, hdr wire.ILPHeader, payload []byte) {
		expect := uint64((i + cfg.Hosts - 1) % cfg.Hosts)
		return func(_ wire.Addr, hdr wire.ILPHeader, payload []byte) {
			if hdr.Service != wire.SvcIPFwd || len(payload) != fleetPayloadLen ||
				binary.BigEndian.Uint64(payload[:8]) != expect {
				bad.Add(1)
				return
			}
			delivered.Add(1)
		}
	}

	buildStart := time.Now()
	fleet, err := topo.NewFleet(lab.FleetConfig{
		SNs:           cfg.SNs,
		Hosts:         cfg.Hosts,
		EngineWorkers: cfg.EngineWorkers,
		HostConfig: func(i int, hc *host.Config) {
			hc.FastHandler = handler(i)
		},
		RegisterSN: func(t *lab.Topology, ed *lab.Edomain, node *sn.SN) error {
			rc := t.NewNodeResolver(ed, node)
			return node.Register(ipfwd.New(rc, t.Fabric),
				sn.WithWorkers(2), sn.WithQueueDepth(4096))
		},
	})
	if err != nil {
		return nil, fmt.Errorf("soak: build fleet: %w", err)
	}
	cfg.Logf("fleet up: %d SNs, %d hosts, %d engine workers, build %.1fs, goroutines %d",
		cfg.SNs, cfg.Hosts, fleet.Engine.RxWorkers(), time.Since(buildStart).Seconds(), runtime.NumGoroutine())

	// Pre-encode every flow's ILP header once: the send loop is then pure
	// SendHeaderBytes, the same zero-alloc path the pipe-terminus uses.
	hdrs := make([][]byte, cfg.Hosts)
	for i := range hdrs {
		partner := fleet.Hosts[(i+1)%cfg.Hosts].Addr()
		hdr := wire.ILPHeader{
			Service: wire.SvcIPFwd,
			Conn:    wire.ConnectionID(i + 1),
			Data:    ipfwd.DestData(partner),
		}
		enc, err := hdr.Encode()
		if err != nil {
			return nil, fmt.Errorf("soak: encode fleet header: %w", err)
		}
		hdrs[i] = enc
	}

	goroSteady := runtime.NumGoroutine()
	sampleSteady := func() {
		if n := runtime.NumGoroutine(); n > goroSteady {
			goroSteady = n
		}
	}

	var sent atomic.Uint64
	roundDur := time.Duration(float64(cfg.Hosts) / cfg.RatePPS * float64(time.Second))
	loadStart := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < cfg.Senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			payload := make([]byte, fleetPayloadLen)
			// Flow control: the shared mux queue is the fleet's one NIC.
			// When its backlog crosses the high-water mark the engine
			// workers are behind — back off instead of overflowing it.
			// (There is no per-host backpressure at 10^5 endpoints; the
			// queue depth IS the aggregate burst budget.)
			high := fleet.Mux.Capacity() / 4
			for r := 0; r < cfg.Rounds; r++ {
				start := time.Now()
				binary.BigEndian.PutUint64(payload[8:], uint64(r))
				for i := s; i < cfg.Hosts; i += cfg.Senders {
					if i%512 == s%512 {
						for fleet.Mux.Backlog() > high {
							time.Sleep(2 * time.Millisecond)
						}
					}
					fh, err := fleet.Hosts[i].FirstHop()
					if err != nil {
						continue
					}
					binary.BigEndian.PutUint64(payload[:8], uint64(i))
					if fleet.Hosts[i].SendHeaderBytes(fh, hdrs[i], payload) == nil {
						// Failed sends (e.g. the rebind window of a live
						// handoff) are not offered load; the delivery gate
						// judges only what reached a pipe.
						sent.Add(1)
					}
				}
				if d := roundDur - time.Since(start); d > 0 {
					time.Sleep(d)
				}
			}
		}(s)
	}

	// Rolling drain: a quarter into the run, DrainSNs non-gateway SNs
	// leave the ring one after another (live handoff of every placed
	// host), sit out, and reactivate at the three-quarter mark (migrating
	// their hosts back, again by handoff).
	totalDur := time.Duration(cfg.Rounds) * roundDur
	drained := make([]wire.Addr, 0, cfg.DrainSNs)
	time.Sleep(totalDur / 4)
	sampleSteady()
	for k := 0; k < cfg.DrainSNs; k++ {
		target := fleet.Ed.SNs[1+k].Addr()
		if err := fleet.Place.DrainSN(target); err != nil {
			cfg.Logf("drain %s: %v", target, err)
			continue
		}
		drained = append(drained, target)
		cfg.Logf("drained %s (%d/%d)", target, k+1, cfg.DrainSNs)
		sampleSteady()
	}
	time.Sleep(totalDur / 4)
	for _, target := range drained {
		if err := fleet.Place.Reactivate(target); err != nil {
			cfg.Logf("reactivate %s: %v", target, err)
		}
		sampleSteady()
	}
	wg.Wait()
	sampleSteady()

	// Let the reactivation sweep finish migrating hosts back and in-flight
	// packets drain before the balance gauge and tallies are read.
	settleUntil := time.Now().Add(10 * time.Second)
	for time.Now().Before(settleUntil) && !placementSettled(fleet) {
		time.Sleep(50 * time.Millisecond)
	}
	last := delivered.Load()
	for i := 0; i < 40; i++ {
		time.Sleep(50 * time.Millisecond)
		if now := delivered.Load(); now == last {
			break
		} else {
			last = now
		}
	}
	loadSeconds := time.Since(loadStart).Seconds()

	// Steady-state goroutine budget: base + per-SN workers + the shared
	// engine + senders + controller slack. No Hosts term anywhere — that
	// is the property this gate pins.
	budget := goroBase + cfg.SNs*cfg.GoroutinesPerSN + fleet.Engine.RxWorkers() + cfg.Senders + 64

	fleetReg := telemetry.NewRegistry()
	fleetReg.Gauge("fleet_goroutines_steady").Set(int64(goroSteady))
	fleetReg.Gauge("fleet_hosts").Set(int64(cfg.Hosts))
	fleetReg.Gauge("fleet_sns").Set(int64(cfg.SNs))

	out := &runOutcome{
		regs:       map[string]telemetry.Snapshot{"fabric": fabricReg.Snapshot()},
		totals:     newTotals(),
		simSeconds: loadSeconds,
	}
	out.totals.Add(out.regs["fabric"])
	out.regs["engine"] = fleet.EngineReg.Snapshot()
	out.totals.Add(out.regs["engine"])
	out.regs["fleet"] = fleetReg.Snapshot()
	out.totals.Add(out.regs["fleet"])
	for si, node := range fleet.Ed.SNs {
		name := fmt.Sprintf("%s/sn%d", fleet.Ed.ID, si)
		snap := node.Telemetry().Snapshot()
		out.regs[name] = snap
		out.totals.Add(snap)
	}

	topo.Close()
	goroEnd := runtime.NumGoroutine()
	for wait := 0; wait < 200 && goroEnd > goroBase; wait++ {
		time.Sleep(5 * time.Millisecond)
		goroEnd = runtime.NumGoroutine()
	}
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&ms)

	stats := RunStats{
		Scenario:      cfg.Name,
		Seed:          cfg.Seed,
		SimSeconds:    out.simSeconds,
		WallSeconds:   time.Since(wallStart).Seconds(),
		Sent:          sent.Load(),
		Delivered:     delivered.Load(),
		Bad:           bad.Load(),
		GoroutineBase: goroBase,
		GoroutineEnd:  goroEnd,
		HeapBase:      heapBase,
		HeapEnd:       ms.HeapAlloc,
		Totals:        out.totals,
	}
	gates := FleetGates(cfg, budget)
	results, ok := EvalGates(gates, &stats)
	ns := net.Snapshot()
	cfg.Logf("fleet %s: wall=%.1fs sent=%d delivered=%d goro steady=%d (budget %d) pass=%v "+
		"[netsim delivered=%d qdrop=%d deaddrop=%d]",
		cfg.Name, stats.WallSeconds, stats.Sent, stats.Delivered, goroSteady, budget, ok,
		ns.Delivered, ns.DroppedQueue, ns.DroppedDead)
	return &Result{Stats: stats, Gates: results, Registries: out.regs, passed: ok}, nil
}

// placementSettled reports whether every adopted host sits on its current
// ring owner — true once the post-reactivation sweep has finished.
func placementSettled(fleet *lab.Fleet) bool {
	for _, h := range fleet.Hosts {
		want, ok := fleet.Ed.Core.PlaceHost(h.Addr())
		if !ok {
			return false
		}
		got, ok := fleet.Place.PlacedOn(h.Addr())
		if !ok || got != want {
			return false
		}
	}
	return true
}

// FleetGates is the million-host SLO set. budget is the steady-state
// goroutine ceiling (computed from SNs, engine workers, and senders —
// never from Hosts).
func FleetGates(cfg FleetConfig, budget int) []Gate {
	return []Gate{
		DeliveryRatioMin(cfg.DeliveryRatioMin),
		BadZero(),
		QuantileMaxNs("sn_fastpath_service_ns", 0.99, fastpathP99Bound),
		RatioMin("sn_fastpath_hits_total", "sn_rx_packets_total", cfg.FastpathRatioMin),
		LookupHitRateMin(cfg.LookupRateMin),
		CounterMax("edomain_placement_balance_x1000", cfg.BalanceMaxX1000),
		// Ring accounting: SNs registrations seed the ring; every drained
		// SN contributes draining -> down -> active.
		CounterMin("edomain_ring_changes_total", float64(cfg.SNs+3*cfg.DrainSNs)),
		CounterMin("sn_handoff_pipes_total", 1),
		RatioMax("sn_requeue_drops_total", "sn_rx_packets_total", 0.05),
		CounterMax("fleet_goroutines_steady", float64(budget)),
		GoroutineCeiling(64),
	}
}
