package soak

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Capacity summarizes what the fleet processed during a run, in both
// simulated and wall-clock terms. SimPPS is the service rate against
// injected time (the paper-facing number); WallPPS is how fast the stack
// actually chewed through it, i.e. the compression headroom.
type Capacity struct {
	RxPackets     uint64  `json:"rx_packets"`
	FastpathHits  uint64  `json:"fastpath_hits"`
	Forwarded     uint64  `json:"forwarded"`
	Requeued      uint64  `json:"requeued"`
	RequeueDrops  uint64  `json:"requeue_drops"`
	Reestablished uint64  `json:"reestablished"`
	LookupHits    uint64  `json:"lookup_hits,omitempty"`
	LookupMisses  uint64  `json:"lookup_misses,omitempty"`
	LookupHitRate float64 `json:"lookup_hit_rate,omitempty"`
	SimPPS        float64 `json:"sim_pps"`
	WallPPS       float64 `json:"wall_pps"`
	FastpathP50Ns uint64  `json:"fastpath_p50_ns"`
	FastpathP99Ns uint64  `json:"fastpath_p99_ns"`
}

// RunReport is one seed's run in a scenario report.
type RunReport struct {
	Seed          int64        `json:"seed"`
	SimSeconds    float64      `json:"sim_seconds"`
	WallSeconds   float64      `json:"wall_seconds"`
	Compression   float64      `json:"compression"`
	Sent          uint64       `json:"sent"`
	Delivered     uint64       `json:"delivered"`
	DeliveryRatio float64      `json:"delivery_ratio"`
	BadPayloads   uint64       `json:"bad_payloads"`
	Capacity      Capacity     `json:"capacity"`
	Gates         []GateResult `json:"gates"`
	Passed        bool         `json:"passed"`
}

// Report is the machine-readable outcome of one scenario across its
// seeds — written as SOAK_<scenario>.json next to the BENCH_*.json
// artifacts.
type Report struct {
	Scenario string      `json:"scenario"`
	Runs     []RunReport `json:"runs"`
	Passed   bool        `json:"passed"`
}

// NewReport starts an empty report for a scenario.
func NewReport(scenario string) *Report {
	return &Report{Scenario: scenario, Passed: true}
}

// AddRun folds one finished run into the report.
func (rp *Report) AddRun(res *Result) {
	st := &res.Stats
	ratio := 0.0
	if st.Sent > 0 {
		ratio = float64(st.Delivered) / float64(st.Sent)
	}
	compression := 0.0
	if st.WallSeconds > 0 {
		compression = st.SimSeconds / st.WallSeconds
	}
	cap := Capacity{
		RxPackets:     uint64(st.Totals.Sum("sn_rx_packets_total")),
		FastpathHits:  uint64(st.Totals.Sum("sn_fastpath_hits_total")),
		Forwarded:     uint64(st.Totals.Sum("sn_forwarded_total")),
		Requeued:      uint64(st.Totals.Sum("sn_requeued_total")),
		RequeueDrops:  uint64(st.Totals.Sum("sn_requeue_drops_total")),
		Reestablished: uint64(st.Totals.Sum("pipe_reestablished_total")),
		LookupHits:    uint64(st.Totals.Sum("lookup_cache_hits_total")),
		LookupMisses:  uint64(st.Totals.Sum("lookup_cache_misses_total")),
	}
	if total := cap.LookupHits + cap.LookupMisses; total > 0 {
		cap.LookupHitRate = float64(cap.LookupHits) / float64(total)
	}
	if st.SimSeconds > 0 {
		cap.SimPPS = float64(cap.RxPackets) / st.SimSeconds
	}
	if st.WallSeconds > 0 {
		cap.WallPPS = float64(cap.RxPackets) / st.WallSeconds
	}
	if h := st.Totals.Hist("sn_fastpath_service_ns"); h != nil {
		cap.FastpathP50Ns = h.Quantile(0.50)
		cap.FastpathP99Ns = h.Quantile(0.99)
	}
	rp.Runs = append(rp.Runs, RunReport{
		Seed:          st.Seed,
		SimSeconds:    st.SimSeconds,
		WallSeconds:   st.WallSeconds,
		Compression:   compression,
		Sent:          st.Sent,
		Delivered:     st.Delivered,
		DeliveryRatio: ratio,
		BadPayloads:   st.Bad,
		Capacity:      cap,
		Gates:         res.Gates,
		Passed:        res.Passed(),
	})
	rp.Passed = rp.Passed && res.Passed()
}

// Path returns the report's file name under dir: SOAK_<scenario>.json.
func (rp *Report) Path(dir string) string {
	return filepath.Join(dir, fmt.Sprintf("SOAK_%s.json", rp.Scenario))
}

// WriteFile writes the report under dir and returns its path.
func (rp *Report) WriteFile(dir string) (string, error) {
	b, err := json.MarshalIndent(rp, "", "  ")
	if err != nil {
		return "", err
	}
	path := rp.Path(dir)
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
