package soak

import (
	"encoding/binary"
	"hash/crc32"
	"sync/atomic"

	"interedge/internal/host"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Soak payloads are self-verifying: a flow tag, a sequence number, a
// deterministic fill, and a CRC over all of it. Substrate corruption
// must be absorbed by PSP authentication, so a payload that reaches a
// host with a bad CRC is an integrity breach, not background noise.
const payloadLen = 32

func fillPayload(buf []byte, tag uint8, seq uint32) {
	buf[0] = tag
	binary.BigEndian.PutUint32(buf[1:5], seq)
	for i := 5; i < payloadLen-4; i++ {
		buf[i] = byte(seq) + byte(i)
	}
	crc := crc32.ChecksumIEEE(buf[:payloadLen-4])
	binary.BigEndian.PutUint32(buf[payloadLen-4:], crc)
}

func parsePayload(p []byte) (tag uint8, seq uint32, ok bool) {
	if len(p) != payloadLen {
		return 0, 0, false
	}
	if crc32.ChecksumIEEE(p[:payloadLen-4]) != binary.BigEndian.Uint32(p[payloadLen-4:]) {
		return 0, 0, false
	}
	return p[0], binary.BigEndian.Uint32(p[1:5]), true
}

type flowClass int

const (
	classEcho flowClass = iota
	classIPFwd
	classCross
	classFlaky
)

// reliable reports whether the class counts toward the delivery-ratio
// SLO (flaky traffic is deliberately shed by breakers).
func (c flowClass) reliable() bool { return c != classFlaky }

// flow is one offered-load stream: a host conn, the service data sent
// with each packet, and delivery tallies. Echo and flaky replies return
// to the sending conn; ipfwd deliveries surface at the destination
// host's OnService handler, matched back to the flow by payload tag.
type flow struct {
	class   flowClass
	tag     uint8
	conn    *host.Conn
	svcData []byte

	seq   uint32
	carry float64

	sent      atomic.Uint64
	delivered atomic.Uint64
	bad       atomic.Uint64
}

// offer sends n packets back to back.
func (f *flow) offer(n int, buf []byte) {
	for i := 0; i < n; i++ {
		f.seq++
		fillPayload(buf, f.tag, f.seq)
		if err := f.conn.Send(f.svcData, buf); err != nil {
			continue // pipe mid-re-establishment; the delivery gate budgets it
		}
		f.sent.Add(1)
	}
}

// credit books one arrived payload against the flow named by its tag.
// Deliveries are credited by tag, not by arrival point: connection IDs
// are per-host counters, so a one-way ipfwd delivery can land on the
// destination host's own (svc, conn)-colliding conn instead of its
// OnService handler — the embedded tag still identifies the true flow.
func credit(byTag map[uint8]*flow, payload []byte, bad *atomic.Uint64) {
	tag, _, ok := parsePayload(payload)
	if !ok {
		bad.Add(1)
		return
	}
	if f, found := byTag[tag]; found {
		f.delivered.Add(1)
		return
	}
	bad.Add(1)
}

// drainConn consumes a conn's receive channel until the conn closes.
func (f *flow) drainConn(byTag map[uint8]*flow, bad *atomic.Uint64) {
	for msg := range f.conn.Receive() {
		credit(byTag, msg.Payload, bad)
	}
}

// onServiceHandler builds a host.ServiceHandler crediting one-way
// deliveries that matched no local conn.
func onServiceHandler(byTag map[uint8]*flow, bad *atomic.Uint64) host.ServiceHandler {
	return func(msg host.Message) {
		credit(byTag, msg.Payload, bad)
	}
}

// flakyModule is the deliberately unreliable slow-path module behind the
// breaker-storm scenarios: in FlakyOK mode it echoes like SvcNull's
// reply path, in FlakyError mode every invocation errors, in FlakyPanic
// mode every invocation panics. It installs no cache rules, so every
// packet takes the slow path through the dispatcher and its breaker.
type flakyModule struct {
	mode atomic.Int32
}

func (*flakyModule) Service() wire.ServiceID { return wire.SvcNull }
func (*flakyModule) Name() string            { return "flaky" }
func (*flakyModule) Version() string         { return "0.0-soak" }

func (m *flakyModule) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	switch FlakyMode(m.mode.Load()) {
	case FlakyError:
		return sn.Decision{}, errFlaky
	case FlakyPanic:
		panic("soak: flaky module storm")
	}
	return sn.Decision{Forwards: []sn.Forward{{Dst: pkt.Src}}}, nil
}

type flakyErr struct{}

func (flakyErr) Error() string { return "soak: flaky module erroring" }

var errFlaky = flakyErr{}
