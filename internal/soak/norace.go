//go:build !race

package soak

import "time"

// Plain builds need only a token yield per tick: processing keeps up
// with the injected clock and the compressed-time target (<60s wall per
// simulated hour) applies.
const (
	raceEnabled     = false
	tickYieldBase   = 5 * time.Microsecond
	tickYieldPerPkt = 200 * time.Nanosecond

	// fastpathP99Bound is the baseline fast-path p99 service-time SLO.
	fastpathP99Bound = 2 * time.Millisecond
)
