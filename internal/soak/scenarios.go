package soak

import (
	"time"

	"interedge/internal/netsim"
)

// mildFaults is the background pathology present on every link in most
// scenarios: enough reorder/duplication/corruption/jitter that the PSP
// and ordering machinery is continuously exercised, low enough that a
// healthy stack absorbs it without SLO impact.
var mildFaults = netsim.FaultProfile{
	ReorderRate:     0.01,
	ReorderDelayMin: time.Millisecond,
	ReorderDelayMax: 4 * time.Millisecond,
	DuplicateRate:   0.005,
	CorruptRate:     0.002,
	JitterMax:       2 * time.Millisecond,
}

// Scenarios returns the standing soak catalog, keyed by name. Every
// scenario simulates at least one hour of injected-clock operation.
func Scenarios() map[string]Scenario {
	list := []Scenario{
		SteadyDiurnal(),
		GatewayFlapStorm(),
		LossBurstAccess(),
		DegradeRecover(),
		BreakerStorm(),
		BurstMix(),
		DrainRolling(),
		CrashFailover(),
	}
	m := make(map[string]Scenario, len(list))
	for _, sc := range list {
		m[sc.Name] = sc
	}
	return m
}

// SteadyDiurnal models a day compressed into an hour: load ramps up to a
// midday plateau, back down to a nightly trough, under mild background
// faults. The reference scenario for capacity numbers.
func SteadyDiurnal() Scenario {
	return Scenario{
		Name:        "steady-diurnal",
		SimDuration: time.Hour,
		Load: []LoadPhase{
			{Dur: 15 * time.Minute, FromPPS: 3, ToPPS: 8},
			{Dur: 15 * time.Minute, FromPPS: 8, ToPPS: 8},
			{Dur: 15 * time.Minute, FromPPS: 8, ToPPS: 2},
			{Dur: 15 * time.Minute, FromPPS: 2, ToPPS: 2},
		},
		CrossPPS:      2,
		DefaultFaults: mildFaults,
		// Registration churn through the midday plateau: one host
		// re-registers every 20s of simulated time for 30 minutes,
		// exercising watch fan-out, cache refresh, and decision-cache
		// invalidation while the load curve is at its peak.
		Churn: &ChurnSpec{
			Start:    15 * time.Minute,
			Dur:      30 * time.Minute,
			Interval: 20 * time.Second,
		},
		Gates: append(BaselineGates(),
			DeliveryRatioMin(0.97),
			CounterMin("sn_fastpath_hits_total", 5000),
			CounterMin("sn_forwarded_total", 5000),
			LookupHitRateMin(0.5),
			CounterMin("lookup_cache_hits_total", 50),
			CounterMin("lookup_registrations_total", 50),
		),
	}
}

// GatewayFlapStorm partitions the two gateways repeatedly for two
// minutes at a time. Dead-peer detection must fire, transit traffic must
// requeue within budget, and the gateway pipes must re-establish with
// fresh epochs after every heal.
func GatewayFlapStorm() Scenario {
	return Scenario{
		Name:        "gateway-flap-storm",
		SimDuration: time.Hour,
		Load: []LoadPhase{
			{Dur: time.Hour, FromPPS: 5, ToPPS: 5},
		},
		CrossPPS:      2,
		DefaultFaults: mildFaults,
		Events: func(w *World) []netsim.FaultEvent {
			return netsim.FlapPartition(w.GatewayAddr(0), w.GatewayAddr(1),
				5*time.Minute, 2*time.Minute, 6)
		},
		Gates: append(BaselineGates(),
			DeliveryRatioMin(0.80),
			CounterMin("pipe_reestablished_total", 2),
			CounterMin("sn_peers_lost_total", 2),
		),
	}
}

// LossBurstAccess hits access links (host<->first-hop SN) with 30%% loss
// bursts, one edomain at a time, on top of a corrupting substrate. PSP
// must absorb every corruption; retless datagram loss is budgeted by the
// delivery gate.
func LossBurstAccess() Scenario {
	return Scenario{
		Name:        "loss-burst-access",
		SimDuration: time.Hour,
		Load: []LoadPhase{
			{Dur: time.Hour, FromPPS: 6, ToPPS: 6},
		},
		DefaultFaults: netsim.FaultProfile{
			CorruptRate: 0.01,
			JitterMax:   2 * time.Millisecond,
		},
		Events: func(w *World) []netsim.FaultEvent {
			base := netsim.LinkProfile{}
			var evs []netsim.FaultEvent
			evs = append(evs, netsim.LossBurst(w.Hosts[0][0].Addr(), w.SNAddr(0, 0),
				base, 0.30, 10*time.Minute, 2*time.Minute)...)
			evs = append(evs, netsim.LossBurst(w.Hosts[1][0].Addr(), w.SNAddr(1, 0),
				base, 0.30, 25*time.Minute, 2*time.Minute)...)
			evs = append(evs, netsim.LossBurst(w.Hosts[0][1].Addr(), w.SNAddr(0, 1),
				base, 0.30, 40*time.Minute, 2*time.Minute)...)
			return evs
		},
		Gates: append(BaselineGates(),
			DeliveryRatioMin(0.93),
			CounterMin("netsim_dropped_loss_total", 50),
			CounterMin("netsim_corrupted_total", 100),
		),
	}
}

// DegradeRecover walks the inter-gateway link from healthy to lossy and
// slow in steps, holds it degraded, then restores it, while load ramps
// through its peak. The brown-out, not the blackout.
func DegradeRecover() Scenario {
	return Scenario{
		Name:        "degrade-recover",
		SimDuration: time.Hour,
		Load: []LoadPhase{
			{Dur: 20 * time.Minute, FromPPS: 3, ToPPS: 9},
			{Dur: 20 * time.Minute, FromPPS: 9, ToPPS: 9},
			{Dur: 20 * time.Minute, FromPPS: 9, ToPPS: 3},
		},
		CrossPPS:      2,
		DefaultFaults: mildFaults,
		Events: func(w *World) []netsim.FaultEvent {
			a, b := w.GatewayAddr(0), w.GatewayAddr(1)
			base := netsim.LinkProfile{}
			worst := netsim.LinkProfile{Latency: 20 * time.Millisecond, LossRate: 0.10}
			evs := netsim.Degrade(a, b, base, worst, 10*time.Minute, 2*time.Minute, 5)
			evs = append(evs, netsim.FaultEvent{
				At: 40 * time.Minute,
				Do: func(n *netsim.Network) { n.SetLinkBoth(a, b, base) },
			})
			return evs
		},
		Gates: append(BaselineGates(),
			DeliveryRatioMin(0.93),
			CounterMin("netsim_dropped_loss_total", 20),
		),
	}
}

// BreakerStorm runs a deliberately flaky slow-path module through three
// failure storms (errors, panics, errors again) with healthy traffic
// alongside. Breakers must trip during each storm and recover after it,
// and the reliable flow classes must not notice.
func BreakerStorm() Scenario {
	return Scenario{
		Name:        "breaker-storm",
		SimDuration: time.Hour,
		Load: []LoadPhase{
			{Dur: time.Hour, FromPPS: 4, ToPPS: 4},
		},
		Flaky: &FlakySpec{
			PPS:              3,
			BreakerThreshold: 5,
			BreakerCooldown:  30 * time.Second,
		},
		DefaultFaults: mildFaults,
		Events: func(w *World) []netsim.FaultEvent {
			storm := func(at time.Duration, mode FlakyMode) netsim.FaultEvent {
				return netsim.FaultEvent{At: at, Do: func(*netsim.Network) { w.SetFlakyMode(mode) }}
			}
			return []netsim.FaultEvent{
				storm(10*time.Minute, FlakyError),
				storm(14*time.Minute, FlakyOK),
				storm(25*time.Minute, FlakyPanic),
				storm(29*time.Minute, FlakyOK),
				storm(40*time.Minute, FlakyError),
				storm(44*time.Minute, FlakyOK),
			}
		},
		Gates: append(BaselineGates(),
			DeliveryRatioMin(0.97),
			CounterMin("sn_module_breaker_trips_total", 2),
			CounterMin("sn_module_breaker_recoveries_total", 2),
			CounterMin("sn_module_panics_total", 1),
		),
	}
}

// DrainRolling rolls a live drain across every SN of a 4-SN edomain
// under diurnal load: each SN leaves the placement ring, hands its
// established pipes to ring successors without a re-handshake, sits out
// five minutes, and is reactivated (migrating its hosts back, again by
// handoff) before the next drain begins. Every drain must complete, no
// handoff may fall back to re-establishment, the requeue budget must
// never be breached, and each drain must finish inside the SLO.
func DrainRolling() Scenario {
	return Scenario{
		Name:            "sn-drain-rolling",
		SimDuration:     time.Hour,
		Edomains:        2,
		SNsPerEdomain:   4,
		HostsPerEdomain: 8,
		RingPlaced:      true,
		Load: []LoadPhase{
			{Dur: 15 * time.Minute, FromPPS: 3, ToPPS: 8},
			{Dur: 15 * time.Minute, FromPPS: 8, ToPPS: 8},
			{Dur: 15 * time.Minute, FromPPS: 8, ToPPS: 2},
			{Dur: 15 * time.Minute, FromPPS: 2, ToPPS: 2},
		},
		CrossPPS:      2,
		DefaultFaults: mildFaults,
		Events: func(w *World) []netsim.FaultEvent {
			var evs []netsim.FaultEvent
			for s := 0; s < 4; s++ {
				s := s
				at := time.Duration(8+12*s) * time.Minute
				evs = append(evs,
					netsim.FaultEvent{At: at, Do: func(*netsim.Network) { _ = w.DrainSN(0, s) }},
					netsim.FaultEvent{At: at + 5*time.Minute, Do: func(*netsim.Network) { _ = w.ReactivateSN(0, s) }},
				)
			}
			return evs
		},
		Gates: append(BaselineGates(),
			DeliveryRatioMin(0.97),
			CounterMin("sn_drain_started_total", 4),
			CounterMin("sn_drain_completed_total", 4),
			CounterMax("sn_drain_aborted_total", 0),
			// Each of ed0's 8 hosts is handed off at least twice: away when
			// its SN drains, back when it reactivates.
			CounterMin("sn_handoff_pipes_total", 8),
			// 4 registrations per edomain seed the ring; each drain cycle is
			// draining -> down -> active.
			CounterMin("edomain_ring_changes_total", 20),
			CounterMax("sn_requeue_drops_total", 0),
			QuantileMaxNs("sn_drain_duration_ns", 0.99, 500*time.Millisecond),
		),
	}
}

// CrashFailover takes a 4-SN edomain through planned maintenance (one
// live drain and reactivation, proving handoff under load), then kills
// the busiest non-gateway SN mid-burst with no warning. Sibling
// dead-peer detection must report the death as a ring change, the
// orphaned hosts must re-establish against their ring successors, and
// the re-establishment count must stay bounded — no handshake storm.
func CrashFailover() Scenario {
	return Scenario{
		Name:            "sn-crash-failover",
		SimDuration:     time.Hour,
		Edomains:        2,
		SNsPerEdomain:   4,
		HostsPerEdomain: 8,
		RingPlaced:      true,
		Load: []LoadPhase{
			{Dur: time.Hour, FromPPS: 6, ToPPS: 6,
				Burst: &BurstSpec{On: 20 * time.Second, Off: 40 * time.Second}},
		},
		CrossPPS:      2,
		DefaultFaults: mildFaults,
		Events: func(w *World) []netsim.FaultEvent {
			return []netsim.FaultEvent{
				{At: 10 * time.Minute, Do: func(*netsim.Network) { _ = w.DrainSN(0, 1) }},
				{At: 15 * time.Minute, Do: func(*netsim.Network) { _ = w.ReactivateSN(0, 1) }},
				// 30min+10s is inside a burst On window (cycle 60s, on 20s).
				{At: 30*time.Minute + 10*time.Second, Do: func(*netsim.Network) { w.CrashBusiestSN(0) }},
			}
		},
		Gates: append(BaselineGates(),
			DeliveryRatioMin(0.95),
			CounterMin("sn_handoff_pipes_total", 1),
			CounterMin("sn_drain_completed_total", 1),
			CounterMax("sn_drain_aborted_total", 0),
			CounterMin("sn_failovers_total", 1),
			// Every meshed survivor notices the corpse.
			CounterMin("sn_peers_lost_total", 3),
			// Bounded re-establishment: background redial loops against the
			// corpse never succeed, and failover handshakes are one per
			// orphaned host — far below a storm.
			CounterMax("pipe_reestablished_total", 24),
			CounterMin("edomain_ring_changes_total", 12),
		),
	}
}

// BurstMix layers one-in-six-minutes flash crowds (5s at 60 pps per
// flow) over a low steady mix, on a reordering, duplicating substrate —
// the egress-coalescing and batch-open stress shape.
func BurstMix() Scenario {
	return Scenario{
		Name:        "burst-mix",
		SimDuration: time.Hour,
		Load: []LoadPhase{
			{Dur: time.Hour, FromPPS: 60, ToPPS: 60,
				Burst: &BurstSpec{On: 5 * time.Second, Off: 355 * time.Second}},
		},
		CrossPPS: 1,
		DefaultFaults: netsim.FaultProfile{
			ReorderRate:     0.03,
			ReorderDelayMin: time.Millisecond,
			ReorderDelayMax: 6 * time.Millisecond,
			DuplicateRate:   0.01,
			CorruptRate:     0.002,
			JitterMax:       4 * time.Millisecond,
		},
		Gates: append(BaselineGates(),
			DeliveryRatioMin(0.95),
			CounterMin("netsim_duplicated_total", 10),
			CounterMin("netsim_reordered_total", 10),
		),
	}
}
