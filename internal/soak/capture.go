package soak

import (
	"sync"

	"interedge/internal/netsim"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// WireCapture records sealed datagrams as they enter the substrate
// during a soak run. scripts/fuzzseed uses it to harvest realistic fuzz
// corpus entries (whole encoded datagrams, and the PSP packets inside
// ILP frames) from live scenario traffic.
type WireCapture struct {
	// Max bounds the number of recorded datagrams (default 256).
	Max int

	mu  sync.Mutex
	dgs []wire.Datagram
}

func (c *WireCapture) record(dg wire.Datagram) {
	c.mu.Lock()
	defer c.mu.Unlock()
	max := c.Max
	if max == 0 {
		max = 256
	}
	if len(c.dgs) >= max {
		return
	}
	cp := dg
	cp.Payload = append([]byte(nil), dg.Payload...)
	c.dgs = append(c.dgs, cp)
}

// Datagrams returns the captured datagrams (payloads are copies).
func (c *WireCapture) Datagrams() []wire.Datagram {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]wire.Datagram(nil), c.dgs...)
}

// Tap wraps a transport so every egress datagram is recorded into c.
// Pass it to lab.WithTransportWrap. BatchSender and Registrable are
// forwarded so the wrapped transport keeps its vectored path and its
// instruments.
func (c *WireCapture) Tap(tr netsim.Transport) netsim.Transport {
	return &tapTransport{Transport: tr, cap: c}
}

type tapTransport struct {
	netsim.Transport
	cap *WireCapture
}

func (t *tapTransport) Send(dg wire.Datagram) error {
	if !dg.Src.IsValid() {
		dg.Src = t.LocalAddr()
	}
	t.cap.record(dg)
	return t.Transport.Send(dg)
}

func (t *tapTransport) SendBatch(dgs []wire.Datagram) (int, error) {
	for _, dg := range dgs {
		if !dg.Src.IsValid() {
			dg.Src = t.LocalAddr()
		}
		t.cap.record(dg)
	}
	return netsim.SendBatch(t.Transport, dgs)
}

func (t *tapTransport) RegisterTelemetry(r *telemetry.Registry) {
	if rt, ok := t.Transport.(telemetry.Registrable); ok {
		rt.RegisterTelemetry(r)
	}
}
