package soak

import (
	"strings"

	"interedge/internal/telemetry"
)

// Totals merges the telemetry snapshots of every node (and the fabric)
// into fleet-wide aggregates. Counters and gauges sum; histograms with
// identical bucket layouts merge. Lookups accept either a full labeled
// instrument name or a bare base name, which sums/merges across every
// label variant (e.g. "sn_module_breaker_trips_total" matches
// `sn_module_breaker_trips_total{module="flaky"}` on every node).
type Totals struct {
	scalars map[string]float64
	hists   map[string]*telemetry.HistogramView
}

func newTotals() *Totals {
	return &Totals{
		scalars: make(map[string]float64),
		hists:   make(map[string]*telemetry.HistogramView),
	}
}

// baseName strips a trailing {label="..."} suffix.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Add accumulates one node's snapshot.
func (t *Totals) Add(snap telemetry.Snapshot) {
	for _, s := range snap {
		switch s.Kind {
		case telemetry.KindHistogram:
			if s.Hist == nil {
				continue
			}
			if have, ok := t.hists[s.Name]; ok && len(have.Counts) == len(s.Hist.Counts) {
				have.Merge(s.Hist)
			} else if !ok {
				cp := &telemetry.HistogramView{
					Bounds: append([]uint64(nil), s.Hist.Bounds...),
					Counts: append([]uint64(nil), s.Hist.Counts...),
					Sum:    s.Hist.Sum,
					Count:  s.Hist.Count,
				}
				t.hists[s.Name] = cp
			}
		default:
			t.scalars[s.Name] += s.Value
		}
	}
}

// Sum returns the summed value of every counter/gauge whose full or base
// name equals name.
func (t *Totals) Sum(name string) float64 {
	if v, ok := t.scalars[name]; ok && !strings.ContainsRune(name, '{') {
		// A bare name may still also appear as a labeled variant;
		// fall through to the scan only if labels exist for it.
		sum := v
		for k, lv := range t.scalars {
			if k != name && baseName(k) == name {
				sum += lv
			}
		}
		return sum
	}
	if v, ok := t.scalars[name]; ok {
		return v
	}
	var sum float64
	for k, v := range t.scalars {
		if baseName(k) == name {
			sum += v
		}
	}
	return sum
}

// Hist returns the merged view of every histogram whose full or base
// name equals name, or nil if none matched.
func (t *Totals) Hist(name string) *telemetry.HistogramView {
	var merged *telemetry.HistogramView
	for k, h := range t.hists {
		if k != name && baseName(k) != name {
			continue
		}
		if merged == nil {
			merged = &telemetry.HistogramView{
				Bounds: append([]uint64(nil), h.Bounds...),
				Counts: append([]uint64(nil), h.Counts...),
				Sum:    h.Sum,
				Count:  h.Count,
			}
		} else if len(merged.Counts) == len(h.Counts) {
			merged.Merge(h)
		}
	}
	return merged
}
