package soak

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// soakSeeds returns the substrate seeds each scenario runs under.
// -short (tier-1 race sweeps) keeps one seed; the full suite runs three.
func soakSeeds() []int64 {
	if testing.Short() {
		return []int64{1}
	}
	return []int64{1, 7, 42}
}

// TestSoakScenarios runs the whole catalog: every scenario simulates at
// least an hour of injected-clock operation and must hold its SLO gates
// at every seed. A breach reports the per-gate diff and dumps every
// node's telemetry registry.
func TestSoakScenarios(t *testing.T) {
	catalog := Scenarios()
	names := make([]string, 0, len(catalog))
	for name := range catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) < 5 {
		t.Fatalf("scenario catalog has %d scenarios, want >= 5", len(names))
	}
	for _, name := range names {
		sc := catalog[name]
		for _, seed := range soakSeeds() {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				res, err := Run(sc, seed, WithLogf(t.Logf))
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.SimSeconds < 3600 {
					t.Errorf("simulated only %.0fs, want >= 1h", res.Stats.SimSeconds)
				}
				// The compression target applies to plain builds; the
				// race detector's slowdown is not an SLO regression.
				if !raceEnabled && res.Stats.WallSeconds > 60 {
					t.Errorf("run took %.1fs wall, want < 60s", res.Stats.WallSeconds)
				}
				if !res.Passed() {
					t.Errorf("SLO breach:\n%s", res.FailureDiff())
					t.Logf("all gates:\n%s", res.GateSummary())
					t.Logf("registry dump:\n%s", res.DumpRegistries())
				}
			})
		}
	}
}

// TestBrokenSLOFailsWithDiff tightens one SLO to an impossible bound and
// asserts the runner reports the breach the way operators will see it: a
// per-gate diff naming the SLO, plus a non-empty registry dump.
func TestBrokenSLOFailsWithDiff(t *testing.T) {
	sc := SteadyDiurnal()
	sc.Name = "broken-slo"
	sc.SimDuration = 10 * time.Minute
	sc.Gates = append(BaselineGates(),
		QuantileMaxNs("sn_fastpath_service_ns", 0.99, time.Nanosecond))
	res, err := Run(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("impossible p99 bound passed; gate evaluation is broken")
	}
	diff := res.FailureDiff()
	if !strings.Contains(diff, "p99(sn_fastpath_service_ns)") {
		t.Errorf("failure diff does not name the breached SLO:\n%s", diff)
	}
	if !strings.Contains(diff, "FAIL") {
		t.Errorf("failure diff has no FAIL marker:\n%s", diff)
	}
	dump := res.DumpRegistries()
	if !strings.Contains(dump, "sn_rx_packets_total") || !strings.Contains(dump, "netsim_sent_total") {
		t.Errorf("registry dump missing expected instruments (len=%d)", len(dump))
	}
}

// TestRateAt pins the load-schedule math: ramps interpolate, bursts
// gate, and the schedule repeats past its end.
func TestRateAt(t *testing.T) {
	sc := Scenario{Load: []LoadPhase{
		{Dur: 10 * time.Second, FromPPS: 0, ToPPS: 10},
		{Dur: 10 * time.Second, FromPPS: 4, ToPPS: 4,
			Burst: &BurstSpec{On: 2 * time.Second, Off: 3 * time.Second}},
	}}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0},
		{5 * time.Second, 5},
		{10 * time.Second, 4}, // burst phase, inside On window
		{13 * time.Second, 0}, // inside Off window
		{15 * time.Second, 4}, // next duty cycle's On window
		{25 * time.Second, 5}, // schedule repeats
	}
	for _, c := range cases {
		if got := sc.rateAt(c.at); got != c.want {
			t.Errorf("rateAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

// TestReportWriteFile pins the SOAK_*.json artifact shape.
func TestReportWriteFile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a soak; covered by the full suite")
	}
	sc := SteadyDiurnal()
	sc.SimDuration = 10 * time.Minute
	res, err := Run(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewReport(sc.Name)
	rp.AddRun(res)
	dir := t.TempDir()
	path, err := rp.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "SOAK_steady-diurnal.json" {
		t.Errorf("unexpected report name %s", path)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"scenario"`, `"sim_pps"`, `"gates"`, `"compression"`, `"delivery_ratio"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("report missing %s:\n%s", want, b)
		}
	}
}
