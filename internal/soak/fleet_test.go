package soak

import (
	"runtime"
	"testing"
)

// TestFleetScale stands up the weightless fleet and holds the
// million-host scenario gates end to end: every host is an engine-backed
// lite host adopted under ring placement with a real handshake, the load
// generator sweeps partner traffic through ipfwd, a rolling drain moves
// placed hosts by live handoff mid-run, and the steady-state goroutine
// gate proves the world is O(SNs + engine workers) — no Hosts term.
//
// -short (the tier-1 race sweep) runs a reduced fleet; the full run is
// the acceptance shape: 100 SNs, 10^5 lite hosts. The 10^6-host build is
// the interedge-lab -fleet default, not a test.
func TestFleetScale(t *testing.T) {
	cfg := FleetConfig{Logf: t.Logf}
	if testing.Short() {
		cfg.SNs = 12
		cfg.Hosts = 2400
		cfg.Rounds = 5
		cfg.DrainSNs = 2
		cfg.RatePPS = 4000 * float64(runtime.GOMAXPROCS(0))
	} else {
		cfg.SNs = 100
		cfg.Hosts = 100_000
		cfg.Rounds = 5
		cfg.DrainSNs = 3
	}
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Errorf("SLO breach:\n%s", res.FailureDiff())
		t.Logf("all gates:\n%s", res.GateSummary())
	}
	st := res.Stats
	t.Logf("fleet: sent=%d delivered=%d wall=%.1fs goro %d -> %d",
		st.Sent, st.Delivered, st.WallSeconds, st.GoroutineBase, st.GoroutineEnd)
}
