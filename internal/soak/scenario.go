// Package soak runs compressed-time soak scenarios: one or more edomains
// assembled with internal/lab on a manually advanced clock, driven
// through declarative schedules of offered load (steady mixes, ramps,
// bursts) and fault events (partition flaps, loss bursts, breaker
// storms), so hours of simulated operation complete in seconds of wall
// time. After a run the telemetry registries of every node are snapshot
// and a set of SLO gates is evaluated against them; a breach produces a
// per-gate diff plus a full registry dump, and every run yields a
// machine-readable capacity report (SOAK_*.json, see report.go).
package soak

import (
	"time"

	"interedge/internal/clock"
	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/netsim"
	"interedge/internal/wire"
)

// LoadPhase is one segment of a scenario's load schedule. The per-flow
// offered rate ramps linearly from FromPPS to ToPPS (in simulated
// packets per second) over Dur of simulated time; equal values give a
// steady phase. A non-nil Burst gates sending onto an on/off duty cycle
// within the phase, modelling flash crowds.
type LoadPhase struct {
	Dur     time.Duration
	FromPPS float64
	ToPPS   float64
	Burst   *BurstSpec
}

// BurstSpec is an on/off duty cycle: the phase's rate applies during each
// On window and drops to zero for the following Off window.
type BurstSpec struct {
	On  time.Duration
	Off time.Duration
}

// FlakyMode selects the behavior of the scenario's flaky slow-path
// module (see FlakySpec).
type FlakyMode int32

const (
	// FlakyOK echoes packets back to their source.
	FlakyOK FlakyMode = iota
	// FlakyError returns an error from every invocation.
	FlakyError
	// FlakyPanic panics on every invocation.
	FlakyPanic
)

// FlakySpec registers a deliberately unreliable SvcNull module (breaker
// protected) on every SN and opens one conn per host against it at PPS.
// Scenario events toggle the module between FlakyOK / FlakyError /
// FlakyPanic via World.SetFlakyMode to provoke breaker storms. Flaky
// traffic is tallied separately from the reliable classes so breaker
// sheds do not pollute the delivery-ratio SLO.
type FlakySpec struct {
	PPS              float64
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// ChurnSpec drives registration churn against the global lookup service:
// starting at Start and for Dur of simulated time, every Interval one
// host (round-robin) re-signs and re-registers its address record. Each
// re-registration fans out through the address watches, refreshes the
// SN-tier resolution caches, and invalidates the decision-cache rules
// steering traffic at the host — so the scenario exercises the whole
// resolution cache hierarchy under load, not just the first-packet fill.
type ChurnSpec struct {
	Start    time.Duration
	Dur      time.Duration
	Interval time.Duration
}

// Scenario is one declarative soak: a topology, a load schedule, a fault
// schedule, and the SLO gates the resulting telemetry must satisfy.
type Scenario struct {
	Name string

	// Topology shape. Every host runs one echo flow (host<->first-hop
	// SN round trips) and one intra-edomain ipfwd flow (host -> SN ->
	// SN -> host, exercising the decision-cache fast path end to end).
	Edomains        int
	SNsPerEdomain   int
	HostsPerEdomain int

	// SimDuration is how much injected-clock time the load schedule
	// covers; Tick is the advancement quantum (default 500ms).
	SimDuration time.Duration
	Tick        time.Duration

	// Keepalive / DeadAfter tune pipe liveness in simulated time
	// (defaults 2s / 8s).
	Keepalive time.Duration
	DeadAfter time.Duration

	// Load is the per-flow schedule, applied to every echo and ipfwd
	// flow. Phases repeat from the start if they cover less than
	// SimDuration.
	Load []LoadPhase

	// CrossPPS, if non-zero, adds one cross-edomain ipfwd flow per
	// edomain (host 0 -> host 0 of the next edomain) at a steady rate,
	// pushing transit traffic through the gateways.
	CrossPPS float64

	// Flaky, if non-nil, provokes breaker storms (see FlakySpec).
	Flaky *FlakySpec

	// Churn, if non-nil, re-registers host address records on a schedule
	// (see ChurnSpec).
	Churn *ChurnSpec

	// RingPlaced, if set, places hosts on their edomain's consistent-hash
	// ring (one lab.Placement controller per edomain) instead of
	// round-robin by SN index. Scenario events can then take SNs in and
	// out of rotation via World.DrainSN / ReactivateSN / CrashBusiestSN,
	// and the controllers re-place the affected hosts live.
	RingPlaced bool

	// DefaultFaults applies a baseline fault profile to every link.
	DefaultFaults netsim.FaultProfile

	// Events returns the scenario's scheduled fault events, timed on
	// the injected clock. The World gives closures access to the
	// network, gateway addresses, and the flaky-module toggle.
	Events func(w *World) []netsim.FaultEvent

	// Gates are the SLOs evaluated after the run.
	Gates []Gate

	// DrainTicks extends the run after the load schedule ends so
	// in-flight traffic, re-establishments, and breaker recoveries
	// settle before gating (default 60 ticks).
	DrainTicks int
}

// withDefaults fills in unset tuning knobs.
func (sc Scenario) withDefaults() Scenario {
	if sc.Tick == 0 {
		sc.Tick = 500 * time.Millisecond
	}
	if sc.Keepalive == 0 {
		sc.Keepalive = 2 * time.Second
	}
	if sc.DeadAfter == 0 {
		sc.DeadAfter = 4 * sc.Keepalive
	}
	if sc.DrainTicks == 0 {
		sc.DrainTicks = 60
	}
	if sc.Edomains == 0 {
		sc.Edomains = 2
	}
	if sc.SNsPerEdomain == 0 {
		sc.SNsPerEdomain = 2
	}
	if sc.HostsPerEdomain == 0 {
		sc.HostsPerEdomain = 2
	}
	return sc
}

// rateAt returns the per-flow offered rate at sim-offset t into the load
// schedule, honoring ramps and burst duty cycles. Phases repeat.
func (sc *Scenario) rateAt(t time.Duration) float64 {
	if len(sc.Load) == 0 {
		return 0
	}
	var total time.Duration
	for _, ph := range sc.Load {
		total += ph.Dur
	}
	if total <= 0 {
		return 0
	}
	t = t % total
	for _, ph := range sc.Load {
		if t >= ph.Dur {
			t -= ph.Dur
			continue
		}
		if ph.Burst != nil {
			cycle := ph.Burst.On + ph.Burst.Off
			if cycle > 0 && t%cycle >= ph.Burst.On {
				return 0
			}
		}
		frac := float64(t) / float64(ph.Dur)
		return ph.FromPPS + (ph.ToPPS-ph.FromPPS)*frac
	}
	return 0
}

// World exposes the assembled topology to a scenario's Events closure.
type World struct {
	Topo  *lab.Topology
	Net   *netsim.Network
	Clock *clock.Manual
	Eds   []*lab.Edomain
	// Hosts[e][h] is host h of edomain e.
	Hosts [][]*host.Host
	// Places[e] is edomain e's placement controller (RingPlaced only).
	Places []*lab.Placement

	flaky []*flakyModule
}

// GatewayAddr returns the gateway SN address of edomain e.
func (w *World) GatewayAddr(e int) wire.Addr { return w.Eds[e].Gateway().Addr() }

// SNAddr returns the address of SN s in edomain e.
func (w *World) SNAddr(e, s int) wire.Addr { return w.Eds[e].SNs[s].Addr() }

// DrainSN live-drains SN s of edomain e: it leaves the placement ring,
// hands every established host pipe to its ring successor without a
// re-handshake, and finishes out of rotation (RingPlaced scenarios only).
func (w *World) DrainSN(e, s int) error {
	return w.Places[e].DrainSN(w.SNAddr(e, s))
}

// ReactivateSN returns a drained SN of edomain e to placement; hosts it
// owns again migrate back by live handoff (RingPlaced scenarios only).
func (w *World) ReactivateSN(e, s int) error {
	return w.Places[e].Reactivate(w.SNAddr(e, s))
}

// CrashBusiestSN kills the non-gateway SN of edomain e currently serving
// the most ring-placed hosts — no drain, no goodbye — so the crash is
// guaranteed to orphan established pipes. Sibling dead-peer detection
// must notice and report the death as a ring change; the placement
// controller then re-places the orphans by full re-establishment. The
// victim's index is returned (RingPlaced scenarios only).
func (w *World) CrashBusiestSN(e int) int {
	p := w.Places[e]
	victim, most := -1, -1
	for s := 1; s < len(w.Eds[e].SNs); s++ {
		addr := w.SNAddr(e, s)
		served := 0
		for _, h := range w.Hosts[e] {
			if on, ok := p.PlacedOn(h.Addr()); ok && on == addr {
				served++
			}
		}
		if served > most {
			victim, most = s, served
		}
	}
	_ = w.Eds[e].SNs[victim].Close()
	return victim
}

// SetFlakyMode switches every registered flaky module to mode. Usable
// from FaultEvent closures; safe under concurrent packet handling.
func (w *World) SetFlakyMode(m FlakyMode) {
	for _, f := range w.flaky {
		f.mode.Store(int32(m))
	}
}
