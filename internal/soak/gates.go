package soak

import (
	"fmt"
	"strings"
	"time"
)

// RunStats is everything a Gate may judge: flow-level tallies kept by
// the runner, process-level resource measurements, and the merged
// telemetry Totals of every node plus the fabric.
type RunStats struct {
	Scenario    string
	Seed        int64
	SimSeconds  float64
	WallSeconds float64

	// Reliable classes (echo, intra-edomain ipfwd, cross-edomain
	// ipfwd): offered vs. received, plus integrity failures.
	Sent      uint64
	Delivered uint64
	Bad       uint64

	// Flaky class (breaker-storm traffic), tallied separately so
	// deliberate sheds don't pollute the delivery-ratio SLO.
	FlakySent      uint64
	FlakyDelivered uint64

	GoroutineBase int
	GoroutineEnd  int
	HeapBase      uint64
	HeapEnd       uint64

	Totals *Totals
}

// GateResult is one evaluated SLO.
type GateResult struct {
	Name     string  `json:"name"`
	Observed float64 `json:"observed"`
	Bound    float64 `json:"bound"`
	Cmp      string  `json:"cmp"` // "<=" or ">="
	Ok       bool    `json:"ok"`
	Detail   string  `json:"detail,omitempty"`
}

func (g GateResult) String() string {
	status := "ok  "
	if !g.Ok {
		status = "FAIL"
	}
	s := fmt.Sprintf("%s %-48s observed %.6g, want %s %.6g", status, g.Name, g.Observed, g.Cmp, g.Bound)
	if g.Detail != "" {
		s += " (" + g.Detail + ")"
	}
	return s
}

// Gate is one SLO: a named predicate over RunStats.
type Gate struct {
	Name string
	Eval func(*RunStats) GateResult
}

func maxGate(name string, bound float64, obs func(*RunStats) (float64, string)) Gate {
	return Gate{Name: name, Eval: func(r *RunStats) GateResult {
		v, detail := obs(r)
		return GateResult{Name: name, Observed: v, Bound: bound, Cmp: "<=", Ok: v <= bound, Detail: detail}
	}}
}

func minGate(name string, bound float64, obs func(*RunStats) (float64, string)) Gate {
	return Gate{Name: name, Eval: func(r *RunStats) GateResult {
		v, detail := obs(r)
		return GateResult{Name: name, Observed: v, Bound: bound, Cmp: ">=", Ok: v >= bound, Detail: detail}
	}}
}

// QuantileMaxNs gates the q-quantile of a ns-valued histogram (summed
// across nodes and label variants) at max. A scenario whose run never
// observed the histogram fails the gate: an SLO on an unexercised path
// is a broken scenario, not a pass.
func QuantileMaxNs(metric string, q float64, max time.Duration) Gate {
	name := fmt.Sprintf("p%g(%s)_ns", q*100, metric)
	return Gate{Name: name, Eval: func(r *RunStats) GateResult {
		h := r.Totals.Hist(metric)
		if h == nil || h.Count == 0 {
			return GateResult{Name: name, Observed: 0, Bound: float64(max.Nanoseconds()), Cmp: "<=",
				Ok: false, Detail: "no observations"}
		}
		obs := float64(h.Quantile(q))
		return GateResult{Name: name, Observed: obs, Bound: float64(max.Nanoseconds()), Cmp: "<=",
			Ok:     obs <= float64(max.Nanoseconds()),
			Detail: fmt.Sprintf("count=%d sum=%s", h.Count, time.Duration(h.Sum))}
	}}
}

// CounterMax gates the fleet-wide sum of a counter (all nodes, all label
// variants of metric) at max.
func CounterMax(metric string, max float64) Gate {
	return maxGate("sum("+metric+")", max, func(r *RunStats) (float64, string) {
		return r.Totals.Sum(metric), ""
	})
}

// CounterMin requires the fleet-wide sum of a counter to reach min —
// used to prove a scenario exercised what it claims (re-establishments
// happened, breakers tripped and recovered, the fast path was hot).
func CounterMin(metric string, min float64) Gate {
	return minGate("sum("+metric+")", min, func(r *RunStats) (float64, string) {
		return r.Totals.Sum(metric), ""
	})
}

// RatioMax gates sum(num)/sum(den) at max (0/0 counts as 0): the
// drop-budget shape, e.g. requeue drops per received packet.
func RatioMax(num, den string, max float64) Gate {
	name := fmt.Sprintf("ratio(%s/%s)", num, den)
	return maxGate(name, max, func(r *RunStats) (float64, string) {
		n, d := r.Totals.Sum(num), r.Totals.Sum(den)
		detail := fmt.Sprintf("%v/%v", n, d)
		if d == 0 {
			if n == 0 {
				return 0, detail
			}
			return n, detail + " (zero denominator)"
		}
		return n / d, detail
	})
}

// RatioMin requires sum(num)/sum(den) to reach min. A run where the
// denominator stayed zero fails the gate: a ratio SLO on an unexercised
// path is a broken scenario, not a pass.
func RatioMin(num, den string, min float64) Gate {
	name := fmt.Sprintf("ratio(%s/%s)", num, den)
	return minGate(name, min, func(r *RunStats) (float64, string) {
		n, d := r.Totals.Sum(num), r.Totals.Sum(den)
		detail := fmt.Sprintf("%v/%v", n, d)
		if d == 0 {
			return 0, detail + " (denominator unexercised)"
		}
		return n / d, detail
	})
}

// LookupHitRateMin gates the fleet-wide SN-tier resolution-cache hit
// rate, hits/(hits+misses), at min. Structurally every miss triggers an
// async fill whose requeued packet resolves again from the warm cache,
// so a healthy hierarchy sits well above 0.5; watch-driven refreshes
// under churn push it higher. A run that never touched the caches fails.
func LookupHitRateMin(min float64) Gate {
	return minGate("lookup_cache_hit_rate", min, func(r *RunStats) (float64, string) {
		hits := r.Totals.Sum("lookup_cache_hits_total")
		misses := r.Totals.Sum("lookup_cache_misses_total")
		detail := fmt.Sprintf("%v hits, %v misses", hits, misses)
		if hits+misses == 0 {
			return 0, detail + " (caches unexercised)"
		}
		return hits / (hits + misses), detail
	})
}

// DeliveryRatioMin requires Delivered/Sent of the reliable flow classes
// to reach min. Fault scenarios set this below 1 by their loss budget.
func DeliveryRatioMin(min float64) Gate {
	return minGate("delivery_ratio", min, func(r *RunStats) (float64, string) {
		detail := fmt.Sprintf("%d/%d", r.Delivered, r.Sent)
		if r.Sent == 0 {
			return 0, detail + " (nothing sent)"
		}
		return float64(r.Delivered) / float64(r.Sent), detail
	})
}

// BadZero requires that no corrupted or misrouted payload ever surfaced
// at a host: substrate corruption must be absorbed by PSP, never
// delivered.
func BadZero() Gate {
	return maxGate("bad_payloads", 0, func(r *RunStats) (float64, string) {
		return float64(r.Bad), ""
	})
}

// GoroutineCeiling bounds goroutine growth across the whole run
// (measured after teardown) at slack above the pre-run baseline.
func GoroutineCeiling(slack int) Gate {
	return maxGate("goroutine_growth", float64(slack), func(r *RunStats) (float64, string) {
		return float64(r.GoroutineEnd - r.GoroutineBase), fmt.Sprintf("%d -> %d", r.GoroutineBase, r.GoroutineEnd)
	})
}

// HeapGrowthMax bounds live-heap growth across the run (post-teardown,
// post-GC) at max bytes.
func HeapGrowthMax(max uint64) Gate {
	return maxGate("heap_growth_bytes", float64(max), func(r *RunStats) (float64, string) {
		growth := float64(r.HeapEnd) - float64(r.HeapBase)
		if growth < 0 {
			growth = 0
		}
		return growth, fmt.Sprintf("%d -> %d", r.HeapBase, r.HeapEnd)
	})
}

// BaselineGates returns the SLOs every scenario shares: fast-path p99
// service time, zero surfaced corruption, a requeue-drop budget, and
// resource-leak ceilings. The p99 bound is build-tagged (race.go /
// norace.go): the race detector inflates real service time by roughly
// an order of magnitude, so race runs keep a looser bound that still
// trips on catastrophic regressions (lock convoys, slow path leaking
// onto the fast path) without flagging detector overhead as an SLO
// breach.
func BaselineGates() []Gate {
	return []Gate{
		QuantileMaxNs("sn_fastpath_service_ns", 0.99, fastpathP99Bound),
		CounterMin("sn_fastpath_hits_total", 1),
		BadZero(),
		RatioMax("sn_requeue_drops_total", "sn_rx_packets_total", 0.05),
		GoroutineCeiling(24),
		HeapGrowthMax(64 << 20),
	}
}

// EvalGates runs every gate and reports whether all passed.
func EvalGates(gates []Gate, r *RunStats) ([]GateResult, bool) {
	out := make([]GateResult, 0, len(gates))
	ok := true
	for _, g := range gates {
		res := g.Eval(r)
		ok = ok && res.Ok
		out = append(out, res)
	}
	return out, ok
}

// DiffFailed renders the failed gates as a per-SLO diff, one line each.
func DiffFailed(results []GateResult) string {
	var b strings.Builder
	for _, g := range results {
		if !g.Ok {
			b.WriteString(g.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}
