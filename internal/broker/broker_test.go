package broker

import (
	"errors"
	"testing"

	"interedge/internal/wire"
)

func card(p IESP, svc wire.ServiceID, region Region, tiers ...Tier) RateCard {
	return RateCard{Provider: p, Entries: []RateEntry{{Service: svc, Region: region, Tiers: tiers}}}
}

func TestPublishAndQuote(t *testing.T) {
	e := NewExchange()
	if err := e.Publish(card("acme", wire.SvcCDNCache, "eu-west", Tier{0, 100}, Tier{1000, 80})); err != nil {
		t.Fatal(err)
	}
	small, err := e.Quote("acme", wire.SvcCDNCache, "eu-west", 10)
	if err != nil || small != 100 {
		t.Fatalf("small quote %d err %v", small, err)
	}
	big, err := e.Quote("acme", wire.SvcCDNCache, "eu-west", 5000)
	if err != nil || big != 80 {
		t.Fatalf("big quote %d err %v", big, err)
	}
	if _, err := e.Quote("acme", wire.SvcCDNCache, "mars", 1); !errors.Is(err, ErrNoRate) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublishValidation(t *testing.T) {
	e := NewExchange()
	if err := e.Publish(RateCard{}); !errors.Is(err, ErrBadCard) {
		t.Fatalf("err = %v", err)
	}
	if err := e.Publish(card("x", wire.SvcNull, "r")); !errors.Is(err, ErrBadCard) {
		t.Fatal("entry without tiers accepted")
	}
	if err := e.Publish(card("x", wire.SvcNull, "r", Tier{5, 1})); !errors.Is(err, ErrBadCard) {
		t.Fatal("first tier not at 0 accepted")
	}
	if err := e.Publish(card("x", wire.SvcNull, "r", Tier{0, 1}, Tier{0, 2})); !errors.Is(err, ErrBadCard) {
		t.Fatal("non-ascending tiers accepted")
	}
}

// §5 neutrality: two customers buying the same thing pay the same price —
// structurally guaranteed and verified by the audit.
func TestSamePriceForEveryCustomer(t *testing.T) {
	e := NewExchange()
	if err := e.Publish(card("acme", wire.SvcQoS, "us-east", Tier{0, 50})); err != nil {
		t.Fatal(err)
	}
	p1, err := e.Buy("netflix", "acme", wire.SvcQoS, "us-east", 100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Buy("tiny-startup", "acme", wire.SvcQoS, "us-east", 100)
	if err != nil {
		t.Fatal(err)
	}
	if p1.UnitPrice != p2.UnitPrice {
		t.Fatalf("prices differ: %d vs %d", p1.UnitPrice, p2.UnitPrice)
	}
	if err := e.AuditNondiscrimination(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditDetectsDiscrimination(t *testing.T) {
	e := NewExchange()
	if err := e.Publish(card("evil", wire.SvcQoS, "us-east", Tier{0, 50})); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Buy("friend", "evil", wire.SvcQoS, "us-east", 10); err != nil {
		t.Fatal(err)
	}
	// An off-exchange deal charges a disfavored customer more.
	e.RecordExternalPurchase(Purchase{
		Customer: "rival", Provider: "evil", Service: wire.SvcQoS,
		Region: "us-east", VolumeGB: 10, UnitPrice: 500,
	})
	if err := e.AuditNondiscrimination(); !errors.Is(err, ErrDiscrimination) {
		t.Fatalf("audit err = %v, want ErrDiscrimination", err)
	}
}

func TestVolumeTiersAreNotDiscrimination(t *testing.T) {
	e := NewExchange()
	if err := e.Publish(card("acme", wire.SvcQoS, "r", Tier{0, 100}, Tier{1000, 60})); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Buy("small", "acme", wire.SvcQoS, "r", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Buy("large", "acme", wire.SvcQoS, "r", 5000); err != nil {
		t.Fatal(err)
	}
	// Different tiers, different prices: allowed ("the amount they are
	// paying").
	if err := e.AuditNondiscrimination(); err != nil {
		t.Fatal(err)
	}
}

// §5: "a set of 'brokers' will arise that can do the stitching on behalf
// of customers. … collections of smaller IESPs [can] compete with the
// global ones."
func TestBrokerStitchesSmallIESPsBelowGlobalPrice(t *testing.T) {
	e := NewExchange()
	cov := NewCoverageDirectory()

	// A global IESP covers everything at a premium.
	regions := []Region{"eu-west", "us-east", "ap-south"}
	for _, r := range regions {
		if err := e.Publish(card("globalco", wire.SvcCDNCache, r, Tier{0, 100})); err != nil {
			t.Fatal(err)
		}
	}
	cov.Declare("globalco", regions...)
	// Regional IESPs are cheaper at home.
	if err := e.Publish(card("eu-carrier", wire.SvcCDNCache, "eu-west", Tier{0, 40})); err != nil {
		t.Fatal(err)
	}
	cov.Declare("eu-carrier", "eu-west")
	if err := e.Publish(card("us-ixp", wire.SvcCDNCache, "us-east", Tier{0, 55})); err != nil {
		t.Fatal(err)
	}
	cov.Declare("us-ixp", "us-east")

	b := NewBroker(e, cov)
	plan, err := b.Stitch(wire.SvcCDNCache, 100, regions...)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Assignments["eu-west"] != "eu-carrier" {
		t.Fatalf("eu-west -> %s", plan.Assignments["eu-west"])
	}
	if plan.Assignments["us-east"] != "us-ixp" {
		t.Fatalf("us-east -> %s", plan.Assignments["us-east"])
	}
	if plan.Assignments["ap-south"] != "globalco" {
		t.Fatalf("ap-south -> %s", plan.Assignments["ap-south"])
	}
	globalOnly := uint64(100) * 100 * 3
	if plan.TotalCost >= globalOnly {
		t.Fatalf("stitched cost %d not below global-only %d", plan.TotalCost, globalOnly)
	}
	// Execute the plan: every purchase lands at published prices.
	purchases, err := b.Execute("app-provider", wire.SvcCDNCache, 100, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(purchases) != 3 {
		t.Fatalf("purchases %d", len(purchases))
	}
	if err := e.AuditNondiscrimination(); err != nil {
		t.Fatal(err)
	}
}

func TestStitchFailsWithoutCoverage(t *testing.T) {
	e := NewExchange()
	cov := NewCoverageDirectory()
	b := NewBroker(e, cov)
	if _, err := b.Stitch(wire.SvcCDNCache, 1, "antarctica"); !errors.Is(err, ErrNoCoverage) {
		t.Fatalf("err = %v", err)
	}
	// Published rate but undeclared coverage also fails.
	if err := e.Publish(card("x", wire.SvcCDNCache, "antarctica", Tier{0, 1})); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Stitch(wire.SvcCDNCache, 1, "antarctica"); !errors.Is(err, ErrNoCoverage) {
		t.Fatalf("err = %v", err)
	}
}

func TestProvidersListing(t *testing.T) {
	e := NewExchange()
	for _, p := range []IESP{"b", "a"} {
		if err := e.Publish(card(p, wire.SvcNull, "r", Tier{0, 1})); err != nil {
			t.Fatal(err)
		}
	}
	got := e.Providers(wire.SvcNull, "r")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("providers %v", got)
	}
	if len(e.Providers(wire.SvcNull, "other")) != 0 {
		t.Fatal("phantom providers")
	}
}
