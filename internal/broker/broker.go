// Package broker implements the economic layer of §5: IESPs publish
// standard rate cards and "make their services available to all on
// nondiscriminatory terms"; prices "might depend on the volume and
// location of service, but cannot vary based on the customer". The
// Exchange enforces this structurally — purchases always price off the
// published card — and provides the audit that detects violations. The
// Broker performs the §5 coverage stitching: "a set of 'brokers' will
// arise that can do the stitching on behalf of customers", letting
// collections of smaller IESPs compete with global providers.
package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"interedge/internal/wire"
)

// Region names a geographic service region.
type Region string

// IESP names an InterEdge service provider.
type IESP string

// Tier is one volume tier of a rate: the unit price applying from
// MinVolumeGB upward.
type Tier struct {
	MinVolumeGB float64
	// PricePerGB in micro-currency units.
	PricePerGB uint64
}

// RateEntry prices one service in one region.
type RateEntry struct {
	Service wire.ServiceID
	Region  Region
	// Tiers must be sorted by ascending MinVolumeGB, first tier at 0.
	// Note the deliberate absence of any customer field: rates cannot
	// name customers (§5 neutrality).
	Tiers []Tier
}

// RateCard is an IESP's published standard rates.
type RateCard struct {
	Provider IESP
	Entries  []RateEntry
}

// Purchase records one customer's service buy, always priced off the
// published card.
type Purchase struct {
	Customer string
	Provider IESP
	Service  wire.ServiceID
	Region   Region
	VolumeGB float64
	// UnitPrice is the per-GB price actually charged.
	UnitPrice uint64
}

// Errors returned by the exchange.
var (
	ErrNoRate         = errors.New("broker: no published rate for service/region")
	ErrBadCard        = errors.New("broker: malformed rate card")
	ErrDiscrimination = errors.New("broker: nondiscrimination violated")
	ErrNoCoverage     = errors.New("broker: region cannot be covered")
)

type rateKey struct {
	provider IESP
	service  wire.ServiceID
	region   Region
}

// Exchange is the marketplace of published rates and recorded purchases.
type Exchange struct {
	mu        sync.Mutex
	rates     map[rateKey][]Tier
	purchases []Purchase
}

// NewExchange creates an empty exchange.
func NewExchange() *Exchange {
	return &Exchange{rates: make(map[rateKey][]Tier)}
}

// Publish registers (or replaces) an IESP's rate card. Cards must have
// tiers sorted ascending with the first tier starting at volume 0.
func (e *Exchange) Publish(card RateCard) error {
	if card.Provider == "" {
		return fmt.Errorf("%w: missing provider", ErrBadCard)
	}
	for _, entry := range card.Entries {
		if len(entry.Tiers) == 0 {
			return fmt.Errorf("%w: entry without tiers", ErrBadCard)
		}
		if entry.Tiers[0].MinVolumeGB != 0 {
			return fmt.Errorf("%w: first tier must start at volume 0", ErrBadCard)
		}
		for i := 1; i < len(entry.Tiers); i++ {
			if entry.Tiers[i].MinVolumeGB <= entry.Tiers[i-1].MinVolumeGB {
				return fmt.Errorf("%w: tiers not ascending", ErrBadCard)
			}
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, entry := range card.Entries {
		key := rateKey{card.Provider, entry.Service, entry.Region}
		e.rates[key] = append([]Tier(nil), entry.Tiers...)
	}
	return nil
}

// Quote returns the published unit price for a volume. Identical for
// every customer by construction.
func (e *Exchange) Quote(provider IESP, svc wire.ServiceID, region Region, volumeGB float64) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.quoteLocked(provider, svc, region, volumeGB)
}

func (e *Exchange) quoteLocked(provider IESP, svc wire.ServiceID, region Region, volumeGB float64) (uint64, error) {
	tiers, ok := e.rates[rateKey{provider, svc, region}]
	if !ok {
		return 0, fmt.Errorf("%w: %s/%s/%s", ErrNoRate, provider, svc, region)
	}
	price := tiers[0].PricePerGB
	for _, t := range tiers {
		if volumeGB >= t.MinVolumeGB {
			price = t.PricePerGB
		}
	}
	return price, nil
}

// Buy purchases service capacity. The price is forced to the published
// quote — the API offers no way to charge this customer differently.
func (e *Exchange) Buy(customer string, provider IESP, svc wire.ServiceID, region Region, volumeGB float64) (Purchase, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	price, err := e.quoteLocked(provider, svc, region, volumeGB)
	if err != nil {
		return Purchase{}, err
	}
	p := Purchase{
		Customer: customer, Provider: provider, Service: svc,
		Region: region, VolumeGB: volumeGB, UnitPrice: price,
	}
	e.purchases = append(e.purchases, p)
	return p, nil
}

// RecordExternalPurchase admits a purchase record produced outside the
// exchange (e.g. imported billing data) for auditing.
func (e *Exchange) RecordExternalPurchase(p Purchase) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.purchases = append(e.purchases, p)
}

// Providers returns every IESP with at least one published rate for the
// service in the region.
func (e *Exchange) Providers(svc wire.ServiceID, region Region) []IESP {
	e.mu.Lock()
	defer e.mu.Unlock()
	seen := map[IESP]bool{}
	for key := range e.rates {
		if key.service == svc && key.region == region && !seen[key.provider] {
			seen[key.provider] = true
		}
	}
	out := make([]IESP, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AuditNondiscrimination verifies §5's rule over all recorded purchases:
// within one (provider, service, region), any two purchases in the same
// volume tier must have the same unit price; i.e., "there can be no
// discrimination based on the user's identity aside from the type of
// service requested and the amount they are paying".
func (e *Exchange) AuditNondiscrimination() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	type bucket struct {
		provider IESP
		service  wire.ServiceID
		region   Region
		tier     float64
	}
	seen := map[bucket]Purchase{}
	for _, p := range e.purchases {
		tiers, ok := e.rates[rateKey{p.Provider, p.Service, p.Region}]
		tierStart := 0.0
		if ok {
			for _, t := range tiers {
				if p.VolumeGB >= t.MinVolumeGB {
					tierStart = t.MinVolumeGB
				}
			}
		}
		b := bucket{p.Provider, p.Service, p.Region, tierStart}
		if prev, dup := seen[b]; dup {
			if prev.UnitPrice != p.UnitPrice {
				return fmt.Errorf("%w: %s charged %d but %s charged %d for %s/%s (tier %.0fGB)",
					ErrDiscrimination, prev.Customer, prev.UnitPrice,
					p.Customer, p.UnitPrice, p.Provider, p.Region, tierStart)
			}
		} else {
			seen[b] = p
		}
	}
	return nil
}

// --- Coverage stitching --------------------------------------------------------

// CoverageDirectory records which regions each IESP serves.
type CoverageDirectory struct {
	mu       sync.Mutex
	coverage map[IESP]map[Region]bool
}

// NewCoverageDirectory creates an empty directory.
func NewCoverageDirectory() *CoverageDirectory {
	return &CoverageDirectory{coverage: make(map[IESP]map[Region]bool)}
}

// Declare records an IESP's served regions.
func (d *CoverageDirectory) Declare(p IESP, regions ...Region) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.coverage[p] == nil {
		d.coverage[p] = make(map[Region]bool)
	}
	for _, r := range regions {
		d.coverage[p][r] = true
	}
}

// Covers reports whether an IESP serves a region.
func (d *CoverageDirectory) Covers(p IESP, r Region) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.coverage[p][r]
}

// Plan is a broker's stitched coverage: which IESP serves each region and
// the total cost for the customer's expected volume.
type Plan struct {
	Assignments map[Region]IESP
	// TotalCost is the summed cost (unit price × per-region volume).
	TotalCost uint64
}

// Broker stitches multi-IESP coverage (§5).
type Broker struct {
	exchange *Exchange
	coverage *CoverageDirectory
}

// NewBroker creates a broker over an exchange and coverage directory.
func NewBroker(exchange *Exchange, coverage *CoverageDirectory) *Broker {
	return &Broker{exchange: exchange, coverage: coverage}
}

// Stitch finds, per region, the cheapest IESP covering it at the given
// expected volume, producing a plan a single customer contract can buy.
// It fails if any region has no covering provider with a published rate.
func (b *Broker) Stitch(svc wire.ServiceID, volumePerRegionGB float64, regions ...Region) (Plan, error) {
	plan := Plan{Assignments: make(map[Region]IESP)}
	for _, region := range regions {
		providers := b.exchange.Providers(svc, region)
		var best IESP
		var bestPrice uint64
		found := false
		for _, p := range providers {
			if !b.coverage.Covers(p, region) {
				continue
			}
			price, err := b.exchange.Quote(p, svc, region, volumePerRegionGB)
			if err != nil {
				continue
			}
			if !found || price < bestPrice {
				best, bestPrice, found = p, price, true
			}
		}
		if !found {
			return Plan{}, fmt.Errorf("%w: %s", ErrNoCoverage, region)
		}
		plan.Assignments[region] = best
		plan.TotalCost += bestPrice * uint64(volumePerRegionGB)
	}
	return plan, nil
}

// Execute buys every assignment in a plan on behalf of the customer.
func (b *Broker) Execute(customer string, svc wire.ServiceID, volumePerRegionGB float64, plan Plan) ([]Purchase, error) {
	var out []Purchase
	for region, provider := range plan.Assignments {
		p, err := b.exchange.Buy(customer, provider, svc, region, volumePerRegionGB)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
