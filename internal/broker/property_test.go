package broker

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"interedge/internal/wire"
)

// Property: quotes are a pure function of (provider, service, region,
// tier) — two customers buying any volumes in the same tier always record
// the same unit price, so the audit passes for every purchase pattern
// generated from published cards.
func TestQuotesNeverDiscriminateProperty(t *testing.T) {
	f := func(tierPrices []uint16, volumes []uint16) bool {
		if len(tierPrices) == 0 {
			tierPrices = []uint16{1}
		}
		if len(tierPrices) > 5 {
			tierPrices = tierPrices[:5]
		}
		e := NewExchange()
		tiers := make([]Tier, len(tierPrices))
		for i, p := range tierPrices {
			tiers[i] = Tier{MinVolumeGB: float64(i) * 100, PricePerGB: uint64(p) + 1}
		}
		if err := e.Publish(card("p", wire.SvcCDNCache, "r", tiers...)); err != nil {
			return false
		}
		for i, v := range volumes {
			customer := fmt.Sprintf("cust-%d", i%3)
			if _, err := e.Buy(customer, "p", wire.SvcCDNCache, "r", float64(v)); err != nil {
				return false
			}
		}
		return e.AuditNondiscrimination() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the broker's stitched plan never costs more than any
// single-provider plan that covers all regions.
func TestStitchIsNeverWorseThanSingleProviderProperty(t *testing.T) {
	f := func(prices [][3]uint16) bool {
		if len(prices) == 0 {
			return true
		}
		if len(prices) > 6 {
			prices = prices[:6]
		}
		regions := []Region{"r0", "r1", "r2"}
		e := NewExchange()
		cov := NewCoverageDirectory()
		fullCover := []IESP{}
		for i, trio := range prices {
			p := IESP(fmt.Sprintf("iesp-%d", i))
			for j, r := range regions {
				if err := e.Publish(card(p, wire.SvcCDNCache, r, Tier{0, uint64(trio[j]) + 1})); err != nil {
					return false
				}
				cov.Declare(p, r)
			}
			fullCover = append(fullCover, p)
		}
		b := NewBroker(e, cov)
		plan, err := b.Stitch(wire.SvcCDNCache, 10, regions...)
		if err != nil {
			return false
		}
		// Compare with every single-provider total.
		singles := make([]uint64, 0, len(fullCover))
		for _, p := range fullCover {
			var total uint64
			for _, r := range regions {
				q, err := e.Quote(p, wire.SvcCDNCache, r, 10)
				if err != nil {
					return false
				}
				total += q * 10
			}
			singles = append(singles, total)
		}
		sort.Slice(singles, func(i, j int) bool { return singles[i] < singles[j] })
		return plan.TotalCost <= singles[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
