package msgqueue

import (
	"fmt"
	"testing"
	"time"

	"interedge/internal/lab"
	"interedge/internal/wire"
)

func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain, []*Module) {
	t.Helper()
	topo := lab.New()
	var mods []*Module
	ed, err := topo.AddEdomain("ed-a", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range ed.SNs {
		m := New()
		if err := node.Register(m); err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed, mods
}

func TestProduceFetchCommit(t *testing.T) {
	topo, ed, _ := newWorld(t)
	producer, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewClient(producer)
	if err := pc.CreateTopic("orders", nil, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := pc.Produce("orders", []byte(fmt.Sprintf("order-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	consumer, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	cc := NewClient(consumer)
	home := ed.SNs[0].Addr()
	waitDepth(t, topo, ed, 0, "orders", 5)

	msgs, next, err := cc.Fetch(home, "orders", "g1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 || next != 3 {
		t.Fatalf("fetch got %d msgs next=%d", len(msgs), next)
	}
	if string(msgs[0].Payload) != "order-0" || msgs[0].Offset != 0 {
		t.Fatalf("msg 0 = %+v", msgs[0])
	}
	// Without commit, the same messages come again.
	again, _, err := cc.Fetch(home, "orders", "g1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 3 || again[0].Offset != 0 {
		t.Fatalf("refetch %+v", again)
	}
	// Commit and resume.
	if err := cc.Commit(home, "orders", "g1", next); err != nil {
		t.Fatal(err)
	}
	rest, next2, err := cc.Fetch(home, "orders", "g1", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0].Offset != 3 || next2 != 5 {
		t.Fatalf("rest %+v next=%d", rest, next2)
	}
}

func waitDepth(t *testing.T, topo *lab.Topology, ed *lab.Edomain, snIdx int, topic string, want int) {
	t.Helper()
	mod, _ := ed.SNs[snIdx].Module(wire.SvcMsgQueue)
	m := mod.(*Module)
	deadline := time.Now().Add(3 * time.Second)
	for m.Depth(topic) < want {
		if time.Now().After(deadline) {
			t.Fatalf("topic %q depth %d, want %d", topic, m.Depth(topic), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConsumerGroupsIndependent(t *testing.T) {
	topo, ed, _ := newWorld(t)
	producer, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewClient(producer)
	if err := pc.CreateTopic("t", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := pc.Produce("t", []byte("m")); err != nil {
		t.Fatal(err)
	}
	waitDepth(t, topo, ed, 0, "t", 1)
	home := ed.SNs[0].Addr()
	consumer, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	cc := NewClient(consumer)
	if err := cc.Commit(home, "t", "g1", 1); err != nil {
		t.Fatal(err)
	}
	// g1 exhausted, g2 still sees the message.
	m1, _, _ := cc.Fetch(home, "t", "g1", 10)
	m2, _, _ := cc.Fetch(home, "t", "g2", 10)
	if len(m1) != 0 || len(m2) != 1 {
		t.Fatalf("g1=%d g2=%d", len(m1), len(m2))
	}
}

func TestMirrorReplication(t *testing.T) {
	topo, ed, mods := newWorld(t)
	producer, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewClient(producer)
	mirror := ed.SNs[1].Addr()
	if err := pc.CreateTopic("geo", []wire.Addr{mirror}, 0); err != nil {
		t.Fatal(err)
	}
	// Give the mirror-create control packet a moment.
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := pc.Produce("geo", []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Mirror converges.
	deadline := time.Now().Add(3 * time.Second)
	for mods[1].Depth("geo") < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("mirror depth %d, want 3", mods[1].Depth("geo"))
		}
		time.Sleep(time.Millisecond)
	}
	// A consumer near the mirror fetches identical offsets from it.
	consumer, err := topo.NewHost(ed, 1)
	if err != nil {
		t.Fatal(err)
	}
	cc := NewClient(consumer)
	msgs, _, err := cc.Fetch(mirror, "geo", "g", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 || msgs[2].Offset != 2 || string(msgs[2].Payload) != "e2" {
		t.Fatalf("mirror fetch %+v", msgs)
	}
}

func TestRetentionDropsOldest(t *testing.T) {
	topo, ed, mods := newWorld(t)
	producer, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewClient(producer)
	if err := pc.CreateTopic("small", nil, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := pc.Produce("small", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if mods[0].Depth("small") == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("depth %d", mods[0].Depth("small"))
		}
		time.Sleep(time.Millisecond)
	}
	consumer, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	cc := NewClient(consumer)
	msgs, _, err := cc.Fetch(ed.SNs[0].Addr(), "small", "g", 10)
	if err != nil {
		t.Fatal(err)
	}
	// Offsets 2..4 retained; the consumer's cursor jumps over the dropped
	// prefix.
	if len(msgs) != 3 || msgs[0].Offset != 2 {
		t.Fatalf("msgs %+v", msgs)
	}
}

func TestErrors(t *testing.T) {
	topo, ed, _ := newWorld(t)
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(h)
	if _, _, err := c.Fetch(ed.SNs[0].Addr(), "ghost", "g", 1); err == nil {
		t.Fatal("fetch from unknown topic succeeded")
	}
	if err := c.CreateTopic("dup", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("dup", nil, 0); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	// Produce to a topic homed elsewhere errors at the module.
	other, err := topo.NewHost(ed, 1)
	if err != nil {
		t.Fatal(err)
	}
	oc := NewClient(other)
	if err := oc.Produce("dup", []byte("x")); err != nil {
		t.Fatal(err)
	}
	node := ed.SNs[1]
	deadline := time.Now().Add(3 * time.Second)
	for node.Counters().ModuleErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("produce at non-home not rejected")
		}
		time.Sleep(time.Millisecond)
	}
}
