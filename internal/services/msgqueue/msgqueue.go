// Package msgqueue implements a geo-distributed message queue (§6.2
// specialty services: "message queues such as Kafka … Cloudflare Queues
// has tried to address this change in workloads by proposing a
// geo-distributed message queuing service running on its edge. The
// InterEdge could provide such a service in an interconnected manner").
//
// Topics are created at a home SN with an optional set of mirror SNs; the
// home assigns contiguous offsets and pushes appends to mirrors, so
// consumers fetch from whichever replica is nearest. Consumer groups track
// committed offsets per replica.
package msgqueue

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"interedge/internal/host"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Packet kinds in the first byte of header data.
const (
	kindProduce byte = iota // host → home SN (data: kind ‖ topic; payload: message)
	kindMirror              // home SN → mirror SN (data: kind ‖ offset(8) ‖ topic)
)

// Errors returned by the service.
var (
	ErrBadHeader    = errors.New("msgqueue: malformed header data")
	ErrUnknownTopic = errors.New("msgqueue: unknown topic")
	ErrNotHome      = errors.New("msgqueue: this SN is not the topic's home")
)

// Message is one queued message.
type Message struct {
	Offset  uint64 `json:"offset"`
	Payload []byte `json:"payload"`
}

type topicState struct {
	home      bool
	mirrors   []wire.Addr
	baseOff   uint64 // offset of msgs[0]
	msgs      []Message
	retention int
	offsets   map[string]uint64 // consumer group -> next offset
}

// Module is the message-queue service for one SN.
type Module struct {
	mu     sync.Mutex
	topics map[string]*topicState
}

// New creates the module.
func New() *Module {
	return &Module{topics: make(map[string]*topicState)}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcMsgQueue }

// Name implements sn.Module.
func (*Module) Name() string { return "msgqueue" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

type createArgs struct {
	Topic     string   `json:"topic"`
	Mirrors   []string `json:"mirrors,omitempty"`
	Retention int      `json:"retention,omitempty"` // max messages kept
}

type fetchArgs struct {
	Topic string `json:"topic"`
	Group string `json:"group"`
	Max   int    `json:"max,omitempty"`
}

type fetchReply struct {
	Messages []Message `json:"messages"`
	Next     uint64    `json:"next"`
}

type commitArgs struct {
	Topic  string `json:"topic"`
	Group  string `json:"group"`
	Offset uint64 `json:"offset"`
}

// HandleControl implements sn.ControlHandler: create, create_mirror,
// fetch, commit.
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "create":
		var a createArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		if a.Retention == 0 {
			a.Retention = 4096
		}
		var mirrors []wire.Addr
		for _, ms := range a.Mirrors {
			mirrors = append(mirrors, wire.MustAddr(ms))
		}
		m.mu.Lock()
		if _, dup := m.topics[a.Topic]; dup {
			m.mu.Unlock()
			return nil, fmt.Errorf("msgqueue: topic %q exists", a.Topic)
		}
		m.topics[a.Topic] = &topicState{
			home: true, mirrors: mirrors, retention: a.Retention,
			offsets: make(map[string]uint64),
		}
		m.mu.Unlock()
		// Tell each mirror SN to host a replica.
		for _, mirror := range mirrors {
			req, _ := json.Marshal(sn.ControlRequest{
				Target: wire.SvcMsgQueue, Op: "create_mirror",
				Args: mustJSON(createArgs{Topic: a.Topic, Retention: a.Retention}),
			})
			hdr := wire.ILPHeader{Service: wire.SvcControl, Conn: 0}
			if err := env.Send(mirror, &hdr, req); err != nil {
				env.Logf("msgqueue: mirror setup %s: %v", mirror, err)
			}
		}
		return nil, nil

	case "create_mirror":
		var a createArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		m.mu.Lock()
		if _, dup := m.topics[a.Topic]; !dup {
			m.topics[a.Topic] = &topicState{
				retention: a.Retention,
				offsets:   make(map[string]uint64),
			}
		}
		m.mu.Unlock()
		return nil, nil

	case "fetch":
		var a fetchArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		if a.Max == 0 {
			a.Max = 64
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		ts, ok := m.topics[a.Topic]
		if !ok {
			return nil, ErrUnknownTopic
		}
		start := ts.offsets[a.Group]
		if start < ts.baseOff {
			start = ts.baseOff // retention already dropped older messages
		}
		var out []Message
		for i := start; i < ts.baseOff+uint64(len(ts.msgs)) && len(out) < a.Max; i++ {
			out = append(out, ts.msgs[i-ts.baseOff])
		}
		next := start + uint64(len(out))
		return json.Marshal(fetchReply{Messages: out, Next: next})

	case "commit":
		var a commitArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		ts, ok := m.topics[a.Topic]
		if !ok {
			return nil, ErrUnknownTopic
		}
		if a.Offset > ts.offsets[a.Group] {
			ts.offsets[a.Group] = a.Offset
		}
		return nil, nil

	default:
		return nil, fmt.Errorf("msgqueue: unknown op %q", op)
	}
}

func mustJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) < 1 {
		return sn.Decision{}, ErrBadHeader
	}
	switch pkt.Hdr.Data[0] {
	case kindProduce:
		topic := string(pkt.Hdr.Data[1:])
		m.mu.Lock()
		ts, ok := m.topics[topic]
		if !ok {
			m.mu.Unlock()
			return sn.Decision{}, ErrUnknownTopic
		}
		if !ts.home {
			m.mu.Unlock()
			return sn.Decision{}, ErrNotHome
		}
		off := ts.baseOff + uint64(len(ts.msgs))
		ts.appendLocked(Message{Offset: off, Payload: append([]byte(nil), pkt.Payload...)})
		mirrors := append([]wire.Addr(nil), ts.mirrors...)
		m.mu.Unlock()

		// Replicate to mirrors.
		var d sn.Decision
		for _, mirror := range mirrors {
			data := make([]byte, 9, 9+len(topic))
			data[0] = kindMirror
			binary.BigEndian.PutUint64(data[1:9], off)
			data = append(data, topic...)
			hdr := wire.ILPHeader{Service: wire.SvcMsgQueue, Conn: pkt.Hdr.Conn, Data: data}
			d.Forwards = append(d.Forwards, sn.Forward{Dst: mirror, Hdr: &hdr})
		}
		return d, nil

	case kindMirror:
		if len(pkt.Hdr.Data) < 9 {
			return sn.Decision{}, ErrBadHeader
		}
		off := binary.BigEndian.Uint64(pkt.Hdr.Data[1:9])
		topic := string(pkt.Hdr.Data[9:])
		m.mu.Lock()
		defer m.mu.Unlock()
		ts, ok := m.topics[topic]
		if !ok {
			return sn.Decision{}, ErrUnknownTopic
		}
		// Idempotent, in-order replication from the single home.
		if off == ts.baseOff+uint64(len(ts.msgs)) {
			ts.appendLocked(Message{Offset: off, Payload: append([]byte(nil), pkt.Payload...)})
		}
		return sn.Decision{}, nil

	default:
		return sn.Decision{}, fmt.Errorf("msgqueue: unexpected kind %d", pkt.Hdr.Data[0])
	}
}

// appendLocked appends a message, enforcing retention. Caller holds mu.
func (ts *topicState) appendLocked(msg Message) {
	ts.msgs = append(ts.msgs, msg)
	for len(ts.msgs) > ts.retention {
		ts.msgs = ts.msgs[1:]
		ts.baseOff++
	}
}

// Depth reports a topic's queue depth at this SN (tests).
func (m *Module) Depth(topic string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts, ok := m.topics[topic]; ok {
		return len(ts.msgs)
	}
	return 0
}

// --- Client ------------------------------------------------------------------

// Client is the host-side queue API.
type Client struct {
	h *host.Host

	mu   sync.Mutex
	conn *host.Conn
}

// NewClient creates a queue client.
func NewClient(h *host.Host) *Client { return &Client{h: h} }

// CreateTopic creates a topic homed at the host's first-hop SN, mirrored
// to the given SNs.
func (c *Client) CreateTopic(topic string, mirrors []wire.Addr, retention int) error {
	ms := make([]string, len(mirrors))
	for i, m := range mirrors {
		ms[i] = m.String()
	}
	_, err := c.h.InvokeFirstHop(wire.SvcMsgQueue, "create", createArgs{Topic: topic, Mirrors: ms, Retention: retention})
	return err
}

// Produce appends a message to the topic (the host's first-hop SN must be
// the topic home).
func (c *Client) Produce(topic string, payload []byte) error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		var err error
		conn, err = c.h.NewConn(wire.SvcMsgQueue)
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.conn = conn
		c.mu.Unlock()
	}
	return conn.Send(append([]byte{kindProduce}, topic...), payload)
}

// Fetch pulls up to max messages for a consumer group from the SN at via
// (any replica of the topic).
func (c *Client) Fetch(via wire.Addr, topic, group string, max int) ([]Message, uint64, error) {
	data, err := c.h.Invoke(via, wire.SvcMsgQueue, "fetch", fetchArgs{Topic: topic, Group: group, Max: max})
	if err != nil {
		return nil, 0, err
	}
	var rep fetchReply
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, 0, err
	}
	return rep.Messages, rep.Next, nil
}

// Commit advances the consumer group's offset at the given replica.
func (c *Client) Commit(via wire.Addr, topic, group string, offset uint64) error {
	_, err := c.h.Invoke(via, wire.SvcMsgQueue, "commit", commitArgs{Topic: topic, Group: group, Offset: offset})
	return err
}
