package null

import (
	"net/netip"

	"interedge/internal/wire"
)

func addrFrom16(b [16]byte) (wire.Addr, bool) {
	a := netip.AddrFrom16(b).Unmap()
	return a, a.IsValid()
}

// EgressData encodes an egress address as null-service header data.
func EgressData(dst wire.Addr) []byte {
	b := dst.As16()
	return b[:]
}
