// Package null implements the null service of Appendix C's Table 1: the
// packet "arrives on an ingress pipe to the pipe-terminus, then is sent to
// a service module … which immediately returns the packet to the
// pipe-terminus, which then sends it to an egress pipe". It does no work;
// its purpose is to measure the slow-path hand-off cost under the
// different module transports and with or without an enclave.
package null

import (
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Module is the null service.
type Module struct{}

// New creates the null service module.
func New() *Module { return &Module{} }

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcNull }

// Name implements sn.Module.
func (*Module) Name() string { return "null" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// HandlePacket implements sn.Module: if the ILP header's service data
// carries a 16-byte egress address, the packet is forwarded there;
// otherwise it bounces back to its source. No cache rules are installed,
// so every packet of the flow traverses the slow path — exactly the
// workload Table 1's null-service rows measure.
func (*Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	dst := pkt.Src
	if len(pkt.Hdr.Data) == 16 {
		var b [16]byte
		copy(b[:], pkt.Hdr.Data)
		if a, ok := addrFrom16(b); ok {
			dst = a
		}
	}
	return sn.Decision{Forwards: []sn.Forward{{Dst: dst}}}, nil
}
