package null

import (
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain) {
	t.Helper()
	topo := lab.New()
	ed, err := topo.AddEdomain("ed-a", 1, func(node *sn.SN, ed *lab.Edomain) error {
		return node.Register(New())
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed
}

func TestBounceToSourceWithoutEgress(t *testing.T) {
	topo, ed := newWorld(t)
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := h.NewConn(wire.SvcNull)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(nil, []byte("boomerang")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-conn.Receive():
		if string(msg.Payload) != "boomerang" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
}

func TestForwardToEgress(t *testing.T) {
	topo, ed := newWorld(t)
	src, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	egress, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan host.Message, 1)
	egress.OnService(wire.SvcNull, func(msg host.Message) { got <- msg })
	conn, err := src.NewConn(wire.SvcNull)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(EgressData(egress.Addr()), []byte("onward")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg.Payload) != "onward" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
}

// Every packet takes the slow path: null never installs cache rules (the
// Table 1 workload depends on this).
func TestNoCacheRulesInstalled(t *testing.T) {
	topo, ed := newWorld(t)
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := h.NewConn(wire.SvcNull)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		if err := conn.Send(nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-conn.Receive():
		case <-time.After(3 * time.Second):
			t.Fatal("timeout")
		}
	}
	c := ed.SNs[0].Counters()
	if c.FastPathHits != 0 {
		t.Fatalf("FastPathHits = %d, want 0", c.FastPathHits)
	}
	if c.SlowPathSent != 5 {
		t.Fatalf("SlowPathSent = %d, want 5", c.SlowPathSent)
	}
}
