package mobility

import (
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain, *Registry) {
	t.Helper()
	topo := lab.New()
	reg := NewRegistry()
	ed, err := topo.AddEdomain("ed-a", 2, func(node *sn.SN, ed *lab.Edomain) error {
		return node.Register(New(reg))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed, reg
}

func TestRegisterAndLocate(t *testing.T) {
	topo, ed, _ := newWorld(t)
	mobile, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(mobile); err != nil {
		t.Fatal(err)
	}
	seeker, err := topo.NewHost(ed, 1)
	if err != nil {
		t.Fatal(err)
	}
	hostAddr, snAddr, err := Locate(seeker, mobile.Identity().PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if hostAddr != mobile.Addr() || snAddr != ed.SNs[0].Addr() {
		t.Fatalf("located %s@%s", hostAddr, snAddr)
	}
}

func TestLocateUnknownFails(t *testing.T) {
	topo, ed, _ := newWorld(t)
	seeker, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	stranger, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Locate(seeker, stranger.Identity().PublicKey()); err == nil {
		t.Fatal("located unregistered host")
	}
}

// The headline scenario: a host moves to another SN; correspondents find
// it at its new attachment and traffic flows there.
func TestMoveUpdatesLocationAndTrafficFollows(t *testing.T) {
	topo, ed, _ := newWorld(t)
	mobile, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(mobile); err != nil {
		t.Fatal(err)
	}
	// Move: associate with SN 1, make it the preferred first hop, and
	// re-register.
	if err := mobile.Associate(ed.SNs[1].Addr()); err != nil {
		t.Fatal(err)
	}
	mobile.Disassociate(ed.SNs[0].Addr())
	if err := Register(mobile); err != nil {
		t.Fatal(err)
	}
	seeker, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	hostAddr, snAddr, err := Locate(seeker, mobile.Identity().PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if snAddr != ed.SNs[1].Addr() {
		t.Fatalf("post-move SN = %s, want %s", snAddr, ed.SNs[1].Addr())
	}
	// Traffic reaches the mobile host via its new SN (direct host send
	// through the located SN's pipe).
	got := make(chan host.Message, 1)
	mobile.OnService(wire.SvcEcho, func(msg host.Message) { got <- msg })
	conn, err := seeker.NewConn(wire.SvcEcho, host.Via(snAddr))
	if err != nil {
		t.Fatal(err)
	}
	_ = conn
	// Seeker has no echo module on SN1; send via SN pipes directly to show
	// reachability of the located address.
	if err := seeker.Pipes().Connect(hostAddr); err != nil {
		t.Fatal(err)
	}
	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 99}
	if err := seeker.Pipes().Send(hostAddr, &hdr, []byte("found you")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg.Payload) != "found you" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("traffic never reached moved host")
	}
}

func TestSequenceIncrementsOnMove(t *testing.T) {
	topo, ed, reg := newWorld(t)
	mobile, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(mobile); err != nil {
		t.Fatal(err)
	}
	if err := mobile.Associate(ed.SNs[1].Addr()); err != nil {
		t.Fatal(err)
	}
	mobile.Disassociate(ed.SNs[0].Addr())
	if err := Register(mobile); err != nil {
		t.Fatal(err)
	}
	loc, ok := reg.lookup(mobile.Identity().PublicKey())
	if !ok || loc.Seq != 1 {
		t.Fatalf("loc %+v ok=%v", loc, ok)
	}
}
