// Package mobility implements the mobility lookup service from the
// paper's prototype list (§6.3): hosts that move between SNs register
// their current first-hop SN, and correspondents locate them before (or
// during) a conversation. Registrations are bound to the host's verified
// pipe identity, so only the owner of an identity can move it.
package mobility

import (
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"interedge/internal/host"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Errors returned by the service.
var (
	ErrUnknownHost = errors.New("mobility: identity not registered")
	ErrUnknownPeer = errors.New("mobility: request from host without verified identity")
)

// Location is one host's current attachment.
type Location struct {
	HostAddr wire.Addr
	SN       wire.Addr
	Updated  time.Time
	Seq      uint64
}

// Registry is the shared location store — the durable directory a
// production deployment would replicate; modules on every SN write to and
// read from it.
type Registry struct {
	mu   sync.Mutex
	locs map[string]Location // hex identity -> location
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{locs: make(map[string]Location)}
}

func (r *Registry) update(identity ed25519.PublicKey, loc Location) {
	key := hex.EncodeToString(identity)
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, ok := r.locs[key]
	if ok {
		loc.Seq = prev.Seq + 1
	}
	r.locs[key] = loc
}

func (r *Registry) lookup(identity []byte) (Location, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	loc, ok := r.locs[hex.EncodeToString(identity)]
	return loc, ok
}

// Module is the mobility service for one SN.
type Module struct {
	registry *Registry
}

// New creates the module backed by the shared registry.
func New(registry *Registry) *Module { return &Module{registry: registry} }

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcMobility }

// Name implements sn.Module.
func (*Module) Name() string { return "mobility" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// HandlePacket implements sn.Module; mobility is control-plane only.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	return sn.Decision{}, errors.New("mobility: no data-plane traffic expected")
}

type locateArgs struct {
	Identity []byte `json:"identity"`
}

type locateReply struct {
	HostAddr string `json:"host_addr"`
	SN       string `json:"sn"`
	Seq      uint64 `json:"seq"`
}

// HandleControl implements sn.ControlHandler: register, locate.
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "register":
		// The registration is bound to the verified pipe identity of the
		// requesting host: no spoofing another host's location.
		identity, ok := env.PeerIdentity(src)
		if !ok {
			return nil, ErrUnknownPeer
		}
		m.registry.update(identity, Location{
			HostAddr: src,
			SN:       env.LocalAddr(),
			Updated:  env.Now(),
		})
		return nil, nil
	case "locate":
		var a locateArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		loc, ok := m.registry.lookup(a.Identity)
		if !ok {
			return nil, ErrUnknownHost
		}
		return json.Marshal(locateReply{
			HostAddr: loc.HostAddr.String(),
			SN:       loc.SN.String(),
			Seq:      loc.Seq,
		})
	default:
		return nil, fmt.Errorf("mobility: unknown op %q", op)
	}
}

// Register announces the host's current attachment at its first-hop SN.
// Call again after each move.
func Register(h *host.Host) error {
	_, err := h.InvokeFirstHop(wire.SvcMobility, "register", nil)
	return err
}

// Locate resolves a host identity to its current address and SN.
func Locate(h *host.Host, identity ed25519.PublicKey) (hostAddr, snAddr wire.Addr, err error) {
	data, err := h.InvokeFirstHop(wire.SvcMobility, "locate", locateArgs{Identity: identity})
	if err != nil {
		return wire.Addr{}, wire.Addr{}, err
	}
	var rep locateReply
	if err := json.Unmarshal(data, &rep); err != nil {
		return wire.Addr{}, wire.Addr{}, err
	}
	ha, err := netip.ParseAddr(rep.HostAddr)
	if err != nil {
		return wire.Addr{}, wire.Addr{}, err
	}
	sa, err := netip.ParseAddr(rep.SN)
	if err != nil {
		return wire.Addr{}, wire.Addr{}, err
	}
	return ha, sa, nil
}
