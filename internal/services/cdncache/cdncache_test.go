package cdncache

import (
	"bytes"
	"testing"

	"interedge/internal/lab"
	"interedge/internal/wire"
)

func newWorld(t *testing.T, capacity int) (*lab.Topology, *lab.Edomain, *Module) {
	t.Helper()
	topo := lab.New()
	mod := New(capacity)
	ed, err := topo.AddEdomain("ed-a", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.SNs[0].Register(mod); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed, mod
}

func publish(t *testing.T, topo *lab.Topology, ed *lab.Edomain, name string, origin wire.Addr) {
	t.Helper()
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.InvokeFirstHop(wire.SvcCDNCache, "publish", publishArgs{Name: name, Origin: origin.String()}); err != nil {
		t.Fatal(err)
	}
}

func TestMissFetchesFromOriginThenHits(t *testing.T) {
	topo, ed, mod := newWorld(t, 1<<20)
	origin, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("hello, cached world")
	ServeOrigin(origin, map[string][]byte{"index.html": content})
	publish(t, topo, ed, "index.html", origin.Addr())

	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(client)
	got, err := c.Get("index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("content %q", got)
	}
	st := mod.Stats()
	if st.Misses != 1 || st.OriginFetches != 1 || st.Hits != 0 {
		t.Fatalf("stats after miss: %+v", st)
	}
	// Second fetch: served from cache.
	got2, err := c.Get("index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, content) {
		t.Fatalf("content %q", got2)
	}
	st = mod.Stats()
	if st.Hits != 1 || st.OriginFetches != 1 {
		t.Fatalf("stats after hit: %+v", st)
	}
}

func TestLargeContentChunked(t *testing.T) {
	topo, ed, _ := newWorld(t, 1<<20)
	origin, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 5*ChunkSize+123)
	for i := range content {
		content[i] = byte(i * 31)
	}
	ServeOrigin(origin, map[string][]byte{"video.bin": content})
	publish(t, topo, ed, "video.bin", origin.Addr())
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewClient(client).Get("video.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("chunked content mismatch: %d vs %d bytes", len(got), len(content))
	}
}

func TestUnknownContentMiss(t *testing.T) {
	topo, ed, _ := newWorld(t, 1<<20)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(client).Get("ghost"); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestLRUEvictionUnderByteBudget(t *testing.T) {
	// Capacity of 2.5 objects.
	topo, ed, mod := newWorld(t, 2500)
	origin, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	contents := map[string][]byte{
		"a": bytes.Repeat([]byte("a"), 1000),
		"b": bytes.Repeat([]byte("b"), 1000),
		"c": bytes.Repeat([]byte("c"), 1000),
	}
	ServeOrigin(origin, contents)
	for name := range contents {
		publish(t, topo, ed, name, origin.Addr())
	}
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(client)
	for _, name := range []string{"a", "b", "c"} {
		if _, err := c.Get(name); err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
	}
	// a (least recently used) must have been evicted; b and c retained.
	if mod.Contains("a") {
		t.Fatal("LRU victim still cached")
	}
	if !mod.Contains("b") || !mod.Contains("c") {
		t.Fatal("recent objects evicted")
	}
	if st := mod.Stats(); st.BytesCached > 2500 {
		t.Fatalf("cache over budget: %d", st.BytesCached)
	}
}

func TestOversizedObjectServedButNotCached(t *testing.T) {
	topo, ed, mod := newWorld(t, 100)
	origin, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 1000)
	ServeOrigin(origin, map[string][]byte{"big": big})
	publish(t, topo, ed, "big", origin.Addr())
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewClient(client).Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("content mismatch")
	}
	if mod.Contains("big") {
		t.Fatal("oversized object cached")
	}
}

func TestStatsControlOp(t *testing.T) {
	topo, ed, _ := newWorld(t, 1000)
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := h.InvokeFirstHop(wire.SvcCDNCache, "stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty stats")
	}
}
