// Package cdncache implements a content-caching service — the paper's
// canonical edge service (caching "was the first widespread performance
// enhancement", §1.2) and its running example for inter-IESP coordination
// (§5: cached content flows from the SN paid by the application provider
// to the SN paid by the enterprise, then to the client).
//
// Content providers publish origins; clients request named content from
// their first-hop SN. The SN serves hits from a byte-budgeted LRU store
// and fetches misses from the origin host, chunking large objects across
// packets.
package cdncache

import (
	"container/list"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"interedge/internal/host"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Packet kinds in the first byte of header data.
const (
	kindGet    byte = iota // client → SN (data: kind ‖ name)
	kindData               // SN → client (data: kind ‖ chunk meta; payload: chunk)
	kindFetch              // SN → origin host (data: kind ‖ name)
	kindOrigin             // origin host → SN (data: kind ‖ chunk meta ‖ name; payload: chunk)
	kindMiss               // SN → client: content unavailable
)

// ChunkSize is the content chunk carried per packet.
const ChunkSize = 1024

// Errors returned by the service.
var (
	ErrBadHeader  = errors.New("cdncache: malformed header data")
	ErrNotFound   = errors.New("cdncache: content not found")
	ErrGetTimeout = errors.New("cdncache: request timed out")
)

// Stats reports cache effectiveness.
type Stats struct {
	Hits          uint64
	Misses        uint64
	OriginFetches uint64
	BytesCached   int
}

type cachedObject struct {
	name string
	data []byte
	elem *list.Element
}

type pendingFetch struct {
	waiters []waiter
	chunks  [][]byte
	total   int
}

type waiter struct {
	client wire.Addr
	conn   wire.ConnectionID
}

// Module is the caching service for one SN.
type Module struct {
	capacity int

	mu      sync.Mutex
	objects map[string]*cachedObject
	lru     *list.List // front = most recent
	size    int
	origins map[string]wire.Addr // content name -> origin host
	pending map[string]*pendingFetch
	hits    uint64
	misses  uint64
	fetches uint64
}

// New creates a cache with the given byte capacity.
func New(capacityBytes int) *Module {
	return &Module{
		capacity: capacityBytes,
		objects:  make(map[string]*cachedObject),
		lru:      list.New(),
		origins:  make(map[string]wire.Addr),
		pending:  make(map[string]*pendingFetch),
	}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcCDNCache }

// Name implements sn.Module.
func (*Module) Name() string { return "cdncache" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// Stats returns cache counters.
func (m *Module) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Hits: m.hits, Misses: m.misses, OriginFetches: m.fetches, BytesCached: m.size}
}

type publishArgs struct {
	Name   string `json:"name"`
	Origin string `json:"origin"`
}

// HandleControl implements sn.ControlHandler: op "publish" registers the
// origin host for a content name (invoked by the application provider).
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "publish":
		var a publishArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		origin, err := netip.ParseAddr(a.Origin)
		if err != nil {
			return nil, fmt.Errorf("cdncache: bad origin: %w", err)
		}
		m.mu.Lock()
		m.origins[a.Name] = origin
		m.mu.Unlock()
		return nil, nil
	case "stats":
		return json.Marshal(m.Stats())
	default:
		return nil, fmt.Errorf("cdncache: unknown op %q", op)
	}
}

// chunkMeta is idx(4) | total(4).
func chunkMeta(kind byte, idx, total int, name string) []byte {
	data := make([]byte, 9, 9+len(name))
	data[0] = kind
	binary.BigEndian.PutUint32(data[1:5], uint32(idx))
	binary.BigEndian.PutUint32(data[5:9], uint32(total))
	return append(data, name...)
}

func parseChunkMeta(data []byte) (idx, total int, name string, err error) {
	if len(data) < 9 {
		return 0, 0, "", ErrBadHeader
	}
	return int(binary.BigEndian.Uint32(data[1:5])), int(binary.BigEndian.Uint32(data[5:9])), string(data[9:]), nil
}

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) < 1 {
		return sn.Decision{}, ErrBadHeader
	}
	switch pkt.Hdr.Data[0] {
	case kindGet:
		return m.handleGet(env, pkt)
	case kindOrigin:
		return m.handleOrigin(env, pkt)
	default:
		return sn.Decision{}, fmt.Errorf("cdncache: unexpected kind %d", pkt.Hdr.Data[0])
	}
}

func (m *Module) handleGet(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	name := string(pkt.Hdr.Data[1:])
	m.mu.Lock()
	obj, hit := m.objects[name]
	if hit {
		m.hits++
		m.lru.MoveToFront(obj.elem)
		data := obj.data
		m.mu.Unlock()
		return m.respond(pkt.Src, pkt.Hdr.Conn, name, data), nil
	}
	m.misses++
	origin, known := m.origins[name]
	if !known {
		m.mu.Unlock()
		hdr := wire.ILPHeader{Service: wire.SvcCDNCache, Conn: pkt.Hdr.Conn, Data: append([]byte{kindMiss}, name...)}
		return sn.Decision{Forwards: []sn.Forward{{Dst: pkt.Src, Hdr: &hdr, Empty: true}}}, nil
	}
	pf, inflight := m.pending[name]
	if !inflight {
		pf = &pendingFetch{}
		m.pending[name] = pf
	}
	pf.waiters = append(pf.waiters, waiter{client: pkt.Src, conn: pkt.Hdr.Conn})
	m.mu.Unlock()

	if !inflight {
		m.mu.Lock()
		m.fetches++
		m.mu.Unlock()
		hdr := wire.ILPHeader{Service: wire.SvcCDNCache, Conn: pkt.Hdr.Conn, Data: append([]byte{kindFetch}, name...)}
		if err := env.Send(origin, &hdr, nil); err != nil {
			return sn.Decision{}, fmt.Errorf("cdncache: fetch from origin: %w", err)
		}
	}
	return sn.Decision{}, nil
}

// handleOrigin collects origin chunks; when complete, stores the object
// and answers all waiters.
func (m *Module) handleOrigin(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	idx, total, name, err := parseChunkMeta(pkt.Hdr.Data)
	if err != nil {
		return sn.Decision{}, err
	}
	m.mu.Lock()
	pf, ok := m.pending[name]
	if !ok {
		m.mu.Unlock()
		return sn.Decision{}, nil // stale chunk
	}
	if pf.chunks == nil {
		pf.chunks = make([][]byte, total)
		pf.total = total
	}
	if idx < len(pf.chunks) && pf.chunks[idx] == nil {
		pf.chunks[idx] = append([]byte(nil), pkt.Payload...)
	}
	complete := true
	for _, c := range pf.chunks {
		if c == nil {
			complete = false
			break
		}
	}
	if !complete {
		m.mu.Unlock()
		return sn.Decision{}, nil
	}
	delete(m.pending, name)
	var data []byte
	for _, c := range pf.chunks {
		data = append(data, c...)
	}
	m.insertLocked(name, data)
	waiters := pf.waiters
	m.mu.Unlock()

	var d sn.Decision
	for _, w := range waiters {
		wd := m.respond(w.client, w.conn, name, data)
		d.Forwards = append(d.Forwards, wd.Forwards...)
	}
	return d, nil
}

// insertLocked stores an object, evicting LRU entries to stay within the
// byte budget. Caller holds m.mu.
func (m *Module) insertLocked(name string, data []byte) {
	if len(data) > m.capacity {
		return // object larger than the whole cache: serve without storing
	}
	if old, ok := m.objects[name]; ok {
		m.size -= len(old.data)
		m.lru.Remove(old.elem)
		delete(m.objects, name)
	}
	for m.size+len(data) > m.capacity {
		back := m.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cachedObject)
		m.lru.Remove(back)
		delete(m.objects, victim.name)
		m.size -= len(victim.data)
	}
	obj := &cachedObject{name: name, data: data}
	obj.elem = m.lru.PushFront(obj)
	m.objects[name] = obj
	m.size += len(data)
}

// respond builds the chunked delivery of an object to a client.
func (m *Module) respond(client wire.Addr, conn wire.ConnectionID, name string, data []byte) sn.Decision {
	total := (len(data) + ChunkSize - 1) / ChunkSize
	if total == 0 {
		total = 1
	}
	var d sn.Decision
	for i := 0; i < total; i++ {
		lo := i * ChunkSize
		hi := lo + ChunkSize
		if hi > len(data) {
			hi = len(data)
		}
		hdr := wire.ILPHeader{Service: wire.SvcCDNCache, Conn: conn, Data: chunkMeta(kindData, i, total, name)}
		d.Forwards = append(d.Forwards, sn.Forward{Dst: client, Hdr: &hdr, Payload: data[lo:hi]})
	}
	return d
}

// Contains reports whether the cache currently holds name (tests).
func (m *Module) Contains(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.objects[name]
	return ok
}

// --- Origin server and client helpers ----------------------------------------

// ServeOrigin runs origin-side logic on a content provider's host:
// answering kindFetch requests from SNs out of the given content map.
func ServeOrigin(h *host.Host, contents map[string][]byte) {
	cp := make(map[string][]byte, len(contents))
	for k, v := range contents {
		cp[k] = append([]byte(nil), v...)
	}
	h.OnService(wire.SvcCDNCache, func(msg host.Message) {
		if len(msg.Hdr.Data) < 1 || msg.Hdr.Data[0] != kindFetch {
			return
		}
		name := string(msg.Hdr.Data[1:])
		data, ok := cp[name]
		if !ok {
			return
		}
		total := (len(data) + ChunkSize - 1) / ChunkSize
		if total == 0 {
			total = 1
		}
		for i := 0; i < total; i++ {
			lo := i * ChunkSize
			hi := lo + ChunkSize
			if hi > len(data) {
				hi = len(data)
			}
			hdr := wire.ILPHeader{Service: wire.SvcCDNCache, Conn: msg.Hdr.Conn, Data: chunkMeta(kindOrigin, i, total, name)}
			if err := h.Pipes().Send(msg.Src, &hdr, data[lo:hi]); err != nil {
				return
			}
		}
	})
}

// Client fetches content through the host's first-hop SN.
type Client struct {
	h       *host.Host
	timeout time.Duration
}

// NewClient creates a CDN client.
func NewClient(h *host.Host) *Client { return &Client{h: h, timeout: 5 * time.Second} }

// Get retrieves named content.
func (c *Client) Get(name string) ([]byte, error) {
	conn, err := c.h.NewConn(wire.SvcCDNCache)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.Send(append([]byte{kindGet}, name...), nil); err != nil {
		return nil, err
	}
	var chunks [][]byte
	var total = -1
	received := 0
	deadline := time.After(c.timeout)
	for {
		var msg host.Message
		var ok bool
		select {
		case msg, ok = <-conn.Receive():
			if !ok {
				return nil, ErrGetTimeout
			}
		case <-deadline:
			return nil, ErrGetTimeout
		}
		switch msg.Hdr.Data[0] {
		case kindMiss:
			return nil, ErrNotFound
		case kindData:
			idx, tot, _, err := parseChunkMeta(msg.Hdr.Data)
			if err != nil {
				return nil, err
			}
			if total == -1 {
				total = tot
				chunks = make([][]byte, tot)
			}
			if idx < len(chunks) && chunks[idx] == nil {
				chunks[idx] = msg.Payload
				received++
			}
			if received == total {
				var out []byte
				for _, ch := range chunks {
					out = append(out, ch...)
				}
				return out, nil
			}
		}
	}
}
