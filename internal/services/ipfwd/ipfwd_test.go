package ipfwd

import (
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain, *lab.Edomain) {
	t.Helper()
	topo := lab.New()
	setup := func(node *sn.SN, ed *lab.Edomain) error {
		return node.Register(New(topo.Global, topo.Fabric))
	}
	edA, err := topo.AddEdomain("ed-a", 2, setup)
	if err != nil {
		t.Fatal(err)
	}
	edB, err := topo.AddEdomain("ed-b", 2, setup)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, edA, edB
}

func await(t *testing.T, ch chan host.Message, want string) {
	t.Helper()
	select {
	case msg := <-ch:
		if string(msg.Payload) != want {
			t.Fatalf("payload %q, want %q", msg.Payload, want)
		}
	case <-time.After(3 * time.Second):
		t.Fatalf("never received %q", want)
	}
}

func TestDeliveryViaSharedSN(t *testing.T) {
	topo, edA, _ := newWorld(t)
	a, err := topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	inbox := make(chan host.Message, 4)
	b.OnService(wire.SvcIPFwd, func(msg host.Message) { inbox <- msg })
	conn, err := a.NewConn(wire.SvcIPFwd)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(DestData(b.Addr()), []byte("same-sn")); err != nil {
		t.Fatal(err)
	}
	await(t, inbox, "same-sn")
}

func TestDeliveryAcrossSNsSameEdomain(t *testing.T) {
	topo, edA, _ := newWorld(t)
	a, err := topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := topo.NewHost(edA, 1)
	if err != nil {
		t.Fatal(err)
	}
	inbox := make(chan host.Message, 4)
	b.OnService(wire.SvcIPFwd, func(msg host.Message) { inbox <- msg })
	conn, err := a.NewConn(wire.SvcIPFwd)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(DestData(b.Addr()), []byte("cross-sn")); err != nil {
		t.Fatal(err)
	}
	await(t, inbox, "cross-sn")
}

func TestDeliveryAcrossEdomains(t *testing.T) {
	topo, edA, edB := newWorld(t)
	a, err := topo.NewHost(edA, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := topo.NewHost(edB, 1)
	if err != nil {
		t.Fatal(err)
	}
	inbox := make(chan host.Message, 4)
	b.OnService(wire.SvcIPFwd, func(msg host.Message) { inbox <- msg })
	conn, err := a.NewConn(wire.SvcIPFwd)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(DestData(b.Addr()), []byte("inter-edomain")); err != nil {
		t.Fatal(err)
	}
	await(t, inbox, "inter-edomain")
}

// Steady-state ipfwd flows ride the decision cache.
func TestFlowCachedAfterFirstPacket(t *testing.T) {
	topo, edA, _ := newWorld(t)
	a, err := topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	inbox := make(chan host.Message, 16)
	b.OnService(wire.SvcIPFwd, func(msg host.Message) { inbox <- msg })
	conn, err := a.NewConn(wire.SvcIPFwd)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(DestData(b.Addr()), []byte("first")); err != nil {
		t.Fatal(err)
	}
	await(t, inbox, "first")
	for i := 0; i < 4; i++ {
		if err := conn.Send(DestData(b.Addr()), []byte("next")); err != nil {
			t.Fatal(err)
		}
		await(t, inbox, "next")
	}
	if c := edA.SNs[0].Counters(); c.FastPathHits < 4 {
		t.Fatalf("FastPathHits = %d, want >= 4", c.FastPathHits)
	}
}

func TestUnknownDestinationErrors(t *testing.T) {
	topo, edA, _ := newWorld(t)
	a, err := topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := a.NewConn(wire.SvcIPFwd)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(DestData(wire.MustAddr("fd00::dead")), nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for edA.SNs[0].Counters().ModuleErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unknown destination not rejected")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDestDataRoundTrip(t *testing.T) {
	addr := wire.MustAddr("fd00::42")
	got, err := DecodeDest(DestData(addr))
	if err != nil || got != addr {
		t.Fatalf("got %v err %v", got, err)
	}
	if _, err := DecodeDest([]byte("short")); err == nil {
		t.Fatal("short dest accepted")
	}
}
