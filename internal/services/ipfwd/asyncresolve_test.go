package ipfwd

import (
	"crypto/ed25519"
	"sync"
	"testing"
	"time"

	"interedge/internal/cryptutil"
	"interedge/internal/lookup"
	"interedge/internal/lookup/rescache"
	"interedge/internal/sn"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// fakeEnv is a minimal sn.Env that records Inject calls, so the
// cold-resolution contract can be tested against the module alone: the
// dispatcher-facing HandlePacket must return without ever waiting on
// the directory.
type fakeEnv struct {
	local wire.Addr

	mu       sync.Mutex
	injected []sn.Packet
}

func (e *fakeEnv) LocalAddr() wire.Addr                          { return e.local }
func (e *fakeEnv) Now() time.Time                                { return time.Unix(0, 0) }
func (e *fakeEnv) After(time.Duration) <-chan time.Time          { return nil }
func (e *fakeEnv) Send(wire.Addr, *wire.ILPHeader, []byte) error { return nil }
func (e *fakeEnv) Inject(src wire.Addr, hdr wire.ILPHeader, payload []byte) {
	e.mu.Lock()
	e.injected = append(e.injected, sn.Packet{Src: src, Hdr: hdr, Payload: payload})
	e.mu.Unlock()
}
func (e *fakeEnv) Connect(wire.Addr) error                           { return nil }
func (e *fakeEnv) PeerIdentity(wire.Addr) (ed25519.PublicKey, bool)  { return nil, false }
func (e *fakeEnv) AddRule(wire.FlowKey, cache.Action)                {}
func (e *fakeEnv) InvalidateRule(wire.FlowKey)                       {}
func (e *fakeEnv) RuleHitCount(wire.FlowKey) (uint64, bool)          { return 0, false }
func (e *fakeEnv) RuleRecentlyUsed(wire.FlowKey, time.Duration) bool { return false }
func (e *fakeEnv) Config(string) ([]byte, bool)                      { return nil, false }
func (e *fakeEnv) SetConfig(string, []byte)                          {}
func (e *fakeEnv) Checkpoint(string, []byte)                         {}
func (e *fakeEnv) Restore(string) ([]byte, bool)                     { return nil, false }
func (e *fakeEnv) Logf(string, ...any)                               {}

func (e *fakeEnv) injectCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.injected)
}

// gateBackend blocks every resolution until released — a directory
// that is arbitrarily slow.
type gateBackend struct {
	inner   rescache.Resolver
	release chan struct{}
}

func (g *gateBackend) ResolveAddress(addr wire.Addr) (lookup.AddrRecord, error) {
	<-g.release
	return g.inner.ResolveAddress(addr)
}

// TestColdResolutionNeverBlocks is the acceptance test for the async
// miss path: with the directory wedged, HandlePacket on a cold
// destination returns immediately (parking the packet on the fill);
// once the fill completes the packet is re-injected, and the requeued
// packet decides from the now-warm cache.
func TestColdResolutionNeverBlocks(t *testing.T) {
	svc := lookup.New()
	owner, err := cryptutil.NewSigningKeypair()
	if err != nil {
		t.Fatal(err)
	}
	local := wire.MustAddr("fd00::1")
	dst := wire.MustAddr("fd00::beef")
	sns := []wire.Addr{local}
	rec := lookup.AddrRecord{Addr: dst, Owner: owner.Public, SNs: sns}
	if err := svc.RegisterAddress(rec, lookup.SignAddrRecord(owner, dst, sns)); err != nil {
		t.Fatal(err)
	}

	gate := &gateBackend{inner: svc, release: make(chan struct{})}
	rc := rescache.New(rescache.Config{Backend: gate, Watch: svc})
	defer rc.Close()
	mod := New(rc, nil)
	env := &fakeEnv{local: local}

	pkt := &sn.Packet{
		Src:     wire.MustAddr("fd00::c0"),
		Hdr:     wire.ILPHeader{Service: wire.SvcIPFwd, Conn: 7, Data: DestData(dst)},
		Payload: []byte("parked"),
	}

	// Cold miss with the directory wedged: the call must come back at
	// once with an empty decision. (If it blocked on the backend this
	// test would hang, not fail.)
	returned := make(chan struct{})
	var dec sn.Decision
	go func() {
		var herr error
		dec, herr = mod.HandlePacket(env, pkt)
		if herr != nil {
			t.Errorf("cold HandlePacket: %v", herr)
		}
		close(returned)
	}()
	select {
	case <-returned:
	case <-time.After(2 * time.Second):
		t.Fatal("HandlePacket blocked on a cold resolution")
	}
	if len(dec.Forwards) != 0 || len(dec.Rules) != 0 {
		t.Fatalf("cold decision not empty: %+v", dec)
	}
	if env.injectCount() != 0 {
		t.Fatal("packet re-injected before the fill completed")
	}

	// The parked copy must not alias the dispatcher's buffers.
	pkt.Payload[0] = 'X'
	pkt.Hdr.Data[0] = 0xff

	// Release the directory: the fill completes and the packet comes
	// back through Inject with its original bytes.
	close(gate.release)
	deadline := time.Now().Add(5 * time.Second)
	for env.injectCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("packet never re-injected after the fill")
		}
		time.Sleep(time.Millisecond)
	}
	env.mu.Lock()
	re := env.injected[0]
	env.mu.Unlock()
	if re.Src != pkt.Src || string(re.Payload) != "parked" {
		t.Fatalf("re-injected packet mangled: src=%s payload=%q", re.Src, re.Payload)
	}
	got, err := DecodeDest(re.Hdr.Data)
	if err != nil || got != dst {
		t.Fatalf("re-injected dest = %v, %v; want %s", got, err, dst)
	}

	// The requeued packet decides from the warm cache: last-hop
	// delivery straight to the host, with a fast-path rule.
	dec, err = mod.HandlePacket(env, &re)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Forwards) != 1 || dec.Forwards[0].Dst != dst {
		t.Fatalf("warm decision forwards = %+v, want delivery to %s", dec.Forwards, dst)
	}
	if len(dec.Rules) != 1 {
		t.Fatalf("warm decision installed %d rules, want 1", len(dec.Rules))
	}

	// An unknown destination surfaces the negative-cache error on
	// requeue instead of looping forever.
	ghost := wire.MustAddr("fd00::dead")
	gpkt := &sn.Packet{
		Src: pkt.Src,
		Hdr: wire.ILPHeader{Service: wire.SvcIPFwd, Conn: 8, Data: DestData(ghost)},
	}
	if _, err := mod.HandlePacket(env, gpkt); err != nil {
		t.Fatalf("cold ghost HandlePacket: %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for env.injectCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("ghost packet never re-injected")
		}
		time.Sleep(time.Millisecond)
	}
	env.mu.Lock()
	gre := env.injected[1]
	env.mu.Unlock()
	if _, err := mod.HandlePacket(env, &gre); err == nil {
		t.Fatal("requeued ghost packet did not surface the unknown-address error")
	}
}
