package ipfwd

import (
	"net/netip"

	"interedge/internal/wire"
)

func addrFrom16(b [16]byte) wire.Addr {
	return netip.AddrFrom16(b).Unmap()
}
