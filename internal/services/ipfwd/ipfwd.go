// Package ipfwd implements the "IP-like service" the paper uses as its
// canonical bundle component (§3.2: "naturally composable services can be
// combined into 'bundles' (e.g., an IP-like service and a caching
// service)"): point-to-point delivery of packets to a destination host
// through the destination's first-hop SN, across edomains when necessary.
//
// The ILP header data carries the destination host address. The module
// resolves the destination's SN through the global lookup service, routes
// through the peering fabric when the destination is in another edomain,
// and installs a decision-cache rule so subsequent packets of the flow
// ride the fast path.
package ipfwd

import (
	"fmt"

	"interedge/internal/lookup"
	"interedge/internal/lookup/rescache"
	"interedge/internal/peering"
	"interedge/internal/sn"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// AsyncResolver is a resolver that can answer from cache and fill
// asynchronously — *rescache.Cache. When the module's resolver
// implements it, a cold resolution parks the packet and re-injects it
// when the fill completes instead of blocking the slow-path dispatcher
// on the directory.
type AsyncResolver interface {
	rescache.Resolver
	ResolveCached(addr wire.Addr) (lookup.AddrRecord, bool, bool)
	ResolveAsync(addr wire.Addr, cb func(lookup.AddrRecord, error)) bool
}

// Module is the IP-like forwarding service.
type Module struct {
	resolver rescache.Resolver
	async    AsyncResolver // non-nil when resolver supports cached/async reads
	fabric   *peering.Fabric
}

// New creates the forwarding module. resolver is typically the SN-tier
// *rescache.Cache (enabling the non-blocking miss path) or the global
// *lookup.Service directly. fabric may be nil for single-edomain
// deployments.
func New(resolver rescache.Resolver, fabric *peering.Fabric) *Module {
	m := &Module{resolver: resolver, fabric: fabric}
	if a, ok := resolver.(AsyncResolver); ok {
		m.async = a
	}
	return m
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcIPFwd }

// Name implements sn.Module.
func (*Module) Name() string { return "ipfwd" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// DestData encodes a destination host address as ipfwd header data.
func DestData(dst wire.Addr) []byte {
	b := dst.As16()
	return b[:]
}

// DecodeDest parses ipfwd header data.
func DecodeDest(data []byte) (wire.Addr, error) {
	if len(data) != 16 {
		return wire.Addr{}, fmt.Errorf("ipfwd: header data must be 16 bytes, got %d", len(data))
	}
	var b [16]byte
	copy(b[:], data)
	return addrFrom16(b), nil
}

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	dst, err := DecodeDest(pkt.Hdr.Data)
	if err != nil {
		return sn.Decision{}, err
	}
	local := env.LocalAddr()

	// Destination directly attached here? (Its lookup record lists this SN.)
	var rec lookup.AddrRecord
	if m.async != nil {
		var cached, negative bool
		rec, cached, negative = m.async.ResolveCached(dst)
		if negative {
			return sn.Decision{}, fmt.Errorf("ipfwd: resolve %s: %w", dst, lookup.ErrUnknownAddress)
		}
		if !cached {
			return m.fillAndRequeue(env, pkt, dst)
		}
	} else {
		var err error
		rec, err = m.resolver.ResolveAddress(dst)
		if err != nil {
			return sn.Decision{}, fmt.Errorf("ipfwd: resolve %s: %w", dst, err)
		}
	}
	for _, snAddr := range rec.SNs {
		if snAddr == local {
			// Last hop: deliver to the host and cache the decision.
			return sn.Decision{
				Forwards: []sn.Forward{{Dst: dst}},
				Rules: []sn.Rule{{
					Key:    pkt.Key(),
					Action: cache.Action{Forward: []wire.Addr{dst}},
				}},
			}, nil
		}
	}
	if len(rec.SNs) == 0 {
		return sn.Decision{}, fmt.Errorf("ipfwd: destination %s has no SNs", dst)
	}
	dstSN := rec.SNs[0]

	// Same edomain (or no fabric): hand to the destination's SN directly.
	sameEdomain := true
	if m.fabric != nil {
		edHere, ok1 := m.fabric.EdomainOf(local)
		edThere, ok2 := m.fabric.EdomainOf(dstSN)
		if ok1 && ok2 && edHere != edThere {
			sameEdomain = false
		}
	}
	if sameEdomain {
		return sn.Decision{
			Forwards: []sn.Forward{{Dst: dstSN}},
			Rules: []sn.Rule{{
				Key:    pkt.Key(),
				Action: cache.Action{Forward: []wire.Addr{dstSN}},
			}},
		}, nil
	}

	// Cross-edomain: encapsulate as transit toward the destination SN. The
	// inner packet keeps the original ipfwd header so the destination SN
	// completes last-hop delivery.
	if err := peering.SendTransit(env, m.fabric, dstSN, pkt.Src, &pkt.Hdr, pkt.Payload); err != nil {
		return sn.Decision{}, fmt.Errorf("ipfwd: transit: %w", err)
	}
	return sn.Decision{}, nil
}

// fillAndRequeue is the non-blocking cold-resolution path: park a copy
// of the packet on an asynchronous cache fill and re-inject it into the
// pipe-terminus when the record arrives. The slow-path dispatcher
// returns immediately; a directory that is slow (or a destination that
// does not exist) never stalls packets behind this one. A re-injected
// packet re-enters this module and either decides from the now-warm
// cache or surfaces the negative-cache error.
func (m *Module) fillAndRequeue(env sn.Env, pkt *sn.Packet, dst wire.Addr) (sn.Decision, error) {
	src := pkt.Src
	hdr := pkt.Hdr
	hdr.Data = append([]byte(nil), pkt.Hdr.Data...)
	payload := append([]byte(nil), pkt.Payload...)
	if !m.async.ResolveAsync(dst, func(lookup.AddrRecord, error) {
		env.Inject(src, hdr, payload)
	}) {
		return sn.Decision{}, fmt.Errorf("ipfwd: resolution fill queue full for %s", dst)
	}
	return sn.Decision{}, nil
}
