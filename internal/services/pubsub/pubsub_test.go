package pubsub

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"interedge/internal/cryptutil"
	"interedge/internal/lab"
	"interedge/internal/lookup"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// testWorld is a two-edomain deployment with pub/sub on every SN.
type testWorld struct {
	topo  *lab.Topology
	owner cryptutil.SigningKeypair
}

func newWorld(t *testing.T, snsPerEdomain int) *testWorld {
	t.Helper()
	topo := lab.New()
	setup := func(node *sn.SN, ed *lab.Edomain) error {
		return node.Register(New(ed.Core, topo.Fabric, topo.Global))
	}
	if _, err := topo.AddEdomain("ed-a", snsPerEdomain, setup); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.AddEdomain("ed-b", snsPerEdomain, setup); err != nil {
		t.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	owner, err := cryptutil.NewSigningKeypair()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return &testWorld{topo: topo, owner: owner}
}

func (w *testWorld) openTopic(t *testing.T, topic string) {
	t.Helper()
	if err := w.topo.Global.CreateGroup(lookup.GroupID(topic), w.owner.Public); err != nil {
		t.Fatal(err)
	}
	if err := w.topo.Global.PostOpenStatement(lookup.GroupID(topic), lookup.SignOpenStatement(w.owner, lookup.GroupID(topic))); err != nil {
		t.Fatal(err)
	}
}

type collector struct {
	mu   sync.Mutex
	msgs []string
	ch   chan string
}

func newCollector() *collector {
	return &collector{ch: make(chan string, 256)}
}

func (c *collector) handler(topic string, msg []byte) {
	c.mu.Lock()
	c.msgs = append(c.msgs, string(msg))
	c.mu.Unlock()
	c.ch <- string(msg)
}

func (c *collector) await(t *testing.T, want string) {
	t.Helper()
	deadline := time.After(3 * time.Second)
	for {
		select {
		case got := <-c.ch:
			if got == want {
				return
			}
		case <-deadline:
			t.Fatalf("never received %q (have %v)", want, c.msgs)
		}
	}
}

func TestPublishSameSN(t *testing.T) {
	w := newWorld(t, 1)
	w.openTopic(t, "news")
	edA, _ := w.topo.Edomain("ed-a")
	pub, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	subClient, _ := NewClient(sub)
	col := newCollector()
	if err := subClient.Subscribe("news", nil, false, col.handler); err != nil {
		t.Fatal(err)
	}
	pubClient, _ := NewClient(pub)
	if err := pubClient.RegisterSender("news"); err != nil {
		t.Fatal(err)
	}
	if err := pubClient.Publish("news", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	col.await(t, "hello")
}

func TestPublishRequiresSenderRegistration(t *testing.T) {
	w := newWorld(t, 1)
	w.openTopic(t, "news")
	edA, _ := w.topo.Edomain("ed-a")
	pub, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	pubClient, _ := NewClient(pub)
	// Publish without registering: module drops (error counted at SN).
	if err := pubClient.Publish("news", []byte("rogue")); err != nil {
		t.Fatal(err) // send succeeds; rejection is at the SN
	}
	node := edA.SNs[0]
	deadline := time.Now().Add(3 * time.Second)
	for node.Counters().ModuleErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unregistered publish never rejected")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClosedTopicRequiresAuth(t *testing.T) {
	w := newWorld(t, 1)
	if err := w.topo.Global.CreateGroup("vip", w.owner.Public); err != nil {
		t.Fatal(err)
	}
	edA, _ := w.topo.Edomain("ed-a")
	sub, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	subClient, _ := NewClient(sub)
	col := newCollector()
	// Without authorization: rejected.
	if err := subClient.Subscribe("vip", nil, false, col.handler); err == nil {
		t.Fatal("unauthorized subscribe succeeded")
	}
	// With owner-signed authorization for this host's identity: accepted.
	auth := lookup.SignJoinAuthorization(w.owner, "vip", sub.Identity().PublicKey())
	if err := subClient.Subscribe("vip", auth, false, col.handler); err != nil {
		t.Fatal(err)
	}
	// Authorization for a different key is rejected.
	other, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	otherClient, _ := NewClient(other)
	if err := otherClient.Subscribe("vip", auth, false, col.handler); err == nil {
		t.Fatal("subscribe with foreign authorization succeeded")
	}
}

func TestPublishCrossSNSameEdomain(t *testing.T) {
	w := newWorld(t, 2)
	w.openTopic(t, "t")
	edA, _ := w.topo.Edomain("ed-a")
	pub, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := w.topo.NewHost(edA, 1) // different SN
	if err != nil {
		t.Fatal(err)
	}
	subClient, _ := NewClient(sub)
	col := newCollector()
	if err := subClient.Subscribe("t", nil, false, col.handler); err != nil {
		t.Fatal(err)
	}
	pubClient, _ := NewClient(pub)
	if err := pubClient.RegisterSender("t"); err != nil {
		t.Fatal(err)
	}
	if err := pubClient.Publish("t", []byte("across SNs")); err != nil {
		t.Fatal(err)
	}
	col.await(t, "across SNs")
}

func TestPublishCrossEdomain(t *testing.T) {
	w := newWorld(t, 2)
	w.openTopic(t, "world")
	edA, _ := w.topo.Edomain("ed-a")
	edB, _ := w.topo.Edomain("ed-b")
	pub, err := w.topo.NewHost(edA, 1)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := w.topo.NewHost(edB, 1) // non-gateway SN in remote edomain
	if err != nil {
		t.Fatal(err)
	}
	subClient, _ := NewClient(sub)
	col := newCollector()
	if err := subClient.Subscribe("world", nil, false, col.handler); err != nil {
		t.Fatal(err)
	}
	pubClient, _ := NewClient(pub)
	if err := pubClient.RegisterSender("world"); err != nil {
		t.Fatal(err)
	}
	if err := pubClient.Publish("world", []byte("inter-edomain")); err != nil {
		t.Fatal(err)
	}
	col.await(t, "inter-edomain")
}

func TestMultipleSubscribersAllReceive(t *testing.T) {
	w := newWorld(t, 2)
	w.openTopic(t, "fan")
	edA, _ := w.topo.Edomain("ed-a")
	edB, _ := w.topo.Edomain("ed-b")

	var cols []*collector
	for i, spot := range []struct {
		ed  *lab.Edomain
		idx int
	}{{edA, 0}, {edA, 1}, {edB, 0}, {edB, 1}} {
		h, err := w.topo.NewHost(spot.ed, spot.idx)
		if err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
		cl, _ := NewClient(h)
		col := newCollector()
		if err := cl.Subscribe("fan", nil, false, col.handler); err != nil {
			t.Fatal(err)
		}
		cols = append(cols, col)
	}
	pub, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	pubClient, _ := NewClient(pub)
	if err := pubClient.RegisterSender("fan"); err != nil {
		t.Fatal(err)
	}
	if err := pubClient.Publish("fan", []byte("to-all")); err != nil {
		t.Fatal(err)
	}
	for i, col := range cols {
		func(i int) {
			defer func() {
				if t.Failed() {
					t.Fatalf("subscriber %d missing message", i)
				}
			}()
			col.await(t, "to-all")
		}(i)
	}
}

func TestReplayForLateSubscriber(t *testing.T) {
	w := newWorld(t, 1)
	w.openTopic(t, "log")
	edA, _ := w.topo.Edomain("ed-a")
	pub, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	pubClient, _ := NewClient(pub)
	if err := pubClient.RegisterSender("log"); err != nil {
		t.Fatal(err)
	}
	// Publish before anyone subscribes; messages are retained at the SN.
	for i := 0; i < 3; i++ {
		if err := pubClient.Publish("log", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Give the SN time to process the publishes.
	time.Sleep(100 * time.Millisecond)
	late, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	lateClient, _ := NewClient(late)
	col := newCollector()
	if err := lateClient.Subscribe("log", nil, true, col.handler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		col.await(t, fmt.Sprintf("m%d", i))
	}
}

// §3.3: stateful-service resiliency via host-driven state reconstruction.
// The subscriber's SN "fails" (its pub/sub state is lost when we stand up
// a fresh SN); the host re-associates and Reestablish() restores flow.
func TestHostDrivenStateReconstruction(t *testing.T) {
	w := newWorld(t, 2)
	w.openTopic(t, "durable")
	edA, _ := w.topo.Edomain("ed-a")
	pub, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := w.topo.NewHost(edA, 1)
	if err != nil {
		t.Fatal(err)
	}
	subClient, _ := NewClient(sub)
	col := newCollector()
	if err := subClient.Subscribe("durable", nil, false, col.handler); err != nil {
		t.Fatal(err)
	}
	pubClient, _ := NewClient(pub)
	if err := pubClient.RegisterSender("durable"); err != nil {
		t.Fatal(err)
	}
	if err := pubClient.Publish("durable", []byte("before")); err != nil {
		t.Fatal(err)
	}
	col.await(t, "before")

	// The subscriber's SN (index 1) loses its soft state: simulate by
	// removing the subscription maps — equivalent to a crash+restart of
	// the module. Then the host reconstructs.
	node := edA.SNs[1]
	mod, ok := node.Module(wire.SvcPubSub)
	if !ok {
		t.Fatal("no pubsub module")
	}
	psMod := mod.(*Module)
	psMod.mu.Lock()
	psMod.subs = make(map[string]map[wire.Addr]struct{})
	psMod.senders = make(map[string]map[wire.Addr]struct{})
	psMod.retained = make(map[string][][]byte)
	psMod.mu.Unlock()

	if err := subClient.Reestablish(); err != nil {
		t.Fatal(err)
	}
	if err := pubClient.Publish("durable", []byte("after")); err != nil {
		t.Fatal(err)
	}
	col.await(t, "after")
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	w := newWorld(t, 1)
	w.openTopic(t, "quiet")
	edA, _ := w.topo.Edomain("ed-a")
	pub, _ := w.topo.NewHost(edA, 0)
	sub, _ := w.topo.NewHost(edA, 0)
	subClient, _ := NewClient(sub)
	col := newCollector()
	if err := subClient.Subscribe("quiet", nil, false, col.handler); err != nil {
		t.Fatal(err)
	}
	pubClient, _ := NewClient(pub)
	if err := pubClient.RegisterSender("quiet"); err != nil {
		t.Fatal(err)
	}
	if err := pubClient.Publish("quiet", []byte("one")); err != nil {
		t.Fatal(err)
	}
	col.await(t, "one")
	if err := subClient.Unsubscribe("quiet"); err != nil {
		t.Fatal(err)
	}
	if err := pubClient.Publish("quiet", []byte("two")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-col.ch:
		t.Fatalf("received %q after unsubscribe", got)
	case <-time.After(150 * time.Millisecond):
	}
}
