// Package pubsub implements the InterEdge pub/sub service (§6.2): hosts
// subscribe to topics at their first-hop SN with join messages validated
// against the topic owner's signed authorizations (or an open statement)
// in the global lookup service; senders register before publishing; SNs
// fan messages out to member SNs in their edomain and, through the
// peering fabric, to every remote member edomain.
//
// Resiliency follows §3.3's host-driven state reconstruction: subscriber
// state lives at hosts, and the Client re-issues its subscriptions when
// its SN is replaced. The SN additionally retains the last few messages
// per topic so re-subscribers can request replay.
package pubsub

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"interedge/internal/edomain"
	"interedge/internal/lookup"
	"interedge/internal/peering"
	"interedge/internal/services/groupfan"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Message kinds carried in the first byte of the ILP header data.
const (
	kindPublish byte = iota // host → its first-hop SN
	kindIntra               // SN → member SN, same edomain
	kindInter               // SN → remote edomain's gateway SN (via transit)
	kindDeliver             // SN → subscribed host
)

// RetainedPerTopic is the number of recent messages an SN keeps per topic
// for replay to late subscribers.
const RetainedPerTopic = 32

// Errors returned by the module.
var (
	ErrNotSender     = errors.New("pubsub: host is not a registered sender for topic")
	ErrBadHeader     = errors.New("pubsub: malformed header data")
	ErrUnknownPeer   = errors.New("pubsub: request from host without verified identity")
	ErrNotSubscribed = errors.New("pubsub: host is not subscribed")
)

// HeaderData encodes (kind, topic) as ILP header data.
func HeaderData(kind byte, topic string) []byte {
	return append([]byte{kind}, topic...)
}

// parseHeader splits header data into kind and topic.
func parseHeader(data []byte) (byte, string, error) {
	if len(data) < 1 {
		return 0, "", ErrBadHeader
	}
	return data[0], string(data[1:]), nil
}

type senderState struct {
	cancel func()
}

// Module is the pub/sub service module for one SN.
type Module struct {
	core   *edomain.Core
	fabric *peering.Fabric
	global *lookup.Service
	fan    groupfan.Fanout

	mu       sync.Mutex
	subs     map[string]map[wire.Addr]struct{} // topic -> subscriber hosts
	senders  map[string]map[wire.Addr]struct{} // topic -> registered sender hosts
	snSender map[string]*senderState           // topic -> SN-level sender registration
	retained map[string][][]byte
}

// New creates the pub/sub module. fabric may be nil in single-edomain
// deployments.
func New(core *edomain.Core, fabric *peering.Fabric, global *lookup.Service) *Module {
	return &Module{
		core:     core,
		fabric:   fabric,
		global:   global,
		fan:      groupfan.Fanout{Core: core, Fabric: fabric},
		subs:     make(map[string]map[wire.Addr]struct{}),
		senders:  make(map[string]map[wire.Addr]struct{}),
		snSender: make(map[string]*senderState),
		retained: make(map[string][][]byte),
	}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcPubSub }

// Name implements sn.Module.
func (*Module) Name() string { return "pubsub" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// Stop implements sn.Stopper: release SN-level sender registrations.
func (m *Module) Stop() error {
	m.mu.Lock()
	states := make([]*senderState, 0, len(m.snSender))
	for _, st := range m.snSender {
		states = append(states, st)
	}
	m.snSender = make(map[string]*senderState)
	m.mu.Unlock()
	for _, st := range states {
		st.cancel()
	}
	return nil
}

// --- Control plane ----------------------------------------------------------

type subscribeArgs struct {
	Topic  string `json:"topic"`
	Auth   []byte `json:"auth,omitempty"`
	Replay bool   `json:"replay,omitempty"`
}

type topicArgs struct {
	Topic string `json:"topic"`
}

// HandleControl implements sn.ControlHandler with ops: subscribe,
// unsubscribe, register_sender, unregister_sender.
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "subscribe":
		var a subscribeArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("pubsub: bad subscribe args: %w", err)
		}
		return nil, m.subscribe(env, src, a)
	case "unsubscribe":
		var a topicArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("pubsub: bad unsubscribe args: %w", err)
		}
		return nil, m.unsubscribe(env, src, a.Topic)
	case "register_sender":
		var a topicArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("pubsub: bad register_sender args: %w", err)
		}
		return nil, m.registerSender(env, src, a.Topic)
	case "unregister_sender":
		var a topicArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		m.mu.Lock()
		if hs, ok := m.senders[a.Topic]; ok {
			delete(hs, src)
		}
		m.mu.Unlock()
		return nil, nil
	default:
		return nil, fmt.Errorf("pubsub: unknown op %q", op)
	}
}

// subscribe validates the host's join credentials and records the
// subscription ("these messages must have a signature from the owner
// authorizing them to join", §6.2).
func (m *Module) subscribe(env sn.Env, src wire.Addr, a subscribeArgs) error {
	identity, ok := env.PeerIdentity(src)
	if !ok {
		return ErrUnknownPeer
	}
	if err := m.global.ValidateJoin(lookup.GroupID(a.Topic), identity, a.Auth); err != nil {
		return fmt.Errorf("pubsub: join rejected: %w", err)
	}
	m.mu.Lock()
	if m.subs[a.Topic] == nil {
		m.subs[a.Topic] = make(map[wire.Addr]struct{})
	}
	m.subs[a.Topic][src] = struct{}{}
	var replay [][]byte
	if a.Replay {
		replay = append(replay, m.retained[a.Topic]...)
	}
	m.mu.Unlock()

	if err := m.core.JoinGroup(lookup.GroupID(a.Topic), env.LocalAddr(), src); err != nil {
		return err
	}
	// Replay retained messages to the new subscriber.
	hdr := wire.ILPHeader{Service: wire.SvcPubSub, Conn: 0, Data: HeaderData(kindDeliver, a.Topic)}
	for _, msg := range replay {
		if err := env.Send(src, &hdr, msg); err != nil {
			env.Logf("pubsub: replay to %s failed: %v", src, err)
		}
	}
	return nil
}

func (m *Module) unsubscribe(env sn.Env, src wire.Addr, topic string) error {
	m.mu.Lock()
	if hs, ok := m.subs[topic]; ok {
		delete(hs, src)
		if len(hs) == 0 {
			delete(m.subs, topic)
		}
	}
	m.mu.Unlock()
	return m.core.LeaveGroup(lookup.GroupID(topic), env.LocalAddr(), src)
}

// registerSender records the host as a sender and performs the SN-level
// registration with the edomain core on first use ("before a host can
// send to a group it must first inform its first-hop SN", §6.2).
func (m *Module) registerSender(env sn.Env, src wire.Addr, topic string) error {
	m.mu.Lock()
	if m.senders[topic] == nil {
		m.senders[topic] = make(map[wire.Addr]struct{})
	}
	m.senders[topic][src] = struct{}{}
	needSN := m.snSender[topic] == nil
	m.mu.Unlock()

	if !needSN {
		return nil
	}
	_, events, cancel, err := m.core.RegisterSender(lookup.GroupID(topic), env.LocalAddr())
	if err != nil {
		return fmt.Errorf("pubsub: SN sender registration: %w", err)
	}
	// Drain the member watch; MemberSNs is queried live at fan-out time,
	// but consuming the channel keeps the core's notifier unblocked.
	go func() {
		for range events {
		}
	}()
	m.mu.Lock()
	if m.snSender[topic] != nil {
		m.mu.Unlock()
		cancel()
		return nil
	}
	m.snSender[topic] = &senderState{cancel: cancel}
	m.mu.Unlock()
	return nil
}

// --- Data plane --------------------------------------------------------------

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	kind, topic, err := parseHeader(pkt.Hdr.Data)
	if err != nil {
		return sn.Decision{}, err
	}
	switch kind {
	case kindPublish:
		m.mu.Lock()
		_, isSender := m.senders[topic][pkt.Src]
		m.mu.Unlock()
		if !isSender {
			return sn.Decision{}, ErrNotSender
		}
		m.retain(topic, pkt.Payload)
		m.deliverLocal(env, topic, pkt.Payload)
		intra := wire.ILPHeader{Service: wire.SvcPubSub, Conn: pkt.Hdr.Conn, Data: HeaderData(kindIntra, topic)}
		if err := m.fan.SpreadIntra(env, lookup.GroupID(topic), &intra, pkt.Payload); err != nil {
			env.Logf("pubsub: intra spread: %v", err)
		}
		inter := wire.ILPHeader{Service: wire.SvcPubSub, Conn: pkt.Hdr.Conn, Data: HeaderData(kindInter, topic)}
		if err := m.fan.SpreadInter(env, lookup.GroupID(topic), &inter, pkt.Payload, env.LocalAddr()); err != nil {
			env.Logf("pubsub: inter spread: %v", err)
		}
		return sn.Decision{}, nil

	case kindIntra:
		m.retain(topic, pkt.Payload)
		m.deliverLocal(env, topic, pkt.Payload)
		return sn.Decision{}, nil

	case kindInter:
		// Entry point into this edomain: deliver locally and fan to the
		// edomain's member SNs.
		m.retain(topic, pkt.Payload)
		m.deliverLocal(env, topic, pkt.Payload)
		intra := wire.ILPHeader{Service: wire.SvcPubSub, Conn: pkt.Hdr.Conn, Data: HeaderData(kindIntra, topic)}
		if err := m.fan.SpreadIntra(env, lookup.GroupID(topic), &intra, pkt.Payload); err != nil {
			env.Logf("pubsub: inter->intra spread: %v", err)
		}
		return sn.Decision{}, nil

	default:
		return sn.Decision{}, fmt.Errorf("pubsub: unexpected kind %d at SN", kind)
	}
}

func (m *Module) retain(topic string, msg []byte) {
	cp := append([]byte(nil), msg...)
	m.mu.Lock()
	defer m.mu.Unlock()
	r := append(m.retained[topic], cp)
	if len(r) > RetainedPerTopic {
		r = r[len(r)-RetainedPerTopic:]
	}
	m.retained[topic] = r
}

func (m *Module) deliverLocal(env sn.Env, topic string, msg []byte) {
	m.mu.Lock()
	targets := make([]wire.Addr, 0, len(m.subs[topic]))
	for h := range m.subs[topic] {
		targets = append(targets, h)
	}
	m.mu.Unlock()
	hdr := wire.ILPHeader{Service: wire.SvcPubSub, Conn: 0, Data: HeaderData(kindDeliver, topic)}
	for _, h := range targets {
		if err := env.Send(h, &hdr, msg); err != nil {
			env.Logf("pubsub: deliver to %s failed: %v", h, err)
		}
	}
}

// Subscribers returns the local subscribers of a topic (tests).
func (m *Module) Subscribers(topic string) []wire.Addr {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]wire.Addr, 0, len(m.subs[topic]))
	for h := range m.subs[topic] {
		out = append(out, h)
	}
	return out
}
