package pubsub

import (
	"fmt"
	"sync"

	"interedge/internal/host"
	"interedge/internal/wire"
)

// Handler receives one delivered message.
type Handler func(topic string, msg []byte)

type subState struct {
	auth   []byte
	replay bool
	fn     Handler
}

// Client is the host-side pub/sub support (§3.1: the host component
// implements "client-side support for services — such as pub/sub … that
// require host logic"). It tracks the host's subscriptions and sender
// registrations so they can be re-established after an SN failure —
// the host-driven state reconstruction of §3.3.
type Client struct {
	h *host.Host

	mu      sync.Mutex
	conn    *host.Conn
	subs    map[string]subState
	senders map[string]struct{}
}

// NewClient attaches pub/sub client logic to a host.
func NewClient(h *host.Host) (*Client, error) {
	c := &Client{
		h:       h,
		subs:    make(map[string]subState),
		senders: make(map[string]struct{}),
	}
	h.OnService(wire.SvcPubSub, c.onMessage)
	return c, nil
}

func (c *Client) onMessage(msg host.Message) {
	kind, topic, err := parseHeader(msg.Hdr.Data)
	if err != nil || kind != kindDeliver {
		return
	}
	c.mu.Lock()
	st, ok := c.subs[topic]
	c.mu.Unlock()
	if ok {
		st.fn(topic, msg.Payload)
	}
}

// Subscribe joins a topic with the given credentials and registers fn for
// deliveries. auth may be nil for open topics. When replay is true, the
// SN replays its retained recent messages.
func (c *Client) Subscribe(topic string, auth []byte, replay bool, fn Handler) error {
	// Install the handler before invoking: replayed messages can arrive
	// ahead of the control reply.
	c.mu.Lock()
	_, existed := c.subs[topic]
	c.subs[topic] = subState{auth: auth, replay: replay, fn: fn}
	c.mu.Unlock()
	if _, err := c.h.InvokeFirstHop(wire.SvcPubSub, "subscribe", subscribeArgs{
		Topic: topic, Auth: auth, Replay: replay,
	}); err != nil {
		if !existed {
			c.mu.Lock()
			delete(c.subs, topic)
			c.mu.Unlock()
		}
		return err
	}
	return nil
}

// Unsubscribe leaves a topic.
func (c *Client) Unsubscribe(topic string) error {
	c.mu.Lock()
	delete(c.subs, topic)
	c.mu.Unlock()
	_, err := c.h.InvokeFirstHop(wire.SvcPubSub, "unsubscribe", topicArgs{Topic: topic})
	return err
}

// RegisterSender announces the host's intent to publish to a topic (§6.2
// sender registration).
func (c *Client) RegisterSender(topic string) error {
	if _, err := c.h.InvokeFirstHop(wire.SvcPubSub, "register_sender", topicArgs{Topic: topic}); err != nil {
		return err
	}
	c.mu.Lock()
	c.senders[topic] = struct{}{}
	c.mu.Unlock()
	return nil
}

// Publish sends a message to a topic. The host must have registered as a
// sender first.
func (c *Client) Publish(topic string, msg []byte) error {
	conn, err := c.pubConn()
	if err != nil {
		return err
	}
	return conn.Send(HeaderData(kindPublish, topic), msg)
}

func (c *Client) pubConn() (*host.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		return c.conn, nil
	}
	conn, err := c.h.NewConn(wire.SvcPubSub)
	if err != nil {
		return nil, fmt.Errorf("pubsub: open publish connection: %w", err)
	}
	c.conn = conn
	return conn, nil
}

// Reestablish re-issues every subscription and sender registration against
// the host's (possibly new) first-hop SN — §3.3's host-driven state
// reconstruction after an SN failure.
func (c *Client) Reestablish() error {
	c.mu.Lock()
	subs := make(map[string]subState, len(c.subs))
	for t, st := range c.subs {
		subs[t] = st
	}
	senders := make([]string, 0, len(c.senders))
	for t := range c.senders {
		senders = append(senders, t)
	}
	// The publish connection may be pinned to the failed SN; reopen lazily.
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.mu.Unlock()

	for topic, st := range subs {
		if _, err := c.h.InvokeFirstHop(wire.SvcPubSub, "subscribe", subscribeArgs{
			Topic: topic, Auth: st.auth, Replay: st.replay,
		}); err != nil {
			return fmt.Errorf("pubsub: re-subscribe %q: %w", topic, err)
		}
	}
	for _, topic := range senders {
		if _, err := c.h.InvokeFirstHop(wire.SvcPubSub, "register_sender", topicArgs{Topic: topic}); err != nil {
			return fmt.Errorf("pubsub: re-register sender %q: %w", topic, err)
		}
	}
	return nil
}
