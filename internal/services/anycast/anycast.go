// Package anycast implements InterEdge anycast delivery (§6.2): a packet
// sent to a group reaches exactly one member, preferring members attached
// to the ingress SN, then members elsewhere in the edomain, then the
// nearest remote member edomain. Joins carry owner-signed authorizations;
// senders register before sending.
//
// Once a member is chosen for a flow, the SN installs a decision-cache
// rule so the flow sticks to that member on the fast path (anycast
// affinity) until the entry is evicted or invalidated.
package anycast

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"interedge/internal/edomain"
	"interedge/internal/host"
	"interedge/internal/lookup"
	"interedge/internal/peering"
	"interedge/internal/sn"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// Packet kinds in the first byte of header data.
const (
	kindSend    byte = iota // host → first-hop SN
	kindForward             // SN → chosen SN (intra-edomain or via transit)
	kindDeliver             // SN → chosen member host
)

// Errors returned by the module.
var (
	ErrNotSender   = errors.New("anycast: host is not a registered sender")
	ErrNoMembers   = errors.New("anycast: group has no members")
	ErrBadHeader   = errors.New("anycast: malformed header data")
	ErrUnknownPeer = errors.New("anycast: request from host without verified identity")
)

// HeaderData encodes (kind, group).
func HeaderData(kind byte, group string) []byte {
	return append([]byte{kind}, group...)
}

func parseHeader(data []byte) (byte, string, error) {
	if len(data) < 1 {
		return 0, "", ErrBadHeader
	}
	return data[0], string(data[1:]), nil
}

// Module is the anycast service module.
type Module struct {
	core   *edomain.Core
	fabric *peering.Fabric
	global *lookup.Service

	mu       sync.Mutex
	members  map[string]map[wire.Addr]struct{}
	senders  map[string]map[wire.Addr]struct{}
	snSender map[string]func()
}

// New creates the anycast module.
func New(core *edomain.Core, fabric *peering.Fabric, global *lookup.Service) *Module {
	return &Module{
		core:     core,
		fabric:   fabric,
		global:   global,
		members:  make(map[string]map[wire.Addr]struct{}),
		senders:  make(map[string]map[wire.Addr]struct{}),
		snSender: make(map[string]func()),
	}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcAnycast }

// Name implements sn.Module.
func (*Module) Name() string { return "anycast" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// Stop implements sn.Stopper.
func (m *Module) Stop() error {
	m.mu.Lock()
	cancels := make([]func(), 0, len(m.snSender))
	for _, c := range m.snSender {
		cancels = append(cancels, c)
	}
	m.snSender = make(map[string]func())
	m.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	return nil
}

type joinArgs struct {
	Group string `json:"group"`
	Auth  []byte `json:"auth,omitempty"`
}

type groupArgs struct {
	Group string `json:"group"`
}

// HandleControl implements sn.ControlHandler: join, leave, register_sender.
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "join":
		var a joinArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		identity, ok := env.PeerIdentity(src)
		if !ok {
			return nil, ErrUnknownPeer
		}
		if err := m.global.ValidateJoin(lookup.GroupID(a.Group), identity, a.Auth); err != nil {
			return nil, fmt.Errorf("anycast: join rejected: %w", err)
		}
		m.mu.Lock()
		if m.members[a.Group] == nil {
			m.members[a.Group] = make(map[wire.Addr]struct{})
		}
		m.members[a.Group][src] = struct{}{}
		m.mu.Unlock()
		return nil, m.core.JoinGroup(lookup.GroupID(a.Group), env.LocalAddr(), src)

	case "leave":
		var a groupArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		m.mu.Lock()
		if hs, ok := m.members[a.Group]; ok {
			delete(hs, src)
		}
		m.mu.Unlock()
		return nil, m.core.LeaveGroup(lookup.GroupID(a.Group), env.LocalAddr(), src)

	case "register_sender":
		var a groupArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return nil, m.registerSender(env, src, a.Group)

	default:
		return nil, fmt.Errorf("anycast: unknown op %q", op)
	}
}

func (m *Module) registerSender(env sn.Env, src wire.Addr, group string) error {
	m.mu.Lock()
	if m.senders[group] == nil {
		m.senders[group] = make(map[wire.Addr]struct{})
	}
	m.senders[group][src] = struct{}{}
	needSN := m.snSender[group] == nil
	m.mu.Unlock()
	if !needSN {
		return nil
	}
	_, events, cancel, err := m.core.RegisterSender(lookup.GroupID(group), env.LocalAddr())
	if err != nil {
		return err
	}
	go func() {
		for range events {
		}
	}()
	m.mu.Lock()
	if m.snSender[group] != nil {
		m.mu.Unlock()
		cancel()
		return nil
	}
	m.snSender[group] = cancel
	m.mu.Unlock()
	return nil
}

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	kind, group, err := parseHeader(pkt.Hdr.Data)
	if err != nil {
		return sn.Decision{}, err
	}
	switch kind {
	case kindSend:
		m.mu.Lock()
		_, isSender := m.senders[group][pkt.Src]
		m.mu.Unlock()
		if !isSender {
			return sn.Decision{}, ErrNotSender
		}
		return m.route(env, group, pkt)
	case kindForward:
		return m.route(env, group, pkt)
	default:
		return sn.Decision{}, fmt.Errorf("anycast: unexpected kind %d", kind)
	}
}

// route picks one member by proximity: local host member → member SN in
// this edomain → nearest remote member edomain.
func (m *Module) route(env sn.Env, group string, pkt *sn.Packet) (sn.Decision, error) {
	// 1. Local member host attached to this SN.
	if target, ok := m.localMember(group); ok {
		hdr := wire.ILPHeader{Service: wire.SvcAnycast, Conn: pkt.Hdr.Conn, Data: HeaderData(kindDeliver, group)}
		enc, err := hdr.Encode()
		if err != nil {
			return sn.Decision{}, err
		}
		return sn.Decision{
			Forwards: []sn.Forward{{Dst: target, Hdr: &hdr}},
			Rules: []sn.Rule{{
				Key:    pkt.Key(),
				Action: cache.Action{Forward: []wire.Addr{target}, RewriteHeader: enc},
			}},
		}, nil
	}
	local := env.LocalAddr()
	// 2. Another member SN inside this edomain.
	for _, snAddr := range m.core.MemberSNs(lookup.GroupID(group)) {
		if snAddr == local {
			continue
		}
		hdr := wire.ILPHeader{Service: wire.SvcAnycast, Conn: pkt.Hdr.Conn, Data: HeaderData(kindForward, group)}
		enc, err := hdr.Encode()
		if err != nil {
			return sn.Decision{}, err
		}
		return sn.Decision{
			Forwards: []sn.Forward{{Dst: snAddr, Hdr: &hdr}},
			Rules: []sn.Rule{{
				Key:    pkt.Key(),
				Action: cache.Action{Forward: []wire.Addr{snAddr}, RewriteHeader: enc},
			}},
		}, nil
	}
	// 3. Nearest remote member edomain (deterministic: lowest ID).
	if m.fabric != nil {
		remotes := m.core.RemoteMemberEdomains(lookup.GroupID(group))
		if len(remotes) > 0 {
			sort.Slice(remotes, func(i, j int) bool { return remotes[i] < remotes[j] })
			gw, err := m.fabric.RemoteGatewayOf(m.core.ID(), remotes[0])
			if err != nil {
				return sn.Decision{}, err
			}
			hdr := wire.ILPHeader{Service: wire.SvcAnycast, Conn: pkt.Hdr.Conn, Data: HeaderData(kindForward, group)}
			if err := peering.SendTransit(env, m.fabric, gw, pkt.Src, &hdr, pkt.Payload); err != nil {
				return sn.Decision{}, err
			}
			return sn.Decision{}, nil
		}
	}
	return sn.Decision{}, ErrNoMembers
}

// localMember returns a deterministic local member of the group.
func (m *Module) localMember(group string) (wire.Addr, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	hs := m.members[group]
	if len(hs) == 0 {
		return wire.Addr{}, false
	}
	all := make([]wire.Addr, 0, len(hs))
	for h := range hs {
		all = append(all, h)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
	return all[0], true
}

// --- Host-side client -------------------------------------------------------

// Handler receives anycast deliveries.
type Handler func(group string, payload []byte)

// Client is the host-side anycast logic.
type Client struct {
	h *host.Host

	mu      sync.Mutex
	conn    *host.Conn
	handler map[string]Handler
}

// NewClient attaches anycast client logic to a host.
func NewClient(h *host.Host) *Client {
	c := &Client{h: h, handler: make(map[string]Handler)}
	h.OnService(wire.SvcAnycast, c.onMessage)
	return c
}

func (c *Client) onMessage(msg host.Message) {
	kind, group, err := parseHeader(msg.Hdr.Data)
	if err != nil || kind != kindDeliver {
		return
	}
	c.mu.Lock()
	fn, ok := c.handler[group]
	c.mu.Unlock()
	if ok {
		fn(group, msg.Payload)
	}
}

// Join joins an anycast group as a member.
func (c *Client) Join(group string, auth []byte, fn Handler) error {
	c.mu.Lock()
	c.handler[group] = fn
	c.mu.Unlock()
	if _, err := c.h.InvokeFirstHop(wire.SvcAnycast, "join", joinArgs{Group: group, Auth: auth}); err != nil {
		c.mu.Lock()
		delete(c.handler, group)
		c.mu.Unlock()
		return err
	}
	return nil
}

// Leave leaves a group.
func (c *Client) Leave(group string) error {
	c.mu.Lock()
	delete(c.handler, group)
	c.mu.Unlock()
	_, err := c.h.InvokeFirstHop(wire.SvcAnycast, "leave", groupArgs{Group: group})
	return err
}

// RegisterSender registers intent to send to a group.
func (c *Client) RegisterSender(group string) error {
	_, err := c.h.InvokeFirstHop(wire.SvcAnycast, "register_sender", groupArgs{Group: group})
	return err
}

// Send delivers a payload to exactly one group member.
func (c *Client) Send(group string, payload []byte) error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		var err error
		conn, err = c.h.NewConn(wire.SvcAnycast)
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.conn = conn
		c.mu.Unlock()
	}
	return conn.Send(HeaderData(kindSend, group), payload)
}
