package anycast

import (
	"sync"
	"testing"
	"time"

	"interedge/internal/cryptutil"
	"interedge/internal/lab"
	"interedge/internal/lookup"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

type world struct {
	topo  *lab.Topology
	owner cryptutil.SigningKeypair
}

func newWorld(t *testing.T) *world {
	t.Helper()
	topo := lab.New()
	setup := func(node *sn.SN, ed *lab.Edomain) error {
		return node.Register(New(ed.Core, topo.Fabric, topo.Global))
	}
	for _, id := range []lookup.EdomainID{"ed-a", "ed-b"} {
		if _, err := topo.AddEdomain(id, 2, setup); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	owner, err := cryptutil.NewSigningKeypair()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return &world{topo: topo, owner: owner}
}

func (w *world) openGroup(t *testing.T, g string) {
	t.Helper()
	if err := w.topo.Global.CreateGroup(lookup.GroupID(g), w.owner.Public); err != nil {
		t.Fatal(err)
	}
	if err := w.topo.Global.PostOpenStatement(lookup.GroupID(g), lookup.SignOpenStatement(w.owner, lookup.GroupID(g))); err != nil {
		t.Fatal(err)
	}
}

type sink struct {
	mu sync.Mutex
	n  int
	ch chan string
}

func newSink() *sink { return &sink{ch: make(chan string, 64)} }

func (s *sink) handler(group string, payload []byte) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- string(payload)
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func TestAnycastDeliversToExactlyOne(t *testing.T) {
	w := newWorld(t)
	w.openGroup(t, "resolver")
	edA, _ := w.topo.Edomain("ed-a")
	edB, _ := w.topo.Edomain("ed-b")

	// Three members spread around.
	sinks := make([]*sink, 3)
	for i, spot := range []struct {
		ed  *lab.Edomain
		idx int
	}{{edA, 0}, {edA, 1}, {edB, 0}} {
		h, err := w.topo.NewHost(spot.ed, spot.idx)
		if err != nil {
			t.Fatal(err)
		}
		cl := NewClient(h)
		sinks[i] = newSink()
		if err := cl.Join("resolver", nil, sinks[i].handler); err != nil {
			t.Fatal(err)
		}
	}
	sender, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	scl := NewClient(sender)
	if err := scl.RegisterSender("resolver"); err != nil {
		t.Fatal(err)
	}
	if err := scl.Send("resolver", []byte("query")); err != nil {
		t.Fatal(err)
	}
	// Exactly one member receives it.
	received := 0
	deadline := time.After(3 * time.Second)
	select {
	case <-sinks[0].ch:
		received++
	case <-sinks[1].ch:
		received++
	case <-sinks[2].ch:
		received++
	case <-deadline:
		t.Fatal("no member received the anycast packet")
	}
	time.Sleep(150 * time.Millisecond)
	total := sinks[0].count() + sinks[1].count() + sinks[2].count()
	if total != 1 {
		t.Fatalf("anycast delivered to %d members, want exactly 1", total)
	}
	// The local member (same SN as the sender) should have won.
	if sinks[0].count() != 1 {
		t.Fatalf("nearest member did not win (counts: %d %d %d)",
			sinks[0].count(), sinks[1].count(), sinks[2].count())
	}
}

func TestAnycastFallsBackToEdomainThenRemote(t *testing.T) {
	w := newWorld(t)
	w.openGroup(t, "g")
	edA, _ := w.topo.Edomain("ed-a")
	edB, _ := w.topo.Edomain("ed-b")

	// Only remote members exist: one in ed-b.
	remote, err := w.topo.NewHost(edB, 1)
	if err != nil {
		t.Fatal(err)
	}
	rcl := NewClient(remote)
	rs := newSink()
	if err := rcl.Join("g", nil, rs.handler); err != nil {
		t.Fatal(err)
	}
	sender, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	scl := NewClient(sender)
	if err := scl.RegisterSender("g"); err != nil {
		t.Fatal(err)
	}
	if err := scl.Send("g", []byte("far")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-rs.ch:
		if got != "far" {
			t.Fatalf("payload %q", got)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("remote member never received anycast")
	}
}

func TestAnycastNoMembersErrors(t *testing.T) {
	w := newWorld(t)
	w.openGroup(t, "empty")
	edA, _ := w.topo.Edomain("ed-a")
	sender, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	scl := NewClient(sender)
	if err := scl.RegisterSender("empty"); err != nil {
		t.Fatal(err)
	}
	if err := scl.Send("empty", []byte("void")); err != nil {
		t.Fatal(err)
	}
	node := edA.SNs[0]
	deadline := time.Now().Add(3 * time.Second)
	for node.Counters().ModuleErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("send to empty group never errored")
		}
		time.Sleep(time.Millisecond)
	}
}

// Anycast affinity: once routed, the flow's packets ride the decision
// cache to the same member.
func TestAnycastFlowAffinityViaCache(t *testing.T) {
	w := newWorld(t)
	w.openGroup(t, "sticky")
	edA, _ := w.topo.Edomain("ed-a")
	member, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	mcl := NewClient(member)
	s := newSink()
	if err := mcl.Join("sticky", nil, s.handler); err != nil {
		t.Fatal(err)
	}
	sender, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	scl := NewClient(sender)
	if err := scl.RegisterSender("sticky"); err != nil {
		t.Fatal(err)
	}
	// First packet takes the slow path and installs the affinity rule
	// (rules are installed before the forward is sent, so once the member
	// sees the packet the rule is live).
	if err := scl.Send("sticky", []byte{0}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for s.count() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first packet never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < 5; i++ {
		if err := scl.Send("sticky", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline = time.Now().Add(3 * time.Second)
	for s.count() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("received %d/5", s.count())
		}
		time.Sleep(time.Millisecond)
	}
	// Packets 2..5 must have hit the fast path.
	c := edA.SNs[0].Counters()
	if c.FastPathHits < 4 {
		t.Fatalf("FastPathHits = %d, want >= 4 (affinity not cached)", c.FastPathHits)
	}
	_ = wire.SvcAnycast
}
