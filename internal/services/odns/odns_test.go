package odns

import (
	"testing"

	"interedge/internal/cryptutil"
	"interedge/internal/lab"
	"interedge/internal/wire"
)

// world: one edomain, SN 0 is the client's relay, SN 1 is the resolver.
func newWorld(t *testing.T, zones map[string]wire.Addr) (*lab.Topology, *lab.Edomain, cryptutil.StaticKeypair, *Module, *Module) {
	t.Helper()
	topo := lab.New()
	resolverKey, err := cryptutil.NewStaticKeypair()
	if err != nil {
		t.Fatal(err)
	}
	ed, err := topo.AddEdomain("ed-a", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	relayMod := NewRelay(ed.SNs[1].Addr())
	resolverMod := NewResolver(resolverKey, zones)
	if err := ed.SNs[0].Register(relayMod); err != nil {
		t.Fatal(err)
	}
	if err := ed.SNs[1].Register(resolverMod); err != nil {
		t.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed, resolverKey, relayMod, resolverMod
}

func TestObliviousQueryResolves(t *testing.T) {
	target := wire.MustAddr("fd00::beef")
	topo, ed, resolverKey, _, _ := newWorld(t, map[string]wire.Addr{"example.org": target})
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(client, resolverKey.PublicKeyBytes())
	got, err := c.Query("example.org")
	if err != nil {
		t.Fatal(err)
	}
	if got != target {
		t.Fatalf("resolved %s, want %s", got, target)
	}
}

func TestUnknownName(t *testing.T) {
	topo, ed, resolverKey, _, _ := newWorld(t, map[string]wire.Addr{})
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(client, resolverKey.PublicKeyBytes())
	if _, err := c.Query("nonexistent.example"); err != ErrNameNotFound {
		t.Fatalf("err = %v, want ErrNameNotFound", err)
	}
}

// The privacy core of oDNS: the resolver must never observe the client's
// address — only the relay's.
func TestResolverNeverSeesClient(t *testing.T) {
	target := wire.MustAddr("fd00::beef")
	topo, ed, resolverKey, _, resolverMod := newWorld(t, map[string]wire.Addr{"example.org": target})
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(client, resolverKey.PublicKeyBytes())
	if _, err := c.Query("example.org"); err != nil {
		t.Fatal(err)
	}
	for _, src := range resolverMod.SeenSources() {
		if src == client.Addr() {
			t.Fatal("resolver observed the client address")
		}
		if src != ed.SNs[0].Addr() {
			t.Fatalf("resolver observed unexpected source %s", src)
		}
	}
}

// The relay forwards the query still sealed: a relay that tries to open
// it with any key it holds fails. We verify structurally: the sealed
// query differs from the plaintext and cannot be opened by a random key.
func TestRelayCannotReadQuery(t *testing.T) {
	kp, _ := cryptutil.NewStaticKeypair()
	otherKey, _ := cryptutil.NewStaticKeypair()
	plain := append(append([]byte(nil), kp.PublicKeyBytes()...), []byte{0}...)
	plain = append(plain, "secret.example"...)
	sealed, err := cryptutil.SealTo(kp.PublicKeyBytes(), plain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cryptutil.OpenFrom(otherKey.Private, sealed); err == nil {
		t.Fatal("non-resolver key opened the query")
	}
}

func TestMultipleConcurrentQueries(t *testing.T) {
	zones := map[string]wire.Addr{
		"a.example": wire.MustAddr("fd00::a"),
		"b.example": wire.MustAddr("fd00::b"),
		"c.example": wire.MustAddr("fd00::c"),
	}
	topo, ed, resolverKey, _, _ := newWorld(t, zones)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(client, resolverKey.PublicKeyBytes())
	type result struct {
		name string
		addr wire.Addr
		err  error
	}
	results := make(chan result, len(zones))
	for name := range zones {
		go func(name string) {
			addr, err := c.Query(name)
			results <- result{name, addr, err}
		}(name)
	}
	for range zones {
		r := <-results
		if r.err != nil {
			t.Fatalf("query %s: %v", r.name, r.err)
		}
		if r.addr != zones[r.name] {
			t.Fatalf("query %s = %s, want %s", r.name, r.addr, zones[r.name])
		}
	}
}

func TestRelayWithoutResolverConfigured(t *testing.T) {
	topo := lab.New()
	ed, err := topo.AddEdomain("ed-a", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Relay with an unset resolver address.
	if err := ed.SNs[0].Register(NewRelay(wire.Addr{})); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := cryptutil.NewStaticKeypair()
	c := NewClient(client, key.PublicKeyBytes())
	c.timeout = 300 * 1e6 // 300ms
	if _, err := c.Query("x.example"); err != ErrQueryTimeout {
		t.Fatalf("err = %v, want ErrQueryTimeout", err)
	}
}
