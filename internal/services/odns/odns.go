// Package odns implements an oblivious-DNS service (§6.2, modeled on [58]):
// the client's first-hop SN acts as a relay that strips client identity,
// and a separate resolver SN answers queries it cannot attribute to a
// client. Queries are sealed to the resolver's public key, so the relay
// never sees the name being resolved; answers are sealed to a per-query
// response key chosen by the client, so the relay never sees the answer
// either. The resolver, in turn, only ever sees the relay's address.
//
//	client --{box_resolver(respPub ‖ name)}--> relay SN --{relayID, box}--> resolver SN
//	client <--{box_respPub(addr)}------------- relay SN <--{relayID, box}-- resolver SN
package odns

import (
	"crypto/ecdh"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"interedge/internal/cryptutil"
	"interedge/internal/host"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Packet kinds in the first byte of header data.
const (
	kindQuery       byte = iota // client → relay SN (payload: sealed query)
	kindRelayQuery              // relay SN → resolver SN (data: relayID)
	kindRelayAnswer             // resolver SN → relay SN (data: relayID)
	kindAnswer                  // relay SN → client (payload: sealed answer)
)

// Errors returned by the service.
var (
	ErrBadHeader    = errors.New("odns: malformed header data")
	ErrNotResolver  = errors.New("odns: this SN is not a resolver")
	ErrNoResolver   = errors.New("odns: relay has no resolver configured")
	ErrNameNotFound = errors.New("odns: name not found")
	ErrQueryTimeout = errors.New("odns: query timed out")
)

// Module is the oDNS service module. On a relay SN, construct with
// NewRelay; on a resolver SN, with NewResolver.
type Module struct {
	resolverKey  *ecdh.PrivateKey // non-nil on resolver SNs
	zones        map[string]wire.Addr
	resolverAddr wire.Addr // relay: where to forward queries

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]pendingQuery // relay: relayID -> client
	// seenClients records, on the resolver, every source address observed
	// — used by tests to prove the resolver never learns client addresses.
	seenClients map[wire.Addr]struct{}
}

type pendingQuery struct {
	client wire.Addr
	conn   wire.ConnectionID
}

// NewRelay creates the relay-side module, forwarding sealed queries to the
// resolver SN at resolverAddr.
func NewRelay(resolverAddr wire.Addr) *Module {
	return &Module{
		resolverAddr: resolverAddr,
		pending:      make(map[uint64]pendingQuery),
		seenClients:  make(map[wire.Addr]struct{}),
	}
}

// NewResolver creates the resolver-side module holding the resolver
// private key and its zone data.
func NewResolver(key cryptutil.StaticKeypair, zones map[string]wire.Addr) *Module {
	z := make(map[string]wire.Addr, len(zones))
	for k, v := range zones {
		z[k] = v
	}
	return &Module{
		resolverKey: key.Private,
		zones:       z,
		pending:     make(map[uint64]pendingQuery),
		seenClients: make(map[wire.Addr]struct{}),
	}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcODNS }

// Name implements sn.Module.
func (*Module) Name() string { return "odns" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// SeenSources lists the source addresses this module has observed
// (test-only visibility for the privacy property).
func (m *Module) SeenSources() []wire.Addr {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]wire.Addr, 0, len(m.seenClients))
	for a := range m.seenClients {
		out = append(out, a)
	}
	return out
}

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) < 1 {
		return sn.Decision{}, ErrBadHeader
	}
	m.mu.Lock()
	m.seenClients[pkt.Src] = struct{}{}
	m.mu.Unlock()

	switch pkt.Hdr.Data[0] {
	case kindQuery:
		return m.relayQuery(env, pkt)
	case kindRelayQuery:
		return m.resolve(env, pkt)
	case kindRelayAnswer:
		return m.relayAnswer(env, pkt)
	default:
		return sn.Decision{}, fmt.Errorf("odns: unexpected kind %d", pkt.Hdr.Data[0])
	}
}

// relayQuery (relay SN): assign a relay ID, remember the client, forward
// the still-sealed query to the resolver.
func (m *Module) relayQuery(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if !m.resolverAddr.IsValid() {
		return sn.Decision{}, ErrNoResolver
	}
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.pending[id] = pendingQuery{client: pkt.Src, conn: pkt.Hdr.Conn}
	m.mu.Unlock()

	data := make([]byte, 9)
	data[0] = kindRelayQuery
	binary.BigEndian.PutUint64(data[1:], id)
	hdr := wire.ILPHeader{Service: wire.SvcODNS, Conn: pkt.Hdr.Conn, Data: data}
	return sn.Decision{Forwards: []sn.Forward{{Dst: m.resolverAddr, Hdr: &hdr}}}, nil
}

// resolve (resolver SN): open the sealed query, look up the name, seal the
// answer to the client's response key, return to the relay.
func (m *Module) resolve(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if m.resolverKey == nil {
		return sn.Decision{}, ErrNotResolver
	}
	if len(pkt.Hdr.Data) != 9 {
		return sn.Decision{}, ErrBadHeader
	}
	plain, err := cryptutil.OpenFrom(m.resolverKey, pkt.Payload)
	if err != nil {
		return sn.Decision{}, fmt.Errorf("odns: open query: %w", err)
	}
	if len(plain) < 33 {
		return sn.Decision{}, ErrBadHeader
	}
	respPub := plain[:32]
	name := string(plain[32+1:])
	// plain[32] is a reserved flags byte.

	var answer [17]byte
	if addr, ok := m.zones[name]; ok {
		answer[0] = 1
		a := addr.As16()
		copy(answer[1:], a[:])
	}
	sealed, err := cryptutil.SealTo(respPub, answer[:])
	if err != nil {
		return sn.Decision{}, err
	}
	data := append([]byte(nil), pkt.Hdr.Data...)
	data[0] = kindRelayAnswer
	hdr := wire.ILPHeader{Service: wire.SvcODNS, Conn: pkt.Hdr.Conn, Data: data}
	return sn.Decision{Forwards: []sn.Forward{{Dst: pkt.Src, Hdr: &hdr, Payload: sealed}}}, nil
}

// relayAnswer (relay SN): map the relay ID back to the client and return
// the still-sealed answer.
func (m *Module) relayAnswer(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) != 9 {
		return sn.Decision{}, ErrBadHeader
	}
	id := binary.BigEndian.Uint64(pkt.Hdr.Data[1:])
	m.mu.Lock()
	pq, ok := m.pending[id]
	delete(m.pending, id)
	m.mu.Unlock()
	if !ok {
		return sn.Decision{}, fmt.Errorf("odns: unknown relay ID %d", id)
	}
	hdr := wire.ILPHeader{Service: wire.SvcODNS, Conn: pq.conn, Data: []byte{kindAnswer}}
	return sn.Decision{Forwards: []sn.Forward{{Dst: pq.client, Hdr: &hdr}}}, nil
}

// --- Client ------------------------------------------------------------------

// Client performs oblivious queries from a host.
type Client struct {
	h           *host.Host
	resolverPub []byte
	timeout     time.Duration
}

// NewClient creates an oDNS client that trusts the resolver public key.
func NewClient(h *host.Host, resolverPub []byte) *Client {
	return &Client{h: h, resolverPub: resolverPub, timeout: 3 * time.Second}
}

// Query resolves a name obliviously via the host's first-hop SN.
func (c *Client) Query(name string) (wire.Addr, error) {
	respKey, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return wire.Addr{}, err
	}
	plain := make([]byte, 0, 32+1+len(name))
	plain = append(plain, respKey.PublicKey().Bytes()...)
	plain = append(plain, 0) // flags
	plain = append(plain, name...)
	sealed, err := cryptutil.SealTo(c.resolverPub, plain)
	if err != nil {
		return wire.Addr{}, err
	}
	conn, err := c.h.NewConn(wire.SvcODNS)
	if err != nil {
		return wire.Addr{}, err
	}
	defer conn.Close()
	if err := conn.Send([]byte{kindQuery}, sealed); err != nil {
		return wire.Addr{}, err
	}
	select {
	case msg, ok := <-conn.Receive():
		if !ok {
			return wire.Addr{}, ErrQueryTimeout
		}
		answer, err := cryptutil.OpenFrom(respKey, msg.Payload)
		if err != nil {
			return wire.Addr{}, fmt.Errorf("odns: open answer: %w", err)
		}
		if len(answer) != 17 || answer[0] == 0 {
			return wire.Addr{}, ErrNameNotFound
		}
		var b [16]byte
		copy(b[:], answer[1:])
		return netip.AddrFrom16(b).Unmap(), nil
	case <-time.After(c.timeout):
		return wire.Addr{}, ErrQueryTimeout
	}
}
