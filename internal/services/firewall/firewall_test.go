package firewall

import (
	"encoding/json"
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/wire"
)

func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain) {
	t.Helper()
	topo := lab.New()
	ed, err := topo.AddEdomain("ed-a", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.SNs[0].Register(New()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed
}

func TestDefaultAllowForwards(t *testing.T) {
	topo, ed := newWorld(t)
	server, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan host.Message, 1)
	server.OnService(wire.SvcFirewall, func(msg host.Message) { got <- msg })
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := client.NewConn(wire.SvcFirewall)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(HeaderData(server.Addr()), []byte("in")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg.Payload) != "in" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
}

func TestDenyRuleBlocksAndOffloads(t *testing.T) {
	topo, ed := newWorld(t)
	operator, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	blockedClient, err := topo.NewHostAt("fd00:bad::1")
	if err != nil {
		t.Fatal(err)
	}
	if err := blockedClient.Associate(ed.SNs[0].Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := operator.InvokeFirstHop(wire.SvcFirewall, "set_rules", setRulesArgs{
		Rules:        []Rule{{Prefix: "fd00:bad::/32", Allow: false}},
		DefaultAllow: true,
	}); err != nil {
		t.Fatal(err)
	}
	server, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan host.Message, 1)
	server.OnService(wire.SvcFirewall, func(msg host.Message) { got <- msg })
	conn, err := blockedClient.NewConn(wire.SvcFirewall)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := conn.Send(HeaderData(server.Addr()), []byte("evil")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-got:
		t.Fatal("denied traffic delivered")
	case <-time.After(200 * time.Millisecond):
	}
	// Repeat packets die on the fast path.
	for i := 0; i < 3; i++ {
		if err := conn.Send(HeaderData(server.Addr()), []byte("evil")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for ed.SNs[0].Counters().RuleDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("denied flow not offloaded to fast path")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFirstMatchWins(t *testing.T) {
	topo, ed := newWorld(t)
	operator, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Specific allow before broad deny.
	if _, err := operator.InvokeFirstHop(wire.SvcFirewall, "set_rules", setRulesArgs{
		Rules: []Rule{
			{Prefix: "fd00:bad:1::/48", Allow: true},
			{Prefix: "fd00:bad::/32", Allow: false},
		},
		DefaultAllow: true,
	}); err != nil {
		t.Fatal(err)
	}
	goodClient, err := topo.NewHostAt("fd00:bad:1::5")
	if err != nil {
		t.Fatal(err)
	}
	if err := goodClient.Associate(ed.SNs[0].Addr()); err != nil {
		t.Fatal(err)
	}
	server, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan host.Message, 1)
	server.OnService(wire.SvcFirewall, func(msg host.Message) { got <- msg })
	conn, err := goodClient.NewConn(wire.SvcFirewall)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(HeaderData(server.Addr()), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(3 * time.Second):
		t.Fatal("specifically-allowed traffic blocked")
	}
}

func TestDefaultDeny(t *testing.T) {
	topo, ed := newWorld(t)
	operator, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := operator.InvokeFirstHop(wire.SvcFirewall, "set_rules", setRulesArgs{DefaultAllow: false}); err != nil {
		t.Fatal(err)
	}
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	server, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan host.Message, 1)
	server.OnService(wire.SvcFirewall, func(msg host.Message) { got <- msg })
	conn, err := client.NewConn(wire.SvcFirewall)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(HeaderData(server.Addr()), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		t.Fatal("default-deny delivered traffic")
	case <-time.After(200 * time.Millisecond):
	}
}

func TestStatsAndValidation(t *testing.T) {
	topo, ed := newWorld(t)
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.InvokeFirstHop(wire.SvcFirewall, "set_rules", setRulesArgs{
		Rules: []Rule{{Prefix: "junk", Allow: true}},
	}); err == nil {
		t.Fatal("bad prefix accepted")
	}
	data, err := h.InvokeFirstHop(wire.SvcFirewall, "stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]uint64
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
}
