// Package firewall implements an operator-imposed next-generation-firewall
// pass-through service (§1.2 NGFW; §3.2 operator-imposed services): the
// enterprise's boundary SN filters traffic by ordered source-prefix rules
// before forwarding toward the destination. Denied flows get drop rules in
// the decision cache so repeat offenders cost nothing on the slow path.
package firewall

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"sync"

	"interedge/internal/sn"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// Errors returned by the service.
var (
	ErrBadHeader = errors.New("firewall: malformed header data")
)

// Rule is one ordered filter rule.
type Rule struct {
	Prefix string `json:"prefix"`
	Allow  bool   `json:"allow"`
}

type compiledRule struct {
	prefix netip.Prefix
	allow  bool
}

// Module is the firewall service.
type Module struct {
	mu           sync.Mutex
	rules        []compiledRule
	defaultAllow bool
	denied       uint64
	allowed      uint64
}

// New creates a firewall that allows by default.
func New() *Module {
	return &Module{defaultAllow: true}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcFirewall }

// Name implements sn.Module.
func (*Module) Name() string { return "firewall" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

type setRulesArgs struct {
	Rules        []Rule `json:"rules"`
	DefaultAllow bool   `json:"default_allow"`
}

// HandleControl implements sn.ControlHandler: set_rules, stats.
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "set_rules":
		var a setRulesArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		compiled := make([]compiledRule, 0, len(a.Rules))
		for _, r := range a.Rules {
			p, err := netip.ParsePrefix(r.Prefix)
			if err != nil {
				return nil, fmt.Errorf("firewall: bad prefix %q: %w", r.Prefix, err)
			}
			compiled = append(compiled, compiledRule{prefix: p, allow: r.Allow})
		}
		m.mu.Lock()
		m.rules = compiled
		m.defaultAllow = a.DefaultAllow
		m.mu.Unlock()
		return nil, nil
	case "stats":
		m.mu.Lock()
		defer m.mu.Unlock()
		return json.Marshal(map[string]uint64{"allowed": m.allowed, "denied": m.denied})
	default:
		return nil, fmt.Errorf("firewall: unknown op %q", op)
	}
}

// HeaderData encodes the final destination.
func HeaderData(finalDst wire.Addr) []byte {
	b := finalDst.As16()
	return b[:]
}

// HandlePacket implements sn.Module: first matching rule wins.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) != 16 {
		return sn.Decision{}, ErrBadHeader
	}
	var b [16]byte
	copy(b[:], pkt.Hdr.Data)
	dst := netip.AddrFrom16(b).Unmap()

	m.mu.Lock()
	allow := m.defaultAllow
	for _, r := range m.rules {
		if r.prefix.Contains(pkt.Src) {
			allow = r.allow
			break
		}
	}
	if allow {
		m.allowed++
	} else {
		m.denied++
	}
	m.mu.Unlock()

	if !allow {
		return sn.Decision{
			Rules: []sn.Rule{{Key: pkt.Key(), Action: cache.Action{Drop: true}}},
		}, nil
	}
	return sn.Decision{
		Forwards: []sn.Forward{{Dst: dst}},
		Rules: []sn.Rule{{
			Key:    pkt.Key(),
			Action: cache.Action{Forward: []wire.Addr{dst}},
		}},
	}, nil
}
