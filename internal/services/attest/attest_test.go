package attest

import (
	"testing"

	"interedge/internal/cryptutil"
	"interedge/internal/enclave"
	"interedge/internal/lab"
	"interedge/internal/services/echo"
	"interedge/internal/sn"
	"interedge/internal/tpm"
)

func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain) {
	t.Helper()
	topo := lab.New()
	ed, err := topo.AddEdomain("ed-a", 1, func(node *sn.SN, ed *lab.Edomain) error {
		return node.Register(New(node.TPM()))
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed
}

func TestQuoteVerifies(t *testing.T) {
	topo, ed := newWorld(t)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	nonce := cryptutil.RandomBytes(16)
	wq, err := RequestQuote(client, ed.SNs[0].Addr(), nonce)
	if err != nil {
		t.Fatal(err)
	}
	ek := ed.SNs[0].TPM().EndorsementKey()
	if _, err := Verify(ek, wq, nonce); err != nil {
		t.Fatal(err)
	}
}

func TestQuoteWrongNonceRejected(t *testing.T) {
	topo, ed := newWorld(t)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	wq, err := RequestQuote(client, ed.SNs[0].Addr(), []byte("nonce-a"))
	if err != nil {
		t.Fatal(err)
	}
	ek := ed.SNs[0].TPM().EndorsementKey()
	if _, err := Verify(ek, wq, []byte("nonce-b")); err == nil {
		t.Fatal("replayed quote accepted")
	}
}

func TestQuoteWrongEKRejected(t *testing.T) {
	topo, ed := newWorld(t)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("n")
	wq, err := RequestQuote(client, ed.SNs[0].Addr(), nonce)
	if err != nil {
		t.Fatal(err)
	}
	otherTPM, err := tpm.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(otherTPM.EndorsementKey(), wq, nonce); err == nil {
		t.Fatal("quote accepted under wrong endorsement key")
	}
}

// The full chain: a client verifies that an SN runs a specific enclave
// module version by recomputing the expected PCR from the module's
// measurement.
func TestEnclaveModuleMeasurementAttested(t *testing.T) {
	topo := lab.New()
	ed, err := topo.AddEdomain("ed-a", 1, func(node *sn.SN, ed *lab.Edomain) error {
		if err := node.Register(New(node.TPM())); err != nil {
			return err
		}
		// An enclave-hosted echo module: its measurement lands in PCR 4.
		return node.Register(echo.New(), sn.WithEnclave())
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	nonce := cryptutil.RandomBytes(16)
	wq, err := RequestQuote(client, ed.SNs[0].Addr(), nonce)
	if err != nil {
		t.Fatal(err)
	}
	pcrs, err := Verify(ed.SNs[0].TPM().EndorsementKey(), wq, nonce)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the expected measurement chain for PCR 4: only the echo
	// module's enclave was launched.
	encl, ok := ed.SNs[0].ModuleEnclave(0x114) // SvcEcho
	if !ok {
		t.Fatal("no enclave")
	}
	want := enclave.ExpectedPCR(encl.Measurement())
	if pcrs[enclave.MeasurementPCR] != want {
		t.Fatal("attested PCR does not match expected module measurement")
	}
}

func TestEmptyNonceRejected(t *testing.T) {
	topo, ed := newWorld(t)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RequestQuote(client, ed.SNs[0].Addr(), nil); err == nil {
		t.Fatal("empty nonce accepted")
	}
}
