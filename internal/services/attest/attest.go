// Package attest implements the attestation support service (§6.2 and the
// prototype list in §6.3): clients challenge their SN with a nonce and
// receive a TPM quote over the node's platform configuration registers —
// including the measurements of enclave-hosted service modules — signed by
// the SN's endorsement key. A client that knows the SN's EK (e.g. from an
// IESP directory) can verify that the SN runs the software it claims.
package attest

import (
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"interedge/internal/host"
	"interedge/internal/sn"
	"interedge/internal/tpm"
	"interedge/internal/wire"
)

// Errors returned by the service.
var (
	ErrNoNonce  = errors.New("attest: nonce required")
	ErrBadQuote = errors.New("attest: quote verification failed")
)

// Module is the attestation service for one SN.
type Module struct {
	tpm *tpm.TPM
}

// New creates the module bound to the SN's TPM.
func New(t *tpm.TPM) *Module { return &Module{tpm: t} }

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcAttest }

// Name implements sn.Module.
func (*Module) Name() string { return "attest" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// HandlePacket implements sn.Module; attestation is control-plane only.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	return sn.Decision{}, errors.New("attest: no data-plane traffic expected")
}

type quoteArgs struct {
	Nonce []byte `json:"nonce"`
}

// WireQuote is the JSON form of a TPM quote.
type WireQuote struct {
	PCRs  []string `json:"pcrs"`
	Nonce []byte   `json:"nonce"`
	Sig   []byte   `json:"sig"`
	EK    []byte   `json:"ek"`
}

// HandleControl implements sn.ControlHandler: op "quote".
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "quote":
		var a quoteArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		if len(a.Nonce) == 0 {
			return nil, ErrNoNonce
		}
		q := m.tpm.Quote(a.Nonce)
		wq := WireQuote{Nonce: q.Nonce, Sig: q.Sig, EK: m.tpm.EndorsementKey()}
		for i := range q.PCRs {
			wq.PCRs = append(wq.PCRs, hex.EncodeToString(q.PCRs[i][:]))
		}
		return json.Marshal(wq)
	default:
		return nil, fmt.Errorf("attest: unknown op %q", op)
	}
}

// RequestQuote challenges the SN at via with nonce and returns the parsed
// quote.
func RequestQuote(h *host.Host, via wire.Addr, nonce []byte) (*WireQuote, error) {
	data, err := h.Invoke(via, wire.SvcAttest, "quote", quoteArgs{Nonce: nonce})
	if err != nil {
		return nil, err
	}
	var wq WireQuote
	if err := json.Unmarshal(data, &wq); err != nil {
		return nil, err
	}
	return &wq, nil
}

// Verify checks a wire quote against the expected endorsement key and the
// verifier's nonce, returning the decoded PCR values.
func Verify(expectedEK ed25519.PublicKey, wq *WireQuote, nonce []byte) ([tpm.NumPCRs][32]byte, error) {
	var pcrs [tpm.NumPCRs][32]byte
	if !expectedEK.Equal(ed25519.PublicKey(wq.EK)) {
		return pcrs, fmt.Errorf("%w: endorsement key mismatch", ErrBadQuote)
	}
	if len(wq.PCRs) != tpm.NumPCRs {
		return pcrs, fmt.Errorf("%w: PCR count %d", ErrBadQuote, len(wq.PCRs))
	}
	for i, h := range wq.PCRs {
		b, err := hex.DecodeString(h)
		if err != nil || len(b) != 32 {
			return pcrs, fmt.Errorf("%w: PCR %d malformed", ErrBadQuote, i)
		}
		copy(pcrs[i][:], b)
	}
	q := tpm.Quote{PCRs: pcrs, Nonce: wq.Nonce, Sig: wq.Sig}
	if err := tpm.VerifyQuote(expectedEK, q, nonce); err != nil {
		return pcrs, err
	}
	return pcrs, nil
}
