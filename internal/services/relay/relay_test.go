package relay

import (
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/wire"
)

// world: one edomain with two SNs — SN 0 is the ingress (client side),
// SN 1 is the egress (destination side). Both run the relay module.
func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain, *KeyDirectory, *Module, *Module) {
	t.Helper()
	topo := lab.New()
	dir := NewKeyDirectory()
	ed, err := topo.AddEdomain("ed-a", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mods []*Module
	for _, node := range ed.SNs {
		m, err := New(dir, node.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Register(m); err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed, dir, mods[0], mods[1]
}

func TestRelayDeliversToDestination(t *testing.T) {
	topo, ed, dir, _, _ := newWorld(t)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	server, err := topo.NewHost(ed, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan host.Message, 1)
	server.OnService(wire.SvcRelay, func(msg host.Message) { got <- msg })

	if _, err := Send(client, dir, ed.SNs[1].Addr(), server.Addr(), []byte("GET /")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg.Payload) != "GET /" {
			t.Fatalf("payload %q", msg.Payload)
		}
		// The destination sees the EGRESS SN as the source, not the client.
		if msg.Src != ed.SNs[1].Addr() {
			t.Fatalf("destination saw source %s, want egress SN %s", msg.Src, ed.SNs[1].Addr())
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
}

// The defining property: the egress SN (and thus the destination) never
// observes the client's address; the ingress never opens the envelope.
func TestEgressNeverSeesClient(t *testing.T) {
	topo, ed, dir, _, egressMod := newWorld(t)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	server, err := topo.NewHost(ed, 1)
	if err != nil {
		t.Fatal(err)
	}
	delivered := make(chan host.Message, 1)
	server.OnService(wire.SvcRelay, func(msg host.Message) { delivered <- msg })
	if _, err := Send(client, dir, ed.SNs[1].Addr(), server.Addr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-delivered:
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
	for _, src := range egressMod.SeenSources() {
		if src == client.Addr() {
			t.Fatal("egress SN observed the client address")
		}
	}
}

func TestReplyPathReachesClient(t *testing.T) {
	topo, ed, dir, _, _ := newWorld(t)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	server, err := topo.NewHost(ed, 1)
	if err != nil {
		t.Fatal(err)
	}
	delivered := make(chan host.Message, 1)
	server.OnService(wire.SvcRelay, func(msg host.Message) { delivered <- msg })

	conn, err := Send(client, dir, ed.SNs[1].Addr(), server.Addr(), []byte("request"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var req host.Message
	select {
	case req = <-delivered:
	case <-time.After(3 * time.Second):
		t.Fatal("request never delivered")
	}
	if err := Reply(server, req, []byte("response")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-conn.Receive():
		if string(msg.Payload) != "response" {
			t.Fatalf("payload %q", msg.Payload)
		}
		// The client sees only its ingress SN.
		if msg.Src != ed.SNs[0].Addr() {
			t.Fatalf("client saw source %s, want ingress SN", msg.Src)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("reply never arrived")
	}
}

func TestSendToUnknownEgressFails(t *testing.T) {
	topo, ed, dir, _, _ := newWorld(t)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Send(client, dir, wire.MustAddr("fd00::dead"), client.Addr(), nil); err == nil {
		t.Fatal("send to egress with no published key succeeded")
	}
}

func TestReplyWithWrongMessageRejected(t *testing.T) {
	topo, ed, _, _, _ := newWorld(t)
	server, err := topo.NewHost(ed, 1)
	if err != nil {
		t.Fatal(err)
	}
	bogus := host.Message{Hdr: wire.ILPHeader{Service: wire.SvcRelay, Data: []byte{kindIngress}}}
	if err := Reply(server, bogus, nil); err != ErrBadHeader {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}
