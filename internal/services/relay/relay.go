// Package relay implements a private-relay service (§1.2's "private relay
// [5]", §6.2 privacy): traffic crosses two SNs such that the ingress SN
// knows the client but not the destination, and the egress SN knows the
// destination but not the client — the two-hop split Apple's iCloud
// Private Relay popularized.
//
// The client seals the (destination ‖ payload) envelope to the egress SN's
// relay key, so the ingress SN forwards opaque bytes. The ingress replaces
// the client's identity with a session number before forwarding, so the
// egress attributes traffic only to the ingress SN.
package relay

import (
	"crypto/ecdh"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"

	"interedge/internal/cryptutil"
	"interedge/internal/host"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Packet kinds in the first byte of header data.
const (
	kindIngress   byte = iota // client → ingress SN (data: kind ‖ egress SN addr)
	kindEgress                // ingress SN → egress SN (data: kind ‖ sessionID)
	kindDeliver               // egress SN → destination host (data: kind ‖ sessionID)
	kindReplyUp               // destination host → egress SN (data: kind ‖ sessionID)
	kindReplyMid              // egress SN → ingress SN (data: kind ‖ sessionID)
	kindReplyDown             // ingress SN → client (data: kind)
)

// Errors returned by the service.
var (
	ErrBadHeader = errors.New("relay: malformed header data")
	ErrNoKey     = errors.New("relay: this SN has no egress key")
	ErrNoSession = errors.New("relay: unknown session")
)

// KeyDirectory publishes the relay public keys of egress SNs. In a full
// deployment these would live in the global lookup service; the directory
// keeps the dependency explicit.
type KeyDirectory struct {
	mu   sync.RWMutex
	keys map[wire.Addr][]byte
}

// NewKeyDirectory creates an empty directory.
func NewKeyDirectory() *KeyDirectory {
	return &KeyDirectory{keys: make(map[wire.Addr][]byte)}
}

// Publish records an SN's relay public key.
func (d *KeyDirectory) Publish(snAddr wire.Addr, pub []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.keys[snAddr] = append([]byte(nil), pub...)
}

// Lookup returns an SN's relay public key.
func (d *KeyDirectory) Lookup(snAddr wire.Addr) ([]byte, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	k, ok := d.keys[snAddr]
	return k, ok
}

type ingressSession struct {
	client wire.Addr
	conn   wire.ConnectionID
}

type egressSession struct {
	ingress wire.Addr
	id      uint64
	dst     wire.Addr
}

// Module is the relay module; every SN can serve as ingress and egress.
type Module struct {
	key *ecdh.PrivateKey

	mu       sync.Mutex
	nextID   uint64
	ingress  map[uint64]ingressSession // sessions where we are the ingress
	egress   map[uint64]egressSession  // sessions where we are the egress
	byDest   map[destKey]uint64        // (dst, conn) -> egress session
	seenSrcs map[wire.Addr]struct{}
}

type destKey struct {
	dst  wire.Addr
	conn wire.ConnectionID
}

// New creates the relay module with a fresh egress keypair, publishing it
// in the directory under snAddr.
func New(dir *KeyDirectory, snAddr wire.Addr) (*Module, error) {
	kp, err := cryptutil.NewStaticKeypair()
	if err != nil {
		return nil, err
	}
	dir.Publish(snAddr, kp.PublicKeyBytes())
	return &Module{
		key:      kp.Private,
		ingress:  make(map[uint64]ingressSession),
		egress:   make(map[uint64]egressSession),
		byDest:   make(map[destKey]uint64),
		seenSrcs: make(map[wire.Addr]struct{}),
	}, nil
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcRelay }

// Name implements sn.Module.
func (*Module) Name() string { return "relay" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// SeenSources lists observed packet sources (privacy assertions in tests).
func (m *Module) SeenSources() []wire.Addr {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]wire.Addr, 0, len(m.seenSrcs))
	for a := range m.seenSrcs {
		out = append(out, a)
	}
	return out
}

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) < 1 {
		return sn.Decision{}, ErrBadHeader
	}
	m.mu.Lock()
	m.seenSrcs[pkt.Src] = struct{}{}
	m.mu.Unlock()

	switch pkt.Hdr.Data[0] {
	case kindIngress:
		return m.handleIngress(env, pkt)
	case kindEgress:
		return m.handleEgress(env, pkt)
	case kindReplyUp:
		return m.handleReplyUp(env, pkt)
	case kindReplyMid:
		return m.handleReplyMid(env, pkt)
	default:
		return sn.Decision{}, fmt.Errorf("relay: unexpected kind %d", pkt.Hdr.Data[0])
	}
}

// handleIngress: allocate a session hiding the client, pass the sealed
// envelope to the egress SN.
func (m *Module) handleIngress(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) != 17 {
		return sn.Decision{}, ErrBadHeader
	}
	var b [16]byte
	copy(b[:], pkt.Hdr.Data[1:])
	egressSN := netip.AddrFrom16(b).Unmap()

	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.ingress[id] = ingressSession{client: pkt.Src, conn: pkt.Hdr.Conn}
	m.mu.Unlock()

	data := make([]byte, 9)
	data[0] = kindEgress
	binary.BigEndian.PutUint64(data[1:], id)
	hdr := wire.ILPHeader{Service: wire.SvcRelay, Conn: pkt.Hdr.Conn, Data: data}
	return sn.Decision{Forwards: []sn.Forward{{Dst: egressSN, Hdr: &hdr}}}, nil
}

// handleEgress: open the envelope, learn the destination, deliver the
// inner payload.
func (m *Module) handleEgress(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if m.key == nil {
		return sn.Decision{}, ErrNoKey
	}
	if len(pkt.Hdr.Data) != 9 {
		return sn.Decision{}, ErrBadHeader
	}
	upstreamID := binary.BigEndian.Uint64(pkt.Hdr.Data[1:])
	plain, err := cryptutil.OpenFrom(m.key, pkt.Payload)
	if err != nil {
		return sn.Decision{}, fmt.Errorf("relay: open envelope: %w", err)
	}
	if len(plain) < 16 {
		return sn.Decision{}, ErrBadHeader
	}
	var b [16]byte
	copy(b[:], plain[:16])
	dst := netip.AddrFrom16(b).Unmap()
	inner := plain[16:]

	m.mu.Lock()
	sess := egressSession{ingress: pkt.Src, id: upstreamID, dst: dst}
	m.egress[upstreamID] = sess
	m.byDest[destKey{dst, pkt.Hdr.Conn}] = upstreamID
	m.mu.Unlock()

	data := make([]byte, 9)
	data[0] = kindDeliver
	binary.BigEndian.PutUint64(data[1:], upstreamID)
	hdr := wire.ILPHeader{Service: wire.SvcRelay, Conn: pkt.Hdr.Conn, Data: data}
	return sn.Decision{Forwards: []sn.Forward{{Dst: dst, Hdr: &hdr, Payload: inner}}}, nil
}

// handleReplyUp (egress): destination host replies; map the session back
// to the ingress SN.
func (m *Module) handleReplyUp(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) != 9 {
		return sn.Decision{}, ErrBadHeader
	}
	id := binary.BigEndian.Uint64(pkt.Hdr.Data[1:])
	m.mu.Lock()
	sess, ok := m.egress[id]
	m.mu.Unlock()
	if !ok {
		return sn.Decision{}, ErrNoSession
	}
	data := make([]byte, 9)
	data[0] = kindReplyMid
	binary.BigEndian.PutUint64(data[1:], id)
	hdr := wire.ILPHeader{Service: wire.SvcRelay, Conn: pkt.Hdr.Conn, Data: data}
	return sn.Decision{Forwards: []sn.Forward{{Dst: sess.ingress, Hdr: &hdr}}}, nil
}

// handleReplyMid (ingress): map the session back to the client.
func (m *Module) handleReplyMid(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) != 9 {
		return sn.Decision{}, ErrBadHeader
	}
	id := binary.BigEndian.Uint64(pkt.Hdr.Data[1:])
	m.mu.Lock()
	sess, ok := m.ingress[id]
	m.mu.Unlock()
	if !ok {
		return sn.Decision{}, ErrNoSession
	}
	hdr := wire.ILPHeader{Service: wire.SvcRelay, Conn: sess.conn, Data: []byte{kindReplyDown}}
	return sn.Decision{Forwards: []sn.Forward{{Dst: sess.client, Hdr: &hdr}}}, nil
}

// --- Client and server helpers ----------------------------------------------

// Send relays payload to dst through (ingressSN, egressSN). The returned
// connection receives replies.
func Send(h *host.Host, dir *KeyDirectory, egressSN, dst wire.Addr, payload []byte) (*host.Conn, error) {
	egressPub, ok := dir.Lookup(egressSN)
	if !ok {
		return nil, fmt.Errorf("relay: no published key for egress SN %s", egressSN)
	}
	d := dst.As16()
	envelope := append(append([]byte(nil), d[:]...), payload...)
	sealed, err := cryptutil.SealTo(egressPub, envelope)
	if err != nil {
		return nil, err
	}
	conn, err := h.NewConn(wire.SvcRelay)
	if err != nil {
		return nil, err
	}
	e16 := egressSN.As16()
	data := append([]byte{kindIngress}, e16[:]...)
	if err := conn.Send(data, sealed); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// Reply sends a response from a destination host back up the relay path.
// msg must be the delivery message the host received (its header carries
// the session ID).
func Reply(h *host.Host, delivery host.Message, payload []byte) error {
	if len(delivery.Hdr.Data) != 9 || delivery.Hdr.Data[0] != kindDeliver {
		return ErrBadHeader
	}
	data := append([]byte(nil), delivery.Hdr.Data...)
	data[0] = kindReplyUp
	if err := h.Pipes().Connect(delivery.Src); err != nil {
		return err
	}
	hdr := wire.ILPHeader{Service: wire.SvcRelay, Conn: delivery.Hdr.Conn, Data: data}
	return h.Pipes().Send(delivery.Src, &hdr, payload)
}
