package echo

import (
	"testing"
	"time"

	"interedge/internal/lab"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

func TestEchoRoundTrip(t *testing.T) {
	topo := lab.New()
	defer topo.Close()
	mod := New()
	ed, err := topo.AddEdomain("ed-a", 1, func(node *sn.SN, ed *lab.Edomain) error {
		return node.Register(mod)
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := h.NewConn(wire.SvcEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		if err := conn.Send([]byte("meta"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		select {
		case msg := <-conn.Receive():
			if len(msg.Payload) != 1 || msg.Payload[0] != byte(i) {
				t.Fatalf("payload %v", msg.Payload)
			}
		case <-time.After(3 * time.Second):
			t.Fatal("timeout")
		}
	}
	if mod.Handled() != 3 {
		t.Fatalf("handled = %d", mod.Handled())
	}
}
