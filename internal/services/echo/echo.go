// Package echo implements a trivial request/reply service used by the
// quickstart example and tests: every packet is returned to its sender
// with the payload intact. Unlike null, echo installs no forwarding state
// and always replies to the packet source.
package echo

import (
	"sync/atomic"

	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Module is the echo service.
type Module struct {
	handled atomic.Uint64
}

// New creates the echo service module.
func New() *Module { return &Module{} }

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcEcho }

// Name implements sn.Module.
func (*Module) Name() string { return "echo" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// Handled returns the number of packets echoed.
func (m *Module) Handled() uint64 { return m.handled.Load() }

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	m.handled.Add(1)
	return sn.Decision{Forwards: []sn.Forward{{Dst: pkt.Src}}}, nil
}
