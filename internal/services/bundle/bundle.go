// Package bundle implements §3.2's service bundles: "naturally composable
// services can be combined into 'bundles' (e.g., an IP-like service and a
// caching service) that hosts can invoke, and the invocation may have
// optional settings (signalled in the metadata) that control various
// aspects of the service (e.g., whether or not to invoke caching)".
//
// The web bundle here composes IP-like request delivery to an origin host
// with an edge content cache. The per-invocation metadata flag decides
// whether caching is invoked: with the flag set, responses are served and
// stored at the SN; without it, every request travels to the origin —
// same connection, same service ID, different behaviour, exactly the
// composition story of §3.2. Crucially, the burden of composing the two
// functions sits here in the bundle implementation, not on the customer
// (§5: "the burden of figuring out how to combine two or more services is
// taken on by the developers of those services").
package bundle

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"interedge/internal/host"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Option flags carried in the invocation metadata.
const (
	// OptCache invokes the caching half of the bundle.
	OptCache byte = 1 << 0
)

// Packet kinds (second metadata byte).
const (
	kindRequest  byte = iota // client → SN
	kindFetch                // SN → origin (data: kind ‖ reqID(8) ‖ name)
	kindOrigin               // origin → SN (same data as fetch)
	kindResponse             // SN → client (data: kind ‖ fromCache(1))
	kindMiss                 // SN → client: origin unknown or no content
)

// Errors returned by the bundle.
var (
	ErrBadHeader = errors.New("bundle: malformed header data")
	ErrTimeout   = errors.New("bundle: request timed out")
	ErrNotFound  = errors.New("bundle: content not found")
)

type cachedObject struct {
	name string
	data []byte
	elem *list.Element
}

type pending struct {
	client wire.Addr
	conn   wire.ConnectionID
	cache  bool
	name   string
}

// Module is the web bundle service for one SN.
type Module struct {
	capacity int

	mu      sync.Mutex
	objects map[string]*cachedObject
	lru     *list.List
	size    int
	nextID  uint64
	pending map[uint64]pending
	hits    uint64
	origin  uint64
}

// New creates the bundle with the given cache byte budget.
func New(cacheBytes int) *Module {
	return &Module{
		capacity: cacheBytes,
		objects:  make(map[string]*cachedObject),
		lru:      list.New(),
		pending:  make(map[uint64]pending),
	}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcWebBundle }

// Name implements sn.Module.
func (*Module) Name() string { return "webbundle" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// Stats reports (cache hits, origin fetches).
func (m *Module) Stats() (hits, origin uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.origin
}

// RequestData builds the invocation metadata: flags ‖ kind ‖ origin(16) ‖ name.
func RequestData(flags byte, origin wire.Addr, name string) []byte {
	b := origin.As16()
	data := make([]byte, 0, 2+16+len(name))
	data = append(data, flags, kindRequest)
	data = append(data, b[:]...)
	return append(data, name...)
}

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) < 2 {
		return sn.Decision{}, ErrBadHeader
	}
	switch pkt.Hdr.Data[1] {
	case kindRequest:
		return m.handleRequest(env, pkt)
	case kindOrigin:
		return m.handleOrigin(env, pkt)
	default:
		return sn.Decision{}, fmt.Errorf("bundle: unexpected kind %d", pkt.Hdr.Data[1])
	}
}

func (m *Module) handleRequest(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	data := pkt.Hdr.Data
	if len(data) < 18 {
		return sn.Decision{}, ErrBadHeader
	}
	flags := data[0]
	var b [16]byte
	copy(b[:], data[2:18])
	origin := netip.AddrFrom16(b).Unmap()
	name := string(data[18:])
	useCache := flags&OptCache != 0

	if useCache {
		m.mu.Lock()
		if obj, ok := m.objects[name]; ok {
			m.hits++
			m.lru.MoveToFront(obj.elem)
			payload := obj.data
			m.mu.Unlock()
			hdr := wire.ILPHeader{Service: wire.SvcWebBundle, Conn: pkt.Hdr.Conn, Data: []byte{flags, kindResponse, 1}}
			return sn.Decision{Forwards: []sn.Forward{{Dst: pkt.Src, Hdr: &hdr, Payload: payload}}}, nil
		}
		m.mu.Unlock()
	}

	// IP-like half: go to the origin.
	m.mu.Lock()
	m.origin++
	m.nextID++
	id := m.nextID
	m.pending[id] = pending{client: pkt.Src, conn: pkt.Hdr.Conn, cache: useCache, name: name}
	m.mu.Unlock()

	fetch := make([]byte, 10, 10+len(name))
	fetch[0] = flags
	fetch[1] = kindFetch
	binary.BigEndian.PutUint64(fetch[2:10], id)
	fetch = append(fetch, name...)
	hdr := wire.ILPHeader{Service: wire.SvcWebBundle, Conn: pkt.Hdr.Conn, Data: fetch}
	return sn.Decision{Forwards: []sn.Forward{{Dst: origin, Hdr: &hdr, Empty: true}}}, nil
}

func (m *Module) handleOrigin(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	data := pkt.Hdr.Data
	if len(data) < 10 {
		return sn.Decision{}, ErrBadHeader
	}
	id := binary.BigEndian.Uint64(data[2:10])
	m.mu.Lock()
	p, ok := m.pending[id]
	delete(m.pending, id)
	if !ok {
		m.mu.Unlock()
		return sn.Decision{}, nil // stale
	}
	if p.cache && len(pkt.Payload) > 0 {
		m.insertLocked(p.name, append([]byte(nil), pkt.Payload...))
	}
	m.mu.Unlock()

	kind := kindResponse
	if len(pkt.Payload) == 0 {
		kind = kindMiss
	}
	hdr := wire.ILPHeader{Service: wire.SvcWebBundle, Conn: p.conn, Data: []byte{data[0], kind, 0}}
	return sn.Decision{Forwards: []sn.Forward{{Dst: p.client, Hdr: &hdr}}}, nil
}

func (m *Module) insertLocked(name string, data []byte) {
	if len(data) > m.capacity {
		return
	}
	if old, ok := m.objects[name]; ok {
		m.size -= len(old.data)
		m.lru.Remove(old.elem)
		delete(m.objects, name)
	}
	for m.size+len(data) > m.capacity {
		back := m.lru.Back()
		if back == nil {
			break
		}
		v := back.Value.(*cachedObject)
		m.lru.Remove(back)
		delete(m.objects, v.name)
		m.size -= len(v.data)
	}
	obj := &cachedObject{name: name, data: data}
	obj.elem = m.lru.PushFront(obj)
	m.objects[name] = obj
	m.size += len(data)
}

// --- Origin and client helpers -------------------------------------------------

// ServeOrigin answers bundle fetches on a content provider's host.
func ServeOrigin(h *host.Host, contents map[string][]byte) {
	cp := make(map[string][]byte, len(contents))
	for k, v := range contents {
		cp[k] = append([]byte(nil), v...)
	}
	h.OnService(wire.SvcWebBundle, func(msg host.Message) {
		if len(msg.Hdr.Data) < 10 || msg.Hdr.Data[1] != kindFetch {
			return
		}
		name := string(msg.Hdr.Data[10:])
		reply := append([]byte(nil), msg.Hdr.Data...)
		reply[1] = kindOrigin
		hdr := wire.ILPHeader{Service: wire.SvcWebBundle, Conn: msg.Hdr.Conn, Data: reply}
		_ = h.Pipes().Send(msg.Src, &hdr, cp[name]) // empty payload = not found
	})
}

// Response is one bundle fetch result.
type Response struct {
	Data      []byte
	FromCache bool
}

// Client fetches through the bundle.
type Client struct {
	h       *host.Host
	timeout time.Duration
}

// NewClient creates a bundle client.
func NewClient(h *host.Host) *Client { return &Client{h: h, timeout: 5 * time.Second} }

// Get requests name from origin through the host's first-hop SN. flags
// select per-invocation options (OptCache to invoke caching).
func (c *Client) Get(flags byte, origin wire.Addr, name string) (Response, error) {
	conn, err := c.h.NewConn(wire.SvcWebBundle)
	if err != nil {
		return Response{}, err
	}
	defer conn.Close()
	if err := conn.Send(RequestData(flags, origin, name), nil); err != nil {
		return Response{}, err
	}
	select {
	case msg, ok := <-conn.Receive():
		if !ok {
			return Response{}, ErrTimeout
		}
		if len(msg.Hdr.Data) < 3 {
			return Response{}, ErrBadHeader
		}
		if msg.Hdr.Data[1] == kindMiss {
			return Response{}, ErrNotFound
		}
		return Response{Data: msg.Payload, FromCache: msg.Hdr.Data[2] == 1}, nil
	case <-time.After(c.timeout):
		return Response{}, ErrTimeout
	}
}
