package bundle

import (
	"bytes"
	"testing"

	"interedge/internal/lab"
	"interedge/internal/sn"
)

func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain, *Module) {
	t.Helper()
	topo := lab.New()
	mod := New(1 << 20)
	ed, err := topo.AddEdomain("ed-a", 1, func(node *sn.SN, ed *lab.Edomain) error {
		return node.Register(mod)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed, mod
}

func TestBundleWithCachingServesSecondRequestFromEdge(t *testing.T) {
	topo, ed, mod := newWorld(t)
	origin, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("bundled page")
	ServeOrigin(origin, map[string][]byte{"page": content})
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(client)

	// First request with caching invoked: travels to the origin.
	r1, err := c.Get(OptCache, origin.Addr(), "page")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Data, content) || r1.FromCache {
		t.Fatalf("first response %+v", r1)
	}
	// Second request: served at the edge.
	r2, err := c.Get(OptCache, origin.Addr(), "page")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r2.Data, content) || !r2.FromCache {
		t.Fatalf("second response %+v", r2)
	}
	hits, origins := mod.Stats()
	if hits != 1 || origins != 1 {
		t.Fatalf("hits=%d origin=%d", hits, origins)
	}
}

// §3.2: the metadata option controls "whether or not to invoke caching" —
// without the flag, every request goes to the origin and nothing is
// served from or stored at the edge.
func TestBundleWithoutCachingAlwaysGoesToOrigin(t *testing.T) {
	topo, ed, mod := newWorld(t)
	origin, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	ServeOrigin(origin, map[string][]byte{"page": []byte("fresh")})
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(client)
	for i := 0; i < 3; i++ {
		r, err := c.Get(0, origin.Addr(), "page")
		if err != nil {
			t.Fatal(err)
		}
		if r.FromCache {
			t.Fatal("uncached invocation served from cache")
		}
	}
	hits, origins := mod.Stats()
	if hits != 0 || origins != 3 {
		t.Fatalf("hits=%d origin=%d", hits, origins)
	}
}

// Cached invocations must not be poisoned by uncached ones and vice
// versa: an uncached fetch does not populate the cache.
func TestUncachedFetchDoesNotPopulateCache(t *testing.T) {
	topo, ed, mod := newWorld(t)
	origin, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	ServeOrigin(origin, map[string][]byte{"page": []byte("x")})
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(client)
	if _, err := c.Get(0, origin.Addr(), "page"); err != nil {
		t.Fatal(err)
	}
	// A cached invocation right after still misses (must go to origin).
	r, err := c.Get(OptCache, origin.Addr(), "page")
	if err != nil {
		t.Fatal(err)
	}
	if r.FromCache {
		t.Fatal("cache populated by uncached invocation")
	}
	_ = mod
}

func TestBundleUnknownContent(t *testing.T) {
	topo, ed, _ := newWorld(t)
	origin, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	ServeOrigin(origin, map[string][]byte{})
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(client)
	if _, err := c.Get(OptCache, origin.Addr(), "ghost"); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}
