package ordered

import (
	"sync"
	"testing"
	"time"

	"interedge/internal/lab"
	"interedge/internal/wire"
)

// world: two SNs with deliberately skewed GPS clocks.
func newWorld(t *testing.T, skews []time.Duration, window time.Duration) (*lab.Topology, *lab.Edomain, []*Module) {
	t.Helper()
	topo := lab.New()
	ed, err := topo.AddEdomain("ed-a", len(skews), nil)
	if err != nil {
		t.Fatal(err)
	}
	var mods []*Module
	for i, node := range ed.SNs {
		m := New(NewGPS(skews[i]), window)
		if err := node.Register(m); err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed, mods
}

type recorder struct {
	mu   sync.Mutex
	recv []Delivery
	ch   chan Delivery
}

func newRecorder() *recorder { return &recorder{ch: make(chan Delivery, 256)} }

func (r *recorder) handler(channel string, d Delivery) {
	r.mu.Lock()
	r.recv = append(r.recv, d)
	r.mu.Unlock()
	r.ch <- d
}

func (r *recorder) deliveries() []Delivery {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Delivery(nil), r.recv...)
}

func TestTimestampOrderedDelivery(t *testing.T) {
	topo, ed, _ := newWorld(t, []time.Duration{0, 0}, 60*time.Millisecond)
	sub, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	subC := NewClient(sub)
	rec := newRecorder()
	if err := subC.Subscribe("ch", rec.handler); err != nil {
		t.Fatal(err)
	}
	// Two senders on different SNs; sender 2's SN must know where
	// subscribers live.
	s1, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := topo.NewHost(ed, 1)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := NewClient(s1), NewClient(s2)
	if err := c1.AddPeer("ch", []wire.Addr{ed.SNs[0].Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := c2.AddPeer("ch", []wire.Addr{ed.SNs[0].Addr()}); err != nil {
		t.Fatal(err)
	}
	// Interleave submissions from both SNs.
	for i := 0; i < 5; i++ {
		if err := c1.Submit("ch", []byte{1, byte(i)}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
		if err := c2.Submit("ch", []byte{2, byte(i)}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Await all 10.
	deadline := time.After(5 * time.Second)
	for n := 0; n < 10; n++ {
		select {
		case <-rec.ch:
		case <-deadline:
			t.Fatalf("only %d/10 delivered", n)
		}
	}
	// On-time deliveries must be nondecreasing in timestamp.
	ds := rec.deliveries()
	var last time.Time
	for i, d := range ds {
		if d.Late {
			continue
		}
		if d.Timestamp.Before(last) {
			t.Fatalf("delivery %d out of order: %v < %v", i, d.Timestamp, last)
		}
		last = d.Timestamp
	}
}

// Skewed ingress clocks reorder wall-clock submission order — the service
// orders by GPS timestamps, which is exactly its contract.
func TestSkewedClocksStillOrderedByStamp(t *testing.T) {
	topo, ed, _ := newWorld(t, []time.Duration{0, 30 * time.Millisecond}, 80*time.Millisecond)
	sub, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	subC := NewClient(sub)
	rec := newRecorder()
	if err := subC.Subscribe("ch", rec.handler); err != nil {
		t.Fatal(err)
	}
	s2, err := topo.NewHost(ed, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(s2)
	if err := c2.AddPeer("ch", []wire.Addr{ed.SNs[0].Addr()}); err != nil {
		t.Fatal(err)
	}
	s1, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewClient(s1)
	if err := c1.AddPeer("ch", []wire.Addr{ed.SNs[0].Addr()}); err != nil {
		t.Fatal(err)
	}
	// s2 submits FIRST but its SN stamps +30ms in the future; s1 submits
	// second with an unskewed stamp. Ordered delivery puts s1 first.
	if err := c2.Submit("ch", []byte("second-by-stamp")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := c1.Submit("ch", []byte("first-by-stamp")); err != nil {
		t.Fatal(err)
	}
	var got []string
	deadline := time.After(5 * time.Second)
	for len(got) < 2 {
		select {
		case d := <-rec.ch:
			got = append(got, string(d.Payload))
		case <-deadline:
			t.Fatalf("only %d/2 delivered", len(got))
		}
	}
	if got[0] != "first-by-stamp" || got[1] != "second-by-stamp" {
		t.Fatalf("order %v", got)
	}
}

// A message arriving after its window closed is delivered late-marked,
// not dropped (no atomicity, §6.2).
func TestLateMessageMarkedNotDropped(t *testing.T) {
	topo, ed, mods := newWorld(t, []time.Duration{0}, 30*time.Millisecond)
	sub, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	subC := NewClient(sub)
	rec := newRecorder()
	if err := subC.Subscribe("ch", rec.handler); err != nil {
		t.Fatal(err)
	}
	s, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(s)
	if err := c.AddPeer("ch", []wire.Addr{ed.SNs[0].Addr()}); err != nil {
		t.Fatal(err)
	}
	// Normal message establishes lastOut.
	if err := c.Submit("ch", []byte("on-time")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-rec.ch:
	case <-time.After(5 * time.Second):
		t.Fatal("on-time message never delivered")
	}
	// Inject a message stamped in the past directly into the buffer
	// (simulating a long-delayed stamped packet from a far SN).
	mods[0].bufferStamped(time.Now().Add(-time.Second), "ch", []byte("straggler"), 1)
	select {
	case d := <-rec.ch:
		if string(d.Payload) != "straggler" {
			t.Fatalf("payload %q", d.Payload)
		}
		if !d.Late {
			t.Fatal("straggler not marked late")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("straggler dropped")
	}
}
