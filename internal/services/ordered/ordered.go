// Package ordered implements the GPS-timestamped ordered delivery service
// of §6.2: "If InterEdge requires that SNs be equipped with GPS receivers,
// it could offer a high-latency … but ordered message delivery system.
// While such a system cannot guarantee atomicity …, even ordering in the
// absence of atomicity can reduce coordination overheads."
//
// Ingress SNs stamp each message with their GPS-disciplined clock (the
// simulated GPS receiver adds a configurable skew to the node clock).
// Delivery SNs buffer messages for a reorder window and release them to
// subscribers in global timestamp order. Messages arriving after the
// window closed for their timestamp are delivered late-marked rather than
// dropped — ordering is best-effort, never atomic.
package ordered

import (
	"container/heap"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"interedge/internal/host"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Packet kinds in the first byte of header data.
const (
	kindSubmit  byte = iota // host → ingress SN (data: kind ‖ channel)
	kindStamped             // ingress SN → delivery SN (data: kind ‖ ts(8) ‖ channel)
	kindDeliver             // delivery SN → subscriber (data: kind ‖ ts(8) ‖ late(1) ‖ channel)
)

// DefaultWindow is the reorder buffer window.
const DefaultWindow = 50 * time.Millisecond

// Errors returned by the service.
var (
	ErrBadHeader = errors.New("ordered: malformed header data")
)

// GPS simulates a GPS-disciplined clock: the node clock plus a fixed skew
// (real GPS clocks disagree by bounded skew; the paper's service is
// explicitly tolerant of it).
type GPS struct {
	skew time.Duration
}

// NewGPS creates a simulated GPS receiver with the given skew from true
// time.
func NewGPS(skew time.Duration) *GPS { return &GPS{skew: skew} }

// Now returns the GPS-disciplined timestamp.
func (g *GPS) Now(nodeClock time.Time) time.Time { return nodeClock.Add(g.skew) }

type stamped struct {
	ts      time.Time
	channel string
	payload []byte
	conn    wire.ConnectionID
}

type stampedHeap []stamped

func (h stampedHeap) Len() int            { return len(h) }
func (h stampedHeap) Less(i, j int) bool  { return h[i].ts.Before(h[j].ts) }
func (h stampedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stampedHeap) Push(x interface{}) { *h = append(*h, x.(stamped)) }
func (h *stampedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Module is the ordered-delivery service for one SN. Ingress stamping and
// delivery buffering both live here; a deployment typically routes
// submissions through the sender's SN (stamping) to the subscriber's SN
// (buffer + deliver).
type Module struct {
	gps    *GPS
	window time.Duration

	mu          sync.Mutex
	subscribers map[string]map[wire.Addr]struct{}
	deliverySNs map[string]map[wire.Addr]struct{} // channel -> SNs with subscribers
	buffer      stampedHeap
	lastOut     time.Time
	started     bool
	stop        chan struct{}
}

// New creates the module with the given GPS receiver and reorder window.
func New(gps *GPS, window time.Duration) *Module {
	if window == 0 {
		window = DefaultWindow
	}
	return &Module{
		gps:         gps,
		window:      window,
		subscribers: make(map[string]map[wire.Addr]struct{}),
		deliverySNs: make(map[string]map[wire.Addr]struct{}),
		stop:        make(chan struct{}),
	}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcOrdered }

// Name implements sn.Module.
func (*Module) Name() string { return "ordered" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// Start implements sn.Starter: run the release loop.
func (m *Module) Start(env sn.Env) error {
	m.mu.Lock()
	m.started = true
	m.mu.Unlock()
	go func() {
		for {
			select {
			case <-m.stop:
				return
			case <-env.After(m.window / 4):
				m.release(env)
			}
		}
	}()
	return nil
}

// Stop implements sn.Stopper.
func (m *Module) Stop() error {
	m.mu.Lock()
	if m.started {
		m.started = false
		close(m.stop)
	}
	m.mu.Unlock()
	return nil
}

type subscribeArgs struct {
	Channel string `json:"channel"`
	// DeliverySNs lets senders learn where subscribers live; in a full
	// deployment this flows through the core/lookup machinery like
	// pub/sub. Here each ingress is told explicitly.
	Peers []string `json:"peers,omitempty"`
}

// HandleControl implements sn.ControlHandler: subscribe, add_peer.
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "subscribe":
		var a subscribeArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		m.mu.Lock()
		if m.subscribers[a.Channel] == nil {
			m.subscribers[a.Channel] = make(map[wire.Addr]struct{})
		}
		m.subscribers[a.Channel][src] = struct{}{}
		m.mu.Unlock()
		return nil, nil
	case "add_peer":
		var a subscribeArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		m.mu.Lock()
		if m.deliverySNs[a.Channel] == nil {
			m.deliverySNs[a.Channel] = make(map[wire.Addr]struct{})
		}
		for _, p := range a.Peers {
			m.deliverySNs[a.Channel][wire.MustAddr(p)] = struct{}{}
		}
		m.mu.Unlock()
		return nil, nil
	default:
		return nil, fmt.Errorf("ordered: unknown op %q", op)
	}
}

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) < 1 {
		return sn.Decision{}, ErrBadHeader
	}
	switch pkt.Hdr.Data[0] {
	case kindSubmit:
		// Ingress: stamp with the GPS clock and relay to delivery SNs
		// (including ourselves if we host subscribers).
		channel := string(pkt.Hdr.Data[1:])
		ts := m.gps.Now(env.Now())
		data := make([]byte, 9, 9+len(channel))
		data[0] = kindStamped
		binary.BigEndian.PutUint64(data[1:9], uint64(ts.UnixNano()))
		data = append(data, channel...)

		m.mu.Lock()
		peers := make([]wire.Addr, 0, len(m.deliverySNs[channel]))
		for p := range m.deliverySNs[channel] {
			peers = append(peers, p)
		}
		hasLocal := len(m.subscribers[channel]) > 0
		m.mu.Unlock()

		var d sn.Decision
		hdr := wire.ILPHeader{Service: wire.SvcOrdered, Conn: pkt.Hdr.Conn, Data: data}
		for _, p := range peers {
			if p == env.LocalAddr() {
				continue
			}
			hcopy := hdr
			d.Forwards = append(d.Forwards, sn.Forward{Dst: p, Hdr: &hcopy})
		}
		if hasLocal {
			m.bufferStamped(ts, channel, pkt.Payload, pkt.Hdr.Conn)
		}
		return d, nil

	case kindStamped:
		if len(pkt.Hdr.Data) < 9 {
			return sn.Decision{}, ErrBadHeader
		}
		ts := time.Unix(0, int64(binary.BigEndian.Uint64(pkt.Hdr.Data[1:9])))
		channel := string(pkt.Hdr.Data[9:])
		m.bufferStamped(ts, channel, pkt.Payload, pkt.Hdr.Conn)
		return sn.Decision{}, nil

	default:
		return sn.Decision{}, fmt.Errorf("ordered: unexpected kind %d", pkt.Hdr.Data[0])
	}
}

func (m *Module) bufferStamped(ts time.Time, channel string, payload []byte, conn wire.ConnectionID) {
	m.mu.Lock()
	heap.Push(&m.buffer, stamped{
		ts: ts, channel: channel,
		payload: append([]byte(nil), payload...),
		conn:    conn,
	})
	m.mu.Unlock()
}

// release drains buffered messages whose reorder window has elapsed,
// delivering them in timestamp order. Messages stamped earlier than the
// last released timestamp are late: delivered immediately with the late
// flag set.
func (m *Module) release(env sn.Env) {
	cutoff := m.gps.Now(env.Now()).Add(-m.window)
	for {
		m.mu.Lock()
		if len(m.buffer) == 0 || m.buffer[0].ts.After(cutoff) {
			m.mu.Unlock()
			return
		}
		it := heap.Pop(&m.buffer).(stamped)
		late := it.ts.Before(m.lastOut)
		if !late {
			m.lastOut = it.ts
		}
		targets := make([]wire.Addr, 0, len(m.subscribers[it.channel]))
		for h := range m.subscribers[it.channel] {
			targets = append(targets, h)
		}
		m.mu.Unlock()

		data := make([]byte, 10, 10+len(it.channel))
		data[0] = kindDeliver
		binary.BigEndian.PutUint64(data[1:9], uint64(it.ts.UnixNano()))
		if late {
			data[9] = 1
		}
		data = append(data, it.channel...)
		hdr := wire.ILPHeader{Service: wire.SvcOrdered, Conn: it.conn, Data: data}
		for _, h := range targets {
			if err := env.Send(h, &hdr, it.payload); err != nil {
				env.Logf("ordered: deliver to %s: %v", h, err)
			}
		}
	}
}

// --- Client ------------------------------------------------------------------

// Delivery is one ordered message as seen by a subscriber.
type Delivery struct {
	Timestamp time.Time
	Late      bool
	Payload   []byte
}

// Handler receives ordered deliveries.
type Handler func(channel string, d Delivery)

// Client is the host-side API.
type Client struct {
	h *host.Host

	mu      sync.Mutex
	conn    *host.Conn
	handler map[string]Handler
}

// NewClient attaches ordered-delivery client logic to a host.
func NewClient(h *host.Host) *Client {
	c := &Client{h: h, handler: make(map[string]Handler)}
	h.OnService(wire.SvcOrdered, c.onMessage)
	return c
}

func (c *Client) onMessage(msg host.Message) {
	if len(msg.Hdr.Data) < 10 || msg.Hdr.Data[0] != kindDeliver {
		return
	}
	ts := time.Unix(0, int64(binary.BigEndian.Uint64(msg.Hdr.Data[1:9])))
	late := msg.Hdr.Data[9] == 1
	channel := string(msg.Hdr.Data[10:])
	c.mu.Lock()
	fn, ok := c.handler[channel]
	c.mu.Unlock()
	if ok {
		fn(channel, Delivery{Timestamp: ts, Late: late, Payload: msg.Payload})
	}
}

// Subscribe registers for ordered deliveries on a channel.
func (c *Client) Subscribe(channel string, fn Handler) error {
	c.mu.Lock()
	c.handler[channel] = fn
	c.mu.Unlock()
	_, err := c.h.InvokeFirstHop(wire.SvcOrdered, "subscribe", subscribeArgs{Channel: channel})
	return err
}

// Submit sends a message for global ordering.
func (c *Client) Submit(channel string, payload []byte) error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		var err error
		conn, err = c.h.NewConn(wire.SvcOrdered)
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.conn = conn
		c.mu.Unlock()
	}
	return conn.Send(append([]byte{kindSubmit}, channel...), payload)
}

// AddPeer tells a host's first-hop SN that channel subscribers live behind
// the given SNs.
func (c *Client) AddPeer(channel string, peers []wire.Addr) error {
	ps := make([]string, len(peers))
	for i, p := range peers {
		ps[i] = p.String()
	}
	_, err := c.h.InvokeFirstHop(wire.SvcOrdered, "add_peer", subscribeArgs{Channel: channel, Peers: ps})
	return err
}
