package ddos

import (
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/wire"
)

func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain, *Module) {
	t.Helper()
	topo := lab.New()
	mod := New()
	ed, err := topo.AddEdomain("ed-a", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.SNs[0].Register(mod); err != nil {
		t.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed, mod
}

func protect(t *testing.T, h *host.Host, rate, burst float64) {
	t.Helper()
	if _, err := h.InvokeFirstHop(wire.SvcDDoS, "protect", protectArgs{
		Target: h.Addr().String(), Rate: rate, Burst: burst,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLegitTrafficPasses(t *testing.T) {
	topo, ed, _ := newWorld(t)
	target, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	protect(t, target, 1e6, 1e6)
	sender, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan host.Message, 16)
	target.OnService(wire.SvcDDoS, func(msg host.Message) { got <- msg })
	conn, err := sender.NewConn(wire.SvcDDoS)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := conn.Send(TargetData(target.Addr()), []byte("legit")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		select {
		case <-got:
		case <-time.After(3 * time.Second):
			t.Fatalf("only %d/5 legit packets delivered", i)
		}
	}
}

func TestAttackerDroppedAtFastPath(t *testing.T) {
	topo, ed, mod := newWorld(t)
	target, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny budget: ~2 small packets.
	protect(t, target, 10, 60)
	attacker, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := attacker.NewConn(wire.SvcDDoS)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	// Flood.
	for i := 0; i < 30; i++ {
		if err := conn.Send(TargetData(target.Addr()), payload); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let the slow path see early packets
	}
	node := ed.SNs[0]
	deadline := time.Now().Add(3 * time.Second)
	for node.Counters().RuleDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no fast-path drops; counters %+v", node.Counters())
		}
		time.Sleep(time.Millisecond)
	}
	if mod.ActiveDrops() == 0 {
		t.Fatal("module recorded no penalized flows")
	}
}

func TestDropRuleExpires(t *testing.T) {
	topo, ed, mod := newWorld(t)
	mod.SetPenalty(100 * time.Millisecond)
	target, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	protect(t, target, 10, 60)
	attacker, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan host.Message, 64)
	target.OnService(wire.SvcDDoS, func(msg host.Message) { got <- msg })
	conn, err := attacker.NewConn(wire.SvcDDoS)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	for i := 0; i < 10; i++ {
		if err := conn.Send(TargetData(target.Addr()), payload); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(3 * time.Second)
	for mod.ActiveDrops() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no drop installed")
		}
		time.Sleep(time.Millisecond)
	}
	// Wait out the penalty; the bucket refills and a later packet passes
	// again (a fresh packet triggers expiry processing).
	time.Sleep(300 * time.Millisecond)
	drainAll(got)
	if err := conn.Send(TargetData(target.Addr()), []byte("small")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(3 * time.Second):
		t.Fatal("traffic never recovered after penalty expiry")
	}
}

func drainAll(ch chan host.Message) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

func TestUnprotectedTargetRejected(t *testing.T) {
	topo, ed, _ := newWorld(t)
	sender, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := sender.NewConn(wire.SvcDDoS)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(TargetData(wire.MustAddr("fd00::dead")), []byte("x")); err != nil {
		t.Fatal(err)
	}
	node := ed.SNs[0]
	deadline := time.Now().Add(3 * time.Second)
	for node.Counters().ModuleErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("packet for unprotected target not rejected")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestProtectValidation(t *testing.T) {
	topo, ed, _ := newWorld(t)
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.InvokeFirstHop(wire.SvcDDoS, "protect", protectArgs{Target: "not-an-addr", Rate: 1, Burst: 1}); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, err := h.InvokeFirstHop(wire.SvcDDoS, "protect", protectArgs{Target: h.Addr().String(), Rate: 0, Burst: 1}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := h.InvokeFirstHop(wire.SvcDDoS, "unknown-op", nil); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestUnprotectStopsService(t *testing.T) {
	topo, ed, _ := newWorld(t)
	target, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	protect(t, target, 1e6, 1e6)
	if _, err := target.InvokeFirstHop(wire.SvcDDoS, "unprotect", protectArgs{Target: target.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	sender, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := sender.NewConn(wire.SvcDDoS)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(TargetData(target.Addr()), []byte("x")); err != nil {
		t.Fatal(err)
	}
	node := ed.SNs[0]
	deadline := time.Now().Add(3 * time.Second)
	for node.Counters().ModuleErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("packet after unprotect not rejected")
		}
		time.Sleep(time.Millisecond)
	}
}
