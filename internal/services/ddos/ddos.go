// Package ddos implements DDoS protection (§6.2): customers register
// per-source rate limits for traffic addressed to them; the module polices
// flows with token buckets and — the InterEdge-specific part — offloads
// drop decisions for abusive sources into the pipe-terminus decision
// cache, so attack traffic dies on the fast path without touching the
// module (§4: "This cache is populated by the service modules").
//
// Drop rules expire after a penalty interval, after which the source is
// re-evaluated on the slow path.
package ddos

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"interedge/internal/sched"
	"interedge/internal/sn"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// Errors returned by the service.
var (
	ErrBadHeader    = errors.New("ddos: malformed header data")
	ErrNotProtected = errors.New("ddos: destination not protected here")
)

// DefaultPenalty is how long a drop rule stays installed.
const DefaultPenalty = 2 * time.Second

type protection struct {
	rate    float64
	burst   float64
	buckets map[wire.Addr]*sched.TokenBucket
}

// Module is the DDoS protection service.
type Module struct {
	penalty time.Duration

	mu        sync.Mutex
	protected map[wire.Addr]*protection
	dropped   map[wire.FlowKey]time.Time // drop rules awaiting expiry
}

// New creates the module with the default penalty interval.
func New() *Module {
	return &Module{
		penalty:   DefaultPenalty,
		protected: make(map[wire.Addr]*protection),
		dropped:   make(map[wire.FlowKey]time.Time),
	}
}

// SetPenalty overrides the drop-rule lifetime (tests).
func (m *Module) SetPenalty(d time.Duration) { m.penalty = d }

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcDDoS }

// Name implements sn.Module.
func (*Module) Name() string { return "ddos" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

type protectArgs struct {
	Target string  `json:"target"`
	Rate   float64 `json:"rate"`  // bytes/sec per source
	Burst  float64 `json:"burst"` // bytes
}

// HandleControl implements sn.ControlHandler: protect, unprotect.
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "protect":
		var a protectArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		target, err := netip.ParseAddr(a.Target)
		if err != nil {
			return nil, fmt.Errorf("ddos: bad target: %w", err)
		}
		if a.Rate <= 0 || a.Burst <= 0 {
			return nil, errors.New("ddos: rate and burst must be positive")
		}
		m.mu.Lock()
		m.protected[target] = &protection{
			rate: a.Rate, burst: a.Burst,
			buckets: make(map[wire.Addr]*sched.TokenBucket),
		}
		m.mu.Unlock()
		return nil, nil
	case "unprotect":
		var a protectArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		target, err := netip.ParseAddr(a.Target)
		if err != nil {
			return nil, err
		}
		m.mu.Lock()
		delete(m.protected, target)
		m.mu.Unlock()
		return nil, nil
	default:
		return nil, fmt.Errorf("ddos: unknown op %q", op)
	}
}

// TargetData encodes the protected destination as header data.
func TargetData(dst wire.Addr) []byte {
	b := dst.As16()
	return b[:]
}

// HandlePacket implements sn.Module: police the (source → target) flow.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) != 16 {
		return sn.Decision{}, ErrBadHeader
	}
	var b [16]byte
	copy(b[:], pkt.Hdr.Data)
	target := netip.AddrFrom16(b).Unmap()

	now := env.Now()
	m.mu.Lock()
	prot, ok := m.protected[target]
	if !ok {
		m.mu.Unlock()
		return sn.Decision{}, ErrNotProtected
	}
	bucket, ok := prot.buckets[pkt.Src]
	if !ok {
		bucket = sched.NewTokenBucket(prot.rate, prot.burst, now)
		prot.buckets[pkt.Src] = bucket
	}
	m.mu.Unlock()

	size := len(pkt.Payload) + pkt.Hdr.EncodedSize()
	if bucket.Allow(size, now) {
		// Within rate: forward. Policing requires the slow path, so no
		// forward rule is installed.
		return sn.Decision{Forwards: []sn.Forward{{Dst: target}}}, nil
	}
	// Over rate: offload a drop rule so the rest of the attack dies at the
	// pipe-terminus. The rule must expire by timer: once installed, the
	// fast path handles (drops) the flow, so the module will not see
	// another packet to trigger expiry.
	key := pkt.Key()
	m.mu.Lock()
	if _, already := m.dropped[key]; already {
		m.mu.Unlock()
		return sn.Decision{}, nil
	}
	m.dropped[key] = now.Add(m.penalty)
	m.mu.Unlock()
	env.Logf("ddos: source %s exceeded rate toward %s; drop rule installed", pkt.Src, target)
	go func() {
		<-env.After(m.penalty)
		m.mu.Lock()
		delete(m.dropped, key)
		m.mu.Unlock()
		env.InvalidateRule(key)
	}()
	return sn.Decision{
		Rules: []sn.Rule{{Key: key, Action: cache.Action{Drop: true}}},
	}, nil
}

// ActiveDrops reports currently penalized flows (tests).
func (m *Module) ActiveDrops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dropped)
}
