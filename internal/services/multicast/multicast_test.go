package multicast

import (
	"sync"
	"testing"
	"time"

	"interedge/internal/cryptutil"
	"interedge/internal/lab"
	"interedge/internal/lookup"
	"interedge/internal/sn"
)

type world struct {
	topo  *lab.Topology
	owner cryptutil.SigningKeypair
}

func newWorld(t *testing.T) *world {
	t.Helper()
	topo := lab.New()
	setup := func(node *sn.SN, ed *lab.Edomain) error {
		return node.Register(New(ed.Core, topo.Fabric, topo.Global))
	}
	for _, id := range []lookup.EdomainID{"ed-a", "ed-b"} {
		if _, err := topo.AddEdomain(id, 2, setup); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	owner, err := cryptutil.NewSigningKeypair()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return &world{topo: topo, owner: owner}
}

func (w *world) openGroup(t *testing.T, g string) {
	t.Helper()
	if err := w.topo.Global.CreateGroup(lookup.GroupID(g), w.owner.Public); err != nil {
		t.Fatal(err)
	}
	if err := w.topo.Global.PostOpenStatement(lookup.GroupID(g), lookup.SignOpenStatement(w.owner, lookup.GroupID(g))); err != nil {
		t.Fatal(err)
	}
}

type sink struct {
	mu  sync.Mutex
	got []string
	ch  chan string
}

func newSink() *sink { return &sink{ch: make(chan string, 64)} }

func (s *sink) handler(group string, payload []byte) {
	s.mu.Lock()
	s.got = append(s.got, string(payload))
	s.mu.Unlock()
	s.ch <- string(payload)
}

func (s *sink) await(t *testing.T, want string) {
	t.Helper()
	deadline := time.After(3 * time.Second)
	for {
		select {
		case got := <-s.ch:
			if got == want {
				return
			}
		case <-deadline:
			t.Fatalf("never received %q", want)
		}
	}
}

func TestMulticastFanOutAcrossEdomains(t *testing.T) {
	w := newWorld(t)
	w.openGroup(t, "game")
	edA, _ := w.topo.Edomain("ed-a")
	edB, _ := w.topo.Edomain("ed-b")

	sinks := make([]*sink, 3)
	spots := []struct {
		ed  *lab.Edomain
		idx int
	}{{edA, 0}, {edA, 1}, {edB, 1}}
	for i, spot := range spots {
		h, err := w.topo.NewHost(spot.ed, spot.idx)
		if err != nil {
			t.Fatal(err)
		}
		cl := NewClient(h)
		sinks[i] = newSink()
		if err := cl.Join("game", nil, sinks[i].handler); err != nil {
			t.Fatal(err)
		}
	}
	sender, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	scl := NewClient(sender)
	if err := scl.RegisterSender("game"); err != nil {
		t.Fatal(err)
	}
	if err := scl.Send("game", []byte("tick")); err != nil {
		t.Fatal(err)
	}
	for i, s := range sinks {
		s.await(t, "tick")
		_ = i
	}
}

func TestSenderMembershipNotEchoed(t *testing.T) {
	w := newWorld(t)
	w.openGroup(t, "g")
	edA, _ := w.topo.Edomain("ed-a")
	h, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(h)
	s := newSink()
	if err := cl.Join("g", nil, s.handler); err != nil {
		t.Fatal(err)
	}
	if err := cl.RegisterSender("g"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Send("g", []byte("self")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-s.ch:
		t.Fatalf("sender received its own packet %q", got)
	case <-time.After(150 * time.Millisecond):
	}
}

func TestUnregisteredSenderRejected(t *testing.T) {
	w := newWorld(t)
	w.openGroup(t, "g")
	edA, _ := w.topo.Edomain("ed-a")
	h, err := w.topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(h)
	if err := cl.Send("g", []byte("nope")); err != nil {
		t.Fatal(err)
	}
	node := edA.SNs[0]
	deadline := time.Now().Add(3 * time.Second)
	for node.Counters().ModuleErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unregistered send never rejected")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLeaveStopsDelivery(t *testing.T) {
	w := newWorld(t)
	w.openGroup(t, "g")
	edA, _ := w.topo.Edomain("ed-a")
	member, _ := w.topo.NewHost(edA, 1)
	mcl := NewClient(member)
	s := newSink()
	if err := mcl.Join("g", nil, s.handler); err != nil {
		t.Fatal(err)
	}
	sender, _ := w.topo.NewHost(edA, 0)
	scl := NewClient(sender)
	if err := scl.RegisterSender("g"); err != nil {
		t.Fatal(err)
	}
	if err := scl.Send("g", []byte("one")); err != nil {
		t.Fatal(err)
	}
	s.await(t, "one")
	if err := mcl.Leave("g"); err != nil {
		t.Fatal(err)
	}
	if err := scl.Send("g", []byte("two")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-s.ch:
		t.Fatalf("received %q after leave", got)
	case <-time.After(150 * time.Millisecond):
	}
}

func TestClosedGroupJoinNeedsAuth(t *testing.T) {
	w := newWorld(t)
	if err := w.topo.Global.CreateGroup("vip", w.owner.Public); err != nil {
		t.Fatal(err)
	}
	edA, _ := w.topo.Edomain("ed-a")
	h, _ := w.topo.NewHost(edA, 0)
	cl := NewClient(h)
	s := newSink()
	if err := cl.Join("vip", nil, s.handler); err == nil {
		t.Fatal("unauthorized join succeeded")
	}
	auth := lookup.SignJoinAuthorization(w.owner, "vip", h.Identity().PublicKey())
	if err := cl.Join("vip", auth, s.handler); err != nil {
		t.Fatal(err)
	}
}
