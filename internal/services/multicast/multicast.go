// Package multicast implements InterEdge multicast packet delivery (§6.2):
// receivers join groups with owner-authorized signed joins, senders
// register before sending, and SNs fan packets out to every member host —
// through member SNs within the edomain and into remote member edomains
// via the peering fabric.
//
// Unlike pub/sub (message-oriented, with retained replay), multicast is a
// raw packet service: payloads are forwarded as-is with the sender's
// connection ID preserved, and nothing is retained.
package multicast

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"interedge/internal/edomain"
	"interedge/internal/host"
	"interedge/internal/lookup"
	"interedge/internal/peering"
	"interedge/internal/services/groupfan"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Packet kinds in the first byte of header data.
const (
	kindSend    byte = iota // host → first-hop SN
	kindIntra               // SN → member SN, same edomain
	kindInter               // SN → remote edomain gateway (via transit)
	kindDeliver             // SN → member host
)

// Errors returned by the module.
var (
	ErrNotSender   = errors.New("multicast: host is not a registered sender")
	ErrBadHeader   = errors.New("multicast: malformed header data")
	ErrUnknownPeer = errors.New("multicast: request from host without verified identity")
)

// HeaderData encodes (kind, group) as header data.
func HeaderData(kind byte, group string) []byte {
	return append([]byte{kind}, group...)
}

func parseHeader(data []byte) (byte, string, error) {
	if len(data) < 1 {
		return 0, "", ErrBadHeader
	}
	return data[0], string(data[1:]), nil
}

// Module is the multicast service module.
type Module struct {
	core   *edomain.Core
	fabric *peering.Fabric
	global *lookup.Service
	fan    groupfan.Fanout

	mu       sync.Mutex
	members  map[string]map[wire.Addr]struct{}
	senders  map[string]map[wire.Addr]struct{}
	snSender map[string]func() // group -> cancel of SN-level registration
}

// New creates the multicast module.
func New(core *edomain.Core, fabric *peering.Fabric, global *lookup.Service) *Module {
	return &Module{
		core:     core,
		fabric:   fabric,
		global:   global,
		fan:      groupfan.Fanout{Core: core, Fabric: fabric},
		members:  make(map[string]map[wire.Addr]struct{}),
		senders:  make(map[string]map[wire.Addr]struct{}),
		snSender: make(map[string]func()),
	}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcMulticast }

// Name implements sn.Module.
func (*Module) Name() string { return "multicast" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// Stop implements sn.Stopper.
func (m *Module) Stop() error {
	m.mu.Lock()
	cancels := make([]func(), 0, len(m.snSender))
	for _, c := range m.snSender {
		cancels = append(cancels, c)
	}
	m.snSender = make(map[string]func())
	m.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	return nil
}

type joinArgs struct {
	Group string `json:"group"`
	Auth  []byte `json:"auth,omitempty"`
}

type groupArgs struct {
	Group string `json:"group"`
}

// HandleControl implements sn.ControlHandler: join, leave, register_sender.
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "join":
		var a joinArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("multicast: bad join args: %w", err)
		}
		identity, ok := env.PeerIdentity(src)
		if !ok {
			return nil, ErrUnknownPeer
		}
		if err := m.global.ValidateJoin(lookup.GroupID(a.Group), identity, a.Auth); err != nil {
			return nil, fmt.Errorf("multicast: join rejected: %w", err)
		}
		m.mu.Lock()
		if m.members[a.Group] == nil {
			m.members[a.Group] = make(map[wire.Addr]struct{})
		}
		m.members[a.Group][src] = struct{}{}
		m.mu.Unlock()
		return nil, m.core.JoinGroup(lookup.GroupID(a.Group), env.LocalAddr(), src)

	case "leave":
		var a groupArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		m.mu.Lock()
		if hs, ok := m.members[a.Group]; ok {
			delete(hs, src)
			if len(hs) == 0 {
				delete(m.members, a.Group)
			}
		}
		m.mu.Unlock()
		return nil, m.core.LeaveGroup(lookup.GroupID(a.Group), env.LocalAddr(), src)

	case "register_sender":
		var a groupArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return nil, m.registerSender(env, src, a.Group)

	default:
		return nil, fmt.Errorf("multicast: unknown op %q", op)
	}
}

func (m *Module) registerSender(env sn.Env, src wire.Addr, group string) error {
	m.mu.Lock()
	if m.senders[group] == nil {
		m.senders[group] = make(map[wire.Addr]struct{})
	}
	m.senders[group][src] = struct{}{}
	needSN := m.snSender[group] == nil
	m.mu.Unlock()
	if !needSN {
		return nil
	}
	_, events, cancel, err := m.core.RegisterSender(lookup.GroupID(group), env.LocalAddr())
	if err != nil {
		return err
	}
	go func() {
		for range events {
		}
	}()
	m.mu.Lock()
	if m.snSender[group] != nil {
		m.mu.Unlock()
		cancel()
		return nil
	}
	m.snSender[group] = cancel
	m.mu.Unlock()
	return nil
}

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	kind, group, err := parseHeader(pkt.Hdr.Data)
	if err != nil {
		return sn.Decision{}, err
	}
	switch kind {
	case kindSend:
		m.mu.Lock()
		_, isSender := m.senders[group][pkt.Src]
		m.mu.Unlock()
		if !isSender {
			return sn.Decision{}, ErrNotSender
		}
		d := m.deliverLocal(env, group, pkt)
		intra := wire.ILPHeader{Service: wire.SvcMulticast, Conn: pkt.Hdr.Conn, Data: HeaderData(kindIntra, group)}
		if err := m.fan.SpreadIntra(env, lookup.GroupID(group), &intra, pkt.Payload); err != nil {
			env.Logf("multicast: intra: %v", err)
		}
		inter := wire.ILPHeader{Service: wire.SvcMulticast, Conn: pkt.Hdr.Conn, Data: HeaderData(kindInter, group)}
		if err := m.fan.SpreadInter(env, lookup.GroupID(group), &inter, pkt.Payload, env.LocalAddr()); err != nil {
			env.Logf("multicast: inter: %v", err)
		}
		return d, nil

	case kindIntra:
		return m.deliverLocal(env, group, pkt), nil

	case kindInter:
		d := m.deliverLocal(env, group, pkt)
		intra := wire.ILPHeader{Service: wire.SvcMulticast, Conn: pkt.Hdr.Conn, Data: HeaderData(kindIntra, group)}
		if err := m.fan.SpreadIntra(env, lookup.GroupID(group), &intra, pkt.Payload); err != nil {
			env.Logf("multicast: inter->intra: %v", err)
		}
		return d, nil

	default:
		return sn.Decision{}, fmt.Errorf("multicast: unexpected kind %d", kind)
	}
}

// deliverLocal builds forwards to every local member host.
func (m *Module) deliverLocal(env sn.Env, group string, pkt *sn.Packet) sn.Decision {
	m.mu.Lock()
	targets := make([]wire.Addr, 0, len(m.members[group]))
	for h := range m.members[group] {
		targets = append(targets, h)
	}
	m.mu.Unlock()
	var d sn.Decision
	hdr := wire.ILPHeader{Service: wire.SvcMulticast, Conn: pkt.Hdr.Conn, Data: HeaderData(kindDeliver, group)}
	for _, h := range targets {
		if h == pkt.Src {
			continue // don't echo to the sending member
		}
		hcopy := hdr
		d.Forwards = append(d.Forwards, sn.Forward{Dst: h, Hdr: &hcopy})
	}
	return d
}

// --- Host-side client -------------------------------------------------------

// Handler receives one multicast delivery.
type Handler func(group string, payload []byte)

// Client is the host-side multicast logic.
type Client struct {
	h *host.Host

	mu      sync.Mutex
	conn    *host.Conn
	handler map[string]Handler
}

// NewClient attaches multicast client logic to a host.
func NewClient(h *host.Host) *Client {
	c := &Client{h: h, handler: make(map[string]Handler)}
	h.OnService(wire.SvcMulticast, c.onMessage)
	return c
}

func (c *Client) onMessage(msg host.Message) {
	kind, group, err := parseHeader(msg.Hdr.Data)
	if err != nil || kind != kindDeliver {
		return
	}
	c.mu.Lock()
	fn, ok := c.handler[group]
	c.mu.Unlock()
	if ok {
		fn(group, msg.Payload)
	}
}

// Join joins a group (auth nil for open groups).
func (c *Client) Join(group string, auth []byte, fn Handler) error {
	c.mu.Lock()
	c.handler[group] = fn
	c.mu.Unlock()
	if _, err := c.h.InvokeFirstHop(wire.SvcMulticast, "join", joinArgs{Group: group, Auth: auth}); err != nil {
		c.mu.Lock()
		delete(c.handler, group)
		c.mu.Unlock()
		return err
	}
	return nil
}

// Leave leaves a group.
func (c *Client) Leave(group string) error {
	c.mu.Lock()
	delete(c.handler, group)
	c.mu.Unlock()
	_, err := c.h.InvokeFirstHop(wire.SvcMulticast, "leave", groupArgs{Group: group})
	return err
}

// RegisterSender registers intent to send.
func (c *Client) RegisterSender(group string) error {
	_, err := c.h.InvokeFirstHop(wire.SvcMulticast, "register_sender", groupArgs{Group: group})
	return err
}

// Send multicasts a payload to a group.
func (c *Client) Send(group string, payload []byte) error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		var err error
		conn, err = c.h.NewConn(wire.SvcMulticast)
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.conn = conn
		c.mu.Unlock()
	}
	return conn.Send(HeaderData(kindSend, group), payload)
}
