package qos

import "time"

func durationFromSeconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
