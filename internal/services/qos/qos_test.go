package qos

import (
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/wire"
)

func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain, *Module) {
	t.Helper()
	topo := lab.New()
	mod := New()
	ed, err := topo.AddEdomain("ed-a", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.SNs[0].Register(mod); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed, mod
}

func TestUnconfiguredPassThrough(t *testing.T) {
	topo, ed, _ := newWorld(t)
	receiver, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan host.Message, 1)
	receiver.OnService(wire.SvcQoS, func(msg host.Message) { got <- msg })
	conn, err := sender.NewConn(wire.SvcQoS)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(DestData(receiver.Addr()), []byte("through")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg.Payload) != "through" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
}

func TestConfigureValidation(t *testing.T) {
	topo, ed, _ := newWorld(t)
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := []ConfigArgs{
		{BandwidthBps: 0, Mode: "wfq"},
		{BandwidthBps: 1000, Mode: "nonsense"},
		{BandwidthBps: 1000, Mode: "wfq", Classes: []Class{{Prefix: "not-a-prefix", Weight: 1}}},
		{BandwidthBps: 1000, Mode: "wfq", Classes: []Class{{Prefix: "fd00::/64", Weight: 0}}},
	}
	for i, args := range bad {
		if _, err := h.InvokeFirstHop(wire.SvcQoS, "configure", args); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	good := ConfigArgs{BandwidthBps: 1e6, Mode: "priority", Classes: []Class{{Prefix: "fd00::/16", Level: 1}}}
	if _, err := h.InvokeFirstHop(wire.SvcQoS, "configure", good); err != nil {
		t.Fatal(err)
	}
}

// The §6.2 household scenario: gaming traffic prioritized over streaming
// across a congested access link. With strict priority and a slow link,
// gaming packets must be delivered ahead of queued bulk packets.
func TestPriorityGamingBeatsBulk(t *testing.T) {
	topo, ed, _ := newWorld(t)
	receiver, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Senders with recognizable prefixes: fd00:aaaa::/32 = gaming,
	// everything else default (lower priority).
	gamer, err := topo.NewHostAt("fd00:aaaa::1")
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := topo.NewHostAt("fd00:bbbb::1")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*host.Host{gamer, bulk} {
		if err := h.Associate(ed.SNs[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}

	// 50 KB/s link: a 1KB packet takes 20ms to serialize.
	cfg := ConfigArgs{
		BandwidthBps: 50_000,
		Mode:         "priority",
		Classes:      []Class{{Prefix: "fd00:aaaa::/32", Level: 0}},
	}
	if _, err := receiver.InvokeFirstHop(wire.SvcQoS, "configure", cfg); err != nil {
		t.Fatal(err)
	}

	type arrival struct {
		src wire.Addr
	}
	got := make(chan arrival, 64)
	receiver.OnService(wire.SvcQoS, func(msg host.Message) {
		// src of delivered packet is the SN; identify class via payload tag
		got <- arrival{src: msg.Src}
	})
	// Use payload tags instead.
	tagged := make(chan string, 64)
	receiver.OnService(wire.SvcQoS, func(msg host.Message) { tagged <- string(msg.Payload[:1]) })

	bigPayload := make([]byte, 1000)
	bigPayload[0] = 'B'
	bulkConn, err := bulk.NewConn(wire.SvcQoS)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the link with bulk.
	for i := 0; i < 20; i++ {
		if err := bulkConn.Send(DestData(receiver.Addr()), bigPayload); err != nil {
			t.Fatal(err)
		}
	}
	// Give the queue a moment to build.
	time.Sleep(50 * time.Millisecond)
	gamePayload := []byte("G")
	gameConn, err := gamer.NewConn(wire.SvcQoS)
	if err != nil {
		t.Fatal(err)
	}
	if err := gameConn.Send(DestData(receiver.Addr()), gamePayload); err != nil {
		t.Fatal(err)
	}

	// The gaming packet must arrive before the bulk backlog drains: among
	// the next few deliveries we see G well before the 20th bulk packet.
	seenG := false
	bulkBefore := 0
	deadline := time.After(10 * time.Second)
	for !seenG {
		select {
		case tag := <-tagged:
			if tag == "G" {
				seenG = true
			} else {
				bulkBefore++
			}
		case <-deadline:
			t.Fatal("gaming packet never arrived")
		}
	}
	if bulkBefore > 10 {
		t.Fatalf("gaming packet arrived after %d bulk packets; priority not applied", bulkBefore)
	}
	_ = got
}

// WFQ: with weights 3:1 and equal offered load, the heavy class receives
// roughly 3x the bytes over the congested interval.
func TestWFQShareUnderCongestion(t *testing.T) {
	topo, ed, _ := newWorld(t)
	receiver, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := topo.NewHostAt("fd00:aaaa::2")
	if err != nil {
		t.Fatal(err)
	}
	light, err := topo.NewHostAt("fd00:bbbb::2")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*host.Host{heavy, light} {
		if err := h.Associate(ed.SNs[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	cfg := ConfigArgs{
		BandwidthBps: 100_000,
		Mode:         "wfq",
		Classes: []Class{
			{Prefix: "fd00:aaaa::/32", Weight: 3},
			{Prefix: "fd00:bbbb::/32", Weight: 1},
		},
	}
	if _, err := receiver.InvokeFirstHop(wire.SvcQoS, "configure", cfg); err != nil {
		t.Fatal(err)
	}
	counts := make(chan byte, 256)
	receiver.OnService(wire.SvcQoS, func(msg host.Message) { counts <- msg.Payload[0] })

	hConn, _ := heavy.NewConn(wire.SvcQoS)
	lConn, _ := light.NewConn(wire.SvcQoS)
	payloadH := make([]byte, 500)
	payloadH[0] = 'H'
	payloadL := make([]byte, 500)
	payloadL[0] = 'L'
	for i := 0; i < 40; i++ {
		if err := hConn.Send(DestData(receiver.Addr()), payloadH); err != nil {
			t.Fatal(err)
		}
		if err := lConn.Send(DestData(receiver.Addr()), payloadL); err != nil {
			t.Fatal(err)
		}
	}
	// Observe the first 24 deliveries of the congested period.
	h, l := 0, 0
	deadline := time.After(10 * time.Second)
	for h+l < 24 {
		select {
		case b := <-counts:
			if b == 'H' {
				h++
			} else {
				l++
			}
		case <-deadline:
			t.Fatalf("timeout with %d H, %d L", h, l)
		}
	}
	if h < 2*l {
		t.Fatalf("WFQ share violated: %d heavy vs %d light (want ~3:1)", h, l)
	}
}

func TestClearRemovesPolicy(t *testing.T) {
	topo, ed, mod := newWorld(t)
	receiver, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ConfigArgs{BandwidthBps: 1000, Mode: "wfq"}
	if _, err := receiver.InvokeFirstHop(wire.SvcQoS, "configure", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := receiver.InvokeFirstHop(wire.SvcQoS, "clear", nil); err != nil {
		t.Fatal(err)
	}
	if mod.QueueLen(receiver.Addr()) != 0 {
		t.Fatal("state left after clear")
	}
}
