// Package qos implements last-hop QoS (§6.2): a receiver tells its
// first-hop SN — which sits on the far side of the receiver's congested
// access link — the total bandwidth that link can handle plus a set of
// weights (weighted fair queueing) or priorities (strict priority) for
// traffic classes identified by source prefixes. The SN then schedules
// and shapes the receiver's incoming traffic accordingly, so that e.g.
// gaming traffic stays low-latency while a movie stream keeps its share.
package qos

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"sync"

	"interedge/internal/sched"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Errors returned by the service.
var (
	ErrBadHeader = errors.New("qos: malformed header data")
	ErrBadConfig = errors.New("qos: invalid configuration")
)

// Class binds a source prefix to a scheduling parameter.
type Class struct {
	// Prefix selects sources (e.g. "fd00:1::/32").
	Prefix string `json:"prefix"`
	// Weight is the WFQ weight (mode "wfq").
	Weight float64 `json:"weight,omitempty"`
	// Level is the strict priority (mode "priority", lower = served first).
	Level int `json:"level,omitempty"`
}

// ConfigArgs is the control-op payload for "configure".
type ConfigArgs struct {
	// BandwidthBps is the access-link capacity in bytes per second.
	BandwidthBps float64 `json:"bandwidth_bps"`
	// Mode is "wfq" or "priority".
	Mode string `json:"mode"`
	// Classes lists the traffic classes.
	Classes []Class `json:"classes"`
	// QueueCapacity bounds queued packets (default 1024).
	QueueCapacity int `json:"queue_capacity,omitempty"`
}

type receiverState struct {
	bandwidth float64
	scheduler sched.Scheduler
	prefixes  []classPrefix
	kick      chan struct{}
	stop      chan struct{}
}

type classPrefix struct {
	prefix netip.Prefix
	name   string
}

type queuedPacket struct {
	dst     wire.Addr
	hdr     wire.ILPHeader
	payload []byte
}

// Module is the last-hop QoS service.
type Module struct {
	mu        sync.Mutex
	receivers map[wire.Addr]*receiverState
	env       sn.Env
	stopped   bool
}

// New creates the module.
func New() *Module {
	return &Module{receivers: make(map[wire.Addr]*receiverState)}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcQoS }

// Name implements sn.Module.
func (*Module) Name() string { return "qos" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// Start implements sn.Starter.
func (m *Module) Start(env sn.Env) error {
	m.mu.Lock()
	m.env = env
	m.mu.Unlock()
	return nil
}

// Stop implements sn.Stopper.
func (m *Module) Stop() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return nil
	}
	m.stopped = true
	for _, st := range m.receivers {
		close(st.stop)
	}
	return nil
}

// HandleControl implements sn.ControlHandler: op "configure" installs the
// requesting receiver's scheduling policy ("they specify to their
// first-hop SN … the total bandwidth that their access link can handle
// and a set of weights or priorities … for various traffic streams
// (identified by source prefixes)", §6.2).
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "configure":
		var a ConfigArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("qos: bad configure args: %w", err)
		}
		return nil, m.configure(env, src, a)
	case "clear":
		m.mu.Lock()
		if st, ok := m.receivers[src]; ok {
			close(st.stop)
			delete(m.receivers, src)
		}
		m.mu.Unlock()
		return nil, nil
	default:
		return nil, fmt.Errorf("qos: unknown op %q", op)
	}
}

func (m *Module) configure(env sn.Env, receiver wire.Addr, a ConfigArgs) error {
	if a.BandwidthBps <= 0 {
		return fmt.Errorf("%w: bandwidth must be positive", ErrBadConfig)
	}
	capacity := a.QueueCapacity
	if capacity == 0 {
		capacity = 1024
	}
	var scheduler sched.Scheduler
	var prefixes []classPrefix
	switch a.Mode {
	case "wfq":
		w := sched.NewWFQ(capacity)
		for _, c := range a.Classes {
			p, err := netip.ParsePrefix(c.Prefix)
			if err != nil {
				return fmt.Errorf("%w: prefix %q: %v", ErrBadConfig, c.Prefix, err)
			}
			if err := w.SetWeight(c.Prefix, c.Weight); err != nil {
				return fmt.Errorf("%w: %v", ErrBadConfig, err)
			}
			prefixes = append(prefixes, classPrefix{prefix: p, name: c.Prefix})
		}
		scheduler = w
	case "priority":
		p := sched.NewPriority(capacity)
		for _, c := range a.Classes {
			pre, err := netip.ParsePrefix(c.Prefix)
			if err != nil {
				return fmt.Errorf("%w: prefix %q: %v", ErrBadConfig, c.Prefix, err)
			}
			p.SetLevel(c.Prefix, c.Level)
			prefixes = append(prefixes, classPrefix{prefix: pre, name: c.Prefix})
		}
		scheduler = p
	default:
		return fmt.Errorf("%w: unknown mode %q", ErrBadConfig, a.Mode)
	}

	st := &receiverState{
		bandwidth: a.BandwidthBps,
		scheduler: scheduler,
		prefixes:  prefixes,
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
	m.mu.Lock()
	if old, ok := m.receivers[receiver]; ok {
		close(old.stop)
	}
	m.receivers[receiver] = st
	m.mu.Unlock()
	go m.drain(env, receiver, st)
	return nil
}

// classify maps a source to its class name via longest prefix match.
func (st *receiverState) classify(src wire.Addr) string {
	best := ""
	bestBits := -1
	for _, cp := range st.prefixes {
		if cp.prefix.Contains(src) && cp.prefix.Bits() > bestBits {
			best = cp.name
			bestBits = cp.prefix.Bits()
		}
	}
	if best == "" {
		return "default"
	}
	return best
}

// DestData encodes the receiving host as header data.
func DestData(dst wire.Addr) []byte {
	b := dst.As16()
	return b[:]
}

// HandlePacket implements sn.Module: packets for configured receivers are
// scheduled and shaped; others pass straight through.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) != 16 {
		return sn.Decision{}, ErrBadHeader
	}
	var b [16]byte
	copy(b[:], pkt.Hdr.Data)
	dst := netip.AddrFrom16(b).Unmap()

	m.mu.Lock()
	st, ok := m.receivers[dst]
	m.mu.Unlock()
	if !ok {
		return sn.Decision{Forwards: []sn.Forward{{Dst: dst}}}, nil
	}
	flow := st.classify(pkt.Src)
	qp := &queuedPacket{
		dst:     dst,
		hdr:     wire.ILPHeader{Service: wire.SvcQoS, Conn: pkt.Hdr.Conn, Data: append([]byte(nil), pkt.Hdr.Data...)},
		payload: append([]byte(nil), pkt.Payload...),
	}
	size := len(pkt.Payload) + pkt.Hdr.EncodedSize()
	if !st.scheduler.Enqueue(sched.Item{Flow: flow, Size: size, Data: qp}) {
		env.Logf("qos: queue full for %s, dropping packet from %s", dst, pkt.Src)
		return sn.Decision{}, nil
	}
	select {
	case st.kick <- struct{}{}:
	default:
	}
	return sn.Decision{}, nil
}

// drain paces the receiver's queue at the configured access-link rate.
func (m *Module) drain(env sn.Env, receiver wire.Addr, st *receiverState) {
	for {
		it, ok := st.scheduler.Dequeue()
		if !ok {
			select {
			case <-st.kick:
				continue
			case <-st.stop:
				return
			}
		}
		qp := it.Data.(*queuedPacket)
		if err := env.Send(qp.dst, &qp.hdr, qp.payload); err != nil {
			env.Logf("qos: deliver to %s: %v", qp.dst, err)
		}
		// Shape: hold the link for the packet's serialization time.
		txTime := float64(it.Size) / st.bandwidth
		select {
		case <-env.After(durationFromSeconds(txTime)):
		case <-st.stop:
			return
		}
	}
}

// QueueLen reports a receiver's queue depth (tests).
func (m *Module) QueueLen(receiver wire.Addr) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.receivers[receiver]; ok {
		return st.scheduler.Len()
	}
	return 0
}
