// Package bulk implements bulk data delivery (§6.2: "Bulk data delivery is
// a form of multipoint delivery but focuses on large data transfers …
// we are currently building such a service for possible use for large
// experimental datasets in the scientific community").
//
// A publisher pushes a named dataset to its first-hop SN, which stores the
// chunks. Receivers — possibly many, possibly resuming after interruption
// — pull chunks by index from the SN, so the publisher uploads once
// regardless of the number of downloaders, and a resumed transfer only
// fetches the chunks it is missing.
package bulk

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"interedge/internal/host"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// ChunkSize is the dataset chunk carried per packet.
const ChunkSize = 1024

// Packet kinds in the first byte of header data.
const (
	kindPut     byte = iota // publisher → SN (data: kind ‖ idx(4) ‖ total(4) ‖ name)
	kindRequest             // receiver → SN (data: kind ‖ idx(4) ‖ name)
	kindChunk               // SN → receiver (data: kind ‖ idx(4) ‖ total(4) ‖ name)
	kindMissing             // SN → receiver: chunk unavailable
)

// Errors returned by the service.
var (
	ErrBadHeader  = errors.New("bulk: malformed header data")
	ErrUnknown    = errors.New("bulk: unknown dataset")
	ErrIncomplete = errors.New("bulk: dataset incomplete at SN")
	ErrTimeout    = errors.New("bulk: transfer timed out")
)

type dataset struct {
	total  int
	chunks [][]byte
	have   int
}

// Module is the bulk-delivery service for one SN.
type Module struct {
	mu       sync.Mutex
	datasets map[string]*dataset
}

// New creates the module.
func New() *Module {
	return &Module{datasets: make(map[string]*dataset)}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcBulk }

// Name implements sn.Module.
func (*Module) Name() string { return "bulk" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

type statArgs struct {
	Name string `json:"name"`
}

type statReply struct {
	Total int    `json:"total"`
	Have  int    `json:"have"`
	Hash  string `json:"hash,omitempty"`
}

// HandleControl implements sn.ControlHandler: op "stat" reports a
// dataset's chunk count and completeness so receivers can plan transfers.
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "stat":
		var a statArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		ds, ok := m.datasets[a.Name]
		if !ok {
			return nil, ErrUnknown
		}
		rep := statReply{Total: ds.total, Have: ds.have}
		if ds.have == ds.total {
			h := sha256.New()
			for _, c := range ds.chunks {
				h.Write(c)
			}
			rep.Hash = fmt.Sprintf("%x", h.Sum(nil))
		}
		return json.Marshal(rep)
	default:
		return nil, fmt.Errorf("bulk: unknown op %q", op)
	}
}

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) < 1 {
		return sn.Decision{}, ErrBadHeader
	}
	switch pkt.Hdr.Data[0] {
	case kindPut:
		if len(pkt.Hdr.Data) < 9 {
			return sn.Decision{}, ErrBadHeader
		}
		idx := int(binary.BigEndian.Uint32(pkt.Hdr.Data[1:5]))
		total := int(binary.BigEndian.Uint32(pkt.Hdr.Data[5:9]))
		name := string(pkt.Hdr.Data[9:])
		if total == 0 || idx >= total {
			return sn.Decision{}, ErrBadHeader
		}
		m.mu.Lock()
		ds, ok := m.datasets[name]
		if !ok || ds.total != total {
			ds = &dataset{total: total, chunks: make([][]byte, total)}
			m.datasets[name] = ds
		}
		if ds.chunks[idx] == nil {
			ds.chunks[idx] = append([]byte(nil), pkt.Payload...)
			ds.have++
		}
		m.mu.Unlock()
		return sn.Decision{}, nil

	case kindRequest:
		if len(pkt.Hdr.Data) < 5 {
			return sn.Decision{}, ErrBadHeader
		}
		idx := int(binary.BigEndian.Uint32(pkt.Hdr.Data[1:5]))
		name := string(pkt.Hdr.Data[5:])
		m.mu.Lock()
		ds, ok := m.datasets[name]
		var chunk []byte
		total := 0
		if ok && idx < len(ds.chunks) {
			chunk = ds.chunks[idx]
			total = ds.total
		}
		m.mu.Unlock()
		if chunk == nil {
			hdr := wire.ILPHeader{Service: wire.SvcBulk, Conn: pkt.Hdr.Conn, Data: append([]byte{kindMissing}, pkt.Hdr.Data[1:]...)}
			return sn.Decision{Forwards: []sn.Forward{{Dst: pkt.Src, Hdr: &hdr, Empty: true}}}, nil
		}
		data := make([]byte, 9, 9+len(name))
		data[0] = kindChunk
		binary.BigEndian.PutUint32(data[1:5], uint32(idx))
		binary.BigEndian.PutUint32(data[5:9], uint32(total))
		data = append(data, name...)
		hdr := wire.ILPHeader{Service: wire.SvcBulk, Conn: pkt.Hdr.Conn, Data: data}
		return sn.Decision{Forwards: []sn.Forward{{Dst: pkt.Src, Hdr: &hdr, Payload: chunk}}}, nil

	default:
		return sn.Decision{}, fmt.Errorf("bulk: unexpected kind %d", pkt.Hdr.Data[0])
	}
}

// --- Client ------------------------------------------------------------------

// Publish uploads a dataset to the host's first-hop SN.
func Publish(h *host.Host, name string, data []byte) error {
	conn, err := h.NewConn(wire.SvcBulk)
	if err != nil {
		return err
	}
	defer conn.Close()
	total := (len(data) + ChunkSize - 1) / ChunkSize
	if total == 0 {
		total = 1
	}
	for i := 0; i < total; i++ {
		lo, hi := i*ChunkSize, (i+1)*ChunkSize
		if hi > len(data) {
			hi = len(data)
		}
		meta := make([]byte, 9, 9+len(name))
		meta[0] = kindPut
		binary.BigEndian.PutUint32(meta[1:5], uint32(i))
		binary.BigEndian.PutUint32(meta[5:9], uint32(total))
		meta = append(meta, name...)
		if err := conn.Send(meta, data[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// Stat queries a dataset's state at the SN serving via.
func Stat(h *host.Host, via wire.Addr, name string) (total, have int, err error) {
	data, err := h.Invoke(via, wire.SvcBulk, "stat", statArgs{Name: name})
	if err != nil {
		return 0, 0, err
	}
	var rep statReply
	if err := json.Unmarshal(data, &rep); err != nil {
		return 0, 0, err
	}
	return rep.Total, rep.Have, nil
}

// Fetch downloads a dataset from the SN at via, resuming from alreadyHave
// (chunk index → bytes) if non-nil.
func Fetch(h *host.Host, via wire.Addr, name string, alreadyHave map[int][]byte) ([]byte, error) {
	total, have, err := Stat(h, via, name)
	if err != nil {
		return nil, err
	}
	if have < total {
		return nil, ErrIncomplete
	}
	conn, err := h.NewConn(wire.SvcBulk, host.Via(via))
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	chunks := make([][]byte, total)
	missing := 0
	for i := 0; i < total; i++ {
		if c, ok := alreadyHave[i]; ok {
			chunks[i] = c
			continue
		}
		missing++
		meta := make([]byte, 5, 5+len(name))
		meta[0] = kindRequest
		binary.BigEndian.PutUint32(meta[1:5], uint32(i))
		meta = append(meta, name...)
		if err := conn.Send(meta, nil); err != nil {
			return nil, err
		}
	}
	deadline := time.After(10 * time.Second)
	for missing > 0 {
		select {
		case msg, ok := <-conn.Receive():
			if !ok {
				return nil, ErrTimeout
			}
			if len(msg.Hdr.Data) < 9 || msg.Hdr.Data[0] != kindChunk {
				continue
			}
			idx := int(binary.BigEndian.Uint32(msg.Hdr.Data[1:5]))
			if idx < total && chunks[idx] == nil {
				chunks[idx] = msg.Payload
				missing--
			}
		case <-deadline:
			return nil, ErrTimeout
		}
	}
	var out []byte
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out, nil
}
