package bulk

import (
	"bytes"
	"testing"
	"time"

	"interedge/internal/lab"
)

func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain) {
	t.Helper()
	topo := lab.New()
	ed, err := topo.AddEdomain("ed-a", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.SNs[0].Register(New()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed
}

func mkData(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 17)
	}
	return data
}

func TestPublishAndFetch(t *testing.T) {
	topo, ed := newWorld(t)
	pub, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := mkData(10*ChunkSize + 77)
	if err := Publish(pub, "climate.nc", data); err != nil {
		t.Fatal(err)
	}
	awaitUpload(t, topo, ed, "climate.nc", 11)

	recv, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Fetch(recv, ed.SNs[0].Addr(), "climate.nc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("fetched %d bytes, want %d", len(got), len(data))
	}
}

func TestResumeFetchesOnlyMissing(t *testing.T) {
	topo, ed := newWorld(t)
	pub, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := mkData(6 * ChunkSize)
	if err := Publish(pub, "ds", data); err != nil {
		t.Fatal(err)
	}
	awaitUpload(t, topo, ed, "ds", 6)

	recv, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a partial prior transfer: chunks 0,1,2 already on disk.
	have := map[int][]byte{}
	for i := 0; i < 3; i++ {
		have[i] = data[i*ChunkSize : (i+1)*ChunkSize]
	}
	got, err := Fetch(recv, ed.SNs[0].Addr(), "ds", have)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("resumed fetch mismatch")
	}
}

func awaitUpload(t *testing.T, topo *lab.Topology, ed *lab.Edomain, name string, total int) {
	t.Helper()
	probe, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		tot, have, err := Stat(probe, ed.SNs[0].Addr(), name)
		if err == nil && tot == total && have == total {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("dataset never completed: total=%d have=%d err=%v", tot, have, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFetchUnknownDataset(t *testing.T) {
	topo, ed := newWorld(t)
	recv, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fetch(recv, ed.SNs[0].Addr(), "ghost", nil); err == nil {
		t.Fatal("fetch of unknown dataset succeeded")
	}
}

func TestIncompleteDatasetRefused(t *testing.T) {
	topo, ed := newWorld(t)
	pub, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Manually upload only chunk 0 of 3.
	conn, err := pub.NewConn(0x10D)
	if err != nil {
		t.Fatal(err)
	}
	meta := []byte{kindPut, 0, 0, 0, 0, 0, 0, 0, 3}
	meta = append(meta, "partial"...)
	if err := conn.Send(meta, mkData(ChunkSize)); err != nil {
		t.Fatal(err)
	}
	recv, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, _, err := Stat(recv, ed.SNs[0].Addr(), "partial")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partial dataset never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := Fetch(recv, ed.SNs[0].Addr(), "partial", nil); err != ErrIncomplete {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
}

func TestSmallDatasetSingleChunk(t *testing.T) {
	topo, ed := newWorld(t)
	pub, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("tiny")
	if err := Publish(pub, "tiny", data); err != nil {
		t.Fatal(err)
	}
	awaitUpload(t, topo, ed, "tiny", 1)
	recv, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Fetch(recv, ed.SNs[0].Addr(), "tiny", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}
