// Package ztna implements zero-trust network access — Appendix B.2's
// worked example of a service whose connection establishment needs "a
// substantial amount of information" that "might not even fit in a single
// packet": clients submit a device-posture document fragmented across the
// ILP headers of several packets; the module reassembles it, checks the
// enterprise policy (minimum OS version, allowed users), and only then
// admits the flow toward the protected application backend.
//
// Per Appendix B.2, the module maintains an internal cache of its
// forwarding decisions: established connections survive arbitrary
// decision-cache eviction without re-running posture checks, because the
// module "must be able to make forwarding decisions not just for the
// first few packets in a connection, but for any arbitrary packet".
package ztna

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"interedge/internal/host"
	"interedge/internal/sn"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// Packet kinds in the first byte of header data.
const (
	kindPosture byte = iota // client → SN: posture fragment
	kindData                // client → SN: established-flow data (small header)
)

// Errors returned by the service.
var (
	ErrBadHeader      = errors.New("ztna: malformed header data")
	ErrUnknownApp     = errors.New("ztna: unknown application")
	ErrNotEstablished = errors.New("ztna: connection not established")
	ErrPolicyDenied   = errors.New("ztna: posture rejected by policy")
)

// Posture is the client device's self-description — deliberately verbose,
// as real ZTNA posture documents are.
type Posture struct {
	User       string            `json:"user"`
	DeviceID   string            `json:"device_id"`
	OSVersion  int               `json:"os_version"`
	PatchLevel int               `json:"patch_level"`
	Attributes map[string]string `json:"attributes,omitempty"`
}

// AppPolicy protects one application.
type AppPolicy struct {
	App          string   `json:"app"`
	Backend      string   `json:"backend"` // host address
	MinOSVersion int      `json:"min_os_version"`
	AllowedUsers []string `json:"allowed_users,omitempty"` // empty = all users
}

type appState struct {
	policy  AppPolicy
	backend wire.Addr
}

type flowState struct {
	fragments [][]byte
	have      int
	total     int
	// established is set once posture passed; backend is the admitted
	// destination. This is the module-internal decision cache of App B.2.
	established bool
	backend     wire.Addr
}

// Module is the ZTNA service for one SN.
type Module struct {
	idleTimeout time.Duration

	mu      sync.Mutex
	apps    map[string]*appState
	flows   map[wire.FlowKey]*flowState
	started bool
	stop    chan struct{}
}

// Option configures the module.
type Option func(*Module)

// WithIdleTimeout expires established flows whose decision-cache entry has
// not been hit within d, using the Appendix B.2 hit-count API. Expired
// flows must re-run posture checks. Zero disables expiry.
func WithIdleTimeout(d time.Duration) Option {
	return func(m *Module) { m.idleTimeout = d }
}

// New creates the module.
func New(opts ...Option) *Module {
	m := &Module{
		apps:  make(map[string]*appState),
		flows: make(map[wire.FlowKey]*flowState),
		stop:  make(chan struct{}),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Start implements sn.Starter: run the idle-flow collector when an idle
// timeout is configured ("We also provide an API that services can use to
// determine whether or not a decision cache entry has been recently
// used", App. B.2).
func (m *Module) Start(env sn.Env) error {
	m.mu.Lock()
	m.started = true
	m.mu.Unlock()
	if m.idleTimeout <= 0 {
		return nil
	}
	go func() {
		for {
			select {
			case <-m.stop:
				return
			case <-env.After(m.idleTimeout / 2):
				m.collectIdle(env)
			}
		}
	}()
	return nil
}

// Stop implements sn.Stopper.
func (m *Module) Stop() error {
	m.mu.Lock()
	if m.started {
		m.started = false
		close(m.stop)
	}
	m.mu.Unlock()
	return nil
}

// collectIdle drops established flows whose cache entry has not been used
// within the idle window, invalidating the cache rule so the next packet
// needs a fresh posture exchange.
func (m *Module) collectIdle(env sn.Env) {
	m.mu.Lock()
	var idle []wire.FlowKey
	for key, fs := range m.flows {
		if !fs.established {
			continue
		}
		if !env.RuleRecentlyUsed(key, m.idleTimeout) {
			idle = append(idle, key)
			delete(m.flows, key)
		}
	}
	m.mu.Unlock()
	for _, key := range idle {
		env.InvalidateRule(key)
		env.Logf("ztna: flow %s expired after idle timeout", key)
	}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcZTNA }

// Name implements sn.Module.
func (*Module) Name() string { return "ztna" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// HandleControl implements sn.ControlHandler: op "set_policy" installs an
// application policy (invoked by the enterprise operator).
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "set_policy":
		var p AppPolicy
		if err := json.Unmarshal(args, &p); err != nil {
			return nil, err
		}
		backend, err := netip.ParseAddr(p.Backend)
		if err != nil {
			return nil, fmt.Errorf("ztna: bad backend: %w", err)
		}
		m.mu.Lock()
		m.apps[p.App] = &appState{policy: p, backend: backend}
		m.mu.Unlock()
		return nil, nil
	default:
		return nil, fmt.Errorf("ztna: unknown op %q", op)
	}
}

// postureFragment encodes kind ‖ fragIdx(1) ‖ total(1) ‖ appLen(1) ‖ app ‖ fragment.
func postureFragment(idx, total int, app string, frag []byte) []byte {
	data := []byte{kindPosture, byte(idx), byte(total), byte(len(app))}
	data = append(data, app...)
	return append(data, frag...)
}

// DataHeader is the small steady-state header: kind ‖ appLen(1) ‖ app.
func DataHeader(app string) []byte {
	data := []byte{kindData, byte(len(app))}
	return append(data, app...)
}

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) < 1 {
		return sn.Decision{}, ErrBadHeader
	}
	switch pkt.Hdr.Data[0] {
	case kindPosture:
		return m.handlePosture(env, pkt)
	case kindData:
		return m.handleData(env, pkt)
	default:
		return sn.Decision{}, fmt.Errorf("ztna: unexpected kind %d", pkt.Hdr.Data[0])
	}
}

func (m *Module) handlePosture(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	data := pkt.Hdr.Data
	if len(data) < 4 {
		return sn.Decision{}, ErrBadHeader
	}
	idx, total, appLen := int(data[1]), int(data[2]), int(data[3])
	if len(data) < 4+appLen || total == 0 || idx >= total {
		return sn.Decision{}, ErrBadHeader
	}
	app := string(data[4 : 4+appLen])
	frag := data[4+appLen:]

	key := pkt.Key()
	m.mu.Lock()
	fs, ok := m.flows[key]
	if !ok {
		fs = &flowState{fragments: make([][]byte, total), total: total}
		m.flows[key] = fs
	}
	if fs.established {
		backend := fs.backend
		m.mu.Unlock()
		return m.admitDecision(key, backend), nil
	}
	if idx < len(fs.fragments) && fs.fragments[idx] == nil {
		fs.fragments[idx] = append([]byte(nil), frag...)
		fs.have++
	}
	complete := fs.have == fs.total
	var doc []byte
	if complete {
		for _, f := range fs.fragments {
			doc = append(doc, f...)
		}
	}
	appState, appKnown := m.apps[app]
	m.mu.Unlock()

	if !complete {
		return sn.Decision{}, nil // wait for more fragments
	}
	if !appKnown {
		return sn.Decision{}, ErrUnknownApp
	}
	var posture Posture
	if err := json.Unmarshal(doc, &posture); err != nil {
		return sn.Decision{}, fmt.Errorf("ztna: bad posture document: %w", err)
	}
	if err := evaluate(appState.policy, posture); err != nil {
		env.Logf("ztna: %s denied for %s: %v", app, pkt.Src, err)
		m.mu.Lock()
		delete(m.flows, key)
		m.mu.Unlock()
		return sn.Decision{
			Rules: []sn.Rule{{Key: key, Action: cache.Action{Drop: true}}},
		}, nil
	}
	m.mu.Lock()
	fs.established = true
	fs.backend = appState.backend
	fs.fragments = nil
	m.mu.Unlock()
	return m.admitDecision(key, appState.backend), nil
}

// evaluate applies the policy to a posture document.
func evaluate(policy AppPolicy, p Posture) error {
	if p.OSVersion < policy.MinOSVersion {
		return fmt.Errorf("%w: OS version %d < required %d", ErrPolicyDenied, p.OSVersion, policy.MinOSVersion)
	}
	if len(policy.AllowedUsers) > 0 {
		allowed := false
		for _, u := range policy.AllowedUsers {
			if u == p.User {
				allowed = true
				break
			}
		}
		if !allowed {
			return fmt.Errorf("%w: user %q not allowed", ErrPolicyDenied, p.User)
		}
	}
	return nil
}

// admitDecision forwards the current packet to the backend (stripping the
// posture header down to the steady-state form) and installs the cache
// rule for the flow.
func (m *Module) admitDecision(key wire.FlowKey, backend wire.Addr) sn.Decision {
	hdr := wire.ILPHeader{Service: wire.SvcZTNA, Conn: key.Conn, Data: []byte{kindData, 0}}
	enc, _ := hdr.Encode()
	return sn.Decision{
		Forwards: []sn.Forward{{Dst: backend, Hdr: &hdr}},
		Rules: []sn.Rule{{
			Key:    key,
			Action: cache.Action{Forward: []wire.Addr{backend}, RewriteHeader: enc},
		}},
	}
}

// handleData serves steady-state packets — including packets whose cache
// entry was evicted: the decision is recomputed from the module's internal
// flow map without re-running posture checks (App B.2).
func (m *Module) handleData(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	key := pkt.Key()
	m.mu.Lock()
	fs, ok := m.flows[key]
	established := ok && fs.established
	var backend wire.Addr
	if established {
		backend = fs.backend
	}
	m.mu.Unlock()
	if !established {
		return sn.Decision{}, ErrNotEstablished
	}
	return m.admitDecision(key, backend), nil
}

// EstablishedFlows reports the module-internal decision cache size (tests).
func (m *Module) EstablishedFlows() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, fs := range m.flows {
		if fs.established {
			n++
		}
	}
	return n
}

// --- Client ------------------------------------------------------------------

// MaxFragment bounds posture bytes per packet, chosen small so real
// posture documents exercise the multi-packet path.
const MaxFragment = 512

// Connect submits the posture document over a new connection and returns
// it for subsequent data traffic. The caller should wait for backend
// traffic to confirm admission.
func Connect(h *host.Host, app string, posture Posture) (*host.Conn, error) {
	doc, err := json.Marshal(posture)
	if err != nil {
		return nil, err
	}
	conn, err := h.NewConn(wire.SvcZTNA)
	if err != nil {
		return nil, err
	}
	total := (len(doc) + MaxFragment - 1) / MaxFragment
	if total == 0 {
		total = 1
	}
	for i := 0; i < total; i++ {
		lo, hi := i*MaxFragment, (i+1)*MaxFragment
		if hi > len(doc) {
			hi = len(doc)
		}
		if err := conn.Send(postureFragment(i, total, app, doc[lo:hi]), nil); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return conn, nil
}
