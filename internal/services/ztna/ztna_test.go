package ztna

import (
	"strings"
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain, *Module) {
	t.Helper()
	topo := lab.New()
	mod := New()
	ed, err := topo.AddEdomain("ed-a", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.SNs[0].Register(mod); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed, mod
}

func setPolicy(t *testing.T, topo *lab.Topology, ed *lab.Edomain, p AppPolicy) *host.Host {
	t.Helper()
	operator, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := operator.InvokeFirstHop(wire.SvcZTNA, "set_policy", p); err != nil {
		t.Fatal(err)
	}
	return operator
}

// bigPosture makes a posture document that needs several fragments —
// exercising App B.2's multi-packet connection establishment.
func bigPosture(user string, osVersion int) Posture {
	return Posture{
		User:      user,
		DeviceID:  "device-123",
		OSVersion: osVersion,
		Attributes: map[string]string{
			"inventory": strings.Repeat("package-entry;", 200), // ~2.8 KB
		},
	}
}

func TestMultiPacketEstablishmentAdmits(t *testing.T) {
	topo, ed, mod := newWorld(t)
	backend, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	setPolicy(t, topo, ed, AppPolicy{App: "erp", Backend: backend.Addr().String(), MinOSVersion: 10})
	got := make(chan host.Message, 8)
	backend.OnService(wire.SvcZTNA, func(msg host.Message) { got <- msg })

	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Connect(client, "erp", bigPosture("alice", 14))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The completing posture packet is forwarded to the backend.
	select {
	case <-got:
	case <-time.After(3 * time.Second):
		t.Fatal("establishment never reached backend")
	}
	if mod.EstablishedFlows() != 1 {
		t.Fatalf("established flows = %d", mod.EstablishedFlows())
	}
	// Steady-state data flows on the cached rule.
	if err := conn.Send(DataHeader("erp"), []byte("query")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg.Payload) != "query" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("data packet never arrived")
	}
	if ed.SNs[0].Counters().FastPathHits == 0 {
		t.Fatal("established flow not served from decision cache")
	}
}

func TestOldOSVersionDenied(t *testing.T) {
	topo, ed, mod := newWorld(t)
	backend, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	setPolicy(t, topo, ed, AppPolicy{App: "erp", Backend: backend.Addr().String(), MinOSVersion: 12})
	got := make(chan host.Message, 8)
	backend.OnService(wire.SvcZTNA, func(msg host.Message) { got <- msg })
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Connect(client, "erp", bigPosture("alice", 8)) // too old
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	select {
	case <-got:
		t.Fatal("denied client reached backend")
	case <-time.After(200 * time.Millisecond):
	}
	if mod.EstablishedFlows() != 0 {
		t.Fatal("denied flow recorded as established")
	}
	// Follow-up data dies on the fast path.
	for i := 0; i < 3; i++ {
		if err := conn.Send(DataHeader("erp"), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for ed.SNs[0].Counters().RuleDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("denied flow not dropped on fast path")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUserAllowlist(t *testing.T) {
	topo, ed, _ := newWorld(t)
	backend, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	setPolicy(t, topo, ed, AppPolicy{
		App: "hr", Backend: backend.Addr().String(), MinOSVersion: 1,
		AllowedUsers: []string{"alice"},
	})
	got := make(chan host.Message, 8)
	backend.OnService(wire.SvcZTNA, func(msg host.Message) { got <- msg })
	mallory, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Connect(mallory, "hr", bigPosture("mallory", 20))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	select {
	case <-got:
		t.Fatal("disallowed user reached backend")
	case <-time.After(200 * time.Millisecond):
	}
}

// App B.2's core requirement: after the decision-cache entry is evicted,
// the module recomputes the forwarding decision from its internal state —
// the client does NOT resend its posture.
func TestSurvivesCacheEviction(t *testing.T) {
	topo, ed, mod := newWorld(t)
	backend, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	setPolicy(t, topo, ed, AppPolicy{App: "erp", Backend: backend.Addr().String(), MinOSVersion: 1})
	got := make(chan host.Message, 8)
	backend.OnService(wire.SvcZTNA, func(msg host.Message) { got <- msg })
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Connect(client, "erp", bigPosture("alice", 9))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	select {
	case <-got:
	case <-time.After(3 * time.Second):
		t.Fatal("establishment failed")
	}
	// Simulate arbitrary eviction (App B.1 allows it at any time).
	key := wire.FlowKey{Src: client.Addr(), Service: wire.SvcZTNA, Conn: conn.ID()}
	ed.SNs[0].Cache().Invalidate(key)

	if err := conn.Send(DataHeader("erp"), []byte("after-eviction")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg.Payload) != "after-eviction" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("flow did not survive cache eviction")
	}
	if mod.EstablishedFlows() != 1 {
		t.Fatal("internal decision state lost")
	}
}

func TestDataBeforeEstablishmentRejected(t *testing.T) {
	topo, ed, _ := newWorld(t)
	backend, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	setPolicy(t, topo, ed, AppPolicy{App: "erp", Backend: backend.Addr().String()})
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := client.NewConn(wire.SvcZTNA)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(DataHeader("erp"), []byte("sneak")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for ed.SNs[0].Counters().ModuleErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pre-establishment data not rejected")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUnknownAppRejected(t *testing.T) {
	topo, ed, _ := newWorld(t)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Connect(client, "ghost", bigPosture("alice", 20))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	deadline := time.Now().Add(3 * time.Second)
	for ed.SNs[0].Counters().ModuleErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unknown app not rejected")
		}
		time.Sleep(time.Millisecond)
	}
}

// App B.2's hit-count API end to end: an established flow that goes idle
// is garbage-collected — its cache rule is invalidated and its internal
// decision dropped, so the next packet must re-authenticate.
func TestIdleFlowExpiresViaHitCounts(t *testing.T) {
	topo := lab.New()
	t.Cleanup(topo.Close)
	mod := New(WithIdleTimeout(150 * time.Millisecond))
	ed, err := topo.AddEdomain("ed-a", 1, func(node *sn.SN, e *lab.Edomain) error {
		return node.Register(mod)
	})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	operator, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := operator.InvokeFirstHop(wire.SvcZTNA, "set_policy", AppPolicy{
		App: "erp", Backend: backend.Addr().String(), MinOSVersion: 1,
	}); err != nil {
		t.Fatal(err)
	}
	got := make(chan host.Message, 8)
	backend.OnService(wire.SvcZTNA, func(msg host.Message) { got <- msg })

	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Connect(client, "erp", bigPosture("alice", 9))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	select {
	case <-got:
	case <-time.After(3 * time.Second):
		t.Fatal("establishment failed")
	}
	if mod.EstablishedFlows() != 1 {
		t.Fatal("flow not established")
	}
	// Go idle past the timeout; the collector reaps the flow.
	deadline := time.Now().Add(3 * time.Second)
	for mod.EstablishedFlows() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle flow never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Data on the expired flow is rejected until re-authentication.
	if err := conn.Send(DataHeader("erp"), []byte("stale")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(3 * time.Second)
	for ed.SNs[0].Counters().ModuleErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("expired flow's data not rejected")
		}
		time.Sleep(time.Millisecond)
	}
}
