package vpn

import (
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/wire"
)

func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain) {
	t.Helper()
	topo := lab.New()
	ed, err := topo.AddEdomain("ed-a", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.SNs[0].Register(New()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed
}

func TestAuthenticatedTrafficPasses(t *testing.T) {
	topo, ed := newWorld(t)
	customer, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("shared-secret")
	if err := Register(customer, "corp.example", secret); err != nil {
		t.Fatal(err)
	}
	got := make(chan host.Message, 8)
	customer.OnService(wire.SvcVPN, func(msg host.Message) { got <- msg })

	outside, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(outside, ed.SNs[0].Addr(), "corp.example", secret)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	select {
	case <-got:
	case <-time.After(3 * time.Second):
		t.Fatal("authenticated first packet never arrived")
	}
	// Follow-up packets ride the cached admission (no proof needed).
	if err := conn.Send(HeaderData("corp.example", nil), []byte("more")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg.Payload) != "more" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cached flow packet never arrived")
	}
	if c := ed.SNs[0].Counters(); c.FastPathHits == 0 {
		t.Fatal("admitted flow not served from cache")
	}
}

func TestWrongSecretDropped(t *testing.T) {
	topo, ed := newWorld(t)
	customer, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(customer, "corp", []byte("right")); err != nil {
		t.Fatal(err)
	}
	got := make(chan host.Message, 8)
	customer.OnService(wire.SvcVPN, func(msg host.Message) { got <- msg })
	attacker, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(attacker, ed.SNs[0].Addr(), "corp", []byte("wrong"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	select {
	case <-got:
		t.Fatal("unauthenticated packet delivered")
	case <-time.After(200 * time.Millisecond):
	}
	// Subsequent packets on the same flow die on the fast path.
	for i := 0; i < 3; i++ {
		if err := conn.Send(HeaderData("corp", nil), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for ed.SNs[0].Counters().RuleDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no fast-path drops for rejected flow")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUnknownNameRejected(t *testing.T) {
	topo, ed := newWorld(t)
	outside, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(outside, ed.SNs[0].Addr(), "ghost", []byte("s")); err != nil {
		t.Fatal(err) // Dial itself succeeds; rejection is at the SN
	}
	deadline := time.Now().Add(3 * time.Second)
	for ed.SNs[0].Counters().ModuleErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unknown name never rejected")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUnregisterRemoves(t *testing.T) {
	topo, ed := newWorld(t)
	customer, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("s")
	if err := Register(customer, "corp", secret); err != nil {
		t.Fatal(err)
	}
	if _, err := customer.InvokeFirstHop(wire.SvcVPN, "unregister", registerArgs{Name: "corp"}); err != nil {
		t.Fatal(err)
	}
	outside, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(outside, ed.SNs[0].Addr(), "corp", secret); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for ed.SNs[0].Counters().ModuleErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dial after unregister not rejected")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRegisterValidation(t *testing.T) {
	topo, ed := newWorld(t)
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(h, "", []byte("s")); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register(h, "x", nil); err == nil {
		t.Fatal("empty secret accepted")
	}
}
