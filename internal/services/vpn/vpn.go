// Package vpn implements the generic VPN service of §6.2: "a generic VPN
// service that provides a customer with a publicly reachable address,
// redirects incoming traffic to a customer-specified authentication
// service, and only allows in traffic that has been duly authenticated."
//
// A customer host registers a public name at its SN along with an
// authentication secret. External senders must present a proof (an HMAC
// over a challenge) on their first packet; once a flow authenticates, the
// SN installs a forward rule so the flow rides the fast path, and
// unauthenticated flows get drop rules.
package vpn

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"interedge/internal/host"
	"interedge/internal/sn"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// Errors returned by the service.
var (
	ErrBadHeader   = errors.New("vpn: malformed header data")
	ErrUnknownName = errors.New("vpn: unknown public name")
	ErrAuthFailed  = errors.New("vpn: authentication failed")
)

type endpoint struct {
	inside wire.Addr
	secret []byte
}

// Module is the VPN service for one SN.
type Module struct {
	mu        sync.Mutex
	endpoints map[string]endpoint // public name -> customer host
}

// New creates the module.
func New() *Module {
	return &Module{endpoints: make(map[string]endpoint)}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcVPN }

// Name implements sn.Module.
func (*Module) Name() string { return "vpn" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

type registerArgs struct {
	Name   string `json:"name"`
	Secret []byte `json:"secret"`
}

// HandleControl implements sn.ControlHandler: op "register" binds a public
// name to the invoking customer host with a shared authentication secret.
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "register":
		var a registerArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		if a.Name == "" || len(a.Secret) == 0 {
			return nil, errors.New("vpn: name and secret required")
		}
		m.mu.Lock()
		m.endpoints[a.Name] = endpoint{inside: src, secret: append([]byte(nil), a.Secret...)}
		m.mu.Unlock()
		return nil, nil
	case "unregister":
		var a registerArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		m.mu.Lock()
		delete(m.endpoints, a.Name)
		m.mu.Unlock()
		return nil, nil
	default:
		return nil, fmt.Errorf("vpn: unknown op %q", op)
	}
}

// Proof computes the authentication proof a sender presents: HMAC of the
// sender's address and connection ID under the shared secret (the
// "customer-specified authentication service" distilled to a verifiable
// token).
func Proof(secret []byte, sender wire.Addr, conn wire.ConnectionID) []byte {
	mac := hmac.New(sha256.New, secret)
	b := sender.As16()
	mac.Write(b[:])
	var cb [8]byte
	for i := 0; i < 8; i++ {
		cb[i] = byte(uint64(conn) >> (56 - 8*i))
	}
	mac.Write(cb[:])
	return mac.Sum(nil)
}

// HeaderData builds the first-packet header: name length-prefixed plus
// proof. Subsequent packets may carry just the name (the flow is cached).
func HeaderData(name string, proof []byte) []byte {
	data := []byte{byte(len(name))}
	data = append(data, name...)
	return append(data, proof...)
}

// HandlePacket implements sn.Module.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) < 1 {
		return sn.Decision{}, ErrBadHeader
	}
	nameLen := int(pkt.Hdr.Data[0])
	if len(pkt.Hdr.Data) < 1+nameLen {
		return sn.Decision{}, ErrBadHeader
	}
	name := string(pkt.Hdr.Data[1 : 1+nameLen])
	proof := pkt.Hdr.Data[1+nameLen:]

	m.mu.Lock()
	ep, ok := m.endpoints[name]
	m.mu.Unlock()
	if !ok {
		return sn.Decision{}, ErrUnknownName
	}
	want := Proof(ep.secret, pkt.Src, pkt.Hdr.Conn)
	if !hmac.Equal(proof, want) {
		// Unauthenticated: drop now and keep dropping on the fast path.
		// This is a decision, not a module failure — returning an error
		// would discard the drop rule.
		env.Logf("vpn: unauthenticated flow %s rejected", pkt.Key())
		return sn.Decision{
			Rules: []sn.Rule{{Key: pkt.Key(), Action: cache.Action{Drop: true}}},
		}, nil
	}
	// Authenticated: forward and cache the admission.
	return sn.Decision{
		Forwards: []sn.Forward{{Dst: ep.inside}},
		Rules: []sn.Rule{{
			Key:    pkt.Key(),
			Action: cache.Action{Forward: []wire.Addr{ep.inside}},
		}},
	}, nil
}

// --- Client helpers ----------------------------------------------------------

// Register binds a public name to the customer host at its first-hop SN.
func Register(h *host.Host, name string, secret []byte) error {
	_, err := h.InvokeFirstHop(wire.SvcVPN, "register", registerArgs{Name: name, Secret: secret})
	return err
}

// Dial opens an authenticated connection to a VPN public name through the
// SN at via.
func Dial(h *host.Host, via wire.Addr, name string, secret []byte) (*host.Conn, error) {
	conn, err := h.NewConn(wire.SvcVPN, host.Via(via))
	if err != nil {
		return nil, err
	}
	proof := Proof(secret, h.Addr(), conn.ID())
	if err := conn.Send(HeaderData(name, proof), nil); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}
