// Package sdwan implements an SD-WAN service — the paper's canonical
// operator-imposed pass-through service (§3.2: "an enterprise may impose a
// firewall service or an SD-WAN service on all traffic entering and
// leaving its network" via a "pass-through SN at its boundary").
//
// The enterprise operator configures uplinks (next-hop SNs toward
// different providers) and a policy mapping traffic classes to uplink
// preference orders. Flows are pinned to the first healthy uplink of
// their class; when an uplink is marked down, its flows fail over and
// their cached decisions are invalidated.
package sdwan

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"sync"

	"interedge/internal/sn"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// Errors returned by the service.
var (
	ErrBadHeader       = errors.New("sdwan: malformed header data")
	ErrNoHealthyUplink = errors.New("sdwan: no healthy uplink for class")
)

// Class identifies a traffic class (first byte of header data).
type Class = byte

// Well-known classes used by examples and tests.
const (
	ClassDefault     Class = 0
	ClassInteractive Class = 1
	ClassBulk        Class = 2
)

// Module is the SD-WAN pass-through service.
type Module struct {
	mu      sync.Mutex
	uplinks []wire.Addr
	healthy map[wire.Addr]bool
	policy  map[Class][]int            // class -> uplink preference order
	flows   map[wire.FlowKey]wire.Addr // flow -> pinned uplink
}

// New creates the module.
func New() *Module {
	return &Module{
		healthy: make(map[wire.Addr]bool),
		policy:  make(map[Class][]int),
		flows:   make(map[wire.FlowKey]wire.Addr),
	}
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcSDWAN }

// Name implements sn.Module.
func (*Module) Name() string { return "sdwan" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

type configArgs struct {
	Uplinks []string         `json:"uplinks"`
	Policy  map[string][]int `json:"policy"` // class (decimal string) -> preference order
}

type healthArgs struct {
	Uplink string `json:"uplink"`
	Up     bool   `json:"up"`
}

// HandleControl implements sn.ControlHandler: configure, set_health.
func (m *Module) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "configure":
		var a configArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		var ups []wire.Addr
		for _, s := range a.Uplinks {
			u, err := netip.ParseAddr(s)
			if err != nil {
				return nil, fmt.Errorf("sdwan: bad uplink %q: %w", s, err)
			}
			ups = append(ups, u)
		}
		policy := make(map[Class][]int)
		for cls, order := range a.Policy {
			var c int
			if _, err := fmt.Sscanf(cls, "%d", &c); err != nil {
				return nil, fmt.Errorf("sdwan: bad class %q", cls)
			}
			for _, idx := range order {
				if idx < 0 || idx >= len(ups) {
					return nil, fmt.Errorf("sdwan: uplink index %d out of range", idx)
				}
			}
			policy[Class(c)] = order
		}
		m.mu.Lock()
		m.uplinks = ups
		m.policy = policy
		for _, u := range ups {
			if _, ok := m.healthy[u]; !ok {
				m.healthy[u] = true
			}
		}
		m.mu.Unlock()
		return nil, nil

	case "set_health":
		var a healthArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		u, err := netip.ParseAddr(a.Uplink)
		if err != nil {
			return nil, err
		}
		m.mu.Lock()
		m.healthy[u] = a.Up
		// Unpin flows on a downed uplink and invalidate their cached
		// decisions so the next packet re-routes.
		var invalid []wire.FlowKey
		if !a.Up {
			for k, pinned := range m.flows {
				if pinned == u {
					delete(m.flows, k)
					invalid = append(invalid, k)
				}
			}
		}
		m.mu.Unlock()
		for _, k := range invalid {
			env.InvalidateRule(k)
		}
		return nil, nil

	default:
		return nil, fmt.Errorf("sdwan: unknown op %q", op)
	}
}

// HeaderData encodes class ‖ final destination.
func HeaderData(class Class, finalDst wire.Addr) []byte {
	b := finalDst.As16()
	return append([]byte{class}, b[:]...)
}

// HandlePacket implements sn.Module: pick the flow's uplink and pin it.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) != 17 {
		return sn.Decision{}, ErrBadHeader
	}
	class := Class(pkt.Hdr.Data[0])

	m.mu.Lock()
	order, ok := m.policy[class]
	if !ok {
		order = m.policy[ClassDefault]
	}
	if len(order) == 0 {
		// No policy: all uplinks in index order.
		order = make([]int, len(m.uplinks))
		for i := range order {
			order[i] = i
		}
	}
	var chosen wire.Addr
	found := false
	for _, idx := range order {
		if idx < len(m.uplinks) && m.healthy[m.uplinks[idx]] {
			chosen = m.uplinks[idx]
			found = true
			break
		}
	}
	if found {
		m.flows[pkt.Key()] = chosen
	}
	m.mu.Unlock()
	if !found {
		return sn.Decision{}, ErrNoHealthyUplink
	}
	return sn.Decision{
		Forwards: []sn.Forward{{Dst: chosen}},
		Rules: []sn.Rule{{
			Key:    pkt.Key(),
			Action: cache.Action{Forward: []wire.Addr{chosen}},
		}},
	}, nil
}

// PinnedUplink reports where a flow is pinned (tests).
func (m *Module) PinnedUplink(key wire.FlowKey) (wire.Addr, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	u, ok := m.flows[key]
	return u, ok
}
