package sdwan

import (
	"testing"
	"time"

	"interedge/internal/lab"
	"interedge/internal/services/echo"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// world: a boundary SN running sdwan, plus two uplink SNs running echo
// (standing in for provider paths that reflect traffic back).
func newWorld(t *testing.T) (*lab.Topology, *lab.Edomain, *Module) {
	t.Helper()
	topo := lab.New()
	mod := New()
	ed, err := topo.AddEdomain("ed-a", 3, func(node *sn.SN, ed *lab.Edomain) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// SN 0: boundary (sdwan); SN 1, 2: uplinks (echo).
	if err := ed.SNs[0].Register(mod); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2} {
		if err := ed.SNs[i].Register(echo.New()); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed, mod
}

func configure(t *testing.T, topo *lab.Topology, ed *lab.Edomain) {
	t.Helper()
	operator, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	args := configArgs{
		Uplinks: []string{ed.SNs[1].Addr().String(), ed.SNs[2].Addr().String()},
		Policy: map[string][]int{
			"1": {0, 1}, // interactive prefers uplink 0
			"2": {1, 0}, // bulk prefers uplink 1
		},
	}
	if _, err := operator.InvokeFirstHop(wire.SvcSDWAN, "configure", args); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyRoutesClassesToPreferredUplinks(t *testing.T) {
	topo, ed, mod := newWorld(t)
	configure(t, topo, ed)
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst := wire.MustAddr("fd00::dead") // unused by echo uplinks

	connI, err := client.NewConn(wire.SvcSDWAN)
	if err != nil {
		t.Fatal(err)
	}
	if err := connI.Send(HeaderData(ClassInteractive, dst), []byte("i")); err != nil {
		t.Fatal(err)
	}
	connB, err := client.NewConn(wire.SvcSDWAN)
	if err != nil {
		t.Fatal(err)
	}
	if err := connB.Send(HeaderData(ClassBulk, dst), []byte("b")); err != nil {
		t.Fatal(err)
	}
	keyI := wire.FlowKey{Src: client.Addr(), Service: wire.SvcSDWAN, Conn: connI.ID()}
	keyB := wire.FlowKey{Src: client.Addr(), Service: wire.SvcSDWAN, Conn: connB.ID()}
	deadline := time.Now().Add(3 * time.Second)
	for {
		uI, okI := mod.PinnedUplink(keyI)
		uB, okB := mod.PinnedUplink(keyB)
		if okI && okB {
			if uI != ed.SNs[1].Addr() {
				t.Fatalf("interactive pinned to %s, want uplink 0", uI)
			}
			if uB != ed.SNs[2].Addr() {
				t.Fatalf("bulk pinned to %s, want uplink 1", uB)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("flows never pinned")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFailoverOnUplinkDown(t *testing.T) {
	topo, ed, mod := newWorld(t)
	configure(t, topo, ed)
	operator, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst := wire.MustAddr("fd00::dead")
	conn, err := client.NewConn(wire.SvcSDWAN)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(HeaderData(ClassInteractive, dst), []byte("1")); err != nil {
		t.Fatal(err)
	}
	key := wire.FlowKey{Src: client.Addr(), Service: wire.SvcSDWAN, Conn: conn.ID()}
	waitPinned(t, mod, key, ed.SNs[1].Addr())

	// Uplink 0 goes down; flow must repin to uplink 1 on the next packet.
	if _, err := operator.InvokeFirstHop(wire.SvcSDWAN, "set_health", healthArgs{Uplink: ed.SNs[1].Addr().String(), Up: false}); err != nil {
		t.Fatal(err)
	}
	if _, ok := mod.PinnedUplink(key); ok {
		t.Fatal("flow still pinned to downed uplink")
	}
	if err := conn.Send(HeaderData(ClassInteractive, dst), []byte("2")); err != nil {
		t.Fatal(err)
	}
	waitPinned(t, mod, key, ed.SNs[2].Addr())
}

func waitPinned(t *testing.T, mod *Module, key wire.FlowKey, want wire.Addr) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if u, ok := mod.PinnedUplink(key); ok && u == want {
			return
		}
		if time.Now().After(deadline) {
			u, ok := mod.PinnedUplink(key)
			t.Fatalf("pinned to %v (ok=%v), want %s", u, ok, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAllUplinksDownErrors(t *testing.T) {
	topo, ed, _ := newWorld(t)
	configure(t, topo, ed)
	operator, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2} {
		if _, err := operator.InvokeFirstHop(wire.SvcSDWAN, "set_health", healthArgs{Uplink: ed.SNs[i].Addr().String(), Up: false}); err != nil {
			t.Fatal(err)
		}
	}
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := client.NewConn(wire.SvcSDWAN)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(HeaderData(ClassDefault, wire.MustAddr("fd00::1")), nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for ed.SNs[0].Counters().ModuleErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no-healthy-uplink not surfaced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConfigValidation(t *testing.T) {
	topo, ed, _ := newWorld(t)
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.InvokeFirstHop(wire.SvcSDWAN, "configure", configArgs{Uplinks: []string{"garbage"}}); err == nil {
		t.Fatal("bad uplink accepted")
	}
	if _, err := h.InvokeFirstHop(wire.SvcSDWAN, "configure", configArgs{
		Uplinks: []string{ed.SNs[1].Addr().String()},
		Policy:  map[string][]int{"1": {5}},
	}); err == nil {
		t.Fatal("out-of-range uplink index accepted")
	}
}
