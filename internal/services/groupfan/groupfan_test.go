package groupfan

import (
	"testing"
	"time"

	"interedge/internal/cryptutil"
	"interedge/internal/lab"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// fanModule is a minimal multipoint service: kind 0 = origin send (fans
// intra+inter), kind 1 = spread copy (delivered to a channel for
// inspection).
type fanModule struct {
	fan   *Fanout
	seen  chan wire.Addr // SNs that received spread copies report here
	local wire.Addr
}

func (m *fanModule) Service() wire.ServiceID { return wire.SvcEcho }
func (m *fanModule) Name() string            { return "fan-test" }
func (m *fanModule) Version() string         { return "1" }
func (m *fanModule) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) > 0 && pkt.Hdr.Data[0] == 0 {
		hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: pkt.Hdr.Conn, Data: []byte{1}}
		if err := m.fan.SpreadIntra(env, "g", &hdr, pkt.Payload); err != nil {
			return sn.Decision{}, err
		}
		if err := m.fan.SpreadInter(env, "g", &hdr, pkt.Payload, pkt.Src); err != nil {
			return sn.Decision{}, err
		}
		return sn.Decision{}, nil
	}
	m.seen <- env.LocalAddr()
	return sn.Decision{}, nil
}

func TestSpreadReachesIntraAndInterMembers(t *testing.T) {
	topo := lab.New()
	defer topo.Close()
	seen := make(chan wire.Addr, 16)
	mods := map[wire.Addr]*fanModule{}
	setup := func(node *sn.SN, ed *lab.Edomain) error {
		m := &fanModule{
			fan:  &Fanout{Core: ed.Core, Fabric: topo.Fabric},
			seen: seen,
		}
		mods[node.Addr()] = m
		return node.Register(m)
	}
	edA, err := topo.AddEdomain("ed-a", 2, setup)
	if err != nil {
		t.Fatal(err)
	}
	edB, err := topo.AddEdomain("ed-b", 1, setup)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}

	owner, err := cryptutil.NewSigningKeypair()
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Global.CreateGroup("g", owner.Public); err != nil {
		t.Fatal(err)
	}
	// Members: SN a1 (second SN of ed-a) and the single SN of ed-b.
	h1 := wire.MustAddr("fd00::aaa1")
	h2 := wire.MustAddr("fd00::aaa2")
	if err := edA.Core.JoinGroup("g", edA.SNs[1].Addr(), h1); err != nil {
		t.Fatal(err)
	}
	if err := edB.Core.JoinGroup("g", edB.SNs[0].Addr(), h2); err != nil {
		t.Fatal(err)
	}
	// Sender SN: gateway of ed-a; registering populates the remote mirror.
	if _, _, cancel, err := edA.Core.RegisterSender("g", edA.SNs[0].Addr()); err != nil {
		t.Fatal(err)
	} else {
		defer cancel()
	}

	// Inject an origin packet at ed-a's gateway.
	sender, err := topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := sender.NewConn(wire.SvcEcho)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte{0}, []byte("spread")); err != nil {
		t.Fatal(err)
	}
	want := map[wire.Addr]bool{edA.SNs[1].Addr(): false, edB.SNs[0].Addr(): false}
	deadline := time.After(3 * time.Second)
	for remaining := 2; remaining > 0; {
		select {
		case addr := <-seen:
			if done, ok := want[addr]; ok && !done {
				want[addr] = true
				remaining--
			}
		case <-deadline:
			t.Fatalf("spread incomplete: %v", want)
		}
	}
}
