// Package groupfan factors out the SN-to-SN fan-out pattern shared by the
// multipoint services (pub/sub, multicast, anycast; §6.2): spread a packet
// to every member SN inside the local edomain, and carry it into each
// remote member edomain through that edomain's gateway SN via the peering
// transit service.
package groupfan

import (
	"fmt"

	"interedge/internal/edomain"
	"interedge/internal/peering"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Fanout performs group spreads for one service on one SN.
type Fanout struct {
	// Core is the SN's edomain core.
	Core *edomain.Core
	// Fabric is the peering fabric; nil disables inter-edomain spread.
	Fabric *peering.Fabric
}

// SpreadIntra sends hdr/payload to every member SN of the group inside the
// local edomain, excluding the local SN itself.
func (f *Fanout) SpreadIntra(env sn.Env, group edomain.GroupID, hdr *wire.ILPHeader, payload []byte) error {
	local := env.LocalAddr()
	var firstErr error
	for _, member := range f.Core.MemberSNs(group) {
		if member == local {
			continue
		}
		if err := env.Send(member, hdr, payload); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("groupfan: intra spread to %s: %w", member, err)
		}
	}
	return firstErr
}

// SpreadInter carries hdr/payload into every remote member edomain via
// that edomain's gateway SN. Requires that this SN's edomain has a
// registered sender (which populates the remote-member mirror).
func (f *Fanout) SpreadInter(env sn.Env, group edomain.GroupID, hdr *wire.ILPHeader, payload []byte, origSrc wire.Addr) error {
	if f.Fabric == nil {
		return nil
	}
	localEd := f.Core.ID()
	var firstErr error
	for _, remoteEd := range f.Core.RemoteMemberEdomains(group) {
		gw, err := f.Fabric.RemoteGatewayOf(localEd, remoteEd)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := peering.SendTransit(env, f.Fabric, gw, origSrc, hdr, payload); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("groupfan: inter spread to %s: %w", remoteEd, err)
		}
	}
	return firstErr
}
