// Package mixnet implements a Tor-like batching mix network (§6.2: "the
// use of enclaves makes it simpler to implement oDNS, private relays,
// ToR-like mixnet infrastructures, and other privacy-aware services").
//
// Clients onion-encrypt packets through a route of mix SNs: each layer is
// sealed to one mix's public key and reveals only the next hop. Each mix
// batches packets and flushes them in shuffled order once the batch fills
// or a timer fires, breaking timing correlation between arrivals and
// departures. Mix modules are natural candidates for enclave execution
// (register with sn.WithEnclave).
package mixnet

import (
	"crypto/ecdh"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"interedge/internal/cryptutil"
	"interedge/internal/host"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Inner-layer kinds (first byte of the decrypted onion layer).
const (
	layerForward byte = iota // next 16 bytes: next mix SN; rest: next layer
	layerDeliver             // next 16 bytes: destination host; rest: plaintext
)

// header data kinds.
const (
	kindOnion   byte = iota // an onion packet between mixes
	kindDeliver             // exit mix → destination host
)

// Errors returned by the service.
var (
	ErrBadLayer   = errors.New("mixnet: malformed onion layer")
	ErrBadHeader  = errors.New("mixnet: malformed header data")
	ErrEmptyRoute = errors.New("mixnet: route must have at least one mix")
)

// KeyDirectory publishes mix public keys (as relay.KeyDirectory does for
// relay SNs; kept separate so the two services can be deployed
// independently).
type KeyDirectory struct {
	mu   sync.RWMutex
	keys map[wire.Addr][]byte
}

// NewKeyDirectory creates an empty directory.
func NewKeyDirectory() *KeyDirectory {
	return &KeyDirectory{keys: make(map[wire.Addr][]byte)}
}

// Publish records a mix SN's public key.
func (d *KeyDirectory) Publish(snAddr wire.Addr, pub []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.keys[snAddr] = append([]byte(nil), pub...)
}

// Lookup returns a mix SN's public key.
func (d *KeyDirectory) Lookup(snAddr wire.Addr) ([]byte, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	k, ok := d.keys[snAddr]
	return k, ok
}

// Option configures a mix module.
type Option func(*Module)

// WithBatchSize sets the flush threshold (default 4).
func WithBatchSize(n int) Option {
	return func(m *Module) { m.batchSize = n }
}

// WithFlushInterval sets the timer-based flush interval (default 50ms).
func WithFlushInterval(d time.Duration) Option {
	return func(m *Module) { m.flushEvery = d }
}

// WithSeed seeds the shuffle RNG (tests).
func WithSeed(seed int64) Option {
	return func(m *Module) { m.rng = rand.New(rand.NewSource(seed)) }
}

type batched struct {
	next    wire.Addr
	deliver bool
	conn    wire.ConnectionID
	payload []byte
}

// Module is one mix node.
type Module struct {
	key        *ecdh.PrivateKey
	batchSize  int
	flushEvery time.Duration
	rng        *rand.Rand

	mu      sync.Mutex
	batch   []batched
	env     sn.Env
	stopped chan struct{}
	started bool
}

// New creates a mix module with a fresh keypair, publishing it under
// snAddr.
func New(dir *KeyDirectory, snAddr wire.Addr, opts ...Option) (*Module, error) {
	kp, err := cryptutil.NewStaticKeypair()
	if err != nil {
		return nil, err
	}
	dir.Publish(snAddr, kp.PublicKeyBytes())
	m := &Module{
		key:        kp.Private,
		batchSize:  4,
		flushEvery: 50 * time.Millisecond,
		rng:        rand.New(rand.NewSource(rand.Int63())),
		stopped:    make(chan struct{}),
	}
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// Service implements sn.Module.
func (*Module) Service() wire.ServiceID { return wire.SvcMixnet }

// Name implements sn.Module.
func (*Module) Name() string { return "mixnet" }

// Version implements sn.Module.
func (*Module) Version() string { return "1.0" }

// Start implements sn.Starter: run the timer-based flush loop.
func (m *Module) Start(env sn.Env) error {
	m.mu.Lock()
	m.env = env
	m.started = true
	m.mu.Unlock()
	go func() {
		for {
			select {
			case <-m.stopped:
				return
			case <-env.After(m.flushEvery):
				m.flush(env)
			}
		}
	}()
	return nil
}

// Stop implements sn.Stopper.
func (m *Module) Stop() error {
	m.mu.Lock()
	if m.started {
		m.started = false
		close(m.stopped)
	}
	m.mu.Unlock()
	return nil
}

// HandlePacket implements sn.Module: peel one onion layer and batch the
// result.
func (m *Module) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if len(pkt.Hdr.Data) < 1 || pkt.Hdr.Data[0] != kindOnion {
		return sn.Decision{}, ErrBadHeader
	}
	plain, err := cryptutil.OpenFrom(m.key, pkt.Payload)
	if err != nil {
		return sn.Decision{}, fmt.Errorf("mixnet: peel layer: %w", err)
	}
	if len(plain) < 17 {
		return sn.Decision{}, ErrBadLayer
	}
	var b [16]byte
	copy(b[:], plain[1:17])
	next := netip.AddrFrom16(b).Unmap()
	rest := append([]byte(nil), plain[17:]...)

	entry := batched{next: next, conn: pkt.Hdr.Conn, payload: rest}
	switch plain[0] {
	case layerForward:
	case layerDeliver:
		entry.deliver = true
	default:
		return sn.Decision{}, ErrBadLayer
	}

	m.mu.Lock()
	m.batch = append(m.batch, entry)
	full := len(m.batch) >= m.batchSize
	m.mu.Unlock()
	if full {
		m.flush(env)
	}
	return sn.Decision{}, nil
}

// flush shuffles and transmits the pending batch.
func (m *Module) flush(env sn.Env) {
	m.mu.Lock()
	batch := m.batch
	m.batch = nil
	if len(batch) > 1 {
		m.rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
	}
	m.mu.Unlock()
	for _, e := range batch {
		kind := kindOnion
		if e.deliver {
			kind = kindDeliver
		}
		hdr := wire.ILPHeader{Service: wire.SvcMixnet, Conn: e.conn, Data: []byte{kind}}
		if err := env.Send(e.next, &hdr, e.payload); err != nil {
			env.Logf("mixnet: flush to %s: %v", e.next, err)
		}
	}
}

// PendingBatch reports the current batch occupancy (tests).
func (m *Module) PendingBatch() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.batch)
}

// --- Client ------------------------------------------------------------------

// BuildOnion wraps payload for delivery to dst through the given mix
// route. It returns the bytes to send to route[0].
func BuildOnion(dir *KeyDirectory, route []wire.Addr, dst wire.Addr, payload []byte) ([]byte, error) {
	if len(route) == 0 {
		return nil, ErrEmptyRoute
	}
	// Innermost layer: deliver to dst, sealed to the exit mix.
	d16 := dst.As16()
	inner := append([]byte{layerDeliver}, d16[:]...)
	inner = append(inner, payload...)
	exitPub, ok := dir.Lookup(route[len(route)-1])
	if !ok {
		return nil, fmt.Errorf("mixnet: no key for mix %s", route[len(route)-1])
	}
	onion, err := cryptutil.SealTo(exitPub, inner)
	if err != nil {
		return nil, err
	}
	// Outer layers: forward to the next mix.
	for i := len(route) - 2; i >= 0; i-- {
		n16 := route[i+1].As16()
		layer := append([]byte{layerForward}, n16[:]...)
		layer = append(layer, onion...)
		pub, ok := dir.Lookup(route[i])
		if !ok {
			return nil, fmt.Errorf("mixnet: no key for mix %s", route[i])
		}
		onion, err = cryptutil.SealTo(pub, layer)
		if err != nil {
			return nil, err
		}
	}
	return onion, nil
}

// Send launches an onion-wrapped payload from a host into the mixnet.
// route[0] must be reachable from the host (typically its first-hop SN or
// any mix SN).
func Send(h *host.Host, dir *KeyDirectory, route []wire.Addr, dst wire.Addr, payload []byte) error {
	onion, err := BuildOnion(dir, route, dst, payload)
	if err != nil {
		return err
	}
	conn, err := h.NewConn(wire.SvcMixnet, host.Via(route[0]))
	if err != nil {
		return err
	}
	defer conn.Close()
	return conn.Send([]byte{kindOnion}, onion)
}
