package mixnet

import (
	"fmt"
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// world: one edomain with three mix SNs.
func newWorld(t *testing.T, opts ...Option) (*lab.Topology, *lab.Edomain, *KeyDirectory, []*Module) {
	t.Helper()
	topo := lab.New()
	dir := NewKeyDirectory()
	ed, err := topo.AddEdomain("ed-a", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mods []*Module
	for _, node := range ed.SNs {
		m, err := New(dir, node.Addr(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Register(m); err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	return topo, ed, dir, mods
}

func route(ed *lab.Edomain) []wire.Addr {
	return []wire.Addr{ed.SNs[0].Addr(), ed.SNs[1].Addr(), ed.SNs[2].Addr()}
}

func TestOnionTraversesThreeMixes(t *testing.T) {
	topo, ed, dir, _ := newWorld(t, WithBatchSize(1))
	sender, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := topo.NewHost(ed, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan host.Message, 1)
	receiver.OnService(wire.SvcMixnet, func(msg host.Message) { got <- msg })

	if err := Send(sender, dir, route(ed), receiver.Addr(), []byte("anonymous")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg.Payload) != "anonymous" {
			t.Fatalf("payload %q", msg.Payload)
		}
		// Receiver sees the exit mix, not the sender.
		if msg.Src != ed.SNs[2].Addr() {
			t.Fatalf("receiver saw %s, want exit mix %s", msg.Src, ed.SNs[2].Addr())
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
}

func TestBatchHoldsUntilFullThenShuffles(t *testing.T) {
	topo, ed, dir, mods := newWorld(t, WithBatchSize(3), WithFlushInterval(time.Hour), WithSeed(7))
	sender, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := topo.NewHost(ed, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 8)
	receiver.OnService(wire.SvcMixnet, func(msg host.Message) { got <- string(msg.Payload) })

	// Single-hop route through mix 0 only: batching observable directly.
	oneHop := []wire.Addr{ed.SNs[0].Addr()}
	for i := 0; i < 2; i++ {
		if err := Send(sender, dir, oneHop, receiver.Addr(), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Two packets in a batch of three: nothing flushes.
	select {
	case p := <-got:
		t.Fatalf("premature flush delivered %q", p)
	case <-time.After(150 * time.Millisecond):
	}
	if n := mods[0].PendingBatch(); n != 2 {
		t.Fatalf("pending batch = %d, want 2", n)
	}
	// Third packet fills the batch; all three flush.
	if err := Send(sender, dir, oneHop, receiver.Addr(), []byte("m2")); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		select {
		case p := <-got:
			seen[p] = true
		case <-time.After(3 * time.Second):
			t.Fatalf("only %d/3 delivered after flush", i)
		}
	}
	for _, want := range []string{"m0", "m1", "m2"} {
		if !seen[want] {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestTimerFlushesPartialBatch(t *testing.T) {
	topo, ed, dir, _ := newWorld(t, WithBatchSize(100), WithFlushInterval(30*time.Millisecond))
	sender, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := topo.NewHost(ed, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	receiver.OnService(wire.SvcMixnet, func(msg host.Message) { got <- string(msg.Payload) })
	if err := Send(sender, dir, []wire.Addr{ed.SNs[0].Addr()}, receiver.Addr(), []byte("lonely")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if p != "lonely" {
			t.Fatalf("payload %q", p)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timer flush never happened")
	}
}

// Middle mix sees only its neighbors: the previous mix as source, never
// the sender host.
func TestMiddleMixNeverSeesSender(t *testing.T) {
	topo, ed, dir, _ := newWorld(t, WithBatchSize(1))
	sender, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := topo.NewHost(ed, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{}, 1)
	receiver.OnService(wire.SvcMixnet, func(host.Message) { done <- struct{}{} })
	if err := Send(sender, dir, route(ed), receiver.Addr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
	// The middle SN's pipe peers must not include the sender host.
	for _, p := range ed.SNs[1].Pipes().Peers() {
		if p.Addr == sender.Addr() {
			t.Fatal("middle mix peered directly with the sender")
		}
	}
}

func TestBuildOnionValidation(t *testing.T) {
	dir := NewKeyDirectory()
	if _, err := BuildOnion(dir, nil, wire.MustAddr("fd00::1"), nil); err != ErrEmptyRoute {
		t.Fatalf("err = %v, want ErrEmptyRoute", err)
	}
	if _, err := BuildOnion(dir, []wire.Addr{wire.MustAddr("fd00::9")}, wire.MustAddr("fd00::1"), nil); err == nil {
		t.Fatal("onion built without published keys")
	}
}

// Mixnet inside enclaves (§6.2 pairs privacy services with enclaves).
func TestMixnetRunsInEnclave(t *testing.T) {
	topo := lab.New()
	dir := NewKeyDirectory()
	ed, err := topo.AddEdomain("ed-a", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(dir, ed.SNs[0].Addr(), WithBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.SNs[0].Register(m, sn.WithEnclave()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	sender, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	receiver.OnService(wire.SvcMixnet, func(msg host.Message) { got <- string(msg.Payload) })
	if err := Send(sender, dir, []wire.Addr{ed.SNs[0].Addr()}, receiver.Addr(), []byte("sealed")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if p != "sealed" {
			t.Fatalf("payload %q", p)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
	encl, ok := ed.SNs[0].ModuleEnclave(wire.SvcMixnet)
	if !ok || encl.Crossings() == 0 {
		t.Fatal("enclave not engaged")
	}
}
