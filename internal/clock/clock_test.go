package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	c := Real{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v not in [%v, %v]", got, before, after)
	}
}

func TestManualNowIsFixed(t *testing.T) {
	start := time.Date(2024, 8, 4, 0, 0, 0, 0, time.UTC)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", m.Now(), start)
	}
	m.Advance(3 * time.Second)
	if want := start.Add(3 * time.Second); !m.Now().Equal(want) {
		t.Fatalf("after Advance, Now() = %v, want %v", m.Now(), want)
	}
}

func TestManualAfterFiresOnAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	ch := m.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	m.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired too early")
	default:
	}
	m.Advance(time.Second)
	select {
	case at := <-ch:
		if want := time.Unix(10, 0); !at.Equal(want) {
			t.Fatalf("timer fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire after full Advance")
	}
}

func TestManualAfterZeroFiresImmediately(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	select {
	case <-m.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestManualMultipleWaitersFireInOrder(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	ch1 := m.After(1 * time.Second)
	ch3 := m.After(3 * time.Second)
	ch2 := m.After(2 * time.Second)
	m.Advance(2 * time.Second)
	for name, ch := range map[string]<-chan time.Time{"1s": ch1, "2s": ch2} {
		select {
		case <-ch:
		default:
			t.Fatalf("timer %s did not fire", name)
		}
	}
	select {
	case <-ch3:
		t.Fatal("3s timer fired at t=2s")
	default:
	}
}

func TestManualSleepUnblocks(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		m.Sleep(5 * time.Second)
		close(done)
	}()
	// Wait until the sleeper has registered its waiter.
	for {
		m.mu.Lock()
		n := len(m.waiters)
		m.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m.Advance(5 * time.Second)
	wg.Wait()
	<-done
}

func TestManualSetForwards(t *testing.T) {
	m := NewManual(time.Unix(100, 0))
	ch := m.After(50 * time.Second)
	m.Set(time.Unix(200, 0))
	select {
	case <-ch:
	default:
		t.Fatal("Set did not fire due timer")
	}
	if !m.Now().Equal(time.Unix(200, 0)) {
		t.Fatalf("Now() = %v after Set", m.Now())
	}
}

func TestManualTimerFiresOnAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	tm := m.NewTimer(5 * time.Second)
	m.Advance(4 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired early")
	default:
	}
	m.Advance(time.Second)
	select {
	case at := <-tm.C():
		if !at.Equal(time.Unix(5, 0)) {
			t.Fatalf("fired at %v", at)
		}
	default:
		t.Fatal("timer did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing reported true")
	}
}

func TestManualTimerStopSuppressesDelivery(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	tm := m.NewTimer(5 * time.Second)
	if !tm.Stop() {
		t.Fatal("Stop before firing reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	m.Advance(10 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer delivered")
	default:
	}
}

func TestManualTimerZeroFiresImmediately(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	tm := m.NewTimer(0)
	select {
	case <-tm.C():
	default:
		t.Fatal("NewTimer(0) did not fire immediately")
	}
}

func TestRealTimerStop(t *testing.T) {
	c := Real{}
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("Stop before firing reported false")
	}
	tm = c.NewTimer(0)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire")
	}
}

func TestManualSetBackwardsPanics(t *testing.T) {
	m := NewManual(time.Unix(100, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("Set backwards did not panic")
		}
	}()
	m.Set(time.Unix(50, 0))
}
