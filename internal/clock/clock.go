// Package clock abstracts time so that schedulers, key rotation, and cache
// aging are deterministic under test. Production code uses Real; tests use
// Manual and advance time explicitly.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal time surface the rest of the system depends on.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the then-current time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a stoppable timer that fires once d has elapsed.
	// Prefer it over After on paths that usually cancel the timer (e.g.
	// per-invoke deadlines): a stopped timer releases its resources
	// immediately instead of lingering until the deadline passes.
	NewTimer(d time.Duration) Timer
	// Sleep blocks until d has elapsed.
	Sleep(d time.Duration)
}

// Timer is a one-shot timer bound to a Clock.
type Timer interface {
	// C returns the channel the timer delivers on.
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it was stopped before
	// firing. After a successful Stop the channel never delivers.
	Stop() bool
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time { return r.t.C }
func (r realTimer) Stop() bool          { return r.t.Stop() }

// Manual is a Clock whose time only moves when Advance is called. It is safe
// for concurrent use.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
}

// NewManual returns a Manual clock starting at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

type waiter struct {
	at time.Time
	ch chan time.Time
	// timer, when non-nil, lets Stop suppress the delivery (the waiter
	// stays in the heap until due but fires into nothing).
	timer *manualTimer
}

type waiterHeap []waiter

func (h waiterHeap) Len() int            { return len(h) }
func (h waiterHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	*h = old[:n-1]
	return w
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// After implements Clock. The returned channel fires when Advance moves the
// clock to or past now+d.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := m.now.Add(d)
	if d <= 0 {
		ch <- m.now
		return ch
	}
	heap.Push(&m.waiters, waiter{at: at, ch: ch})
	return ch
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock far enough.
func (m *Manual) Sleep(d time.Duration) {
	<-m.After(d)
}

// NewTimer implements Clock: the timer fires when Advance moves the clock
// to or past now+d, unless stopped first.
func (m *Manual) NewTimer(d time.Duration) Timer {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &manualTimer{m: m, ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.fired = true
		t.ch <- m.now
		return t
	}
	heap.Push(&m.waiters, waiter{at: m.now.Add(d), ch: t.ch, timer: t})
	return t
}

// manualTimer is a Manual-clock timer; fired/stopped are guarded by the
// clock's mutex.
type manualTimer struct {
	m       *Manual
	ch      chan time.Time
	fired   bool
	stopped bool
}

func (t *manualTimer) C() <-chan time.Time { return t.ch }

func (t *manualTimer) Stop() bool {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Advance moves the clock forward by d, firing any timers that come due.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	var due []waiter
	for len(m.waiters) > 0 && !m.waiters[0].at.After(m.now) {
		w := heap.Pop(&m.waiters).(waiter)
		if w.timer != nil {
			if w.timer.stopped {
				continue
			}
			w.timer.fired = true
		}
		due = append(due, w)
	}
	now := m.now
	m.mu.Unlock()
	for _, w := range due {
		w.ch <- now
	}
}

// Set moves the clock to exactly t (which must not be earlier than the
// current time), firing any timers that come due.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	if t.Before(m.now) {
		m.mu.Unlock()
		panic("clock: Set would move time backwards")
	}
	d := t.Sub(m.now)
	m.mu.Unlock()
	m.Advance(d)
}
