// Package edomain implements the per-edomain "core" of §6.2: an SDN-like
// persistent, scalable store that tracks which of the edomain's SNs have
// members of each group, registers the edomain with the global lookup
// service when it first gains members or senders, and pushes watch events
// to SNs that registered as senders.
package edomain

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"interedge/internal/lookup"
	"interedge/internal/lookup/rescache"
	"interedge/internal/wire"
)

// ID aliases lookup.EdomainID for convenience.
type ID = lookup.EdomainID

// GroupID aliases lookup.GroupID.
type GroupID = lookup.GroupID

// MemberEvent reports an SN gaining or losing members of a group inside
// this edomain.
type MemberEvent struct {
	Group  GroupID
	SN     wire.Addr
	Joined bool
}

// Errors returned by the core.
var (
	ErrUnknownSN = errors.New("edomain: SN not registered in this edomain")
)

type coreGroup struct {
	// membersBySN maps each SN to the hosts behind it that joined.
	membersBySN map[wire.Addr]map[wire.Addr]struct{}
	senderSNs   map[wire.Addr]struct{}
	watchers    map[int]chan MemberEvent
	nextW       int
	// lookupCancel is set while this edomain has ≥1 registered sender and
	// is therefore watching the global member-edomain list.
	lookupCancel  func()
	remoteMembers map[ID]struct{}
	remoteEvents  <-chan lookup.GroupEvent
	remoteDone    chan struct{}
}

// Core is one edomain's control store.
type Core struct {
	id     ID
	global *lookup.Service

	mu       sync.Mutex
	sns      map[wire.Addr]struct{}
	groups   map[GroupID]*coreGroup
	resolver *rescache.Cache
	ringst   ringState
}

// New creates a core for the given edomain backed by the global lookup
// service.
func New(id ID, global *lookup.Service) *Core {
	c := &Core{
		id:     id,
		global: global,
		sns:    make(map[wire.Addr]struct{}),
		groups: make(map[GroupID]*coreGroup),
	}
	c.ringst.init()
	return c
}

// ID returns the edomain's identifier.
func (c *Core) ID() ID { return c.id }

// NewResolver builds the edomain-tier resolution cache — the middle tier
// of the resolution cache hierarchy (DESIGN.md), shared as the fill
// backend by the edomain's SN-tier caches. Built at most once; later
// calls return the existing cache. cfg.Backend defaults to the global
// lookup service.
func (c *Core) NewResolver(cfg rescache.Config) *rescache.Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.resolver == nil {
		if cfg.Backend == nil {
			cfg.Backend = c.global
		}
		c.resolver = rescache.New(cfg)
	}
	return c.resolver
}

// Resolver returns the edomain-tier resolution cache, or nil if
// NewResolver was never called.
func (c *Core) Resolver() *rescache.Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resolver
}

// Close releases the core's background resources: the edomain-tier
// resolution cache watch and any global group watches still held on
// behalf of registered senders.
func (c *Core) Close() {
	c.mu.Lock()
	res := c.resolver
	c.resolver = nil
	type groupWatch struct {
		group  GroupID
		cancel func()
		done   chan struct{}
	}
	var watches []groupWatch
	for g, cg := range c.groups {
		if cg.lookupCancel != nil {
			watches = append(watches, groupWatch{g, cg.lookupCancel, cg.remoteDone})
			cg.lookupCancel = nil
			cg.remoteDone = nil
		}
	}
	c.mu.Unlock()
	for _, w := range watches {
		w.cancel()
		<-w.done
		c.global.UnregisterSenderEdomain(w.group, c.id)
	}
	if res != nil {
		res.Close()
	}
}

// RegisterSN adds an SN to the edomain, active for placement.
func (c *Core) RegisterSN(addr wire.Addr) {
	c.mu.Lock()
	if _, ok := c.sns[addr]; ok {
		c.mu.Unlock()
		return
	}
	c.sns[addr] = struct{}{}
	// setSNState no-ops on same-state transitions, and a fresh map entry
	// already reads as SNActive; seed it as Down first so registration is
	// always a real Down→Active ring change.
	c.ringst.states[addr] = SNDown
	ev, watchers := c.setSNState(addr, SNActive)
	c.mu.Unlock()
	c.notifyRing(watchers, ev)
}

// SNs returns the edomain's registered SNs.
func (c *Core) SNs() []wire.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.Addr, 0, len(c.sns))
	for a := range c.sns {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// HasSN reports whether addr is one of the edomain's SNs.
func (c *Core) HasSN(addr wire.Addr) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.sns[addr]
	return ok
}

func (c *Core) group(g GroupID) *coreGroup {
	cg, ok := c.groups[g]
	if !ok {
		cg = &coreGroup{
			membersBySN:   make(map[wire.Addr]map[wire.Addr]struct{}),
			senderSNs:     make(map[wire.Addr]struct{}),
			watchers:      make(map[int]chan MemberEvent),
			remoteMembers: make(map[ID]struct{}),
		}
		c.groups[g] = cg
	}
	return cg
}

// JoinGroup records that host (behind sn) joined group. If sn previously
// had no members, sender-SNs are notified; if the edomain previously had
// no members, the global lookup service is updated ("Whenever an SN
// receives a join message for a group for which it does not currently
// have a member, it sends a notice to the edomain's core", §6.2).
func (c *Core) JoinGroup(group GroupID, sn, hostAddr wire.Addr) error {
	c.mu.Lock()
	if _, ok := c.sns[sn]; !ok {
		c.mu.Unlock()
		return ErrUnknownSN
	}
	cg := c.group(group)
	edomainHadMembers := len(cg.membersBySN) > 0
	hosts, snHadMembers := cg.membersBySN[sn]
	if !snHadMembers {
		hosts = make(map[wire.Addr]struct{})
		cg.membersBySN[sn] = hosts
	}
	hosts[hostAddr] = struct{}{}
	var watchers []chan MemberEvent
	if !snHadMembers {
		watchers = collectMemberWatchers(cg)
	}
	c.mu.Unlock()

	if !snHadMembers {
		notifyMembers(watchers, MemberEvent{Group: group, SN: sn, Joined: true})
	}
	if !edomainHadMembers {
		if err := c.global.JoinGroupEdomain(group, c.id); err != nil {
			return fmt.Errorf("edomain: global join: %w", err)
		}
	}
	return nil
}

// LeaveGroup removes a host's membership, propagating SN- and
// edomain-level emptiness.
func (c *Core) LeaveGroup(group GroupID, sn, hostAddr wire.Addr) error {
	c.mu.Lock()
	cg := c.group(group)
	hosts, ok := cg.membersBySN[sn]
	if ok {
		delete(hosts, hostAddr)
	}
	snNowEmpty := ok && len(hosts) == 0
	if snNowEmpty {
		delete(cg.membersBySN, sn)
	}
	edomainNowEmpty := len(cg.membersBySN) == 0
	var watchers []chan MemberEvent
	if snNowEmpty {
		watchers = collectMemberWatchers(cg)
	}
	c.mu.Unlock()

	if snNowEmpty {
		notifyMembers(watchers, MemberEvent{Group: group, SN: sn, Joined: false})
	}
	if snNowEmpty && edomainNowEmpty {
		if err := c.global.LeaveGroupEdomain(group, c.id); err != nil {
			return fmt.Errorf("edomain: global leave: %w", err)
		}
	}
	return nil
}

// MemberSNs returns the edomain's SNs with at least one member of group.
func (c *Core) MemberSNs(group GroupID) []wire.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	cg, ok := c.groups[group]
	if !ok {
		return nil
	}
	out := make([]wire.Addr, 0, len(cg.membersBySN))
	for a := range cg.membersBySN {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// MembersAt returns the member hosts behind one SN (used by that SN for
// last-hop fan-out).
func (c *Core) MembersAt(group GroupID, sn wire.Addr) []wire.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	cg, ok := c.groups[group]
	if !ok {
		return nil
	}
	hosts := cg.membersBySN[sn]
	out := make([]wire.Addr, 0, len(hosts))
	for a := range hosts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// RegisterSender registers sn as a sender for group, returning the current
// member SNs of this edomain and a watch for changes ("the SN reads from
// the core the set of other internal SNs that have members (and puts a
// watch on this list)", §6.2). The first sender registration also
// registers the edomain with the global lookup service and starts watching
// the remote member-edomain list.
func (c *Core) RegisterSender(group GroupID, sn wire.Addr) ([]wire.Addr, <-chan MemberEvent, func(), error) {
	c.mu.Lock()
	if _, ok := c.sns[sn]; !ok {
		c.mu.Unlock()
		return nil, nil, nil, ErrUnknownSN
	}
	cg := c.group(group)
	cg.senderSNs[sn] = struct{}{}
	needGlobal := cg.lookupCancel == nil

	members := make([]wire.Addr, 0, len(cg.membersBySN))
	for a := range cg.membersBySN {
		members = append(members, a)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Less(members[j]) })

	id := cg.nextW
	cg.nextW++
	ch := make(chan MemberEvent, 64)
	cg.watchers[id] = ch
	cancel := func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if w, ok := cg.watchers[id]; ok {
			delete(cg.watchers, id)
			close(w)
		}
	}
	c.mu.Unlock()

	if needGlobal {
		if err := c.registerWithGlobal(group, cg); err != nil {
			cancel()
			return nil, nil, nil, err
		}
	}
	return members, ch, cancel, nil
}

// registerWithGlobal registers this edomain as a sender with the lookup
// service and starts mirroring the remote member-edomain list.
func (c *Core) registerWithGlobal(group GroupID, cg *coreGroup) error {
	remotes, events, cancel, err := c.global.RegisterSenderEdomain(group, c.id)
	if err != nil {
		return fmt.Errorf("edomain: global sender registration: %w", err)
	}
	done := make(chan struct{})
	c.mu.Lock()
	if cg.lookupCancel != nil {
		// Lost the race with a concurrent registration; discard ours.
		c.mu.Unlock()
		cancel()
		return nil
	}
	cg.lookupCancel = cancel
	cg.remoteEvents = events
	cg.remoteDone = done
	for _, r := range remotes {
		if r != c.id {
			cg.remoteMembers[r] = struct{}{}
		}
	}
	c.mu.Unlock()

	go func() {
		defer close(done)
		for ev := range events {
			if ev.Resync {
				// The watch overflowed and events were lost: refetch
				// the authoritative member list instead of applying
				// increments to a mirror that is now missing changes.
				remotes, err := c.global.MemberEdomains(group)
				if err != nil {
					continue
				}
				c.mu.Lock()
				clear(cg.remoteMembers)
				for _, r := range remotes {
					if r != c.id {
						cg.remoteMembers[r] = struct{}{}
					}
				}
				c.mu.Unlock()
				continue
			}
			if ev.Edomain == c.id {
				continue
			}
			c.mu.Lock()
			if ev.Joined {
				cg.remoteMembers[ev.Edomain] = struct{}{}
			} else {
				delete(cg.remoteMembers, ev.Edomain)
			}
			c.mu.Unlock()
		}
	}()
	return nil
}

// RemoteMemberEdomains returns the other edomains currently holding
// members of group. Valid only while the edomain has a registered sender.
func (c *Core) RemoteMemberEdomains(group GroupID) []ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	cg, ok := c.groups[group]
	if !ok {
		return nil
	}
	out := make([]ID, 0, len(cg.remoteMembers))
	for e := range cg.remoteMembers {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UnregisterSender removes sn from the group's sender set; when the last
// sender leaves, the global watch is dropped.
func (c *Core) UnregisterSender(group GroupID, sn wire.Addr) {
	c.mu.Lock()
	cg, ok := c.groups[group]
	if !ok {
		c.mu.Unlock()
		return
	}
	delete(cg.senderSNs, sn)
	var cancel func()
	var done chan struct{}
	if len(cg.senderSNs) == 0 && cg.lookupCancel != nil {
		cancel = cg.lookupCancel
		done = cg.remoteDone
		cg.lookupCancel = nil
		cg.remoteDone = nil
		cg.remoteMembers = make(map[ID]struct{})
	}
	c.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
		c.global.UnregisterSenderEdomain(group, c.id)
	}
}

// --- Persistence (the core is a "persistent and scalable store") --------

type snapshotGroup struct {
	Members map[string][]string `json:"members"` // SN addr -> host addrs
}

type snapshot struct {
	ID     ID                        `json:"id"`
	SNs    []string                  `json:"sns"`
	Groups map[GroupID]snapshotGroup `json:"groups"`
}

// Snapshot serializes the core's durable state (SN registry and group
// membership; watches and sender registrations are soft state that
// re-registers after recovery).
func (c *Core) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := snapshot{ID: c.id, Groups: make(map[GroupID]snapshotGroup)}
	for a := range c.sns {
		snap.SNs = append(snap.SNs, a.String())
	}
	sort.Strings(snap.SNs)
	for g, cg := range c.groups {
		sg := snapshotGroup{Members: make(map[string][]string)}
		for snAddr, hosts := range cg.membersBySN {
			for h := range hosts {
				sg.Members[snAddr.String()] = append(sg.Members[snAddr.String()], h.String())
			}
			sort.Strings(sg.Members[snAddr.String()])
		}
		if len(sg.Members) > 0 {
			snap.Groups[g] = sg
		}
	}
	return json.Marshal(snap)
}

// Restore loads durable state from a snapshot, replacing current state.
func (c *Core) Restore(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("edomain: restore: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sns = make(map[wire.Addr]struct{})
	c.ringst.states = make(map[wire.Addr]SNState)
	active := make([]wire.Addr, 0, len(snap.SNs))
	for _, s := range snap.SNs {
		a := wire.MustAddr(s)
		c.sns[a] = struct{}{}
		c.ringst.states[a] = SNActive
		active = append(active, a)
	}
	sort.Slice(active, func(i, j int) bool { return active[i].Less(active[j]) })
	c.ringst.ring.Store(buildRing(active))
	c.ringst.gen.Add(1)
	c.ringst.changes.Add(1)
	c.groups = make(map[GroupID]*coreGroup)
	for g, sg := range snap.Groups {
		cg := c.group(g)
		for snStr, hosts := range sg.Members {
			snAddr := wire.MustAddr(snStr)
			hs := make(map[wire.Addr]struct{}, len(hosts))
			for _, h := range hosts {
				hs[wire.MustAddr(h)] = struct{}{}
			}
			cg.membersBySN[snAddr] = hs
		}
	}
	return nil
}

func collectMemberWatchers(cg *coreGroup) []chan MemberEvent {
	out := make([]chan MemberEvent, 0, len(cg.watchers))
	for _, w := range cg.watchers {
		out = append(out, w)
	}
	return out
}

func notifyMembers(watchers []chan MemberEvent, ev MemberEvent) {
	for _, w := range watchers {
		select {
		case w <- ev:
		default:
		}
	}
}
