package edomain

import (
	"fmt"
	"testing"

	"interedge/internal/lookup"
	"interedge/internal/wire"
)

func ringCore(t *testing.T, nSNs int) (*Core, []wire.Addr) {
	t.Helper()
	c := New("ed-ring", lookup.New())
	sns := make([]wire.Addr, nSNs)
	for i := range sns {
		sns[i] = wire.MustAddr(fmt.Sprintf("fd00::a:%d", i+1))
		c.RegisterSN(sns[i])
	}
	return c, sns
}

func hostAddr(i int) wire.Addr {
	return wire.MustAddr(fmt.Sprintf("fd00::1:%d", i+1))
}

// TestRingPlacementDeterministicAndSpread: same inputs always place the
// same way, every active SN gets a share, and placement only uses active
// SNs.
func TestRingPlacementDeterministicAndSpread(t *testing.T) {
	c, sns := ringCore(t, 4)
	c2, _ := ringCore(t, 4)
	counts := make(map[wire.Addr]int)
	const hosts = 512
	for i := 0; i < hosts; i++ {
		h := hostAddr(i)
		sn, ok := c.PlaceHost(h)
		if !ok {
			t.Fatalf("no placement for %v", h)
		}
		sn2, _ := c2.PlaceHost(h)
		if sn != sn2 {
			t.Fatalf("placement not deterministic for %v: %v vs %v", h, sn, sn2)
		}
		counts[sn]++
	}
	for _, sn := range sns {
		if counts[sn] == 0 {
			t.Fatalf("SN %v received no placements: %v", sn, counts)
		}
		if counts[sn] > hosts/2 {
			t.Fatalf("SN %v hot-spotted with %d/%d placements", sn, counts[sn], hosts)
		}
	}
}

// TestRingDrainMovesOnlyDrainedHosts: taking one SN out moves exactly the
// hosts it owned; everyone else stays put (the consistent-hash property
// the whole drain design leans on).
func TestRingDrainMovesOnlyDrainedHosts(t *testing.T) {
	c, sns := ringCore(t, 4)
	const hosts = 256
	before := make(map[wire.Addr]wire.Addr, hosts)
	for i := 0; i < hosts; i++ {
		h := hostAddr(i)
		before[h], _ = c.PlaceHost(h)
	}
	victim := sns[1]
	if err := c.BeginDrain(victim); err != nil {
		t.Fatal(err)
	}
	if st := c.SNStateOf(victim); st != SNDraining {
		t.Fatalf("state %v, want draining", st)
	}
	moved := 0
	for h, old := range before {
		now, ok := c.PlaceHost(h)
		if !ok {
			t.Fatalf("no placement for %v after drain", h)
		}
		if now == victim {
			t.Fatalf("host %v placed on draining SN", h)
		}
		if old == victim {
			moved++
		} else if now != old {
			t.Fatalf("host %v moved %v -> %v though its SN never changed state", h, old, now)
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no hosts; test has no power")
	}
	// Reactivation restores the original placement exactly.
	if err := c.ReactivateSN(victim); err != nil {
		t.Fatal(err)
	}
	for h, old := range before {
		if now, _ := c.PlaceHost(h); now != old {
			t.Fatalf("host %v did not return to %v after reactivation (got %v)", h, old, now)
		}
	}
}

// TestRingEventsAndGenerations pins the watch/generation contract used by
// the placement controller.
func TestRingEventsAndGenerations(t *testing.T) {
	c, sns := ringCore(t, 3)
	gen0, ch, cancel := c.WatchRing()
	defer cancel()
	if gen0 != c.RingGen() {
		t.Fatalf("WatchRing gen %d != RingGen %d", gen0, c.RingGen())
	}
	changes0 := c.RingChanges()

	if err := c.BeginDrain(sns[0]); err != nil {
		t.Fatal(err)
	}
	ev := <-ch
	if ev.SN != sns[0] || ev.State != SNDraining || ev.Gen != gen0+1 {
		t.Fatalf("drain event %+v, want sn=%v draining gen=%d", ev, sns[0], gen0+1)
	}
	// Same-state transition is a no-op: no event, no gen bump.
	if err := c.BeginDrain(sns[0]); err != nil {
		t.Fatal(err)
	}
	c.ReportSNDown(sns[1])
	ev = <-ch
	if ev.SN != sns[1] || ev.State != SNDown || ev.Gen != gen0+2 {
		t.Fatalf("down event %+v, want sn=%v down gen=%d", ev, sns[1], gen0+2)
	}
	c.FinishDrain(sns[0])
	ev = <-ch
	if ev.SN != sns[0] || ev.State != SNDown {
		t.Fatalf("finish-drain event %+v, want sn=%v down", ev, sns[0])
	}
	if got := c.RingChanges() - changes0; got != 3 {
		t.Fatalf("RingChanges advanced by %d, want 3", got)
	}
	if active := c.ActiveSNs(); len(active) != 1 || active[0] != sns[2] {
		t.Fatalf("active SNs %v, want just %v", active, sns[2])
	}
	// Placement falls entirely onto the survivor.
	if sn, ok := c.PlaceHost(hostAddr(0)); !ok || sn != sns[2] {
		t.Fatalf("placement %v/%v, want %v", sn, ok, sns[2])
	}
	// Everything down: placement reports no owner rather than lying.
	c.ReportSNDown(sns[2])
	<-ch
	if _, ok := c.PlaceHost(hostAddr(0)); ok {
		t.Fatal("placement succeeded with zero active SNs")
	}
	// Unknown SNs are rejected/ignored.
	if err := c.BeginDrain(wire.MustAddr("fd00::ff")); err != ErrUnknownSN {
		t.Fatalf("drain of unknown SN err=%v, want ErrUnknownSN", err)
	}
	if st := c.SNStateOf(wire.MustAddr("fd00::ff")); st != SNDown {
		t.Fatalf("unknown SN state %v, want down", st)
	}
}
