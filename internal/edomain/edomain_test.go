package edomain

import (
	"testing"
	"time"

	"interedge/internal/cryptutil"
	"interedge/internal/lookup"
	"interedge/internal/wire"
)

var (
	snA   = wire.MustAddr("fd00::100")
	snB   = wire.MustAddr("fd00::200")
	host1 = wire.MustAddr("fd00::1")
	host2 = wire.MustAddr("fd00::2")
)

func newCore(t *testing.T, id ID) (*Core, *lookup.Service) {
	t.Helper()
	global := lookup.New()
	owner, err := cryptutil.NewSigningKeypair()
	if err != nil {
		t.Fatal(err)
	}
	if err := global.CreateGroup("g", owner.Public); err != nil {
		t.Fatal(err)
	}
	c := New(id, global)
	c.RegisterSN(snA)
	c.RegisterSN(snB)
	return c, global
}

func TestRegisterSN(t *testing.T) {
	c, _ := newCore(t, "ed-1")
	if !c.HasSN(snA) || !c.HasSN(snB) {
		t.Fatal("registered SNs missing")
	}
	if c.HasSN(host1) {
		t.Fatal("unregistered addr reported as SN")
	}
	if got := len(c.SNs()); got != 2 {
		t.Fatalf("SNs = %d", got)
	}
}

func TestJoinGroupTracksSNAndEdomain(t *testing.T) {
	c, global := newCore(t, "ed-1")
	if err := c.JoinGroup("g", snA, host1); err != nil {
		t.Fatal(err)
	}
	members := c.MemberSNs("g")
	if len(members) != 1 || members[0] != snA {
		t.Fatalf("member SNs %v", members)
	}
	hosts := c.MembersAt("g", snA)
	if len(hosts) != 1 || hosts[0] != host1 {
		t.Fatalf("hosts %v", hosts)
	}
	// Edomain registered globally.
	eds, err := global.MemberEdomains("g")
	if err != nil || len(eds) != 1 || eds[0] != "ed-1" {
		t.Fatalf("global members %v err %v", eds, err)
	}
}

func TestJoinUnknownSNRejected(t *testing.T) {
	c, _ := newCore(t, "ed-1")
	if err := c.JoinGroup("g", host1, host2); err != ErrUnknownSN {
		t.Fatalf("err = %v, want ErrUnknownSN", err)
	}
}

func TestLeaveGroupPropagatesEmptiness(t *testing.T) {
	c, global := newCore(t, "ed-1")
	if err := c.JoinGroup("g", snA, host1); err != nil {
		t.Fatal(err)
	}
	if err := c.JoinGroup("g", snA, host2); err != nil {
		t.Fatal(err)
	}
	if err := c.LeaveGroup("g", snA, host1); err != nil {
		t.Fatal(err)
	}
	// snA still has host2.
	if got := c.MemberSNs("g"); len(got) != 1 {
		t.Fatalf("member SNs %v", got)
	}
	if err := c.LeaveGroup("g", snA, host2); err != nil {
		t.Fatal(err)
	}
	if got := c.MemberSNs("g"); len(got) != 0 {
		t.Fatalf("member SNs %v", got)
	}
	eds, _ := global.MemberEdomains("g")
	if len(eds) != 0 {
		t.Fatalf("global members %v after last leave", eds)
	}
}

func TestRegisterSenderSeesMembersAndWatches(t *testing.T) {
	c, _ := newCore(t, "ed-1")
	if err := c.JoinGroup("g", snA, host1); err != nil {
		t.Fatal(err)
	}
	members, events, cancel, err := c.RegisterSender("g", snB)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if len(members) != 1 || members[0] != snA {
		t.Fatalf("members %v", members)
	}
	// A join at a new SN produces a watch event.
	if err := c.JoinGroup("g", snB, host2); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.SN != snB || !ev.Joined {
			t.Fatalf("event %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no watch event")
	}
	// A second host joining the same SN is not a new SN-level event.
	if err := c.JoinGroup("g", snB, host1); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		t.Fatalf("unexpected event %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSenderSeesRemoteEdomains(t *testing.T) {
	global := lookup.New()
	owner, _ := cryptutil.NewSigningKeypair()
	if err := global.CreateGroup("g", owner.Public); err != nil {
		t.Fatal(err)
	}
	c1 := New("ed-1", global)
	c1.RegisterSN(snA)
	c2 := New("ed-2", global)
	c2.RegisterSN(snB)

	// ed-2 has a member before ed-1 registers a sender.
	if err := c2.JoinGroup("g", snB, host2); err != nil {
		t.Fatal(err)
	}
	_, _, cancel, err := c1.RegisterSender("g", snA)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	remotes := c1.RemoteMemberEdomains("g")
	if len(remotes) != 1 || remotes[0] != "ed-2" {
		t.Fatalf("remotes %v", remotes)
	}
	// ed-3 joins later; the watch keeps the mirror current.
	c3 := New("ed-3", global)
	c3.RegisterSN(host1) // any addr can be an SN in another edomain
	if err := c3.JoinGroup("g", host1, host2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for len(c1.RemoteMemberEdomains("g")) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("remotes %v never updated", c1.RemoteMemberEdomains("g"))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUnregisterSenderDropsGlobalWatch(t *testing.T) {
	c, global := newCore(t, "ed-1")
	_, _, cancel, err := c.RegisterSender("g", snA)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	c.UnregisterSender("g", snA)
	senders, _ := global.SenderEdomains("g")
	if len(senders) != 0 {
		t.Fatalf("senders %v after unregister", senders)
	}
	if got := c.RemoteMemberEdomains("g"); len(got) != 0 {
		t.Fatalf("stale remote members %v", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	c, _ := newCore(t, "ed-1")
	if err := c.JoinGroup("g", snA, host1); err != nil {
		t.Fatal(err)
	}
	if err := c.JoinGroup("g", snB, host2); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Fresh core restored from snapshot.
	c2 := New("ed-1", lookup.New())
	if err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !c2.HasSN(snA) || !c2.HasSN(snB) {
		t.Fatal("SN registry lost")
	}
	members := c2.MemberSNs("g")
	if len(members) != 2 {
		t.Fatalf("member SNs %v", members)
	}
	hosts := c2.MembersAt("g", snA)
	if len(hosts) != 1 || hosts[0] != host1 {
		t.Fatalf("hosts %v", hosts)
	}
}

func TestRestoreGarbageFails(t *testing.T) {
	c := New("ed-1", lookup.New())
	if err := c.Restore([]byte("{nope")); err == nil {
		t.Fatal("garbage restore succeeded")
	}
}
