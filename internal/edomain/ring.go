package edomain

import (
	"sort"
	"sync/atomic"

	"interedge/internal/wire"
)

// SNState tracks one SN's availability for host placement.
type SNState int

const (
	// SNActive SNs take placements.
	SNActive SNState = iota
	// SNDraining SNs keep serving established pipes while their state
	// migrates, but receive no new placements.
	SNDraining
	// SNDown SNs are out of rotation entirely: drained out, or declared
	// dead by dead-peer detection.
	SNDown
)

// String renders the state for logs.
func (s SNState) String() string {
	switch s {
	case SNActive:
		return "active"
	case SNDraining:
		return "draining"
	case SNDown:
		return "down"
	default:
		return "unknown"
	}
}

// RingEvent announces one placement-ring change. Gen is the ring
// generation after the change; SN and State describe what moved.
type RingEvent struct {
	Gen   uint64
	SN    wire.Addr
	State SNState
}

// ringVNodes is the number of virtual nodes each SN contributes to the
// consistent-hash ring. 64 keeps the per-SN load spread within a few
// percent at fleet sizes the lab runs while the ring stays tiny.
const ringVNodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	sn   wire.Addr
}

// hashRing is an immutable consistent-hash ring over active SNs. Readers
// get it via an atomic pointer and never lock.
type hashRing struct {
	points []ringPoint
}

// addrHash is FNV-1a over the 16-byte address form plus a salt byte
// sequence, the same hash family the RX-worker/cache sharding uses
// (wire.ShardIndex), so placement is deterministic across processes.
func addrHash(a wire.Addr, salt uint32) uint64 {
	const (
		offset = uint64(14695981039346656037)
		prime  = uint64(1099511628211)
	)
	h := offset
	b := a.As16()
	for _, c := range b {
		h = (h ^ uint64(c)) * prime
	}
	for i := 0; i < 4; i++ {
		h = (h ^ uint64(byte(salt>>(8*i)))) * prime
	}
	// Finalize with a murmur3-style avalanche: raw FNV of near-identical
	// addresses (cluster addressing plans differ in a byte or two) yields
	// hash points in arithmetic progression, which collapses the ring into
	// structured arcs and hot-spots one SN.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func buildRing(sns []wire.Addr) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(sns)*ringVNodes)}
	for _, sn := range sns {
		for v := 0; v < ringVNodes; v++ {
			r.points = append(r.points, ringPoint{hash: addrHash(sn, uint32(v)), sn: sn})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].sn.Less(r.points[j].sn)
	})
	return r
}

// owner returns the SN owning key on the circle: the first point clockwise
// from the key's hash.
func (r *hashRing) owner(key wire.Addr) (wire.Addr, bool) {
	if len(r.points) == 0 {
		return wire.Addr{}, false
	}
	h := addrHash(key, 0)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].sn, true
}

// ringState is the Core's placement machinery, embedded behind Core.mu for
// writes with lock-free reads through the atomic ring pointer.
type ringState struct {
	ring       atomic.Pointer[hashRing]
	gen        atomic.Uint64
	changes    atomic.Uint64
	watchDrops atomic.Uint64
	states     map[wire.Addr]SNState
	watchers   map[int]chan RingEvent
	nextW      int
}

func (rs *ringState) init() {
	rs.states = make(map[wire.Addr]SNState)
	rs.watchers = make(map[int]chan RingEvent)
	rs.ring.Store(buildRing(nil))
}

// PlaceHost returns the SN that should serve host under the current ring.
// Lock-free; safe from packet paths. ok is false when the edomain has no
// active SN.
func (c *Core) PlaceHost(host wire.Addr) (wire.Addr, bool) {
	return c.ringst.ring.Load().owner(host)
}

// RingGen returns the current placement-ring generation. It advances on
// every membership or state change.
func (c *Core) RingGen() uint64 { return c.ringst.gen.Load() }

// RingChanges returns the number of ring changes since the core was
// created (the edomain_ring_changes_total telemetry source).
func (c *Core) RingChanges() uint64 { return c.ringst.changes.Load() }

// RingWatchDrops returns the number of ring events dropped because a
// watcher's channel was full (the edomain_ring_watch_dropped_total
// telemetry source). Drops are benign for correctness — consumers re-place
// against the current ring, not the event payload — but a rising rate
// means a controller is falling behind ring churn.
func (c *Core) RingWatchDrops() uint64 { return c.ringst.watchDrops.Load() }

// SNStateOf reports an SN's placement state. Unregistered SNs report
// SNDown.
func (c *Core) SNStateOf(sn wire.Addr) SNState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sns[sn]; !ok {
		return SNDown
	}
	return c.ringst.states[sn]
}

// ActiveSNs returns the SNs currently taking placements, sorted.
func (c *Core) ActiveSNs() []wire.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.Addr, 0, len(c.sns))
	for a := range c.sns {
		if c.ringst.states[a] == SNActive {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// WatchRing returns the current generation and a channel of subsequent
// ring changes. Events are delivered best-effort (a slow watcher loses
// events, not correctness: consumers re-place against the current ring,
// not against the event payload). cancel releases the watch.
func (c *Core) WatchRing() (uint64, <-chan RingEvent, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.ringst.nextW
	c.ringst.nextW++
	ch := make(chan RingEvent, 64)
	c.ringst.watchers[id] = ch
	cancel := func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if w, ok := c.ringst.watchers[id]; ok {
			delete(c.ringst.watchers, id)
			close(w)
		}
	}
	return c.ringst.gen.Load(), ch, cancel
}

// setSNState transitions an SN and rebuilds the ring if placement
// changed. Must be called with c.mu held; returns the watchers to notify
// (nil when the transition was a no-op).
func (c *Core) setSNState(sn wire.Addr, st SNState) (RingEvent, []chan RingEvent) {
	if _, ok := c.sns[sn]; !ok {
		return RingEvent{}, nil
	}
	if c.ringst.states[sn] == st {
		return RingEvent{}, nil
	}
	c.ringst.states[sn] = st
	var active []wire.Addr
	for a := range c.sns {
		if c.ringst.states[a] == SNActive {
			active = append(active, a)
		}
	}
	sort.Slice(active, func(i, j int) bool { return active[i].Less(active[j]) })
	c.ringst.ring.Store(buildRing(active))
	gen := c.ringst.gen.Add(1)
	c.ringst.changes.Add(1)
	ev := RingEvent{Gen: gen, SN: sn, State: st}
	watchers := make([]chan RingEvent, 0, len(c.ringst.watchers))
	for _, w := range c.ringst.watchers {
		watchers = append(watchers, w)
	}
	return ev, watchers
}

// notifyRing delivers ev to each watcher best-effort: a full channel loses
// the event (counted in edomain_ring_watch_dropped_total), never blocks
// the ring writer.
func (c *Core) notifyRing(watchers []chan RingEvent, ev RingEvent) {
	for _, w := range watchers {
		select {
		case w <- ev:
		default:
			c.ringst.watchDrops.Add(1)
		}
	}
}

// BeginDrain takes an SN out of placement while it keeps serving: new
// hosts go elsewhere, established pipes migrate via handoff.
func (c *Core) BeginDrain(sn wire.Addr) error {
	c.mu.Lock()
	if _, ok := c.sns[sn]; !ok {
		c.mu.Unlock()
		return ErrUnknownSN
	}
	ev, watchers := c.setSNState(sn, SNDraining)
	c.mu.Unlock()
	c.notifyRing(watchers, ev)
	return nil
}

// FinishDrain marks a drain complete: the SN is fully out of rotation
// (SNDown) until ReactivateSN. Draining→Down does not change placement
// (the SN already took none), but watchers still see the transition so
// controllers can hand remaining state off.
func (c *Core) FinishDrain(sn wire.Addr) {
	c.mu.Lock()
	ev, watchers := c.setSNState(sn, SNDown)
	c.mu.Unlock()
	c.notifyRing(watchers, ev)
}

// ReportSNDown records an unannounced SN death as a ring change: dead-peer
// detection at a sibling feeds this, re-placement follows from the ring
// event exactly as for a drain — except the pipes are gone, so successors
// are reached by full re-establishment.
func (c *Core) ReportSNDown(sn wire.Addr) {
	c.mu.Lock()
	ev, watchers := c.setSNState(sn, SNDown)
	c.mu.Unlock()
	c.notifyRing(watchers, ev)
}

// ReactivateSN returns a drained or recovered SN to placement.
func (c *Core) ReactivateSN(sn wire.Addr) error {
	c.mu.Lock()
	if _, ok := c.sns[sn]; !ok {
		c.mu.Unlock()
		return ErrUnknownSN
	}
	ev, watchers := c.setSNState(sn, SNActive)
	c.mu.Unlock()
	c.notifyRing(watchers, ev)
	return nil
}
