package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x_total"); again != c {
		t.Fatal("Counter is not idempotent for the same name")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	snap := r.Snapshot()
	if v := snap.Value("x_total"); v != 5 {
		t.Fatalf("snapshot x_total = %v, want 5", v)
	}
	if v := snap.Value("depth"); v != 4 {
		t.Fatalf("snapshot depth = %v, want 4", v)
	}
}

func TestRegisterConflicts(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("dup")
	if err := r.Register(c); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(c); err != nil {
		t.Fatalf("re-registering the same instrument should be a no-op, got %v", err)
	}
	if err := r.Register(NewCounter("dup")); err == nil {
		t.Fatal("registering a different instrument under a taken name must error")
	}
}

func TestSharedInstrumentAcrossRegistries(t *testing.T) {
	// A component-owned instrument registered into two registries (its own
	// and the node's) is one counter: both snapshots see every increment.
	c := NewCounter("shared_total")
	r1, r2 := NewRegistry(), NewRegistry()
	r1.MustRegister(c)
	r2.MustRegister(c)
	c.Add(3)
	if v := r1.Snapshot().Value("shared_total"); v != 3 {
		t.Fatalf("r1 sees %v, want 3", v)
	}
	if v := r2.Snapshot().Value("shared_total"); v != 3 {
		t.Fatalf("r2 sees %v, want 3", v)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram("lat_ns", []uint64{10, 100, 1000})
	for _, v := range []uint64{1, 5, 10, 11, 99, 100, 5000} {
		h.Observe(v)
	}
	s := h.Sample()
	hv := s.Hist
	want := []uint64{3, 3, 0, 1} // ≤10: {1,5,10}; ≤100: {11,99,100}; ≤1000: none; overflow: 5000
	for i, c := range hv.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, c, want[i], hv.Counts)
		}
	}
	if hv.Count != 7 || hv.Sum != 1+5+10+11+99+100+5000 {
		t.Fatalf("count=%d sum=%d", hv.Count, hv.Sum)
	}
	if q := hv.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %d, want 100", q)
	}
	if q := hv.Quantile(0.99); q != 1000 {
		t.Fatalf("p99 = %d, want 1000 (overflow reports largest bound)", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram("h", []uint64{10, 100})
	b := NewHistogram("h", []uint64{10, 100})
	a.Observe(5)
	b.Observe(50)
	b.Observe(500)
	av, bv := a.Sample().Hist, b.Sample().Hist
	av.Merge(bv)
	if av.Count != 3 || av.Sum != 555 {
		t.Fatalf("merged count=%d sum=%d", av.Count, av.Sum)
	}
	if av.Counts[0] != 1 || av.Counts[1] != 1 || av.Counts[2] != 1 {
		t.Fatalf("merged counts %v", av.Counts)
	}
}

func TestFuncInstruments(t *testing.T) {
	r := NewRegistry()
	var hits uint64 = 42
	r.MustRegister(NewCounterFunc("cache_hits_total", func() uint64 { return hits }))
	r.MustRegister(NewGaugeFunc("cache_entries", func() int64 { return -1 }))
	snap := r.Snapshot()
	if v := snap.Value("cache_hits_total"); v != 42 {
		t.Fatalf("func counter = %v", v)
	}
	if v := snap.Value("cache_entries"); v != -1 {
		t.Fatalf("func gauge = %v", v)
	}
}

func TestLabeledNames(t *testing.T) {
	n := Name("sn_module_handled_total", "module", "echo")
	if n != `sn_module_handled_total{module="echo"}` {
		t.Fatalf("Name = %s", n)
	}
	if got := Name("x", "k", `a"b\c`); got != `x{k="a\"b\\c"}` {
		t.Fatalf("escaped Name = %s", got)
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Counter(Name("mod_total", "module", "echo")).Add(1)
	h := r.Histogram("lat", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b, "node", "fd00::1"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE a_total counter",
		`a_total{node="fd00::1"} 2`,
		`mod_total{module="echo",node="fd00::1"} 1`,
		"# TYPE lat histogram",
		`lat_bucket{node="fd00::1",le="10"} 1`,
		`lat_bucket{node="fd00::1",le="100"} 2`,
		`lat_bucket{node="fd00::1",le="+Inf"} 2`,
		`lat_sum{node="fd00::1"} 55`,
		`lat_count{node="fd00::1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(9)
	r.Histogram("h", []uint64{1}).Observe(1)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if v := back.Value("c_total"); v != 9 {
		t.Fatalf("round-tripped c_total = %v", v)
	}
	s, ok := back.Get("h")
	if !ok || s.Kind != KindHistogram || s.Hist.Count != 1 {
		t.Fatalf("round-tripped histogram: %+v", s)
	}
}

// TestRegistryConcurrency is the race-detector regression test the
// registry is gated on: concurrent register, observe, and snapshot must be
// data-race free (scripts/check.sh runs this package under -race).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			c := r.Counter("shared_total")
			g := r.Gauge("shared_gauge")
			h := r.Histogram("shared_hist", LatencyBuckets)
			own := r.Counter(Name("worker_total", "w", string(rune('a'+w))))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(uint64(i))
				own.Inc()
				if i%101 == 0 {
					_ = r.Snapshot()
				}
				if i%257 == 0 {
					_ = r.Register(NewCounterFunc(
						Name("fn_total", "w", string(rune('a'+w))),
						func() uint64 { return uint64(i) }))
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	snap := r.Snapshot()
	if v := snap.Value("shared_total"); v != workers*iters {
		t.Fatalf("shared_total = %v, want %d", v, workers*iters)
	}
	s, _ := snap.Get("shared_hist")
	if s.Hist.Count != workers*iters {
		t.Fatalf("hist count = %d, want %d", s.Hist.Count, workers*iters)
	}
}
