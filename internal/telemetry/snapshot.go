package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// Sample is one instrument's atomically read value. Counters and gauges
// use Value; histograms use Hist.
type Sample struct {
	Name  string         `json:"name"`
	Kind  Kind           `json:"kind"`
	Value float64        `json:"value,omitempty"`
	Hist  *HistogramView `json:"hist,omitempty"`
}

// HistogramView is a histogram sample: cumulative-free per-bucket counts
// plus sum and count. Counts has one more element than Bounds (overflow).
type HistogramView struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the bucket bound at which the cumulative count reaches q*Count. Values in
// the overflow bucket report the largest bound. Returns 0 with no
// observations.
func (h *HistogramView) Quantile(q float64) uint64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if float64(target) < q*float64(h.Count) {
		target++ // rank is ceil(q·count)
	}
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Bounds[len(h.Bounds)-1]
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Merge accumulates another view with identical bounds into h (used to
// combine per-worker histograms after a run).
func (h *HistogramView) Merge(other *HistogramView) {
	if other == nil {
		return
	}
	if len(h.Counts) != len(other.Counts) {
		panic("telemetry: merging histograms with different bucket layouts")
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.Sum += other.Sum
	h.Count += other.Count
}

// Snapshot is a point-in-time read of a registry, sorted by instrument
// name. Each sample was read atomically; samples were not read at one
// common instant (see the package consistency contract).
type Snapshot []Sample

// Get returns the sample with the given (possibly labeled) name.
func (s Snapshot) Get(name string) (Sample, bool) {
	for _, smp := range s {
		if smp.Name == name {
			return smp, true
		}
	}
	return Sample{}, false
}

// Value returns the named counter/gauge value, or 0 if absent.
func (s Snapshot) Value(name string) float64 {
	smp, _ := s.Get(name)
	return smp.Value
}

// String renders the snapshot in the text exposition format (for logs and
// test-failure dumps).
func (s Snapshot) String() string {
	var b strings.Builder
	_ = s.WriteProm(&b)
	return b.String()
}

// WriteProm writes the snapshot in the Prometheus text exposition format
// (version 0.0.4). Optional constLabels are key/value pairs injected into
// every series, e.g. WriteProm(w, "node", "fd00::1").
func (s Snapshot) WriteProm(w io.Writer, constLabels ...string) error {
	if len(constLabels)%2 != 0 {
		return fmt.Errorf("telemetry: WriteProm needs key/value label pairs")
	}
	var inject string
	if len(constLabels) > 0 {
		var b strings.Builder
		for i := 0; i < len(constLabels); i += 2 {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `%s="%s"`, constLabels[i], escapeLabel(constLabels[i+1]))
		}
		inject = b.String()
	}
	typed := make(map[string]bool)
	for _, smp := range s {
		base, labels := splitName(smp.Name)
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, smp.Kind); err != nil {
				return err
			}
		}
		if smp.Kind != KindHistogram {
			series := base + mergeLabels(labels, inject, "")
			if _, err := fmt.Fprintf(w, "%s %g\n", series, smp.Value); err != nil {
				return err
			}
			continue
		}
		h := smp.Hist
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			series := base + "_bucket" + mergeLabels(labels, inject, fmt.Sprintf(`le="%s"`, le))
			if _, err := fmt.Fprintf(w, "%s %d\n", series, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, mergeLabels(labels, inject, ""), h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, mergeLabels(labels, inject, ""), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// mergeLabels combines an instrument's own label block (`{a="b"}` or empty)
// with injected const labels and an extra pair into one block.
func mergeLabels(block, inject, extra string) string {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	parts := make([]string, 0, 3)
	if inner != "" {
		parts = append(parts, inner)
	}
	if inject != "" {
		parts = append(parts, inject)
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}
