// Package telemetry is the node-wide metrics registry: one uniform home
// for every counter, gauge, and latency histogram the data path and the
// slow path maintain, replacing the per-layer ad-hoc stats structs
// (pipe.Stats, netsim.UDPStats, cache stats, SN counters, module health)
// with one naming scheme and one snapshot path.
//
// Design constraints, in order:
//
//   - Hot-path observation is allocation-free and lock-free: counters and
//     gauges are single atomics, histograms are fixed-bucket atomic arrays.
//     Instrument handles are obtained once at setup time and then used like
//     plain atomic fields.
//   - Instruments are standalone values registered into one or more
//     registries, so a component (e.g. a UDP transport created before its
//     SN) can own its instruments and later expose them through the node's
//     registry via the Registrable interface.
//   - Snapshots read each instrument atomically. The consistency contract
//     is per-instrument, not cross-instrument: a snapshot taken while the
//     data path runs shows every individual value at some true instant,
//     but two instruments may be read at slightly different instants (e.g.
//     forwarded may momentarily exceed rx_packets by in-flight packets).
//     Histogram snapshots are per-bucket atomic; sum/count may lag the
//     buckets by in-flight observations.
//
// Naming scheme (see DESIGN.md "Observability"): instruments are named
// `layer_subsystem_metric[_total]` in snake_case — `pipe_tx_batches_total`,
// `sn_fastpath_hits_total`, `cache_evictions_total`. Monotonic counters end
// in `_total`; gauges and histograms do not. Per-entity instruments carry a
// Prometheus-style label block built with Name, e.g.
// `sn_module_handled_total{module="echo"}`.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates instrument behavior in snapshots and exposition.
type Kind uint8

const (
	// KindCounter is a monotonically increasing uint64.
	KindCounter Kind = iota
	// KindGauge is an instantaneous int64 (may go down).
	KindGauge
	// KindHistogram is a fixed-bucket distribution of uint64 observations.
	KindHistogram
)

// MarshalJSON renders the kind as its name, so control-plane metrics
// responses read "counter"/"gauge"/"histogram" rather than enum ordinals.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses the kind name (operator tooling round trip).
func (k *Kind) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"counter"`:
		*k = KindCounter
	case `"gauge"`:
		*k = KindGauge
	case `"histogram"`:
		*k = KindHistogram
	default:
		return fmt.Errorf("telemetry: unknown kind %s", b)
	}
	return nil
}

// String names the kind for snapshots and the text exposition.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind-%d", uint8(k))
	}
}

// Instrument is anything a Registry can hold: a name plus the ability to
// produce one atomically read Sample.
type Instrument interface {
	// InstrumentName returns the registered name (including any label
	// block).
	InstrumentName() string
	// Sample reads the instrument's current value. The read is atomic per
	// the package consistency contract.
	Sample() Sample
}

// Registrable is implemented by components that own instruments and can
// expose them through an externally supplied registry — e.g. a transport
// created before the SN that will serve its metrics. RegisterTelemetry may
// be called more than once with different registries; instruments are
// shared, not copied.
type Registrable interface {
	RegisterTelemetry(r *Registry)
}

// --- Counter -----------------------------------------------------------------

// Counter is a monotonically increasing counter. The zero value is not
// usable; create one with NewCounter or Registry.Counter.
type Counter struct {
	name string
	v    atomic.Uint64
}

// NewCounter creates a standalone (unregistered) counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// InstrumentName implements Instrument.
func (c *Counter) InstrumentName() string { return c.name }

// Sample implements Instrument (one atomic load).
func (c *Counter) Sample() Sample {
	return Sample{Name: c.name, Kind: KindCounter, Value: float64(c.v.Load())}
}

// --- StripedCounter ----------------------------------------------------------

// stripedCell pads each counter cell to its own cache line so stripes
// written from different cores never false-share.
type stripedCell struct {
	v atomic.Uint64
	_ [56]byte
}

// StripedCounter is a monotonic counter sharded across padded cells.
// Hot paths that increment one logical counter from many cores at once
// (e.g. per-resolve accounting in the lookup read path) pick a stripe —
// typically derived from the key they are working on — so concurrent
// increments land on different cache lines instead of contending on a
// single atomic. Sample and Load sum the cells.
type StripedCounter struct {
	name  string
	cells []stripedCell
	mask  int
}

// NewStripedCounter creates a standalone striped counter. stripes is
// rounded up to the next power of two (minimum 1) so stripe selection
// is a mask, not a modulo.
func NewStripedCounter(name string, stripes int) *StripedCounter {
	n := 1
	for n < stripes {
		n <<= 1
	}
	return &StripedCounter{name: name, cells: make([]stripedCell, n), mask: n - 1}
}

// Add increments the counter by n on the given stripe (reduced by mask,
// so any int is a valid stripe).
func (c *StripedCounter) Add(stripe int, n uint64) { c.cells[stripe&c.mask].v.Add(n) }

// Inc increments the counter by one on the given stripe.
func (c *StripedCounter) Inc(stripe int) { c.cells[stripe&c.mask].v.Add(1) }

// Load sums the stripes. Each cell is read atomically; the sum is
// monotonic across calls because every cell is.
func (c *StripedCounter) Load() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// InstrumentName implements Instrument.
func (c *StripedCounter) InstrumentName() string { return c.name }

// Sample implements Instrument (per-cell atomic reads, summed).
func (c *StripedCounter) Sample() Sample {
	return Sample{Name: c.name, Kind: KindCounter, Value: float64(c.Load())}
}

// --- Gauge -------------------------------------------------------------------

// Gauge is an instantaneous value that may go up or down.
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge creates a standalone (unregistered) gauge.
func NewGauge(name string) *Gauge { return &Gauge{name: name} }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// InstrumentName implements Instrument.
func (g *Gauge) InstrumentName() string { return g.name }

// Sample implements Instrument (one atomic load).
func (g *Gauge) Sample() Sample {
	return Sample{Name: g.name, Kind: KindGauge, Value: float64(g.v.Load())}
}

// --- Histogram ---------------------------------------------------------------

// Histogram is a fixed-bucket distribution of uint64 observations (latency
// in nanoseconds, batch sizes, ...). Bucket bounds are upper-inclusive and
// fixed at construction; observation is a linear scan over the bounds plus
// three atomic adds — no locks, no allocation.
type Histogram struct {
	name   string
	bounds []uint64 // sorted ascending; counts has len(bounds)+1 (overflow)
	counts []atomic.Uint64
	sum    atomic.Uint64
	count  atomic.Uint64
}

// LatencyBuckets is the default bound set for nanosecond latency
// histograms: 16 exponential buckets from 256ns to 8.4ms, then overflow.
var LatencyBuckets = expBuckets(256, 2, 16)

// BatchBuckets is the default bound set for batch-size histograms:
// 1, 2, 4, ..., 256, then overflow.
var BatchBuckets = expBuckets(1, 2, 9)

func expBuckets(start, factor uint64, n int) []uint64 {
	b := make([]uint64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// NewHistogram creates a standalone histogram with the given upper bounds
// (which must be sorted ascending and non-empty).
func NewHistogram(name string, bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be sorted ascending")
		}
	}
	return &Histogram{
		name:   name,
		bounds: append([]uint64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. Allocation-free and lock-free.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// InstrumentName implements Instrument.
func (h *Histogram) InstrumentName() string { return h.name }

// Sample implements Instrument. Buckets are read individually-atomically;
// sum and count may lag in-flight observations (per-instrument contract).
func (h *Histogram) Sample() Sample {
	hv := &HistogramView{
		Bounds: h.bounds, // immutable after construction
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		hv.Counts[i] = c
		total += c
	}
	// Derive Count from the buckets read so quantiles computed from the
	// view are internally consistent even mid-observation.
	hv.Count = total
	return Sample{Name: h.name, Kind: KindHistogram, Hist: hv}
}

// --- Func instruments --------------------------------------------------------

// funcInstrument adapts a read callback into an Instrument, for values that
// already live elsewhere (merged per-shard cache counters, queue depths,
// breaker states). The callback runs at snapshot time and must not call
// back into the registry it is registered in.
type funcInstrument struct {
	name string
	kind Kind
	fn   func() float64
}

func (f *funcInstrument) InstrumentName() string { return f.name }
func (f *funcInstrument) Sample() Sample {
	return Sample{Name: f.name, Kind: f.kind, Value: f.fn()}
}

// NewCounterFunc creates a lazily read counter-kind instrument backed by fn
// (which must return a monotonic value).
func NewCounterFunc(name string, fn func() uint64) Instrument {
	return &funcInstrument{name: name, kind: KindCounter, fn: func() float64 { return float64(fn()) }}
}

// NewGaugeFunc creates a lazily read gauge-kind instrument backed by fn.
func NewGaugeFunc(name string, fn func() int64) Instrument {
	return &funcInstrument{name: name, kind: KindGauge, fn: func() float64 { return float64(fn()) }}
}

// --- Naming ------------------------------------------------------------------

// Name builds a labeled instrument name: Name("x_total", "module", "echo")
// returns `x_total{module="echo"}`. Pairs are key, value, key, value...
// Label values are quoted with escaping per the Prometheus text format.
func Name(base string, labelPairs ...string) string {
	if len(labelPairs) == 0 {
		return base
	}
	if len(labelPairs)%2 != 0 {
		panic("telemetry: Name needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(labelPairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labelPairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labelPairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// splitName separates a (possibly labeled) instrument name into its base
// and label block: `a{b="c"}` → `a`, `{b="c"}`.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// --- Registry ----------------------------------------------------------------

// Registry is one node's instrument table. Registration takes a lock;
// observation through instrument handles never touches the registry.
type Registry struct {
	mu   sync.Mutex
	inst map[string]Instrument
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{inst: make(map[string]Instrument)}
}

// Register adds instruments to the registry. Registering the same
// instrument value again is a no-op; registering a different instrument
// under an already taken name returns an error (and registers the rest).
func (r *Registry) Register(insts ...Instrument) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var err error
	for _, in := range insts {
		name := in.InstrumentName()
		if prev, ok := r.inst[name]; ok {
			if prev != in && err == nil {
				err = fmt.Errorf("telemetry: instrument %q already registered", name)
			}
			continue
		}
		r.inst[name] = in
	}
	return err
}

// MustRegister is Register that panics on a name conflict (programmer
// error: two different instruments may not share a name).
func (r *Registry) MustRegister(insts ...Instrument) {
	if err := r.Register(insts...); err != nil {
		panic(err)
	}
}

// Counter returns the registered counter with the given name, creating and
// registering it if absent. Panics if the name is taken by a non-counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.inst[name]; ok {
		c, ok := in.(*Counter)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q is not a counter", name))
		}
		return c
	}
	c := NewCounter(name)
	r.inst[name] = c
	return c
}

// Gauge returns the registered gauge with the given name, creating and
// registering it if absent. Panics if the name is taken by a non-gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.inst[name]; ok {
		g, ok := in.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q is not a gauge", name))
		}
		return g
	}
	g := NewGauge(name)
	r.inst[name] = g
	return g
}

// Histogram returns the registered histogram with the given name, creating
// and registering one with the given bounds if absent. Panics if the name
// is taken by a non-histogram.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.inst[name]; ok {
		h, ok := in.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q is not a histogram", name))
		}
		return h
	}
	h := NewHistogram(name, bounds)
	r.inst[name] = h
	return h
}

// Snapshot reads every registered instrument, each atomically, and returns
// the samples sorted by name. The callback-backed instruments run outside
// the registry lock, so collectors may take their own locks but must not
// touch this registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	insts := make([]Instrument, 0, len(r.inst))
	for _, in := range r.inst {
		insts = append(insts, in)
	}
	r.mu.Unlock()
	out := make(Snapshot, 0, len(insts))
	for _, in := range insts {
		out = append(out, in.Sample())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
