package telemetry

import (
	"fmt"

	"interedge/internal/wire"
)

// TracePoint identifies where in the packet path a trace event fired.
type TracePoint uint8

const (
	// TraceRx: a decrypted packet entered the pipe-terminus.
	TraceRx TracePoint = iota
	// TraceFastPath: the packet hit the decision cache.
	TraceFastPath
	// TraceSlowPath: the packet was queued to a service module.
	TraceSlowPath
	// TraceForward: one copy of the packet was forwarded to Dst.
	TraceForward
	// TraceDeliver: the packet was handed to local delivery.
	TraceDeliver
	// TraceDrop: the packet was dropped (cached drop rule, no module, or
	// full slow-path queue).
	TraceDrop
)

// String names the trace point for logs.
func (p TracePoint) String() string {
	switch p {
	case TraceRx:
		return "rx"
	case TraceFastPath:
		return "fastpath"
	case TraceSlowPath:
		return "slowpath"
	case TraceForward:
		return "forward"
	case TraceDeliver:
		return "deliver"
	case TraceDrop:
		return "drop"
	default:
		return fmt.Sprintf("point-%d", uint8(p))
	}
}

// PacketTrace describes one packet observation at one trace point. It is
// all value fields — no slices — so hooks may retain it freely; the packet
// buffers themselves are never exposed.
type PacketTrace struct {
	Point   TracePoint
	Src     wire.Addr
	Dst     wire.Addr // set on TraceForward; zero elsewhere
	Service wire.ServiceID
	Conn    wire.ConnectionID
	Bytes   int // payload length
}

// TraceHook receives per-packet trace events from the pipe-terminus. Hooks
// run inline on the data path (possibly concurrently from several rx
// workers), so they must be fast, non-blocking, and allocation-conscious;
// a hook that needs to do real work should sample or hand off through a
// lossy channel. A nil hook costs one predictable branch per trace point.
type TraceHook func(ev PacketTrace)
