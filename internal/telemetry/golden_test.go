package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/exposition.golden from current output")

// TestWritePromGolden pins the Prometheus text exposition byte-for-byte
// against a checked-in golden file. Scrapers, dashboards, and the soak
// registry dumps all parse this format; an accidental change to HELP/TYPE
// lines, label merging, escaping, or bucket rendering must fail loudly
// here rather than silently break downstream consumers.
//
// Regenerate deliberately with:
//
//	go test ./internal/telemetry/ -run WritePromGolden -update-golden
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()

	c := NewCounter("sn_rx_packets_total")
	c.Add(12345)
	labeled := NewCounter(Name("sn_module_handled_total", "module", "echo"))
	labeled.Add(77)
	escaped := NewCounter(Name("sn_module_handled_total", "module", `we"ird\label`+"\n"))
	escaped.Add(3)
	g := NewGauge("transport_rx_queue_depth")
	g.Set(-4)
	h := NewHistogram("sn_fastpath_service_ns", []uint64{100, 1000, 10000})
	for _, v := range []uint64{50, 50, 500, 5000, 50000} {
		h.Observe(v)
	}
	fn := NewGaugeFunc("pipe_open_pipes", func() int64 { return 2 })
	r.MustRegister(c, labeled, escaped, g, h, fn)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteProm(&buf, "node", "ed0/sn0"); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition format drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
