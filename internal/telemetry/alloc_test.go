package telemetry

import "testing"

// Observation through instrument handles is the telemetry hot path: it
// rides inside the pipe-terminus per-packet budget, so it must never
// allocate. These pins are part of the check.sh gate alongside the
// fast-path allocs/op benchmark assertion.

func TestCounterObserveZeroAlloc(t *testing.T) {
	c := NewCounter("c_total")
	if allocs := testing.AllocsPerRun(1000, func() { c.Add(1) }); allocs != 0 {
		t.Fatalf("Counter.Add allocates %.1f/op, want 0", allocs)
	}
}

func TestGaugeObserveZeroAlloc(t *testing.T) {
	g := NewGauge("g")
	if allocs := testing.AllocsPerRun(1000, func() { g.Set(3); g.Add(-1) }); allocs != 0 {
		t.Fatalf("Gauge observe allocates %.1f/op, want 0", allocs)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewHistogram("h_ns", LatencyBuckets)
	var v uint64
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 997
	}); allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op, want 0", allocs)
	}
}
