package tpm

import (
	"testing"
)

func TestQuoteRoundTrip(t *testing.T) {
	tp, err := New()
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("verifier-nonce")
	q := tp.Quote(nonce)
	if err := VerifyQuote(tp.EndorsementKey(), q, nonce); err != nil {
		t.Fatal(err)
	}
}

func TestQuoteWrongNonce(t *testing.T) {
	tp, _ := New()
	q := tp.Quote([]byte("a"))
	if err := VerifyQuote(tp.EndorsementKey(), q, []byte("b")); err != ErrBadQuote {
		t.Fatalf("err = %v, want ErrBadQuote", err)
	}
}

func TestQuoteWrongKey(t *testing.T) {
	tp1, _ := New()
	tp2, _ := New()
	q := tp1.Quote([]byte("n"))
	if err := VerifyQuote(tp2.EndorsementKey(), q, []byte("n")); err != ErrBadQuote {
		t.Fatalf("err = %v, want ErrBadQuote", err)
	}
}

func TestExtendChangesPCRAndQuote(t *testing.T) {
	tp, _ := New()
	before, err := tp.PCR(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Extend(0, []byte("measurement")); err != nil {
		t.Fatal(err)
	}
	after, _ := tp.PCR(0)
	if before == after {
		t.Fatal("Extend did not change PCR")
	}
	// Extends are order-sensitive.
	tpA, _ := New()
	tpB, _ := New()
	tpA.Extend(1, []byte("x"))
	tpA.Extend(1, []byte("y"))
	tpB.Extend(1, []byte("y"))
	tpB.Extend(1, []byte("x"))
	a, _ := tpA.PCR(1)
	b, _ := tpB.PCR(1)
	if a == b {
		t.Fatal("PCR extension not order-sensitive")
	}
}

func TestExtendSameInputsDeterministic(t *testing.T) {
	tpA, _ := New()
	tpB, _ := New()
	for _, m := range [][]byte{[]byte("m1"), []byte("m2")} {
		tpA.Extend(2, m)
		tpB.Extend(2, m)
	}
	a, _ := tpA.PCR(2)
	b, _ := tpB.PCR(2)
	if a != b {
		t.Fatal("same extensions produced different PCRs")
	}
}

func TestPCRIndexValidation(t *testing.T) {
	tp, _ := New()
	if err := tp.Extend(-1, nil); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := tp.Extend(NumPCRs, nil); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := tp.PCR(NumPCRs); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestTamperedQuoteRejected(t *testing.T) {
	tp, _ := New()
	q := tp.Quote([]byte("n"))
	q.PCRs[3][0] ^= 1
	if err := VerifyQuote(tp.EndorsementKey(), q, []byte("n")); err != ErrBadQuote {
		t.Fatalf("err = %v, want ErrBadQuote", err)
	}
}
