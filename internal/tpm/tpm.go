// Package tpm simulates the trusted platform module the paper assumes every
// SN carries ("We assume that SNs have TPMs that can be used for
// attestation", §3.1). It models the subset the InterEdge needs: an
// endorsement identity, PCR-style measurement registers, and signed quotes
// binding measurements to a verifier-chosen nonce.
package tpm

import (
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"interedge/internal/cryptutil"
)

// NumPCRs is the number of platform configuration registers.
const NumPCRs = 8

// TPM is one node's simulated TPM.
type TPM struct {
	mu   sync.Mutex
	ek   cryptutil.SigningKeypair
	pcrs [NumPCRs][sha256.Size]byte
}

// New creates a TPM with a fresh endorsement key and zeroed PCRs.
func New() (*TPM, error) {
	ek, err := cryptutil.NewSigningKeypair()
	if err != nil {
		return nil, fmt.Errorf("tpm: endorsement key: %w", err)
	}
	return &TPM{ek: ek}, nil
}

// EndorsementKey returns the TPM's public endorsement key.
func (t *TPM) EndorsementKey() ed25519.PublicKey { return t.ek.Public }

// Extend folds data into PCR idx: pcr = SHA-256(pcr ‖ SHA-256(data)).
func (t *TPM) Extend(idx int, data []byte) error {
	if idx < 0 || idx >= NumPCRs {
		return fmt.Errorf("tpm: PCR index %d out of range", idx)
	}
	digest := sha256.Sum256(data)
	t.mu.Lock()
	defer t.mu.Unlock()
	h := sha256.New()
	h.Write(t.pcrs[idx][:])
	h.Write(digest[:])
	copy(t.pcrs[idx][:], h.Sum(nil))
	return nil
}

// PCR returns the current value of a register.
func (t *TPM) PCR(idx int) ([sha256.Size]byte, error) {
	if idx < 0 || idx >= NumPCRs {
		return [sha256.Size]byte{}, fmt.Errorf("tpm: PCR index %d out of range", idx)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pcrs[idx], nil
}

// Quote is a signed snapshot of all PCRs bound to a verifier nonce.
type Quote struct {
	PCRs  [NumPCRs][sha256.Size]byte
	Nonce []byte
	Sig   []byte
}

func quoteDigest(pcrs [NumPCRs][sha256.Size]byte, nonce []byte) []byte {
	h := sha256.New()
	h.Write([]byte("interedge-tpm-quote"))
	for i := range pcrs {
		h.Write(pcrs[i][:])
	}
	h.Write(nonce)
	return h.Sum(nil)
}

// Quote produces a signed quote over the current PCR values and nonce.
func (t *TPM) Quote(nonce []byte) Quote {
	t.mu.Lock()
	pcrs := t.pcrs
	t.mu.Unlock()
	return Quote{
		PCRs:  pcrs,
		Nonce: append([]byte(nil), nonce...),
		Sig:   t.ek.Sign(quoteDigest(pcrs, nonce)),
	}
}

// ErrBadQuote is returned when quote verification fails.
var ErrBadQuote = errors.New("tpm: quote verification failed")

// VerifyQuote checks a quote's signature against the claimed endorsement
// key and the verifier's nonce.
func VerifyQuote(ek ed25519.PublicKey, q Quote, nonce []byte) error {
	if string(q.Nonce) != string(nonce) {
		return ErrBadQuote
	}
	if !cryptutil.Verify(ek, quoteDigest(q.PCRs, q.Nonce), q.Sig) {
		return ErrBadQuote
	}
	return nil
}
