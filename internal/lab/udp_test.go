package lab

import (
	"testing"
	"time"

	"interedge/internal/handshake"
	"interedge/internal/host"
	"interedge/internal/netsim"
	"interedge/internal/services/echo"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// The same node code that runs on the in-process fabric runs over real
// UDP sockets: an SN and a host on loopback, full ILP stack.
func TestUDPTransportDeployment(t *testing.T) {
	dir := netsim.NewUDPDirectory()

	snAddr := wire.MustAddr("fd00::100")
	snTr, err := netsim.NewUDPTransport(snAddr, "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	snID, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	node, err := sn.New(sn.Config{Transport: snTr, Identity: snID})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Register(echo.New()); err != nil {
		t.Fatal(err)
	}

	hostAddr := wire.MustAddr("fd00::1")
	hostTr, err := netsim.NewUDPTransport(hostAddr, "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	hostID, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	h, err := host.New(host.Config{Transport: hostTr, Identity: hostID})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	if err := h.Associate(snAddr); err != nil {
		t.Fatalf("associate over UDP: %v", err)
	}
	conn, err := h.NewConn(wire.SvcEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		if err := conn.Send(nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		select {
		case msg := <-conn.Receive():
			if len(msg.Payload) != 1 || msg.Payload[0] != byte(i) {
				t.Fatalf("payload %v", msg.Payload)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("echo %d over UDP timed out", i)
		}
	}
}

// §3.2's optimization: with direct-connect enabled, inter-edomain transit
// goes straight to the destination SN, skipping the gateway pipes.
func TestDirectConnectOptimizationEndToEnd(t *testing.T) {
	topo := New()
	defer topo.Close()
	setup := func(node *sn.SN, ed *Edomain) error {
		return node.Register(echo.New())
	}
	edA, err := topo.AddEdomain("ed-a", 2, setup)
	if err != nil {
		t.Fatal(err)
	}
	edB, err := topo.AddEdomain("ed-b", 2, setup)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	topo.Fabric.SetDirectConnect(true)

	// Non-gateway SN in ed-a routes transit straight to the non-gateway
	// destination SN in ed-b.
	src := edA.SNs[1]
	dst := edB.SNs[1]
	next, err := topo.Fabric.NextHop(src.Addr(), dst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if next != dst.Addr() {
		t.Fatalf("direct-connect next hop %s, want %s", next, dst.Addr())
	}
	// And the pipe comes up on demand.
	if err := src.Connect(dst.Addr()); err != nil {
		t.Fatal(err)
	}
	if !src.Pipes().HasPeer(dst.Addr()) {
		t.Fatal("on-demand direct pipe not established")
	}
	// Gateways saw none of this.
	if edA.Gateway().Counters().RxPackets != 0 {
		t.Fatal("gateway carried traffic despite direct connect")
	}
}
