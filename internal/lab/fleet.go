package lab

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"interedge/internal/edomain"
	"interedge/internal/handshake"
	"interedge/internal/host"
	"interedge/internal/netsim"
	"interedge/internal/pipe"
	"interedge/internal/sn"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// FleetConfig sizes a weightless host fleet: one edomain of SNs whose
// hosts are all engine-backed lite hosts sharing a single pipe.Engine and
// a single netsim.Mux. The goroutine count of the finished fleet is
// O(SNs + engine workers + placement controller), independent of Hosts.
type FleetConfig struct {
	// ID names the fleet's edomain (default "fleet").
	ID edomain.ID
	// SNs and Hosts size the fleet. Both required.
	SNs   int
	Hosts int
	// EngineWorkers is the shared engine's RX fan-out width (default
	// max(4, GOMAXPROCS)). The floor matters: the engine's workers are the
	// only consumers of the fleet's one shared receive queue, and under Go's
	// fair scheduling a single worker competing with hundreds of SN worker
	// goroutines is starved into queue overflow.
	EngineWorkers int
	// MuxQueueDepth is the shared host-side receive queue (default 65536:
	// one queue absorbs bursts for the entire fleet).
	MuxQueueDepth int
	// Parallelism bounds the host build/adopt worker pool (default
	// min(64, 4*GOMAXPROCS)). Each adoption performs a real handshake.
	Parallelism int
	// HandshakeTimeout/HandshakeRetries tune the engine's dialer
	// (defaults 2s / 8 — adoption storms share SN slow-path capacity).
	HandshakeTimeout time.Duration
	HandshakeRetries int
	// HostConfig edits host i's config before creation — the load
	// generator installs its FastHandler here.
	HostConfig func(i int, cfg *host.Config)
	// RegisterSN installs each service node's modules. Required: the lab
	// package cannot import service modules (their tests import lab), so
	// the caller supplies the registration — typically ipfwd over
	// t.NewNodeResolver(ed, node). It runs once per SN, after the whole
	// adoption wave (see NewFleet).
	RegisterSN func(t *Topology, ed *Edomain, node *sn.SN) error
	// EngineTelemetry receives the shared engine's instruments (default: a
	// fresh registry, reachable as Fleet.EngineReg).
	EngineTelemetry *telemetry.Registry
}

// Fleet is a built weightless fleet: the edomain and its placement
// controller, the shared engine/mux pair, and every lite host in index
// order (host i's load partner convention is up to the driver).
type Fleet struct {
	Topo      *Topology
	Ed        *Edomain
	Place     *Placement
	Engine    *pipe.Engine
	Mux       *netsim.Mux
	EngineReg *telemetry.Registry
	Hosts     []*host.Host
}

// NewFleet stands up a weightless host fleet inside the topology: an
// edomain of cfg.SNs meshed service nodes running whatever modules
// cfg.RegisterSN installs, plus cfg.Hosts engine-backed lite hosts,
// each adopted under ring placement with a real handshake to its ring
// owner and a published lookup record.
//
// Build order matters for scale: SN-tier resolution caches watch the
// global lookup service, so they are registered after the adoption wave —
// otherwise every one of the Hosts publishes fans out to every SN's
// cache during the build. Hosts are built by a bounded worker pool;
// everything each worker touches (allocator-reserved address, mux port
// table, engine endpoint table, fabric, placement, lookup service) is
// safe for concurrent use.
//
// The fleet tears down with the topology: one closer shuts the shared
// engine (and through it the mux); per-host Close is never used, which
// keeps teardown O(SNs + endpoints) instead of O(Hosts * pipes).
func (t *Topology) NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.SNs < 1 || cfg.Hosts < 1 {
		return nil, fmt.Errorf("lab: fleet needs SNs >= 1 and Hosts >= 1 (got %d, %d)", cfg.SNs, cfg.Hosts)
	}
	if cfg.RegisterSN == nil {
		return nil, fmt.Errorf("lab: FleetConfig.RegisterSN is required")
	}
	if cfg.ID == "" {
		cfg.ID = "fleet"
	}
	if cfg.MuxQueueDepth == 0 {
		cfg.MuxQueueDepth = 65536
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 4 * runtime.GOMAXPROCS(0)
		if cfg.Parallelism > 64 {
			cfg.Parallelism = 64
		}
	}
	if cfg.EngineWorkers == 0 {
		cfg.EngineWorkers = runtime.GOMAXPROCS(0)
		if cfg.EngineWorkers < 4 {
			cfg.EngineWorkers = 4
		}
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 2 * time.Second
	}
	if cfg.HandshakeRetries == 0 {
		cfg.HandshakeRetries = 8
	}
	if cfg.EngineTelemetry == nil {
		cfg.EngineTelemetry = telemetry.NewRegistry()
	}

	ed, err := t.AddEdomain(cfg.ID, cfg.SNs, nil)
	if err != nil {
		return nil, err
	}
	if err := t.Mesh(); err != nil {
		return nil, fmt.Errorf("lab: fleet mesh: %w", err)
	}
	place := t.NewPlacement(ed)

	mux := t.Net.NewMux(cfg.MuxQueueDepth)
	eng, err := pipe.NewEngine(pipe.EngineConfig{
		Transport:        mux,
		Clock:            t.Clock,
		HandshakeTimeout: cfg.HandshakeTimeout,
		HandshakeRetries: cfg.HandshakeRetries,
		RxWorkers:        cfg.EngineWorkers,
		Telemetry:        cfg.EngineTelemetry,
	})
	if err != nil {
		return nil, err
	}
	t.closers = append(t.closers, eng.Close)

	f := &Fleet{
		Topo:      t,
		Ed:        ed,
		Place:     place,
		Engine:    eng,
		Mux:       mux,
		EngineReg: cfg.EngineTelemetry,
		Hosts:     make([]*host.Host, cfg.Hosts),
	}

	// Reserve every address up front: the allocator is not safe for
	// concurrent use, and deterministic addresses keep placement stable
	// run to run.
	addrs := make([]wire.Addr, cfg.Hosts)
	for i := range addrs {
		addrs[i] = t.alloc.Next()
	}

	var (
		wg       sync.WaitGroup
		failed   atomic.Bool
		errOnce  sync.Once
		buildErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { buildErr = err })
		failed.Store(true)
	}
	next := atomic.Int64{}
	workers := cfg.Parallelism
	if workers > cfg.Hosts {
		workers = cfg.Hosts
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Hosts || failed.Load() {
					return
				}
				h, err := f.buildHost(cfg, i, addrs[i])
				if err != nil {
					fail(fmt.Errorf("lab: fleet host %d: %w", i, err))
					return
				}
				f.Hosts[i] = h
			}
		}()
	}
	wg.Wait()
	if buildErr != nil {
		return nil, buildErr
	}

	// SN modules last: node resolvers watch the global service, so
	// registering them after the adoption wave keeps the build free of
	// Hosts x SNs watch fan-out.
	for _, node := range ed.SNs {
		if err := cfg.RegisterSN(t, ed, node); err != nil {
			return nil, fmt.Errorf("lab: fleet module on %s: %w", node.Addr(), err)
		}
	}
	return f, nil
}

// buildHost creates, registers, and adopts one lite host.
func (f *Fleet) buildHost(cfg FleetConfig, i int, addr wire.Addr) (*host.Host, error) {
	if err := f.Mux.AddPort(addr); err != nil {
		return nil, err
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		return nil, err
	}
	hc := host.Config{Addr: addr, Identity: id, Clock: f.Topo.Clock}
	if cfg.HostConfig != nil {
		cfg.HostConfig(i, &hc)
	}
	h, err := host.NewOnEngine(f.Engine, hc)
	if err != nil {
		return nil, err
	}
	if err := f.Topo.Fabric.RegisterAddr(f.Ed.ID, addr); err != nil {
		return nil, err
	}
	if _, err := f.Place.AdoptHost(h); err != nil {
		return nil, err
	}
	return h, nil
}
