package lab

import (
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/services/echo"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// placementRig builds a numSNs-SN edomain running echo on every node, with
// its placement controller and n ring-placed hosts.
func placementRig(t *testing.T, topo *Topology, numSNs, n int) (*Edomain, *Placement, []*host.Host) {
	t.Helper()
	ed, err := topo.AddEdomain("ed-ring", numSNs, func(node *sn.SN, ed *Edomain) error {
		return node.Register(echo.New())
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	p := topo.NewPlacement(ed)
	hosts := make([]*host.Host, n)
	for i := range hosts {
		h, err := topo.NewPlacedHost(p)
		if err != nil {
			t.Fatal(err)
		}
		hosts[i] = h
	}
	return ed, p, hosts
}

// hostsOn returns the adopted hosts currently placed on snAddr.
func hostsOn(p *Placement, hosts []*host.Host, snAddr wire.Addr) []*host.Host {
	var out []*host.Host
	for _, h := range hosts {
		if on, ok := p.PlacedOn(h.Addr()); ok && on == snAddr {
			out = append(out, h)
		}
	}
	return out
}

// echoRoundTrip sends one payload on the connection and waits for the echo.
func echoRoundTrip(t *testing.T, conn *host.Conn, payload string) {
	t.Helper()
	if err := conn.Send(nil, []byte(payload)); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-conn.Receive():
		if string(msg.Payload) != payload {
			t.Fatalf("echo %q, want %q", msg.Payload, payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatalf("timeout awaiting echo of %q", payload)
	}
}

// TestPlacementDrainMovesHostsLive drains one SN of a 4-SN edomain and
// checks the whole contract: hosts move to ring successors by live
// handoff (pipes survive, no re-handshake), lookup records repoint
// immediately, and reactivation migrates hosts back.
func TestPlacementDrainMovesHostsLive(t *testing.T) {
	topo := New()
	defer topo.Close()
	_, p, hosts := placementRig(t, topo, 4, 8)

	// Find a victim SN actually serving hosts.
	var victim wire.Addr
	for _, h := range hosts {
		if on, ok := p.PlacedOn(h.Addr()); ok {
			victim = on
			break
		}
	}
	affected := hostsOn(p, hosts, victim)
	if len(affected) == 0 {
		t.Fatal("no hosts on victim SN")
	}
	// Warm a connection through the victim so the drain moves live state.
	conn, err := affected[0].NewConn(wire.SvcEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	echoRoundTrip(t, conn, "before")

	if err := p.DrainSN(victim); err != nil {
		t.Fatalf("DrainSN: %v", err)
	}

	for _, h := range affected {
		on, ok := p.PlacedOn(h.Addr())
		if !ok || on == victim {
			t.Fatalf("host %s still placed on drained SN", h.Addr())
		}
		// The published mapping must already point at the successor.
		rec, err := topo.Global.ResolveAddress(h.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.SNs) != 1 || rec.SNs[0] != on {
			t.Fatalf("lookup record for %s points at %v, want [%s]", h.Addr(), rec.SNs, on)
		}
	}
	// The handed-off pipes arrive at their importers asynchronously (the
	// sealed state is in flight when DrainSN returns): poll the counters.
	ed, _ := topo.Edomain("ed-ring")
	deadline := time.Now().Add(3 * time.Second)
	for {
		var handoffs uint64
		for _, node := range ed.SNs {
			handoffs += node.Telemetry().Counter("sn_handoff_pipes_total").Load()
		}
		if handoffs >= uint64(len(affected)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sn_handoff_pipes_total = %d, want >= %d", handoffs, len(affected))
		}
		time.Sleep(5 * time.Millisecond)
	}
	victimNode, err := topo.snByAddr(victim)
	if err != nil {
		t.Fatal(err)
	}
	if got := victimNode.Telemetry().Counter("sn_drain_completed_total").Load(); got != 1 {
		t.Fatalf("sn_drain_completed_total = %d, want 1", got)
	}

	// The host's pinned connection kept working across the move — it now
	// rides the rebound pipe through the successor.
	deadline = time.Now().Add(3 * time.Second)
	for {
		if via := conn.Via(); via != victim {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection never repointed off the drained SN")
		}
		time.Sleep(5 * time.Millisecond)
	}
	echoRoundTrip(t, conn, "after-drain")

	// Reactivation returns the ring to its old shape; the same hosts
	// migrate back by live handoff (the watch-driven sweep).
	if err := p.Reactivate(victim); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(3 * time.Second)
	for {
		if len(hostsOn(p, hosts, victim)) == len(affected) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hosts did not return after reactivation: %d/%d", len(hostsOn(p, hosts, victim)), len(affected))
		}
		time.Sleep(5 * time.Millisecond)
	}
	echoRoundTrip(t, conn, "after-reactivate")
}

// TestPlacementFailoverSurvivesSNLoss kills an SN without warning: sibling
// dead-peer detection reports the loss as a ring change, hosts re-place
// onto successors by full re-establishment, and the failover counter
// records the absorption.
func TestPlacementFailoverSurvivesSNLoss(t *testing.T) {
	topo := New(WithSNConfig(func(c *sn.Config) {
		c.KeepaliveInterval = 20 * time.Millisecond
		c.HandshakeTimeout = 100 * time.Millisecond
		c.HandshakeRetries = 2
	}))
	defer topo.Close()
	ed, p, hosts := placementRig(t, topo, 4, 8)

	var victim wire.Addr
	for _, h := range hosts {
		if on, ok := p.PlacedOn(h.Addr()); ok {
			victim = on
			break
		}
	}
	affected := hostsOn(p, hosts, victim)
	if len(affected) == 0 {
		t.Fatal("no hosts on victim SN")
	}
	victimNode, err := topo.snByAddr(victim)
	if err != nil {
		t.Fatal(err)
	}
	ringBefore := ed.Core.RingChanges()

	// Unannounced death: no drain, no goodbye.
	if err := victimNode.Close(); err != nil {
		t.Fatal(err)
	}

	// Sibling keepalives detect the corpse and feed the ring; the sweep
	// re-places every affected host by full re-establishment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(hostsOn(p, hosts, victim)) == 0 {
			allMoved := true
			for _, h := range affected {
				fh, err := h.FirstHop()
				if err != nil || fh == victim {
					allMoved = false
					break
				}
			}
			if allMoved {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("hosts still on dead SN after 5s: %d", len(hostsOn(p, hosts, victim)))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := ed.Core.RingChanges(); got <= ringBefore {
		t.Fatalf("ring changes %d, want > %d", got, ringBefore)
	}
	var failovers uint64
	for _, node := range ed.SNs {
		if node.Addr() == victim {
			continue
		}
		failovers += node.Telemetry().Counter("sn_failovers_total").Load()
	}
	if failovers < uint64(len(affected)) {
		t.Fatalf("sn_failovers_total = %d, want >= %d", failovers, len(affected))
	}

	// New mapping is live: a fresh connection from a failed-over host
	// round-trips through its successor.
	conn, err := affected[0].NewConn(wire.SvcEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	echoRoundTrip(t, conn, "after-failover")
}

// TestPlacementDownReaddRebalances covers the Down -> Active re-add cycle
// as pure ring arithmetic: an SN reported dead sheds every host to ring
// successors by failover, and re-adding it pulls its ring share back, with
// placement converged to the ring (no orphans, no double placement) and
// the balance gauge restored on the gateway registry.
func TestPlacementDownReaddRebalances(t *testing.T) {
	topo := New()
	defer topo.Close()
	ed, p, hosts := placementRig(t, topo, 5, 20)

	converged := func() bool {
		for _, h := range hosts {
			on, ok := p.PlacedOn(h.Addr())
			if !ok {
				return false
			}
			want, ok := ed.Core.PlaceHost(h.Addr())
			if !ok || on != want {
				return false
			}
		}
		return true
	}
	waitConverged := func(step string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !converged() {
			if time.Now().After(deadline) {
				t.Fatalf("%s: placement never converged to the ring", step)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	var victim wire.Addr
	for _, h := range hosts {
		if on, ok := p.PlacedOn(h.Addr()); ok {
			victim = on
			break
		}
	}
	before := hostsOn(p, hosts, victim)
	if len(before) == 0 {
		t.Fatal("no hosts on victim SN")
	}

	// Unannounced death report (the node itself stays up — this is the
	// ring's view, as sibling dead-peer detection would feed it).
	p.ReportDown(victim)
	waitConverged("after down")
	if n := len(hostsOn(p, hosts, victim)); n != 0 {
		t.Fatalf("%d hosts still placed on down SN", n)
	}

	// Re-add: the recovered SN rejoins placement and reclaims exactly its
	// ring share — the same hosts it owned before, since ring ownership is
	// deterministic in (ring members, host address).
	if err := p.Reactivate(victim); err != nil {
		t.Fatal(err)
	}
	waitConverged("after re-add")
	after := hostsOn(p, hosts, victim)
	if len(after) != len(before) {
		t.Fatalf("recovered SN serves %d hosts, want its ring share %d", len(after), len(before))
	}

	// No orphans, no double placement: every host is placed exactly once
	// and its published lookup record points at that SN.
	seen := make(map[wire.Addr]wire.Addr)
	for _, h := range hosts {
		on, ok := p.PlacedOn(h.Addr())
		if !ok {
			t.Fatalf("host %s orphaned after re-add", h.Addr())
		}
		if prev, dup := seen[h.Addr()]; dup {
			t.Fatalf("host %s placed twice: %s and %s", h.Addr(), prev, on)
		}
		seen[h.Addr()] = on
		rec, err := topo.Global.ResolveAddress(h.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.SNs) != 1 || rec.SNs[0] != on {
			t.Fatalf("lookup record for %s points at %v, placed on %s", h.Addr(), rec.SNs, on)
		}
	}

	// The balance gauge on the gateway registry reflects the restored
	// spread; 20 hosts on a 5-SN ring never legitimately reads as one SN
	// carrying 3x the mean.
	snap := ed.Gateway().Telemetry().Snapshot()
	if _, ok := snap.Get("edomain_placement_balance_x1000"); !ok {
		t.Fatal("edomain_placement_balance_x1000 missing from gateway registry")
	}
	if bal := snap.Value("edomain_placement_balance_x1000"); bal < 1000 || bal > 3000 {
		t.Fatalf("edomain_placement_balance_x1000 = %v, want within [1000, 3000]", bal)
	}
}

// TestRingChangePropagatesBeforeLeaseExpiry is the regression for the
// stale-mapping window: an SN-tier resolution cache that resolved a host
// must serve the post-ring-change mapping within one publish, not after
// its (30s-default) lease expires.
func TestRingChangePropagatesBeforeLeaseExpiry(t *testing.T) {
	topo := New()
	defer topo.Close()
	ed, p, hosts := placementRig(t, topo, 2, 4)

	h := hosts[0]
	before, ok := p.PlacedOn(h.Addr())
	if !ok {
		t.Fatal("host not placed")
	}
	// The SN-tier cache lives on the survivor.
	var survivor *sn.SN
	for _, node := range ed.SNs {
		if node.Addr() != before {
			survivor = node
		}
	}
	rc := topo.NewNodeResolver(ed, survivor)
	rec, err := rc.ResolveAddress(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.SNs) != 1 || rec.SNs[0] != before {
		t.Fatalf("cached mapping %v, want [%s]", rec.SNs, before)
	}

	if err := p.DrainSN(before); err != nil {
		t.Fatal(err)
	}
	after, _ := p.PlacedOn(h.Addr())
	if after == before {
		t.Fatal("drain did not move the host")
	}

	// Well inside the lease: the watch-applied update must already serve.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec, err := rc.ResolveAddress(h.Addr())
		if err == nil && len(rec.SNs) == 1 && rec.SNs[0] == after {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SN-tier cache still serves %v, want [%s] — stale until lease expiry", rec.SNs, after)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
