package lab

import (
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/lookup"
	"interedge/internal/services/echo"
	"interedge/internal/services/ipfwd"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// TestFigure1Topology reproduces Figure 1 as executable structure: client
// hosts with ILP host stacks and pipes to their first-hop SNs, SN-to-SN
// pipes, a pass-through SN imposing an operator service, and a server
// host behind its own SN — then passes traffic end to end through every
// component.
func TestFigure1Topology(t *testing.T) {
	topo := New()
	defer topo.Close()

	// Two edomains: the client side and the server side.
	setup := func(node *sn.SN, ed *Edomain) error {
		return node.Register(ipfwd.New(topo.Global, topo.Fabric))
	}
	edClient, err := topo.AddEdomain("ed-client", 2, setup)
	if err != nil {
		t.Fatal(err)
	}
	edServer, err := topo.AddEdomain("ed-server", 1, setup)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}

	// Client hosts (Figure 1 shows two apps on a client host; two conns
	// model that) and the server host.
	client, err := topo.NewHost(edClient, 1)
	if err != nil {
		t.Fatal(err)
	}
	server, err := topo.NewHost(edServer, 0)
	if err != nil {
		t.Fatal(err)
	}

	inbox := make(chan host.Message, 16)
	server.OnService(wire.SvcIPFwd, func(msg host.Message) { inbox <- msg })

	// App A and App B each open their own connection over the same host
	// stack and pipes.
	for _, app := range []string{"app-a", "app-b"} {
		conn, err := client.NewConn(wire.SvcIPFwd)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := conn.Send(ipfwd.DestData(server.Addr()), []byte(app)); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for len(seen) < 2 {
		select {
		case msg := <-inbox:
			seen[string(msg.Payload)] = true
		case <-time.After(3 * time.Second):
			t.Fatalf("missing app traffic; got %v", seen)
		}
	}

	// The path crossed both edomains via gateway pipes: the client-side
	// gateway carries transit traffic.
	gwCounters := edClient.Gateway().Counters()
	if gwCounters.RxPackets == 0 {
		t.Fatal("client-edomain gateway saw no traffic")
	}
	if !topo.Fabric.MeshComplete() {
		t.Fatal("mesh incomplete")
	}
	_ = edServer
}

// TestPassThroughSNChain models §3.2's operator-imposed services: an
// enterprise pass-through SN terminates ILP, applies its service, and
// forwards to the next-hop SN where client-invoked services run.
func TestPassThroughSNChain(t *testing.T) {
	topo := New()
	defer topo.Close()

	ed, err := topo.AddEdomain("ed-a", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// SN 0: enterprise pass-through imposing a relabeling "firewall"; SN 1:
	// the client-chosen SN running echo.
	if err := ed.SNs[1].Register(echo.New()); err != nil {
		t.Fatal(err)
	}
	passThrough := &relabelModule{next: ed.SNs[1].Addr()}
	if err := ed.SNs[0].Register(passThrough); err != nil {
		t.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	client, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := client.NewConn(wire.SvcEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(nil, []byte("through the chain")); err != nil {
		t.Fatal(err)
	}
	// The echo reply comes back via SN 1 (which replies to its requester,
	// the pass-through SN) and then the pass-through returns it.
	select {
	case msg := <-conn.Receive():
		if string(msg.Payload) != "through the chain" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no reply through pass-through chain")
	}
}

// relabelModule forwards echo-service packets to the next-hop SN and
// returns replies to the original client — a minimal operator-imposed
// pass-through.
type relabelModule struct {
	next    wire.Addr
	pending map[wire.ConnectionID]wire.Addr
}

func (m *relabelModule) Service() wire.ServiceID { return wire.SvcEcho }
func (m *relabelModule) Name() string            { return "pass-through" }
func (m *relabelModule) Version() string         { return "1" }
func (m *relabelModule) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if m.pending == nil {
		m.pending = make(map[wire.ConnectionID]wire.Addr)
	}
	if pkt.Src == m.next {
		// Reply path: return to the recorded client.
		client, ok := m.pending[pkt.Hdr.Conn]
		if !ok {
			return sn.Decision{}, nil
		}
		return sn.Decision{Forwards: []sn.Forward{{Dst: client}}}, nil
	}
	m.pending[pkt.Hdr.Conn] = pkt.Src
	return sn.Decision{Forwards: []sn.Forward{{Dst: m.next}}}, nil
}

// TestHostMobilityAcrossEdomains: a host moves between edomains; the
// lookup record follows it, and ipfwd reaches it at the new location.
func TestHostMobilityAcrossEdomains(t *testing.T) {
	topo := New()
	defer topo.Close()
	setup := func(node *sn.SN, ed *Edomain) error {
		return node.Register(ipfwd.New(topo.Global, topo.Fabric))
	}
	edA, err := topo.AddEdomain("ed-a", 1, setup)
	if err != nil {
		t.Fatal(err)
	}
	edB, err := topo.AddEdomain("ed-b", 1, setup)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	mobile, err := topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := topo.NewHost(edB, 0)
	if err != nil {
		t.Fatal(err)
	}
	inbox := make(chan host.Message, 4)
	mobile.OnService(wire.SvcIPFwd, func(msg host.Message) { inbox <- msg })

	send := func(tag string) {
		conn, err := sender.NewConn(wire.SvcIPFwd)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := conn.Send(ipfwd.DestData(mobile.Addr()), []byte(tag)); err != nil {
			t.Fatal(err)
		}
	}
	send("before-move")
	select {
	case msg := <-inbox:
		if string(msg.Payload) != "before-move" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("pre-move delivery failed")
	}

	// Move to ed-b.
	if err := topo.MoveHost(mobile, edB, 0); err != nil {
		t.Fatal(err)
	}
	rec, err := topo.Global.ResolveAddress(mobile.Addr())
	if err != nil || rec.SNs[0] != edB.SNs[0].Addr() {
		t.Fatalf("lookup after move: %+v err %v", rec, err)
	}
	send("after-move")
	select {
	case msg := <-inbox:
		if string(msg.Payload) != "after-move" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("post-move delivery failed")
	}
}

// TestLookupRecordsForHosts verifies NewHost publishes a signed,
// resolvable address record (§3.2 name services).
func TestLookupRecordsForHosts(t *testing.T) {
	topo := New()
	defer topo.Close()
	ed, err := topo.AddEdomain("ed-a", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := topo.Global.ResolveAddress(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.SNs) != 1 || rec.SNs[0] != ed.SNs[0].Addr() {
		t.Fatalf("record %+v", rec)
	}
	if !rec.Owner.Equal(h.Identity().PublicKey()) {
		t.Fatal("record owner mismatch")
	}
	_ = lookup.GroupID("")
}
