package lab

import (
	"fmt"
	"sync"

	"interedge/internal/edomain"
	"interedge/internal/host"
	"interedge/internal/lookup"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// Placement binds one edomain's consistent-hash ring to its hosts: it
// places each adopted host on the ring owner, re-registers the host's
// lookup record whenever its placement changes (so the resolution-cache
// hierarchy serves the new SN mapping within one publish instead of one
// lease), drives live drains, and absorbs failovers after an unannounced
// SN death.
type Placement struct {
	t  *Topology
	ed *Edomain

	mu     sync.Mutex
	hosts  map[wire.Addr]*host.Host
	placed map[wire.Addr]wire.Addr // host -> serving SN

	cancel func()
	done   chan struct{}
}

// NewPlacement creates the placement controller for an edomain and starts
// watching its ring. The ring-change counter registers into the gateway
// SN's telemetry so the control-plane "metrics" op exposes it.
func (t *Topology) NewPlacement(ed *Edomain) *Placement {
	p := &Placement{
		t:      t,
		ed:     ed,
		hosts:  make(map[wire.Addr]*host.Host),
		placed: make(map[wire.Addr]wire.Addr),
	}
	// Ignore a duplicate-registration error: a rebuilt controller over the
	// same edomain reuses the gateway's existing instrument.
	_ = ed.Gateway().Telemetry().Register(
		telemetry.NewCounterFunc("edomain_ring_changes_total", ed.Core.RingChanges))
	_ = ed.Gateway().Telemetry().Register(
		telemetry.NewCounterFunc("edomain_ring_watch_dropped_total", ed.Core.RingWatchDrops))
	_ = ed.Gateway().Telemetry().Register(
		telemetry.NewGaugeFunc("edomain_placement_balance_x1000", p.balanceX1000))
	_, ch, cancel := ed.Core.WatchRing()
	p.cancel = cancel
	p.done = make(chan struct{})
	go p.watch(ch)
	t.closers = append(t.closers, func() error { p.Close(); return nil })
	return p
}

// balanceX1000 is the placement-balance gauge source: max hosts-per-SN
// over mean hosts-per-active-SN, scaled by 1000 (registries are integer).
// A perfectly even fleet reads 1000; 2000 means the hottest SN carries
// twice the mean. An empty fleet or ring reads 1000 so an idle gauge never
// trips a balance gate.
func (p *Placement) balanceX1000() int64 {
	active := p.ed.Core.ActiveSNs()
	p.mu.Lock()
	counts := make(map[wire.Addr]int, len(active))
	total := 0
	for _, sn := range p.placed {
		counts[sn]++
		total++
	}
	p.mu.Unlock()
	if len(active) == 0 || total == 0 {
		return 1000
	}
	maxPerSN := 0
	for _, c := range counts {
		if c > maxPerSN {
			maxPerSN = c
		}
	}
	mean := float64(total) / float64(len(active))
	return int64(float64(maxPerSN) / mean * 1000)
}

// Close releases the ring watch.
func (p *Placement) Close() {
	if p.cancel != nil {
		p.cancel()
		<-p.done
		p.cancel = nil
	}
}

// AdoptHost places an existing host under ring control: associates it
// with the ring owner for its address and publishes the mapping.
func (p *Placement) AdoptHost(h *host.Host) (wire.Addr, error) {
	owner, ok := p.ed.Core.PlaceHost(h.Addr())
	if !ok {
		return wire.Addr{}, fmt.Errorf("lab: edomain %s has no active SN to place %s", p.ed.ID, h.Addr())
	}
	if err := h.Associate(owner); err != nil {
		return wire.Addr{}, err
	}
	p.mu.Lock()
	p.hosts[h.Addr()] = h
	p.placed[h.Addr()] = owner
	p.mu.Unlock()
	return owner, p.publish(h, owner)
}

// PlacedOn reports the SN an adopted host is currently placed on.
func (p *Placement) PlacedOn(hostAddr wire.Addr) (wire.Addr, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.placed[hostAddr]
	return a, ok
}

// NewPlacedHost creates a host in the controller's edomain, placed by the
// ring rather than by an explicit SN index.
func (t *Topology) NewPlacedHost(p *Placement, cfgEdit ...func(*host.Config)) (*host.Host, error) {
	h, err := t.NewHostAt(t.alloc.Next().String(), cfgEdit...)
	if err != nil {
		return nil, err
	}
	if err := t.Fabric.RegisterAddr(p.ed.ID, h.Addr()); err != nil {
		return nil, err
	}
	if _, err := p.AdoptHost(h); err != nil {
		return nil, err
	}
	return h, nil
}

// DrainSN live-drains one SN: it leaves placement (BeginDrain), every
// adopted host it serves is handed off — established pipe state moves to
// the new ring owner without a re-handshake — the moved mappings are
// republished, and the SN finishes down (FinishDrain), ready to be
// stopped or reactivated. Hosts whose handoff fails fall back to full
// re-establishment against their published successor.
func (p *Placement) DrainSN(snAddr wire.Addr) error {
	node, err := p.t.snByAddr(snAddr)
	if err != nil {
		return err
	}
	if err := p.ed.Core.BeginDrain(snAddr); err != nil {
		return err
	}
	moved := make(map[wire.Addr]wire.Addr)
	drainErr := node.Drain(func(peer wire.Addr) (wire.Addr, bool) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.placed[peer] != snAddr {
			return wire.Addr{}, false
		}
		tgt, ok := p.ed.Core.PlaceHost(peer)
		if !ok || tgt == snAddr {
			return wire.Addr{}, false
		}
		moved[peer] = tgt
		return tgt, true
	})
	p.mu.Lock()
	type pub struct {
		h  *host.Host
		sn wire.Addr
	}
	pubs := make([]pub, 0, len(moved))
	for hostAddr, tgt := range moved {
		p.placed[hostAddr] = tgt
		pubs = append(pubs, pub{p.hosts[hostAddr], tgt})
	}
	p.mu.Unlock()
	for _, pb := range pubs {
		if err := p.publish(pb.h, pb.sn); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	p.ed.Core.FinishDrain(snAddr)
	return drainErr
}

// ReportDown records an unannounced SN death (normally fed by sibling
// dead-peer detection); the resulting ring change re-places its hosts by
// full re-establishment. Exposed for tests and the soak runner, which
// kill nodes out from under the fleet.
func (p *Placement) ReportDown(snAddr wire.Addr) {
	p.ed.Core.ReportSNDown(snAddr)
}

// Reactivate returns a drained or recovered SN to placement; hosts whose
// ring owner it is again migrate back by live handoff.
func (p *Placement) Reactivate(snAddr wire.Addr) error {
	return p.ed.Core.ReactivateSN(snAddr)
}

// watch re-places hosts after ring changes. Draining transitions are
// skipped: DrainSN moves those hosts synchronously so the drain counters
// and the ring change stay one operation; every other change (death,
// reactivation, registration) is handled by sweeping placements against
// the current ring — events are best-effort, so the sweep never trusts
// the event payload.
func (p *Placement) watch(ch <-chan edomain.RingEvent) {
	defer close(p.done)
	for ev := range ch {
		if ev.State == edomain.SNDraining {
			continue
		}
		p.sweep()
	}
}

// sweep moves every adopted host whose ring owner changed. A host leaving
// a live SN migrates by handoff (no re-handshake); a host leaving a dead
// SN is re-associated from scratch — the successor counts one failover.
func (p *Placement) sweep() {
	type move struct {
		h        *host.Host
		from, to wire.Addr
	}
	p.mu.Lock()
	var moves []move
	for addr, h := range p.hosts {
		want, ok := p.ed.Core.PlaceHost(addr)
		if !ok {
			continue
		}
		if cur := p.placed[addr]; cur != want {
			moves = append(moves, move{h, cur, want})
			p.placed[addr] = want
		}
	}
	p.mu.Unlock()
	for _, m := range moves {
		if p.ed.Core.SNStateOf(m.from) == edomain.SNDown {
			p.failover(m.h, m.from, m.to)
		} else if node, err := p.t.snByAddr(m.from); err == nil {
			if err := node.HandoffPipe(m.h.Addr(), m.to); err != nil {
				p.failover(m.h, m.from, m.to)
			}
		}
		_ = p.publish(m.h, m.to)
	}
}

// failover is the no-pipe-left path: full re-establishment against the
// successor via the existing handshake/backoff machinery.
func (p *Placement) failover(h *host.Host, from, to wire.Addr) {
	if err := h.Reassociate(to); err != nil {
		return
	}
	h.Disassociate(from)
	// Connections pinned at the dead SN would keep addressing the corpse:
	// repoint them at the successor the host just re-established against.
	h.Repoint(from, to)
	if node, err := p.t.snByAddr(to); err == nil {
		node.NoteFailover()
	}
}

// publish re-registers the host's signed address record with its current
// first-hop SN. The global service fans the update out to every watching
// resolution-cache tier, which applies it in place — the new mapping is
// visible within one publish, not one lease.
func (p *Placement) publish(h *host.Host, sn wire.Addr) error {
	sns := []wire.Addr{sn}
	rec := lookup.AddrRecord{Addr: h.Addr(), Owner: h.Identity().PublicKey(), SNs: sns}
	sig := lookup.SignAddrRecord(h.Identity().Signing, h.Addr(), sns)
	return p.t.Global.RegisterAddress(rec, sig)
}
