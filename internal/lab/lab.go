// Package lab assembles complete InterEdge deployments in-process: a
// network substrate, a global lookup service, a peering fabric, edomains
// with their cores and SNs, and InterEdge-enabled hosts. Integration
// tests, the examples, and cmd/interedge-lab all build their topologies
// here — the executable equivalent of the paper's Figure 1.
package lab

import (
	"crypto/ed25519"
	"fmt"

	"interedge/internal/clock"
	"interedge/internal/edomain"
	"interedge/internal/handshake"
	"interedge/internal/host"
	"interedge/internal/lookup"
	"interedge/internal/lookup/rescache"
	"interedge/internal/netsim"
	"interedge/internal/peering"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// Edomain bundles one edomain's core and service nodes.
type Edomain struct {
	ID   edomain.ID
	Core *edomain.Core
	SNs  []*sn.SN
}

// Gateway returns the edomain's first SN, which the fabric designates as
// a gateway.
func (e *Edomain) Gateway() *sn.SN { return e.SNs[0] }

// Topology is a complete in-process InterEdge deployment.
type Topology struct {
	Net    *netsim.Network
	Global *lookup.Service
	Fabric *peering.Fabric
	Clock  clock.Clock

	alloc    *netsim.AddrAllocator
	edomains map[edomain.ID]*Edomain
	hosts    []*host.Host
	closers  []func() error
	snEdits  []func(*sn.Config)
	trWrap   func(netsim.Transport) netsim.Transport
}

// Option configures a Topology.
type Option func(*Topology)

// WithNetwork substitutes a pre-configured substrate (e.g. with latency
// profiles or a manual clock).
func WithNetwork(n *netsim.Network) Option {
	return func(t *Topology) { t.Net = n }
}

// WithClock sets the clock handed to SNs and hosts.
func WithClock(c clock.Clock) Option {
	return func(t *Topology) { t.Clock = c }
}

// WithSNConfig applies a config edit to every SN the topology creates
// (including those built by AddEdomain). The chaos suite uses it to turn
// on pipe keepalives and tune handshake retry behavior fleet-wide.
func WithSNConfig(edit func(*sn.Config)) Option {
	return func(t *Topology) { t.snEdits = append(t.snEdits, edit) }
}

// WithTransportWrap interposes wrap on every transport the topology
// attaches (SNs and hosts alike). The soak runner uses it to install a
// capture tap that records sealed wire traffic for fuzz-corpus seeding.
// Wrappers should forward netsim.BatchSender and telemetry.Registrable
// when the underlying transport implements them.
func WithTransportWrap(wrap func(netsim.Transport) netsim.Transport) Option {
	return func(t *Topology) { t.trWrap = wrap }
}

// New creates an empty topology.
func New(opts ...Option) *Topology {
	t := &Topology{
		Fabric:   peering.NewFabric(),
		Clock:    clock.Real{},
		alloc:    netsim.NewAddrAllocator(),
		edomains: make(map[edomain.ID]*Edomain),
	}
	for _, o := range opts {
		o(t)
	}
	// The lookup service shares the topology clock so lease expiry and
	// watch-lag measurements stay meaningful under a manual clock.
	t.Global = lookup.New(lookup.WithClock(t.Clock))
	if t.Net == nil {
		t.Net = netsim.NewNetwork()
	}
	return t
}

// SNSetup customizes one SN at creation: register service modules, tweak
// options. ed.Core and the topology's Global/Fabric are available.
type SNSetup func(node *sn.SN, ed *Edomain) error

// NewSN creates one service node attached to the substrate.
func (t *Topology) NewSN(cfgEdit ...func(*sn.Config)) (*sn.SN, error) {
	addr := t.alloc.Next()
	tr, err := t.Net.Attach(addr)
	if err != nil {
		return nil, err
	}
	if t.trWrap != nil {
		tr = t.trWrap(tr)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		return nil, err
	}
	cfg := sn.Config{Transport: tr, Identity: id, Clock: t.Clock}
	for _, e := range t.snEdits {
		e(&cfg)
	}
	for _, e := range cfgEdit {
		e(&cfg)
	}
	node, err := sn.New(cfg)
	if err != nil {
		return nil, err
	}
	t.closers = append(t.closers, node.Close)
	return node, nil
}

// AddEdomain creates an edomain with numSNs service nodes. The first SN is
// the gateway. Every SN runs the peering forwarder; setup (optional)
// registers additional service modules per SN.
func (t *Topology) AddEdomain(id edomain.ID, numSNs int, setup SNSetup) (*Edomain, error) {
	if _, dup := t.edomains[id]; dup {
		return nil, fmt.Errorf("lab: edomain %s already exists", id)
	}
	if numSNs < 1 {
		return nil, fmt.Errorf("lab: edomain needs at least one SN")
	}
	ed := &Edomain{ID: id, Core: edomain.New(id, t.Global)}
	// Build the edomain-tier resolution cache up front so SN-tier caches
	// created later (NewNodeResolver) chain through it.
	ed.Core.NewResolver(rescache.Config{Clock: t.Clock})
	t.closers = append(t.closers, func() error { ed.Core.Close(); return nil })
	core := ed.Core
	for i := 0; i < numSNs; i++ {
		node, err := t.NewSN(func(c *sn.Config) {
			// Pipe handoffs are only accepted from sibling SNs of this
			// edomain, and a sibling found dead by pipe keepalives is
			// reported to the core as an unannounced ring change.
			c.AcceptHandoff = core.HasSN
			prev := c.OnPeerDown
			c.OnPeerDown = func(addr wire.Addr, identity ed25519.PublicKey) {
				if core.HasSN(addr) {
					core.ReportSNDown(addr)
				}
				if prev != nil {
					prev(addr, identity)
				}
			}
		})
		if err != nil {
			return nil, err
		}
		if err := node.Register(peering.NewForwarder(t.Fabric, node.Inject)); err != nil {
			return nil, err
		}
		ed.Core.RegisterSN(node.Addr())
		ed.SNs = append(ed.SNs, node)
	}
	if err := t.Fabric.AddEdomain(id, ed.SNs[0].Addr()); err != nil {
		return nil, err
	}
	for _, node := range ed.SNs[1:] {
		if err := t.Fabric.RegisterAddr(id, node.Addr()); err != nil {
			return nil, err
		}
	}
	if setup != nil {
		for _, node := range ed.SNs {
			if err := setup(node, ed); err != nil {
				return nil, err
			}
		}
	}
	t.edomains[id] = ed
	return ed, nil
}

// NewNodeResolver builds the SN-tier resolution cache for one node: the
// bottom tier of the resolution cache hierarchy. Fills chain through the
// edomain-tier cache (or straight to the global service when the edomain
// has none), while invalidation events come from watching the global
// service directly so updates apply in publish order. A record change or
// revocation also invalidates the node's decision-cache rules that
// forward toward that address, so the fast path cannot keep steering a
// flow at a stale first-hop SN. The cache's instruments register into
// the node's telemetry registry (visible through the control-plane
// "metrics" op) and the topology closes the cache on Close.
func (t *Topology) NewNodeResolver(ed *Edomain, node *sn.SN) *rescache.Cache {
	var backend rescache.Resolver = t.Global
	if r := ed.Core.Resolver(); r != nil {
		backend = r
	}
	rc := rescache.New(rescache.Config{
		Backend: backend,
		Watch:   t.Global,
		Clock:   t.Clock,
		OnEvent: func(ev lookup.AddrEvent) {
			if !ev.Resync {
				node.Cache().InvalidateDest(ev.Addr)
			}
		},
	})
	rc.RegisterTelemetry(node.Telemetry())
	t.closers = append(t.closers, func() error { rc.Close(); return nil })
	return rc
}

// Edomain returns a previously created edomain.
func (t *Topology) Edomain(id edomain.ID) (*Edomain, bool) {
	ed, ok := t.edomains[id]
	return ed, ok
}

// Mesh establishes the required full mesh of inter-edomain gateway pipes
// plus full pipe connectivity among SNs within each edomain.
func (t *Topology) Mesh() error {
	if err := t.Fabric.EstablishMesh(func(a, b wire.Addr) error {
		node, err := t.snByAddr(a)
		if err != nil {
			return err
		}
		return node.Connect(b)
	}); err != nil {
		return err
	}
	for _, ed := range t.edomains {
		for i := 0; i < len(ed.SNs); i++ {
			for j := i + 1; j < len(ed.SNs); j++ {
				if err := ed.SNs[i].Connect(ed.SNs[j].Addr()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (t *Topology) snByAddr(addr wire.Addr) (*sn.SN, error) {
	for _, ed := range t.edomains {
		for _, node := range ed.SNs {
			if node.Addr() == addr {
				return node, nil
			}
		}
	}
	return nil, fmt.Errorf("lab: no SN at %s", addr)
}

// NewHost creates an InterEdge host in the given edomain, associated with
// the edomain's SN at snIdx, registers it in the peering fabric, and
// publishes its signed address record (address → owner key + first-hop
// SNs) in the global lookup service.
func (t *Topology) NewHost(ed *Edomain, snIdx int, cfgEdit ...func(*host.Config)) (*host.Host, error) {
	if snIdx < 0 || snIdx >= len(ed.SNs) {
		return nil, fmt.Errorf("lab: SN index %d out of range", snIdx)
	}
	addr := t.alloc.Next()
	tr, err := t.Net.Attach(addr)
	if err != nil {
		return nil, err
	}
	if t.trWrap != nil {
		tr = t.trWrap(tr)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		return nil, err
	}
	cfg := host.Config{Transport: tr, Identity: id, Clock: t.Clock}
	for _, e := range cfgEdit {
		e(&cfg)
	}
	h, err := host.New(cfg)
	if err != nil {
		return nil, err
	}
	t.closers = append(t.closers, h.Close)
	firstHop := ed.SNs[snIdx].Addr()
	if err := h.Associate(firstHop); err != nil {
		return nil, fmt.Errorf("lab: associate host %s: %w", addr, err)
	}
	if err := t.Fabric.RegisterAddr(ed.ID, addr); err != nil {
		return nil, err
	}
	rec := lookup.AddrRecord{Addr: addr, Owner: id.PublicKey(), SNs: []wire.Addr{firstHop}}
	sig := lookup.SignAddrRecord(id.Signing, addr, rec.SNs)
	if err := t.Global.RegisterAddress(rec, sig); err != nil {
		return nil, fmt.Errorf("lab: register host address: %w", err)
	}
	t.hosts = append(t.hosts, h)
	return h, nil
}

// NewHostAt creates a host at a specific address, outside any edomain
// bookkeeping. The caller associates it with SNs manually. Useful when a
// test needs recognizable source prefixes (e.g. QoS classes).
func (t *Topology) NewHostAt(addr string, cfgEdit ...func(*host.Config)) (*host.Host, error) {
	a := wire.MustAddr(addr)
	tr, err := t.Net.Attach(a)
	if err != nil {
		return nil, err
	}
	if t.trWrap != nil {
		tr = t.trWrap(tr)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		return nil, err
	}
	cfg := host.Config{Transport: tr, Identity: id, Clock: t.Clock}
	for _, e := range cfgEdit {
		e(&cfg)
	}
	h, err := host.New(cfg)
	if err != nil {
		return nil, err
	}
	t.closers = append(t.closers, h.Close)
	t.hosts = append(t.hosts, h)
	return h, nil
}

// MoveHost re-registers a host's address record after it associates with a
// different SN (used by mobility scenarios).
func (t *Topology) MoveHost(h *host.Host, ed *Edomain, snIdx int) error {
	newSN := ed.SNs[snIdx].Addr()
	if err := h.Associate(newSN); err != nil {
		return err
	}
	sns := []wire.Addr{newSN}
	rec := lookup.AddrRecord{Addr: h.Addr(), Owner: h.Identity().PublicKey(), SNs: sns}
	sig := lookup.SignAddrRecord(h.Identity().Signing, h.Addr(), sns)
	return t.Global.RegisterAddress(rec, sig)
}

// Close tears down every node created by the topology.
func (t *Topology) Close() {
	for i := len(t.closers) - 1; i >= 0; i-- {
		_ = t.closers[i]()
	}
}
