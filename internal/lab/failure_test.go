package lab

import (
	"testing"
	"time"

	"interedge/internal/cryptutil"
	"interedge/internal/handshake"
	"interedge/internal/lookup"
	"interedge/internal/services/echo"
	"interedge/internal/services/pubsub"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// The full §3.3 failure story for a stateless service: the SN process dies
// and a replacement (new identity, same address) comes up. The host
// re-handshakes via Reassociate and traffic resumes.
func TestSNCrashRestartRecovery(t *testing.T) {
	topo := New()
	defer topo.Close()
	ed, err := topo.AddEdomain("ed-a", 1, func(node *sn.SN, ed *Edomain) error {
		return node.Register(echo.New())
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	snAddr := ed.SNs[0].Addr()

	roundTrip := func(tag string) error {
		conn, err := h.NewConn(wire.SvcEcho)
		if err != nil {
			return err
		}
		defer conn.Close()
		if err := conn.Send(nil, []byte(tag)); err != nil {
			return err
		}
		select {
		case <-conn.Receive():
			return nil
		case <-time.After(time.Second):
			return errTimeout
		}
	}
	if err := roundTrip("before"); err != nil {
		t.Fatalf("pre-crash: %v", err)
	}

	// Crash: the SN closes, its pipe keys and module state are gone.
	ed.SNs[0].Close()

	// Restart: a brand-new SN at the SAME address (the operator rebinds),
	// with a fresh identity and fresh key material.
	tr, err := topo.Net.Attach(snAddr)
	if err != nil {
		t.Fatal(err)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	node2, err := sn.New(sn.Config{Transport: tr, Identity: id})
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	if err := node2.Register(echo.New()); err != nil {
		t.Fatal(err)
	}

	// The host's old pipe is cryptographically dead: traffic sealed with
	// the old master secret is silently dropped by the new SN.
	if err := roundTrip("stale-pipe"); err == nil {
		t.Fatal("stale pipe delivered traffic to the restarted SN")
	}

	// Recovery: re-handshake, then traffic flows again.
	if err := h.Reassociate(snAddr); err != nil {
		t.Fatalf("reassociate: %v", err)
	}
	if err := roundTrip("after"); err != nil {
		t.Fatalf("post-recovery: %v", err)
	}
}

var errTimeout = timeoutError{}

type timeoutError struct{}

func (timeoutError) Error() string { return "timeout" }

// Stateful-service recovery end to end: pub/sub subscriber state dies with
// the SN; host-driven reconstruction (Reassociate + Reestablish) restores
// the subscription on the replacement node (§3.3).
func TestStatefulServiceRecoveryPubSub(t *testing.T) {
	topo := New()
	defer topo.Close()
	mkSetup := func() SNSetup {
		return func(node *sn.SN, ed *Edomain) error {
			return node.Register(pubsub.New(ed.Core, topo.Fabric, topo.Global))
		}
	}
	ed, err := topo.AddEdomain("ed-a", 2, mkSetup())
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	owner, err := cryptutil.NewSigningKeypair()
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Global.CreateGroup("t", owner.Public); err != nil {
		t.Fatal(err)
	}
	if err := topo.Global.PostOpenStatement("t", lookup.SignOpenStatement(owner, "t")); err != nil {
		t.Fatal(err)
	}

	pub, err := topo.NewHost(ed, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := topo.NewHost(ed, 1)
	if err != nil {
		t.Fatal(err)
	}
	subSNAddr := ed.SNs[1].Addr()

	pc, err := pubsub.NewClient(pub)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := pubsub.NewClient(sub)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 8)
	if err := sc.Subscribe("t", nil, false, func(_ string, msg []byte) { got <- string(msg) }); err != nil {
		t.Fatal(err)
	}
	if err := pc.RegisterSender("t"); err != nil {
		t.Fatal(err)
	}
	if err := pc.Publish("t", []byte("one")); err != nil {
		t.Fatal(err)
	}
	awaitMsg(t, got, "one")

	// The subscriber's SN dies and is replaced at the same address.
	ed.SNs[1].Close()
	tr, err := topo.Net.Attach(subSNAddr)
	if err != nil {
		t.Fatal(err)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	node2, err := sn.New(sn.Config{Transport: tr, Identity: id})
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	if err := node2.Register(pubsub.New(ed.Core, topo.Fabric, topo.Global)); err != nil {
		t.Fatal(err)
	}
	// The edomain core still lists the old SN's membership; the
	// replacement re-registers (operationally this is the node boot flow).
	ed.Core.RegisterSN(subSNAddr)

	// Other SNs and the publisher's SN hold stale pipes to the dead node;
	// the publisher's SN will re-establish on demand, but the subscriber
	// must reconstruct its own state first.
	if err := sub.Reassociate(subSNAddr); err != nil {
		t.Fatal(err)
	}
	if err := sc.Reestablish(); err != nil {
		t.Fatal(err)
	}
	// The publisher's SN must also redial the replaced peer: its cached
	// pipe is dead. (Auto-healing timers would do this in production; the
	// test does it explicitly.)
	ed.SNs[0].Pipes().DropPeer(subSNAddr)

	if err := pc.Publish("t", []byte("two")); err != nil {
		t.Fatal(err)
	}
	awaitMsg(t, got, "two")
}

func awaitMsg(t *testing.T, ch chan string, want string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case got := <-ch:
			if got == want {
				return
			}
		case <-deadline:
			t.Fatalf("never received %q", want)
		}
	}
}
