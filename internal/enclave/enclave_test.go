package enclave

import (
	"bytes"
	"errors"
	"testing"

	"interedge/internal/tpm"
)

func TestRunPreservesData(t *testing.T) {
	e, err := New("mod", "1.0", nil)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("packet bytes")
	out, err := e.Run(in, func(inside []byte) ([]byte, error) {
		if !bytes.Equal(inside, in) {
			t.Fatal("enclave-side copy differs")
		}
		return append(inside, " processed"...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "packet bytes processed" {
		t.Fatalf("out %q", out)
	}
	if e.Crossings() != 2 {
		t.Fatalf("crossings = %d, want 2", e.Crossings())
	}
}

func TestRunPropagatesError(t *testing.T) {
	e, _ := New("mod", "1.0", nil)
	boom := errors.New("boom")
	if _, err := e.Run(nil, func([]byte) ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestEnclaveSideCopyIsolated(t *testing.T) {
	e, _ := New("mod", "1.0", nil)
	in := []byte("original")
	_, err := e.Run(in, func(inside []byte) ([]byte, error) {
		inside[0] = 'X' // mutating the enclave copy must not touch the input
		return inside, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if in[0] != 'o' {
		t.Fatal("enclave mutated caller memory")
	}
}

func TestMeasurementExtendedIntoTPM(t *testing.T) {
	tp, err := tpm.New()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New("pubsub", "2.1", tp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tp.PCR(MeasurementPCR)
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectedPCR(e.Measurement())
	if got != want {
		t.Fatal("PCR does not match expected measurement chain")
	}
}

func TestMeasurementDependsOnNameAndVersion(t *testing.T) {
	a, _ := New("mod", "1.0", nil)
	b, _ := New("mod", "1.1", nil)
	c, _ := New("other", "1.0", nil)
	if a.Measurement() == b.Measurement() || a.Measurement() == c.Measurement() {
		t.Fatal("measurements not distinct")
	}
}

func TestAttestWithAndWithoutTPM(t *testing.T) {
	noTPM, _ := New("m", "1", nil)
	if _, err := noTPM.Attest([]byte("n")); err == nil {
		t.Fatal("attest without TPM succeeded")
	}
	tp, _ := tpm.New()
	withTPM, _ := New("m", "1", tp)
	q, err := withTPM.Attest([]byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tpm.VerifyQuote(tp.EndorsementKey(), q, []byte("n")); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedPCRChain(t *testing.T) {
	a, _ := New("m1", "1", nil)
	b, _ := New("m2", "1", nil)
	tp, _ := tpm.New()
	e1, _ := New("m1", "1", tp)
	e2, _ := New("m2", "1", tp)
	got, _ := tp.PCR(MeasurementPCR)
	if got != ExpectedPCR(e1.Measurement(), e2.Measurement()) {
		t.Fatal("two-module chain mismatch")
	}
	_ = a
	_ = b
}
