// Package enclave simulates the secure-enclave execution the paper proposes
// for privacy-sensitive services (§6.2) and measures in Appendix C's
// Table 1. Real enclaves (AMD SEV in the paper's benchmark) impose
// essentially no compute overhead but pay an I/O cost at the boundary:
// data entering and leaving enclave memory is encrypted/decrypted by the
// memory controller. We reproduce that cost profile with one AEAD pass
// plus one copy per boundary direction — real work proportional to the
// packet, small relative to service work. Software AES overstates what a
// hardware memory controller costs, so this model is a conservative upper
// bound on the ≤9%/≤8% overheads Table 1 reports (see EXPERIMENTS.md).
//
// The enclave also supports attestation: its measurement (a hash of the
// service module's name and version) is extended into a TPM PCR, and
// Attest produces a TPM quote a remote verifier can check (§6.2 privacy,
// attestation service).
package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"fmt"
	"sync/atomic"

	"interedge/internal/cryptutil"
	"interedge/internal/tpm"
)

// MeasurementPCR is the TPM register enclave measurements extend.
const MeasurementPCR = 4

// Enclave wraps the execution of one service module.
type Enclave struct {
	name        string
	measurement [sha256.Size]byte
	aead        cipher.AEAD
	tpm         *tpm.TPM
	nonceCtr    atomic.Uint64
	crossings   atomic.Uint64
}

// New creates an enclave for the named module, extends its measurement into
// the TPM (which may be nil for benchmarks without attestation), and
// provisions a fresh memory-encryption key.
func New(name, version string, t *tpm.TPM) (*Enclave, error) {
	key := cryptutil.NewRandomKey()
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("enclave: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("enclave: %w", err)
	}
	e := &Enclave{
		name:        name,
		measurement: sha256.Sum256([]byte(name + "\x00" + version)),
		aead:        aead,
		tpm:         t,
	}
	if t != nil {
		if err := t.Extend(MeasurementPCR, e.measurement[:]); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Name returns the module name the enclave hosts.
func (e *Enclave) Name() string { return e.name }

// Measurement returns the enclave's launch measurement.
func (e *Enclave) Measurement() [sha256.Size]byte { return e.measurement }

// Crossings returns the number of boundary crossings performed (two per
// Run: one in, one out).
func (e *Enclave) Crossings() uint64 { return e.crossings.Load() }

func (e *Enclave) nonce() []byte {
	n := e.nonceCtr.Add(1)
	var buf [12]byte
	buf[0] = 0xE0
	for i := 0; i < 8; i++ {
		buf[4+i] = byte(n >> (56 - 8*i))
	}
	return buf[:]
}

// cross moves a buffer across the enclave boundary. SEV-class enclaves
// encrypt memory in the controller with one hardware AES pass per
// direction; we model that with a single software AEAD pass over the data
// plus the copy into enclave-owned memory. The data itself survives
// unchanged.
func (e *Enclave) cross(data []byte) ([]byte, error) {
	e.crossings.Add(1)
	// The memory-encryption pass: real work proportional to the data.
	_ = e.aead.Seal(nil, e.nonce(), data, nil)
	// The copy into (or out of) enclave memory.
	return append([]byte(nil), data...), nil
}

// Run executes f inside the enclave: in crosses the boundary inward, f runs
// on the enclave-side copy, and its result crosses back outward.
func (e *Enclave) Run(in []byte, f func(in []byte) ([]byte, error)) ([]byte, error) {
	inside, err := e.cross(in)
	if err != nil {
		return nil, err
	}
	out, err := f(inside)
	if err != nil {
		return nil, err
	}
	return e.cross(out)
}

// Attest produces a TPM quote over the current PCRs (including this
// enclave's measurement) bound to the verifier's nonce.
func (e *Enclave) Attest(nonce []byte) (tpm.Quote, error) {
	if e.tpm == nil {
		return tpm.Quote{}, fmt.Errorf("enclave: no TPM provisioned")
	}
	return e.tpm.Quote(nonce), nil
}

// ExpectedPCR computes the PCR value a verifier should see when the given
// module measurements were extended, in order, into a zeroed register.
func ExpectedPCR(measurements ...[sha256.Size]byte) [sha256.Size]byte {
	var pcr [sha256.Size]byte
	for _, m := range measurements {
		digest := sha256.Sum256(m[:])
		h := sha256.New()
		h.Write(pcr[:])
		h.Write(digest[:])
		copy(pcr[:], h.Sum(nil))
	}
	return pcr
}
