package pipe

import (
	"crypto/ed25519"
	"errors"
	"fmt"

	"interedge/internal/cryptutil"
	"interedge/internal/psp"
	"interedge/internal/wire"
)

// PipeState is the portable state of one established pipe: everything a
// sibling node needs to resume the pipe without a fresh handshake. Exported
// by the draining side, imported by its successor (normally after a trip
// through the wire.HandoffState codec over a sealed inter-SN pipe).
type PipeState struct {
	// Addr is the peer the pipe connects to (the host, from an SN's view).
	Addr wire.Addr
	// Identity is the peer's verified ed25519 public key.
	Identity ed25519.PublicKey
	// Master is the handshake-derived master secret.
	Master cryptutil.Key
	// Initiator reports whether the EXPORTING node initiated the handshake;
	// the importer takes over that role's key schedule.
	Initiator bool
	// BaseSPI is the pipe's base SPI (low byte zero).
	BaseSPI uint32
	// TxEpoch is the exporter's sending epoch at export time. ImportPeer
	// resumes at TxEpoch+1 so the exporter's consumed IV space is never
	// reused under the same key.
	TxEpoch uint32
	// RxEpoch is the highest epoch the exporter observed from the peer; the
	// importer's receiver resumes there.
	RxEpoch uint32
}

// Errors returned by the handoff API.
var (
	ErrPeerExists = errors.New("pipe: peer already established")
)

// ExportPeer snapshots the established pipe to addr as portable state. The
// pipe remains usable afterwards; a draining caller typically follows up
// with DropPeer once the state has been delivered to the successor.
func (m *Manager) ExportPeer(addr wire.Addr) (PipeState, error) {
	p := m.peer(addr)
	if p == nil {
		return PipeState{}, fmt.Errorf("%w: %s", ErrNoPipe, addr)
	}
	return PipeState{
		Addr:      p.addr,
		Identity:  p.identity,
		Master:    p.master,
		Initiator: p.initiator,
		BaseSPI:   p.baseSPI,
		TxEpoch:   p.crypto.TX.Epoch(),
		RxEpoch:   p.crypto.RX.Epoch(),
	}, nil
}

// ImportPeer installs an established pipe from exported state, resuming TX
// one epoch above the exporter's (fresh IV space) and RX at the peer's
// current sending epoch. Receivers accept any newer epoch, so the peer
// needs no notification to keep the pipe flowing.
//
// If a pipe to state.Addr already exists, ImportPeer refuses with
// ErrPeerExists and changes nothing: a concurrent full handshake (e.g. the
// peer re-established on its own while the handoff was in flight) carries
// fresher keys than the export, and must win. Handshake establishment, by
// contrast, always replaces — both ends install the same fresh result, so
// every race converges with exactly one live key schedule per pipe.
func (m *Manager) ImportPeer(state PipeState) error {
	crypto, err := psp.NewPipeCryptoAt(state.Master, state.Initiator, state.BaseSPI,
		state.TxEpoch+1, state.RxEpoch)
	if err != nil {
		return err
	}
	p := &peer{
		addr:      state.Addr,
		identity:  state.Identity,
		crypto:    crypto,
		up:        m.cfg.Clock.Now(),
		master:    state.Master,
		initiator: state.Initiator,
		baseSPI:   state.BaseSPI,
	}
	p.lastRx.Store(p.up.UnixNano())
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrManagerClosed
	}
	if m.peer(state.Addr) != nil {
		return fmt.Errorf("%w: %s", ErrPeerExists, state.Addr)
	}
	m.setPeer(state.Addr, p)
	return nil
}

// RebindPeer moves an established pipe from oldAddr to newAddr, keeping its
// keys: the host side of a drain, invoked when the serving SN announces its
// successor (SvcPipeMove). The sending epoch rotates so the successor's
// fresh replay window only ever sees new IVs from us.
//
// Like ImportPeer it refuses to clobber: if a pipe to newAddr already
// exists (a full handshake with the successor raced the move and won, with
// fresher keys), the rebind fails with ErrPeerExists and the old entry is
// left alone for normal teardown.
func (m *Manager) RebindPeer(oldAddr, newAddr wire.Addr) error {
	m.mu.Lock()
	old := m.peer(oldAddr)
	if old == nil {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoPipe, oldAddr)
	}
	if m.peer(newAddr) != nil {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrPeerExists, newAddr)
	}
	p := &peer{
		addr:      newAddr,
		identity:  old.identity,
		crypto:    old.crypto,
		up:        m.cfg.Clock.Now(),
		master:    old.master,
		initiator: old.initiator,
		baseSPI:   old.baseSPI,
	}
	p.txPackets.Store(old.txPackets.Load())
	p.rxPackets.Store(old.rxPackets.Load())
	p.txBytes.Store(old.txBytes.Load())
	p.rxBytes.Store(old.rxBytes.Load())
	p.lastRx.Store(p.up.UnixNano())
	m.setPeer(oldAddr, nil)
	m.setPeer(newAddr, p)
	m.mu.Unlock()
	return p.crypto.TX.Rotate()
}
