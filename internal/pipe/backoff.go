package pipe

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes capped exponential retry delays with deterministic
// jitter. It is the one retry policy shared by everything that re-dials a
// failed peer or component: the pipe handshake retransmitter, the
// dead-peer re-establishment loop, and the SN's IPC module-server
// restarter. The jitter RNG is seeded explicitly, so simulations replay
// the exact same retry schedule run after run while distinct nodes (or
// modules) draw decorrelated delays.
type Backoff struct {
	base, max time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff creates a policy that starts at base, doubles per attempt,
// and caps at max. seed fixes the jitter sequence; derive it with
// DeriveSeed to decorrelate independent retriers deterministically.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// DeriveSeed hashes identity bytes (an address, a module name) into a
// jitter seed with FNV-1a, so the schedule is reproducible per identity
// yet decorrelated across identities.
func DeriveSeed(id []byte) int64 {
	h := uint64(14695981039346656037)
	for _, c := range id {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return int64(h)
}

// Attempt returns the jittered delay after attempt number n (0-based):
// base doubled per attempt, capped at max, then jittered to [d/2, d).
func (b *Backoff) Attempt(n int) time.Duration {
	d := b.base
	for i := 0; i < n && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	return b.Jitter(d)
}

// Jitter maps d onto a uniformly random duration in [d/2, d).
func (b *Backoff) Jitter(d time.Duration) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	b.mu.Lock()
	j := time.Duration(b.rng.Int63n(int64(half)))
	b.mu.Unlock()
	return half + j
}
