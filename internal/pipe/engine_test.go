package pipe

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"interedge/internal/handshake"
	"interedge/internal/psp"
	"interedge/internal/wire"
)

// loopTransport is an EngineTransport that loops every datagram straight
// back into the engine's receive queue — one engine plays both ends of
// every pipe, which is exactly what the (local, remote) keying must
// support. In inline mode, Send dispatches synchronously on the caller's
// goroutine instead (the zero-alloc bench path).
type loopTransport struct {
	eng           *Engine
	inline        bool
	inlineScratch psp.Scratch

	mu     sync.Mutex
	rx     chan wire.Datagram
	closed bool
}

func newLoopTransport(depth int) *loopTransport {
	return &loopTransport{rx: make(chan wire.Datagram, depth)}
}

func (t *loopTransport) Send(dg wire.Datagram) error {
	if t.inline {
		t.eng.dispatch(dg, &t.inlineScratch)
		return nil
	}
	cp := make([]byte, len(dg.Payload))
	copy(cp, dg.Payload)
	dg.Payload = cp
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return errors.New("loop transport closed")
	}
	select {
	case t.rx <- dg:
	default:
	}
	return nil
}

func (t *loopTransport) Receive() <-chan wire.Datagram { return t.rx }

func (t *loopTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.closed {
		t.closed = true
		close(t.rx)
	}
	return nil
}

func newTestEngine(t testing.TB, tr *loopTransport, edit ...func(*EngineConfig)) *Engine {
	t.Helper()
	cfg := EngineConfig{
		Transport:        tr,
		HandshakeTimeout: 200 * time.Millisecond,
		HandshakeRetries: 4,
		RxWorkers:        1,
	}
	for _, e := range edit {
		e(&cfg)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.eng = eng
	t.Cleanup(func() { _ = eng.Close() })
	return eng
}

func addEndpoint(t testing.TB, e *Engine, addr string, h PacketHandler) wire.Addr {
	t.Helper()
	a := wire.MustAddr(addr)
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddEndpoint(EndpointConfig{Addr: a, Identity: id, Handler: h}); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestEngineHandshakeBetweenEndpoints runs a full handshake between two
// endpoints of the SAME engine over a loopback transport and pushes a
// packet each way: pipes are keyed by (local, remote), so both directions
// coexist and each side opens with its own pipe's keys.
func TestEngineHandshakeBetweenEndpoints(t *testing.T) {
	tr := newLoopTransport(256)
	var gotB atomic.Value
	e := newTestEngine(t, tr)
	a := addEndpoint(t, e, "10.9.0.1", nil)
	b := addEndpoint(t, e, "10.9.0.2", func(tx Sender, src wire.Addr, hdr wire.ILPHeader, hdrRaw, payload []byte) {
		gotB.Store(fmt.Sprintf("%s/%d/%s", src, hdr.Service, payload))
	})

	if err := e.Connect(a, b); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if !e.HasPeer(a, b) {
		t.Fatal("initiator side (a,b) not established")
	}
	// The responder side comes up from the same exchange.
	deadline := time.Now().Add(2 * time.Second)
	for !e.HasPeer(b, a) {
		if time.Now().After(deadline) {
			t.Fatal("responder side (b,a) not established")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if e.Pipes() != 2 {
		t.Fatalf("Pipes() = %d, want 2 (one per direction)", e.Pipes())
	}
	idA, ok := e.PeerIdentity(a, b)
	if !ok {
		t.Fatal("no identity on (a,b)")
	}
	idB, _ := e.PeerIdentity(b, a)
	if string(idA) == string(idB) {
		t.Fatal("endpoints share an identity — transcripts not endpoint-bound")
	}

	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 7}
	if err := e.Send(a, b, &hdr, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for gotB.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("packet never reached endpoint b's handler")
		}
		time.Sleep(2 * time.Millisecond)
	}
	want := fmt.Sprintf("%s/%d/ping", a, wire.SvcEcho)
	if got := gotB.Load().(string); got != want {
		t.Fatalf("handler saw %q, want %q", got, want)
	}
}

// TestEngineSimultaneousOpen drives Connect from both ends at once: the
// numerically lower address stays designated initiator (same tie-break as
// Manager) and both sides converge on working pipes.
func TestEngineSimultaneousOpen(t *testing.T) {
	tr := newLoopTransport(256)
	e := newTestEngine(t, tr)
	a := addEndpoint(t, e, "10.9.1.1", nil)
	b := addEndpoint(t, e, "10.9.1.2", nil)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = e.Connect(a, b) }()
	go func() { defer wg.Done(); errs[1] = e.Connect(b, a) }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Connect[%d]: %v", i, err)
		}
	}
	if !e.HasPeer(a, b) || !e.HasPeer(b, a) {
		t.Fatal("simultaneous open left a side down")
	}
	hdr := wire.ILPHeader{Service: wire.SvcEcho}
	if err := e.Send(a, b, &hdr, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := e.Send(b, a, &hdr, []byte("y")); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRemoveEndpoint checks teardown accounting: removing an
// endpoint drops its pipes from every shard, updates the gauges, fails
// further sends, and refuses new connects for the dead address.
func TestEngineRemoveEndpoint(t *testing.T) {
	tr := newLoopTransport(256)
	e := newTestEngine(t, tr)
	a := addEndpoint(t, e, "10.9.2.1", nil)
	b := addEndpoint(t, e, "10.9.2.2", nil)
	if err := e.Connect(a, b); err != nil {
		t.Fatal(err)
	}

	e.RemoveEndpoint(a)
	if e.HasPeer(a, b) {
		t.Fatal("removed endpoint still has a pipe")
	}
	if err := e.SendHeaderBytes(a, b, nil, nil); !errors.Is(err, ErrNoPipe) {
		t.Fatalf("send after remove: %v, want ErrNoPipe", err)
	}
	if err := e.Connect(a, b); err == nil {
		t.Fatal("Connect from removed endpoint succeeded")
	}
	if got := e.Telemetry().Snapshot().Value("engine_endpoints"); got != 1 {
		t.Fatalf("engine_endpoints = %v, want 1", got)
	}
	// The surviving direction (b -> a) is untouched until liveness notices.
	if !e.HasPeer(b, a) {
		t.Fatal("remote side's pipe should outlive the endpoint removal")
	}
}

// TestEngineRebindPeer moves a pipe to a new remote keeping its keys (the
// host side of SvcPipeMove): old key gone, new key live, no-clobber on an
// occupied target, ErrNoPipe on a missing source.
func TestEngineRebindPeer(t *testing.T) {
	tr := newLoopTransport(256)
	e := newTestEngine(t, tr)
	a := addEndpoint(t, e, "10.9.3.1", nil)
	b := addEndpoint(t, e, "10.9.3.2", nil)
	c := wire.MustAddr("10.9.3.3")
	if err := e.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	pipesBefore := e.Pipes()

	if err := e.RebindPeer(a, b, c); err != nil {
		t.Fatalf("RebindPeer: %v", err)
	}
	if e.HasPeer(a, b) {
		t.Fatal("old key (a,b) survived the rebind")
	}
	if !e.HasPeer(a, c) {
		t.Fatal("new key (a,c) not installed")
	}
	if e.Pipes() != pipesBefore {
		t.Fatalf("Pipes() = %d, want %d (rebind moves, never adds)", e.Pipes(), pipesBefore)
	}
	if err := e.RebindPeer(a, c, c); !errors.Is(err, ErrPeerExists) {
		t.Fatalf("clobbering rebind: %v, want ErrPeerExists", err)
	}
	if err := e.RebindPeer(a, b, c); !errors.Is(err, ErrNoPipe) {
		t.Fatalf("rebind of missing pipe: %v, want ErrNoPipe", err)
	}
}

// BenchmarkFleetRxFanout measures the fleet fast path end to end on one
// engine: seal on the sender's pipe, demux by (dst, src), open with the
// receiving pipe's keys, decode, and deliver to the endpoint handler —
// round-robined across 256 lite endpoints so the per-op cost includes the
// sharded peer-table lookup at fleet fan-out, not a single hot entry. The
// transport runs inline (no channels, no goroutine hops); the benchgate
// holds this path at 0 allocs/op — one allocation here is one allocation
// per packet per host at 10^6-host scale.
func BenchmarkFleetRxFanout(b *testing.B) {
	const numHosts = 256
	tr := newLoopTransport(1024)
	e := newTestEngine(b, tr)
	var delivered atomic.Int64
	count := func(tx Sender, src wire.Addr, hdr wire.ILPHeader, hdrRaw, payload []byte) {
		delivered.Add(1)
	}
	sender := addEndpoint(b, e, "10.8.0.1", nil)
	hosts := make([]wire.Addr, numHosts)
	for i := range hosts {
		hosts[i] = addEndpoint(b, e, fmt.Sprintf("10.8.%d.%d", 1+i/200, 1+i%200), count)
	}
	// Establish every pipe through the normal loopback handshake path,
	// then flip the transport to inline dispatch for the measured loop.
	for _, h := range hosts {
		if err := e.Connect(sender, h); err != nil {
			b.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Pipes() < 2*numHosts {
		if time.Now().After(deadline) {
			b.Fatalf("responder pipes not up: %d/%d", e.Pipes(), 2*numHosts)
		}
		time.Sleep(time.Millisecond)
	}
	tr.inline = true

	hdrBytes, err := (&wire.ILPHeader{Service: wire.SvcEcho, Conn: 1}).Encode()
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 16)

	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := e.SendHeaderBytes(sender, hosts[n%numHosts], hdrBytes, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := delivered.Load(); got != int64(b.N) {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}
