package pipe

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"interedge/internal/netsim"
	"interedge/internal/wire"
)

// TestShardedPerSourceOrdering drives one receiver with a wide receive
// pipeline from several concurrent senders, each numbering its packets.
// Sharding by source must keep every sender's stream in order even though
// different senders' packets are processed on different workers.
func TestShardedPerSourceOrdering(t *testing.T) {
	const senders = 4
	const perSender = 300
	net := netsim.NewNetwork()
	b := newNode(t, net, "fd00::b", func(c *Config) { c.RxWorkers = 4 })
	if b.mgr.RxWorkers() != 4 {
		t.Fatalf("RxWorkers() = %d, want 4", b.mgr.RxWorkers())
	}

	nodes := make([]*node, senders)
	for i := range nodes {
		nodes[i] = newNode(t, net, fmt.Sprintf("fd00::%x", i+1))
		if err := nodes[i].mgr.Connect(b.addr); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			payload := make([]byte, 8)
			for seq := 0; seq < perSender; seq++ {
				binary.BigEndian.PutUint64(payload, uint64(seq))
				if err := n.mgr.Send(b.addr, &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, payload); err != nil {
					t.Errorf("send from %s: %v", n.addr, err)
					return
				}
			}
		}(n)
	}

	lastSeq := make(map[wire.Addr]uint64)
	for got := 0; got < senders*perSender; got++ {
		select {
		case r := <-b.rx:
			seq := binary.BigEndian.Uint64(r.payload)
			if last, seen := lastSeq[r.src]; seen && seq != last+1 {
				t.Fatalf("source %s: seq %d after %d (reordered)", r.src, seq, last)
			}
			lastSeq[r.src] = seq
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d/%d packets", got, senders*perSender)
		}
	}
	wg.Wait()
	for _, n := range nodes {
		if last := lastSeq[n.addr]; last != perSender-1 {
			t.Errorf("source %s ended at seq %d, want %d", n.addr, last, perSender-1)
		}
	}
}

// TestShardedConcurrentPeerChurn exercises the copy-on-write peer table:
// data-path reads (Send, Peers, HasPeer) race against peer adds and drops.
// Run under -race this validates the lock-free read side.
func TestShardedConcurrentPeerChurn(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::a", func(c *Config) { c.RxWorkers = 2 })
	b := newNode(t, net, "fd00::b", func(c *Config) { c.RxWorkers = 2 })
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	churn := newNode(t, net, "fd00::c")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // reader + sender
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			a.mgr.Send(b.addr, &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, []byte("x"))
			a.mgr.Peers()
			a.mgr.HasPeer(churn.addr)
		}
	}()
	go func() { // writer: churn a second pipe up and down
		defer wg.Done()
		defer close(stop) // releases the reader goroutine
		for i := 0; i < 20; i++ {
			if err := a.mgr.Connect(churn.addr); err != nil {
				t.Errorf("churn connect: %v", err)
				return
			}
			a.mgr.DropPeer(churn.addr)
		}
	}()
	wg.Wait()

	// Drain whatever arrived; the established pipe must still work.
	drain := time.After(100 * time.Millisecond)
	for {
		select {
		case <-b.rx:
		case <-drain:
			return
		}
	}
}

// TestSendHeaderBytesAllocs pins the send-path allocation budget: with the
// pooled seal buffer the only steady-state allocation is the netsim
// transport's per-delivery payload copy (transport-owned by contract).
func TestSendHeaderBytesAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime changes sync.Pool retention and alloc counts")
	}
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::a")
	// The receiver's no-op handler keeps its side allocation-free after
	// warmup, so only sender-side and transport allocations are counted.
	b := newNode(t, net, "fd00::b", func(c *Config) {
		c.RxWorkers = 1
		c.Handler = func(Sender, wire.Addr, wire.ILPHeader, []byte, []byte) {}
	})
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	hdr := wire.ILPHeader{Service: wire.SvcNull, Conn: 1}
	enc, err := hdr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 256)
	for i := 0; i < 32; i++ { // warm the pool and both crypto scratches
		if err := a.mgr.SendHeaderBytes(b.addr, enc, payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := a.mgr.SendHeaderBytes(b.addr, enc, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("SendHeaderBytes allocated %.1f times per op, want <= 1 (transport copy)", allocs)
	}
}
