package pipe

import (
	"crypto/ed25519"
	"sync/atomic"
	"testing"
	"time"

	"interedge/internal/netsim"
	"interedge/internal/wire"
)

func TestKeepaliveKeepsIdlePipeAlive(t *testing.T) {
	net := netsim.NewNetwork()
	keepalive := func(c *Config) { c.KeepaliveInterval = 20 * time.Millisecond }
	a := newNode(t, net, "fd00::1", keepalive)
	b := newNode(t, net, "fd00::2", keepalive)
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	// Idle for several DeadAfter windows: probes must keep the pipe up.
	time.Sleep(400 * time.Millisecond)
	if !a.mgr.HasPeer(b.addr) || !b.mgr.HasPeer(a.addr) {
		t.Fatal("idle pipe died despite keepalives")
	}
	// Whichever side's tick fires first becomes the prober and the other
	// only answers, so judge the probe traffic across both managers.
	sa, sb := a.mgr.Stats(), b.mgr.Stats()
	if sa.KeepalivesSent+sb.KeepalivesSent == 0 {
		t.Fatal("no keepalives sent on idle pipe")
	}
	if sa.KeepalivesRcvd+sb.KeepalivesRcvd == 0 {
		t.Fatal("no keepalives answered on idle pipe")
	}
	if sa.PeersLost+sb.PeersLost != 0 {
		t.Fatalf("peers lost on healthy pipe: %d/%d", sa.PeersLost, sb.PeersLost)
	}
	// Probe and ack packets are consumed inside the manager, never
	// dispatched to the packet handler.
	select {
	case got := <-a.rx:
		t.Fatalf("handler saw internal packet: %+v", got)
	case <-time.After(10 * time.Millisecond):
	}
	select {
	case got := <-b.rx:
		t.Fatalf("handler saw internal packet: %+v", got)
	case <-time.After(10 * time.Millisecond):
	}
}

func TestDeadPeerDetectionFiresOnPeerDown(t *testing.T) {
	net := netsim.NewNetwork()
	var downs atomic.Int32
	var downAddr atomic.Value
	a := newNode(t, net, "fd00::1", func(c *Config) {
		c.KeepaliveInterval = 20 * time.Millisecond
		c.OnPeerDown = func(addr wire.Addr, _ ed25519.PublicKey) {
			downAddr.Store(addr)
			downs.Add(1)
		}
	})
	b := newNode(t, net, "fd00::2")
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	net.Partition(a.addr, b.addr)

	deadline := time.Now().Add(2 * time.Second)
	for a.mgr.HasPeer(b.addr) {
		if time.Now().After(deadline) {
			t.Fatal("dead peer never detected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if downs.Load() != 1 {
		t.Fatalf("OnPeerDown fired %d times, want 1", downs.Load())
	}
	if got := downAddr.Load().(wire.Addr); got != b.addr {
		t.Fatalf("OnPeerDown addr = %s, want %s", got, b.addr)
	}
	if st := a.mgr.Stats(); st.PeersLost != 1 {
		t.Fatalf("PeersLost = %d, want 1", st.PeersLost)
	}
}

func TestReestablishAfterPartitionHeals(t *testing.T) {
	net := netsim.NewNetwork()
	opt := func(c *Config) {
		c.KeepaliveInterval = 20 * time.Millisecond
		c.HandshakeTimeout = 10 * time.Millisecond
		c.HandshakeBackoffMax = 40 * time.Millisecond
		c.HandshakeRetries = 3
		c.Reestablish = true
	}
	a := newNode(t, net, "fd00::1", opt)
	b := newNode(t, net, "fd00::2", opt)
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	net.Partition(a.addr, b.addr)
	deadline := time.Now().Add(2 * time.Second)
	for a.mgr.HasPeer(b.addr) {
		if time.Now().After(deadline) {
			t.Fatal("dead peer never detected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	net.Heal(a.addr, b.addr)
	deadline = time.Now().Add(5 * time.Second)
	for !a.mgr.HasPeer(b.addr) {
		if time.Now().After(deadline) {
			t.Fatal("pipe never re-established after heal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Either side may win the re-handshake race; if b's redial restored the
	// pipe, a's own redial goroutine may still be in its backoff sleep and
	// count the success a beat later. Poll rather than assert immediately.
	deadline = time.Now().Add(2 * time.Second)
	for a.mgr.Stats().Reestablished == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Reestablished counter is zero")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The re-established pipe carries traffic again. The peer may briefly
	// hold stale crypto from the old pipe, so retry until a packet lands.
	got := false
	deadline = time.Now().Add(2 * time.Second)
	for !got && time.Now().Before(deadline) {
		if err := a.mgr.Send(b.addr, &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, []byte("again")); err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		select {
		case <-b.rx:
			got = true
		case <-time.After(50 * time.Millisecond):
		}
	}
	if !got {
		t.Fatal("no delivery over re-established pipe")
	}
}

func TestHandshakeBackoffMetricsAndFailure(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1", func(c *Config) {
		c.HandshakeTimeout = 5 * time.Millisecond
		c.HandshakeBackoffMax = 20 * time.Millisecond
		c.HandshakeRetries = 4
	})
	start := time.Now()
	if err := a.mgr.Connect(wire.MustAddr("fd00::dead")); err != ErrHandshakeTimeout {
		t.Fatalf("err = %v, want ErrHandshakeTimeout", err)
	}
	elapsed := time.Since(start)
	st := a.mgr.Stats()
	if st.HandshakeAttempts != 4 {
		t.Fatalf("HandshakeAttempts = %d, want 4", st.HandshakeAttempts)
	}
	if st.HandshakeFailures != 1 {
		t.Fatalf("HandshakeFailures = %d, want 1", st.HandshakeFailures)
	}
	// Backoff schedule: jittered [d/2, d) waits for d = 5, 10, 20, 20ms —
	// total in [27.5ms, 55ms). Allow slack above, but the cap must hold.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("backoff not capped: took %v", elapsed)
	}
	if elapsed < 25*time.Millisecond {
		t.Fatalf("retries returned too fast for backoff schedule: %v", elapsed)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1", func(c *Config) {
		c.HandshakeTimeout = 10 * time.Millisecond
		c.HandshakeBackoffMax = 40 * time.Millisecond
	})
	wantMax := []time.Duration{
		10 * time.Millisecond, // attempt 0
		20 * time.Millisecond, // attempt 1
		40 * time.Millisecond, // attempt 2
		40 * time.Millisecond, // attempt 3: capped
		40 * time.Millisecond, // attempt 9: still capped
	}
	for i, attempt := range []int{0, 1, 2, 3, 9} {
		for trial := 0; trial < 20; trial++ {
			d := a.mgr.backoff(attempt)
			if d < wantMax[i]/2 || d >= wantMax[i] {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v)", attempt, d, wantMax[i]/2, wantMax[i])
			}
		}
	}
}

func TestJitterSeedIsDeterministicPerNode(t *testing.T) {
	seq := func() []time.Duration {
		net := netsim.NewNetwork()
		a := newNode(t, net, "fd00::1")
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = a.mgr.jitter(100 * time.Millisecond)
		}
		return out
	}
	s1, s2 := seq(), seq()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("jitter sequence diverged at %d: %v vs %v", i, s1[i], s2[i])
		}
	}
}
