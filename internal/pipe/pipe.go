// Package pipe manages ILP pipes: the long-lived, handshake-keyed,
// PSP-encrypted point-to-point channels between hosts and SNs and between
// SNs (§3.1 "Host-to-SN Pipes", "SN-to-SN Pipe"). A Manager owns one
// transport attachment and all pipes radiating from it; both the host stack
// and the SN pipe-terminus are built on top of it.
//
// The Manager handles:
//   - handshake initiation, response, retransmission, and simultaneous-open
//     tie-breaking (the numerically lower address acts as initiator);
//   - per-peer PSP seal/open state and epoch rotation;
//   - dispatch of decrypted (header, payload) pairs to a PacketHandler.
//
// Receive processing is sharded across RxWorkers goroutines by source
// address: all datagrams from one peer (handshakes and ILP alike) are
// handled by the same worker in arrival order, so per-peer packet order is
// preserved while independent peers decrypt concurrently. The PacketHandler
// therefore runs concurrently for packets from different sources; callers
// needing further concurrency (e.g. the SN module runtime) hand off
// internally.
package pipe

import (
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"interedge/internal/clock"
	"interedge/internal/cryptutil"
	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/psp"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// Sender is the egress surface handed to PacketHandlers. On the hot path it
// is the worker's coalescing egress queue (sends may be batched until the
// worker's input drains or the per-destination cap is hit, and the queued
// packets of one destination are sealed together at flush time with a single
// cipher-state fetch); with coalescing disabled it is the Manager itself and
// every send is sealed and goes out immediately. Either way SendHeaderBytes
// copies hdrBytes and payload at call time, so the caller may reuse both as
// soon as it returns.
type Sender interface {
	SendHeaderBytes(dst wire.Addr, hdrBytes, payload []byte) error
}

// PacketHandler receives every decrypted inbound ILP packet. tx is the
// worker's egress Sender: forwards issued through it coalesce into vectored
// batches (see Config.TxBatch) while preserving per-source order. hdrRaw is
// the encoded form of hdr, handed to the handler so a forwarding fast path
// can re-seal it without re-encoding. hdr.Data, hdrRaw, and payload alias
// internal buffers and must be copied if retained: hdr.Data and hdrRaw are
// overwritten when the same worker processes its next packet. Handlers run
// concurrently for packets from different source addresses but serially,
// in arrival order, for any single source. tx is only valid for the
// duration of the call and must not be used from other goroutines; work
// handed off internally must send through the Manager instead.
type PacketHandler func(tx Sender, src wire.Addr, hdr wire.ILPHeader, hdrRaw, payload []byte)

// RxPacket is one decrypted inbound ILP packet of a receive batch. Hdr is
// the decoded header; HdrRaw is its encoded form (for re-seal-without-
// re-encode forwarding); Payload is the application payload. HdrRaw and
// Hdr.Data alias the worker's batch-open arena and Payload aliases the
// receive buffer: all three are valid only until the handler returns and
// must be copied if retained.
type RxPacket struct {
	Hdr     wire.ILPHeader
	HdrRaw  []byte
	Payload []byte
}

// BatchPacketHandler receives each decrypted same-source run of an RX batch
// as one call, preserving arrival order within pkts. It is the batch
// counterpart of PacketHandler: the same ordering, aliasing, and tx-validity
// rules apply to every element of pkts. Liveness probes are answered by the
// Manager and never appear in pkts.
type BatchPacketHandler func(tx Sender, src wire.Addr, pkts []RxPacket)

// AuthorizePeer decides whether to accept a pipe with the given peer. It is
// consulted on both initiation and response.
type AuthorizePeer func(addr wire.Addr, identity ed25519.PublicKey) bool

// PeerUpHandler is notified when a pipe becomes established.
type PeerUpHandler func(addr wire.Addr, identity ed25519.PublicKey)

// PeerDownHandler is notified when dead-peer detection tears a pipe down
// (no authenticated traffic within DeadAfter despite keepalive probes).
// It runs on the keepalive goroutine; implementations must not block.
type PeerDownHandler func(addr wire.Addr, identity ed25519.PublicKey)

// Errors returned by the Manager.
var (
	ErrNoPipe           = errors.New("pipe: no established pipe to destination")
	ErrHandshakeTimeout = errors.New("pipe: handshake timed out")
	ErrUnauthorized     = errors.New("pipe: peer rejected by authorization policy")
	ErrManagerClosed    = errors.New("pipe: manager closed")
)

// Config configures a Manager.
type Config struct {
	Transport netsim.Transport
	Identity  handshake.Identity
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Handler receives inbound packets; required for nodes that accept
	// traffic (unless BatchHandler is set).
	Handler PacketHandler
	// BatchHandler, when set, takes precedence over Handler: each decrypted
	// same-source run of a receive batch is delivered as one call, letting
	// the consumer amortize per-packet work (e.g. run-coalesced decision-
	// cache lookups) across the run. When nil, packets are delivered one at
	// a time through Handler.
	BatchHandler BatchPacketHandler
	// Authorize defaults to accept-all.
	Authorize AuthorizePeer
	// OnPeerUp is optional.
	OnPeerUp PeerUpHandler
	// OnPeerDown is notified when dead-peer detection removes a pipe.
	// Optional; only fires when KeepaliveInterval > 0.
	OnPeerDown PeerDownHandler
	// HandshakeTimeout is the retransmission interval of the FIRST msg1
	// attempt (default 250ms). Subsequent attempts back off exponentially
	// with jitter, capped at HandshakeBackoffMax.
	HandshakeTimeout time.Duration
	// HandshakeBackoffMax caps the per-attempt backoff (default
	// 8×HandshakeTimeout).
	HandshakeBackoffMax time.Duration
	// HandshakeRetries is the number of msg1 transmissions before giving
	// up (default 5).
	HandshakeRetries int
	// KeepaliveInterval, when nonzero, enables pipe liveness: a sealed
	// probe is sent on any pipe idle longer than the interval, and a pipe
	// with no authenticated inbound traffic for DeadAfter is torn down
	// (OnPeerDown fires, and with Reestablish set a fresh handshake is
	// attempted automatically).
	KeepaliveInterval time.Duration
	// DeadAfter is the idle window after which a peer is declared dead
	// (default 4×KeepaliveInterval).
	DeadAfter time.Duration
	// Reestablish re-handshakes dead peers automatically with capped
	// exponential backoff until the pipe is back or the manager closes.
	// The new pipe has a fresh master secret, so its key epochs restart.
	Reestablish bool
	// JitterSeed seeds the backoff-jitter RNG; 0 derives a per-node seed
	// from the local address, keeping simulations deterministic while
	// decorrelating retry times across nodes.
	JitterSeed int64
	// RxWorkers is the number of receive-pipeline workers inbound
	// datagrams are sharded onto by source address (default GOMAXPROCS).
	// With 1 worker every packet is processed inline on the receive
	// goroutine, matching the pre-sharding single-core pipeline.
	RxWorkers int
	// TxBatch caps the per-destination egress coalescing queue each worker
	// offers its PacketHandler: sends through the handler's Sender
	// accumulate and go out as one transport batch when the worker's input
	// drains (NAPI-style — a worker with nothing left to read flushes
	// immediately, so an idle node adds no latency) or when a destination
	// reaches the cap under backpressure. 0 selects the default (32); 1
	// disables coalescing and hands the handler the Manager directly.
	TxBatch int
	// Telemetry is the registry the manager's pipe_* instruments are
	// created in, normally the owning node's registry so pipe metrics
	// appear in the node's snapshot. Nil creates a private registry
	// (still readable via Stats()).
	Telemetry *telemetry.Registry
}

// DefaultTxBatch is the per-destination coalescing cap when Config.TxBatch
// is zero. It matches the transports' vectored-syscall batch sizing.
const DefaultTxBatch = 32

// PeerInfo reports the state of one established pipe.
type PeerInfo struct {
	Addr        wire.Addr
	Identity    ed25519.PublicKey
	Established time.Time
	TxPackets   uint64
	RxPackets   uint64
	TxBytes     uint64
	RxBytes     uint64
}

type peer struct {
	addr     wire.Addr
	identity ed25519.PublicKey
	crypto   *psp.PipeCrypto
	up       time.Time

	// Handshake-derived key material, retained so the pipe can be exported
	// to a sibling node during a drain (ExportPeer) without a fresh
	// handshake. Immutable after establish/import.
	master    cryptutil.Key
	initiator bool
	baseSPI   uint32

	txPackets atomic.Uint64
	rxPackets atomic.Uint64
	txBytes   atomic.Uint64
	rxBytes   atomic.Uint64
	// lastRx is the UnixNano timestamp of the last authenticated inbound
	// packet; keepalive liveness is judged against it.
	lastRx atomic.Int64
}

type pendingConn struct {
	hs   *handshake.Pending
	done chan struct{} // closed when the pipe (by any path) is up
	err  error
}

// peerMap is the copy-on-write peer table: readers load it atomically and
// never lock; writers clone it under Manager.mu.
type peerMap map[wire.Addr]*peer

// sealBuf bundles the reusable buffers for one in-flight send: the framed
// output packet and the PSP seal scratch.
type sealBuf struct {
	buf     []byte
	scratch psp.Scratch
}

// rxWorkerQueueDepth bounds each worker's backlog. A full queue blocks the
// receive loop (backpressure into the transport queue, which drops like a
// NIC would) rather than reordering or dropping here.
const rxWorkerQueueDepth = 512

// rxDispatchBatch caps how many queued datagrams a worker gathers before
// dispatching them as one batch. It matches the transports' vectored
// receive sizing, so one recvmmsg burst flows through one crypto pass.
const rxDispatchBatch = 32

// rxRun is a worker's reusable batch-dispatch scratch: the gathered
// datagrams, the per-run sealed bodies and open results, and the decoded
// packets handed to the batch handler.
type rxRun struct {
	dgs     []wire.Datagram
	bodies  [][]byte
	results []psp.OpenResult
	pkts    []RxPacket
}

// Stats aggregates manager-wide pipe metrics. It is a view over the
// manager's telemetry instruments (the pipe_* names in the node registry);
// each field is read atomically, but fields are not read at one common
// instant — see the telemetry package consistency contract.
type Stats struct {
	HandshakeAttempts uint64 // msg1 transmissions, including retries
	HandshakeFailures uint64 // Connect calls that exhausted their retries
	KeepalivesSent    uint64 // liveness probes transmitted
	KeepalivesRcvd    uint64 // probes answered for peers
	PeersLost         uint64 // pipes torn down by dead-peer detection
	Reestablished     uint64 // automatic re-handshakes that succeeded
	TxBatches         uint64 // egress coalescing flushes handed to the transport
	TxBatchedPackets  uint64 // packets sent through coalesced flushes
	TxFlushDrops      uint64 // packets a failing flush could not hand off
}

// Manager owns all pipes of one node.
type Manager struct {
	cfg   Config
	local wire.Addr
	telem *telemetry.Registry

	peers atomic.Pointer[peerMap]

	mu        sync.Mutex // guards pending, redialing, respCache, closed, and peer-map writes
	pending   map[wire.Addr]*pendingConn
	redialing map[wire.Addr]bool
	respCache map[wire.Addr]msg1Reply
	closed    bool

	retry *Backoff // handshake/redial backoff with deterministic jitter

	workers  []chan wire.Datagram
	sealBufs sync.Pool

	// Pipe metrics live in the node's telemetry registry; these handles
	// are the hot-path instruments (atomic counters, one histogram).
	handshakeAttempts *telemetry.Counter
	handshakeFailures *telemetry.Counter
	keepalivesSent    *telemetry.Counter
	keepalivesRcvd    *telemetry.Counter
	peersLost         *telemetry.Counter
	reestablished     *telemetry.Counter
	txBatches         *telemetry.Counter
	txBatchedPackets  *telemetry.Counter
	txFlushDrops      *telemetry.Counter
	flushBatchSize    *telemetry.Histogram
	rxOpenBatchSize   *telemetry.Histogram

	done chan struct{}
	wg   sync.WaitGroup
}

// New creates a Manager and starts its receive pipeline.
func New(cfg Config) (*Manager, error) {
	if cfg.Transport == nil {
		return nil, errors.New("pipe: Config.Transport is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Authorize == nil {
		cfg.Authorize = func(wire.Addr, ed25519.PublicKey) bool { return true }
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 250 * time.Millisecond
	}
	if cfg.HandshakeBackoffMax == 0 {
		cfg.HandshakeBackoffMax = 8 * cfg.HandshakeTimeout
	}
	if cfg.HandshakeRetries == 0 {
		cfg.HandshakeRetries = 5
	}
	if cfg.DeadAfter == 0 {
		cfg.DeadAfter = 4 * cfg.KeepaliveInterval
	}
	if cfg.RxWorkers == 0 {
		cfg.RxWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.RxWorkers < 1 {
		cfg.RxWorkers = 1
	}
	if cfg.TxBatch == 0 {
		cfg.TxBatch = DefaultTxBatch
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		// Derive a deterministic per-node seed so retry jitter is
		// reproducible in simulation yet decorrelated across nodes.
		b := cfg.Transport.LocalAddr().As16()
		seed = DeriveSeed(b[:])
	}
	m := &Manager{
		cfg:       cfg,
		local:     cfg.Transport.LocalAddr(),
		pending:   make(map[wire.Addr]*pendingConn),
		redialing: make(map[wire.Addr]bool),
		respCache: make(map[wire.Addr]msg1Reply),
		retry:     NewBackoff(cfg.HandshakeTimeout, cfg.HandshakeBackoffMax, seed),
		done:      make(chan struct{}),
	}
	empty := make(peerMap)
	m.peers.Store(&empty)
	m.sealBufs.New = func() any { return new(sealBuf) }
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m.telem = reg
	m.handshakeAttempts = reg.Counter("pipe_handshake_attempts_total")
	m.handshakeFailures = reg.Counter("pipe_handshake_failures_total")
	m.keepalivesSent = reg.Counter("pipe_keepalives_sent_total")
	m.keepalivesRcvd = reg.Counter("pipe_keepalives_rcvd_total")
	m.peersLost = reg.Counter("pipe_peers_lost_total")
	m.reestablished = reg.Counter("pipe_reestablished_total")
	m.txBatches = reg.Counter("pipe_tx_batches_total")
	m.txBatchedPackets = reg.Counter("pipe_tx_batched_packets_total")
	m.txFlushDrops = reg.Counter("pipe_tx_flush_drops_total")
	m.flushBatchSize = reg.Histogram("pipe_tx_flush_batch_size", telemetry.BatchBuckets)
	m.rxOpenBatchSize = reg.Histogram("pipe_rx_open_batch_size", telemetry.BatchBuckets)
	_ = reg.Register(telemetry.NewGaugeFunc("pipe_peers", func() int64 {
		return int64(len(*m.peers.Load()))
	}))
	if cfg.RxWorkers > 1 {
		m.workers = make([]chan wire.Datagram, cfg.RxWorkers)
		for i := range m.workers {
			ch := make(chan wire.Datagram, rxWorkerQueueDepth)
			m.workers[i] = ch
			m.wg.Add(1)
			go m.runWorker(ch)
		}
	}
	m.wg.Add(1)
	go m.receiveLoop()
	if cfg.KeepaliveInterval > 0 {
		m.wg.Add(1)
		go m.keepaliveLoop()
	}
	return m, nil
}

// LocalAddr returns the node's address.
func (m *Manager) LocalAddr() wire.Addr { return m.local }

// Identity returns the node's identity.
func (m *Manager) Identity() handshake.Identity { return m.cfg.Identity }

// RxWorkers returns the effective receive-pipeline width.
func (m *Manager) RxWorkers() int { return m.cfg.RxWorkers }

// Telemetry returns the registry holding the manager's pipe_* instruments
// (the one supplied in Config.Telemetry, or the private default).
func (m *Manager) Telemetry() *telemetry.Registry { return m.telem }

// shardFor maps a source address onto a worker index, so one peer's traffic
// always lands on one worker. It uses the shared wire.ShardIndex hash, the
// same one a source-affine decision cache shards by: when the cache is
// created with as many shards as there are RX workers, the worker that
// handles a source owns that source's cache shard exclusively.
func shardFor(src wire.Addr, n int) int {
	return wire.ShardIndex(src, n)
}

func (m *Manager) receiveLoop() {
	defer m.wg.Done()
	n := len(m.workers)
	if n == 0 {
		// Single-worker pipeline: process inline with the same adaptive
		// egress coalescing the sharded workers get.
		m.consume(m.cfg.Transport.Receive())
		return
	}
	for dg := range m.cfg.Transport.Receive() {
		if len(dg.Payload) < 1 {
			continue
		}
		m.workers[shardFor(dg.Src, n)] <- dg
	}
	for _, ch := range m.workers {
		close(ch)
	}
}

func (m *Manager) runWorker(ch chan wire.Datagram) {
	defer m.wg.Done()
	m.consume(ch)
}

// consume is the body every receive worker runs: gather whatever the input
// channel has ready (up to rxDispatchBatch), push the whole batch through
// one crypto pass, and let egress coalesce while more input is immediately
// available. The flush policy is NAPI-style adaptive — the inner drain loop
// keeps gathering and dispatching as long as the channel has a datagram
// ready, and the coalescer flushes the moment it does not. At low load every
// packet therefore flushes before the worker blocks again (no added
// latency); under backpressure receive batches grow toward rxDispatchBatch
// and egress batches toward the per-destination cap.
func (m *Manager) consume(ch <-chan wire.Datagram) {
	var scratch psp.Scratch
	var rb rxRun
	var tx Sender = m
	var eg *egress
	if m.cfg.TxBatch > 1 {
		eg = m.newEgress()
		tx = eg
	}
	for {
		dg, ok := <-ch
		if !ok {
			return
		}
		rb.dgs = append(rb.dgs[:0], dg)
		closed := false
	drain:
		for {
			select {
			case dg, ok = <-ch:
				if !ok {
					closed = true
					break drain
				}
				rb.dgs = append(rb.dgs, dg)
				if len(rb.dgs) >= rxDispatchBatch {
					m.dispatchBatch(tx, &rb, &scratch)
					rb.dgs = rb.dgs[:0]
				}
			default:
				break drain
			}
		}
		if len(rb.dgs) > 0 {
			m.dispatchBatch(tx, &rb, &scratch)
			rb.dgs = rb.dgs[:0]
		}
		if eg != nil {
			eg.flushAll()
		}
		if closed {
			return
		}
	}
}

// dispatchBatch walks one gathered batch in arrival order: handshake frames
// are handled inline, and each maximal run of consecutive ILP datagrams
// from one source is opened and delivered as a unit.
func (m *Manager) dispatchBatch(tx Sender, rb *rxRun, scratch *psp.Scratch) {
	dgs := rb.dgs
	for i := 0; i < len(dgs); {
		if len(dgs[i].Payload) < 1 {
			i++
			continue
		}
		switch wire.FrameType(dgs[i].Payload[0]) {
		case wire.FrameHandshake1:
			m.handleMsg1(dgs[i].Src, dgs[i].Payload[1:])
			i++
		case wire.FrameHandshake2:
			m.handleMsg2(dgs[i].Src, dgs[i].Payload[1:])
			i++
		case wire.FrameILP:
			j := i + 1
			for j < len(dgs) && dgs[j].Src == dgs[i].Src &&
				len(dgs[j].Payload) >= 1 &&
				wire.FrameType(dgs[j].Payload[0]) == wire.FrameILP {
				j++
			}
			m.handleILPRun(tx, dgs[i].Src, dgs[i:j], rb, scratch)
			i = j
		default:
			i++
		}
	}
}

// handleILPRun opens one same-source run of sealed ILP packets with a
// single OpenBatch pass and delivers the survivors — through BatchHandler
// as one call when configured, else per packet through Handler. Per-packet
// failures (auth, replay, truncation) drop only the offending packet.
func (m *Manager) handleILPRun(tx Sender, src wire.Addr, dgs []wire.Datagram, rb *rxRun, scratch *psp.Scratch) {
	p := m.peer(src)
	if p == nil {
		return
	}
	n := len(dgs)
	m.rxOpenBatchSize.Observe(uint64(n))
	bodies := rb.bodies[:0]
	for k := 0; k < n; k++ {
		bodies = append(bodies, dgs[k].Payload[1:])
	}
	rb.bodies = bodies
	if cap(rb.results) < n {
		rb.results = make([]psp.OpenResult, n)
	}
	results := rb.results[:n]
	p.crypto.RX.OpenBatch(scratch, bodies, results)
	var okPkts, okBytes uint64
	pkts := rb.pkts[:0]
	for k := 0; k < n; k++ {
		if results[k].Err != nil {
			continue
		}
		okPkts++
		okBytes += uint64(len(bodies[k]))
		var hdr wire.ILPHeader
		if _, err := hdr.DecodeFromBytes(results[k].Hdr); err != nil {
			continue
		}
		switch hdr.Service {
		case wire.SvcPipeProbe:
			// Liveness probe: answer through the pipe so the ack proves we
			// still hold the keys. Never dispatched to the handler.
			m.keepalivesRcvd.Add(1)
			ack := wire.ILPHeader{Service: wire.SvcPipeProbeAck, Conn: hdr.Conn}
			_ = m.Send(src, &ack, nil)
			continue
		case wire.SvcPipeProbeAck:
			continue // lastRx refreshed below with the rest of the run
		}
		pkts = append(pkts, RxPacket{Hdr: hdr, HdrRaw: results[k].Hdr, Payload: results[k].Payload})
	}
	rb.pkts = pkts
	if okPkts > 0 {
		p.rxPackets.Add(okPkts)
		p.rxBytes.Add(okBytes)
		if m.cfg.KeepaliveInterval > 0 {
			p.lastRx.Store(m.cfg.Clock.Now().UnixNano())
		}
	}
	if len(pkts) == 0 {
		return
	}
	if m.cfg.BatchHandler != nil {
		m.cfg.BatchHandler(tx, src, pkts)
		return
	}
	if m.cfg.Handler != nil {
		for k := range pkts {
			m.cfg.Handler(tx, src, pkts[k].Hdr, pkts[k].HdrRaw, pkts[k].Payload)
		}
	}
}

// msg1Reply caches the responder's answer to the most recent msg1 from one
// peer, keyed by a digest of the msg1 body. Initiators retransmit msg1 on a
// timer until msg2 arrives, so the responder routinely sees the same msg1
// more than once. Running handshake.Respond again for a retransmission
// would draw a fresh ephemeral — new keys — and re-establish the pipe with
// a secret the initiator never learns (the initiator drops any msg2 after
// its first Complete), silently poisoning a pipe the first exchange already
// brought up. The cache makes msg1 idempotent: a repeat gets the identical
// msg2 back (covering a lost msg2) and leaves the established keys alone. A
// msg1 with a new digest is a fresh handshake attempt (e.g. peer restart)
// and replaces the entry.
type msg1Reply struct {
	digest [sha256.Size]byte
	msg2   []byte
}

func (m *Manager) handleMsg1(src wire.Addr, body []byte) {
	digest := sha256.Sum256(body)
	m.mu.Lock()
	// Simultaneous open: if we have a pending handshake to src and our
	// address is lower, we are the designated initiator — ignore their
	// msg1; they will answer ours.
	if _, isPending := m.pending[src]; isPending && m.local.Less(src) {
		m.mu.Unlock()
		return
	}
	if prev, ok := m.respCache[src]; ok && prev.digest == digest {
		m.mu.Unlock()
		_ = m.cfg.Transport.Send(wire.Datagram{Dst: src, Payload: prev.msg2})
		return
	}
	m.mu.Unlock()

	msg2, res, err := handshake.Respond(m.cfg.Identity, m.local, src, body)
	if err != nil {
		return // malformed or forged; drop silently like any bad packet
	}
	if !m.cfg.Authorize(src, res.PeerIdentity) {
		return
	}
	out := append([]byte{byte(wire.FrameHandshake2)}, msg2...)
	if err := m.cfg.Transport.Send(wire.Datagram{Dst: src, Payload: out}); err != nil {
		return
	}
	m.mu.Lock()
	m.respCache[src] = msg1Reply{digest: digest, msg2: out}
	m.mu.Unlock()
	m.establish(src, res)
}

func (m *Manager) handleMsg2(src wire.Addr, body []byte) {
	m.mu.Lock()
	pc, ok := m.pending[src]
	m.mu.Unlock()
	if !ok {
		return
	}
	res, err := pc.hs.Complete(body)
	if err != nil {
		return
	}
	if !m.cfg.Authorize(src, res.PeerIdentity) {
		m.mu.Lock()
		if m.pending[src] == pc {
			delete(m.pending, src)
			pc.err = ErrUnauthorized
			close(pc.done)
		}
		m.mu.Unlock()
		return
	}
	m.establish(src, res)
}

// peer returns the established peer for addr from the copy-on-write table,
// or nil. Lock-free: the data-path readers never contend with each other.
func (m *Manager) peer(addr wire.Addr) *peer {
	return (*m.peers.Load())[addr]
}

// setPeer clones the peer table with addr set (p != nil) or removed
// (p == nil). Must be called with m.mu held.
func (m *Manager) setPeer(addr wire.Addr, p *peer) {
	old := *m.peers.Load()
	next := make(peerMap, len(old)+1)
	for a, v := range old {
		next[a] = v
	}
	if p == nil {
		delete(next, addr)
	} else {
		next[addr] = p
	}
	m.peers.Store(&next)
}

// establish installs the pipe and wakes any Connect waiters.
func (m *Manager) establish(addr wire.Addr, res *handshake.Result) {
	crypto, err := psp.NewPipeCrypto(res.Master, res.Initiator, res.BaseSPI)
	if err != nil {
		return
	}
	p := &peer{
		addr:      addr,
		identity:  res.PeerIdentity,
		crypto:    crypto,
		up:        m.cfg.Clock.Now(),
		master:    res.Master,
		initiator: res.Initiator,
		baseSPI:   res.BaseSPI,
	}
	p.lastRx.Store(p.up.UnixNano())
	m.mu.Lock()
	m.setPeer(addr, p)
	if pc, ok := m.pending[addr]; ok {
		delete(m.pending, addr)
		close(pc.done)
	}
	m.mu.Unlock()
	if m.cfg.OnPeerUp != nil {
		m.cfg.OnPeerUp(addr, res.PeerIdentity)
	}
}

// keepaliveLoop probes idle pipes and tears down dead ones. It ticks at
// half the keepalive interval on the configured clock, so a Manual clock
// drives liveness deterministically in tests.
func (m *Manager) keepaliveLoop() {
	defer m.wg.Done()
	tick := m.cfg.KeepaliveInterval / 2
	if tick <= 0 {
		tick = m.cfg.KeepaliveInterval
	}
	for {
		select {
		case <-m.done:
			return
		case <-m.cfg.Clock.After(tick):
		}
		now := m.cfg.Clock.Now()
		for addr, p := range *m.peers.Load() {
			idle := now.Sub(time.Unix(0, p.lastRx.Load()))
			switch {
			case idle >= m.cfg.DeadAfter:
				m.peerDead(addr, p)
			case idle >= m.cfg.KeepaliveInterval:
				m.keepalivesSent.Add(1)
				probe := wire.ILPHeader{Service: wire.SvcPipeProbe}
				_ = m.Send(addr, &probe, nil)
			}
		}
	}
}

// peerDead removes a pipe that failed liveness, notifies OnPeerDown, and
// (when configured) starts the automatic re-establishment loop.
func (m *Manager) peerDead(addr wire.Addr, p *peer) {
	m.mu.Lock()
	if m.peer(addr) != p {
		// Already replaced or removed by a concurrent path.
		m.mu.Unlock()
		return
	}
	m.setPeer(addr, nil)
	m.mu.Unlock()
	m.peersLost.Add(1)
	if m.cfg.OnPeerDown != nil {
		m.cfg.OnPeerDown(addr, p.identity)
	}
	if m.cfg.Reestablish {
		m.reestablishAsync(addr)
	}
}

// reestablishAsync starts (at most one) background re-handshake loop for
// addr.
func (m *Manager) reestablishAsync(addr wire.Addr) {
	m.mu.Lock()
	if m.closed || m.redialing[addr] {
		m.mu.Unlock()
		return
	}
	m.redialing[addr] = true
	m.wg.Add(1)
	m.mu.Unlock()
	go m.reestablish(addr)
}

// reestablish re-handshakes addr with capped exponential backoff between
// rounds until the pipe is up (by any path) or the manager closes. The
// fresh handshake derives a new master secret, so the re-established
// pipe's key epochs restart from zero.
func (m *Manager) reestablish(addr wire.Addr) {
	defer m.wg.Done()
	defer func() {
		m.mu.Lock()
		delete(m.redialing, addr)
		m.mu.Unlock()
	}()
	for round := 0; ; round++ {
		if m.HasPeer(addr) {
			m.reestablished.Add(1)
			return
		}
		err := m.Connect(addr)
		if err == nil {
			m.reestablished.Add(1)
			return
		}
		if errors.Is(err, ErrManagerClosed) {
			return
		}
		// Each Connect already retried with backoff; wait a further
		// jittered max-backoff round before trying again so a long
		// partition doesn't turn into a handshake flood.
		select {
		case <-m.cfg.Clock.After(m.jitter(m.cfg.HandshakeBackoffMax)):
		case <-m.done:
			return
		}
	}
}

// backoff returns the jittered wait after handshake attempt number
// attempt (0-based): HandshakeTimeout doubled per attempt, capped at
// HandshakeBackoffMax, then jittered to [d/2, d).
func (m *Manager) backoff(attempt int) time.Duration {
	return m.retry.Attempt(attempt)
}

// jitter maps d onto a uniformly random duration in [d/2, d).
func (m *Manager) jitter(d time.Duration) time.Duration {
	return m.retry.Jitter(d)
}

// Stats returns a snapshot of manager-wide pipe metrics.
func (m *Manager) Stats() Stats {
	return Stats{
		HandshakeAttempts: m.handshakeAttempts.Load(),
		HandshakeFailures: m.handshakeFailures.Load(),
		KeepalivesSent:    m.keepalivesSent.Load(),
		KeepalivesRcvd:    m.keepalivesRcvd.Load(),
		PeersLost:         m.peersLost.Load(),
		Reestablished:     m.reestablished.Load(),
		TxBatches:         m.txBatches.Load(),
		TxBatchedPackets:  m.txBatchedPackets.Load(),
		TxFlushDrops:      m.txFlushDrops.Load(),
	}
}

// Connect establishes (or returns) a pipe to addr, blocking until the
// handshake completes or times out.
func (m *Manager) Connect(addr wire.Addr) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrManagerClosed
	}
	if m.peer(addr) != nil {
		m.mu.Unlock()
		return nil
	}
	if pc, ok := m.pending[addr]; ok {
		m.mu.Unlock()
		<-pc.done
		return pc.err
	}
	hs, err := handshake.Initiate(m.cfg.Identity, m.local, addr)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	pc := &pendingConn{hs: hs, done: make(chan struct{})}
	m.pending[addr] = pc
	m.mu.Unlock()

	msg1 := append([]byte{byte(wire.FrameHandshake1)}, hs.Msg1()...)
	for attempt := 0; attempt < m.cfg.HandshakeRetries; attempt++ {
		m.handshakeAttempts.Add(1)
		if err := m.cfg.Transport.Send(wire.Datagram{Dst: addr, Payload: msg1}); err != nil {
			// Keep retrying: the peer may attach shortly (e.g. SN restart).
			if errors.Is(err, netsim.ErrClosed) {
				m.failPending(addr, pc, err)
				return err
			}
		}
		// Exponential backoff with jitter between retransmissions, so a
		// crowd of nodes re-dialing a recovered peer doesn't synchronize
		// into repeated handshake bursts.
		select {
		case <-pc.done:
			return pc.err
		case <-m.cfg.Clock.After(m.backoff(attempt)):
		case <-m.done:
			m.failPending(addr, pc, ErrManagerClosed)
			return ErrManagerClosed
		}
	}
	m.failPending(addr, pc, ErrHandshakeTimeout)
	if pc.err != nil {
		m.handshakeFailures.Add(1)
	}
	return pc.err
}

func (m *Manager) failPending(addr wire.Addr, pc *pendingConn, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := m.pending[addr]; ok && cur == pc {
		delete(m.pending, addr)
		pc.err = err
		close(pc.done)
	}
	// If the pipe came up concurrently (pc.done already closed by
	// establish), pc.err stays nil and callers see success.
}

// HasPeer reports whether a pipe to addr is established.
func (m *Manager) HasPeer(addr wire.Addr) bool {
	return m.peer(addr) != nil
}

// Peers lists established pipes.
func (m *Manager) Peers() []PeerInfo {
	pm := *m.peers.Load()
	out := make([]PeerInfo, 0, len(pm))
	for _, p := range pm {
		out = append(out, PeerInfo{
			Addr: p.addr, Identity: p.identity, Established: p.up,
			TxPackets: p.txPackets.Load(), RxPackets: p.rxPackets.Load(),
			TxBytes: p.txBytes.Load(), RxBytes: p.rxBytes.Load(),
		})
	}
	return out
}

// PeerIdentity returns the verified identity of an established peer.
func (m *Manager) PeerIdentity(addr wire.Addr) (ed25519.PublicKey, bool) {
	p := m.peer(addr)
	if p == nil {
		return nil, false
	}
	return p.identity, true
}

// Send encodes hdr and sends it with payload over the pipe to dst.
func (m *Manager) Send(dst wire.Addr, hdr *wire.ILPHeader, payload []byte) error {
	enc, err := hdr.Encode()
	if err != nil {
		return err
	}
	return m.SendHeaderBytes(dst, enc, payload)
}

// SendHeaderBytes sends an already-encoded ILP header with payload over the
// pipe to dst. This is the forwarding fast path used by the pipe-terminus,
// which re-seals decrypted header bytes without re-parsing them. The framed
// output packet is built in a pooled buffer, so the steady state performs
// no allocations beyond the transport's own datagram copy.
func (m *Manager) SendHeaderBytes(dst wire.Addr, hdrBytes, payload []byte) error {
	p := m.peer(dst)
	if p == nil {
		return fmt.Errorf("%w: %s", ErrNoPipe, dst)
	}
	sb := m.sealBufs.Get().(*sealBuf)
	buf := append(sb.buf[:0], byte(wire.FrameILP))
	sealed, err := p.crypto.TX.SealScratch(&sb.scratch, buf, hdrBytes, payload)
	if err != nil {
		sb.buf = buf
		m.sealBufs.Put(sb)
		return err
	}
	// Transports must not retain dg.Payload after Send returns (netsim
	// copies it into the receiver's queue; UDP encodes before writing), so
	// the buffer can go straight back into the pool.
	err = m.cfg.Transport.Send(wire.Datagram{Dst: dst, Payload: sealed})
	n := len(sealed)
	sb.buf = sealed
	m.sealBufs.Put(sb)
	if err != nil {
		return err
	}
	p.txPackets.Add(1)
	p.txBytes.Add(uint64(n))
	return nil
}

// RotateAll advances the sending key epoch on every pipe (§4 key rotation).
func (m *Manager) RotateAll() error {
	for _, p := range *m.peers.Load() {
		if err := p.crypto.TX.Rotate(); err != nil {
			return err
		}
	}
	return nil
}

// DropPeer tears down the pipe to addr (used by failure-injection tests
// and by Redial).
func (m *Manager) DropPeer(addr wire.Addr) {
	m.mu.Lock()
	m.setPeer(addr, nil)
	m.mu.Unlock()
}

// Redial discards any existing pipe state for addr and performs a fresh
// handshake. Use when the peer restarted: its old pipe keys are gone, so
// traffic sealed with the previous master secret would be dropped.
func (m *Manager) Redial(addr wire.Addr) error {
	m.DropPeer(addr)
	return m.Connect(addr)
}

// Close shuts down the manager and its transport.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for addr, pc := range m.pending {
		pc.err = ErrManagerClosed
		close(pc.done)
		delete(m.pending, addr)
	}
	m.mu.Unlock()
	close(m.done)
	err := m.cfg.Transport.Close()
	m.wg.Wait()
	return err
}
