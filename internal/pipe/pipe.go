// Package pipe manages ILP pipes: the long-lived, handshake-keyed,
// PSP-encrypted point-to-point channels between hosts and SNs and between
// SNs (§3.1 "Host-to-SN Pipes", "SN-to-SN Pipe"). A Manager owns one
// transport attachment and all pipes radiating from it; both the host stack
// and the SN pipe-terminus are built on top of it.
//
// The Manager handles:
//   - handshake initiation, response, retransmission, and simultaneous-open
//     tie-breaking (the numerically lower address acts as initiator);
//   - per-peer PSP seal/open state and epoch rotation;
//   - dispatch of decrypted (header, payload) pairs to a PacketHandler.
//
// The PacketHandler runs on the manager's single receive goroutine; callers
// needing concurrency (e.g. the SN module runtime) hand off internally.
package pipe

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"time"

	"interedge/internal/clock"
	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/psp"
	"interedge/internal/wire"
)

// PacketHandler receives every decrypted inbound ILP packet. hdr.Data and
// payload alias internal buffers and must be copied if retained.
type PacketHandler func(src wire.Addr, hdr wire.ILPHeader, payload []byte)

// AuthorizePeer decides whether to accept a pipe with the given peer. It is
// consulted on both initiation and response.
type AuthorizePeer func(addr wire.Addr, identity ed25519.PublicKey) bool

// PeerUpHandler is notified when a pipe becomes established.
type PeerUpHandler func(addr wire.Addr, identity ed25519.PublicKey)

// Errors returned by the Manager.
var (
	ErrNoPipe           = errors.New("pipe: no established pipe to destination")
	ErrHandshakeTimeout = errors.New("pipe: handshake timed out")
	ErrUnauthorized     = errors.New("pipe: peer rejected by authorization policy")
	ErrManagerClosed    = errors.New("pipe: manager closed")
)

// Config configures a Manager.
type Config struct {
	Transport netsim.Transport
	Identity  handshake.Identity
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Handler receives inbound packets; required for nodes that accept
	// traffic.
	Handler PacketHandler
	// Authorize defaults to accept-all.
	Authorize AuthorizePeer
	// OnPeerUp is optional.
	OnPeerUp PeerUpHandler
	// HandshakeTimeout is the per-attempt retransmission interval
	// (default 250ms).
	HandshakeTimeout time.Duration
	// HandshakeRetries is the number of msg1 transmissions before giving
	// up (default 5).
	HandshakeRetries int
}

// PeerInfo reports the state of one established pipe.
type PeerInfo struct {
	Addr        wire.Addr
	Identity    ed25519.PublicKey
	Established time.Time
	TxPackets   uint64
	RxPackets   uint64
	TxBytes     uint64
	RxBytes     uint64
}

type peer struct {
	addr     wire.Addr
	identity ed25519.PublicKey
	crypto   *psp.PipeCrypto
	up       time.Time

	mu        sync.Mutex
	txPackets uint64
	rxPackets uint64
	txBytes   uint64
	rxBytes   uint64
}

type pendingConn struct {
	hs   *handshake.Pending
	done chan struct{} // closed when the pipe (by any path) is up
	err  error
}

// Manager owns all pipes of one node.
type Manager struct {
	cfg   Config
	local wire.Addr

	mu      sync.Mutex
	peers   map[wire.Addr]*peer
	pending map[wire.Addr]*pendingConn
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup
}

// New creates a Manager and starts its receive loop.
func New(cfg Config) (*Manager, error) {
	if cfg.Transport == nil {
		return nil, errors.New("pipe: Config.Transport is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Authorize == nil {
		cfg.Authorize = func(wire.Addr, ed25519.PublicKey) bool { return true }
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 250 * time.Millisecond
	}
	if cfg.HandshakeRetries == 0 {
		cfg.HandshakeRetries = 5
	}
	m := &Manager{
		cfg:     cfg,
		local:   cfg.Transport.LocalAddr(),
		peers:   make(map[wire.Addr]*peer),
		pending: make(map[wire.Addr]*pendingConn),
		done:    make(chan struct{}),
	}
	m.wg.Add(1)
	go m.receiveLoop()
	return m, nil
}

// LocalAddr returns the node's address.
func (m *Manager) LocalAddr() wire.Addr { return m.local }

// Identity returns the node's identity.
func (m *Manager) Identity() handshake.Identity { return m.cfg.Identity }

func (m *Manager) receiveLoop() {
	defer m.wg.Done()
	for dg := range m.cfg.Transport.Receive() {
		if len(dg.Payload) < 1 {
			continue
		}
		frame := wire.FrameType(dg.Payload[0])
		body := dg.Payload[1:]
		switch frame {
		case wire.FrameHandshake1:
			m.handleMsg1(dg.Src, body)
		case wire.FrameHandshake2:
			m.handleMsg2(dg.Src, body)
		case wire.FrameILP:
			m.handleILP(dg.Src, body)
		}
	}
}

func (m *Manager) handleMsg1(src wire.Addr, body []byte) {
	m.mu.Lock()
	// Simultaneous open: if we have a pending handshake to src and our
	// address is lower, we are the designated initiator — ignore their
	// msg1; they will answer ours.
	if _, isPending := m.pending[src]; isPending && m.local.Less(src) {
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()

	msg2, res, err := handshake.Respond(m.cfg.Identity, m.local, src, body)
	if err != nil {
		return // malformed or forged; drop silently like any bad packet
	}
	if !m.cfg.Authorize(src, res.PeerIdentity) {
		return
	}
	out := append([]byte{byte(wire.FrameHandshake2)}, msg2...)
	if err := m.cfg.Transport.Send(wire.Datagram{Dst: src, Payload: out}); err != nil {
		return
	}
	m.establish(src, res)
}

func (m *Manager) handleMsg2(src wire.Addr, body []byte) {
	m.mu.Lock()
	pc, ok := m.pending[src]
	m.mu.Unlock()
	if !ok {
		return
	}
	res, err := pc.hs.Complete(body)
	if err != nil {
		return
	}
	if !m.cfg.Authorize(src, res.PeerIdentity) {
		m.mu.Lock()
		if m.pending[src] == pc {
			delete(m.pending, src)
			pc.err = ErrUnauthorized
			close(pc.done)
		}
		m.mu.Unlock()
		return
	}
	m.establish(src, res)
}

// establish installs the pipe and wakes any Connect waiters.
func (m *Manager) establish(addr wire.Addr, res *handshake.Result) {
	crypto, err := psp.NewPipeCrypto(res.Master, res.Initiator, res.BaseSPI)
	if err != nil {
		return
	}
	p := &peer{
		addr:     addr,
		identity: res.PeerIdentity,
		crypto:   crypto,
		up:       m.cfg.Clock.Now(),
	}
	m.mu.Lock()
	m.peers[addr] = p
	if pc, ok := m.pending[addr]; ok {
		delete(m.pending, addr)
		close(pc.done)
	}
	m.mu.Unlock()
	if m.cfg.OnPeerUp != nil {
		m.cfg.OnPeerUp(addr, res.PeerIdentity)
	}
}

func (m *Manager) handleILP(src wire.Addr, body []byte) {
	m.mu.Lock()
	p, ok := m.peers[src]
	m.mu.Unlock()
	if !ok {
		return
	}
	hdrBytes, payload, err := p.crypto.RX.Open(body)
	if err != nil {
		return
	}
	p.mu.Lock()
	p.rxPackets++
	p.rxBytes += uint64(len(body))
	p.mu.Unlock()
	var hdr wire.ILPHeader
	if _, err := hdr.DecodeFromBytes(hdrBytes); err != nil {
		return
	}
	if m.cfg.Handler != nil {
		m.cfg.Handler(src, hdr, payload)
	}
}

// Connect establishes (or returns) a pipe to addr, blocking until the
// handshake completes or times out.
func (m *Manager) Connect(addr wire.Addr) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrManagerClosed
	}
	if _, ok := m.peers[addr]; ok {
		m.mu.Unlock()
		return nil
	}
	if pc, ok := m.pending[addr]; ok {
		m.mu.Unlock()
		<-pc.done
		return pc.err
	}
	hs, err := handshake.Initiate(m.cfg.Identity, m.local, addr)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	pc := &pendingConn{hs: hs, done: make(chan struct{})}
	m.pending[addr] = pc
	m.mu.Unlock()

	msg1 := append([]byte{byte(wire.FrameHandshake1)}, hs.Msg1()...)
	for attempt := 0; attempt < m.cfg.HandshakeRetries; attempt++ {
		if err := m.cfg.Transport.Send(wire.Datagram{Dst: addr, Payload: msg1}); err != nil {
			// Keep retrying: the peer may attach shortly (e.g. SN restart).
			if errors.Is(err, netsim.ErrClosed) {
				m.failPending(addr, pc, err)
				return err
			}
		}
		select {
		case <-pc.done:
			return pc.err
		case <-m.cfg.Clock.After(m.cfg.HandshakeTimeout):
		case <-m.done:
			m.failPending(addr, pc, ErrManagerClosed)
			return ErrManagerClosed
		}
	}
	m.failPending(addr, pc, ErrHandshakeTimeout)
	return pc.err
}

func (m *Manager) failPending(addr wire.Addr, pc *pendingConn, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := m.pending[addr]; ok && cur == pc {
		delete(m.pending, addr)
		pc.err = err
		close(pc.done)
	}
	// If the pipe came up concurrently (pc.done already closed by
	// establish), pc.err stays nil and callers see success.
}

// HasPeer reports whether a pipe to addr is established.
func (m *Manager) HasPeer(addr wire.Addr) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.peers[addr]
	return ok
}

// Peers lists established pipes.
func (m *Manager) Peers() []PeerInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerInfo, 0, len(m.peers))
	for _, p := range m.peers {
		p.mu.Lock()
		out = append(out, PeerInfo{
			Addr: p.addr, Identity: p.identity, Established: p.up,
			TxPackets: p.txPackets, RxPackets: p.rxPackets,
			TxBytes: p.txBytes, RxBytes: p.rxBytes,
		})
		p.mu.Unlock()
	}
	return out
}

// PeerIdentity returns the verified identity of an established peer.
func (m *Manager) PeerIdentity(addr wire.Addr) (ed25519.PublicKey, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[addr]
	if !ok {
		return nil, false
	}
	return p.identity, true
}

// Send encodes hdr and sends it with payload over the pipe to dst.
func (m *Manager) Send(dst wire.Addr, hdr *wire.ILPHeader, payload []byte) error {
	enc, err := hdr.Encode()
	if err != nil {
		return err
	}
	return m.SendHeaderBytes(dst, enc, payload)
}

// SendHeaderBytes sends an already-encoded ILP header with payload over the
// pipe to dst. This is the forwarding fast path used by the pipe-terminus,
// which re-seals decrypted header bytes without re-parsing them.
func (m *Manager) SendHeaderBytes(dst wire.Addr, hdrBytes, payload []byte) error {
	m.mu.Lock()
	p, ok := m.peers[dst]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoPipe, dst)
	}
	buf := make([]byte, 1, 1+psp.SealedSize(len(hdrBytes), len(payload)))
	buf[0] = byte(wire.FrameILP)
	sealed, err := p.crypto.TX.Seal(buf, hdrBytes, payload)
	if err != nil {
		return err
	}
	if err := m.cfg.Transport.Send(wire.Datagram{Dst: dst, Payload: sealed}); err != nil {
		return err
	}
	p.mu.Lock()
	p.txPackets++
	p.txBytes += uint64(len(sealed))
	p.mu.Unlock()
	return nil
}

// RotateAll advances the sending key epoch on every pipe (§4 key rotation).
func (m *Manager) RotateAll() error {
	m.mu.Lock()
	peers := make([]*peer, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	m.mu.Unlock()
	for _, p := range peers {
		if err := p.crypto.TX.Rotate(); err != nil {
			return err
		}
	}
	return nil
}

// DropPeer tears down the pipe to addr (used by failure-injection tests
// and by Redial).
func (m *Manager) DropPeer(addr wire.Addr) {
	m.mu.Lock()
	delete(m.peers, addr)
	m.mu.Unlock()
}

// Redial discards any existing pipe state for addr and performs a fresh
// handshake. Use when the peer restarted: its old pipe keys are gone, so
// traffic sealed with the previous master secret would be dropped.
func (m *Manager) Redial(addr wire.Addr) error {
	m.DropPeer(addr)
	return m.Connect(addr)
}

// Close shuts down the manager and its transport.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for addr, pc := range m.pending {
		pc.err = ErrManagerClosed
		close(pc.done)
		delete(m.pending, addr)
	}
	m.mu.Unlock()
	close(m.done)
	err := m.cfg.Transport.Close()
	m.wg.Wait()
	return err
}
