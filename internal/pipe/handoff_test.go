package pipe

import (
	"errors"
	"testing"
	"time"

	"interedge/internal/netsim"
	"interedge/internal/wire"
)

func waitRx(t *testing.T, n *node, want string) received {
	t.Helper()
	select {
	case got := <-n.rx:
		if string(got.payload) != want {
			t.Fatalf("payload %q, want %q", got.payload, want)
		}
		return got
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %q", want)
		panic("unreachable")
	}
}

// TestExportImportRebind walks the full handoff dance: SN A exports its
// established pipe with host H, SN B imports it, H rebinds to B, and
// traffic flows both ways on B without any fresh handshake on either side.
func TestExportImportRebind(t *testing.T) {
	net := netsim.NewNetwork()
	snA := newNode(t, net, "fd00::a")
	snB := newNode(t, net, "fd00::b")
	host := newNode(t, net, "fd00::1:1")

	if err := snA.mgr.Connect(host.addr); err != nil {
		t.Fatal(err)
	}
	// Traffic and a rotation first, so the handoff moves non-zero epochs.
	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 1}
	if err := snA.mgr.Send(host.addr, &hdr, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	waitRx(t, host, "pre")
	if err := snA.mgr.RotateAll(); err != nil {
		t.Fatal(err)
	}
	if err := host.mgr.Send(snA.addr, &hdr, []byte("up")); err != nil {
		t.Fatal(err)
	}
	waitRx(t, snA, "up")

	state, err := snA.mgr.ExportPeer(host.addr)
	if err != nil {
		t.Fatal(err)
	}
	if state.Addr != host.addr || state.TxEpoch != 1 {
		t.Fatalf("exported state %+v, want host addr and TxEpoch 1", state)
	}
	baseAttempts := snB.mgr.Stats().HandshakeAttempts

	if err := snB.mgr.ImportPeer(state); err != nil {
		t.Fatal(err)
	}
	if !snB.mgr.HasPeer(host.addr) {
		t.Fatal("importer has no peer after ImportPeer")
	}
	// Host rebinds its end from A to B (what SvcPipeMove triggers).
	if err := host.mgr.RebindPeer(snA.addr, snB.addr); err != nil {
		t.Fatal(err)
	}
	if host.mgr.HasPeer(snA.addr) {
		t.Fatal("host still has a pipe to the drained SN")
	}

	// Both directions work on the moved pipe.
	if err := snB.mgr.Send(host.addr, &hdr, []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	waitRx(t, host, "from-b")
	if err := host.mgr.Send(snB.addr, &hdr, []byte("to-b")); err != nil {
		t.Fatal(err)
	}
	waitRx(t, snB, "to-b")

	if got := snB.mgr.Stats().HandshakeAttempts; got != baseAttempts {
		t.Fatalf("importer sent %d handshake attempts during handoff, want 0", got-baseAttempts)
	}
	id, ok := snB.mgr.PeerIdentity(host.addr)
	if !ok || !id.Equal(host.mgr.Identity().PublicKey()) {
		t.Fatal("imported pipe lost the host's verified identity")
	}
}

// TestImportPeerNeverClobbers pins the race-convergence rule: a concurrent
// full handshake beats an in-flight handoff, so an import against an
// existing peer must refuse and leave the established keys alone.
func TestImportPeerNeverClobbers(t *testing.T) {
	net := netsim.NewNetwork()
	snA := newNode(t, net, "fd00::a")
	snB := newNode(t, net, "fd00::b")
	host := newNode(t, net, "fd00::1:1")

	if err := snA.mgr.Connect(host.addr); err != nil {
		t.Fatal(err)
	}
	state, err := snA.mgr.ExportPeer(host.addr)
	if err != nil {
		t.Fatal(err)
	}
	// The host re-established against B on its own before the handoff
	// arrived (e.g. failover beat the drain).
	if err := snB.mgr.Connect(host.addr); err != nil {
		t.Fatal(err)
	}
	if err := snB.mgr.ImportPeer(state); !errors.Is(err, ErrPeerExists) {
		t.Fatalf("ImportPeer err=%v, want ErrPeerExists", err)
	}
	// The handshake-established pipe still works.
	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 9}
	if err := snB.mgr.Send(host.addr, &hdr, []byte("live")); err != nil {
		t.Fatal(err)
	}
	waitRx(t, host, "live")
}

// TestRebindPeerNeverClobbers: if the host already holds a pipe to the
// successor, the move notice must not replace it.
func TestRebindPeerNeverClobbers(t *testing.T) {
	net := netsim.NewNetwork()
	snA := newNode(t, net, "fd00::a")
	snB := newNode(t, net, "fd00::b")
	host := newNode(t, net, "fd00::1:1")

	if err := host.mgr.Connect(snA.addr); err != nil {
		t.Fatal(err)
	}
	if err := host.mgr.Connect(snB.addr); err != nil {
		t.Fatal(err)
	}
	if err := host.mgr.RebindPeer(snA.addr, snB.addr); !errors.Is(err, ErrPeerExists) {
		t.Fatalf("RebindPeer err=%v, want ErrPeerExists", err)
	}
	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 2}
	if err := host.mgr.Send(snB.addr, &hdr, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	waitRx(t, snB, "kept")
	if !host.mgr.HasPeer(snA.addr) {
		t.Fatal("refused rebind still removed the old peer")
	}
}

// TestExportPeerNoPipe pins the error for exporting a nonexistent pipe.
func TestExportPeerNoPipe(t *testing.T) {
	net := netsim.NewNetwork()
	snA := newNode(t, net, "fd00::a")
	if _, err := snA.mgr.ExportPeer(wire.MustAddr("fd00::dead")); !errors.Is(err, ErrNoPipe) {
		t.Fatalf("err=%v, want ErrNoPipe", err)
	}
	if err := snA.mgr.RebindPeer(wire.MustAddr("fd00::dead"), wire.MustAddr("fd00::beef")); !errors.Is(err, ErrNoPipe) {
		t.Fatalf("rebind err=%v, want ErrNoPipe", err)
	}
}
