package pipe

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/wire"
)

// recordingBatchTransport wraps a sim transport and records how egress
// hands it traffic: per-datagram Sends vs vectored batch sizes.
type recordingBatchTransport struct {
	netsim.Transport
	mu      sync.Mutex
	sends   int
	batches []int
}

func (r *recordingBatchTransport) Send(dg wire.Datagram) error {
	r.mu.Lock()
	r.sends++
	r.mu.Unlock()
	return r.Transport.Send(dg)
}

func (r *recordingBatchTransport) SendBatch(dgs []wire.Datagram) (int, error) {
	r.mu.Lock()
	r.batches = append(r.batches, len(dgs))
	r.mu.Unlock()
	return netsim.SendBatch(r.Transport, dgs)
}

func (r *recordingBatchTransport) snapshot() (sends int, batches []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sends, append([]int(nil), r.batches...)
}

// TestEgressCapTriggeredFlush drives a worker egress by hand: packets
// accumulate per destination until the TxBatch cap forces a flush, and
// flushAll drains the remainder.
func TestEgressCapTriggeredFlush(t *testing.T) {
	net := netsim.NewNetwork()
	tr, err := net.Attach(wire.MustAddr("fd00::1"))
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingBatchTransport{Transport: tr}
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{Transport: rec, Identity: id, TxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b := newNode(t, net, "fd00::2")
	if err := a.Connect(b.addr); err != nil {
		t.Fatal(err)
	}

	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 1}
	enc, err := hdr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eg := a.newEgress()
	for i := 0; i < 3; i++ {
		if err := eg.SendHeaderBytes(b.addr, enc, []byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	if _, batches := rec.snapshot(); len(batches) != 0 {
		t.Fatalf("batches before cap = %v, want none", batches)
	}
	if got := eg.pending(); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
	// The 4th packet reaches the cap and must flush immediately.
	if err := eg.SendHeaderBytes(b.addr, enc, []byte("p")); err != nil {
		t.Fatal(err)
	}
	if _, batches := rec.snapshot(); len(batches) != 1 || batches[0] != 4 {
		t.Fatalf("batches after cap = %v, want [4]", batches)
	}
	if got := eg.pending(); got != 0 {
		t.Fatalf("pending after cap flush = %d, want 0", got)
	}
	// Two more, then a drain flush.
	for i := 0; i < 2; i++ {
		if err := eg.SendHeaderBytes(b.addr, enc, []byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	eg.flushAll()
	if _, batches := rec.snapshot(); len(batches) != 2 || batches[1] != 2 {
		t.Fatalf("batches after drain = %v, want [4 2]", batches)
	}
	st := a.Stats()
	if st.TxBatches != 2 || st.TxBatchedPackets != 6 || st.TxFlushDrops != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEgressImmediateFlushAtLowLoad sends one packet through a forwarding
// node whose coalescing cap is far away: the adaptive policy must flush the
// moment the worker's input drains, so the packet arrives promptly instead
// of waiting for a full batch.
func TestEgressImmediateFlushAtLowLoad(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	c := newNode(t, net, "fd00::3")
	var fwd *Manager
	b := newNode(t, net, "fd00::2", func(cfg *Config) {
		cfg.TxBatch = 32
		cfg.Handler = func(tx Sender, src wire.Addr, hdr wire.ILPHeader, hdrRaw, payload []byte) {
			if err := tx.SendHeaderBytes(c.addr, hdrRaw, payload); err != nil {
				t.Errorf("forward: %v", err)
			}
		}
	})
	fwd = b.mgr
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	if err := fwd.Connect(c.addr); err != nil {
		t.Fatal(err)
	}

	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 7}
	if err := a.mgr.Send(b.addr, &hdr, []byte("lone packet")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-c.rx:
		if string(got.payload) != "lone packet" || got.src != b.addr {
			t.Fatalf("got %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("single packet stuck in coalescing queue: adaptive flush broken")
	}
	st := fwd.Stats()
	if st.TxBatchedPackets != 1 {
		t.Fatalf("TxBatchedPackets = %d, want 1", st.TxBatchedPackets)
	}
}

// TestEgressPerSourceOrderingAcrossBatches pushes a stream through a
// forwarding node with a small coalescing cap, so the stream spans many
// batch flushes, and asserts the far side still sees it in order.
func TestEgressPerSourceOrderingAcrossBatches(t *testing.T) {
	const count = 200
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	c := newNode(t, net, "fd00::3")
	var fwd *Manager
	b := newNode(t, net, "fd00::2", func(cfg *Config) {
		cfg.TxBatch = 8
		cfg.Handler = func(tx Sender, src wire.Addr, hdr wire.ILPHeader, hdrRaw, payload []byte) {
			if err := tx.SendHeaderBytes(c.addr, hdrRaw, payload); err != nil {
				t.Errorf("forward: %v", err)
			}
		}
	})
	fwd = b.mgr
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	if err := fwd.Connect(c.addr); err != nil {
		t.Fatal(err)
	}

	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 9}
	seq := make([]byte, 8)
	for i := 0; i < count; i++ {
		binary.BigEndian.PutUint64(seq, uint64(i))
		if err := a.mgr.Send(b.addr, &hdr, seq); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		select {
		case got := <-c.rx:
			if v := binary.BigEndian.Uint64(got.payload); v != uint64(i) {
				t.Fatalf("packet %d arrived with sequence %d: order broken across batches", i, v)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout at packet %d/%d", i, count)
		}
	}
	st := fwd.Stats()
	if st.TxBatchedPackets != count {
		t.Fatalf("TxBatchedPackets = %d, want %d", st.TxBatchedPackets, count)
	}
	if st.TxBatches == 0 || st.TxBatches > count {
		t.Fatalf("TxBatches = %d, want within (0, %d]", st.TxBatches, count)
	}
}

// TestEgressDisabled checks TxBatch=1 hands handlers the manager itself:
// every forward goes out as an immediate per-datagram Send.
func TestEgressDisabled(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	c := newNode(t, net, "fd00::3")
	var fwd *Manager
	b := newNode(t, net, "fd00::2", func(cfg *Config) {
		cfg.TxBatch = 1
		cfg.Handler = func(tx Sender, src wire.Addr, hdr wire.ILPHeader, hdrRaw, payload []byte) {
			if tx != Sender(fwd) {
				t.Errorf("tx = %T, want the Manager when coalescing is disabled", tx)
			}
			if err := tx.SendHeaderBytes(c.addr, hdrRaw, payload); err != nil {
				t.Errorf("forward: %v", err)
			}
		}
	})
	fwd = b.mgr
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	if err := fwd.Connect(c.addr); err != nil {
		t.Fatal(err)
	}
	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 5}
	if err := a.mgr.Send(b.addr, &hdr, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-c.rx:
		if string(got.payload) != "direct" {
			t.Fatalf("got %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
	if st := fwd.Stats(); st.TxBatches != 0 || st.TxBatchedPackets != 0 {
		t.Fatalf("stats = %+v, want no batch accounting with coalescing disabled", st)
	}
}
