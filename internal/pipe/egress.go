package pipe

import (
	"fmt"

	"interedge/internal/netsim"
	"interedge/internal/psp"
	"interedge/internal/wire"
)

// destBatch accumulates staged packets bound for one destination. The
// Datagram payloads alias the pooled sealBufs held alongside them; pkts and
// hdrLens describe the staged PSP region of each payload (everything after
// the frame byte) for the seal-at-flush pass. All are released when the
// batch flushes.
type destBatch struct {
	dst     wire.Addr
	p       *peer
	dgs     []wire.Datagram
	sbs     []*sealBuf
	pkts    [][]byte
	hdrLens []int
}

// egress is a per-worker coalescing Sender. Packets sent through it are
// staged per destination (header and payload copied to their final wire
// offsets in pooled buffers, so callers may reuse their slices immediately)
// and handed to the transport as one batch, either when the owning worker's
// input drains (flushAll — the adaptive low-load path) or when a
// destination reaches the TxBatch cap under backpressure (flushDest).
// Sealing is deferred to flush time: the whole pending run of a destination
// is encrypted in place with one SealStaged pass — a single cipher-state
// fetch and one contiguous IV reservation — and the steady state allocates
// nothing.
//
// An egress belongs to exactly one worker goroutine and is not safe for
// concurrent use. Per-destination FIFO plus in-order flushing preserves
// per-source packet order: one source maps to one worker, and that worker
// enqueues and flushes in arrival order.
type egress struct {
	m       *Manager
	cap     int
	scratch psp.Scratch
	dests   map[wire.Addr]*destBatch
	order   []*destBatch // flush order: first-enqueue order per drain cycle
	free    []*destBatch // recycled destBatch structs
}

func (m *Manager) newEgress() *egress {
	return &egress{m: m, cap: m.cfg.TxBatch, dests: make(map[wire.Addr]*destBatch)}
}

// SendHeaderBytes stages the packet (copying hdrBytes and payload to their
// wire offsets) and queues it for the next flush, which seals the whole
// run. A nil return means the packet was accepted for (possibly deferred)
// transmission; seal and transport failures at flush time surface as
// TxFlushDrops in Stats, matching how a NIC ring reports late drops.
func (e *egress) SendHeaderBytes(dst wire.Addr, hdrBytes, payload []byte) error {
	m := e.m
	p := m.peer(dst)
	if p == nil {
		return fmt.Errorf("%w: %s", ErrNoPipe, dst)
	}
	db := e.dests[dst]
	if db == nil {
		if n := len(e.free); n > 0 {
			db = e.free[n-1]
			e.free = e.free[:n-1]
		} else {
			db = &destBatch{}
		}
		db.dst, db.p = dst, p
		e.dests[dst] = db
		e.order = append(e.order, db)
	} else if db.p != p {
		// The pipe re-established between enqueues: packets sealed under
		// the old keys flush first, then the batch restarts on the new peer.
		if err := e.flushDest(db); err != nil {
			db.p = p
			return err
		}
		db.p = p
	}
	sb := m.sealBufs.Get().(*sealBuf)
	size := 1 + psp.SealedSize(len(hdrBytes), len(payload))
	buf := sb.buf[:0]
	if cap(buf) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	buf[0] = byte(wire.FrameILP)
	psp.StageSeal(buf[1:], hdrBytes, payload)
	sb.buf = buf
	db.dgs = append(db.dgs, wire.Datagram{Dst: dst, Payload: buf})
	db.sbs = append(db.sbs, sb)
	db.pkts = append(db.pkts, buf[1:])
	db.hdrLens = append(db.hdrLens, len(hdrBytes))
	if len(db.dgs) >= e.cap {
		return e.flushDest(db)
	}
	return nil
}

// flushDest seals one destination's staged queue in place with a single
// batch crypto pass, hands it to the transport as one batch, and releases
// the buffers. The destBatch stays registered for the rest of the drain
// cycle, ready to accumulate again.
func (e *egress) flushDest(db *destBatch) error {
	if len(db.dgs) == 0 {
		return nil
	}
	m := e.m
	if err := db.p.crypto.TX.SealStaged(&e.scratch, db.pkts, db.hdrLens); err != nil {
		// A seal failure poisons the whole staged run (IVs are already
		// consumed); account every packet as a flush drop.
		m.txFlushDrops.Add(uint64(len(db.dgs)))
		db.release(m)
		return err
	}
	n, err := netsim.SendBatch(m.cfg.Transport, db.dgs)
	var bytes uint64
	for i := 0; i < n; i++ {
		bytes += uint64(len(db.dgs[i].Payload))
	}
	db.p.txPackets.Add(uint64(n))
	db.p.txBytes.Add(bytes)
	m.txBatches.Add(1)
	m.txBatchedPackets.Add(uint64(n))
	m.flushBatchSize.Observe(uint64(len(db.dgs)))
	if dropped := len(db.dgs) - n; dropped > 0 {
		m.txFlushDrops.Add(uint64(dropped))
	}
	// Transports must not retain the batch or its payloads once SendBatch
	// returns, so the seal buffers go straight back to the pool.
	db.release(m)
	return err
}

// release returns the batch's pooled buffers and resets its queues.
func (db *destBatch) release(m *Manager) {
	for i := range db.sbs {
		m.sealBufs.Put(db.sbs[i])
		db.sbs[i] = nil
		db.dgs[i] = wire.Datagram{}
		db.pkts[i] = nil
	}
	db.dgs = db.dgs[:0]
	db.sbs = db.sbs[:0]
	db.pkts = db.pkts[:0]
	db.hdrLens = db.hdrLens[:0]
}

// flushAll drains every destination in first-enqueue order and resets the
// coalescer for the next cycle. Called by the worker the moment its input
// channel has nothing ready.
func (e *egress) flushAll() {
	if len(e.order) == 0 {
		return
	}
	for i, db := range e.order {
		_ = e.flushDest(db) // failures are accounted as TxFlushDrops
		delete(e.dests, db.dst)
		db.p = nil
		e.free = append(e.free, db)
		e.order[i] = nil
	}
	e.order = e.order[:0]
}

// pending reports how many sealed packets are queued but not yet flushed.
func (e *egress) pending() int {
	n := 0
	for _, db := range e.order {
		n += len(db.dgs)
	}
	return n
}
