package pipe

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"interedge/internal/netsim"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// TestBatchHandlerMixedPeerRuns drives two senders into one receiver whose
// BatchHandler records every delivered run. Runs must be source-uniform
// (a batch with interleaved peers is split at every source boundary),
// per-source order must be preserved across runs, and nothing may be lost
// or duplicated.
func TestBatchHandlerMixedPeerRuns(t *testing.T) {
	net := netsim.NewNetwork()
	type run struct {
		src  wire.Addr
		seqs []uint32
	}
	var mu sync.Mutex
	var runs []run
	recv := newNode(t, net, "fd00::1", func(cfg *Config) {
		cfg.RxWorkers = 1 // one worker sees both sources in its batches
		cfg.Handler = nil
		cfg.BatchHandler = func(_ Sender, src wire.Addr, pkts []RxPacket) {
			r := run{src: src}
			for i := range pkts {
				if len(pkts[i].Payload) != 4 {
					t.Errorf("payload len %d", len(pkts[i].Payload))
					continue
				}
				r.seqs = append(r.seqs, binary.BigEndian.Uint32(pkts[i].Payload))
			}
			mu.Lock()
			runs = append(runs, r)
			mu.Unlock()
		}
	})
	b := newNode(t, net, "fd00::2")
	c := newNode(t, net, "fd00::3")

	const perSender = 100
	for _, sender := range []*node{b, c} {
		if err := sender.mgr.Connect(recv.addr); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < perSender; i++ {
		var p [4]byte
		binary.BigEndian.PutUint32(p[:], uint32(i))
		hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 7}
		if err := b.mgr.Send(recv.addr, &hdr, p[:]); err != nil {
			t.Fatal(err)
		}
		if err := c.mgr.Send(recv.addr, &hdr, p[:]); err != nil {
			t.Fatal(err)
		}
	}

	bySrc := map[wire.Addr][]uint32{}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		bySrc = map[wire.Addr][]uint32{}
		for _, r := range runs {
			bySrc[r.src] = append(bySrc[r.src], r.seqs...)
		}
		total := len(bySrc[b.addr]) + len(bySrc[c.addr])
		mu.Unlock()
		if total == 2*perSender {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: got %d/%d packets", total, 2*perSender)
		}
		time.Sleep(time.Millisecond)
	}
	for _, sender := range []*node{b, c} {
		seqs := bySrc[sender.addr]
		if len(seqs) != perSender {
			t.Fatalf("source %s: %d packets, want %d", sender.addr, len(seqs), perSender)
		}
		for i, seq := range seqs {
			if seq != uint32(i) {
				t.Fatalf("source %s: out of order at %d: got seq %d", sender.addr, i, seq)
			}
		}
	}
}

// TestBatchHandlerNeverSeesProbes enables keepalives and checks that
// liveness probes and acks are consumed by the manager, never delivered in
// a batch, while real packets still flow.
func TestBatchHandlerNeverSeesProbes(t *testing.T) {
	net := netsim.NewNetwork()
	var mu sync.Mutex
	got := 0
	recv := newNode(t, net, "fd00::1", func(cfg *Config) {
		cfg.KeepaliveInterval = 20 * time.Millisecond
		cfg.Handler = nil
		cfg.BatchHandler = func(_ Sender, _ wire.Addr, pkts []RxPacket) {
			for i := range pkts {
				if pkts[i].Hdr.Service == wire.SvcPipeProbe || pkts[i].Hdr.Service == wire.SvcPipeProbeAck {
					t.Errorf("probe service %v leaked into batch", pkts[i].Hdr.Service)
				}
			}
			mu.Lock()
			got += len(pkts)
			mu.Unlock()
		}
	})
	b := newNode(t, net, "fd00::2", func(cfg *Config) {
		cfg.KeepaliveInterval = 20 * time.Millisecond
	})
	if err := b.mgr.Connect(recv.addr); err != nil {
		t.Fatal(err)
	}
	// Let several keepalive intervals elapse with sporadic real traffic.
	for i := 0; i < 5; i++ {
		hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: wire.ConnectionID(i)}
		if err := b.mgr.Send(recv.addr, &hdr, []byte("ping")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := got
		mu.Unlock()
		if n == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: delivered %d/5", n)
		}
		time.Sleep(time.Millisecond)
	}
	if recv.mgr.Stats().KeepalivesRcvd == 0 && b.mgr.Stats().KeepalivesRcvd == 0 {
		t.Fatal("no keepalives exchanged; probe suppression not exercised")
	}
}

// TestRxOpenBatchSizeObserved checks the pipe_rx_open_batch_size histogram
// records every delivered run.
func TestRxOpenBatchSizeObserved(t *testing.T) {
	net := netsim.NewNetwork()
	recv := newNode(t, net, "fd00::1")
	b := newNode(t, net, "fd00::2")
	if err := b.mgr.Connect(recv.addr); err != nil {
		t.Fatal(err)
	}
	const n = 32
	for i := 0; i < n; i++ {
		hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 1}
		if err := b.mgr.Send(recv.addr, &hdr, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case <-recv.rx:
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout after %d packets", i)
		}
	}
	hist := recv.mgr.Telemetry().Histogram("pipe_rx_open_batch_size", telemetry.BatchBuckets)
	if hist.Count() == 0 {
		t.Fatal("pipe_rx_open_batch_size recorded no observations")
	}
}
