package pipe

import (
	"bytes"
	"crypto/ed25519"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/psp"
	"interedge/internal/wire"
)

type node struct {
	mgr  *Manager
	addr wire.Addr
	rx   chan received
}

type received struct {
	src     wire.Addr
	hdr     wire.ILPHeader
	payload []byte
}

func newNode(t *testing.T, n *netsim.Network, addr string, opts ...func(*Config)) *node {
	t.Helper()
	tr, err := n.Attach(wire.MustAddr(addr))
	if err != nil {
		t.Fatal(err)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	rx := make(chan received, 256)
	cfg := Config{
		Transport: tr,
		Identity:  id,
		Handler: func(_ Sender, src wire.Addr, hdr wire.ILPHeader, _ []byte, payload []byte) {
			h := hdr
			h.Data = append([]byte(nil), hdr.Data...)
			rx <- received{src: src, hdr: h, payload: append([]byte(nil), payload...)}
		},
	}
	for _, o := range opts {
		o(&cfg)
	}
	mgr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	return &node{mgr: mgr, addr: wire.MustAddr(addr), rx: rx}
}

func TestConnectAndSend(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	b := newNode(t, net, "fd00::2")

	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	if !a.mgr.HasPeer(b.addr) {
		t.Fatal("initiator has no peer after Connect")
	}
	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 42, Data: []byte("svc-data")}
	if err := a.mgr.Send(b.addr, &hdr, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-b.rx:
		if got.src != a.addr || got.hdr.Service != wire.SvcEcho || got.hdr.Conn != 42 ||
			string(got.hdr.Data) != "svc-data" || string(got.payload) != "payload" {
			t.Fatalf("got %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestBidirectionalAfterSingleHandshake(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	b := newNode(t, net, "fd00::2")
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	// Responder can send back immediately without its own Connect.
	waitPeer(t, b.mgr, a.addr)
	if err := b.mgr.Send(a.addr, &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-a.rx:
		if string(got.payload) != "reply" {
			t.Fatalf("payload %q", got.payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func waitPeer(t *testing.T, m *Manager, addr wire.Addr) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !m.HasPeer(addr) {
		if time.Now().After(deadline) {
			t.Fatal("peer never established")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConnectIdempotent(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	b := newNode(t, net, "fd00::2")
	for i := 0; i < 3; i++ {
		if err := a.mgr.Connect(b.addr); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(a.mgr.Peers()); got != 1 {
		t.Fatalf("peers = %d, want 1", got)
	}
}

func TestConcurrentConnectSameDest(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	b := newNode(t, net, "fd00::2")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = a.mgr.Connect(b.addr)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
	}
}

func TestSimultaneousOpen(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	b := newNode(t, net, "fd00::2")
	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = a.mgr.Connect(b.addr) }()
	go func() { defer wg.Done(); errB = b.mgr.Connect(a.addr) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("errA=%v errB=%v", errA, errB)
	}
	// Both sides converge on a working pipe.
	if err := a.mgr.Send(b.addr, &wire.ILPHeader{Service: wire.SvcNull, Conn: 9}, []byte("ab")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.rx:
	case <-time.After(2 * time.Second):
		t.Fatal("b never received after simultaneous open")
	}
	if err := b.mgr.Send(a.addr, &wire.ILPHeader{Service: wire.SvcNull, Conn: 9}, []byte("ba")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-a.rx:
	case <-time.After(2 * time.Second):
		t.Fatal("a never received after simultaneous open")
	}
}

func TestSendWithoutPipeFails(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	err := a.mgr.Send(wire.MustAddr("fd00::2"), &wire.ILPHeader{}, nil)
	if err == nil {
		t.Fatal("send without pipe succeeded")
	}
}

func TestHandshakeTimeout(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1", func(c *Config) {
		c.HandshakeTimeout = 10 * time.Millisecond
		c.HandshakeRetries = 2
	})
	err := a.mgr.Connect(wire.MustAddr("fd00::dead"))
	if err != ErrHandshakeTimeout {
		t.Fatalf("err = %v, want ErrHandshakeTimeout", err)
	}
}

func TestHandshakeSurvivesLoss(t *testing.T) {
	net := netsim.NewNetwork(netsim.WithSeed(3))
	a := newNode(t, net, "fd00::1", func(c *Config) {
		c.HandshakeTimeout = 20 * time.Millisecond
		c.HandshakeRetries = 20
	})
	b := newNode(t, net, "fd00::2")
	net.SetLinkBoth(a.addr, b.addr, netsim.LinkProfile{LossRate: 0.5})
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatalf("handshake failed under 50%% loss: %v", err)
	}
}

func TestAuthorizationRejectsPeer(t *testing.T) {
	net := netsim.NewNetwork()
	reject := func(c *Config) {
		c.Authorize = func(wire.Addr, ed25519.PublicKey) bool { return false }
		c.HandshakeTimeout = 10 * time.Millisecond
		c.HandshakeRetries = 2
	}
	a := newNode(t, net, "fd00::1", func(c *Config) {
		c.HandshakeTimeout = 10 * time.Millisecond
		c.HandshakeRetries = 2
	})
	b := newNode(t, net, "fd00::2", reject)
	if err := a.mgr.Connect(b.addr); err == nil {
		t.Fatal("connect to rejecting peer succeeded")
	}
	if b.mgr.HasPeer(a.addr) {
		t.Fatal("rejecting peer still established pipe")
	}
}

func TestInitiatorAuthorizationRejects(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1", func(c *Config) {
		c.Authorize = func(wire.Addr, ed25519.PublicKey) bool { return false }
		c.HandshakeTimeout = 10 * time.Millisecond
		c.HandshakeRetries = 3
	})
	b := newNode(t, net, "fd00::2")
	if err := a.mgr.Connect(b.addr); err != ErrUnauthorized {
		t.Fatalf("err = %v, want ErrUnauthorized", err)
	}
	if a.mgr.HasPeer(b.addr) {
		t.Fatal("unauthorized pipe installed")
	}
}

func TestOnPeerUpFiresOnBothSides(t *testing.T) {
	net := netsim.NewNetwork()
	var ups atomic.Int32
	opt := func(c *Config) {
		c.OnPeerUp = func(wire.Addr, ed25519.PublicKey) { ups.Add(1) }
	}
	a := newNode(t, net, "fd00::1", opt)
	b := newNode(t, net, "fd00::2", opt)
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for ups.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("OnPeerUp fired %d times, want 2", ups.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPeerIdentityVerified(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	b := newNode(t, net, "fd00::2")
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	id, ok := a.mgr.PeerIdentity(b.addr)
	if !ok {
		t.Fatal("no identity for established peer")
	}
	if !id.Equal(b.mgr.Identity().PublicKey()) {
		t.Fatal("peer identity mismatch")
	}
}

func TestRotateAllKeepsPipesWorking(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	b := newNode(t, net, "fd00::2")
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := a.mgr.RotateAll(); err != nil {
			t.Fatal(err)
		}
		if err := a.mgr.Send(b.addr, &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-b.rx:
			if got.payload[0] != byte(i) {
				t.Fatalf("rotation %d wrong payload", i)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("rotation %d: no delivery", i)
		}
	}
}

func TestCounters(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	b := newNode(t, net, "fd00::2")
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.mgr.Send(b.addr, &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		select {
		case <-b.rx:
		case <-time.After(2 * time.Second):
			t.Fatal("timeout draining")
		}
	}
	var aInfo PeerInfo
	for _, p := range a.mgr.Peers() {
		if p.Addr == b.addr {
			aInfo = p
		}
	}
	if aInfo.TxPackets != 5 {
		t.Fatalf("TxPackets = %d, want 5", aInfo.TxPackets)
	}
	var bInfo PeerInfo
	for _, p := range b.mgr.Peers() {
		if p.Addr == a.addr {
			bInfo = p
		}
	}
	if bInfo.RxPackets != 5 {
		t.Fatalf("RxPackets = %d, want 5", bInfo.RxPackets)
	}
}

func TestDropPeerSevers(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	b := newNode(t, net, "fd00::2")
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	a.mgr.DropPeer(b.addr)
	if err := a.mgr.Send(b.addr, &wire.ILPHeader{}, nil); err == nil {
		t.Fatal("send after DropPeer succeeded")
	}
	// Reconnect works.
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
}

func TestCloseUnblocksPendingConnect(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1", func(c *Config) {
		c.HandshakeTimeout = time.Hour // would hang forever
		c.HandshakeRetries = 1
	})
	errCh := make(chan error, 1)
	go func() { errCh <- a.mgr.Connect(wire.MustAddr("fd00::dead")) }()
	time.Sleep(20 * time.Millisecond)
	a.mgr.Close()
	select {
	case err := <-errCh:
		if err != ErrManagerClosed {
			t.Fatalf("err = %v, want ErrManagerClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Connect did not unblock on Close")
	}
}

func TestConnectAfterCloseFails(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	a.mgr.Close()
	if err := a.mgr.Connect(wire.MustAddr("fd00::2")); err != ErrManagerClosed {
		t.Fatalf("err = %v, want ErrManagerClosed", err)
	}
}

func TestGarbageDatagramsIgnored(t *testing.T) {
	net := netsim.NewNetwork()
	a := newNode(t, net, "fd00::1")
	b := newNode(t, net, "fd00::2")
	if err := a.mgr.Connect(b.addr); err != nil {
		t.Fatal(err)
	}
	// Inject garbage frames directly at the transport level.
	tr, err := net.Attach(wire.MustAddr("fd00::bad"))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for _, payload := range [][]byte{nil, {0xFF}, {byte(wire.FrameILP), 1, 2, 3}, {byte(wire.FrameHandshake1), 0}} {
		if err := tr.Send(wire.Datagram{Dst: b.addr, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	// The pipe still works.
	if err := a.mgr.Send(b.addr, &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-b.rx:
		if string(got.payload) != "ok" {
			t.Fatalf("payload %q", got.payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

// TestRetransmittedMsg1KeepsEstablishedKeys replays the initiator's msg1
// after completing the handshake with the first msg2 — the retransmission
// race where the initiator's timer fires while msg2 is still in flight.
// The responder must answer idempotently (same msg2, same keys); re-running
// the responder side would re-key the established pipe with a secret the
// initiator never learns and silently poison it.
func TestRetransmittedMsg1KeepsEstablishedKeys(t *testing.T) {
	net := netsim.NewNetwork()
	b := newNode(t, net, "fd00::2")

	// Hand-rolled initiator over a raw endpoint, so the exact msg1 bytes
	// can be replayed.
	laddr := wire.MustAddr("fd00::9")
	tr, err := net.Attach(laddr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	hs, err := handshake.Initiate(id, laddr, b.addr)
	if err != nil {
		t.Fatal(err)
	}
	msg1 := append([]byte{byte(wire.FrameHandshake1)}, hs.Msg1()...)
	recvMsg2 := func() []byte {
		t.Helper()
		select {
		case dg := <-tr.Receive():
			if len(dg.Payload) < 1 || wire.FrameType(dg.Payload[0]) != wire.FrameHandshake2 {
				t.Fatalf("unexpected frame %v", dg.Payload)
			}
			return append([]byte(nil), dg.Payload[1:]...)
		case <-time.After(2 * time.Second):
			t.Fatal("no msg2")
		}
		return nil
	}

	if err := tr.Send(wire.Datagram{Dst: b.addr, Payload: msg1}); err != nil {
		t.Fatal(err)
	}
	first := recvMsg2()
	res, err := hs.Complete(first)
	if err != nil {
		t.Fatal(err)
	}
	crypto, err := psp.NewPipeCrypto(res.Master, res.Initiator, res.BaseSPI)
	if err != nil {
		t.Fatal(err)
	}

	// The retransmission: identical msg1 again.
	if err := tr.Send(wire.Datagram{Dst: b.addr, Payload: msg1}); err != nil {
		t.Fatal(err)
	}
	if second := recvMsg2(); !bytes.Equal(first, second) {
		t.Fatal("responder re-ran the handshake for a retransmitted msg1")
	}

	// Data sealed with the first exchange's keys must still be accepted.
	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 7}
	hdrEnc, err := hdr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := crypto.TX.Seal([]byte{byte(wire.FrameILP)}, hdrEnc, []byte("still-keyed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(wire.Datagram{Dst: b.addr, Payload: sealed}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-b.rx:
		if string(got.payload) != "still-keyed" {
			t.Fatalf("payload %q", got.payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("duplicate msg1 re-keyed the established pipe")
	}
}
