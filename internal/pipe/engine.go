package pipe

import (
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"interedge/internal/clock"
	"interedge/internal/cryptutil"
	"interedge/internal/handshake"
	"interedge/internal/psp"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// Engine is the shared, multiplexing counterpart of Manager: one transport
// attachment, one set of RX workers, and one keepalive sweep serving MANY
// local identities (endpoints) at once. Where a Manager keys pipes by remote
// address alone — it owns exactly one local address — the Engine keys them
// by (local, remote), so 10^5–10^6 weightless endpoints can share a single
// receive path with a goroutine budget that is O(workers), independent of
// endpoint count.
//
// Everything on a pipe stays real: handshakes run the same transcript-bound
// exchange (addresses are part of the transcript, so each endpoint's pipes
// carry its own identity), PSP seal/open state and epoch rotation are
// identical to Manager pipes, and RebindPeer implements the host side of
// SvcPipeMove unchanged. The peer on the far side cannot tell an Engine
// endpoint from a full Manager.
//
// Concurrency: the peer table is sharded across fixed RWMutex-guarded maps
// (a copy-on-write map would make every establish O(peers) and boxing
// struct keys into a sync.Map would allocate on the data path). Readers
// take only the shard RLock; all writers serialize on Engine.mu first and
// then take shard locks, so multi-shard operations (RebindPeer) never
// deadlock and check-then-act sequences are atomic with respect to other
// writers.
type Engine struct {
	cfg   EngineConfig
	telem *telemetry.Registry

	shards [engineShards]peerShard

	mu        sync.Mutex // serializes writers: pending, respCache, endpoints map writes, closed
	pending   map[pipeKey]*enginePending
	respCache map[pipeKey]msg1Reply
	respFIFO  []pipeKey // insertion order for bounded eviction
	closed    bool

	epMu      sync.RWMutex
	endpoints map[wire.Addr]*engineEndpoint

	retry *Backoff

	workers []chan wire.Datagram

	sealBufs sync.Pool

	peerCount     atomic.Int64
	endpointCount atomic.Int64

	handshakeAttempts *telemetry.Counter
	handshakeFailures *telemetry.Counter
	keepalivesSent    *telemetry.Counter
	keepalivesRcvd    *telemetry.Counter
	peersLost         *telemetry.Counter
	rxPackets         *telemetry.Counter
	rxNoPipe          *telemetry.Counter
	rxOpenErrors      *telemetry.Counter
	txPackets         *telemetry.Counter

	done chan struct{}
	wg   sync.WaitGroup
}

// EngineTransport is the engine's attachment: like netsim.Transport but
// without a single LocalAddr — the engine stamps Datagram.Src per send, so
// one transport carries every endpoint's traffic (netsim.Mux implements it).
type EngineTransport interface {
	// Send transmits dg; dg.Src must already be set to the sending
	// endpoint's address. The transport must not retain dg.Payload.
	Send(dg wire.Datagram) error
	Receive() <-chan wire.Datagram
	Close() error
}

// EngineConfig configures an Engine. The handshake/keepalive knobs mirror
// Config and share its defaults; identity, authorization, and packet
// handling move to the per-endpoint EndpointConfig.
type EngineConfig struct {
	Transport EngineTransport
	// Clock defaults to the real clock.
	Clock clock.Clock
	// HandshakeTimeout, HandshakeBackoffMax, HandshakeRetries: as Config.
	HandshakeTimeout    time.Duration
	HandshakeBackoffMax time.Duration
	HandshakeRetries    int
	// KeepaliveInterval, when nonzero, enables the liveness sweep across
	// every pipe of every endpoint. DeadAfter defaults to 4× the interval.
	// The engine never re-establishes automatically; a dead pipe is
	// reported through the owning endpoint's OnPeerDown and stays down
	// until someone calls Connect again (the fleet controller's job).
	KeepaliveInterval time.Duration
	DeadAfter         time.Duration
	// JitterSeed seeds handshake-retry jitter (default 1; there is no
	// single local address to derive it from).
	JitterSeed int64
	// RxWorkers is the receive fan-out width (default GOMAXPROCS). Inbound
	// datagrams shard by (dst, src) so one pipe's traffic stays ordered.
	RxWorkers int
	// Telemetry receives the engine_* instruments; nil creates a private
	// registry.
	Telemetry *telemetry.Registry
}

// EndpointConfig describes one local identity multiplexed onto an Engine.
type EndpointConfig struct {
	// Addr is the endpoint's local address; pipes are keyed by it.
	Addr wire.Addr
	// Identity signs this endpoint's handshakes.
	Identity handshake.Identity
	// Handler receives the endpoint's decrypted inbound packets. Same
	// aliasing contract as PacketHandler: hdr.Data, hdrRaw, and payload
	// are only valid for the duration of the call.
	Handler PacketHandler
	// Authorize defaults to accept-all.
	Authorize AuthorizePeer
	// OnPeerUp / OnPeerDown are optional. OnPeerDown only fires from the
	// keepalive sweep (KeepaliveInterval > 0) and must not block.
	OnPeerUp   PeerUpHandler
	OnPeerDown PeerDownHandler
}

// pipeKey names one pipe in the engine: local endpoint × remote peer.
type pipeKey struct {
	local  wire.Addr
	remote wire.Addr
}

// engineShards is the fixed peer-table shard count. Power of two; sized so
// that with ~10^6 pipes each shard map holds ~4k entries and writer
// contention during fleet bring-up stays low.
const engineShards = 256

// engineRespCacheMax bounds the msg1-idempotency cache. Manager keeps one
// entry per peer forever (its peer set is small); an engine serving 10^6
// endpoints cannot. Entries are evicted FIFO — retransmissions arrive
// within the handshake-retry window, so only the recent tail matters.
const engineRespCacheMax = 8192

type peerShard struct {
	mu sync.RWMutex
	m  map[pipeKey]*enginePeer
}

// enginePeer is the engine-side pipe state: the same key material and
// liveness clock as Manager's peer, plus the owning endpoint resolved at
// establish time so the data path never looks endpoints up.
type enginePeer struct {
	key      pipeKey
	identity ed25519.PublicKey
	crypto   *psp.PipeCrypto
	up       time.Time

	master    cryptutil.Key
	initiator bool
	baseSPI   uint32

	ep *engineEndpoint

	lastRx atomic.Int64
}

type enginePending struct {
	hs   *handshake.Pending
	ep   *engineEndpoint
	done chan struct{}
	err  error
}

type engineEndpoint struct {
	cfg    EndpointConfig
	sender Sender // pre-bound engineBoundSender, allocated once
}

// engineBoundSender adapts the engine to the Sender interface for one
// endpoint, so PacketHandlers written against Manager semantics work
// unchanged.
type engineBoundSender struct {
	e     *Engine
	local wire.Addr
}

func (s *engineBoundSender) SendHeaderBytes(dst wire.Addr, hdrBytes, payload []byte) error {
	return s.e.SendHeaderBytes(s.local, dst, hdrBytes, payload)
}

// NewEngine creates an Engine and starts its receive pipeline.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Transport == nil {
		return nil, errors.New("pipe: EngineConfig.Transport is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 250 * time.Millisecond
	}
	if cfg.HandshakeBackoffMax == 0 {
		cfg.HandshakeBackoffMax = 8 * cfg.HandshakeTimeout
	}
	if cfg.HandshakeRetries == 0 {
		cfg.HandshakeRetries = 5
	}
	if cfg.DeadAfter == 0 {
		cfg.DeadAfter = 4 * cfg.KeepaliveInterval
	}
	if cfg.RxWorkers == 0 {
		cfg.RxWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.RxWorkers < 1 {
		cfg.RxWorkers = 1
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = 1
	}
	e := &Engine{
		cfg:       cfg,
		pending:   make(map[pipeKey]*enginePending),
		respCache: make(map[pipeKey]msg1Reply),
		endpoints: make(map[wire.Addr]*engineEndpoint),
		retry:     NewBackoff(cfg.HandshakeTimeout, cfg.HandshakeBackoffMax, seed),
		done:      make(chan struct{}),
	}
	for i := range e.shards {
		e.shards[i].m = make(map[pipeKey]*enginePeer)
	}
	e.sealBufs.New = func() any { return new(sealBuf) }
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	e.telem = reg
	e.handshakeAttempts = reg.Counter("engine_handshake_attempts_total")
	e.handshakeFailures = reg.Counter("engine_handshake_failures_total")
	e.keepalivesSent = reg.Counter("engine_keepalives_sent_total")
	e.keepalivesRcvd = reg.Counter("engine_keepalives_rcvd_total")
	e.peersLost = reg.Counter("engine_peers_lost_total")
	e.rxPackets = reg.Counter("engine_rx_packets_total")
	e.rxNoPipe = reg.Counter("engine_rx_no_pipe_total")
	e.rxOpenErrors = reg.Counter("engine_rx_open_errors_total")
	e.txPackets = reg.Counter("engine_tx_packets_total")
	_ = reg.Register(telemetry.NewGaugeFunc("engine_pipes", e.peerCount.Load))
	_ = reg.Register(telemetry.NewGaugeFunc("engine_endpoints", e.endpointCount.Load))
	if cfg.RxWorkers > 1 {
		e.workers = make([]chan wire.Datagram, cfg.RxWorkers)
		for i := range e.workers {
			ch := make(chan wire.Datagram, rxWorkerQueueDepth)
			e.workers[i] = ch
			e.wg.Add(1)
			go e.runWorker(ch)
		}
	}
	e.wg.Add(1)
	go e.receiveLoop()
	if cfg.KeepaliveInterval > 0 {
		e.wg.Add(1)
		go e.keepaliveLoop()
	}
	return e, nil
}

// Telemetry returns the registry holding the engine_* instruments.
func (e *Engine) Telemetry() *telemetry.Registry { return e.telem }

// RxWorkers returns the effective receive fan-out width.
func (e *Engine) RxWorkers() int { return e.cfg.RxWorkers }

// Pipes returns the number of established pipes across all endpoints.
func (e *Engine) Pipes() int { return int(e.peerCount.Load()) }

// AddEndpoint registers a local identity on the engine. It fails if the
// address is already registered.
func (e *Engine) AddEndpoint(cfg EndpointConfig) error {
	if !cfg.Addr.IsValid() {
		return errors.New("pipe: EndpointConfig.Addr is required")
	}
	if cfg.Authorize == nil {
		cfg.Authorize = func(wire.Addr, ed25519.PublicKey) bool { return true }
	}
	ep := &engineEndpoint{cfg: cfg}
	ep.sender = &engineBoundSender{e: e, local: cfg.Addr}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrManagerClosed
	}
	e.epMu.Lock()
	_, dup := e.endpoints[cfg.Addr]
	if !dup {
		e.endpoints[cfg.Addr] = ep
	}
	e.epMu.Unlock()
	if dup {
		return fmt.Errorf("pipe: endpoint %s already registered", cfg.Addr)
	}
	e.endpointCount.Add(1)
	return nil
}

// RemoveEndpoint unregisters a local identity, tears down its pipes, and
// fails its in-flight handshakes. The remote ends discover the loss through
// their own liveness machinery, exactly as if a standalone host closed.
func (e *Engine) RemoveEndpoint(local wire.Addr) {
	e.mu.Lock()
	e.epMu.Lock()
	_, ok := e.endpoints[local]
	delete(e.endpoints, local)
	e.epMu.Unlock()
	if ok {
		e.endpointCount.Add(-1)
	}
	for key, pc := range e.pending {
		if key.local == local {
			delete(e.pending, key)
			pc.err = ErrManagerClosed
			close(pc.done)
		}
	}
	var removed int64
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for key := range sh.m {
			if key.local == local {
				delete(sh.m, key)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	e.peerCount.Add(-removed)
	e.mu.Unlock()
}

func (e *Engine) endpoint(local wire.Addr) *engineEndpoint {
	e.epMu.RLock()
	ep := e.endpoints[local]
	e.epMu.RUnlock()
	return ep
}

// pipeShardIndex maps a pipe key onto [0, n) with FNV-1a over both
// addresses plus an avalanche mix, so sequentially allocated lab addresses
// still spread evenly.
func pipeShardIndex(local, remote wire.Addr, n int) int {
	h := uint64(14695981039346656037)
	a := local.As16()
	for _, c := range a {
		h = (h ^ uint64(c)) * 1099511628211
	}
	b := remote.As16()
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(n))
}

func (e *Engine) shard(key pipeKey) *peerShard {
	return &e.shards[pipeShardIndex(key.local, key.remote, engineShards)]
}

// peer returns the established pipe for key, or nil. Readers take only the
// shard read-lock.
func (e *Engine) peer(key pipeKey) *enginePeer {
	sh := e.shard(key)
	sh.mu.RLock()
	p := sh.m[key]
	sh.mu.RUnlock()
	return p
}

// setPeer installs (p != nil) or removes (p == nil) the pipe for key and
// maintains the pipe gauge. Callers must hold e.mu.
func (e *Engine) setPeer(key pipeKey, p *enginePeer) {
	sh := e.shard(key)
	sh.mu.Lock()
	_, had := sh.m[key]
	if p == nil {
		delete(sh.m, key)
	} else {
		sh.m[key] = p
	}
	sh.mu.Unlock()
	switch {
	case p != nil && !had:
		e.peerCount.Add(1)
	case p == nil && had:
		e.peerCount.Add(-1)
	}
}

func (e *Engine) receiveLoop() {
	defer e.wg.Done()
	n := len(e.workers)
	if n == 0 {
		var scratch psp.Scratch
		for dg := range e.cfg.Transport.Receive() {
			e.dispatch(dg, &scratch)
		}
		return
	}
	for dg := range e.cfg.Transport.Receive() {
		if len(dg.Payload) < 1 {
			continue
		}
		e.workers[pipeShardIndex(dg.Dst, dg.Src, n)] <- dg
	}
	for _, ch := range e.workers {
		close(ch)
	}
}

func (e *Engine) runWorker(ch chan wire.Datagram) {
	defer e.wg.Done()
	var scratch psp.Scratch
	for dg := range ch {
		e.dispatch(dg, &scratch)
	}
}

// dispatch demuxes one inbound datagram: dg.Dst names the endpoint,
// dg.Src the remote. Handshake frames go through the engine's pending
// machinery; ILP frames are opened with the worker's scratch (zero-alloc
// once warm) and handed to the owning endpoint's handler.
func (e *Engine) dispatch(dg wire.Datagram, scratch *psp.Scratch) {
	if len(dg.Payload) < 1 {
		return
	}
	switch wire.FrameType(dg.Payload[0]) {
	case wire.FrameHandshake1:
		e.handleMsg1(dg.Dst, dg.Src, dg.Payload[1:])
	case wire.FrameHandshake2:
		e.handleMsg2(dg.Dst, dg.Src, dg.Payload[1:])
	case wire.FrameILP:
		e.handleILP(dg, scratch)
	}
}

func (e *Engine) handleILP(dg wire.Datagram, scratch *psp.Scratch) {
	key := pipeKey{local: dg.Dst, remote: dg.Src}
	p := e.peer(key)
	if p == nil {
		e.rxNoPipe.Add(1)
		return
	}
	hdrRaw, payload, err := p.crypto.RX.OpenScratch(scratch, dg.Payload[1:])
	if err != nil {
		e.rxOpenErrors.Add(1)
		return
	}
	e.rxPackets.Add(1)
	if e.cfg.KeepaliveInterval > 0 {
		p.lastRx.Store(e.cfg.Clock.Now().UnixNano())
	}
	var hdr wire.ILPHeader
	if _, err := hdr.DecodeFromBytes(hdrRaw); err != nil {
		return
	}
	switch hdr.Service {
	case wire.SvcPipeProbe:
		e.keepalivesRcvd.Add(1)
		ack := wire.ILPHeader{Service: wire.SvcPipeProbeAck, Conn: hdr.Conn}
		_ = e.Send(key.local, key.remote, &ack, nil)
		return
	case wire.SvcPipeProbeAck:
		return
	}
	if h := p.ep.cfg.Handler; h != nil {
		h(p.ep.sender, dg.Src, hdr, hdrRaw, payload)
	}
}

func (e *Engine) handleMsg1(local, remote wire.Addr, body []byte) {
	ep := e.endpoint(local)
	if ep == nil {
		return
	}
	key := pipeKey{local: local, remote: remote}
	digest := sha256.Sum256(body)
	e.mu.Lock()
	// Simultaneous open: same tie-break as Manager — the numerically lower
	// address is the designated initiator and ignores the peer's msg1.
	if _, isPending := e.pending[key]; isPending && local.Less(remote) {
		e.mu.Unlock()
		return
	}
	if prev, ok := e.respCache[key]; ok && prev.digest == digest {
		e.mu.Unlock()
		_ = e.cfg.Transport.Send(wire.Datagram{Src: local, Dst: remote, Payload: prev.msg2})
		return
	}
	e.mu.Unlock()

	// Respond with the endpoint's own identity; addresses are bound into
	// the transcript, so local must be the address the msg1 was sent to.
	msg2, res, err := handshake.Respond(ep.cfg.Identity, local, remote, body)
	if err != nil {
		return
	}
	if !ep.cfg.Authorize(remote, res.PeerIdentity) {
		return
	}
	out := append([]byte{byte(wire.FrameHandshake2)}, msg2...)
	if err := e.cfg.Transport.Send(wire.Datagram{Src: local, Dst: remote, Payload: out}); err != nil {
		return
	}
	e.mu.Lock()
	if _, ok := e.respCache[key]; !ok {
		e.respFIFO = append(e.respFIFO, key)
		if len(e.respFIFO) > engineRespCacheMax {
			evict := e.respFIFO[0]
			e.respFIFO = e.respFIFO[1:]
			delete(e.respCache, evict)
		}
	}
	e.respCache[key] = msg1Reply{digest: digest, msg2: out}
	e.mu.Unlock()
	e.establish(key, ep, res)
}

func (e *Engine) handleMsg2(local, remote wire.Addr, body []byte) {
	key := pipeKey{local: local, remote: remote}
	e.mu.Lock()
	pc, ok := e.pending[key]
	e.mu.Unlock()
	if !ok {
		return
	}
	res, err := pc.hs.Complete(body)
	if err != nil {
		return
	}
	if !pc.ep.cfg.Authorize(remote, res.PeerIdentity) {
		e.mu.Lock()
		if e.pending[key] == pc {
			delete(e.pending, key)
			pc.err = ErrUnauthorized
			close(pc.done)
		}
		e.mu.Unlock()
		return
	}
	e.establish(key, pc.ep, res)
}

func (e *Engine) establish(key pipeKey, ep *engineEndpoint, res *handshake.Result) {
	crypto, err := psp.NewPipeCrypto(res.Master, res.Initiator, res.BaseSPI)
	if err != nil {
		return
	}
	p := &enginePeer{
		key:       key,
		identity:  res.PeerIdentity,
		crypto:    crypto,
		up:        e.cfg.Clock.Now(),
		master:    res.Master,
		initiator: res.Initiator,
		baseSPI:   res.BaseSPI,
		ep:        ep,
	}
	p.lastRx.Store(p.up.UnixNano())
	e.mu.Lock()
	e.setPeer(key, p)
	if pc, ok := e.pending[key]; ok {
		delete(e.pending, key)
		close(pc.done)
	}
	e.mu.Unlock()
	if ep.cfg.OnPeerUp != nil {
		ep.cfg.OnPeerUp(key.remote, res.PeerIdentity)
	}
}

// Connect establishes (or returns) the pipe local→remote, blocking until
// the handshake completes or times out. local must name a registered
// endpoint.
func (e *Engine) Connect(local, remote wire.Addr) error {
	ep := e.endpoint(local)
	if ep == nil {
		return fmt.Errorf("pipe: no endpoint %s on engine", local)
	}
	key := pipeKey{local: local, remote: remote}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrManagerClosed
	}
	if e.peer(key) != nil {
		e.mu.Unlock()
		return nil
	}
	if pc, ok := e.pending[key]; ok {
		e.mu.Unlock()
		<-pc.done
		return pc.err
	}
	hs, err := handshake.Initiate(ep.cfg.Identity, local, remote)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	pc := &enginePending{hs: hs, ep: ep, done: make(chan struct{})}
	e.pending[key] = pc
	e.mu.Unlock()

	msg1 := append([]byte{byte(wire.FrameHandshake1)}, hs.Msg1()...)
	for attempt := 0; attempt < e.cfg.HandshakeRetries; attempt++ {
		e.handshakeAttempts.Add(1)
		_ = e.cfg.Transport.Send(wire.Datagram{Src: local, Dst: remote, Payload: msg1})
		select {
		case <-pc.done:
			return pc.err
		case <-e.cfg.Clock.After(e.retry.Attempt(attempt)):
		case <-e.done:
			e.failPending(key, pc, ErrManagerClosed)
			return ErrManagerClosed
		}
	}
	e.failPending(key, pc, ErrHandshakeTimeout)
	if pc.err != nil {
		e.handshakeFailures.Add(1)
	}
	return pc.err
}

func (e *Engine) failPending(key pipeKey, pc *enginePending, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.pending[key]; ok && cur == pc {
		delete(e.pending, key)
		pc.err = err
		close(pc.done)
	}
	// As with Manager: if establish won the race, pc.err stays nil.
}

// HasPeer reports whether the pipe local→remote is established.
func (e *Engine) HasPeer(local, remote wire.Addr) bool {
	return e.peer(pipeKey{local: local, remote: remote}) != nil
}

// PeerIdentity returns the verified identity on the pipe local→remote.
func (e *Engine) PeerIdentity(local, remote wire.Addr) (ed25519.PublicKey, bool) {
	p := e.peer(pipeKey{local: local, remote: remote})
	if p == nil {
		return nil, false
	}
	return p.identity, true
}

// DropPeer tears down the pipe local→remote.
func (e *Engine) DropPeer(local, remote wire.Addr) {
	key := pipeKey{local: local, remote: remote}
	e.mu.Lock()
	e.setPeer(key, nil)
	e.mu.Unlock()
}

// Redial discards any pipe state for local→remote and re-handshakes.
func (e *Engine) Redial(local, remote wire.Addr) error {
	e.DropPeer(local, remote)
	return e.Connect(local, remote)
}

// RebindPeer moves the endpoint's established pipe from oldRemote to
// newRemote keeping its keys — the host side of SvcPipeMove, identical in
// semantics to Manager.RebindPeer including the no-clobber rule and the TX
// epoch rotation.
func (e *Engine) RebindPeer(local, oldRemote, newRemote wire.Addr) error {
	oldKey := pipeKey{local: local, remote: oldRemote}
	newKey := pipeKey{local: local, remote: newRemote}
	e.mu.Lock()
	old := e.peer(oldKey)
	if old == nil {
		e.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoPipe, oldRemote)
	}
	if e.peer(newKey) != nil {
		e.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrPeerExists, newRemote)
	}
	p := &enginePeer{
		key:       newKey,
		identity:  old.identity,
		crypto:    old.crypto,
		up:        e.cfg.Clock.Now(),
		master:    old.master,
		initiator: old.initiator,
		baseSPI:   old.baseSPI,
		ep:        old.ep,
	}
	p.lastRx.Store(p.up.UnixNano())
	e.setPeer(oldKey, nil)
	e.setPeer(newKey, p)
	e.mu.Unlock()
	return p.crypto.TX.Rotate()
}

// Send encodes hdr and sends it with payload over the pipe local→remote.
func (e *Engine) Send(local, remote wire.Addr, hdr *wire.ILPHeader, payload []byte) error {
	enc, err := hdr.Encode()
	if err != nil {
		return err
	}
	return e.SendHeaderBytes(local, remote, enc, payload)
}

// SendHeaderBytes sends an already-encoded ILP header with payload over the
// pipe local→remote. Like Manager.SendHeaderBytes it builds the framed
// packet in a pooled buffer: the steady state performs no allocations
// beyond whatever the transport does with the datagram.
func (e *Engine) SendHeaderBytes(local, remote wire.Addr, hdrBytes, payload []byte) error {
	p := e.peer(pipeKey{local: local, remote: remote})
	if p == nil {
		return fmt.Errorf("%w: %s", ErrNoPipe, remote)
	}
	sb := e.sealBufs.Get().(*sealBuf)
	buf := append(sb.buf[:0], byte(wire.FrameILP))
	sealed, err := p.crypto.TX.SealScratch(&sb.scratch, buf, hdrBytes, payload)
	if err != nil {
		sb.buf = buf
		e.sealBufs.Put(sb)
		return err
	}
	err = e.cfg.Transport.Send(wire.Datagram{Src: local, Dst: remote, Payload: sealed})
	sb.buf = sealed
	e.sealBufs.Put(sb)
	if err != nil {
		return err
	}
	e.txPackets.Add(1)
	return nil
}

// keepaliveLoop is the single liveness sweep shared by every pipe of every
// endpoint: probe pipes idle past the keepalive interval, declare pipes
// idle past DeadAfter dead. One goroutine regardless of fleet size.
func (e *Engine) keepaliveLoop() {
	defer e.wg.Done()
	tick := e.cfg.KeepaliveInterval / 2
	if tick <= 0 {
		tick = e.cfg.KeepaliveInterval
	}
	var sweep []*enginePeer
	for {
		select {
		case <-e.done:
			return
		case <-e.cfg.Clock.After(tick):
		}
		now := e.cfg.Clock.Now()
		sweep = sweep[:0]
		for i := range e.shards {
			sh := &e.shards[i]
			sh.mu.RLock()
			for _, p := range sh.m {
				sweep = append(sweep, p)
			}
			sh.mu.RUnlock()
		}
		for _, p := range sweep {
			idle := now.Sub(time.Unix(0, p.lastRx.Load()))
			switch {
			case idle >= e.cfg.DeadAfter:
				e.peerDead(p)
			case idle >= e.cfg.KeepaliveInterval:
				e.keepalivesSent.Add(1)
				probe := wire.ILPHeader{Service: wire.SvcPipeProbe}
				_ = e.Send(p.key.local, p.key.remote, &probe, nil)
			}
		}
	}
}

func (e *Engine) peerDead(p *enginePeer) {
	e.mu.Lock()
	if e.peer(p.key) != p {
		e.mu.Unlock()
		return
	}
	e.setPeer(p.key, nil)
	e.mu.Unlock()
	e.peersLost.Add(1)
	if p.ep.cfg.OnPeerDown != nil {
		p.ep.cfg.OnPeerDown(p.key.remote, p.identity)
	}
}

// Close shuts down the engine and its transport. Endpoints need no
// individual teardown; their state dies with the engine.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for key, pc := range e.pending {
		pc.err = ErrManagerClosed
		close(pc.done)
		delete(e.pending, key)
	}
	e.mu.Unlock()
	close(e.done)
	err := e.cfg.Transport.Close()
	e.wg.Wait()
	return err
}
