//go:build !race

package pipe

const raceEnabled = false
