package host

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// echoModule reflects payloads back to the sender.
type echoModule struct{}

func (echoModule) Service() wire.ServiceID { return wire.SvcEcho }
func (echoModule) Name() string            { return "echo" }
func (echoModule) Version() string         { return "1" }
func (echoModule) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	return sn.Decision{Forwards: []sn.Forward{{Dst: pkt.Src}}}, nil
}
func (echoModule) HandleControl(env sn.Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	switch op {
	case "status":
		return json.Marshal("ready")
	default:
		return nil, errors.New("bad op")
	}
}

func newSN(t *testing.T, net *netsim.Network, addr string) *sn.SN {
	t.Helper()
	tr, err := net.Attach(wire.MustAddr(addr))
	if err != nil {
		t.Fatal(err)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	node, err := sn.New(sn.Config{Transport: tr, Identity: id})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Register(echoModule{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	return node
}

func newHost(t *testing.T, net *netsim.Network, addr string, edit ...func(*Config)) *Host {
	t.Helper()
	tr, err := net.Attach(wire.MustAddr(addr))
	if err != nil {
		t.Fatal(err)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Transport: tr, Identity: id}
	for _, e := range edit {
		e(&cfg)
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

func TestAssociateAndFirstHop(t *testing.T) {
	net := netsim.NewNetwork()
	node := newSN(t, net, "fd00::100")
	h := newHost(t, net, "fd00::1")
	if _, err := h.FirstHop(); err != ErrNoFirstHop {
		t.Fatalf("err = %v, want ErrNoFirstHop", err)
	}
	if err := h.Associate(node.Addr()); err != nil {
		t.Fatal(err)
	}
	fh, err := h.FirstHop()
	if err != nil || fh != node.Addr() {
		t.Fatalf("first hop %s err %v", fh, err)
	}
	// Idempotent.
	if err := h.Associate(node.Addr()); err != nil {
		t.Fatal(err)
	}
	if got := len(h.FirstHops()); got != 1 {
		t.Fatalf("first hops = %d", got)
	}
	if id, ok := h.SNIdentity(node.Addr()); !ok || !id.Equal(node.Identity().PublicKey()) {
		t.Fatal("SN identity not verified")
	}
}

func TestConnSendReceive(t *testing.T) {
	net := netsim.NewNetwork()
	node := newSN(t, net, "fd00::100")
	h := newHost(t, net, "fd00::1", func(c *Config) { c.FirstHops = []wire.Addr{} })
	if err := h.Associate(node.Addr()); err != nil {
		t.Fatal(err)
	}
	conn, err := h.NewConn(wire.SvcEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("meta"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-conn.Receive():
		if string(msg.Payload) != "hello" || msg.Src != node.Addr() {
			t.Fatalf("msg %+v", msg)
		}
		if string(msg.Hdr.Data) != "meta" {
			t.Fatalf("hdr data %q", msg.Hdr.Data)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
}

func TestConfiguredFirstHops(t *testing.T) {
	net := netsim.NewNetwork()
	node := newSN(t, net, "fd00::100")
	h := newHost(t, net, "fd00::1", func(c *Config) {
		c.FirstHops = []wire.Addr{node.Addr()}
	})
	fh, err := h.FirstHop()
	if err != nil || fh != node.Addr() {
		t.Fatalf("first hop %v err %v", fh, err)
	}
}

func TestInvokeControl(t *testing.T) {
	net := netsim.NewNetwork()
	node := newSN(t, net, "fd00::100")
	h := newHost(t, net, "fd00::1")
	if err := h.Associate(node.Addr()); err != nil {
		t.Fatal(err)
	}
	data, err := h.InvokeFirstHop(wire.SvcEcho, "status", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"ready"` {
		t.Fatalf("data = %s", data)
	}
}

func TestInvokeControlError(t *testing.T) {
	net := netsim.NewNetwork()
	node := newSN(t, net, "fd00::100")
	h := newHost(t, net, "fd00::1")
	if err := h.Associate(node.Addr()); err != nil {
		t.Fatal(err)
	}
	_, err := h.Invoke(node.Addr(), wire.SvcEcho, "nope", nil)
	if !errors.Is(err, ErrControlRefused) {
		t.Fatalf("err = %v, want ErrControlRefused", err)
	}
}

func TestInvokeTimeout(t *testing.T) {
	net := netsim.NewNetwork()
	node := newSN(t, net, "fd00::100")
	h := newHost(t, net, "fd00::1", func(c *Config) {
		c.InvokeTimeout = 50 * time.Millisecond
	})
	if err := h.Associate(node.Addr()); err != nil {
		t.Fatal(err)
	}
	// Partition after association so the request vanishes.
	net.Partition(h.Addr(), node.Addr())
	_, err := h.Invoke(node.Addr(), wire.SvcEcho, "status", nil)
	if err != ErrInvokeTimeout {
		t.Fatalf("err = %v, want ErrInvokeTimeout", err)
	}
}

func TestServiceHandlerReceivesUnclaimed(t *testing.T) {
	net := netsim.NewNetwork()
	node := newSN(t, net, "fd00::100")
	h := newHost(t, net, "fd00::1")
	if err := h.Associate(node.Addr()); err != nil {
		t.Fatal(err)
	}
	got := make(chan Message, 1)
	h.OnService(wire.SvcPubSub, func(msg Message) { got <- msg })

	// SN pushes an unsolicited pub/sub delivery to the host.
	hdr := wire.ILPHeader{Service: wire.SvcPubSub, Conn: 999, Data: []byte("topic")}
	if err := node.Pipes().Send(h.Addr(), &hdr, []byte("event")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg.Payload) != "event" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
}

func TestUnclaimedCounted(t *testing.T) {
	net := netsim.NewNetwork()
	node := newSN(t, net, "fd00::100")
	h := newHost(t, net, "fd00::1")
	if err := h.Associate(node.Addr()); err != nil {
		t.Fatal(err)
	}
	hdr := wire.ILPHeader{Service: wire.SvcMixnet, Conn: 5}
	if err := node.Pipes().Send(h.Addr(), &hdr, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for h.UnclaimedPackets() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unclaimed never counted")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDirectConnectivity(t *testing.T) {
	net := netsim.NewNetwork()
	// Two hosts in the same /120.
	a := newHost(t, net, "fd00::a01", func(c *Config) {
		c.Direct = SameSubnet(wire.MustAddr("fd00::a01"), 120)
	})
	b := newHost(t, net, "fd00::a02")
	got := make(chan Message, 1)
	b.OnService(wire.SvcEcho, func(msg Message) { got <- msg })

	if err := a.SendDirect(b.Addr(), wire.SvcEcho, 7, nil, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg.Payload) != "direct" || msg.Src != a.Addr() {
			t.Fatalf("msg %+v", msg)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
}

func TestDirectDeniedByPolicy(t *testing.T) {
	net := netsim.NewNetwork()
	a := newHost(t, net, "fd00::a01", func(c *Config) {
		c.Direct = SameSubnet(wire.MustAddr("fd00::a01"), 120)
	})
	// Different subnet.
	err := a.SendDirect(wire.MustAddr("fd00::b01"), wire.SvcEcho, 7, nil, nil)
	if err != ErrDirectDenied {
		t.Fatalf("err = %v, want ErrDirectDenied", err)
	}
	// No policy at all.
	b := newHost(t, net, "fd00::a02")
	if err := b.SendDirect(a.Addr(), wire.SvcEcho, 7, nil, nil); err != ErrDirectDenied {
		t.Fatalf("err = %v, want ErrDirectDenied", err)
	}
}

func TestSameSubnetPolicy(t *testing.T) {
	self := wire.MustAddr("fd00::1:0:0:1")
	pol := SameSubnet(self, 64)
	if !pol(wire.MustAddr("fd00::2:0:0:9")) {
		t.Fatal("same /64 denied")
	}
	if pol(wire.MustAddr("fd01::1")) {
		t.Fatal("different /64 allowed")
	}
	if pol(wire.MustAddr("10.0.0.1")) {
		t.Fatal("v4 vs v6 allowed")
	}
	pol4 := SameSubnet(wire.MustAddr("10.1.2.3"), 24)
	if !pol4(wire.MustAddr("10.1.2.200")) {
		t.Fatal("same /24 denied")
	}
	if pol4(wire.MustAddr("10.1.3.1")) {
		t.Fatal("different /24 allowed")
	}
}

func TestConnViaPinsSN(t *testing.T) {
	net := netsim.NewNetwork()
	sn1 := newSN(t, net, "fd00::100")
	sn2 := newSN(t, net, "fd00::200")
	h := newHost(t, net, "fd00::1")
	if err := h.Associate(sn1.Addr()); err != nil {
		t.Fatal(err)
	}
	conn, err := h.NewConn(wire.SvcEcho, Via(sn2.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Via() != sn2.Addr() {
		t.Fatalf("via = %s", conn.Via())
	}
	if err := conn.Send(nil, []byte("pinned")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-conn.Receive():
		if msg.Src != sn2.Addr() {
			t.Fatalf("echo came from %s, want %s", msg.Src, sn2.Addr())
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
	// sn1 saw none of this traffic.
	if sn1.Counters().RxPackets != 0 {
		t.Fatal("pinned connection leaked through default SN")
	}
}

func TestConnCloseStopsDelivery(t *testing.T) {
	net := netsim.NewNetwork()
	node := newSN(t, net, "fd00::100")
	h := newHost(t, net, "fd00::1")
	if err := h.Associate(node.Addr()); err != nil {
		t.Fatal(err)
	}
	conn, err := h.NewConn(wire.SvcEcho)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	conn.Close() // double close is safe
	if _, ok := <-conn.Receive(); ok {
		t.Fatal("receive channel not closed")
	}
}

// §3.3 resiliency: for stateless services, SN failure is recoverable — the
// host re-associates with another SN and traffic continues.
func TestFailoverToSecondSN(t *testing.T) {
	net := netsim.NewNetwork()
	sn1 := newSN(t, net, "fd00::100")
	sn2 := newSN(t, net, "fd00::200")
	h := newHost(t, net, "fd00::1")
	if err := h.Associate(sn1.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := h.Associate(sn2.Addr()); err != nil {
		t.Fatal(err)
	}
	// sn1 dies.
	sn1.Close()
	h.Disassociate(sn1.Addr())
	fh, err := h.FirstHop()
	if err != nil || fh != sn2.Addr() {
		t.Fatalf("failover first hop %s err %v", fh, err)
	}
	conn, err := h.NewConn(wire.SvcEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(nil, []byte("after failover")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-conn.Receive():
		if string(msg.Payload) != "after failover" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout after failover")
	}
}

func TestHostAuthorizePinning(t *testing.T) {
	net := netsim.NewNetwork()
	node := newSN(t, net, "fd00::100")
	trusted := node.Identity().PublicKey()
	h := newHost(t, net, "fd00::1", func(c *Config) {
		c.Authorize = func(addr wire.Addr, id ed25519.PublicKey) bool {
			return id.Equal(trusted)
		}
	})
	if err := h.Associate(node.Addr()); err != nil {
		t.Fatal(err)
	}
	// An SN with a different identity is refused.
	rogue := newSN(t, net, "fd00::666")
	hsErr := h.Associate(rogue.Addr())
	if hsErr == nil {
		t.Fatal("associated with rogue SN")
	}
}
