// Package host implements InterEdge host support (§3.1): ILP on the
// endpoint, association with one or more first-hop SNs, the extended host
// network API through which applications invoke services, the out-of-band
// control protocol, and direct host-to-host connectivity for peers that
// are closer to each other than to their SNs (§3.2).
//
// Client-side service logic (pub/sub deliveries, anycast joins, mixnet
// onion construction, …) registers per-service handlers here; the paper
// makes the host component "responsible for implementing client-side
// support for services … that require host logic".
package host

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"interedge/internal/clock"
	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/pipe"
	"interedge/internal/wire"
)

// Errors returned by the host stack.
var (
	ErrNoFirstHop     = errors.New("host: no first-hop SN associated")
	ErrInvokeTimeout  = errors.New("host: control invocation timed out")
	ErrControlRefused = errors.New("host: control operation refused")
	ErrDirectDenied   = errors.New("host: direct connectivity not permitted to destination")
)

// Message is one inbound ILP packet delivered to a connection or service
// handler. Fields are copies and safe to retain.
type Message struct {
	Src     wire.Addr
	Hdr     wire.ILPHeader
	Payload []byte
}

// ServiceHandler receives packets for a service ID that are not claimed by
// an open connection (client-side service logic).
type ServiceHandler func(msg Message)

// DirectPolicy decides whether the host may bypass SNs and exchange
// packets directly with the given destination host (§3.2 "Direct
// connectivity"). A typical policy allows hosts in the same subnet.
type DirectPolicy func(dst wire.Addr) bool

// Config configures a Host.
type Config struct {
	// Transport attaches the host to the substrate. Required for New;
	// ignored by NewOnEngine (the engine owns the transport).
	Transport netsim.Transport
	// Addr is the host's address. Required for NewOnEngine, where there is
	// no per-host transport to read it from; ignored by New.
	Addr wire.Addr
	// Identity is the host's signing identity. Required.
	Identity handshake.Identity
	// Clock defaults to the real clock.
	Clock clock.Clock
	// FirstHops optionally pre-configures first-hop SN addresses; the
	// first successfully associated becomes the default.
	FirstHops []wire.Addr
	// Authorize verifies pipe peers (e.g. pinning the SN identity).
	Authorize pipe.AuthorizePeer
	// Direct, if non-nil, enables direct host-to-host connectivity for
	// destinations the policy approves.
	Direct DirectPolicy
	// InvokeTimeout bounds control-protocol invocations (default 3s).
	InvokeTimeout time.Duration
	// KeepaliveInterval enables pipe liveness probes with dead-peer
	// detection (see pipe.Config.KeepaliveInterval); 0 disables them. A
	// host uses this to notice an unannounced first-hop SN death: the dead
	// SN is disassociated and OnPeerDown fires so the association layer can
	// re-place the host onto a live SN.
	KeepaliveInterval time.Duration
	// DeadAfter is the idle window before a peer is declared dead
	// (default 4×KeepaliveInterval).
	DeadAfter time.Duration
	// OnPeerDown is notified after a dead first-hop SN has been
	// disassociated. Optional.
	OnPeerDown pipe.PeerDownHandler
	// OnPipeMoved is notified after a first-hop SN announced its drain
	// successor (SvcPipeMove) and the pipe was rebound to it. Optional.
	OnPipeMoved func(old, successor wire.Addr)
	// FastHandler, when set, receives every inbound data packet (anything
	// that is not control-plane traffic) WITHOUT the copy the normal
	// demultiplexer makes: hdr.Data and payload alias pipe-internal buffers
	// and are only valid for the duration of the call. Connections and
	// OnService handlers are bypassed. This is the weightless-fleet receive
	// path: a million lite hosts cannot afford two allocations per packet.
	FastHandler func(src wire.Addr, hdr wire.ILPHeader, payload []byte)
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// pipeBackend is the pipe surface a Host needs, factored out so a host can
// ride either its own pipe.Manager (New — dedicated transport, RX workers,
// keepalive loop) or a shared pipe.Engine endpoint (NewOnEngine — pure
// state, no goroutines). pipe.Manager satisfies it directly; engineBinding
// adapts an Engine by currying the host's local address into the
// (local, remote)-keyed engine API.
type pipeBackend interface {
	LocalAddr() wire.Addr
	Identity() handshake.Identity
	Connect(addr wire.Addr) error
	Redial(addr wire.Addr) error
	DropPeer(addr wire.Addr)
	RebindPeer(oldAddr, newAddr wire.Addr) error
	PeerIdentity(addr wire.Addr) (ed25519.PublicKey, bool)
	Send(dst wire.Addr, hdr *wire.ILPHeader, payload []byte) error
	SendHeaderBytes(dst wire.Addr, hdrBytes, payload []byte) error
	Close() error
}

// Host is one InterEdge-enabled endpoint.
type Host struct {
	cfg   Config
	pipes pipeBackend
	mgr   *pipe.Manager // non-nil only for New-built hosts; see Pipes

	mu        sync.Mutex
	firstHops []wire.Addr
	conns     map[connKey]*Conn
	handlers  map[wire.ServiceID]ServiceHandler
	invokes   map[wire.ConnectionID]chan ControlResult
	closed    bool

	nextConn atomic.Uint64

	rxUnclaimed atomic.Uint64
}

type connKey struct {
	svc  wire.ServiceID
	conn wire.ConnectionID
}

// ControlResult is the parsed outcome of a control invocation.
type ControlResult struct {
	Data json.RawMessage
	Err  error
}

// New creates a host and associates it with any pre-configured first hops.
func New(cfg Config) (*Host, error) {
	if cfg.Transport == nil {
		return nil, errors.New("host: Config.Transport is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.InvokeTimeout == 0 {
		cfg.InvokeTimeout = 3 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	h := &Host{
		cfg:      cfg,
		conns:    make(map[connKey]*Conn),
		handlers: make(map[wire.ServiceID]ServiceHandler),
		invokes:  make(map[wire.ConnectionID]chan ControlResult),
	}
	h.nextConn.Store(1)
	mgr, err := pipe.New(pipe.Config{
		Transport:         cfg.Transport,
		Identity:          cfg.Identity,
		Clock:             cfg.Clock,
		Handler:           h.handlePacket,
		Authorize:         cfg.Authorize,
		KeepaliveInterval: cfg.KeepaliveInterval,
		DeadAfter:         cfg.DeadAfter,
		OnPeerDown:        h.onPeerDown,
	})
	if err != nil {
		return nil, err
	}
	h.mgr = mgr
	h.pipes = mgr
	for _, sn := range cfg.FirstHops {
		if err := h.Associate(sn); err != nil {
			h.pipes.Close()
			return nil, fmt.Errorf("host: associate with %s: %w", sn, err)
		}
	}
	return h, nil
}

// Addr returns the host's address.
func (h *Host) Addr() wire.Addr { return h.pipes.LocalAddr() }

// Identity returns the host's identity.
func (h *Host) Identity() handshake.Identity { return h.pipes.Identity() }

// Pipes exposes the pipe manager for tests. It is nil for engine-backed
// hosts (NewOnEngine), which have no manager of their own.
func (h *Host) Pipes() *pipe.Manager { return h.mgr }

// Associate establishes a pipe to a first-hop SN and records it. The
// paper's discovery mechanisms (configuration, anycast, lookup) all end
// here with a concrete SN address.
func (h *Host) Associate(sn wire.Addr) error {
	if err := h.pipes.Connect(sn); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, a := range h.firstHops {
		if a == sn {
			return nil
		}
	}
	h.firstHops = append(h.firstHops, sn)
	return nil
}

// Reassociate re-establishes the pipe to a first-hop SN from scratch —
// the recovery step after an SN crash/restart (§3.3: "for stateless
// services, SN failures are like router failures and can be easily
// recovered from"). Service-level state is reconstructed by clients
// (e.g. pubsub.Client.Reestablish).
func (h *Host) Reassociate(sn wire.Addr) error {
	if err := h.pipes.Redial(sn); err != nil {
		return err
	}
	return h.Associate(sn)
}

// Disassociate forgets a first-hop SN (the pipe itself is retained until
// the peer is dropped).
func (h *Host) Disassociate(sn wire.Addr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, a := range h.firstHops {
		if a == sn {
			h.firstHops = append(h.firstHops[:i], h.firstHops[i+1:]...)
			return
		}
	}
}

// FirstHop returns the default first-hop SN.
func (h *Host) FirstHop() (wire.Addr, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.firstHops) == 0 {
		return wire.Addr{}, ErrNoFirstHop
	}
	return h.firstHops[0], nil
}

// FirstHops returns all associated first-hop SNs.
func (h *Host) FirstHops() []wire.Addr {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]wire.Addr(nil), h.firstHops...)
}

// SNIdentity returns the verified identity of an associated SN.
func (h *Host) SNIdentity(sn wire.Addr) (ed25519.PublicKey, bool) {
	return h.pipes.PeerIdentity(sn)
}

// handlePacket demultiplexes inbound packets: control replies, open
// connections, then service handlers. It may run concurrently for packets
// from different pipe peers; everything it delivers is copied first.
func (h *Host) handlePacket(_ pipe.Sender, src wire.Addr, hdr wire.ILPHeader, _ []byte, payload []byte) {
	// Control-plane traffic is handled regardless of FastHandler: control
	// replies complete Invoke waiters and SvcPipeMove drives drain rebinds,
	// so lite fleet hosts still exercise the real drain/failover machinery.
	if hdr.Service == wire.SvcControl {
		h.handleControlReply(hdr.Conn, append([]byte(nil), payload...))
		return
	}
	if hdr.Service == wire.SvcPipeMove {
		h.handlePipeMove(src, payload)
		return
	}
	if h.cfg.FastHandler != nil {
		// Zero-copy delivery: hdr.Data and payload alias pipe buffers and
		// are only valid until return (see Config.FastHandler).
		h.cfg.FastHandler(src, hdr, payload)
		return
	}
	msg := Message{
		Src:     src,
		Hdr:     wire.ILPHeader{Service: hdr.Service, Conn: hdr.Conn, Data: append([]byte(nil), hdr.Data...)},
		Payload: append([]byte(nil), payload...),
	}
	h.mu.Lock()
	if c, ok := h.conns[connKey{hdr.Service, hdr.Conn}]; ok {
		h.mu.Unlock()
		c.deliver(msg)
		return
	}
	handler, ok := h.handlers[hdr.Service]
	h.mu.Unlock()
	if ok {
		handler(msg)
		return
	}
	h.rxUnclaimed.Add(1)
}

func (h *Host) handleControlReply(conn wire.ConnectionID, payload []byte) {
	h.mu.Lock()
	ch, ok := h.invokes[conn]
	if ok {
		delete(h.invokes, conn)
	}
	h.mu.Unlock()
	if !ok {
		h.rxUnclaimed.Add(1)
		return
	}
	var resp struct {
		OK    bool            `json:"ok"`
		Error string          `json:"error"`
		Data  json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(payload, &resp); err != nil {
		ch <- ControlResult{Err: fmt.Errorf("host: malformed control reply: %w", err)}
		return
	}
	if !resp.OK {
		ch <- ControlResult{Err: fmt.Errorf("%w: %s", ErrControlRefused, resp.Error)}
		return
	}
	ch <- ControlResult{Data: resp.Data}
}

// handlePipeMove reacts to a draining first-hop SN announcing its
// successor. The notice arrives over the sealed pipe from the SN itself,
// so only the node currently holding our keys can move its own pipe. The
// pipe is rebound in place — same master secret, TX epoch rotated — and
// every first-hop record and pinned connection pointing at the old SN is
// repointed, so traffic continues without a re-handshake.
func (h *Host) handlePipeMove(src wire.Addr, payload []byte) {
	succ, err := wire.DecodePipeMove(payload)
	if err != nil {
		h.cfg.Logf("host %s: malformed pipe-move from %s: %v", h.Addr(), src, err)
		return
	}
	if err := h.pipes.RebindPeer(src, succ); err != nil {
		if errors.Is(err, pipe.ErrPeerExists) {
			// A full handshake with the successor raced the move and won;
			// its keys are fresher, so just drop the stale pipe.
			h.pipes.DropPeer(src)
		} else {
			h.cfg.Logf("host %s: pipe-move %s→%s failed: %v", h.Addr(), src, succ, err)
			return
		}
	}
	h.Repoint(src, succ)
	h.cfg.Logf("host %s: first-hop pipe moved %s→%s", h.Addr(), src, succ)
	if h.cfg.OnPipeMoved != nil {
		h.cfg.OnPipeMoved(src, succ)
	}
}

// Repoint redirects every first-hop record and pinned connection from old
// to succ without touching the pipes themselves. The drain path calls it
// after rebinding the pipe in place; the association layer calls it after
// a failover re-association, where the pipe to succ is freshly established
// but pinned connections would otherwise keep addressing the dead SN.
func (h *Host) Repoint(old, succ wire.Addr) {
	h.mu.Lock()
	replaced := false
	for i, a := range h.firstHops {
		if a == succ {
			replaced = true
		}
		if a == old {
			h.firstHops[i] = succ
			replaced = true
		}
	}
	if !replaced {
		h.firstHops = append(h.firstHops, succ)
	}
	for _, c := range h.conns {
		if c.via == old {
			c.via = succ
		}
	}
	h.mu.Unlock()
}

// onPeerDown reacts to dead-peer detection on a first-hop pipe: the dead
// SN is disassociated so FirstHop never hands out a corpse, then the
// configured handler (typically the association layer's re-placement
// logic) is notified.
func (h *Host) onPeerDown(addr wire.Addr, identity ed25519.PublicKey) {
	h.Disassociate(addr)
	h.cfg.Logf("host %s: first-hop pipe to %s died", h.Addr(), addr)
	if h.cfg.OnPeerDown != nil {
		h.cfg.OnPeerDown(addr, identity)
	}
}

// OnService registers client-side logic for a service ID.
func (h *Host) OnService(svc wire.ServiceID, handler ServiceHandler) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handlers[svc] = handler
}

// UnclaimedPackets reports inbound packets that matched no connection,
// handler, or pending invocation.
func (h *Host) UnclaimedPackets() uint64 { return h.rxUnclaimed.Load() }

// Invoke performs an out-of-band control operation against a service on
// the given SN and waits for the reply (§3.2 second invocation style).
func (h *Host) Invoke(sn wire.Addr, target wire.ServiceID, op string, args any) (json.RawMessage, error) {
	var raw json.RawMessage
	if args != nil {
		b, err := json.Marshal(args)
		if err != nil {
			return nil, fmt.Errorf("host: marshal args: %w", err)
		}
		raw = b
	}
	body, err := json.Marshal(struct {
		Target wire.ServiceID  `json:"target"`
		Op     string          `json:"op"`
		Args   json.RawMessage `json:"args,omitempty"`
	}{target, op, raw})
	if err != nil {
		return nil, err
	}
	conn := wire.ConnectionID(h.nextConn.Add(1))
	ch := make(chan ControlResult, 1)
	h.mu.Lock()
	h.invokes[conn] = ch
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.invokes, conn)
		h.mu.Unlock()
	}()

	if err := h.pipes.Send(sn, &wire.ILPHeader{Service: wire.SvcControl, Conn: conn}, body); err != nil {
		return nil, err
	}
	select {
	case res := <-ch:
		return res.Data, res.Err
	case <-h.cfg.Clock.After(h.cfg.InvokeTimeout):
		return nil, ErrInvokeTimeout
	}
}

// SendHeaderBytes sends an already-encoded ILP header with payload over
// the pipe to sn. This is the load-generator fast path: a fleet driver
// pre-encodes each flow's header once and sends with zero per-packet
// allocations (the pipe layer seals in pooled buffers).
func (h *Host) SendHeaderBytes(sn wire.Addr, hdrBytes, payload []byte) error {
	return h.pipes.SendHeaderBytes(sn, hdrBytes, payload)
}

// InvokeFirstHop is Invoke against the default first-hop SN.
func (h *Host) InvokeFirstHop(target wire.ServiceID, op string, args any) (json.RawMessage, error) {
	sn, err := h.FirstHop()
	if err != nil {
		return nil, err
	}
	return h.Invoke(sn, target, op, args)
}

// ConnOption customizes NewConn.
type ConnOption func(*Conn)

// Via pins the connection's first-hop SN ("the host will use whichever
// first-hop SN is appropriate for a given connection", §3.1 — often
// dictated by who pays for the service).
func Via(sn wire.Addr) ConnOption {
	return func(c *Conn) { c.via = sn }
}

// WithBuffer sets the connection's receive buffer depth (default 256).
func WithBuffer(n int) ConnOption {
	return func(c *Conn) { c.bufDepth = n }
}

// Conn is one service connection: a (service, connection-ID) pair flowing
// through a first-hop SN.
type Conn struct {
	host     *Host
	svc      wire.ServiceID
	id       wire.ConnectionID
	via      wire.Addr
	bufDepth int
	rx       chan Message

	closeOnce sync.Once
}

// NewConn opens a service connection through the host's first-hop SN (or
// the SN pinned with Via). This is the explicit invocation style of §3.2:
// the desired service is signalled to the SN via the ILP header; no
// composition of multiple services is possible on one connection.
func (h *Host) NewConn(svc wire.ServiceID, opts ...ConnOption) (*Conn, error) {
	c := &Conn{
		host:     h,
		svc:      svc,
		id:       wire.ConnectionID(h.nextConn.Add(1)),
		bufDepth: 256,
	}
	for _, o := range opts {
		o(c)
	}
	if !c.via.IsValid() {
		fh, err := h.FirstHop()
		if err != nil {
			return nil, err
		}
		c.via = fh
	}
	if err := h.pipes.Connect(c.via); err != nil {
		return nil, err
	}
	c.rx = make(chan Message, c.bufDepth)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, errors.New("host: closed")
	}
	h.conns[connKey{svc, c.id}] = c
	return c, nil
}

// Service returns the connection's service ID.
func (c *Conn) Service() wire.ServiceID { return c.svc }

// ID returns the connection ID.
func (c *Conn) ID() wire.ConnectionID { return c.id }

// Via returns the first-hop SN this connection uses. Guarded by the host
// lock because a pipe move (drain) repoints pinned connections in place.
func (c *Conn) Via() wire.Addr {
	c.host.mu.Lock()
	defer c.host.mu.Unlock()
	return c.via
}

// Send transmits payload with optional service-specific header data. Per
// §4, the header data may differ per packet within a connection.
func (c *Conn) Send(svcData, payload []byte) error {
	hdr := wire.ILPHeader{Service: c.svc, Conn: c.id, Data: svcData}
	return c.host.pipes.Send(c.Via(), &hdr, payload)
}

// SendVia transmits through an explicit SN (e.g. a pass-through SN chain).
func (c *Conn) SendVia(sn wire.Addr, svcData, payload []byte) error {
	if err := c.host.pipes.Connect(sn); err != nil {
		return err
	}
	hdr := wire.ILPHeader{Service: c.svc, Conn: c.id, Data: svcData}
	return c.host.pipes.Send(sn, &hdr, payload)
}

// Receive returns the connection's inbound message channel. It is closed
// when the connection closes.
func (c *Conn) Receive() <-chan Message { return c.rx }

func (c *Conn) deliver(msg Message) {
	select {
	case c.rx <- msg:
	default: // receiver not draining: drop, as the network would
	}
}

// Close tears down the connection.
func (c *Conn) Close() {
	c.closeOnce.Do(func() {
		c.host.mu.Lock()
		delete(c.host.conns, connKey{c.svc, c.id})
		c.host.mu.Unlock()
		close(c.rx)
	})
}

// SendDirect exchanges a packet directly with another InterEdge host,
// bypassing SNs, when the direct policy allows it (§3.2: hosts in the
// same subnet, or closer to each other than to their SNs).
func (h *Host) SendDirect(dst wire.Addr, svc wire.ServiceID, conn wire.ConnectionID, svcData, payload []byte) error {
	if h.cfg.Direct == nil || !h.cfg.Direct(dst) {
		return ErrDirectDenied
	}
	if err := h.pipes.Connect(dst); err != nil {
		return err
	}
	hdr := wire.ILPHeader{Service: svc, Conn: conn, Data: svcData}
	return h.pipes.Send(dst, &hdr, payload)
}

// Close shuts the host down.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	h.mu.Unlock()
	// Stop the pipe backend first. A manager's Close waits for every RX
	// worker, so once it returns no handlePacket can race a conn-channel
	// close. An engine binding only unregisters the endpoint (the engine
	// keeps running for its other hosts); its peers are removed atomically,
	// so no NEW packet dispatches here afterwards — see NewOnEngine for the
	// residual in-flight-handler caveat.
	err := h.pipes.Close()
	h.mu.Lock()
	conns := make([]*Conn, 0, len(h.conns))
	for _, c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// SameSubnet returns a DirectPolicy allowing direct connectivity to
// destinations sharing a prefix of the given bit length with the host's
// address.
func SameSubnet(self wire.Addr, bits int) DirectPolicy {
	return func(dst wire.Addr) bool {
		if self.Is4() != dst.Is4() {
			return false
		}
		var a, b []byte
		if self.Is4() {
			a4, b4 := self.As4(), dst.As4()
			a, b = a4[:], b4[:]
		} else {
			a16, b16 := self.As16(), dst.As16()
			a, b = a16[:], b16[:]
		}
		full, rem := bits/8, bits%8
		if full > len(a) {
			full, rem = len(a), 0
		}
		for i := 0; i < full; i++ {
			if a[i] != b[i] {
				return false
			}
		}
		if rem > 0 && full < len(a) {
			mask := byte(0xFF << (8 - rem))
			if a[full]&mask != b[full]&mask {
				return false
			}
		}
		return true
	}
}
