package host

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"time"

	"interedge/internal/clock"
	"interedge/internal/handshake"
	"interedge/internal/pipe"
	"interedge/internal/wire"
)

// engineBinding adapts one pipe.Engine endpoint to the pipeBackend
// interface by currying the host's local address into every call. It holds
// no goroutines, channels, or buffers — an engine-backed host is pure
// state, which is what makes 10^5–10^6 of them feasible.
type engineBinding struct {
	eng   *pipe.Engine
	local wire.Addr
	id    handshake.Identity
}

func (b *engineBinding) LocalAddr() wire.Addr          { return b.local }
func (b *engineBinding) Identity() handshake.Identity  { return b.id }
func (b *engineBinding) Connect(addr wire.Addr) error  { return b.eng.Connect(b.local, addr) }
func (b *engineBinding) Redial(addr wire.Addr) error   { return b.eng.Redial(b.local, addr) }
func (b *engineBinding) DropPeer(addr wire.Addr)       { b.eng.DropPeer(b.local, addr) }
func (b *engineBinding) RebindPeer(oldAddr, newAddr wire.Addr) error {
	return b.eng.RebindPeer(b.local, oldAddr, newAddr)
}
func (b *engineBinding) PeerIdentity(addr wire.Addr) (ed25519.PublicKey, bool) {
	return b.eng.PeerIdentity(b.local, addr)
}
func (b *engineBinding) Send(dst wire.Addr, hdr *wire.ILPHeader, payload []byte) error {
	return b.eng.Send(b.local, dst, hdr, payload)
}
func (b *engineBinding) SendHeaderBytes(dst wire.Addr, hdrBytes, payload []byte) error {
	return b.eng.SendHeaderBytes(b.local, dst, hdrBytes, payload)
}

// Close unregisters the endpoint from the engine — never the engine
// itself, which is shared with every other lite host.
func (b *engineBinding) Close() error {
	b.eng.RemoveEndpoint(b.local)
	return nil
}

// NewOnEngine creates a lite host: a full Host in every API respect —
// associations, connections, control invocations, SvcPipeMove rebinds,
// real handshakes and PSP epochs — but backed by a shared pipe.Engine
// endpoint instead of a private pipe.Manager. The host itself owns no
// goroutines; its per-instance cost is its maps and the engine's
// per-endpoint/per-pipe state (~O(100B–1KB)).
//
// cfg.Addr and cfg.Identity are required; cfg.Transport is ignored.
// Keepalive knobs live on the engine, so cfg.KeepaliveInterval/DeadAfter
// are ignored too (OnPeerDown still fires, driven by the engine's sweep).
// Pipes() returns nil for engine-backed hosts.
//
// Close unregisters the endpoint but, unlike a manager-backed Close, does
// not wait for in-flight packet handlers on the engine's workers; callers
// tearing down conns mid-traffic should quiesce senders first (the fleet
// driver stops load before teardown).
func NewOnEngine(eng *pipe.Engine, cfg Config) (*Host, error) {
	if eng == nil {
		return nil, errors.New("host: engine is required")
	}
	if !cfg.Addr.IsValid() {
		return nil, errors.New("host: Config.Addr is required for engine-backed hosts")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.InvokeTimeout == 0 {
		cfg.InvokeTimeout = 3 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	h := &Host{
		cfg:      cfg,
		conns:    make(map[connKey]*Conn),
		handlers: make(map[wire.ServiceID]ServiceHandler),
		invokes:  make(map[wire.ConnectionID]chan ControlResult),
	}
	h.nextConn.Store(1)
	h.pipes = &engineBinding{eng: eng, local: cfg.Addr, id: cfg.Identity}
	if err := eng.AddEndpoint(pipe.EndpointConfig{
		Addr:       cfg.Addr,
		Identity:   cfg.Identity,
		Handler:    h.handlePacket,
		Authorize:  cfg.Authorize,
		OnPeerDown: h.onPeerDown,
	}); err != nil {
		return nil, err
	}
	for _, sn := range cfg.FirstHops {
		if err := h.Associate(sn); err != nil {
			h.pipes.Close()
			return nil, fmt.Errorf("host: associate with %s: %w", sn, err)
		}
	}
	return h, nil
}
