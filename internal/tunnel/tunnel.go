// Package tunnel implements WireGuard-style encrypted tunnels for the
// Appendix C direct-peering benchmark: "we benchmark Wireguard, a widely
// used VPN tunnel. A commodity (16-core) server could easily maintain
// 98,000 simultaneous tunnels, each doing symmetric key rotation every
// three minutes."
//
// Each tunnel keeps a chaining key in the WireGuard spirit: a rotation
// generates a fresh ephemeral X25519 key, mixes the Diffie-Hellman result
// into the chain with HKDF, and derives new symmetric send/receive keys.
// The Manager maintains tens of thousands of tunnels, tracks rotation CPU
// work and the handshake bytes that would cross the wire, and exposes the
// numbers the benchmark reports.
package tunnel

import (
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"time"

	"interedge/internal/cryptutil"
)

// HandshakeBytesPerRotation models WireGuard's handshake cost on the wire:
// a 148-byte initiation plus a 92-byte response.
const HandshakeBytesPerRotation = 148 + 92

// Tunnel is one encrypted tunnel endpoint.
type Tunnel struct {
	mu      sync.Mutex
	peerPub []byte
	chain   []byte
	sendKey cryptutil.Key
	recvKey cryptutil.Key
	lastRot time.Time
	rotated uint64
}

// NewTunnel creates a tunnel to the peer with the given static public key,
// performing the initial handshake rotation at time now.
func NewTunnel(peerPub []byte, now time.Time) (*Tunnel, error) {
	if len(peerPub) != 32 {
		return nil, errors.New("tunnel: peer public key must be 32 bytes")
	}
	t := &Tunnel{
		peerPub: append([]byte(nil), peerPub...),
		chain:   []byte("interedge-tunnel-init"),
	}
	if err := t.Rotate(now); err != nil {
		return nil, err
	}
	t.rotated = 0 // the initial handshake is not a "rotation"
	return t, nil
}

// Rotate performs one symmetric key rotation: fresh ephemeral, DH with the
// peer's static key, HKDF chain update, and new transport keys. This is
// the real cryptographic work the Appendix C benchmark measures.
func (t *Tunnel) Rotate(now time.Time) error {
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return fmt.Errorf("tunnel: ephemeral: %w", err)
	}
	dh, err := cryptutil.X25519Shared(eph, t.peerPub)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	chain, err := cryptutil.HKDF(dh, t.chain, []byte("interedge-tunnel-chain"), 32)
	if err != nil {
		return err
	}
	send, err := cryptutil.DeriveKey(chain, nil, "tunnel-send")
	if err != nil {
		return err
	}
	recv, err := cryptutil.DeriveKey(chain, nil, "tunnel-recv")
	if err != nil {
		return err
	}
	t.chain = chain
	t.sendKey = send
	t.recvKey = recv
	t.lastRot = now
	t.rotated++
	return nil
}

// LastRotation returns the time of the last rotation.
func (t *Tunnel) LastRotation() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastRot
}

// Rotations returns the number of rotations performed.
func (t *Tunnel) Rotations() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rotated
}

// Keys returns the current transport keys (tests verify they change).
func (t *Tunnel) Keys() (send, recv cryptutil.Key) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sendKey, t.recvKey
}

// Stats aggregates manager-wide counters.
type Stats struct {
	Tunnels        int
	Rotations      uint64
	HandshakeBytes uint64
	// RotationCPU is the cumulative wall time spent inside Rotate calls —
	// single-threaded, so it is also CPU time.
	RotationCPU time.Duration
}

// Manager maintains a set of tunnels and rotates them on schedule.
type Manager struct {
	interval time.Duration

	mu      sync.Mutex
	tunnels []*Tunnel
	stats   Stats
}

// NewManager creates a manager rotating each tunnel every interval.
func NewManager(interval time.Duration) *Manager {
	return &Manager{interval: interval}
}

// AddTunnel creates and tracks a tunnel to the given peer key.
func (m *Manager) AddTunnel(peerPub []byte, now time.Time) (*Tunnel, error) {
	t, err := NewTunnel(peerPub, now)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.tunnels = append(m.tunnels, t)
	m.stats.Tunnels++
	m.mu.Unlock()
	return t, nil
}

// RotateDue rotates every tunnel whose interval has elapsed at now,
// returning how many rotated. It records CPU time and handshake bytes.
func (m *Manager) RotateDue(now time.Time) (int, error) {
	m.mu.Lock()
	due := make([]*Tunnel, 0)
	for _, t := range m.tunnels {
		if now.Sub(t.LastRotation()) >= m.interval {
			due = append(due, t)
		}
	}
	m.mu.Unlock()

	start := time.Now()
	for _, t := range due {
		if err := t.Rotate(now); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)

	m.mu.Lock()
	m.stats.Rotations += uint64(len(due))
	m.stats.HandshakeBytes += uint64(len(due)) * HandshakeBytesPerRotation
	m.stats.RotationCPU += elapsed
	m.mu.Unlock()
	return len(due), nil
}

// Snapshot returns current counters.
func (m *Manager) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Interval returns the rotation interval.
func (m *Manager) Interval() time.Duration { return m.interval }
