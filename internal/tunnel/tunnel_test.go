package tunnel

import (
	"testing"
	"time"

	"interedge/internal/cryptutil"
)

func peerKey(t testing.TB) []byte {
	t.Helper()
	kp, err := cryptutil.NewStaticKeypair()
	if err != nil {
		t.Fatal(err)
	}
	return kp.PublicKeyBytes()
}

func TestNewTunnelDerivesKeys(t *testing.T) {
	tn, err := NewTunnel(peerKey(t), time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	send, recv := tn.Keys()
	if send.Zero() || recv.Zero() {
		t.Fatal("zero transport keys")
	}
	if send.Equal(recv) {
		t.Fatal("send and recv keys identical")
	}
}

func TestBadPeerKeyRejected(t *testing.T) {
	if _, err := NewTunnel([]byte("short"), time.Unix(0, 0)); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestRotationChangesKeys(t *testing.T) {
	tn, err := NewTunnel(peerKey(t), time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	s1, r1 := tn.Keys()
	if err := tn.Rotate(time.Unix(180, 0)); err != nil {
		t.Fatal(err)
	}
	s2, r2 := tn.Keys()
	if s1.Equal(s2) || r1.Equal(r2) {
		t.Fatal("rotation did not change keys")
	}
	if tn.Rotations() != 1 {
		t.Fatalf("rotations = %d", tn.Rotations())
	}
}

func TestManagerRotatesOnlyDueTunnels(t *testing.T) {
	m := NewManager(3 * time.Minute)
	start := time.Unix(0, 0)
	t1, err := m.AddTunnel(peerKey(t), start)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := m.AddTunnel(peerKey(t), start.Add(2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	// At t=3min, only t1 is due.
	n, err := m.RotateDue(start.Add(3 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || t1.Rotations() != 1 || t2.Rotations() != 0 {
		t.Fatalf("n=%d r1=%d r2=%d", n, t1.Rotations(), t2.Rotations())
	}
	// At t=5min, t2 is due.
	n, err = m.RotateDue(start.Add(5 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || t2.Rotations() != 1 {
		t.Fatalf("n=%d r2=%d", n, t2.Rotations())
	}
}

func TestManagerStats(t *testing.T) {
	m := NewManager(time.Minute)
	start := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		if _, err := m.AddTunnel(peerKey(t), start); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.RotateDue(start.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	if st.Tunnels != 10 || st.Rotations != 10 {
		t.Fatalf("stats %+v", st)
	}
	if st.HandshakeBytes != 10*HandshakeBytesPerRotation {
		t.Fatalf("handshake bytes %d", st.HandshakeBytes)
	}
	if st.RotationCPU <= 0 {
		t.Fatal("no CPU time recorded")
	}
}

// Independent tunnels derive independent keys.
func TestTunnelsIndependent(t *testing.T) {
	now := time.Unix(0, 0)
	t1, err := NewTunnel(peerKey(t), now)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewTunnel(peerKey(t), now)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := t1.Keys()
	s2, _ := t2.Keys()
	if s1.Equal(s2) {
		t.Fatal("two tunnels derived the same key")
	}
}

func BenchmarkRotation(b *testing.B) {
	tn, err := NewTunnel(peerKey(b), time.Unix(0, 0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tn.Rotate(time.Unix(int64(i), 0)); err != nil {
			b.Fatal(err)
		}
	}
}
