//go:build linux && (amd64 || arm64)

package netsim

import (
	"net"
	"syscall"
	"unsafe"

	"interedge/internal/wire"
)

// UDP generic segmentation/receive offload (Linux 4.18+): one sendmsg
// carries a "super-datagram" of up to 64 equal-size segments that the
// kernel (or NIC) splits into individual UDP datagrams, and UDP_GRO hands
// the receiver coalesced buffers plus the segment size in a cmsg. For an
// egress batch of small packets to one peer this collapses N datagram
// traversals of the UDP stack into one.
const (
	solUDP        = 17  // SOL_UDP
	udpSegmentOpt = 103 // UDP_SEGMENT
	udpGROOpt     = 104 // UDP_GRO
	gsoMaxSegs    = 64
)

// gsoMsg is one message of a GSO flush: either a single datagram or a
// super-datagram of segs equal-size segments (the last may be shorter)
// bound for one destination.
type gsoMsg struct {
	buf     *[]byte
	ep      *net.UDPAddr
	segs    int
	segSize int
}

// probeGSO reports whether the socket accepts UDP_SEGMENT.
func (t *UDPTransport) probeGSO() bool {
	ok := false
	_ = t.rc.Control(func(fd uintptr) {
		ok = syscall.SetsockoptInt(int(fd), solUDP, udpSegmentOpt, 0) == nil
	})
	return ok
}

func (t *UDPTransport) enableGRO() bool {
	ok := false
	_ = t.rc.Control(func(fd uintptr) {
		ok = syscall.SetsockoptInt(int(fd), solUDP, udpGROOpt, 1) == nil
	})
	return ok
}

func (t *UDPTransport) disableGRO() {
	_ = t.rc.Control(func(fd uintptr) {
		_ = syscall.SetsockoptInt(int(fd), solUDP, udpGROOpt, 0)
	})
}

// UDPGSOSupported reports whether this kernel accepts UDP_SEGMENT on a
// UDP socket. Used by tests and the CI capability probe.
func UDPGSOSupported() bool {
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_DGRAM|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		return false
	}
	defer syscall.Close(fd)
	return syscall.SetsockoptInt(fd, solUDP, udpSegmentOpt, 0) == nil
}

// releaseGSO returns a flush's super-datagram buffers to their pool.
func (t *UDPTransport) releaseGSO(st *udpTxState) {
	for i, m := range st.sys.gsoMsgs {
		t.gsoPool.Put(m.buf)
		st.sys.gsoMsgs[i] = gsoMsg{}
	}
	st.sys.gsoMsgs = st.sys.gsoMsgs[:0]
}

// sendBatchGSO encodes the batch into per-destination super-datagrams and
// flushes them with one sendmmsg. A super-datagram covers a run of
// consecutive same-destination datagrams whose encoded sizes satisfy the
// GSO contract: every segment the same size, except a shorter final one
// (a smaller datagram closes its run; a larger one starts a new run).
func (t *UDPTransport) sendBatchGSO(dgs []wire.Datagram) (int, error) {
	st := t.txPool.Get().(*udpTxState)
	defer t.releaseTx(st)
	i := 0
	for i < len(dgs) {
		ep, ok := t.dir.Lookup(dgs[i].Dst)
		if !ok {
			n, werr := t.writeGSOMsgs(st)
			if werr != nil {
				return n, werr
			}
			return i, ErrUnknownDestination
		}
		dgs[i].Src = t.addr
		segSize := dgs[i].EncodedSize()
		maxSegs := gsoMaxSegs
		if bySize := maxUDPPayload / segSize; bySize < maxSegs {
			maxSegs = bySize
		}
		if maxSegs < 1 {
			maxSegs = 1
		}
		j := i + 1
		for j < len(dgs) && j-i < maxSegs && dgs[j].Dst == dgs[i].Dst {
			sz := dgs[j].EncodedSize()
			if sz > segSize {
				break
			}
			dgs[j].Src = t.addr
			j++
			if sz < segSize {
				break // a shorter segment must be the last of its run
			}
		}
		bp := t.gsoPool.Get().(*[]byte)
		buf := (*bp)[:0]
		for k := i; k < j; k++ {
			var err error
			buf, err = dgs[k].AppendEncode(buf)
			if err != nil {
				// Queue what encoded (datagrams [i, k)), flush, and report
				// the offender, mirroring the non-GSO path's accounting.
				if k > i {
					*bp = buf
					st.sys.gsoMsgs = append(st.sys.gsoMsgs, gsoMsg{buf: bp, ep: ep, segs: k - i, segSize: segSize})
				} else {
					t.gsoPool.Put(bp)
				}
				n, werr := t.writeGSOMsgs(st)
				if werr != nil {
					return n, werr
				}
				return k, err
			}
		}
		*bp = buf
		st.sys.gsoMsgs = append(st.sys.gsoMsgs, gsoMsg{buf: bp, ep: ep, segs: j - i, segSize: segSize})
		i = j
	}
	return t.writeGSOMsgs(st)
}

// writeGSOMsgs flushes the queued messages with sendmmsg, attaching a
// UDP_SEGMENT cmsg to each multi-segment super-datagram. It returns the
// number of datagrams (segments) handed to the kernel. errGSOUnsupported
// is only returned when nothing was sent, so the caller can safely replay
// the whole batch on the plain path.
func (t *UDPTransport) writeGSOMsgs(st *udpTxState) (int, error) {
	nm := len(st.sys.gsoMsgs)
	if nm == 0 {
		return 0, nil
	}
	s := &st.sys
	s.grow(nm)
	cmsgSpace := syscall.CmsgSpace(2)
	if cap(s.cmsgs) < nm*cmsgSpace {
		s.cmsgs = make([]byte, nm*cmsgSpace)
	}
	s.cmsgs = s.cmsgs[:nm*cmsgSpace]
	for i := range s.gsoMsgs {
		m := &s.gsoMsgs[i]
		b := *m.buf
		s.iovs[i] = syscall.Iovec{Base: &b[0]}
		s.iovs[i].SetLen(len(b))
		h := &s.hdrs[i]
		*h = mmsghdr{}
		h.hdr.Iov = &s.iovs[i]
		h.hdr.Iovlen = 1
		if err := t.fillName(s, i, m.ep, h); err != nil {
			// Unroutable on this socket family: latch GSO off; the plain
			// vectored path will hit the same wall and cascade to the
			// portable loop.
			return 0, errGSOUnsupported
		}
		if m.segs > 1 {
			c := s.cmsgs[i*cmsgSpace : (i+1)*cmsgSpace]
			ch := (*syscall.Cmsghdr)(unsafe.Pointer(&c[0]))
			ch.Level = solUDP
			ch.Type = udpSegmentOpt
			ch.SetLen(syscall.CmsgLen(2))
			*(*uint16)(unsafe.Pointer(&c[syscall.CmsgLen(0)])) = uint16(m.segSize)
			h.hdr.Control = &c[0]
			h.hdr.SetControllen(syscall.CmsgLen(2))
		}
	}
	sentMsgs, sentDgs := 0, 0
	for sentMsgs < nm {
		var nw int
		var errno syscall.Errno
		err := t.rc.Write(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&s.hdrs[sentMsgs])), uintptr(nm-sentMsgs), 0, 0, 0)
			if e == syscall.EAGAIN {
				return false
			}
			nw, errno = int(r1), e
			return true
		})
		if err != nil {
			t.txPackets.Add(uint64(sentDgs))
			return sentDgs, err
		}
		if errno != 0 || nw <= 0 {
			if sentDgs == 0 {
				// Nothing left the socket: either the kernel rejects
				// UDP_SEGMENT cmsgs (EINVAL/EOPNOTSUPP/EIO on virtual
				// NICs) or sendmmsg itself is unavailable. Latch off and
				// let the caller replay.
				return 0, errGSOUnsupported
			}
			t.txPackets.Add(uint64(sentDgs))
			if errno != 0 {
				return sentDgs, errno
			}
			return sentDgs, errGSOUnsupported
		}
		for k := sentMsgs; k < sentMsgs+nw; k++ {
			m := &s.gsoMsgs[k]
			sentDgs += m.segs
			if m.segs > 1 {
				t.gsoSegments.Observe(uint64(m.segs))
			}
		}
		sentMsgs += nw
	}
	t.txPackets.Add(uint64(sentDgs))
	t.txBatches.Add(1)
	return sentDgs, nil
}

// groSegSize extracts the UDP_GRO segment size from a received message's
// control data; 0 means the buffer is a single datagram.
func groSegSize(h *mmsghdr, oob []byte) int {
	cl := int(h.hdr.Controllen)
	if cl <= 0 || cl > len(oob) {
		return 0
	}
	rem := oob[:cl]
	for len(rem) >= syscall.SizeofCmsghdr {
		ch := (*syscall.Cmsghdr)(unsafe.Pointer(&rem[0]))
		l := int(ch.Len)
		if l < syscall.SizeofCmsghdr || l > len(rem) {
			return 0
		}
		if ch.Level == solUDP && ch.Type == udpGROOpt {
			switch {
			case l >= syscall.CmsgLen(4):
				return int(*(*int32)(unsafe.Pointer(&rem[syscall.CmsgLen(0)])))
			case l >= syscall.CmsgLen(2):
				return int(*(*uint16)(unsafe.Pointer(&rem[syscall.CmsgLen(0)])))
			default:
				return 0
			}
		}
		adv := (l + 7) &^ 7 // CMSG_ALIGN on 64-bit
		if adv <= 0 || adv > len(rem) {
			return 0
		}
		rem = rem[adv:]
	}
	return 0
}

// fillName writes ep into the i-th sockaddr slot and points h at it.
func (t *UDPTransport) fillName(s *mmsgTxState, i int, ep *net.UDPAddr, h *mmsghdr) error {
	if !t.sock6 {
		ip4 := ep.IP.To4()
		if ip4 == nil {
			return errMMsgUnsupported // v6 peer on a v4 socket
		}
		sa := &s.sa4[i]
		sa.Family = syscall.AF_INET
		sa.Port = htons(ep.Port)
		copy(sa.Addr[:], ip4)
		h.hdr.Name = (*byte)(unsafe.Pointer(sa))
		h.hdr.Namelen = syscall.SizeofSockaddrInet4
		return nil
	}
	sa := &s.sa6[i]
	*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Port: htons(ep.Port)}
	ip16 := ep.IP.To16() // v4 peers become v4-mapped on the v6 socket
	copy(sa.Addr[:], ip16)
	sa.Scope_id = scopeID(ep)
	h.hdr.Name = (*byte)(unsafe.Pointer(sa))
	h.hdr.Namelen = syscall.SizeofSockaddrInet6
	return nil
}
