package netsim

import (
	"bytes"
	"testing"
	"time"

	"interedge/internal/clock"
	"interedge/internal/wire"
)

func drainFor(tr Transport, d time.Duration) []wire.Datagram {
	var out []wire.Datagram
	for {
		select {
		case dg := <-tr.Receive():
			out = append(out, dg)
		case <-time.After(d):
			return out
		}
	}
}

func TestFaultDuplicateDeliversTwice(t *testing.T) {
	n := NewNetwork(WithSeed(1))
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")
	n.SetFaults(a.LocalAddr(), b.LocalAddr(), FaultProfile{DuplicateRate: 1})
	const sends = 20
	for i := 0; i < sends; i++ {
		if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	got := drainFor(b, 50*time.Millisecond)
	if len(got) != 2*sends {
		t.Fatalf("delivered %d datagrams, want %d", len(got), 2*sends)
	}
	st := n.Snapshot()
	if st.Duplicated != sends {
		t.Fatalf("Duplicated = %d, want %d", st.Duplicated, sends)
	}
}

func TestFaultCorruptFlipsExactlyOneBit(t *testing.T) {
	n := NewNetwork(WithSeed(2))
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")
	n.SetFaults(a.LocalAddr(), b.LocalAddr(), FaultProfile{CorruptRate: 1})
	orig := []byte("the quick brown fox")
	sent := append([]byte(nil), orig...)
	if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: sent}); err != nil {
		t.Fatal(err)
	}
	dg := <-b.Receive()
	if !bytes.Equal(sent, orig) {
		t.Fatal("corruption mutated the sender's buffer")
	}
	diffBits := 0
	for i := range orig {
		x := orig[i] ^ dg.Payload[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("payload differs by %d bits, want exactly 1", diffBits)
	}
	if st := n.Snapshot(); st.Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", st.Corrupted)
	}
}

func TestFaultReorderShufflesButKeepsAll(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	n := NewNetwork(WithClock(clk), WithSeed(3))
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")
	n.SetFaults(a.LocalAddr(), b.LocalAddr(), FaultProfile{
		ReorderRate:     0.5,
		ReorderDelayMin: time.Millisecond,
		ReorderDelayMax: 10 * time.Millisecond,
	})
	const sends = 100
	for i := 0; i < sends; i++ {
		if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(10 * time.Millisecond)
	got := drainFor(b, 50*time.Millisecond)
	if len(got) != sends {
		t.Fatalf("delivered %d datagrams, want %d", len(got), sends)
	}
	seen := make(map[byte]bool, sends)
	inOrder := true
	for i, dg := range got {
		seen[dg.Payload[0]] = true
		if int(dg.Payload[0]) != i {
			inOrder = false
		}
	}
	if len(seen) != sends {
		t.Fatalf("unique payloads %d, want %d", len(seen), sends)
	}
	if inOrder {
		t.Fatal("reorder fault left arrival order identical to send order")
	}
	if st := n.Snapshot(); st.Reordered == 0 {
		t.Fatal("Reordered counter is zero")
	}
}

func TestFaultsDeterministicWithSeed(t *testing.T) {
	run := func() Stats {
		clk := clock.NewManual(time.Unix(0, 0))
		n := NewNetwork(WithClock(clk), WithSeed(42))
		a := attach(t, n, "fd00::1")
		b := attach(t, n, "fd00::2")
		n.SetDefaultFaults(FaultProfile{
			ReorderRate:     0.3,
			ReorderDelayMin: time.Millisecond,
			ReorderDelayMax: 5 * time.Millisecond,
			DuplicateRate:   0.2,
			CorruptRate:     0.1,
			JitterMax:       2 * time.Millisecond,
		})
		for i := 0; i < 200; i++ {
			if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: []byte{byte(i)}}); err != nil {
				t.Fatal(err)
			}
		}
		clk.Advance(20 * time.Millisecond)
		drainFor(b, 50*time.Millisecond)
		return n.Snapshot()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same seed produced different fault patterns:\n%+v\n%+v", s1, s2)
	}
	if s1.Duplicated == 0 || s1.Reordered == 0 || s1.Corrupted == 0 {
		t.Fatalf("expected all fault classes to fire: %+v", s1)
	}
}

func TestScheduleFlapPartition(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	n := NewNetwork(WithClock(clk))
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")

	done, cancel := n.Schedule(FlapPartition(a.LocalAddr(), b.LocalAddr(), 10*time.Millisecond, 10*time.Millisecond, 2))
	defer cancel()

	send := func() { _ = a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: []byte("x")}) }

	// eventually polls until the link's delivery behavior matches want
	// (the scheduler goroutine applies events asynchronously after the
	// clock advance fires their timers).
	eventually := func(wantDelivery bool, what string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			send()
			got := len(drainFor(b, 5*time.Millisecond)) > 0
			if got == wantDelivery {
				return
			}
		}
		t.Fatalf("link never reached state %q", what)
	}

	// t=0: healthy.
	eventually(true, "pre-flap delivery")
	// t=10ms: partitioned.
	clk.Advance(10 * time.Millisecond)
	eventually(false, "partitioned")
	// t=20ms: healed again.
	clk.Advance(10 * time.Millisecond)
	eventually(true, "healed")
	// Run out the remaining flap cycle; schedule must complete healed.
	clk.Advance(30 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("schedule did not complete")
	}
	send()
	if got := len(drainFor(b, 20*time.Millisecond)); got != 1 {
		t.Fatalf("final delivery = %d, want 1", got)
	}
}

func TestScheduleCancelStopsRemainingEvents(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	n := NewNetwork(WithClock(clk))
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")

	_, cancel := n.Schedule([]FaultEvent{
		{At: 10 * time.Millisecond, Do: func(n *Network) { n.Partition(a.LocalAddr(), b.LocalAddr()) }},
	})
	cancel()
	clk.Advance(20 * time.Millisecond)
	// Give the (cancelled) scheduler goroutine a moment, then verify the
	// partition never happened.
	time.Sleep(10 * time.Millisecond)
	if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if got := len(drainFor(b, 20*time.Millisecond)); got != 1 {
		t.Fatalf("delivery after cancel = %d, want 1", got)
	}
}

func TestScheduleLossBurst(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	n := NewNetwork(WithClock(clk), WithSeed(5))
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")

	base := LinkProfile{}
	done, cancel := n.Schedule(LossBurst(a.LocalAddr(), b.LocalAddr(), base, 1.0, 10*time.Millisecond, 10*time.Millisecond))
	defer cancel()

	send := func() { _ = a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: []byte("x")}) }

	clk.Advance(10 * time.Millisecond) // burst begins: 100% loss
	deadline := time.Now().Add(2 * time.Second)
	burstSeen := false
	for time.Now().Before(deadline) {
		send()
		if len(drainFor(b, 5*time.Millisecond)) == 0 {
			burstSeen = true
			break
		}
	}
	if !burstSeen {
		t.Fatal("loss burst never took effect")
	}
	clk.Advance(10 * time.Millisecond) // burst over: base profile restored
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("schedule did not complete")
	}
	send()
	if got := len(drainFor(b, 20*time.Millisecond)); got != 1 {
		t.Fatalf("delivery after burst = %d, want 1", got)
	}
}

func TestScheduleDegradeRampsLatency(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	n := NewNetwork(WithClock(clk))
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")

	base := LinkProfile{}
	worst := LinkProfile{Latency: 40 * time.Millisecond}
	done, cancel := n.Schedule(Degrade(a.LocalAddr(), b.LocalAddr(), base, worst, 0, time.Millisecond, 4))
	defer cancel()
	clk.Advance(4 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("schedule did not complete")
	}

	// Link is now at worst: a send takes the full 40ms of simulated time.
	if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if got := len(drainFor(b, 20*time.Millisecond)); got != 0 {
		t.Fatal("delivered before degraded latency elapsed")
	}
	clk.Advance(40 * time.Millisecond)
	select {
	case <-b.Receive():
	case <-time.After(time.Second):
		t.Fatal("not delivered after latency elapsed")
	}
}
