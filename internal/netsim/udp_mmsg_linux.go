//go:build linux && (amd64 || arm64)

package netsim

import (
	"net"
	"syscall"
	"unsafe"

	"interedge/internal/wire"
)

// mmsgArch reports whether this build has the vectored syscall path.
const mmsgArch = true

// rxBatch is how many datagrams one recvmmsg(2) may return.
const rxBatch = 32

// mmsghdr mirrors struct mmsghdr from <sys/socket.h>: a msghdr plus the
// kernel-written per-message byte count, padded to 8-byte alignment on
// 64-bit targets.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// mmsgTxState is the per-batch sendmmsg scratch. The sockaddr arrays are
// sized up front and never appended to after header construction begins,
// so the Name pointers taken into them stay valid.
type mmsgTxState struct {
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sa4  []syscall.RawSockaddrInet4
	sa6  []syscall.RawSockaddrInet6
	// GSO flush state: the queued super-datagram messages and the flat
	// cmsg arena (one UDP_SEGMENT cmsg slot per message).
	gsoMsgs []gsoMsg
	cmsgs   []byte
}

func htons(p int) uint16 { return uint16(p)<<8 | uint16(p)>>8 }

func (s *mmsgTxState) grow(n int) {
	if cap(s.hdrs) < n {
		s.hdrs = make([]mmsghdr, n)
		s.iovs = make([]syscall.Iovec, n)
		s.sa4 = make([]syscall.RawSockaddrInet4, n)
		s.sa6 = make([]syscall.RawSockaddrInet6, n)
	}
	s.hdrs = s.hdrs[:n]
	s.iovs = s.iovs[:n]
	s.sa4 = s.sa4[:n]
	s.sa6 = s.sa6[:n]
}

// sendMMsg flushes the encoded batch with as few sendmmsg(2) calls as the
// kernel allows (normally one), waiting on the runtime poller between
// partial sends. It returns errMMsgUnsupported when the socket or kernel
// rejects the vectored call so the caller can fall back per packet.
func (t *UDPTransport) sendMMsg(st *udpTxState) (int, error) {
	n := len(st.bufs)
	s := &st.sys
	s.grow(n)
	for i := 0; i < n; i++ {
		b := *st.bufs[i]
		ep := st.eps[i]
		s.iovs[i] = syscall.Iovec{Base: &b[0]}
		s.iovs[i].SetLen(len(b))
		h := &s.hdrs[i]
		*h = mmsghdr{}
		h.hdr.Iov = &s.iovs[i]
		h.hdr.Iovlen = 1
		if err := t.fillName(s, i, ep, h); err != nil {
			return 0, err
		}
	}
	sent := 0
	for sent < n {
		var nw int
		var errno syscall.Errno
		err := t.rc.Write(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&s.hdrs[sent])), uintptr(n-sent), 0, 0, 0)
			if e == syscall.EAGAIN {
				return false
			}
			nw, errno = int(r1), e
			return true
		})
		if err != nil {
			return sent, err
		}
		switch errno {
		case 0:
		case syscall.ENOSYS, syscall.EOPNOTSUPP, syscall.EAFNOSUPPORT, syscall.EINVAL, syscall.EPERM:
			return sent, errMMsgUnsupported
		default:
			return sent, errno
		}
		if nw <= 0 {
			return sent, errMMsgUnsupported
		}
		sent += nw
	}
	return sent, nil
}

func scopeID(ep *net.UDPAddr) uint32 {
	if ep.Zone == "" {
		return 0
	}
	if ifi, err := net.InterfaceByName(ep.Zone); err == nil {
		return uint32(ifi.Index)
	}
	return 0
}

// rxMMsgState holds the receive-side vectored scratch: one reusable buffer
// and iovec per slot, filled by a single recvmmsg(2), plus per-slot
// control buffers for the UDP_GRO segment-size cmsg when GRO is on.
type rxMMsgState struct {
	hdrs [rxBatch]mmsghdr
	iovs [rxBatch]syscall.Iovec
	bufs [rxBatch][]byte
	oob  [rxBatch][]byte
}

// readLoopMMsg drains the socket in recvmmsg batches until the transport
// closes (returns true, rx channel closed) or the kernel rejects the
// vectored call before anything arrived (returns false; caller falls back
// to the portable loop).
func (t *UDPTransport) readLoopMMsg() bool {
	st := &rxMMsgState{}
	bufSize := wire.MTU + wire.DatagramHeaderSize
	if t.groOn {
		// A GRO buffer must hold a whole coalesced super-datagram.
		bufSize = 1 << 16
	}
	for i := range st.bufs {
		st.bufs[i] = make([]byte, bufSize)
		st.iovs[i] = syscall.Iovec{Base: &st.bufs[i][0]}
		st.iovs[i].SetLen(len(st.bufs[i]))
		st.hdrs[i].hdr.Iov = &st.iovs[i]
		st.hdrs[i].hdr.Iovlen = 1
		if t.groOn {
			st.oob[i] = make([]byte, syscall.CmsgSpace(4)*2)
		}
	}
	for {
		if t.groOn {
			// The kernel overwrites Controllen per message; re-arm the
			// control buffers before every call.
			for i := range st.hdrs {
				st.hdrs[i].hdr.Control = &st.oob[i][0]
				st.hdrs[i].hdr.SetControllen(len(st.oob[i]))
			}
		}
		var nr int
		var errno syscall.Errno
		err := t.rc.Read(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&st.hdrs[0])), rxBatch, 0, 0, 0)
			if e == syscall.EAGAIN {
				return false
			}
			nr, errno = int(r1), e
			return true
		})
		if err != nil {
			if t.closed.Load() {
				close(t.rx)
				return true
			}
			continue
		}
		if errno != 0 {
			if errno == syscall.ENOSYS || errno == syscall.EOPNOTSUPP || errno == syscall.EINVAL {
				return false
			}
			if t.closed.Load() {
				close(t.rx)
				return true
			}
			continue
		}
		for i := 0; i < nr; i++ {
			b := st.bufs[i][:st.hdrs[i].len]
			seg := 0
			if t.groOn {
				seg = groSegSize(&st.hdrs[i], st.oob[i])
			}
			if seg > 0 && seg < len(b) {
				// Coalesced receive: every segment but the last is exactly
				// seg bytes; split back into the original datagrams.
				for off := 0; off < len(b); off += seg {
					end := off + seg
					if end > len(b) {
						end = len(b)
					}
					t.deliverRx(b[off:end])
				}
			} else {
				t.deliverRx(b)
			}
		}
	}
}
