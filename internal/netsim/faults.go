package netsim

import (
	"interedge/internal/wire"
	"sort"
	"sync"
	"time"
)

// FaultProfile describes pathological behaviours injected on a directed
// link, on top of the link's LinkProfile. All decisions draw from the
// network's seeded RNG, so a fixed WithSeed makes the fault pattern
// reproducible.
type FaultProfile struct {
	// ReorderRate in [0,1) holds individual datagrams back by an extra
	// random delay in [ReorderDelayMin, ReorderDelayMax), letting datagrams
	// sent later overtake them.
	ReorderRate     float64
	ReorderDelayMin time.Duration
	ReorderDelayMax time.Duration
	// DuplicateRate in [0,1) delivers a second, independent copy of the
	// datagram.
	DuplicateRate float64
	// CorruptRate in [0,1) flips one random bit of the delivered payload
	// copy (the sender's buffer is never touched).
	CorruptRate float64
	// JitterMax, when nonzero, adds a uniform random [0, JitterMax) to each
	// datagram's one-way latency.
	JitterMax time.Duration
}

// active reports whether any fault class is enabled.
func (f FaultProfile) active() bool {
	return f.ReorderRate > 0 || f.DuplicateRate > 0 || f.CorruptRate > 0 || f.JitterMax > 0
}

// SetDefaultFaults sets the fault profile applied to links with no explicit
// fault profile.
func (n *Network) SetDefaultFaults(f FaultProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultFaults = f
}

// SetFaults sets the fault profile of the directed link from→to.
func (n *Network) SetFaults(from, to wire.Addr, f FaultProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults[linkKey{from, to}] = f
}

// SetFaultsBoth sets the fault profile in both directions.
func (n *Network) SetFaultsBoth(a, b wire.Addr, f FaultProfile) {
	n.SetFaults(a, b, f)
	n.SetFaults(b, a, f)
}

// ClearFaults removes per-link fault profiles in both directions (the
// default profile still applies).
func (n *Network) ClearFaults(a, b wire.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.faults, linkKey{a, b})
	delete(n.faults, linkKey{b, a})
}

// FaultEvent is one step of a scripted fault schedule: Do is applied to the
// network once At has elapsed since Schedule was called.
type FaultEvent struct {
	At time.Duration
	Do func(n *Network)
}

// Schedule plays a scripted fault sequence against the network, timed on
// the network's own clock so a Manual clock drives it deterministically.
// It returns a channel closed after the last event fires and a cancel
// function that stops the remaining events.
func (n *Network) Schedule(events []FaultEvent) (done <-chan struct{}, cancel func()) {
	evs := append([]FaultEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	// Register every timer synchronously, before returning: a Manual clock
	// advanced right after Schedule returns must still fire the events.
	timers := make([]<-chan time.Time, len(evs))
	for i, ev := range evs {
		if ev.At > 0 {
			timers[i] = n.clk.After(ev.At)
		}
	}
	d := make(chan struct{})
	stop := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(d)
		for i, ev := range evs {
			// Check cancellation first so a cancel that raced a due timer
			// reliably suppresses the remaining events.
			select {
			case <-stop:
				return
			default:
			}
			if timers[i] != nil {
				select {
				case <-timers[i]:
				case <-stop:
					return
				}
			}
			ev.Do(n)
		}
	}()
	return d, func() { once.Do(func() { close(stop) }) }
}

// FlapPartition builds a schedule that severs a↔b at start and then heals
// and re-severs it every period, ending healed after flaps cycles.
func FlapPartition(a, b wire.Addr, start, period time.Duration, flaps int) []FaultEvent {
	var evs []FaultEvent
	at := start
	for i := 0; i < flaps; i++ {
		evs = append(evs,
			FaultEvent{At: at, Do: func(n *Network) { n.Partition(a, b) }},
			FaultEvent{At: at + period, Do: func(n *Network) { n.Heal(a, b) }},
		)
		at += 2 * period
	}
	return evs
}

// LossBurst builds a schedule that raises a↔b loss to rate during
// [start, start+dur), restoring the base profile afterwards.
func LossBurst(a, b wire.Addr, base LinkProfile, rate float64, start, dur time.Duration) []FaultEvent {
	burst := base
	burst.LossRate = rate
	return []FaultEvent{
		{At: start, Do: func(n *Network) { n.SetLinkBoth(a, b, burst) }},
		{At: start + dur, Do: func(n *Network) { n.SetLinkBoth(a, b, base) }},
	}
}

// Degrade builds a schedule that walks the a↔b link from base to worst in
// steps equal increments of latency and loss, one every interval starting
// at start. The link is left in the worst state; append a restoring event
// (or use LossBurst) to recover.
func Degrade(a, b wire.Addr, base, worst LinkProfile, start, interval time.Duration, steps int) []FaultEvent {
	if steps < 1 {
		steps = 1
	}
	var evs []FaultEvent
	for i := 1; i <= steps; i++ {
		frac := float64(i) / float64(steps)
		p := LinkProfile{
			Latency:      base.Latency + time.Duration(frac*float64(worst.Latency-base.Latency)),
			BandwidthBps: base.BandwidthBps + frac*(worst.BandwidthBps-base.BandwidthBps),
			LossRate:     base.LossRate + frac*(worst.LossRate-base.LossRate),
		}
		evs = append(evs, FaultEvent{
			At: start + time.Duration(i-1)*interval,
			Do: func(n *Network) { n.SetLinkBoth(a, b, p) },
		})
	}
	return evs
}
