package netsim

import (
	"fmt"
	"sync"

	"interedge/internal/wire"
)

// Mux is a shared endpoint multiplexer: many fabric addresses (ports)
// funneled into ONE receive queue. It exists for weightless host fleets —
// a standalone Transport per host means a receive channel and a receive
// goroutine per host, which caps simulations at O(10^4) endpoints; a Mux
// lets 10^6 addresses share one queue drained by one engine.
//
// Each port is a real attachment in the fabric's routing table: links,
// faults, partitions, and queue-drop accounting apply per port exactly as
// for Attach'd nodes. Delivered datagrams keep their Dst, which is how the
// consumer (pipe.Engine) demultiplexes.
//
// Close safety: the fabric's deliver paths hold a port's mutex across the
// closed-check AND the queue send, so marking every port closed guarantees
// no further sends into the shared queue — after which closing it is safe.
type Mux struct {
	net *Network
	rx  chan wire.Datagram

	mu     sync.RWMutex
	ports  map[wire.Addr]*simTransport
	closed bool
}

// NewMux creates a multiplexer whose shared receive queue holds queueDepth
// datagrams (0 selects the network's per-node default). The queue is shared
// by every port, so size it for the aggregate fleet rate, not a single
// node's.
func (n *Network) NewMux(queueDepth int) *Mux {
	if queueDepth <= 0 {
		queueDepth = n.queueDepth
	}
	return &Mux{
		net:   n,
		rx:    make(chan wire.Datagram, queueDepth),
		ports: make(map[wire.Addr]*simTransport),
	}
}

// AddPort attaches addr to the fabric, delivering into the shared queue.
func (m *Mux) AddPort(addr wire.Addr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, dup := m.ports[addr]; dup {
		return fmt.Errorf("netsim: mux port %s already added", addr)
	}
	t, err := m.net.attachShared(addr, m.rx)
	if err != nil {
		return err
	}
	m.ports[addr] = t
	return nil
}

// RemovePort detaches addr. In-flight datagrams to it are dropped; the
// shared queue stays open for the remaining ports.
func (m *Mux) RemovePort(addr wire.Addr) error {
	m.mu.Lock()
	t, ok := m.ports[addr]
	delete(m.ports, addr)
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("netsim: mux port %s not found", addr)
	}
	return t.Close()
}

// Ports returns the number of attached ports.
func (m *Mux) Ports() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.ports)
}

// Backlog returns the number of datagrams waiting in the shared queue.
// Load generators use it for flow control: the queue is the fleet's one
// NIC, and a producer that outruns the consumer overflows it exactly as a
// real NIC would drop. Capacity returns the queue's depth.
func (m *Mux) Backlog() int  { return len(m.rx) }
func (m *Mux) Capacity() int { return cap(m.rx) }

// Send transmits dg from the port named by dg.Src. It implements
// pipe.EngineTransport: the caller chooses the source identity per send.
func (m *Mux) Send(dg wire.Datagram) error {
	m.mu.RLock()
	t := m.ports[dg.Src]
	m.mu.RUnlock()
	if t == nil {
		return fmt.Errorf("%w: no mux port %s", ErrClosed, dg.Src)
	}
	return t.Send(dg)
}

// Receive returns the shared inbound queue. Datagrams retain their Dst so
// the consumer can demultiplex; the channel closes when the Mux closes.
func (m *Mux) Receive() <-chan wire.Datagram { return m.rx }

// Close detaches every port and then closes the shared queue. Safe against
// concurrent fabric deliveries (see the type comment).
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	ports := m.ports
	m.ports = make(map[wire.Addr]*simTransport)
	m.mu.Unlock()
	for _, t := range ports {
		_ = t.Close()
	}
	close(m.rx)
	return nil
}
