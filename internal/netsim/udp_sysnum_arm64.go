//go:build linux

package netsim

// sysSendmmsg is the sendmmsg(2) syscall number on linux/arm64. The frozen
// syscall package predates sendmmsg, so the number is spelled out here.
const sysSendmmsg uintptr = 269
