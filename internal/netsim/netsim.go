// Package netsim provides the L3 substrate beneath ILP: an addressed,
// unreliable, unordered datagram network. Two implementations are provided:
//
//   - Network: an in-process fabric with configurable per-link latency,
//     bandwidth (FIFO queueing via a fluid model), loss, and partitions.
//     This is the testbed substitute for the paper's CloudLab/Fabric
//     deployments: it exercises identical code above the Transport
//     interface while remaining deterministic under test.
//     Beyond the steady-state LinkProfile, per-link FaultProfiles inject
//     hostile-substrate behaviour — seeded reordering (extra per-datagram
//     delay), duplication, single-bit payload corruption, and latency
//     jitter (see faults.go) — and scripted fault schedules replay
//     flapping partitions, loss bursts, and progressive link degradation
//     over simulated time (Schedule, FlapPartition, LossBurst, Degrade).
//     All randomness comes from the WithSeed RNG and all timing from the
//     WithClock clock, so chaos runs are reproducible.
//   - UDP transport (udp.go): maps wire addresses onto real UDP sockets for
//     cross-process deployments of the same nodes.
//
// Everything above this package (pipes, SNs, services, hosts) sees only the
// Transport interface.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"interedge/internal/clock"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// Transport is one node's attachment to the substrate.
type Transport interface {
	// LocalAddr returns the node's address.
	LocalAddr() wire.Addr
	// Send transmits one datagram. Send never blocks on the receiver; a
	// full receive queue drops the datagram, as a NIC would.
	//
	// Ownership: the transport must not retain dg.Payload after Send
	// returns — callers may reuse the buffer immediately (the pipe layer
	// pools its send buffers). Implementations that defer transmission
	// must copy first.
	Send(dg wire.Datagram) error
	// Receive returns the channel of inbound datagrams. The channel is
	// closed when the transport closes.
	//
	// Ownership: each received Datagram's Payload is owned by the
	// receiver; the transport never reuses or mutates it after delivery.
	Receive() <-chan wire.Datagram
	// Close detaches the node.
	Close() error
}

// BatchSender is the optional vectored-egress extension of Transport. Both
// built-in transports implement it natively: the sim fabric resolves
// routing once per destination run and delivers a whole batch under one
// receiver lock, and the UDP transport turns a batch into a single
// sendmmsg(2) on Linux. Third-party transports need not implement it; the
// SendBatch helper falls back to looping Send.
type BatchSender interface {
	// SendBatch transmits dgs in order, returning the number of datagrams
	// consumed by the substrate and the first error encountered; on error,
	// dgs[n:] were not sent. Datagrams accepted and then lost, dropped at a
	// full receive queue, or black-holed by a partition count as consumed,
	// exactly as the corresponding Send would have returned nil.
	//
	// Ownership matches Send: the transport may set each datagram's Src but
	// must not retain dgs or any Payload after SendBatch returns.
	SendBatch(dgs []wire.Datagram) (int, error)
}

// SendBatch transmits a batch through t, using the transport's native
// vectored path when it implements BatchSender and falling back to one
// Send per datagram otherwise. This is the adapter every batching caller
// (the pipe egress coalescer, benchmarks) goes through, so transports
// outside this package keep working unmodified.
func SendBatch(t Transport, dgs []wire.Datagram) (int, error) {
	if bs, ok := t.(BatchSender); ok {
		return bs.SendBatch(dgs)
	}
	for i := range dgs {
		if err := t.Send(dgs[i]); err != nil {
			return i, err
		}
	}
	return len(dgs), nil
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("netsim: transport closed")

// ErrUnknownDestination is returned when no node is attached at the
// destination address.
var ErrUnknownDestination = errors.New("netsim: unknown destination")

// LinkProfile describes the emulated properties of a directed link.
type LinkProfile struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// BandwidthBps, if nonzero, applies a fluid FIFO queueing model at the
	// given bytes-per-second rate.
	BandwidthBps float64
	// LossRate in [0,1) drops packets at random.
	LossRate float64
}

// NetworkOption configures a Network.
type NetworkOption func(*Network)

// WithClock sets the clock used for latency emulation (default clock.Real).
func WithClock(c clock.Clock) NetworkOption {
	return func(n *Network) { n.clk = c }
}

// WithSeed sets the RNG seed used for loss decisions, making drops
// reproducible.
func WithSeed(seed int64) NetworkOption {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithQueueDepth sets the per-node receive queue depth (default 4096).
func WithQueueDepth(d int) NetworkOption {
	return func(n *Network) { n.queueDepth = d }
}

// WithTelemetry homes the fabric's netsim_* instruments in an existing
// registry instead of a private one.
func WithTelemetry(r *telemetry.Registry) NetworkOption {
	return func(n *Network) { n.telem = r }
}

// Network is the in-process datagram fabric.
type Network struct {
	mu            sync.RWMutex
	clk           clock.Clock
	rng           *rand.Rand
	rngMu         sync.Mutex
	queueDepth    int
	nodes         map[wire.Addr]*simTransport
	links         map[linkKey]*linkState
	defaults      LinkProfile
	faults        map[linkKey]FaultProfile
	defaultFaults FaultProfile
	partitions    map[linkKey]bool
	telem         *telemetry.Registry
	stats         fabricStats
}

type linkKey struct{ from, to wire.Addr }

type linkState struct {
	profile  LinkProfile
	mu       sync.Mutex
	nextFree time.Time // fluid-model: when the link is next idle
}

// Stats aggregates fabric-wide counters. It is a view over the fabric's
// netsim_* telemetry instruments: per-field atomic, not a cross-field
// consistent cut.
type Stats struct {
	Sent         uint64
	Delivered    uint64
	DroppedLoss  uint64
	DroppedQueue uint64
	DroppedDead  uint64 // destination not attached
	BytesSent    uint64
	Duplicated   uint64 // extra copies injected by DuplicateRate
	Reordered    uint64 // datagrams held back by ReorderRate
	Corrupted    uint64 // delivered copies with an injected bit flip
	Batches      uint64 // native SendBatch calls on the fabric
}

// fabricStats holds the fabric counters as telemetry instruments in the
// network's registry, so the per-packet send path never needs the
// network's exclusive lock and the same values serve Snapshot(), the
// netsim_* series in the registry, and any node-registry re-exposure.
type fabricStats struct {
	sent         *telemetry.Counter
	delivered    *telemetry.Counter
	droppedLoss  *telemetry.Counter
	droppedQueue *telemetry.Counter
	droppedDead  *telemetry.Counter
	bytesSent    *telemetry.Counter
	duplicated   *telemetry.Counter
	reordered    *telemetry.Counter
	corrupted    *telemetry.Counter
	batches      *telemetry.Counter
}

func newFabricStats(reg *telemetry.Registry) fabricStats {
	return fabricStats{
		sent:         reg.Counter("netsim_sent_total"),
		delivered:    reg.Counter("netsim_delivered_total"),
		droppedLoss:  reg.Counter("netsim_dropped_loss_total"),
		droppedQueue: reg.Counter("netsim_dropped_queue_total"),
		droppedDead:  reg.Counter("netsim_dropped_dead_total"),
		bytesSent:    reg.Counter("netsim_bytes_sent_total"),
		duplicated:   reg.Counter("netsim_duplicated_total"),
		reordered:    reg.Counter("netsim_reordered_total"),
		corrupted:    reg.Counter("netsim_corrupted_total"),
		batches:      reg.Counter("netsim_batches_total"),
	}
}

func (a *fabricStats) snapshot() Stats {
	return Stats{
		Sent:         a.sent.Load(),
		Delivered:    a.delivered.Load(),
		DroppedLoss:  a.droppedLoss.Load(),
		DroppedQueue: a.droppedQueue.Load(),
		DroppedDead:  a.droppedDead.Load(),
		BytesSent:    a.bytesSent.Load(),
		Duplicated:   a.duplicated.Load(),
		Reordered:    a.reordered.Load(),
		Corrupted:    a.corrupted.Load(),
		Batches:      a.batches.Load(),
	}
}

// NewNetwork creates an empty fabric. By default links are ideal: zero
// latency, unlimited bandwidth, no loss.
func NewNetwork(opts ...NetworkOption) *Network {
	n := &Network{
		clk:        clock.Real{},
		rng:        rand.New(rand.NewSource(1)),
		queueDepth: 4096,
		nodes:      make(map[wire.Addr]*simTransport),
		links:      make(map[linkKey]*linkState),
		faults:     make(map[linkKey]FaultProfile),
		partitions: make(map[linkKey]bool),
	}
	for _, o := range opts {
		o(n)
	}
	if n.telem == nil {
		n.telem = telemetry.NewRegistry()
	}
	n.stats = newFabricStats(n.telem)
	return n
}

// Telemetry returns the registry holding the fabric's netsim_*
// instruments (the one supplied via WithTelemetry, or the private
// default).
func (n *Network) Telemetry() *telemetry.Registry { return n.telem }

// SetDefaultLink sets the profile applied to links with no explicit profile.
func (n *Network) SetDefaultLink(p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaults = p
}

// SetLink sets the profile of the directed link from→to.
func (n *Network) SetLink(from, to wire.Addr, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{from, to}] = &linkState{profile: p}
}

// SetLinkBoth sets the profile in both directions.
func (n *Network) SetLinkBoth(a, b wire.Addr, p LinkProfile) {
	n.SetLink(a, b, p)
	n.SetLink(b, a, p)
}

// Partition severs connectivity between a and b in both directions.
func (n *Network) Partition(a, b wire.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[linkKey{a, b}] = true
	n.partitions[linkKey{b, a}] = true
}

// Heal restores connectivity between a and b.
func (n *Network) Heal(a, b wire.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, linkKey{a, b})
	delete(n.partitions, linkKey{b, a})
}

// Snapshot returns current fabric counters.
func (n *Network) Snapshot() Stats {
	return n.stats.snapshot()
}

// Attach connects a new node at addr and returns its transport.
func (n *Network) Attach(addr wire.Addr) (Transport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.nodes[addr]; exists {
		return nil, fmt.Errorf("netsim: address %s already attached", addr)
	}
	t := &simTransport{
		net:  n,
		addr: addr,
		rx:   make(chan wire.Datagram, n.queueDepth),
	}
	n.nodes[addr] = t
	return t, nil
}

// detach removes a node; called by simTransport.Close.
func (n *Network) detach(addr wire.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
}

func (n *Network) linkFor(from, to wire.Addr) *linkState {
	if l, ok := n.links[linkKey{from, to}]; ok {
		return l
	}
	return nil
}

// route is the resolved forwarding state of one directed link, read once
// under the shared lock and then used without it.
type route struct {
	dst         *simTransport
	link        *linkState
	profile     LinkProfile
	faults      FaultProfile
	partitioned bool
}

// routeLocked resolves the src→dst link. Caller holds n.mu (read).
func (n *Network) routeLocked(src, dst wire.Addr) (route, error) {
	var r route
	if n.partitions[linkKey{src, dst}] {
		r.partitioned = true
		return r, nil
	}
	node, ok := n.nodes[dst]
	if !ok {
		return r, ErrUnknownDestination
	}
	r.dst = node
	r.link = n.linkFor(src, dst)
	r.profile = n.defaults
	if r.link != nil {
		r.profile = r.link.profile
	}
	r.faults = n.defaultFaults
	if f, ok := n.faults[linkKey{src, dst}]; ok {
		r.faults = f
	}
	return r, nil
}

// fate decides one datagram's outcome on a resolved route: drop by loss, or
// deliver after delay with optional corruption and duplication. All random
// draws happen under the shared RNG lock in datagram order, so a fixed seed
// yields the same fault pattern whether datagrams arrive one Send at a time
// or in a batch.
type fate struct {
	drop      bool
	delay     time.Duration
	corrupt   bool
	duplicate bool
	dupDelay  time.Duration
}

func (n *Network) fateFor(dg *wire.Datagram, r *route) fate {
	var f fate
	if r.profile.LossRate > 0 {
		n.rngMu.Lock()
		f.drop = n.rng.Float64() < r.profile.LossRate
		n.rngMu.Unlock()
		if f.drop {
			n.stats.droppedLoss.Add(1)
			return f
		}
	}

	f.delay = r.profile.Latency
	if r.profile.BandwidthBps > 0 {
		txTime := time.Duration(float64(len(dg.Payload)+wire.DatagramHeaderSize) / r.profile.BandwidthBps * float64(time.Second))
		now := n.clk.Now()
		if r.link != nil {
			r.link.mu.Lock()
			start := r.link.nextFree
			if start.Before(now) {
				start = now
			}
			r.link.nextFree = start.Add(txTime)
			f.delay += r.link.nextFree.Sub(now)
			r.link.mu.Unlock()
		} else {
			f.delay += txTime
		}
	}

	if r.faults.active() {
		base := f.delay
		n.rngMu.Lock()
		if r.faults.ReorderRate > 0 && n.rng.Float64() < r.faults.ReorderRate {
			d := r.faults.ReorderDelayMin
			if span := r.faults.ReorderDelayMax - r.faults.ReorderDelayMin; span > 0 {
				d += time.Duration(n.rng.Int63n(int64(span)))
			}
			f.delay += d
			n.stats.reordered.Add(1)
		}
		if r.faults.JitterMax > 0 {
			f.delay += time.Duration(n.rng.Int63n(int64(r.faults.JitterMax)))
		}
		if r.faults.DuplicateRate > 0 && n.rng.Float64() < r.faults.DuplicateRate {
			f.duplicate = true
			f.dupDelay = base
			if r.faults.JitterMax > 0 {
				f.dupDelay += time.Duration(n.rng.Int63n(int64(r.faults.JitterMax)))
			}
		}
		if r.faults.CorruptRate > 0 && n.rng.Float64() < r.faults.CorruptRate {
			f.corrupt = true
		}
		n.rngMu.Unlock()
	}
	return f
}

// send routes a datagram from src. Routing state is read under the shared
// lock and counters are atomic, so concurrent senders never serialize here.
func (n *Network) send(dg wire.Datagram) error {
	if len(dg.Payload) > wire.MTU {
		return fmt.Errorf("netsim: payload %d exceeds MTU", len(dg.Payload))
	}
	n.stats.sent.Add(1)
	n.stats.bytesSent.Add(uint64(len(dg.Payload)))
	n.mu.RLock()
	r, err := n.routeLocked(dg.Src, dg.Dst)
	n.mu.RUnlock()
	if err != nil {
		n.stats.droppedDead.Add(1)
		return err
	}
	if r.partitioned {
		n.stats.droppedDead.Add(1)
		return nil // silently dropped, like a black-holed route
	}

	f := n.fateFor(&dg, &r)
	if f.drop {
		return nil
	}
	n.transmit(r.dst, dg, f.delay, f.corrupt)
	if f.duplicate {
		n.stats.duplicated.Add(1)
		n.transmit(r.dst, dg, f.dupDelay, false)
	}
	return nil
}

// sendBatch is the fabric's native vectored path: routing is resolved once
// per destination run, counters are aggregated per batch, and every
// zero-delay delivery in a same-destination run lands under a single
// receiver-lock acquisition. Fault and loss draws remain strictly
// per-datagram (in order), so a batch observes the same seeded fault
// pattern the equivalent Send sequence would.
func (n *Network) sendBatch(dgs []wire.Datagram) (int, error) {
	n.stats.batches.Add(1)
	var sent, bytes uint64
	// ready collects zero-delay copies for the current same-destination run.
	var ready []wire.Datagram
	var cur route
	var curSrc, curDst wire.Addr
	haveRoute := false

	flushReady := func() {
		if len(ready) > 0 {
			n.deliverRun(cur.dst, ready)
			ready = ready[:0]
		}
	}

	for i := range dgs {
		dg := &dgs[i]
		if len(dg.Payload) > wire.MTU {
			flushReady()
			n.stats.sent.Add(sent)
			n.stats.bytesSent.Add(bytes)
			return i, fmt.Errorf("netsim: payload %d exceeds MTU", len(dg.Payload))
		}
		if !haveRoute || dg.Src != curSrc || dg.Dst != curDst {
			flushReady()
			n.mu.RLock()
			r, err := n.routeLocked(dg.Src, dg.Dst)
			n.mu.RUnlock()
			if err != nil {
				n.stats.sent.Add(sent + 1)
				n.stats.bytesSent.Add(bytes + uint64(len(dg.Payload)))
				n.stats.droppedDead.Add(1)
				return i, err
			}
			cur, curSrc, curDst, haveRoute = r, dg.Src, dg.Dst, true
		}
		sent++
		bytes += uint64(len(dg.Payload))
		if cur.partitioned {
			n.stats.droppedDead.Add(1)
			continue
		}
		f := n.fateFor(dg, &cur)
		if f.drop {
			continue
		}
		if f.delay <= 0 && !f.duplicate {
			// Common case on ideal links: queue the copy for the single
			// locked delivery run.
			cp := *dg
			cp.Payload = append([]byte(nil), dg.Payload...)
			if f.corrupt {
				n.corruptCopy(cp.Payload)
			}
			ready = append(ready, cp)
			continue
		}
		flushReady()
		n.transmit(cur.dst, *dg, f.delay, f.corrupt)
		if f.duplicate {
			n.stats.duplicated.Add(1)
			n.transmit(cur.dst, *dg, f.dupDelay, false)
		}
	}
	flushReady()
	n.stats.sent.Add(sent)
	n.stats.bytesSent.Add(bytes)
	return len(dgs), nil
}

// deliverRun delivers pre-copied zero-delay datagrams to one destination
// under a single receiver-lock acquisition.
func (n *Network) deliverRun(dst *simTransport, cps []wire.Datagram) {
	var delivered, droppedQueue uint64
	dst.mu.Lock()
	if dst.closed {
		dst.mu.Unlock()
		n.stats.droppedDead.Add(uint64(len(cps)))
		return
	}
	for _, cp := range cps {
		select {
		case dst.rx <- cp:
			delivered++
		default:
			droppedQueue++
		}
	}
	dst.mu.Unlock()
	n.stats.delivered.Add(delivered)
	n.stats.droppedQueue.Add(droppedQueue)
}

// corruptCopy flips one random bit of a payload copy.
func (n *Network) corruptCopy(p []byte) {
	if len(p) == 0 {
		return
	}
	n.rngMu.Lock()
	i := n.rng.Intn(len(p))
	bit := byte(1) << n.rng.Intn(8)
	n.rngMu.Unlock()
	p[i] ^= bit
	n.stats.corrupted.Add(1)
}

// transmit copies the payload (the Send contract lets the sender reuse its
// buffer as soon as Send returns, and the Receive contract gives the
// receiver sole ownership), optionally flips one bit of the copy, and
// delivers it after delay.
func (n *Network) transmit(dst *simTransport, dg wire.Datagram, delay time.Duration, corrupt bool) {
	cp := dg
	cp.Payload = append([]byte(nil), dg.Payload...)
	if corrupt && len(cp.Payload) > 0 {
		n.rngMu.Lock()
		i := n.rng.Intn(len(cp.Payload))
		bit := byte(1) << n.rng.Intn(8)
		n.rngMu.Unlock()
		cp.Payload[i] ^= bit
		n.stats.corrupted.Add(1)
	}
	if delay <= 0 {
		n.deliver(dst, cp)
		return
	}
	// Register the timer synchronously so that a Manual clock advanced
	// right after Send returns still fires this delivery.
	timer := n.clk.After(delay)
	go func() {
		<-timer
		n.deliver(dst, cp)
	}()
}

func (n *Network) deliver(dst *simTransport, dg wire.Datagram) {
	dst.mu.Lock()
	if dst.closed {
		dst.mu.Unlock()
		n.stats.droppedDead.Add(1)
		return
	}
	select {
	case dst.rx <- dg:
		dst.mu.Unlock()
		n.stats.delivered.Add(1)
	default:
		dst.mu.Unlock()
		n.stats.droppedQueue.Add(1)
	}
}

type simTransport struct {
	net  *Network
	addr wire.Addr
	rx   chan wire.Datagram
	// shared marks a Mux port: rx belongs to the Mux and is shared with
	// other ports, so Close must not close it.
	shared bool
	mu     sync.Mutex
	// closed is guarded by mu; deliver() checks it before sending on rx so
	// Close can safely close the channel.
	closed bool
}

func (t *simTransport) LocalAddr() wire.Addr { return t.addr }

func (t *simTransport) Send(dg wire.Datagram) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	dg.Src = t.addr
	return t.net.send(dg)
}

// SendBatch implements BatchSender natively on the fabric: one closed-flag
// check and one batch counter bump up front, then the network's vectored
// path, which delivers zero-delay same-destination runs under a single
// receiver-lock acquisition.
func (t *simTransport) SendBatch(dgs []wire.Datagram) (int, error) {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	for i := range dgs {
		dgs[i].Src = t.addr
	}
	return t.net.sendBatch(dgs)
}

func (t *simTransport) Receive() <-chan wire.Datagram { return t.rx }

// RegisterTelemetry implements telemetry.Registrable: the fabric endpoint
// contributes a lazy gauge for its receive-queue depth so a node's snapshot
// shows transport backpressure.
func (t *simTransport) RegisterTelemetry(r *telemetry.Registry) {
	_ = r.Register(telemetry.NewGaugeFunc("transport_rx_queue_depth", func() int64 {
		return int64(len(t.rx))
	}))
}

func (t *simTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	if !t.shared {
		close(t.rx)
	}
	t.mu.Unlock()
	t.net.detach(t.addr)
	return nil
}

// attachShared registers a port at addr whose inbound traffic lands on the
// caller-owned shared queue rx; used by Mux. Caller closes rx, never the
// port.
func (n *Network) attachShared(addr wire.Addr, rx chan wire.Datagram) (*simTransport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.nodes[addr]; exists {
		return nil, fmt.Errorf("netsim: address %s already attached", addr)
	}
	t := &simTransport{net: n, addr: addr, rx: rx, shared: true}
	n.nodes[addr] = t
	return t, nil
}

// AddrAllocator hands out sequential unique-local addresses for building
// topologies.
type AddrAllocator struct {
	mu   sync.Mutex
	next uint32
}

// NewAddrAllocator returns an allocator starting at fd00::1.
func NewAddrAllocator() *AddrAllocator { return &AddrAllocator{next: 1} }

// Next returns the next unused address.
func (a *AddrAllocator) Next() wire.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	v := a.next
	a.next++
	var b [16]byte
	b[0] = 0xfd
	b[12] = byte(v >> 24)
	b[13] = byte(v >> 16)
	b[14] = byte(v >> 8)
	b[15] = byte(v)
	return addrFrom16(b)
}
