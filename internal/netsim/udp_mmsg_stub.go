//go:build !(linux && (amd64 || arm64))

package netsim

// mmsgArch reports whether this build has the vectored syscall path; on
// this target every batch goes through the portable per-packet loop.
const mmsgArch = false

// mmsgTxState is empty here: no vectored scratch is needed.
type mmsgTxState struct{}

func (t *UDPTransport) sendMMsg(st *udpTxState) (int, error) {
	return 0, errMMsgUnsupported
}

func (t *UDPTransport) readLoopMMsg() bool { return false }
