//go:build !(linux && (amd64 || arm64))

package netsim

import "interedge/internal/wire"

// mmsgArch reports whether this build has the vectored syscall path; on
// this target every batch goes through the portable per-packet loop.
const mmsgArch = false

// mmsgTxState is empty here: no vectored scratch is needed.
type mmsgTxState struct{}

func (t *UDPTransport) sendMMsg(st *udpTxState) (int, error) {
	return 0, errMMsgUnsupported
}

func (t *UDPTransport) readLoopMMsg() bool { return false }

// GSO/GRO hooks: never enabled on this target (probeGSO is unreachable
// because mmsgOK is never true here, but the stubs keep the portable
// build honest).
func (t *UDPTransport) probeGSO() bool  { return false }
func (t *UDPTransport) enableGRO() bool { return false }
func (t *UDPTransport) disableGRO()     {}

func (t *UDPTransport) sendBatchGSO(dgs []wire.Datagram) (int, error) {
	return 0, errGSOUnsupported
}

func (t *UDPTransport) releaseGSO(st *udpTxState) {}

// UDPGSOSupported reports whether the kernel accepts UDP_SEGMENT; never
// on this target.
func UDPGSOSupported() bool { return false }
