package netsim

import (
	"testing"
	"time"

	"interedge/internal/clock"
	"interedge/internal/wire"
)

func attach(t *testing.T, n *Network, addr string) Transport {
	t.Helper()
	tr, err := n.Attach(wire.MustAddr(addr))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBasicDelivery(t *testing.T) {
	n := NewNetwork()
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")
	if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	select {
	case dg := <-b.Receive():
		if string(dg.Payload) != "hello" {
			t.Fatalf("payload %q", dg.Payload)
		}
		if dg.Src != a.LocalAddr() {
			t.Fatalf("src %s, want %s", dg.Src, a.LocalAddr())
		}
	case <-time.After(time.Second):
		t.Fatal("timeout")
	}
}

func TestSenderBufferReuseSafe(t *testing.T) {
	n := NewNetwork()
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")
	buf := []byte("first")
	if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: buf}); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXX")
	dg := <-b.Receive()
	if string(dg.Payload) != "first" {
		t.Fatalf("delivered payload mutated: %q", dg.Payload)
	}
}

func TestUnknownDestination(t *testing.T) {
	n := NewNetwork()
	a := attach(t, n, "fd00::1")
	err := a.Send(wire.Datagram{Dst: wire.MustAddr("fd00::99"), Payload: []byte("x")})
	if err != ErrUnknownDestination {
		t.Fatalf("err = %v, want ErrUnknownDestination", err)
	}
}

func TestDuplicateAttachRejected(t *testing.T) {
	n := NewNetwork()
	attach(t, n, "fd00::1")
	if _, err := n.Attach(wire.MustAddr("fd00::1")); err == nil {
		t.Fatal("duplicate attach succeeded")
	}
}

func TestCloseStopsSendAndClosesReceive(t *testing.T) {
	n := NewNetwork()
	a := attach(t, n, "fd00::1")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(wire.Datagram{Dst: wire.MustAddr("fd00::2")}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, ok := <-a.Receive(); ok {
		t.Fatal("receive channel not closed")
	}
	// Address is reusable after close.
	if _, err := n.Attach(wire.MustAddr("fd00::1")); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyWithManualClock(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	n := NewNetwork(WithClock(clk))
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")
	n.SetLinkBoth(a.LocalAddr(), b.LocalAddr(), LinkProfile{Latency: 10 * time.Millisecond})

	if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: []byte("slow")}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Receive():
		t.Fatal("delivered before latency elapsed")
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(10 * time.Millisecond)
	select {
	case dg := <-b.Receive():
		if string(dg.Payload) != "slow" {
			t.Fatalf("payload %q", dg.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("not delivered after clock advance")
	}
}

func TestLossIsDeterministicWithSeed(t *testing.T) {
	run := func() (delivered int) {
		n := NewNetwork(WithSeed(7))
		a := attach(t, n, "fd00::1")
		b := attach(t, n, "fd00::2")
		n.SetLink(a.LocalAddr(), b.LocalAddr(), LinkProfile{LossRate: 0.5})
		for i := 0; i < 100; i++ {
			if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: []byte{byte(i)}}); err != nil {
				t.Fatal(err)
			}
		}
		for {
			select {
			case <-b.Receive():
				delivered++
			case <-time.After(50 * time.Millisecond):
				return delivered
			}
		}
	}
	d1 := run()
	d2 := run()
	if d1 != d2 {
		t.Fatalf("same seed delivered %d then %d", d1, d2)
	}
	if d1 == 0 || d1 == 100 {
		t.Fatalf("loss rate 0.5 delivered %d/100", d1)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := NewNetwork()
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")
	n.Partition(a.LocalAddr(), b.LocalAddr())
	if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: []byte("lost")}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Receive():
		t.Fatal("partitioned delivery")
	case <-time.After(20 * time.Millisecond):
	}
	n.Heal(a.LocalAddr(), b.LocalAddr())
	if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: []byte("healed")}); err != nil {
		t.Fatal(err)
	}
	select {
	case dg := <-b.Receive():
		if string(dg.Payload) != "healed" {
			t.Fatalf("payload %q", dg.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery after heal")
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	n := NewNetwork(WithQueueDepth(4))
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")
	for i := 0; i < 10; i++ {
		if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Snapshot()
	if st.DroppedQueue != 6 {
		t.Fatalf("DroppedQueue = %d, want 6", st.DroppedQueue)
	}
	if st.Delivered != 4 {
		t.Fatalf("Delivered = %d, want 4", st.Delivered)
	}
}

func TestBandwidthQueueingDelay(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	n := NewNetwork(WithClock(clk))
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")
	// 1000 B/s: a ~1000B datagram takes about a second on the wire.
	n.SetLink(a.LocalAddr(), b.LocalAddr(), LinkProfile{BandwidthBps: 1000})
	payload := make([]byte, 1000-wire.DatagramHeaderSize)
	for i := 0; i < 2; i++ {
		if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	// After 1s: only the first datagram has finished serializing.
	clk.Advance(time.Second)
	got := 0
	deadline := time.After(200 * time.Millisecond)
drain1:
	for {
		select {
		case <-b.Receive():
			got++
		case <-deadline:
			break drain1
		}
	}
	if got != 1 {
		t.Fatalf("after 1s got %d datagrams, want 1", got)
	}
	clk.Advance(time.Second)
	select {
	case <-b.Receive():
	case <-time.After(time.Second):
		t.Fatal("second datagram never arrived")
	}
}

func TestStatsCounters(t *testing.T) {
	n := NewNetwork()
	a := attach(t, n, "fd00::1")
	b := attach(t, n, "fd00::2")
	for i := 0; i < 5; i++ {
		if err := a.Send(wire.Datagram{Dst: b.LocalAddr(), Payload: make([]byte, 100)}); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Snapshot()
	if st.Sent != 5 || st.Delivered != 5 || st.BytesSent != 500 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOverMTURejected(t *testing.T) {
	n := NewNetwork()
	a := attach(t, n, "fd00::1")
	attach(t, n, "fd00::2")
	err := a.Send(wire.Datagram{Dst: wire.MustAddr("fd00::2"), Payload: make([]byte, wire.MTU+1)})
	if err == nil {
		t.Fatal("over-MTU send succeeded")
	}
}

func TestAddrAllocatorUnique(t *testing.T) {
	alloc := NewAddrAllocator()
	seen := map[wire.Addr]bool{}
	for i := 0; i < 1000; i++ {
		a := alloc.Next()
		if seen[a] {
			t.Fatalf("duplicate address %s", a)
		}
		seen[a] = true
	}
}

func TestUDPTransportRoundTrip(t *testing.T) {
	dir := NewUDPDirectory()
	addrA, addrB := wire.MustAddr("fd00::a"), wire.MustAddr("fd00::b")
	ta, err := NewUDPTransport(addrA, "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewUDPTransport(addrB, "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	if err := ta.Send(wire.Datagram{Dst: addrB, Payload: []byte("over udp")}); err != nil {
		t.Fatal(err)
	}
	select {
	case dg := <-tb.Receive():
		if string(dg.Payload) != "over udp" || dg.Src != addrA {
			t.Fatalf("got %+v", dg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestUDPTransportUnknownDestination(t *testing.T) {
	dir := NewUDPDirectory()
	ta, err := NewUDPTransport(wire.MustAddr("fd00::a"), "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	if err := ta.Send(wire.Datagram{Dst: wire.MustAddr("fd00::b")}); err != ErrUnknownDestination {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkFabricDelivery(b *testing.B) {
	n := NewNetwork()
	a, _ := n.Attach(wire.MustAddr("fd00::1"))
	dst, _ := n.Attach(wire.MustAddr("fd00::2"))
	payload := make([]byte, 1024)
	done := make(chan struct{})
	go func() {
		for range dst.Receive() {
		}
		close(done)
	}()
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(wire.Datagram{Dst: dst.LocalAddr(), Payload: payload}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	dst.Close()
	<-done
}
