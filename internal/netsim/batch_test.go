package netsim

import (
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"interedge/internal/wire"
)

// loopTransport hides the BatchSender implementation of a Transport, so the
// package-level SendBatch helper must take its per-Send fallback path.
type loopTransport struct {
	inner Transport
	sends int
}

func (l *loopTransport) LocalAddr() wire.Addr          { return l.inner.LocalAddr() }
func (l *loopTransport) Receive() <-chan wire.Datagram { return l.inner.Receive() }
func (l *loopTransport) Close() error                  { return l.inner.Close() }
func (l *loopTransport) Send(dg wire.Datagram) error {
	l.sends++
	return l.inner.Send(dg)
}

func mkBatch(dst wire.Addr, n int) []wire.Datagram {
	dgs := make([]wire.Datagram, n)
	for i := range dgs {
		dgs[i] = wire.Datagram{Dst: dst, Payload: []byte(fmt.Sprintf("pkt-%03d", i))}
	}
	return dgs
}

func drainN(t *testing.T, rx <-chan wire.Datagram, n int) []wire.Datagram {
	t.Helper()
	out := make([]wire.Datagram, 0, n)
	for len(out) < n {
		select {
		case dg := <-rx:
			out = append(out, dg)
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout after %d/%d datagrams", len(out), n)
		}
	}
	return out
}

func TestFabricSendBatchOrderAndStats(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Attach(wire.MustAddr("fd00::1"))
	b, _ := n.Attach(wire.MustAddr("fd00::2"))
	const count = 50
	sent, err := SendBatch(a, mkBatch(b.LocalAddr(), count))
	if err != nil || sent != count {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	got := drainN(t, b.Receive(), count)
	for i, dg := range got {
		if want := fmt.Sprintf("pkt-%03d", i); string(dg.Payload) != want {
			t.Fatalf("datagram %d = %q, want %q (order broken)", i, dg.Payload, want)
		}
		if dg.Src != a.LocalAddr() {
			t.Fatalf("datagram %d Src = %s", i, dg.Src)
		}
	}
	st := n.Snapshot()
	if st.Batches != 1 {
		t.Fatalf("Batches = %d, want 1 (native vectored path)", st.Batches)
	}
	if st.Sent != count || st.Delivered != count {
		t.Fatalf("Sent/Delivered = %d/%d, want %d/%d", st.Sent, st.Delivered, count, count)
	}
}

func TestSendBatchHelperFallsBackToSend(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Attach(wire.MustAddr("fd00::1"))
	b, _ := n.Attach(wire.MustAddr("fd00::2"))
	lt := &loopTransport{inner: a}
	const count = 7
	sent, err := SendBatch(lt, mkBatch(b.LocalAddr(), count))
	if err != nil || sent != count {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	if lt.sends != count {
		t.Fatalf("fallback Sends = %d, want %d", lt.sends, count)
	}
	drainN(t, b.Receive(), count)
	if st := n.Snapshot(); st.Batches != 0 {
		t.Fatalf("Batches = %d, want 0 (helper must not claim a native batch)", st.Batches)
	}
}

func TestFabricSendBatchUnknownDestinationMidBatch(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Attach(wire.MustAddr("fd00::1"))
	b, _ := n.Attach(wire.MustAddr("fd00::2"))
	dgs := mkBatch(b.LocalAddr(), 5)
	dgs[3].Dst = wire.MustAddr("fd00::dead") // not attached
	sent, err := SendBatch(a, dgs)
	if !errors.Is(err, ErrUnknownDestination) {
		t.Fatalf("err = %v", err)
	}
	if sent != 3 {
		t.Fatalf("sent = %d, want 3 (dgs[n:] not sent on error)", sent)
	}
	drainN(t, b.Receive(), 3)
}

func TestFabricSendBatchPartitionCountsConsumed(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Attach(wire.MustAddr("fd00::1"))
	b, _ := n.Attach(wire.MustAddr("fd00::2"))
	n.Partition(a.LocalAddr(), b.LocalAddr())
	sent, err := SendBatch(a, mkBatch(b.LocalAddr(), 4))
	if err != nil || sent != 4 {
		t.Fatalf("SendBatch = %d, %v (black-holed datagrams count as consumed)", sent, err)
	}
	if st := n.Snapshot(); st.DroppedDead != 4 {
		t.Fatalf("DroppedDead = %d, want 4", st.DroppedDead)
	}
}

// TestFabricBatchFaultDeterminism checks that a batch observes the same
// seeded loss/duplicate pattern the equivalent Send sequence would: the
// random draws are strictly per-datagram, in order, on both paths.
func TestFabricBatchFaultDeterminism(t *testing.T) {
	run := func(batch bool) Stats {
		n := NewNetwork(WithSeed(42))
		a, _ := n.Attach(wire.MustAddr("fd00::1"))
		b, _ := n.Attach(wire.MustAddr("fd00::2"))
		n.SetLinkBoth(a.LocalAddr(), b.LocalAddr(), LinkProfile{LossRate: 0.3})
		n.SetFaultsBoth(a.LocalAddr(), b.LocalAddr(), FaultProfile{DuplicateRate: 0.2, CorruptRate: 0.1})
		dgs := mkBatch(b.LocalAddr(), 200)
		if batch {
			if _, err := SendBatch(a, dgs); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, dg := range dgs {
				if err := a.Send(dg); err != nil {
					t.Fatal(err)
				}
			}
		}
		// All deliveries are synchronous on an ideal-latency link except
		// duplicates, which transmit() hands to a goroutine; wait for the
		// accounting to converge.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			st := n.Snapshot()
			if st.Delivered+st.DroppedQueue == st.Sent-st.DroppedLoss+st.Duplicated {
				break
			}
			time.Sleep(time.Millisecond)
		}
		st := n.Snapshot()
		st.Batches = 0 // the one counter that legitimately differs
		return st
	}
	seq, bat := run(false), run(true)
	if seq != bat {
		t.Fatalf("fault pattern diverged:\n sequential: %+v\n batch:      %+v", seq, bat)
	}
}

func TestUDPSendBatchRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []UDPOption
	}{
		{"vectored", nil},
		{"fallback", []UDPOption{WithoutMMsg()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := NewUDPDirectory()
			addrA, addrB := wire.MustAddr("fd00::a"), wire.MustAddr("fd00::b")
			ta, err := NewUDPTransport(addrA, "127.0.0.1:0", dir, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer ta.Close()
			tb, err := NewUDPTransport(addrB, "127.0.0.1:0", dir, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer tb.Close()

			const count = 40 // > rxBatch, so the vectored read loop wraps
			sent, err := SendBatch(ta, mkBatch(addrB, count))
			if err != nil || sent != count {
				t.Fatalf("SendBatch = %d, %v", sent, err)
			}
			seen := make(map[string]bool, count)
			for _, dg := range drainN(t, tb.Receive(), count) {
				if dg.Src != addrA {
					t.Fatalf("Src = %s", dg.Src)
				}
				seen[string(dg.Payload)] = true
			}
			if len(seen) != count {
				t.Fatalf("received %d distinct payloads, want %d", len(seen), count)
			}
			st := ta.Stats()
			if st.TxPackets != count || st.TxBatches != 1 {
				t.Fatalf("TxPackets/TxBatches = %d/%d, want %d/1", st.TxPackets, st.TxBatches, count)
			}
			if rs := tb.Stats(); rs.RxPackets != count || rs.RxMalformed != 0 || rs.RxDropped != 0 {
				t.Fatalf("receiver stats = %+v", rs)
			}
		})
	}
}

func TestUDPSendBatchMixedDestinations(t *testing.T) {
	dir := NewUDPDirectory()
	addrA, addrB, addrC := wire.MustAddr("fd00::a"), wire.MustAddr("fd00::b"), wire.MustAddr("fd00::c")
	ta, err := NewUDPTransport(addrA, "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, _ := NewUDPTransport(addrB, "127.0.0.1:0", dir)
	defer tb.Close()
	tc, _ := NewUDPTransport(addrC, "127.0.0.1:0", dir)
	defer tc.Close()

	dgs := []wire.Datagram{
		{Dst: addrB, Payload: []byte("b0")},
		{Dst: addrC, Payload: []byte("c0")},
		{Dst: addrB, Payload: []byte("b1")},
	}
	if sent, err := SendBatch(ta, dgs); err != nil || sent != 3 {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	gotB := drainN(t, tb.Receive(), 2)
	if string(gotB[0].Payload) != "b0" || string(gotB[1].Payload) != "b1" {
		t.Fatalf("b order = %q, %q", gotB[0].Payload, gotB[1].Payload)
	}
	if gotC := drainN(t, tc.Receive(), 1); string(gotC[0].Payload) != "c0" {
		t.Fatalf("c = %q", gotC[0].Payload)
	}
}

func TestUDPSendBatchUnknownDestination(t *testing.T) {
	dir := NewUDPDirectory()
	addrA, addrB := wire.MustAddr("fd00::a"), wire.MustAddr("fd00::b")
	ta, err := NewUDPTransport(addrA, "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, _ := NewUDPTransport(addrB, "127.0.0.1:0", dir)
	defer tb.Close()

	dgs := mkBatch(addrB, 4)
	dgs[2].Dst = wire.MustAddr("fd00::dead")
	sent, err := SendBatch(ta, dgs)
	if !errors.Is(err, ErrUnknownDestination) || sent != 2 {
		t.Fatalf("SendBatch = %d, %v; want 2, ErrUnknownDestination", sent, err)
	}
	drainN(t, tb.Receive(), 2)
}

func TestUDPRxMalformedAndDropCounters(t *testing.T) {
	dir := NewUDPDirectory()
	addr := wire.MustAddr("fd00::a")
	// Queue depth 1: the second well-formed datagram that arrives while
	// nothing reads the channel must be counted as dropped.
	tr, err := NewUDPTransport(addr, "127.0.0.1:0", dir, WithUDPQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ep, _ := dir.Lookup(addr)
	raw, err := net.DialUDP("udp", nil, ep)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	// Malformed: too short to hold a datagram header.
	if _, err := raw.Write([]byte{0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	waitFor := func(what string, get func() uint64, want uint64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for get() < want {
			if time.Now().After(deadline) {
				t.Fatalf("%s = %d, want >= %d", what, get(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("RxMalformed", func() uint64 { return tr.Stats().RxMalformed }, 1)

	good := wire.Datagram{Src: wire.MustAddr("fd00::b"), Dst: addr, Payload: []byte("x")}
	enc, err := good.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := raw.Write(enc); err != nil {
			t.Fatal(err)
		}
	}
	waitFor("RxDropped", func() uint64 { return tr.Stats().RxDropped }, 1)
	if st := tr.Stats(); st.RxPackets == 0 {
		t.Fatalf("RxPackets = 0, want > 0; stats %+v", st)
	}
}

// TestUDPGSOCapabilityProbe logs (never fails) whether this kernel takes
// UDP_SEGMENT; scripts/check.sh greps this output so CI records which leg
// the rest of the suite exercised.
func TestUDPGSOCapabilityProbe(t *testing.T) {
	if UDPGSOSupported() {
		t.Log("UDP GSO: supported; SendBatch coalesces per-peer super-datagrams")
	} else {
		t.Log("UDP GSO: unsupported; SendBatch uses the sendmmsg/per-packet fallback")
	}
}

func TestUDPGSOSuperDatagramRoundTrip(t *testing.T) {
	if !UDPGSOSupported() || os.Getenv("INTEREDGE_NO_GSO") != "" {
		t.Skip("UDP_SEGMENT unavailable or forced off")
	}
	dir := NewUDPDirectory()
	addrA, addrB := wire.MustAddr("fd00::a"), wire.MustAddr("fd00::b")
	ta, err := NewUDPTransport(addrA, "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewUDPTransport(addrB, "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	// Equal-size datagrams to one peer: the whole batch must ride one
	// super-datagram (one message, segs == count).
	const count = 32
	sent, err := SendBatch(ta, mkBatch(addrB, count))
	if err != nil || sent != count {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	seen := make(map[string]bool, count)
	for _, dg := range drainN(t, tb.Receive(), count) {
		seen[string(dg.Payload)] = true
	}
	if len(seen) != count {
		t.Fatalf("received %d distinct payloads, want %d", len(seen), count)
	}
	if st := ta.Stats(); st.TxPackets != count || st.TxBatches != 1 {
		t.Fatalf("TxPackets/TxBatches = %d/%d, want %d/1", st.TxPackets, st.TxBatches, count)
	}
	if got := ta.gsoSegments.Count(); got == 0 {
		t.Fatal("transport_gso_segments recorded no observations on the GSO path")
	}
}

func TestUDPGSOMixedSizeRuns(t *testing.T) {
	if !UDPGSOSupported() || os.Getenv("INTEREDGE_NO_GSO") != "" {
		t.Skip("UDP_SEGMENT unavailable or forced off")
	}
	dir := NewUDPDirectory()
	addrA, addrB := wire.MustAddr("fd00::a"), wire.MustAddr("fd00::b")
	ta, err := NewUDPTransport(addrA, "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewUDPTransport(addrB, "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	// Sizes chosen to exercise every run boundary: equal run, shrinking
	// (shorter segment closes a run), growing (larger segment opens one).
	sizes := []int{100, 100, 100, 40, 100, 200, 200, 7, 7, 500}
	dgs := make([]wire.Datagram, len(sizes))
	for i, sz := range sizes {
		p := make([]byte, sz)
		for j := range p {
			p[j] = byte(i)
		}
		dgs[i] = wire.Datagram{Dst: addrB, Payload: p}
	}
	sent, err := SendBatch(ta, dgs)
	if err != nil || sent != len(dgs) {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	got := drainN(t, tb.Receive(), len(dgs))
	counts := map[int]int{}
	for _, dg := range got {
		counts[len(dg.Payload)]++
		if len(dg.Payload) > 0 && dg.Payload[0] != byte(dg.Payload[len(dg.Payload)-1]) {
			t.Fatal("payload bytes mixed across segment boundaries")
		}
	}
	want := map[int]int{100: 4, 40: 1, 200: 2, 7: 2, 500: 1}
	for sz, n := range want {
		if counts[sz] != n {
			t.Fatalf("size %d: got %d datagrams, want %d (counts=%v)", sz, counts[sz], n, counts)
		}
	}
}

// TestUDPGSODeterminismVsFallback sends an identical seeded batch through
// a GSO transport and a forced-fallback transport: coalescing must be
// invisible — same datagrams, same per-peer order, same counts.
func TestUDPGSODeterminismVsFallback(t *testing.T) {
	run := func(opts ...UDPOption) []string {
		dir := NewUDPDirectory()
		addrA, addrB := wire.MustAddr("fd00::a"), wire.MustAddr("fd00::b")
		ta, err := NewUDPTransport(addrA, "127.0.0.1:0", dir, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer ta.Close()
		tb, err := NewUDPTransport(addrB, "127.0.0.1:0", dir, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer tb.Close()
		// Deterministic LCG sizes: a mix of equal runs and breaks.
		dgs := make([]wire.Datagram, 48)
		x := uint32(12345)
		for i := range dgs {
			x = x*1664525 + 1013904223
			sz := 20 + int(x%4)*30 // four distinct sizes → runs form and break
			p := make([]byte, sz)
			p[0] = byte(i)
			dgs[i] = wire.Datagram{Dst: addrB, Payload: p}
		}
		sent, err := SendBatch(ta, dgs)
		if err != nil || sent != len(dgs) {
			t.Fatalf("SendBatch = %d, %v", sent, err)
		}
		got := drainN(t, tb.Receive(), len(dgs))
		out := make([]string, len(got))
		for i, dg := range got {
			out[i] = fmt.Sprintf("%d:%d", dg.Payload[0], len(dg.Payload))
		}
		return out
	}
	gso := run()
	fallback := run(WithoutUDPGSO())
	if len(gso) != len(fallback) {
		t.Fatalf("delivery count diverged: gso=%d fallback=%d", len(gso), len(fallback))
	}
	for i := range gso {
		if gso[i] != fallback[i] {
			t.Fatalf("datagram %d diverged through GSO coalescing: gso=%s fallback=%s", i, gso[i], fallback[i])
		}
	}
}

func TestUDPSendBatchAfterClose(t *testing.T) {
	dir := NewUDPDirectory()
	tr, err := NewUDPTransport(wire.MustAddr("fd00::a"), "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if _, err := SendBatch(tr, mkBatch(wire.MustAddr("fd00::b"), 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
