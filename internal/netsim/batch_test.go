package netsim

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"interedge/internal/wire"
)

// loopTransport hides the BatchSender implementation of a Transport, so the
// package-level SendBatch helper must take its per-Send fallback path.
type loopTransport struct {
	inner Transport
	sends int
}

func (l *loopTransport) LocalAddr() wire.Addr          { return l.inner.LocalAddr() }
func (l *loopTransport) Receive() <-chan wire.Datagram { return l.inner.Receive() }
func (l *loopTransport) Close() error                  { return l.inner.Close() }
func (l *loopTransport) Send(dg wire.Datagram) error {
	l.sends++
	return l.inner.Send(dg)
}

func mkBatch(dst wire.Addr, n int) []wire.Datagram {
	dgs := make([]wire.Datagram, n)
	for i := range dgs {
		dgs[i] = wire.Datagram{Dst: dst, Payload: []byte(fmt.Sprintf("pkt-%03d", i))}
	}
	return dgs
}

func drainN(t *testing.T, rx <-chan wire.Datagram, n int) []wire.Datagram {
	t.Helper()
	out := make([]wire.Datagram, 0, n)
	for len(out) < n {
		select {
		case dg := <-rx:
			out = append(out, dg)
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout after %d/%d datagrams", len(out), n)
		}
	}
	return out
}

func TestFabricSendBatchOrderAndStats(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Attach(wire.MustAddr("fd00::1"))
	b, _ := n.Attach(wire.MustAddr("fd00::2"))
	const count = 50
	sent, err := SendBatch(a, mkBatch(b.LocalAddr(), count))
	if err != nil || sent != count {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	got := drainN(t, b.Receive(), count)
	for i, dg := range got {
		if want := fmt.Sprintf("pkt-%03d", i); string(dg.Payload) != want {
			t.Fatalf("datagram %d = %q, want %q (order broken)", i, dg.Payload, want)
		}
		if dg.Src != a.LocalAddr() {
			t.Fatalf("datagram %d Src = %s", i, dg.Src)
		}
	}
	st := n.Snapshot()
	if st.Batches != 1 {
		t.Fatalf("Batches = %d, want 1 (native vectored path)", st.Batches)
	}
	if st.Sent != count || st.Delivered != count {
		t.Fatalf("Sent/Delivered = %d/%d, want %d/%d", st.Sent, st.Delivered, count, count)
	}
}

func TestSendBatchHelperFallsBackToSend(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Attach(wire.MustAddr("fd00::1"))
	b, _ := n.Attach(wire.MustAddr("fd00::2"))
	lt := &loopTransport{inner: a}
	const count = 7
	sent, err := SendBatch(lt, mkBatch(b.LocalAddr(), count))
	if err != nil || sent != count {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	if lt.sends != count {
		t.Fatalf("fallback Sends = %d, want %d", lt.sends, count)
	}
	drainN(t, b.Receive(), count)
	if st := n.Snapshot(); st.Batches != 0 {
		t.Fatalf("Batches = %d, want 0 (helper must not claim a native batch)", st.Batches)
	}
}

func TestFabricSendBatchUnknownDestinationMidBatch(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Attach(wire.MustAddr("fd00::1"))
	b, _ := n.Attach(wire.MustAddr("fd00::2"))
	dgs := mkBatch(b.LocalAddr(), 5)
	dgs[3].Dst = wire.MustAddr("fd00::dead") // not attached
	sent, err := SendBatch(a, dgs)
	if !errors.Is(err, ErrUnknownDestination) {
		t.Fatalf("err = %v", err)
	}
	if sent != 3 {
		t.Fatalf("sent = %d, want 3 (dgs[n:] not sent on error)", sent)
	}
	drainN(t, b.Receive(), 3)
}

func TestFabricSendBatchPartitionCountsConsumed(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Attach(wire.MustAddr("fd00::1"))
	b, _ := n.Attach(wire.MustAddr("fd00::2"))
	n.Partition(a.LocalAddr(), b.LocalAddr())
	sent, err := SendBatch(a, mkBatch(b.LocalAddr(), 4))
	if err != nil || sent != 4 {
		t.Fatalf("SendBatch = %d, %v (black-holed datagrams count as consumed)", sent, err)
	}
	if st := n.Snapshot(); st.DroppedDead != 4 {
		t.Fatalf("DroppedDead = %d, want 4", st.DroppedDead)
	}
}

// TestFabricBatchFaultDeterminism checks that a batch observes the same
// seeded loss/duplicate pattern the equivalent Send sequence would: the
// random draws are strictly per-datagram, in order, on both paths.
func TestFabricBatchFaultDeterminism(t *testing.T) {
	run := func(batch bool) Stats {
		n := NewNetwork(WithSeed(42))
		a, _ := n.Attach(wire.MustAddr("fd00::1"))
		b, _ := n.Attach(wire.MustAddr("fd00::2"))
		n.SetLinkBoth(a.LocalAddr(), b.LocalAddr(), LinkProfile{LossRate: 0.3})
		n.SetFaultsBoth(a.LocalAddr(), b.LocalAddr(), FaultProfile{DuplicateRate: 0.2, CorruptRate: 0.1})
		dgs := mkBatch(b.LocalAddr(), 200)
		if batch {
			if _, err := SendBatch(a, dgs); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, dg := range dgs {
				if err := a.Send(dg); err != nil {
					t.Fatal(err)
				}
			}
		}
		// All deliveries are synchronous on an ideal-latency link except
		// duplicates, which transmit() hands to a goroutine; wait for the
		// accounting to converge.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			st := n.Snapshot()
			if st.Delivered+st.DroppedQueue == st.Sent-st.DroppedLoss+st.Duplicated {
				break
			}
			time.Sleep(time.Millisecond)
		}
		st := n.Snapshot()
		st.Batches = 0 // the one counter that legitimately differs
		return st
	}
	seq, bat := run(false), run(true)
	if seq != bat {
		t.Fatalf("fault pattern diverged:\n sequential: %+v\n batch:      %+v", seq, bat)
	}
}

func TestUDPSendBatchRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []UDPOption
	}{
		{"vectored", nil},
		{"fallback", []UDPOption{WithoutMMsg()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := NewUDPDirectory()
			addrA, addrB := wire.MustAddr("fd00::a"), wire.MustAddr("fd00::b")
			ta, err := NewUDPTransport(addrA, "127.0.0.1:0", dir, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer ta.Close()
			tb, err := NewUDPTransport(addrB, "127.0.0.1:0", dir, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer tb.Close()

			const count = 40 // > rxBatch, so the vectored read loop wraps
			sent, err := SendBatch(ta, mkBatch(addrB, count))
			if err != nil || sent != count {
				t.Fatalf("SendBatch = %d, %v", sent, err)
			}
			seen := make(map[string]bool, count)
			for _, dg := range drainN(t, tb.Receive(), count) {
				if dg.Src != addrA {
					t.Fatalf("Src = %s", dg.Src)
				}
				seen[string(dg.Payload)] = true
			}
			if len(seen) != count {
				t.Fatalf("received %d distinct payloads, want %d", len(seen), count)
			}
			st := ta.Stats()
			if st.TxPackets != count || st.TxBatches != 1 {
				t.Fatalf("TxPackets/TxBatches = %d/%d, want %d/1", st.TxPackets, st.TxBatches, count)
			}
			if rs := tb.Stats(); rs.RxPackets != count || rs.RxMalformed != 0 || rs.RxDropped != 0 {
				t.Fatalf("receiver stats = %+v", rs)
			}
		})
	}
}

func TestUDPSendBatchMixedDestinations(t *testing.T) {
	dir := NewUDPDirectory()
	addrA, addrB, addrC := wire.MustAddr("fd00::a"), wire.MustAddr("fd00::b"), wire.MustAddr("fd00::c")
	ta, err := NewUDPTransport(addrA, "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, _ := NewUDPTransport(addrB, "127.0.0.1:0", dir)
	defer tb.Close()
	tc, _ := NewUDPTransport(addrC, "127.0.0.1:0", dir)
	defer tc.Close()

	dgs := []wire.Datagram{
		{Dst: addrB, Payload: []byte("b0")},
		{Dst: addrC, Payload: []byte("c0")},
		{Dst: addrB, Payload: []byte("b1")},
	}
	if sent, err := SendBatch(ta, dgs); err != nil || sent != 3 {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	gotB := drainN(t, tb.Receive(), 2)
	if string(gotB[0].Payload) != "b0" || string(gotB[1].Payload) != "b1" {
		t.Fatalf("b order = %q, %q", gotB[0].Payload, gotB[1].Payload)
	}
	if gotC := drainN(t, tc.Receive(), 1); string(gotC[0].Payload) != "c0" {
		t.Fatalf("c = %q", gotC[0].Payload)
	}
}

func TestUDPSendBatchUnknownDestination(t *testing.T) {
	dir := NewUDPDirectory()
	addrA, addrB := wire.MustAddr("fd00::a"), wire.MustAddr("fd00::b")
	ta, err := NewUDPTransport(addrA, "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, _ := NewUDPTransport(addrB, "127.0.0.1:0", dir)
	defer tb.Close()

	dgs := mkBatch(addrB, 4)
	dgs[2].Dst = wire.MustAddr("fd00::dead")
	sent, err := SendBatch(ta, dgs)
	if !errors.Is(err, ErrUnknownDestination) || sent != 2 {
		t.Fatalf("SendBatch = %d, %v; want 2, ErrUnknownDestination", sent, err)
	}
	drainN(t, tb.Receive(), 2)
}

func TestUDPRxMalformedAndDropCounters(t *testing.T) {
	dir := NewUDPDirectory()
	addr := wire.MustAddr("fd00::a")
	// Queue depth 1: the second well-formed datagram that arrives while
	// nothing reads the channel must be counted as dropped.
	tr, err := NewUDPTransport(addr, "127.0.0.1:0", dir, WithUDPQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ep, _ := dir.Lookup(addr)
	raw, err := net.DialUDP("udp", nil, ep)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	// Malformed: too short to hold a datagram header.
	if _, err := raw.Write([]byte{0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	waitFor := func(what string, get func() uint64, want uint64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for get() < want {
			if time.Now().After(deadline) {
				t.Fatalf("%s = %d, want >= %d", what, get(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("RxMalformed", func() uint64 { return tr.Stats().RxMalformed }, 1)

	good := wire.Datagram{Src: wire.MustAddr("fd00::b"), Dst: addr, Payload: []byte("x")}
	enc, err := good.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := raw.Write(enc); err != nil {
			t.Fatal(err)
		}
	}
	waitFor("RxDropped", func() uint64 { return tr.Stats().RxDropped }, 1)
	if st := tr.Stats(); st.RxPackets == 0 {
		t.Fatalf("RxPackets = 0, want > 0; stats %+v", st)
	}
}

func TestUDPSendBatchAfterClose(t *testing.T) {
	dir := NewUDPDirectory()
	tr, err := NewUDPTransport(wire.MustAddr("fd00::a"), "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if _, err := SendBatch(tr, mkBatch(wire.MustAddr("fd00::b"), 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
