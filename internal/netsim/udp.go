package netsim

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"

	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// maxUDPPayload is the largest UDP payload (and therefore the largest GSO
// super-datagram) a single send may carry.
const maxUDPPayload = 65507

// UDPDirectory maps wire addresses to real UDP endpoints so the same node
// code that runs on the in-process fabric can run across processes or
// machines. The directory plays the role of static L3 routing
// configuration; it is not a discovery service.
type UDPDirectory struct {
	mu      sync.RWMutex
	entries map[wire.Addr]*net.UDPAddr
}

// NewUDPDirectory returns an empty directory.
func NewUDPDirectory() *UDPDirectory {
	return &UDPDirectory{entries: make(map[wire.Addr]*net.UDPAddr)}
}

// Register associates a wire address with a UDP endpoint.
func (d *UDPDirectory) Register(addr wire.Addr, ep *net.UDPAddr) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries[addr] = ep
}

// Lookup resolves a wire address to a UDP endpoint.
func (d *UDPDirectory) Lookup(addr wire.Addr) (*net.UDPAddr, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ep, ok := d.entries[addr]
	return ep, ok
}

// UDPStats counts what the socket path did. All counters are monotonic.
type UDPStats struct {
	RxPackets   uint64 // datagrams decoded and queued for the receiver
	RxDropped   uint64 // well-formed datagrams dropped at a full rx queue
	RxMalformed uint64 // datagrams that failed wire decode
	TxPackets   uint64 // datagrams written to the socket
	TxBatches   uint64 // SendBatch flushes (vectored or loop fallback)
}

// errMMsgUnsupported is the platform hooks' signal to fall back to the
// portable per-packet path; it never escapes this package.
var errMMsgUnsupported = errors.New("netsim: mmsg unsupported")

// errGSOUnsupported is the platform hooks' signal that the kernel refused
// a UDP_SEGMENT send; the transport latches GSO off and resends via the
// plain vectored path. It never escapes this package.
var errGSOUnsupported = errors.New("netsim: udp gso unsupported")

// UDPOption configures a UDPTransport.
type UDPOption func(*UDPTransport)

// WithUDPQueueDepth sets the receive queue depth (default 4096).
func WithUDPQueueDepth(d int) UDPOption {
	return func(t *UDPTransport) { t.queueDepth = d }
}

// WithoutMMsg disables the sendmmsg/recvmmsg fast path, forcing the
// portable per-packet syscalls. Used by tests to exercise the fallback.
func WithoutMMsg() UDPOption {
	return func(t *UDPTransport) { t.noMMsg = true }
}

// WithoutUDPGSO disables UDP segmentation/receive offload (UDP_SEGMENT /
// UDP_GRO), forcing per-datagram sendmmsg framing. Used by tests to
// exercise the fallback; the INTEREDGE_NO_GSO environment variable forces
// the same for a whole test run (the CI fallback leg).
func WithoutUDPGSO() UDPOption {
	return func(t *UDPTransport) { t.noGSO = true }
}

// WithUDPTelemetry homes the transport's transport_udp_* instruments in an
// existing registry instead of a private one.
func WithUDPTelemetry(r *telemetry.Registry) UDPOption {
	return func(t *UDPTransport) { t.telem = r }
}

// UDPTransport carries wire datagrams over a real UDP socket. On Linux
// (amd64/arm64) batches go through sendmmsg(2)/recvmmsg(2); elsewhere, and
// when the kernel rejects the vectored calls, it degrades to the portable
// per-packet path.
type UDPTransport struct {
	addr       wire.Addr
	dir        *UDPDirectory
	conn       *net.UDPConn
	rc         syscall.RawConn
	rx         chan wire.Datagram
	queueDepth int
	noMMsg     bool
	noGSO      bool
	sock6      bool // socket is AF_INET6; v4 destinations need mapping
	// groOn records that UDP_GRO was enabled on the socket. Written before
	// the read loop starts and by the read loop itself on fallback; never
	// read elsewhere.
	groOn bool

	closed atomic.Bool
	// mmsgOK drops to false on the first hard sendmmsg failure so a kernel
	// that rejects the syscall costs one failed attempt, not one per batch.
	mmsgOK atomic.Bool
	// gsoOK drops to false on the first refused UDP_SEGMENT send, so an
	// unsupported kernel or NIC path costs one failed attempt; the batch
	// that hit it is retried on the plain vectored path.
	gsoOK atomic.Bool

	encPool sync.Pool // *[]byte encode buffers
	txPool  sync.Pool // *udpTxState batch scratch
	gsoPool sync.Pool // *[]byte super-datagram buffers (GSO path)

	// The socket counters are telemetry instruments homed in a private
	// registry; RegisterTelemetry shares the same instrument objects into a
	// node registry so the SN's snapshot covers the transport layer.
	telem       *telemetry.Registry
	rxPackets   *telemetry.Counter
	rxDropped   *telemetry.Counter
	rxMalformed *telemetry.Counter
	txPackets   *telemetry.Counter
	txBatches   *telemetry.Counter
	gsoSegments *telemetry.Histogram
}

// udpTxState is the reusable scratch for one in-flight SendBatch: the
// pooled encode buffers and resolved endpoints, plus whatever per-platform
// storage (msghdr/iovec/sockaddr arrays) the vectored path needs.
type udpTxState struct {
	bufs []*[]byte
	eps  []*net.UDPAddr
	sys  mmsgTxState
}

// NewUDPTransport binds a UDP socket on listen (e.g. "127.0.0.1:0"),
// registers the node in the directory, and starts the receive loop.
func NewUDPTransport(addr wire.Addr, listen string, dir *UDPDirectory, opts ...UDPOption) (*UDPTransport, error) {
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("netsim: resolve %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("netsim: listen UDP: %w", err)
	}
	t := &UDPTransport{
		addr:       addr,
		dir:        dir,
		conn:       conn,
		queueDepth: 4096,
	}
	for _, o := range opts {
		o(t)
	}
	if t.telem == nil {
		t.telem = telemetry.NewRegistry()
	}
	if os.Getenv("INTEREDGE_NO_GSO") != "" {
		t.noGSO = true
	}
	t.rxPackets = t.telem.Counter("transport_udp_rx_packets_total")
	t.rxDropped = t.telem.Counter("transport_udp_rx_dropped_total")
	t.rxMalformed = t.telem.Counter("transport_udp_rx_malformed_total")
	t.txPackets = t.telem.Counter("transport_udp_tx_packets_total")
	t.txBatches = t.telem.Counter("transport_udp_tx_batches_total")
	t.gsoSegments = t.telem.Histogram("transport_gso_segments", telemetry.BatchBuckets)
	t.rx = make(chan wire.Datagram, t.queueDepth)
	t.encPool.New = func() any {
		b := make([]byte, 0, wire.MTU+wire.DatagramHeaderSize)
		return &b
	}
	t.txPool.New = func() any { return &udpTxState{} }
	t.gsoPool.New = func() any {
		b := make([]byte, 0, maxUDPPayload)
		return &b
	}
	local := conn.LocalAddr().(*net.UDPAddr)
	t.sock6 = local.IP.To4() == nil
	if rc, err := conn.SyscallConn(); err == nil {
		t.rc = rc
		t.mmsgOK.Store(mmsgArch && !t.noMMsg)
		// GSO rides on the vectored path: the capability probe is a cheap
		// setsockopt, and GRO is only worth enabling when the vectored read
		// loop (which parses its cmsgs) will run.
		if t.mmsgOK.Load() && !t.noGSO && t.probeGSO() {
			t.gsoOK.Store(true)
			t.groOn = t.enableGRO()
		}
	}
	dir.Register(addr, local)
	go t.readLoop()
	return t, nil
}

// readLoop prefers the vectored recvmmsg path; if the platform hook
// declines (non-Linux build, old kernel, or WithoutMMsg) it falls back to
// one blocking ReadFromUDP per datagram.
func (t *UDPTransport) readLoop() {
	if t.rc != nil && mmsgArch && !t.noMMsg {
		if t.readLoopMMsg() {
			return // loop ran until close and shut the rx channel
		}
		// The portable loop below cannot parse GRO cmsgs, so coalescing
		// must be turned off before falling back or multi-datagram reads
		// would be decoded as one malformed packet.
		if t.groOn {
			t.disableGRO()
			t.groOn = false
		}
	}
	buf := make([]byte, wire.MTU+wire.DatagramHeaderSize)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			if t.closed.Load() {
				close(t.rx)
				return
			}
			continue
		}
		t.deliverRx(buf[:n])
	}
}

// deliverRx decodes one packet off the socket and queues it, counting
// malformed decodes and full-queue drops instead of silently eating them.
func (t *UDPTransport) deliverRx(pkt []byte) {
	var dg wire.Datagram
	if _, err := dg.DecodeFromBytes(pkt); err != nil {
		t.rxMalformed.Add(1)
		return
	}
	// Copy out of the reused read buffer.
	dg.Payload = append([]byte(nil), dg.Payload...)
	select {
	case t.rx <- dg:
		t.rxPackets.Add(1)
	default:
		t.rxDropped.Add(1)
	}
}

// LocalAddr implements Transport.
func (t *UDPTransport) LocalAddr() wire.Addr { return t.addr }

// Send implements Transport.
func (t *UDPTransport) Send(dg wire.Datagram) error {
	if t.closed.Load() {
		return ErrClosed
	}
	dg.Src = t.addr
	ep, ok := t.dir.Lookup(dg.Dst)
	if !ok {
		return ErrUnknownDestination
	}
	bp := t.encPool.Get().(*[]byte)
	buf, err := dg.AppendEncode((*bp)[:0])
	if err != nil {
		t.encPool.Put(bp)
		return err
	}
	*bp = buf
	_, err = t.conn.WriteToUDP(buf, ep)
	t.encPool.Put(bp)
	if err == nil {
		t.txPackets.Add(1)
	}
	return err
}

// SendBatch implements BatchSender: the whole batch is encoded into pooled
// buffers and flushed with one sendmmsg(2) where available (destinations
// may differ per datagram — each message carries its own sockaddr), or a
// WriteToUDP loop otherwise.
func (t *UDPTransport) SendBatch(dgs []wire.Datagram) (int, error) {
	if t.closed.Load() {
		return 0, ErrClosed
	}
	if t.gsoOK.Load() {
		n, err := t.sendBatchGSO(dgs)
		if !errors.Is(err, errGSOUnsupported) {
			return n, err
		}
		// Refused with nothing sent: latch GSO off and resend the whole
		// batch with per-datagram framing.
		t.gsoOK.Store(false)
	}
	st := t.txPool.Get().(*udpTxState)
	defer t.releaseTx(st)
	for i := range dgs {
		dgs[i].Src = t.addr
		ep, ok := t.dir.Lookup(dgs[i].Dst)
		if !ok {
			n, werr := t.writeBatch(st)
			if werr != nil {
				return n, werr
			}
			return i, ErrUnknownDestination
		}
		bp := t.encPool.Get().(*[]byte)
		buf, err := dgs[i].AppendEncode((*bp)[:0])
		if err != nil {
			t.encPool.Put(bp)
			n, werr := t.writeBatch(st)
			if werr != nil {
				return n, werr
			}
			return i, err
		}
		*bp = buf
		st.bufs = append(st.bufs, bp)
		st.eps = append(st.eps, ep)
	}
	return t.writeBatch(st)
}

// writeBatch flushes the encoded batch: vectored first, then the portable
// loop for whatever the vectored path could not take.
func (t *UDPTransport) writeBatch(st *udpTxState) (int, error) {
	total := len(st.bufs)
	if total == 0 {
		return 0, nil
	}
	sent := 0
	if mmsgArch && t.mmsgOK.Load() {
		n, err := t.sendMMsg(st)
		sent = n
		switch {
		case err == nil:
			t.txPackets.Add(uint64(sent))
			t.txBatches.Add(1)
			return sent, nil
		case errors.Is(err, errMMsgUnsupported):
			t.mmsgOK.Store(false)
		default:
			t.txPackets.Add(uint64(sent))
			return sent, err
		}
	}
	for ; sent < total; sent++ {
		if _, err := t.conn.WriteToUDP(*st.bufs[sent], st.eps[sent]); err != nil {
			t.txPackets.Add(uint64(sent))
			return sent, err
		}
	}
	t.txPackets.Add(uint64(total))
	t.txBatches.Add(1)
	return total, nil
}

// releaseTx returns the batch scratch and its encode buffers to their pools.
func (t *UDPTransport) releaseTx(st *udpTxState) {
	for i, bp := range st.bufs {
		t.encPool.Put(bp)
		st.bufs[i] = nil
	}
	st.bufs = st.bufs[:0]
	for i := range st.eps {
		st.eps[i] = nil
	}
	st.eps = st.eps[:0]
	t.releaseGSO(st)
	t.txPool.Put(st)
}

// Stats returns a snapshot of the socket counters. It is a legacy view over
// the transport_udp_* telemetry instruments: each field is read atomically,
// but the struct is not one consistent cut across counters.
func (t *UDPTransport) Stats() UDPStats {
	return UDPStats{
		RxPackets:   t.rxPackets.Load(),
		RxDropped:   t.rxDropped.Load(),
		RxMalformed: t.rxMalformed.Load(),
		TxPackets:   t.txPackets.Load(),
		TxBatches:   t.txBatches.Load(),
	}
}

// RegisterTelemetry implements telemetry.Registrable: it shares the socket
// counters (the same instrument objects) into r, alongside a lazy gauge for
// the receive-queue depth.
func (t *UDPTransport) RegisterTelemetry(r *telemetry.Registry) {
	r.MustRegister(t.rxPackets, t.rxDropped, t.rxMalformed, t.txPackets, t.txBatches, t.gsoSegments)
	_ = r.Register(telemetry.NewGaugeFunc("transport_rx_queue_depth", func() int64 {
		return int64(len(t.rx))
	}))
}

// Receive implements Transport.
func (t *UDPTransport) Receive() <-chan wire.Datagram { return t.rx }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	return t.conn.Close()
}
