package netsim

import (
	"fmt"
	"net"
	"sync"

	"interedge/internal/wire"
)

// UDPDirectory maps wire addresses to real UDP endpoints so the same node
// code that runs on the in-process fabric can run across processes or
// machines. The directory plays the role of static L3 routing
// configuration; it is not a discovery service.
type UDPDirectory struct {
	mu      sync.RWMutex
	entries map[wire.Addr]*net.UDPAddr
}

// NewUDPDirectory returns an empty directory.
func NewUDPDirectory() *UDPDirectory {
	return &UDPDirectory{entries: make(map[wire.Addr]*net.UDPAddr)}
}

// Register associates a wire address with a UDP endpoint.
func (d *UDPDirectory) Register(addr wire.Addr, ep *net.UDPAddr) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries[addr] = ep
}

// Lookup resolves a wire address to a UDP endpoint.
func (d *UDPDirectory) Lookup(addr wire.Addr) (*net.UDPAddr, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ep, ok := d.entries[addr]
	return ep, ok
}

// UDPTransport carries wire datagrams over a real UDP socket.
type UDPTransport struct {
	addr wire.Addr
	dir  *UDPDirectory
	conn *net.UDPConn
	rx   chan wire.Datagram

	mu     sync.Mutex
	closed bool
}

// NewUDPTransport binds a UDP socket on listen (e.g. "127.0.0.1:0"),
// registers the node in the directory, and starts the receive loop.
func NewUDPTransport(addr wire.Addr, listen string, dir *UDPDirectory) (*UDPTransport, error) {
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("netsim: resolve %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("netsim: listen UDP: %w", err)
	}
	t := &UDPTransport{
		addr: addr,
		dir:  dir,
		conn: conn,
		rx:   make(chan wire.Datagram, 4096),
	}
	dir.Register(addr, conn.LocalAddr().(*net.UDPAddr))
	go t.readLoop()
	return t, nil
}

func (t *UDPTransport) readLoop() {
	buf := make([]byte, wire.MTU+wire.DatagramHeaderSize)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				close(t.rx)
				return
			}
			continue
		}
		var dg wire.Datagram
		if _, err := dg.DecodeFromBytes(buf[:n]); err != nil {
			continue // malformed datagrams are dropped, as at any router
		}
		// Copy out of the reused read buffer.
		dg.Payload = append([]byte(nil), dg.Payload...)
		select {
		case t.rx <- dg:
		default: // queue full: drop
		}
	}
}

// LocalAddr implements Transport.
func (t *UDPTransport) LocalAddr() wire.Addr { return t.addr }

// Send implements Transport.
func (t *UDPTransport) Send(dg wire.Datagram) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	dg.Src = t.addr
	ep, ok := t.dir.Lookup(dg.Dst)
	if !ok {
		return ErrUnknownDestination
	}
	enc, err := dg.Encode()
	if err != nil {
		return err
	}
	_, err = t.conn.WriteToUDP(enc, ep)
	return err
}

// Receive implements Transport.
func (t *UDPTransport) Receive() <-chan wire.Datagram { return t.rx }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	return t.conn.Close()
}
