package lookup

import (
	"bytes"
	"net/netip"
	"testing"

	"interedge/internal/cryptutil"
	"interedge/internal/wire"
)

// FuzzAddrRecordRegistration drives signed address-record registration
// with arbitrary addresses, SN lists, and signature bytes, and checks the
// authentication invariants the directory depends on:
//
//   - an arbitrary signature registers a record only if it actually
//     verifies against the owner key over the canonical message;
//   - a correctly signed registration always succeeds and round-trips
//     through ResolveAddress;
//   - a revocation signed with garbage is rejected and leaves the record
//     resolvable; a correctly signed revocation removes it.
func FuzzAddrRecordRegistration(f *testing.F) {
	owner, err := cryptutil.NewSigningKeypair()
	if err != nil {
		f.Fatal(err)
	}

	seedAddr := wire.MustAddr("fd00::1")
	seedSNs := []wire.Addr{wire.MustAddr("fc00::1")}
	good := SignAddrRecord(owner, seedAddr, seedSNs)
	a16 := seedAddr.As16()
	s16 := seedSNs[0].As16()
	f.Add(a16[:], s16[:], good)      // valid signature
	f.Add(a16[:], s16[:], []byte{})  // empty signature
	f.Add(a16[:], []byte{}, good)    // SN list mismatch vs signed message
	f.Add(a16[:], s16[:], good[:32]) // truncated signature
	mut := append([]byte(nil), good...)
	mut[0] ^= 0x80
	f.Add(a16[:], s16[:], mut) // one-bit corruption

	f.Fuzz(func(t *testing.T, addrRaw, snsRaw, sig []byte) {
		var ab [16]byte
		copy(ab[:], addrRaw)
		addr := netip.AddrFrom16(ab)
		// Up to four SNs, one per 16-byte chunk.
		var sns []wire.Addr
		for i := 0; i+16 <= len(snsRaw) && len(sns) < 4; i += 16 {
			var sb [16]byte
			copy(sb[:], snsRaw[i:i+16])
			sns = append(sns, netip.AddrFrom16(sb))
		}
		svc := New()
		rec := AddrRecord{Addr: addr, Owner: owner.Public, SNs: sns}

		err := svc.RegisterAddress(rec, sig)
		verifies := cryptutil.Verify(owner.Public, addrRegMsg(addr, sns), sig)
		if err == nil && !verifies {
			t.Fatalf("registration accepted a signature that does not verify (addr=%s, %d SNs, %d sig bytes)",
				addr, len(sns), len(sig))
		}
		if err != nil && verifies {
			t.Fatalf("registration rejected a valid signature: %v", err)
		}
		if err != nil {
			if _, rerr := svc.ResolveAddress(addr); rerr == nil {
				t.Fatal("rejected registration is still resolvable")
			}
		}

		signed := SignAddrRecord(owner, addr, sns)
		if err := svc.RegisterAddress(rec, signed); err != nil {
			t.Fatalf("valid registration failed: %v", err)
		}
		got, err := svc.ResolveAddress(addr)
		if err != nil {
			t.Fatalf("resolve after registration: %v", err)
		}
		if got.Addr != addr || !got.Owner.Equal(rec.Owner) || len(got.SNs) != len(sns) {
			t.Fatalf("resolve round trip mismatch: got %+v want %+v", got, rec)
		}
		for i := range sns {
			if got.SNs[i] != sns[i] {
				t.Fatalf("resolve round trip SN %d mismatch: %s != %s", i, got.SNs[i], sns[i])
			}
		}

		// The fuzzed bytes must not revoke unless they happen to verify as
		// a revocation (possible only if the fuzzer forged one, which it
		// cannot without the private key — but check the condition, not
		// the assumption).
		revErr := svc.UnregisterAddress(addr, sig)
		revVerifies := cryptutil.Verify(owner.Public, addrRevokeMsg(addr), sig)
		if revErr == nil && !revVerifies {
			t.Fatal("revocation accepted a signature that does not verify")
		}
		if !revVerifies {
			if _, err := svc.ResolveAddress(addr); err != nil {
				t.Fatalf("record vanished after rejected revocation: %v", err)
			}
		}
		if err := svc.UnregisterAddress(addr, SignAddrRevocation(owner, addr)); err != nil && !revVerifies {
			t.Fatalf("valid revocation failed: %v", err)
		}
		if _, err := svc.ResolveAddress(addr); err == nil {
			t.Fatal("record still resolvable after revocation")
		}
		if !bytes.Equal(sig, signed) && len(sig) > 0 && verifies {
			// Distinct byte strings verifying over the same message is
			// fine for ed25519 (signatures are not unique), just rare
			// enough to note in the corpus.
			t.Logf("alternate valid signature of %d bytes", len(sig))
		}
	})
}
