package lookup

import (
	"testing"

	"interedge/internal/cryptutil"
	"interedge/internal/wire"
)

func signer(t *testing.T) cryptutil.SigningKeypair {
	t.Helper()
	kp, err := cryptutil.NewSigningKeypair()
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func TestRegisterAndResolveAddress(t *testing.T) {
	s := New()
	owner := signer(t)
	addr := wire.MustAddr("fd00::1")
	sns := []wire.Addr{wire.MustAddr("fd00::100"), wire.MustAddr("fd00::200")}
	rec := AddrRecord{Addr: addr, Owner: owner.Public, SNs: sns}
	if err := s.RegisterAddress(rec, SignAddrRecord(owner, addr, sns)); err != nil {
		t.Fatal(err)
	}
	got, err := s.ResolveAddress(addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.SNs) != 2 || got.SNs[0] != sns[0] {
		t.Fatalf("resolved %+v", got)
	}
	if _, err := s.ResolveAddress(wire.MustAddr("fd00::9")); err != ErrUnknownAddress {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterAddressBadSignature(t *testing.T) {
	s := New()
	owner := signer(t)
	other := signer(t)
	addr := wire.MustAddr("fd00::1")
	rec := AddrRecord{Addr: addr, Owner: owner.Public}
	if err := s.RegisterAddress(rec, SignAddrRecord(other, addr, nil)); err != ErrBadSignature {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestAddressHijackPrevented(t *testing.T) {
	s := New()
	owner, attacker := signer(t), signer(t)
	addr := wire.MustAddr("fd00::1")
	if err := s.RegisterAddress(AddrRecord{Addr: addr, Owner: owner.Public}, SignAddrRecord(owner, addr, nil)); err != nil {
		t.Fatal(err)
	}
	err := s.RegisterAddress(AddrRecord{Addr: addr, Owner: attacker.Public}, SignAddrRecord(attacker, addr, nil))
	if err == nil {
		t.Fatal("address takeover by different key succeeded")
	}
	// The owner can update its own record (e.g. new SNs).
	newSNs := []wire.Addr{wire.MustAddr("fd00::300")}
	if err := s.RegisterAddress(AddrRecord{Addr: addr, Owner: owner.Public, SNs: newSNs}, SignAddrRecord(owner, addr, newSNs)); err != nil {
		t.Fatal(err)
	}
}

func TestGroupLifecycle(t *testing.T) {
	s := New()
	owner := signer(t)
	if err := s.CreateGroup("news", owner.Public); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateGroup("news", owner.Public); err == nil {
		t.Fatal("duplicate group creation succeeded")
	}
	pub, err := s.GroupOwner("news")
	if err != nil || !pub.Equal(owner.Public) {
		t.Fatalf("owner %v err %v", pub, err)
	}
	if _, err := s.GroupOwner("ghost"); err != ErrUnknownGroup {
		t.Fatalf("err = %v", err)
	}
}

func TestClosedGroupRequiresAuthorization(t *testing.T) {
	s := New()
	owner, member, stranger := signer(t), signer(t), signer(t)
	if err := s.CreateGroup("vip", owner.Public); err != nil {
		t.Fatal(err)
	}
	auth := SignJoinAuthorization(owner, "vip", member.Public)
	if err := s.ValidateJoin("vip", member.Public, auth); err != nil {
		t.Fatalf("authorized join rejected: %v", err)
	}
	if err := s.ValidateJoin("vip", stranger.Public, auth); err != ErrNotAuthorized {
		t.Fatalf("stranger with foreign auth: err = %v", err)
	}
	if err := s.ValidateJoin("vip", member.Public, nil); err != ErrNotAuthorized {
		t.Fatalf("missing auth: err = %v", err)
	}
}

func TestOpenGroupAdmitsAll(t *testing.T) {
	s := New()
	owner, member := signer(t), signer(t)
	if err := s.CreateGroup("pub", owner.Public); err != nil {
		t.Fatal(err)
	}
	// Before the open statement, joins need auth.
	if err := s.ValidateJoin("pub", member.Public, nil); err != ErrNotAuthorized {
		t.Fatalf("err = %v", err)
	}
	// A forged open statement is rejected.
	forger := signer(t)
	if err := s.PostOpenStatement("pub", SignOpenStatement(forger, "pub")); err != ErrBadSignature {
		t.Fatalf("forged open statement err = %v", err)
	}
	if err := s.PostOpenStatement("pub", SignOpenStatement(owner, "pub")); err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateJoin("pub", member.Public, nil); err != nil {
		t.Fatalf("open join rejected: %v", err)
	}
}

func TestMemberEdomainTracking(t *testing.T) {
	s := New()
	owner := signer(t)
	if err := s.CreateGroup("g", owner.Public); err != nil {
		t.Fatal(err)
	}
	if err := s.JoinGroupEdomain("g", "ed-a"); err != nil {
		t.Fatal(err)
	}
	if err := s.JoinGroupEdomain("g", "ed-b"); err != nil {
		t.Fatal(err)
	}
	// Idempotent join.
	if err := s.JoinGroupEdomain("g", "ed-a"); err != nil {
		t.Fatal(err)
	}
	members, err := s.MemberEdomains("g")
	if err != nil || len(members) != 2 {
		t.Fatalf("members %v err %v", members, err)
	}
	if err := s.LeaveGroupEdomain("g", "ed-a"); err != nil {
		t.Fatal(err)
	}
	members, _ = s.MemberEdomains("g")
	if len(members) != 1 || members[0] != "ed-b" {
		t.Fatalf("members %v", members)
	}
}

func TestSenderRegistrationAndWatch(t *testing.T) {
	s := New()
	owner := signer(t)
	if err := s.CreateGroup("g", owner.Public); err != nil {
		t.Fatal(err)
	}
	if err := s.JoinGroupEdomain("g", "ed-a"); err != nil {
		t.Fatal(err)
	}
	members, events, cancel, err := s.RegisterSenderEdomain("g", "ed-s")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if len(members) != 1 || members[0] != "ed-a" {
		t.Fatalf("initial members %v", members)
	}
	if err := s.JoinGroupEdomain("g", "ed-b"); err != nil {
		t.Fatal(err)
	}
	ev := <-events
	if ev.Edomain != "ed-b" || !ev.Joined {
		t.Fatalf("event %+v", ev)
	}
	if err := s.LeaveGroupEdomain("g", "ed-b"); err != nil {
		t.Fatal(err)
	}
	ev = <-events
	if ev.Edomain != "ed-b" || ev.Joined {
		t.Fatalf("event %+v", ev)
	}
	senders, err := s.SenderEdomains("g")
	if err != nil || len(senders) != 1 || senders[0] != "ed-s" {
		t.Fatalf("senders %v err %v", senders, err)
	}
	s.UnregisterSenderEdomain("g", "ed-s")
	senders, _ = s.SenderEdomains("g")
	if len(senders) != 0 {
		t.Fatalf("senders after unregister %v", senders)
	}
}

func TestWatchCancelClosesChannel(t *testing.T) {
	s := New()
	owner := signer(t)
	if err := s.CreateGroup("g", owner.Public); err != nil {
		t.Fatal(err)
	}
	_, events, cancel, err := s.RegisterSenderEdomain("g", "ed-s")
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	cancel() // double cancel safe
	if _, ok := <-events; ok {
		t.Fatal("events channel not closed after cancel")
	}
	// Further membership changes don't panic.
	if err := s.JoinGroupEdomain("g", "ed-x"); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownGroupOperations(t *testing.T) {
	s := New()
	if err := s.JoinGroupEdomain("nope", "e"); err != ErrUnknownGroup {
		t.Fatalf("err = %v", err)
	}
	if err := s.LeaveGroupEdomain("nope", "e"); err != ErrUnknownGroup {
		t.Fatalf("err = %v", err)
	}
	if _, _, _, err := s.RegisterSenderEdomain("nope", "e"); err != ErrUnknownGroup {
		t.Fatalf("err = %v", err)
	}
	if err := s.ValidateJoin("nope", nil, nil); err != ErrUnknownGroup {
		t.Fatalf("err = %v", err)
	}
	if err := s.PostOpenStatement("nope", nil); err != ErrUnknownGroup {
		t.Fatalf("err = %v", err)
	}
}
