// Package rescache is the node-side tier of the resolution cache
// hierarchy (DESIGN.md "Resolution cache hierarchy"): a lease-based
// cache over a lookup resolver with negative caching and
// invalidation-on-watch, so the SN slow path answers resolutions from
// local memory and a cold resolution becomes an asynchronous fill — the
// packet is parked and re-injected when the record arrives, never
// blocking a dispatcher on the directory.
//
// Tiers chain through the Backend (an SN-tier cache fills from its
// edomain-tier cache, which fills from the global service) while
// invalidations fan out from the root: every tier watches the global
// service directly, so each applies record updates in publish order and
// no tier can refill a sibling with state older than an invalidation it
// already processed.
package rescache

import (
	"sync"
	"sync/atomic"
	"time"

	"interedge/internal/clock"
	"interedge/internal/lookup"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// Resolver is the read interface a cache consumes and provides. Both
// *lookup.Service and *Cache implement it, which is what lets tiers
// stack.
type Resolver interface {
	ResolveAddress(addr wire.Addr) (lookup.AddrRecord, error)
}

// Watchable is an event source for invalidation: *lookup.Service
// implements it.
type Watchable interface {
	WatchAddresses(buffer int) (<-chan lookup.AddrEvent, func())
}

// Config parameterizes a cache tier.
type Config struct {
	// Backend serves cache fills. Required. If it also implements
	// Watchable and Watch is nil, it doubles as the event source.
	Backend Resolver
	// Watch, when set, overrides the invalidation event source. Cache
	// tiers below the top set this to the global service so every tier
	// sees record changes in publish order.
	Watch Watchable
	// Clock drives lease expiry and fan-out lag measurement. Defaults
	// to the real clock.
	Clock clock.Clock
	// Lease bounds how long a positive entry may be served without
	// revalidation (staleness ceiling when watch events are lost).
	// Defaults to 30s.
	Lease time.Duration
	// NegativeLease bounds how long an unknown-address answer is
	// cached. Defaults to 5s.
	NegativeLease time.Duration
	// WatchBuffer sizes the watch channel. Defaults to 256.
	WatchBuffer int
	// FillQueue bounds the callbacks parked on one in-flight fill —
	// the resolution analogue of the SN's bounded per-destination
	// requeue. Defaults to 256.
	FillQueue int
	// MaxFills bounds the cache's concurrent fill goroutines across
	// distinct addresses. Defaults to 8. Cold addresses beyond the bound
	// queue FIFO and fill as slots free up: a fleet-wide cold sweep (10^5
	// flows resolving for the first time) costs O(MaxFills) goroutines,
	// not O(addresses), at the price of fill latency under the storm.
	MaxFills int
	// OnEvent, when set, observes every watch event after the cache
	// has applied it (e.g. to invalidate decision-cache rules for the
	// address). Called from the watch goroutine.
	OnEvent func(lookup.AddrEvent)
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.Lease <= 0 {
		c.Lease = 30 * time.Second
	}
	if c.NegativeLease <= 0 {
		c.NegativeLease = 5 * time.Second
	}
	if c.WatchBuffer <= 0 {
		c.WatchBuffer = 256
	}
	if c.FillQueue <= 0 {
		c.FillQueue = 256
	}
	if c.MaxFills <= 0 {
		c.MaxFills = 8
	}
	return c
}

// entry is one immutable cache entry; replaced wholesale on update. The
// map stores *entry, never entry: CompareAndDelete in the lazy-expiry
// path compares values with ==, and pointer identity is both comparable
// (an AddrRecord's slice fields are not) and exactly the intended
// semantics — remove this exact entry, not one that happens to look
// alike.
type entry struct {
	rec      lookup.AddrRecord
	negative bool
	expires  time.Time
}

// fill is one in-flight backend resolution with its parked callbacks.
type fill struct {
	cbs []func(lookup.AddrRecord, error)
	// superseded is set when a watch event for the address arrives
	// while the fill is in flight: the fetched record may predate the
	// event, so it must not be cached over fresher state.
	superseded bool
}

// Cache is one tier of the resolution cache hierarchy. Reads
// (ResolveCached) are lock-free and allocation-free; fills and watch
// processing serialize behind a mutex.
type Cache struct {
	cfg Config
	clk clock.Clock

	// entries maps wire.Addr -> entry. Swapped wholesale on resync
	// flushes; readers load the pointer once per lookup.
	entries atomic.Pointer[sync.Map]

	mu       sync.Mutex
	fills    map[wire.Addr]*fill
	fillPend []wire.Addr // cold addresses waiting for a fill slot
	closed   bool

	// fillSlots is the fill-concurrency semaphore (cap MaxFills): a
	// worker holds a slot from spawn until the pending queue drains.
	fillSlots chan struct{}

	watchCancel func()
	watchDone   chan struct{}

	hits           *telemetry.StripedCounter
	misses         *telemetry.StripedCounter
	negHits        *telemetry.StripedCounter
	leaseExpiries  *telemetry.Counter
	invalidations  *telemetry.Counter
	resyncFlushes  *telemetry.Counter
	fillsOK        *telemetry.Counter
	fillErrors     *telemetry.Counter
	fillsDiscarded *telemetry.Counter
	waitersDropped *telemetry.Counter
	fanoutLag      *telemetry.Histogram
	instruments    []telemetry.Instrument
}

// New creates a cache tier and, when an event source is available,
// starts its invalidation watch. Close releases the watch.
func New(cfg Config) *Cache {
	if cfg.Backend == nil {
		panic("rescache: Config.Backend is required")
	}
	cfg = cfg.withDefaults()
	c := &Cache{
		cfg:       cfg,
		clk:       cfg.Clock,
		fills:     make(map[wire.Addr]*fill),
		fillSlots: make(chan struct{}, cfg.MaxFills),

		hits:           telemetry.NewStripedCounter("lookup_cache_hits_total", 64),
		misses:         telemetry.NewStripedCounter("lookup_cache_misses_total", 64),
		negHits:        telemetry.NewStripedCounter("lookup_cache_negative_hits_total", 64),
		leaseExpiries:  telemetry.NewCounter("lookup_cache_lease_expiries_total"),
		invalidations:  telemetry.NewCounter("lookup_cache_invalidations_total"),
		resyncFlushes:  telemetry.NewCounter("lookup_cache_resync_flushes_total"),
		fillsOK:        telemetry.NewCounter("lookup_cache_fills_total"),
		fillErrors:     telemetry.NewCounter("lookup_cache_fill_errors_total"),
		fillsDiscarded: telemetry.NewCounter("lookup_cache_fills_discarded_total"),
		waitersDropped: telemetry.NewCounter("lookup_cache_waiters_dropped_total"),
		fanoutLag:      telemetry.NewHistogram("lookup_watch_fanout_lag_ns", telemetry.LatencyBuckets),
	}
	c.entries.Store(&sync.Map{})
	c.instruments = []telemetry.Instrument{
		c.hits, c.misses, c.negHits, c.leaseExpiries, c.invalidations,
		c.resyncFlushes, c.fillsOK, c.fillErrors, c.fillsDiscarded,
		c.waitersDropped, c.fanoutLag,
		telemetry.NewGaugeFunc("lookup_cache_entries", func() int64 {
			var n int64
			c.entries.Load().Range(func(_, _ any) bool { n++; return true })
			return n
		}),
	}

	watch := cfg.Watch
	if watch == nil {
		if w, ok := cfg.Backend.(Watchable); ok {
			watch = w
		}
	}
	if watch != nil {
		ch, cancel := watch.WatchAddresses(cfg.WatchBuffer)
		c.watchCancel = cancel
		c.watchDone = make(chan struct{})
		go c.watchLoop(ch)
	}
	return c
}

// RegisterTelemetry exposes the cache's instruments through a registry
// (telemetry.Registrable).
func (c *Cache) RegisterTelemetry(r *telemetry.Registry) {
	r.MustRegister(c.instruments...)
}

// Close stops the invalidation watch. In-flight fills complete and
// still invoke their callbacks.
func (c *Cache) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	if c.watchCancel != nil {
		c.watchCancel()
		<-c.watchDone
	}
}

func stripeOf(a wire.Addr) int {
	b := a.As16()
	return int(b[15])
}

// ResolveCached answers from the cache only: (record, cached, negative).
// cached && !negative is a positive hit; cached && negative means the
// address is known-absent (within the negative lease); !cached means
// the caller must fill (Resolve or ResolveAsync). Lock-free,
// allocation-free.
func (c *Cache) ResolveCached(addr wire.Addr) (lookup.AddrRecord, bool, bool) {
	m := c.entries.Load()
	v, ok := m.Load(addr)
	if !ok {
		c.misses.Inc(stripeOf(addr))
		return lookup.AddrRecord{}, false, false
	}
	e := v.(*entry)
	if c.clk.Now().After(e.expires) {
		// Lazy expiry; only this exact entry is removed, so a
		// concurrent refresh cannot be lost.
		if m.CompareAndDelete(addr, v) {
			c.leaseExpiries.Inc()
		}
		c.misses.Inc(stripeOf(addr))
		return lookup.AddrRecord{}, false, false
	}
	if e.negative {
		c.negHits.Inc(stripeOf(addr))
		return lookup.AddrRecord{}, true, true
	}
	c.hits.Inc(stripeOf(addr))
	return e.rec, true, false
}

// ResolveAddress resolves through the cache, filling synchronously on a
// miss. This is the blocking form control-plane callers and upper cache
// tiers use; packet paths use ResolveCached + ResolveAsync.
func (c *Cache) ResolveAddress(addr wire.Addr) (lookup.AddrRecord, error) {
	if rec, cached, negative := c.ResolveCached(addr); cached {
		if negative {
			return lookup.AddrRecord{}, lookup.ErrUnknownAddress
		}
		return rec, nil
	}
	type result struct {
		rec lookup.AddrRecord
		err error
	}
	done := make(chan result, 1)
	if !c.ResolveAsync(addr, func(rec lookup.AddrRecord, err error) {
		done <- result{rec, err}
	}) {
		// Fill queue saturated: resolve directly without caching.
		return c.cfg.Backend.ResolveAddress(addr)
	}
	r := <-done
	return r.rec, r.err
}

// ResolveAsync arranges for addr to be resolved without blocking: if a
// fill is already in flight the callback is parked on it (bounded by
// FillQueue — the resolution analogue of the SN's bounded requeue);
// otherwise a fill goroutine is started. The callback runs exactly once,
// from the fill goroutine, after the result has been cached. Returns
// false — and never runs the callback — when the fill queue for the
// address is saturated.
func (c *Cache) ResolveAsync(addr wire.Addr, cb func(lookup.AddrRecord, error)) bool {
	c.mu.Lock()
	if f, ok := c.fills[addr]; ok {
		if len(f.cbs) >= c.cfg.FillQueue {
			c.mu.Unlock()
			c.waitersDropped.Inc()
			return false
		}
		f.cbs = append(f.cbs, cb)
		c.mu.Unlock()
		return true
	}
	f := &fill{cbs: []func(lookup.AddrRecord, error){cb}}
	c.fills[addr] = f
	select {
	case c.fillSlots <- struct{}{}:
		c.mu.Unlock()
		go c.fillWorker(addr, f)
	default:
		// Every slot busy: park the address; a running worker picks it
		// up before releasing its slot.
		c.fillPend = append(c.fillPend, addr)
		c.mu.Unlock()
	}
	return true
}

// fillWorker runs fills until the pending queue is empty, then releases
// its slot. Only runFill deletes a fills entry and pended addresses have
// not run yet, so every pended address still has its fill registered.
func (c *Cache) fillWorker(addr wire.Addr, f *fill) {
	for {
		c.runFill(addr, f)
		c.mu.Lock()
		var next *fill
		for next == nil && len(c.fillPend) > 0 {
			addr = c.fillPend[0]
			c.fillPend = c.fillPend[1:]
			next = c.fills[addr]
		}
		if next == nil {
			c.fillPend = nil
			// Release the slot under the mutex: ResolveAsync parks
			// addresses under the same mutex when every slot is busy, so
			// a park and this release cannot interleave into a stranded
			// queue entry. The receive cannot block — it takes back this
			// worker's own token.
			<-c.fillSlots
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		f = next
	}
}

// runFill performs one backend resolution, caches the outcome (positive
// or negative lease), and drains the parked callbacks. The superseded
// check and the store form one critical section with the watch loop's
// entry writes, so a fill result can never overwrite fresher state an
// event already installed (or land in a map a resync just flushed).
func (c *Cache) runFill(addr wire.Addr, f *fill) {
	rec, err := c.cfg.Backend.ResolveAddress(addr)
	now := c.clk.Now()

	c.mu.Lock()
	delete(c.fills, addr)
	cbs := f.cbs
	switch {
	case f.superseded:
		// A watch event for this address (or a resync) landed while
		// the fill was in flight; the fetched record may predate it.
		// Discard rather than cache stale state — re-injected packets
		// simply miss again and refill against the fresh backend.
		c.fillsDiscarded.Inc()
	case err == nil:
		c.entries.Load().Store(addr, &entry{rec: rec, expires: now.Add(c.cfg.Lease)})
		c.fillsOK.Inc()
	case err == lookup.ErrUnknownAddress:
		c.entries.Load().Store(addr, &entry{negative: true, expires: now.Add(c.cfg.NegativeLease)})
		c.fillErrors.Inc()
	default:
		// Transient backend failure: cache nothing.
		c.fillErrors.Inc()
	}
	c.mu.Unlock()

	for _, cb := range cbs {
		cb(rec, err)
	}
}

// watchLoop applies invalidation events from the root of the hierarchy.
func (c *Cache) watchLoop(ch <-chan lookup.AddrEvent) {
	defer close(c.watchDone)
	for ev := range ch {
		c.handleEvent(ev)
	}
}

func (c *Cache) handleEvent(ev lookup.AddrEvent) {
	if !ev.At.IsZero() {
		if lag := c.clk.Now().Sub(ev.At); lag >= 0 {
			c.fanoutLag.Observe(uint64(lag))
		}
	}
	if ev.Resync {
		// The watch overflowed upstream: arbitrary events were lost,
		// so every cached entry and in-flight fill is suspect.
		c.mu.Lock()
		for _, f := range c.fills {
			f.superseded = true
		}
		c.entries.Store(&sync.Map{})
		c.mu.Unlock()
		c.resyncFlushes.Inc()
	} else {
		c.mu.Lock()
		if f, ok := c.fills[ev.Addr]; ok {
			f.superseded = true
		}
		m := c.entries.Load()
		switch {
		case ev.Revoked:
			if _, ok := m.LoadAndDelete(ev.Addr); ok {
				c.invalidations.Inc()
			}
		default:
			// Update in place — but only for addresses someone here
			// actually asked for; events must not grow the cache.
			if _, ok := m.Load(ev.Addr); ok {
				m.Store(ev.Addr, &entry{rec: ev.Rec, expires: c.clk.Now().Add(c.cfg.Lease)})
				c.invalidations.Inc()
			}
		}
		c.mu.Unlock()
	}
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(ev)
	}
}
