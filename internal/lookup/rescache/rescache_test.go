package rescache

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"interedge/internal/clock"
	"interedge/internal/cryptutil"
	"interedge/internal/lookup"
	"interedge/internal/wire"
)

func signer(t *testing.T) cryptutil.SigningKeypair {
	t.Helper()
	kp, err := cryptutil.NewSigningKeypair()
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func testAddr(i int) wire.Addr {
	var b [16]byte
	b[0] = 0xfd
	b[14] = byte(i >> 8)
	b[15] = byte(i)
	return netip.AddrFrom16(b)
}

// genSN encodes a generation number as an SN address (fe00::gen) so a
// resolved record carries which registration produced it.
func genSN(gen int64) wire.Addr {
	var b [16]byte
	b[0] = 0xfe
	for i := 0; i < 8; i++ {
		b[15-i] = byte(gen >> (8 * i))
	}
	return netip.AddrFrom16(b)
}

func genOf(rec lookup.AddrRecord) int64 {
	b := rec.SNs[1].As16()
	var g int64
	for i := 0; i < 8; i++ {
		g |= int64(b[15-i]) << (8 * i)
	}
	return g
}

func register(t *testing.T, svc *lookup.Service, kp cryptutil.SigningKeypair, addr wire.Addr, gen int64) {
	t.Helper()
	sns := []wire.Addr{wire.MustAddr("fc00::1"), genSN(gen)}
	rec := lookup.AddrRecord{Addr: addr, Owner: kp.Public, SNs: sns}
	if err := svc.RegisterAddress(rec, lookup.SignAddrRecord(kp, addr, sns)); err != nil {
		t.Fatal(err)
	}
}

func revoke(t *testing.T, svc *lookup.Service, kp cryptutil.SigningKeypair, addr wire.Addr) {
	t.Helper()
	if err := svc.UnregisterAddress(addr, lookup.SignAddrRevocation(kp, addr)); err != nil {
		t.Fatal(err)
	}
}

// waitUntil polls cond with a real-time deadline; watch fan-out is
// asynchronous even under a manual clock.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(500 * time.Microsecond)
	}
}

func TestCacheHitMissNegative(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	svc := lookup.New(lookup.WithClock(clk))
	kp := signer(t)
	addr := testAddr(1)
	register(t, svc, kp, addr, 1)

	c := New(Config{Backend: svc, Clock: clk})
	defer c.Close()

	if _, cached, _ := c.ResolveCached(addr); cached {
		t.Fatal("cold cache reports a hit")
	}
	rec, err := c.ResolveAddress(addr)
	if err != nil {
		t.Fatal(err)
	}
	if genOf(rec) != 1 {
		t.Fatalf("resolved gen %d, want 1", genOf(rec))
	}
	rec, cached, negative := c.ResolveCached(addr)
	if !cached || negative || genOf(rec) != 1 {
		t.Fatalf("warm cache: cached=%v negative=%v", cached, negative)
	}
	if got := c.hits.Load(); got == 0 {
		t.Fatal("hit not counted")
	}

	// Unknown address: first resolve errors and installs a negative
	// entry, the second is a negative hit without touching the backend.
	ghost := testAddr(999)
	if _, err := c.ResolveAddress(ghost); err != lookup.ErrUnknownAddress {
		t.Fatalf("ghost resolve err = %v", err)
	}
	_, cached, negative = c.ResolveCached(ghost)
	if !cached || !negative {
		t.Fatalf("ghost: cached=%v negative=%v, want negative hit", cached, negative)
	}
	if got := c.negHits.Load(); got == 0 {
		t.Fatal("negative hit not counted")
	}
	// The negative lease expires sooner than the positive one.
	clk.Advance(6 * time.Second)
	if _, cached, _ := c.ResolveCached(ghost); cached {
		t.Fatal("negative entry survived its lease")
	}
	if _, cached, _ := c.ResolveCached(addr); !cached {
		t.Fatal("positive entry lost before its lease")
	}
}

func TestLeaseExpiry(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	svc := lookup.New(lookup.WithClock(clk))
	kp := signer(t)
	addr := testAddr(2)
	register(t, svc, kp, addr, 1)

	c := New(Config{Backend: svc, Clock: clk, Lease: 10 * time.Second})
	defer c.Close()
	if _, err := c.ResolveAddress(addr); err != nil {
		t.Fatal(err)
	}
	clk.Advance(11 * time.Second)
	if _, cached, _ := c.ResolveCached(addr); cached {
		t.Fatal("entry served past its lease")
	}
	if got := c.leaseExpiries.Load(); got != 1 {
		t.Fatalf("lease expiries = %d, want 1", got)
	}
	// The expired entry refills on demand.
	if _, err := c.ResolveAddress(addr); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidationOnWatch(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	svc := lookup.New(lookup.WithClock(clk))
	kp := signer(t)
	addr := testAddr(3)
	other := testAddr(4)
	register(t, svc, kp, addr, 1)
	register(t, svc, kp, other, 1)

	c := New(Config{Backend: svc, Clock: clk})
	defer c.Close()
	if _, err := c.ResolveAddress(addr); err != nil {
		t.Fatal(err)
	}

	// A re-registration refreshes the cached entry in place.
	register(t, svc, kp, addr, 2)
	waitUntil(t, func() bool {
		rec, cached, _ := c.ResolveCached(addr)
		return cached && genOf(rec) == 2
	})
	// An event for an address never resolved here must not grow the
	// cache.
	if _, cached, _ := c.ResolveCached(other); cached {
		t.Fatal("watch event populated an unrequested address")
	}

	// A revocation drops the entry.
	revoke(t, svc, kp, addr)
	waitUntil(t, func() bool {
		_, cached, _ := c.ResolveCached(addr)
		return !cached
	})
	if got := c.invalidations.Load(); got < 2 {
		t.Fatalf("invalidations = %d, want >= 2", got)
	}
}

func TestResyncFlushesEverything(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	svc := lookup.New(lookup.WithClock(clk))
	kp := signer(t)
	addr := testAddr(5)
	register(t, svc, kp, addr, 1)

	c := New(Config{Backend: svc, Clock: clk})
	defer c.Close()
	if _, err := c.ResolveAddress(addr); err != nil {
		t.Fatal(err)
	}
	// RestoreRecords publishes a Resync: the watch overflowed (or state
	// was bulk-replaced) so every cached entry is suspect.
	svc.RestoreRecords(nil)
	waitUntil(t, func() bool {
		_, cached, _ := c.ResolveCached(addr)
		return !cached
	})
	if got := c.resyncFlushes.Load(); got == 0 {
		t.Fatal("resync flush not counted")
	}
}

// blockingBackend parks every ResolveAddress until released, so tests
// can hold a fill in flight while events land.
type blockingBackend struct {
	inner   Resolver
	release chan struct{}
	waiting chan struct{} // one token per parked resolve
}

func (b *blockingBackend) ResolveAddress(addr wire.Addr) (lookup.AddrRecord, error) {
	b.waiting <- struct{}{}
	<-b.release
	return b.inner.ResolveAddress(addr)
}

// TestSupersededFillDiscarded: a revocation that lands while a fill is
// in flight must win — the fill's result is stale the moment it was
// fetched, and caching it would resurrect a revoked record.
func TestSupersededFillDiscarded(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	svc := lookup.New(lookup.WithClock(clk))
	kp := signer(t)
	addr := testAddr(6)
	register(t, svc, kp, addr, 1)

	bb := &blockingBackend{inner: svc, release: make(chan struct{}), waiting: make(chan struct{}, 4)}
	var applied atomic.Bool
	c := New(Config{Backend: bb, Watch: svc, Clock: clk,
		OnEvent: func(ev lookup.AddrEvent) {
			if ev.Revoked {
				applied.Store(true)
			}
		}})
	defer c.Close()

	done := make(chan error, 1)
	if !c.ResolveAsync(addr, func(_ lookup.AddrRecord, err error) { done <- err }) {
		t.Fatal("ResolveAsync refused a fresh fill")
	}
	<-bb.waiting // fill is parked inside the backend

	// Revoke while the fill is in flight; OnEvent fires after the cache
	// has marked the fill superseded under its mutex.
	revoke(t, svc, kp, addr)
	waitUntil(t, func() bool { return applied.Load() })
	close(bb.release)
	<-done

	if _, cached, _ := c.ResolveCached(addr); cached {
		t.Fatal("superseded fill result was cached")
	}
	if got := c.fillsDiscarded.Load(); got != 1 {
		t.Fatalf("fills discarded = %d, want 1", got)
	}
}

// TestFillQueueBound: callbacks parked on one in-flight fill are bounded
// by FillQueue; excess ResolveAsync calls are refused, never queued
// unboundedly and never silently dropped.
func TestFillQueueBound(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	svc := lookup.New(lookup.WithClock(clk))
	kp := signer(t)
	addr := testAddr(7)
	register(t, svc, kp, addr, 1)

	bb := &blockingBackend{inner: svc, release: make(chan struct{}), waiting: make(chan struct{}, 4)}
	c := New(Config{Backend: bb, Watch: svc, Clock: clk, FillQueue: 2})
	defer c.Close()

	var delivered atomic.Int64
	cb := func(lookup.AddrRecord, error) { delivered.Add(1) }
	if !c.ResolveAsync(addr, cb) {
		t.Fatal("first ResolveAsync refused")
	}
	<-bb.waiting
	if !c.ResolveAsync(addr, cb) {
		t.Fatal("second ResolveAsync refused under FillQueue=2")
	}
	if c.ResolveAsync(addr, cb) {
		t.Fatal("third ResolveAsync accepted past the bound")
	}
	if got := c.waitersDropped.Load(); got != 1 {
		t.Fatalf("waiters dropped = %d, want 1", got)
	}
	close(bb.release)
	waitUntil(t, func() bool { return delivered.Load() == 2 })
}

// TestConcurrentResolutionProperty is the seeded interleaving suite:
// lease expiry, invalidation-on-watch, and negative fills race against
// concurrent readers, and the cache must never serve a record that was
// revoked before the read began, never serve a generation older than
// one the watch already applied, and never invent a record for an
// address that was never registered.
//
// Revocations are terminal (a revoked address is never re-registered)
// so "revoked flag observed, then a positive resolve" is a true
// violation, not an interleaving with a legitimate refill. The reader
// loads the revoked/generation atomics BEFORE resolving; OnEvent sets
// them AFTER the cache applied the event under its mutex, so the
// happens-before chain makes the assertion sound.
func TestConcurrentResolutionProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runResolutionProperty(t, seed)
		})
	}
}

func runResolutionProperty(t *testing.T, seed int64) {
	const (
		liveAddrs    = 16
		phantomAddrs = 4
		readers      = 4
		steps        = 400
	)
	clk := clock.NewManual(time.Unix(0, 0))
	svc := lookup.New(lookup.WithClock(clk))
	kp := signer(t)

	addrs := make([]wire.Addr, liveAddrs)
	index := make(map[wire.Addr]int, liveAddrs)
	gens := make([]int64, liveAddrs)
	for i := range addrs {
		addrs[i] = testAddr(100 + i)
		index[addrs[i]] = i
		gens[i] = 1
		register(t, svc, kp, addrs[i], 1)
	}
	phantoms := make([]wire.Addr, phantomAddrs)
	for i := range phantoms {
		phantoms[i] = testAddr(900 + i)
	}

	// revoked[i] and genFloor[i] are set from OnEvent, which fires after
	// the cache applied the event; readers load them before resolving.
	var revoked [liveAddrs]atomic.Bool
	var genFloor [liveAddrs]atomic.Int64
	c := New(Config{
		Backend:     svc,
		Clock:       clk,
		Lease:       5 * time.Second,
		WatchBuffer: 1024,
		OnEvent: func(ev lookup.AddrEvent) {
			if ev.Resync {
				return
			}
			i, ok := index[ev.Addr]
			if !ok {
				return
			}
			if ev.Revoked {
				revoked[i].Store(true)
				return
			}
			g := genOf(ev.Rec)
			for {
				cur := genFloor[i].Load()
				if g <= cur || genFloor[i].CompareAndSwap(cur, g) {
					break
				}
			}
		},
	})
	defer c.Close()

	var stop atomic.Bool
	var violation atomic.Pointer[string]
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		violation.CompareAndSwap(nil, &msg)
		stop.Store(true)
	}

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(r)))
			for !stop.Load() {
				if rng.Intn(8) == 0 {
					// Phantoms must always come back unknown — whether
					// answered by the negative cache or the backend.
					p := phantoms[rng.Intn(len(phantoms))]
					if rec, cached, negative := c.ResolveCached(p); cached && !negative {
						fail("phantom %s resolved to %+v", p, rec)
						return
					}
					if _, err := c.ResolveAddress(p); err != lookup.ErrUnknownAddress {
						fail("phantom %s resolve err = %v", p, err)
						return
					}
					continue
				}
				i := rng.Intn(liveAddrs)
				// Load the flags BEFORE resolving: anything the cache
				// serves afterwards must be at least this fresh.
				wasRevoked := revoked[i].Load()
				floor := genFloor[i].Load()
				rec, cached, negative := c.ResolveCached(addrs[i])
				if cached && !negative {
					if wasRevoked {
						fail("addr %s served after revocation (gen %d)", addrs[i], genOf(rec))
						return
					}
					if g := genOf(rec); g < floor {
						fail("addr %s served gen %d below floor %d", addrs[i], g, floor)
						return
					}
				}
				if !cached && !wasRevoked && rng.Intn(4) == 0 {
					// Occasionally fill like the slow path would.
					c.ResolveAsync(addrs[i], func(lookup.AddrRecord, error) {})
				}
			}
		}(r)
	}

	// gone is the driver's own (synchronous) revocation record; the
	// revoked[] atomics lag it by watch fan-out.
	rng := rand.New(rand.NewSource(seed))
	gone := make([]bool, liveAddrs)
	liveCount := liveAddrs
	for s := 0; s < steps && !stop.Load(); s++ {
		switch op := rng.Intn(10); {
		case op < 5: // re-register a live address with the next generation
			i := rng.Intn(liveAddrs)
			if gone[i] {
				continue
			}
			gens[i]++
			register(t, svc, kp, addrs[i], gens[i])
		case op < 7: // advance past lease boundaries to force expiry races
			clk.Advance(2500 * time.Millisecond)
		case op < 8: // terminal revocation, keeping at least half alive
			if liveCount <= liveAddrs/2 {
				continue
			}
			i := rng.Intn(liveAddrs)
			if gone[i] {
				continue
			}
			revoke(t, svc, kp, addrs[i])
			gone[i] = true
			liveCount--
		default: // let the readers and watch goroutine interleave
			time.Sleep(time.Millisecond)
		}
	}
	stop.Store(true)
	wg.Wait()
	if msg := violation.Load(); msg != nil {
		t.Fatal(*msg)
	}

	// Quiescence: once the watch drains, every revoked address is gone
	// and every live one resolves at its final generation.
	for i, a := range addrs {
		if gone[i] {
			waitUntil(t, func() bool {
				_, cached, _ := c.ResolveCached(a)
				return !cached
			})
			continue
		}
		waitUntil(t, func() bool {
			rec, err := c.ResolveAddress(a)
			return err == nil && genOf(rec) == gens[i]
		})
	}
}
