package lookup

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"

	"interedge/internal/cryptutil"
	"interedge/internal/wire"
)

// benchRecords is the planet-scale directory size the resolve benchmarks
// run against: 2^20 ≈ 10^6 address records.
const benchRecords = 1 << 20

// benchAddr derives a distinct, valid address from an index. fd00::/8 is
// a ULA-style prefix, so the addresses never collide with lab allocations.
func benchAddr(i int) wire.Addr {
	var b [16]byte
	b[0] = 0xfd
	binary.BigEndian.PutUint64(b[8:], uint64(i))
	return netip.AddrFrom16(b)
}

var benchState struct {
	once  sync.Once
	svc   *Service
	owner cryptutil.SigningKeypair
	sns   []wire.Addr
	addrs []wire.Addr
}

// benchService returns a lookup service pre-loaded with benchRecords
// address records, built once and shared by every benchmark in the
// package. Records load through RestoreRecords (the replication/restore
// path) so setup does not pay one ed25519 verification per record —
// about a minute of setup at this scale.
func benchService(b *testing.B) (*Service, []wire.Addr) {
	benchState.once.Do(func() {
		owner, err := cryptutil.NewSigningKeypair()
		if err != nil {
			panic(err)
		}
		benchState.owner = owner
		benchState.sns = []wire.Addr{wire.MustAddr("fc00::1")}
		benchState.svc = New()
		recs := make([]AddrRecord, benchRecords)
		benchState.addrs = make([]wire.Addr, benchRecords)
		for i := range recs {
			a := benchAddr(i)
			benchState.addrs[i] = a
			recs[i] = AddrRecord{Addr: a, Owner: owner.Public, SNs: benchState.sns}
		}
		benchState.svc.RestoreRecords(recs)
	})
	if got := benchState.svc.recordCount.Load(); got < benchRecords {
		b.Fatalf("bench service holds %d records, want >= %d", got, benchRecords)
	}
	return benchState.svc, benchState.addrs
}

// BenchmarkLookupResolve measures the single-thread snapshot read path at
// directory scale. Gated in BENCH_8.json: 0 allocs/op and an absolute
// ns/op ceiling — resolution must stay a pointer load plus two map
// probes no matter how many records are registered.
func BenchmarkLookupResolve(b *testing.B) {
	svc, addrs := benchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.ResolveAddress(addrs[i&(benchRecords-1)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "resolves/s")
}

// BenchmarkLookupResolveParallel is the contention case: every core
// resolving at once. Because reads share one atomic snapshot pointer and
// touch no lock, parallel throughput must meet or beat single-thread
// throughput (gated: parallel ns/op <= single ns/op in BENCH_8.json).
func BenchmarkLookupResolveParallel(b *testing.B) {
	svc, addrs := benchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	var ctr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		i := int(ctr.Add(1)) * 7919 // offset streams so goroutines walk different records
		for pb.Next() {
			if _, err := svc.ResolveAddress(addrs[i&(benchRecords-1)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "resolves/s")
}

// BenchmarkLookupChurn measures resolve latency while a background
// registrar continuously re-registers records (signature verification,
// delta writes, periodic fold). This is the RCU claim under test:
// registration churn must not drag readers onto a lock. Not alloc-gated —
// ReportAllocs counts the registrar goroutine's signing work too.
func BenchmarkLookupChurn(b *testing.B) {
	svc, addrs := benchService(b)
	stop := make(chan struct{})
	var churned atomic.Uint64
	go func() {
		// Pre-sign outside the loop: the churn we want to exercise is the
		// service's write path (verify + delta publish + fold), and one
		// signature can re-register the same record repeatedly.
		a := benchState.addrs[0]
		sig := SignAddrRecord(benchState.owner, a, benchState.sns)
		rec := AddrRecord{Addr: a, Owner: benchState.owner.Public, SNs: benchState.sns}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := svc.RegisterAddress(rec, sig); err != nil {
				panic(fmt.Sprintf("churn registration: %v", err))
			}
			churned.Add(1)
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := svc.ResolveAddress(addrs[i&(benchRecords-1)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "resolves/s")
	b.ReportMetric(float64(churned.Load())/b.Elapsed().Seconds(), "churn/s")
}

// BenchmarkWatchFanout measures one registration's fan-out to a panel of
// address watchers: the cost a write pays to notify every subscribed
// cache tier under the mutex.
func BenchmarkWatchFanout(b *testing.B) {
	const watchers = 16
	svc := New()
	owner, err := cryptutil.NewSigningKeypair()
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < watchers; w++ {
		ch, cancel := svc.WatchAddresses(1024)
		defer cancel()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range ch {
			}
		}()
	}
	a := benchAddr(0)
	sns := []wire.Addr{wire.MustAddr("fc00::1")}
	sig := SignAddrRecord(owner, a, sns)
	rec := AddrRecord{Addr: a, Owner: owner.Public, SNs: sns}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.RegisterAddress(rec, sig); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*watchers)/b.Elapsed().Seconds(), "events/s")
}
