// Package lookup implements the durable, scalable global lookup service
// the paper assumes "IANA or some other organization provides" (§6.2): it
// associates each address with the public key of its owner (plus the SNs
// serving it), records which edomains have members and senders for each
// group, validates signed join authorizations, and pushes watch events to
// edomain cores that registered senders.
package lookup

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"sync"

	"interedge/internal/cryptutil"
	"interedge/internal/wire"
)

// GroupID names an anycast/multicast group or pub/sub topic.
type GroupID string

// EdomainID names an autonomous domain of edge control (§3.1).
type EdomainID string

// Errors returned by the service.
var (
	ErrUnknownAddress = errors.New("lookup: unknown address")
	ErrUnknownGroup   = errors.New("lookup: unknown group")
	ErrBadSignature   = errors.New("lookup: signature verification failed")
	ErrNotAuthorized  = errors.New("lookup: join not authorized")
)

// AddrRecord maps an address to its owner's public key and associated SNs
// ("the appropriate name resolution returns not just the service-specific
// address but also one or more SNs associated with the destination host",
// §3.2).
type AddrRecord struct {
	Addr  wire.Addr
	Owner ed25519.PublicKey
	SNs   []wire.Addr
}

// GroupEvent reports an edomain joining or leaving a group's member set.
type GroupEvent struct {
	Group   GroupID
	Edomain EdomainID
	Joined  bool
}

type groupState struct {
	owner    ed25519.PublicKey
	open     bool
	members  map[EdomainID]struct{}
	senders  map[EdomainID]struct{}
	watchers map[int]chan GroupEvent
	nextW    int
}

// Service is the global lookup service. It is an in-memory, concurrent
// object; cmd/interedge-lab exposes it to simulated deployments directly,
// standing in for the replicated directory a production deployment would
// run.
type Service struct {
	mu     sync.Mutex
	addrs  map[wire.Addr]AddrRecord
	groups map[GroupID]*groupState
}

// New creates an empty lookup service.
func New() *Service {
	return &Service{
		addrs:  make(map[wire.Addr]AddrRecord),
		groups: make(map[GroupID]*groupState),
	}
}

// --- Signed statements -------------------------------------------------

func addrRegMsg(addr wire.Addr, sns []wire.Addr) []byte {
	msg := []byte("ie-lookup-addr|")
	a := addr.As16()
	msg = append(msg, a[:]...)
	for _, s := range sns {
		b := s.As16()
		msg = append(msg, b[:]...)
	}
	return msg
}

// SignAddrRecord produces the owner signature over an address record.
func SignAddrRecord(owner cryptutil.SigningKeypair, addr wire.Addr, sns []wire.Addr) []byte {
	return owner.Sign(addrRegMsg(addr, sns))
}

func openMsg(group GroupID) []byte {
	return []byte("ie-lookup-open|" + string(group))
}

// SignOpenStatement produces the owner's signed statement that a group is
// open to all joiners ("the owner can post a signed statement in the
// lookup service, allowing all receivers to validate their join
// messages", §6.2).
func SignOpenStatement(owner cryptutil.SigningKeypair, group GroupID) []byte {
	return owner.Sign(openMsg(group))
}

func joinAuthMsg(group GroupID, member ed25519.PublicKey) []byte {
	msg := []byte("ie-lookup-join|" + string(group) + "|")
	return append(msg, member...)
}

// SignJoinAuthorization produces the owner's authorization for a specific
// member key to join a group.
func SignJoinAuthorization(owner cryptutil.SigningKeypair, group GroupID, member ed25519.PublicKey) []byte {
	return owner.Sign(joinAuthMsg(group, member))
}

// --- Address records ----------------------------------------------------

// RegisterAddress stores an address record after verifying the owner's
// signature over it.
func (s *Service) RegisterAddress(rec AddrRecord, sig []byte) error {
	if !cryptutil.Verify(rec.Owner, addrRegMsg(rec.Addr, rec.SNs), sig) {
		return ErrBadSignature
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.addrs[rec.Addr]; ok && !existing.Owner.Equal(rec.Owner) {
		return fmt.Errorf("lookup: address %s already owned by a different key", rec.Addr)
	}
	cp := rec
	cp.Owner = append(ed25519.PublicKey(nil), rec.Owner...)
	cp.SNs = append([]wire.Addr(nil), rec.SNs...)
	s.addrs[rec.Addr] = cp
	return nil
}

// ResolveAddress returns the record for an address.
func (s *Service) ResolveAddress(addr wire.Addr) (AddrRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.addrs[addr]
	if !ok {
		return AddrRecord{}, ErrUnknownAddress
	}
	return rec, nil
}

// --- Groups --------------------------------------------------------------

// CreateGroup registers a group with its owning key.
func (s *Service) CreateGroup(group GroupID, owner ed25519.PublicKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.groups[group]; ok {
		return fmt.Errorf("lookup: group %q already exists", group)
	}
	s.groups[group] = &groupState{
		owner:    append(ed25519.PublicKey(nil), owner...),
		members:  make(map[EdomainID]struct{}),
		senders:  make(map[EdomainID]struct{}),
		watchers: make(map[int]chan GroupEvent),
	}
	return nil
}

// GroupOwner returns a group's owning key.
func (s *Service) GroupOwner(group GroupID) (ed25519.PublicKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[group]
	if !ok {
		return nil, ErrUnknownGroup
	}
	return g.owner, nil
}

// PostOpenStatement marks a group open-to-all after verifying the owner's
// signature.
func (s *Service) PostOpenStatement(group GroupID, sig []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[group]
	if !ok {
		return ErrUnknownGroup
	}
	if !cryptutil.Verify(g.owner, openMsg(group), sig) {
		return ErrBadSignature
	}
	g.open = true
	return nil
}

// ValidateJoin checks a member's join credentials: open groups admit
// everyone; closed groups require a join authorization signed by the
// owner over the member's key.
func (s *Service) ValidateJoin(group GroupID, member ed25519.PublicKey, auth []byte) error {
	s.mu.Lock()
	g, ok := s.groups[group]
	s.mu.Unlock()
	if !ok {
		return ErrUnknownGroup
	}
	if g.open {
		return nil
	}
	if !cryptutil.Verify(g.owner, joinAuthMsg(group, member), auth) {
		return ErrNotAuthorized
	}
	return nil
}

// JoinGroupEdomain records that an edomain now has at least one member of
// the group, notifying watchers.
func (s *Service) JoinGroupEdomain(group GroupID, ed EdomainID) error {
	s.mu.Lock()
	g, ok := s.groups[group]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownGroup
	}
	if _, already := g.members[ed]; already {
		s.mu.Unlock()
		return nil
	}
	g.members[ed] = struct{}{}
	watchers := collectWatchers(g)
	s.mu.Unlock()
	notify(watchers, GroupEvent{Group: group, Edomain: ed, Joined: true})
	return nil
}

// LeaveGroupEdomain records that an edomain no longer has members of the
// group, notifying watchers.
func (s *Service) LeaveGroupEdomain(group GroupID, ed EdomainID) error {
	s.mu.Lock()
	g, ok := s.groups[group]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownGroup
	}
	if _, present := g.members[ed]; !present {
		s.mu.Unlock()
		return nil
	}
	delete(g.members, ed)
	watchers := collectWatchers(g)
	s.mu.Unlock()
	notify(watchers, GroupEvent{Group: group, Edomain: ed, Joined: false})
	return nil
}

// RegisterSenderEdomain records that an edomain has a sender for the group
// and returns the current member edomains plus a watch for changes ("the
// core ... reads from the lookup service the list of edomains with members
// (and puts a watch on that list so the lookup service will send
// updates)", §6.2).
func (s *Service) RegisterSenderEdomain(group GroupID, ed EdomainID) ([]EdomainID, <-chan GroupEvent, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[group]
	if !ok {
		return nil, nil, nil, ErrUnknownGroup
	}
	g.senders[ed] = struct{}{}
	members := make([]EdomainID, 0, len(g.members))
	for m := range g.members {
		members = append(members, m)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	id := g.nextW
	g.nextW++
	ch := make(chan GroupEvent, 64)
	g.watchers[id] = ch
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if w, ok := g.watchers[id]; ok {
			delete(g.watchers, id)
			close(w)
		}
	}
	return members, ch, cancel, nil
}

// UnregisterSenderEdomain removes an edomain from the group's sender set.
func (s *Service) UnregisterSenderEdomain(group GroupID, ed EdomainID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.groups[group]; ok {
		delete(g.senders, ed)
	}
}

// MemberEdomains returns the edomains with members in a group.
func (s *Service) MemberEdomains(group GroupID) ([]EdomainID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[group]
	if !ok {
		return nil, ErrUnknownGroup
	}
	out := make([]EdomainID, 0, len(g.members))
	for m := range g.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// SenderEdomains returns the edomains with registered senders for a group.
func (s *Service) SenderEdomains(group GroupID) ([]EdomainID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[group]
	if !ok {
		return nil, ErrUnknownGroup
	}
	out := make([]EdomainID, 0, len(g.senders))
	for m := range g.senders {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func collectWatchers(g *groupState) []chan GroupEvent {
	out := make([]chan GroupEvent, 0, len(g.watchers))
	for _, w := range g.watchers {
		out = append(out, w)
	}
	return out
}

func notify(watchers []chan GroupEvent, ev GroupEvent) {
	for _, w := range watchers {
		select {
		case w <- ev:
		default: // slow watcher: drop rather than block the directory
		}
	}
}
